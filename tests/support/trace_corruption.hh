/**
 * @file
 * Byte-level trace-file manipulation for the fault-injection harness
 * and the v1-compatibility tests.
 *
 * The on-disk layout is duplicated here *deliberately* rather than
 * shared with trace_io.cc: if the production layout ever drifts, the
 * compatibility tests fail instead of silently testing the new layout
 * against itself.
 */
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "trace/instruction.hh"
#include "trace/trace_buffer.hh"
#include "util/crc32.hh"

namespace mlpsim::test {

/** v1 header: magic, version, count, name — no checksums. */
constexpr size_t v1HeaderSize = 80;
/** v2 header: v1 fields + payload CRC + header CRC. */
constexpr size_t v2HeaderSize = 88;
/** Fixed-width record, identical in both versions. */
constexpr size_t recordSize = 40;

constexpr size_t payloadCrcOffset = 80;
constexpr size_t headerCrcOffset = 84;
constexpr size_t nameOffset = 16;
constexpr size_t countOffset = 8;
constexpr size_t versionOffset = 4;

inline std::vector<uint8_t>
readFileBytes(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return {};
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    std::vector<uint8_t> bytes(size_t(size < 0 ? 0 : size));
    if (!bytes.empty() &&
        std::fread(bytes.data(), 1, bytes.size(), f) != bytes.size()) {
        bytes.clear();
    }
    std::fclose(f);
    return bytes;
}

inline void
writeFileBytes(const std::string &path, const std::vector<uint8_t> &bytes)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return;
    if (!bytes.empty())
        std::fwrite(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);
}

/** Serialise one instruction into the 40-byte on-disk record form. */
inline std::vector<uint8_t>
packRawRecord(const trace::Instruction &inst)
{
    std::vector<uint8_t> rec(recordSize, 0);
    auto put64 = [&](size_t off, uint64_t v) {
        std::memcpy(rec.data() + off, &v, sizeof(v));
    };
    put64(0, inst.pc);
    put64(8, inst.effAddr);
    put64(16, inst.value());
    put64(24, inst.target());
    rec[32] = static_cast<uint8_t>(inst.cls());
    rec[33] = inst.dst;
    for (unsigned s = 0; s < trace::maxSrcRegs; ++s)
        rec[34 + s] = inst.src[s];
    rec[37] = inst.taken() ? 1 : 0;
    rec[38] = static_cast<uint8_t>(inst.brKind());
    return rec;
}

/**
 * Write @p buffer in the *original* (seed) v1 format: 80-byte header,
 * no checksums, records immediately after the name field.
 */
inline void
writeV1TraceFile(const std::string &path,
                 const trace::TraceBuffer &buffer)
{
    std::vector<uint8_t> bytes(v1HeaderSize, 0);
    std::memcpy(bytes.data(), "MLPT", 4);
    const uint32_t version = 1;
    std::memcpy(bytes.data() + versionOffset, &version, sizeof(version));
    const uint64_t count = buffer.size();
    std::memcpy(bytes.data() + countOffset, &count, sizeof(count));
    std::strncpy(reinterpret_cast<char *>(bytes.data() + nameOffset),
                 buffer.name().c_str(), 63);
    for (size_t i = 0; i < buffer.size(); ++i) {
        const auto rec = packRawRecord(buffer.at(i));
        bytes.insert(bytes.end(), rec.begin(), rec.end());
    }
    writeFileBytes(path, bytes);
}

/** Flip one bit of an in-memory file image. */
inline void
flipBit(std::vector<uint8_t> &bytes, size_t byte_index, unsigned bit)
{
    bytes.at(byte_index) ^= uint8_t(1u << bit);
}

/**
 * Recompute and store the v2 header CRC after editing header bytes,
 * so a test can target a *later* check (version, name, count…)
 * without tripping the checksum first.
 */
inline void
fixHeaderCrc(std::vector<uint8_t> &bytes)
{
    const uint32_t crc = Crc32::compute(bytes.data(), headerCrcOffset);
    std::memcpy(bytes.data() + headerCrcOffset, &crc, sizeof(crc));
}

/** Likewise for the payload CRC after editing record bytes. */
inline void
fixPayloadCrc(std::vector<uint8_t> &bytes)
{
    const uint32_t crc = Crc32::compute(bytes.data() + v2HeaderSize,
                                        bytes.size() - v2HeaderSize);
    std::memcpy(bytes.data() + payloadCrcOffset, &crc, sizeof(crc));
    fixHeaderCrc(bytes);
}

// ---- v3 (chunked structure-of-arrays) layout, duplicated from
// trace_io.hh for the same drift-detection reason as above. ----

/** v3 payload prologue: u64 chunkCapacity + u64 numChunks. */
constexpr size_t v3PrologueSize = 16;
/** Per-chunk section header: u32 count + u32 chunkCrc. */
constexpr size_t v3ChunkHeaderSize = 8;
/** Column bytes per instruction: pc/effAddr/payload + 5 byte columns. */
constexpr size_t v3BytesPerInst = 3 * 8 + 5;

/** Offset of chunk section @p ci in a file whose chunks are full
 *  except possibly the last; only useful for single-chunk images when
 *  ci > 0 is never needed. */
inline size_t
v3ChunkOffset(size_t ci)
{
    (void)ci; // test images are single-chunk
    return v2HeaderSize + v3PrologueSize;
}

/** Total bytes of a chunk section holding @p count instructions. */
inline size_t
v3ChunkSectionSize(size_t count)
{
    return v3ChunkHeaderSize + count * v3BytesPerInst;
}

/** Offset of the meta column inside a single-chunk v3 image. */
inline size_t
v3MetaOffset(size_t count)
{
    return v3ChunkOffset(0) + v3ChunkHeaderSize + 3 * 8 * count;
}

/**
 * Recompute the chunk, payload, and header CRCs of a *single-chunk*
 * v3 image after editing column bytes, so a test can target a later
 * check (enum range, counts…) without tripping a checksum first.
 */
inline void
fixV3Crcs(std::vector<uint8_t> &bytes, size_t count)
{
    const size_t columns_off = v3ChunkOffset(0) + v3ChunkHeaderSize;
    const uint32_t chunk_crc = Crc32::compute(
        bytes.data() + columns_off, count * v3BytesPerInst);
    std::memcpy(bytes.data() + v3ChunkOffset(0) + 4, &chunk_crc,
                sizeof(chunk_crc));
    const uint32_t payload_crc = Crc32::compute(
        bytes.data() + v2HeaderSize, bytes.size() - v2HeaderSize);
    std::memcpy(bytes.data() + payloadCrcOffset, &payload_crc,
                sizeof(payload_crc));
    fixHeaderCrc(bytes);
}

} // namespace mlpsim::test
