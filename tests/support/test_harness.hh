/**
 * @file
 * Test support: hand-scripted traces with injected miss/mispredict/
 * value-prediction annotations, bypassing the cache and predictor
 * substrates so engine semantics can be asserted exactly.
 */
#pragma once

#include <vector>

#include "core/mlpsim.hh"

namespace mlpsim::test {

/** Off-chip behaviour injected for one scripted instruction. */
enum class Miss : uint8_t {
    None,
    Data,          //!< the data access goes off-chip
    Fetch,         //!< fetching this instruction goes off-chip
    UsefulPrefetch //!< useful off-chip software prefetch
};

/** A literal instruction sequence with injected annotations. */
class ScriptedTrace
{
  public:
    void
    add(const trace::Instruction &inst, Miss miss = Miss::None,
        bool mispredict = false,
        predictor::ValueOutcome value_outcome =
            predictor::ValueOutcome::NotApplicable)
    {
        buffer.append(inst);
        misses.push_back(miss);
        mispredicts.push_back(mispredict);
        valueOutcomes.push_back(value_outcome);
    }

    /** Materialise the annotations and run the epoch model. */
    core::MlpResult
    run(const core::MlpConfig &config)
    {
        build();
        return core::runMlp(config, context());
    }

    /** Borrowing context (valid until the next add()). */
    core::WorkloadContext
    context()
    {
        build();
        core::WorkloadContext ctx;
        ctx.buffer = &buffer;
        ctx.misses = &missAnn;
        ctx.branches = &brAnn;
        ctx.values = &valAnn;
        return ctx;
    }

    const trace::TraceBuffer &trace() const { return buffer; }

  private:
    void
    build()
    {
        const size_t n = buffer.size();
        missAnn.resetForBuild(n);
        brAnn.mispredicted.assign(n, 0);
        brAnn.branches = 0;
        brAnn.mispredicts = 0;
        valAnn.outcome.assign(n, predictor::ValueOutcome::NotApplicable);
        for (size_t i = 0; i < n; ++i) {
            switch (misses[i]) {
              case Miss::Data: missAnn.markDataMiss(i); break;
              case Miss::Fetch: missAnn.markFetchMiss(i); break;
              case Miss::UsefulPrefetch:
                missAnn.markUsefulPrefetch(i);
                break;
              case Miss::None: break;
            }
            if (buffer.at(i).isBranch()) {
                ++brAnn.branches;
                if (mispredicts[i]) {
                    brAnn.mispredicted[i] = 1;
                    ++brAnn.mispredicts;
                }
            }
            valAnn.outcome[i] = valueOutcomes[i];
        }
    }

    trace::TraceBuffer buffer{"scripted"};
    std::vector<Miss> misses;
    std::vector<bool> mispredicts;
    std::vector<predictor::ValueOutcome> valueOutcomes;
    memory::MissAnnotations missAnn;
    branch::BranchAnnotations brAnn;
    predictor::ValueAnnotations valAnn;
};

} // namespace mlpsim::test
