/** @file Instruction-mix measurement. */
#include <gtest/gtest.h>

#include "trace/trace_buffer.hh"
#include "trace/trace_stats.hh"

namespace mlpsim::test {

using namespace mlpsim::trace;

TEST(TraceMix, CountsEveryClass)
{
    TraceBuffer buf;
    buf.append(makeAlu(0x100, 1));
    buf.append(makeAlu(0x104, 1));
    buf.append(makeLoad(0x108, 2, 0x1000));
    buf.append(makeStore(0x10c, 0x2000));
    buf.append(makeBranch(0x110, 0x200, true));
    buf.append(makeBranch(0x114, 0x200, false));
    buf.append(makePrefetch(0x118, 0x3000));
    buf.append(makeSerializing(0x11c));

    auto cur = buf.cursor();
    const TraceMix mix = measureMix(cur, 1000);
    EXPECT_EQ(mix.total, 8u);
    EXPECT_EQ(mix.alu, 2u);
    EXPECT_EQ(mix.loads, 1u);
    EXPECT_EQ(mix.stores, 1u);
    EXPECT_EQ(mix.branches, 2u);
    EXPECT_EQ(mix.takenBranches, 1u);
    EXPECT_EQ(mix.prefetches, 1u);
    EXPECT_EQ(mix.serializing, 1u);
    EXPECT_DOUBLE_EQ(mix.fracLoads(), 1.0 / 8.0);
    EXPECT_DOUBLE_EQ(mix.fracBranches(), 2.0 / 8.0);
}

TEST(TraceMix, RespectsLimitAndRewinds)
{
    TraceBuffer buf;
    for (int i = 0; i < 20; ++i)
        buf.append(makeAlu(0x100 + 4u * unsigned(i), 1));
    auto cur = buf.cursor();
    const TraceMix mix = measureMix(cur, 5);
    EXPECT_EQ(mix.total, 5u);
    // measureMix resets the source for the caller.
    Instruction inst;
    ASSERT_TRUE(cur.next(inst));
    EXPECT_EQ(inst.pc, 0x100u);
}

TEST(TraceMix, EmptyTrace)
{
    TraceBuffer buf;
    auto cur = buf.cursor();
    const TraceMix mix = measureMix(cur, 10);
    EXPECT_EQ(mix.total, 0u);
    EXPECT_DOUBLE_EQ(mix.fracLoads(), 0.0);
}

} // namespace mlpsim::test
