/** @file Instruction record invariants and factories. */
#include <gtest/gtest.h>

#include "trace/instruction.hh"

namespace mlpsim::test {

using namespace mlpsim::trace;

TEST(Instruction, AluFactory)
{
    const auto i = makeAlu(0x100, 3, 1, 2);
    EXPECT_EQ(i.cls(), InstClass::Alu);
    EXPECT_EQ(i.pc, 0x100u);
    EXPECT_EQ(i.dst, 3);
    EXPECT_EQ(i.src[0], 1);
    EXPECT_EQ(i.src[1], 2);
    EXPECT_EQ(i.src[2], noReg);
    EXPECT_TRUE(i.hasDst());
    EXPECT_FALSE(i.isMem());
    EXPECT_FALSE(i.isBranch());
}

TEST(Instruction, LoadFactory)
{
    const auto i = makeLoad(0x104, 5, 0xBEEF, 2, 42);
    EXPECT_EQ(i.cls(), InstClass::Load);
    EXPECT_TRUE(i.isLoad());
    EXPECT_TRUE(i.isMem());
    EXPECT_EQ(i.effAddr, 0xBEEFu);
    EXPECT_EQ(i.value(), 42u);
    EXPECT_EQ(i.dst, 5);
    EXPECT_EQ(i.src[0], 2);
}

TEST(Instruction, StoreFactory)
{
    const auto i = makeStore(0x108, 0x1000, /*data=*/7, /*addr=*/3);
    EXPECT_TRUE(i.isStore());
    EXPECT_TRUE(i.isMem());
    EXPECT_FALSE(i.hasDst());
    EXPECT_EQ(i.src[0], 3); // address
    EXPECT_EQ(i.src[1], 7); // data
}

TEST(Instruction, PrefetchFactory)
{
    const auto i = makePrefetch(0x10c, 0x2000, 4);
    EXPECT_TRUE(i.isPrefetch());
    EXPECT_TRUE(i.isMem());
    EXPECT_FALSE(i.hasDst());
}

TEST(Instruction, BranchFactory)
{
    const auto i = makeBranch(0x110, 0x200, true, 6);
    EXPECT_TRUE(i.isBranch());
    EXPECT_TRUE(i.taken());
    EXPECT_EQ(i.target(), 0x200u);
    EXPECT_EQ(i.brKind(), BranchKind::Conditional);
    EXPECT_FALSE(i.isMem());

    const auto call =
        makeBranch(0x114, 0x300, true, noReg, BranchKind::Call);
    EXPECT_EQ(call.brKind(), BranchKind::Call);
}

TEST(Instruction, SerializingFactory)
{
    const auto membar = makeSerializing(0x118);
    EXPECT_TRUE(membar.isSerializing());
    EXPECT_FALSE(membar.isMem()); // pure barrier: no address

    const auto casa = makeSerializing(0x11c, 0x3000, 1);
    EXPECT_TRUE(casa.isSerializing());
    EXPECT_TRUE(casa.isMem()); // atomic with a memory operand
}

TEST(Instruction, ClassNames)
{
    EXPECT_STREQ(instClassName(InstClass::Alu), "alu");
    EXPECT_STREQ(instClassName(InstClass::Load), "load");
    EXPECT_STREQ(instClassName(InstClass::Store), "store");
    EXPECT_STREQ(instClassName(InstClass::Branch), "branch");
    EXPECT_STREQ(instClassName(InstClass::Prefetch), "prefetch");
    EXPECT_STREQ(instClassName(InstClass::Serializing), "serializing");
}

TEST(Instruction, DefaultHasNoSources)
{
    const Instruction i;
    for (unsigned s = 0; s < maxSrcRegs; ++s)
        EXPECT_EQ(i.src[s], noReg);
    EXPECT_FALSE(i.hasDst());
}

} // namespace mlpsim::test
