/** @file TraceBuffer, Cursor and LimitedSource semantics. */
#include <gtest/gtest.h>

#include "trace/trace_buffer.hh"
#include "workloads/micro.hh"

namespace mlpsim::test {

using namespace mlpsim::trace;

TEST(TraceBuffer, AppendAndAccess)
{
    TraceBuffer buf("t");
    buf.append(makeAlu(0x100, 1));
    buf.append(makeAlu(0x104, 2));
    EXPECT_EQ(buf.size(), 2u);
    EXPECT_EQ(buf.at(0).pc, 0x100u);
    EXPECT_EQ(buf.at(1).dst, 2);
    EXPECT_EQ(buf.name(), "t");
}

TEST(TraceBuffer, FillFromGenerator)
{
    workloads::PointerChaseWorkload w;
    TraceBuffer buf("chase");
    buf.fill(w, 1000);
    EXPECT_EQ(buf.size(), 1000u);
}

TEST(TraceBuffer, CursorStreamsAndResets)
{
    TraceBuffer buf;
    for (int i = 0; i < 5; ++i)
        buf.append(makeAlu(0x100 + 4u * unsigned(i), uint8_t(i)));
    auto cur = buf.cursor();
    Instruction inst;
    int n = 0;
    while (cur.next(inst))
        EXPECT_EQ(inst.dst, n++);
    EXPECT_EQ(n, 5);
    EXPECT_FALSE(cur.next(inst));
    cur.reset();
    EXPECT_TRUE(cur.next(inst));
    EXPECT_EQ(inst.dst, 0);
}

TEST(TraceBuffer, FillStopsAtSourceEnd)
{
    TraceBuffer small;
    small.append(makeAlu(0x100, 1));
    auto cur = small.cursor();
    TraceBuffer target;
    target.fill(cur, 100);
    EXPECT_EQ(target.size(), 1u);
}

TEST(LimitedSource, TruncatesAndResets)
{
    workloads::PointerChaseWorkload w;
    LimitedSource limited(w, 10);
    Instruction inst;
    int n = 0;
    while (limited.next(inst))
        ++n;
    EXPECT_EQ(n, 10);
    limited.reset();
    n = 0;
    while (limited.next(inst))
        ++n;
    EXPECT_EQ(n, 10);
    EXPECT_EQ(limited.name(), "pointer-chase");
}

} // namespace mlpsim::test
