/** @file Binary trace file round-tripping and error handling. */
#include <gtest/gtest.h>

#include <cstdio>
#include <unistd.h>
#include <string>

#include "support/trace_corruption.hh"
#include "trace/trace_io.hh"
#include "workloads/micro.hh"

#include <sys/stat.h>

namespace mlpsim::test {

using namespace mlpsim::trace;

namespace {

std::string
tempPath(const char *tag)
{
    return ::testing::TempDir() + "mlpsim_" + tag + ".trace";
}

} // namespace

TEST(TraceIo, RoundTripsEveryField)
{
    TraceBuffer buf("roundtrip");
    buf.append(makeLoad(0x1000, 3, 0xABCD, 2, 99));
    buf.append(makeStore(0x1004, 0x2000, 5, 4));
    buf.append(makeBranch(0x1008, 0x3000, true, 6, BranchKind::Call));
    buf.append(makePrefetch(0x100c, 0x4000, 7));
    buf.append(makeSerializing(0x1010, 0x5000, 1));
    buf.append(makeAlu(0x1014, 8, 9, 10));

    const std::string path = tempPath("roundtrip");
    writeTraceFile(path, buf);
    const TraceBuffer read = readTraceFile(path);

    ASSERT_EQ(read.size(), buf.size());
    EXPECT_EQ(read.name(), "roundtrip");
    for (size_t i = 0; i < buf.size(); ++i) {
        const Instruction &a = buf.at(i);
        const Instruction &b = read.at(i);
        EXPECT_EQ(a.pc, b.pc);
        EXPECT_EQ(a.effAddr, b.effAddr);
        EXPECT_EQ(a.value(), b.value());
        EXPECT_EQ(a.target(), b.target());
        EXPECT_EQ(a.cls(), b.cls());
        EXPECT_EQ(a.dst, b.dst);
        EXPECT_EQ(a.taken(), b.taken());
        EXPECT_EQ(a.brKind(), b.brKind());
        for (unsigned s = 0; s < maxSrcRegs; ++s)
            EXPECT_EQ(a.src[s], b.src[s]);
    }
    std::remove(path.c_str());
}

TEST(TraceIo, RoundTripsGeneratedWorkload)
{
    workloads::SerializingStormWorkload w;
    TraceBuffer buf("storm");
    buf.fill(w, 5000);
    const std::string path = tempPath("workload");
    writeTraceFile(path, buf);
    const TraceBuffer read = readTraceFile(path);
    ASSERT_EQ(read.size(), buf.size());
    for (size_t i = 0; i < buf.size(); i += 97) {
        EXPECT_EQ(buf.at(i).pc, read.at(i).pc);
        EXPECT_EQ(buf.at(i).effAddr, read.at(i).effAddr);
        EXPECT_EQ(buf.at(i).cls(), read.at(i).cls());
    }
    std::remove(path.c_str());
}

TEST(TraceIo, StatusApiRoundTrips)
{
    TraceBuffer buf("statusapi");
    buf.append(makeLoad(0x1000, 3, 0xABCD, 2, 99));
    buf.append(makeAlu(0x1004, 4, 3));

    const std::string path = tempPath("statusapi");
    ASSERT_TRUE(writeTrace(path, buf).ok());
    const auto read = readTrace(path);
    ASSERT_TRUE(read.ok()) << read.status().toString();
    EXPECT_EQ(read->size(), buf.size());
    EXPECT_EQ(read->name(), "statusapi");
    std::remove(path.c_str());
}

TEST(TraceIo, LoadsV1SeedFormat)
{
    // Traces written before the checksummed v2 format (80-byte header,
    // no CRCs) must keep loading through both reader entry points.
    TraceBuffer buf("legacy");
    buf.append(makeLoad(0x1000, 3, 0xABCD, 2, 99));
    buf.append(makeBranch(0x1004, 0x3000, true, 6, BranchKind::Call));
    buf.append(makeAlu(0x1008, 8, 9, 10));

    const std::string path = tempPath("v1compat");
    writeV1TraceFile(path, buf);

    const auto read = readTrace(path);
    ASSERT_TRUE(read.ok()) << read.status().toString();
    ASSERT_EQ(read->size(), buf.size());
    EXPECT_EQ(read->name(), "legacy");
    for (size_t i = 0; i < buf.size(); ++i) {
        EXPECT_EQ(buf.at(i).pc, read->at(i).pc);
        EXPECT_EQ(buf.at(i).effAddr, read->at(i).effAddr);
        EXPECT_EQ(buf.at(i).cls(), read->at(i).cls());
        EXPECT_EQ(buf.at(i).brKind(), read->at(i).brKind());
    }
    const TraceBuffer legacy = readTraceFile(path);
    EXPECT_EQ(legacy.size(), buf.size());
    std::remove(path.c_str());
}

TEST(TraceIo, CrcMismatchIsAStatusError)
{
    TraceBuffer buf("crc");
    for (int i = 0; i < 4; ++i)
        buf.append(makeAlu(0x100 + 4u * unsigned(i), 1));
    const std::string path = tempPath("crc");
    ASSERT_TRUE(writeTrace(path, buf).ok());

    auto bytes = readFileBytes(path);
    flipBit(bytes, v2HeaderSize + recordSize + 5, 3);
    writeFileBytes(path, bytes);

    const auto read = readTrace(path);
    ASSERT_FALSE(read.ok());
    EXPECT_EQ(read.status().code(), ErrorCode::DataLoss);
    EXPECT_NE(read.status().message().find("CRC"), std::string::npos);
    std::remove(path.c_str());
}

TEST(TraceIo, WriteIsAtomicAndLeavesNoTempFile)
{
    TraceBuffer buf("atomic");
    buf.append(makeAlu(0x100, 1));
    const std::string path = tempPath("atomic");
    ASSERT_TRUE(writeTrace(path, buf).ok());

    const std::string temp =
        path + ".tmp." + std::to_string(getpid());
    struct stat st;
    EXPECT_NE(::stat(temp.c_str(), &st), 0)
        << "temporary file left behind: " << temp;
    EXPECT_EQ(::stat(path.c_str(), &st), 0);
    std::remove(path.c_str());
}

TEST(TraceIo, FailedWriteLeavesExistingFileUntouched)
{
    TraceBuffer original("original");
    original.append(makeAlu(0x100, 1));
    const std::string path = tempPath("inplace");
    ASSERT_TRUE(writeTrace(path, original).ok());

    // Block the writer's temp path with a directory so the rewrite
    // fails before it can touch the destination.
    const std::string temp =
        path + ".tmp." + std::to_string(getpid());
    ASSERT_EQ(::mkdir(temp.c_str(), 0755), 0);
    TraceBuffer replacement("replacement");
    replacement.append(makeAlu(0x200, 2));
    replacement.append(makeAlu(0x204, 3));
    const Status st = writeTrace(path, replacement);
    EXPECT_FALSE(st.ok());
    EXPECT_NE(st.message().find(path), std::string::npos);
    ::rmdir(temp.c_str());

    const auto read = readTrace(path);
    ASSERT_TRUE(read.ok()) << read.status().toString();
    EXPECT_EQ(read->name(), "original");
    EXPECT_EQ(read->size(), 1u);
    std::remove(path.c_str());
}

TEST(TraceIo, WriteToMissingDirectoryIsAStatusError)
{
    TraceBuffer buf("nodir");
    buf.append(makeAlu(0x100, 1));
    const Status st = writeTrace("/nonexistent/dir/x.trace", buf);
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), ErrorCode::IoError);
    EXPECT_NE(st.message().find("/nonexistent/dir/x.trace"),
              std::string::npos);
}

TEST(TraceIoDeath, MissingFileIsFatal)
{
    EXPECT_EXIT(readTraceFile("/nonexistent/path/x.trace"),
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST(TraceIoDeath, BadMagicIsFatal)
{
    const std::string path = tempPath("badmagic");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const char garbage[128] = "not a trace";
    std::fwrite(garbage, 1, sizeof(garbage), f);
    std::fclose(f);
    EXPECT_EXIT(readTraceFile(path), ::testing::ExitedWithCode(1),
                "not an mlpsim trace");
    std::remove(path.c_str());
}

TEST(TraceIoDeath, TruncatedFileIsFatal)
{
    TraceBuffer buf("trunc");
    for (int i = 0; i < 10; ++i)
        buf.append(makeAlu(0x100 + 4u * unsigned(i), 1));
    const std::string path = tempPath("trunc");
    writeTraceFile(path, buf);
    // Chop the last record in half.
    ASSERT_EQ(truncate(path.c_str(), 128), 0);
    EXPECT_EXIT(readTraceFile(path), ::testing::ExitedWithCode(1),
                "truncated");
    std::remove(path.c_str());
}

} // namespace mlpsim::test
