/** @file Binary trace file round-tripping and error handling. */
#include <gtest/gtest.h>

#include <cstdio>
#include <unistd.h>
#include <string>

#include "trace/trace_io.hh"
#include "workloads/micro.hh"

namespace mlpsim::test {

using namespace mlpsim::trace;

namespace {

std::string
tempPath(const char *tag)
{
    return ::testing::TempDir() + "mlpsim_" + tag + ".trace";
}

} // namespace

TEST(TraceIo, RoundTripsEveryField)
{
    TraceBuffer buf("roundtrip");
    buf.append(makeLoad(0x1000, 3, 0xABCD, 2, 99));
    buf.append(makeStore(0x1004, 0x2000, 5, 4));
    buf.append(makeBranch(0x1008, 0x3000, true, 6, BranchKind::Call));
    buf.append(makePrefetch(0x100c, 0x4000, 7));
    buf.append(makeSerializing(0x1010, 0x5000, 1));
    buf.append(makeAlu(0x1014, 8, 9, 10));

    const std::string path = tempPath("roundtrip");
    writeTraceFile(path, buf);
    const TraceBuffer read = readTraceFile(path);

    ASSERT_EQ(read.size(), buf.size());
    EXPECT_EQ(read.name(), "roundtrip");
    for (size_t i = 0; i < buf.size(); ++i) {
        const Instruction &a = buf.at(i);
        const Instruction &b = read.at(i);
        EXPECT_EQ(a.pc, b.pc);
        EXPECT_EQ(a.effAddr, b.effAddr);
        EXPECT_EQ(a.value, b.value);
        EXPECT_EQ(a.target, b.target);
        EXPECT_EQ(a.cls, b.cls);
        EXPECT_EQ(a.dst, b.dst);
        EXPECT_EQ(a.taken, b.taken);
        EXPECT_EQ(a.brKind, b.brKind);
        for (unsigned s = 0; s < maxSrcRegs; ++s)
            EXPECT_EQ(a.src[s], b.src[s]);
    }
    std::remove(path.c_str());
}

TEST(TraceIo, RoundTripsGeneratedWorkload)
{
    workloads::SerializingStormWorkload w;
    TraceBuffer buf("storm");
    buf.fill(w, 5000);
    const std::string path = tempPath("workload");
    writeTraceFile(path, buf);
    const TraceBuffer read = readTraceFile(path);
    ASSERT_EQ(read.size(), buf.size());
    for (size_t i = 0; i < buf.size(); i += 97) {
        EXPECT_EQ(buf.at(i).pc, read.at(i).pc);
        EXPECT_EQ(buf.at(i).effAddr, read.at(i).effAddr);
        EXPECT_EQ(buf.at(i).cls, read.at(i).cls);
    }
    std::remove(path.c_str());
}

TEST(TraceIoDeath, MissingFileIsFatal)
{
    EXPECT_EXIT(readTraceFile("/nonexistent/path/x.trace"),
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST(TraceIoDeath, BadMagicIsFatal)
{
    const std::string path = tempPath("badmagic");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const char garbage[128] = "not a trace";
    std::fwrite(garbage, 1, sizeof(garbage), f);
    std::fclose(f);
    EXPECT_EXIT(readTraceFile(path), ::testing::ExitedWithCode(1),
                "not an mlpsim trace");
    std::remove(path.c_str());
}

TEST(TraceIoDeath, TruncatedFileIsFatal)
{
    TraceBuffer buf("trunc");
    for (int i = 0; i < 10; ++i)
        buf.append(makeAlu(0x100 + 4u * unsigned(i), 1));
    const std::string path = tempPath("trunc");
    writeTraceFile(path, buf);
    // Chop the last record in half.
    ASSERT_EQ(truncate(path.c_str(), 128), 0);
    EXPECT_EXIT(readTraceFile(path), ::testing::ExitedWithCode(1),
                "truncated");
    std::remove(path.c_str());
}

} // namespace mlpsim::test
