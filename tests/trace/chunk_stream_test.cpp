/**
 * @file
 * Streaming trace-layer tests: SoA chunk round-trips, the bounded
 * SPMC chunk ring, replayable generated chunk sources, and the
 * LimitedSource window-reset contract the replay path depends on.
 */
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "trace/chunk_ring.hh"
#include "trace/stream_source.hh"
#include "trace/trace_buffer.hh"
#include "trace/trace_source.hh"

namespace mlpsim::test {

using namespace mlpsim::trace;

namespace {

/** Deterministic, infinite, replayable synthetic instruction mix. */
class SyntheticSource : public TraceSource
{
  public:
    explicit SyntheticSource(uint64_t seed_value)
        : seed(seed_value | 1), state(seed)
    {
    }

    bool
    next(Instruction &inst) override
    {
        const uint64_t r = nextRand();
        const uint64_t pc = 0x400000 + (r % 4096) * 4;
        switch (r % 5) {
        case 0:
            inst = makeLoad(pc, uint8_t(r % 32), r * 64, uint8_t(r % 16),
                            r ^ 0x5a5a5a5a);
            break;
        case 1:
            inst = makeStore(pc, r * 64, uint8_t(r % 32), noReg, r);
            break;
        case 2:
            inst = makeBranch(pc, pc + 16, (r >> 7) & 1, uint8_t(r % 32));
            break;
        case 3:
            inst = makeSerializing(pc, (r % 3) ? r * 64 : 0);
            break;
        default:
            inst = makeAlu(pc, uint8_t(r % 32), uint8_t((r >> 5) % 32),
                           uint8_t((r >> 10) % 32));
            break;
        }
        return true;
    }

    void reset() override { state = seed; }
    std::string name() const override { return "synthetic"; }

  private:
    uint64_t
    nextRand()
    {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        return state >> 17;
    }

    uint64_t seed;
    uint64_t state;
};

void
expectSameInst(const Instruction &a, const Instruction &b)
{
    EXPECT_EQ(a.pc, b.pc);
    EXPECT_EQ(a.effAddr, b.effAddr);
    EXPECT_EQ(a.rawMeta(), b.rawMeta());
    EXPECT_EQ(a.rawPayload(), b.rawPayload());
    EXPECT_EQ(a.dst, b.dst);
    for (unsigned s = 0; s < maxSrcRegs; ++s)
        EXPECT_EQ(a.src[s], b.src[s]);
}

GeneratedChunkSource
syntheticSource(uint64_t limit, uint32_t chunk_cap)
{
    return GeneratedChunkSource(
        "synthetic", limit,
        [] { return std::make_unique<SyntheticSource>(42); }, chunk_cap);
}

/** Drain one stream into a flat instruction vector. */
std::vector<Instruction>
drain(const ChunkSource &source)
{
    std::vector<Instruction> insts;
    auto stream = source.open();
    while (ChunkPtr c = stream->next()) {
        EXPECT_EQ(c->base, insts.size());
        for (uint32_t i = 0; i < c->count; ++i)
            insts.push_back(c->get(i));
    }
    return insts;
}

} // namespace

TEST(TraceChunk, RoundTripsEveryFieldAndHelper)
{
    SyntheticSource src(7);
    TraceChunk chunk(100, 256);
    std::vector<Instruction> ref;
    for (int i = 0; i < 200; ++i) {
        Instruction inst;
        ASSERT_TRUE(src.next(inst));
        chunk.append(inst);
        ref.push_back(inst);
    }
    EXPECT_EQ(chunk.base, 100u);
    EXPECT_EQ(chunk.count, 200u);
    EXPECT_EQ(chunk.end(), 300u);
    EXPECT_FALSE(chunk.full());
    for (uint32_t i = 0; i < chunk.count; ++i) {
        expectSameInst(chunk.get(i), ref[i]);
        // The column helpers must agree with the packed record's own
        // decoders — they share Instruction's bit constants.
        EXPECT_EQ(chunk.cls(i), ref[i].cls());
        EXPECT_EQ(chunk.brKind(i), ref[i].brKind());
        EXPECT_EQ(chunk.taken(i), ref[i].taken());
        EXPECT_EQ(chunk.isBranch(i), ref[i].isBranch());
        EXPECT_EQ(chunk.isSerializing(i), ref[i].isSerializing());
        EXPECT_EQ(chunk.hasDst(i), ref[i].hasDst());
        EXPECT_EQ(chunk.value(i), ref[i].value());
    }
}

TEST(ChunkRing, SpmcDeliversEveryChunkInOrderToEveryConsumer)
{
    constexpr int kChunks = 50;
    ChunkRing ring(2);
    const int c0 = ring.addConsumer();
    const int c1 = ring.addConsumer();

    auto consume = [&ring](int consumer) {
        std::vector<uint64_t> bases;
        while (ChunkPtr c = ring.pop(consumer))
            bases.push_back(c->base);
        return bases;
    };
    std::vector<uint64_t> seen0, seen1;
    std::thread t0([&] { seen0 = consume(c0); });
    std::thread t1([&] { seen1 = consume(c1); });

    for (int i = 0; i < kChunks; ++i) {
        auto chunk = std::make_shared<TraceChunk>(uint64_t(i), 4u);
        ASSERT_TRUE(ring.push(std::move(chunk)));
    }
    ring.close();
    t0.join();
    t1.join();

    ASSERT_EQ(seen0.size(), size_t(kChunks));
    ASSERT_EQ(seen1.size(), size_t(kChunks));
    for (int i = 0; i < kChunks; ++i) {
        EXPECT_EQ(seen0[size_t(i)], uint64_t(i));
        EXPECT_EQ(seen1[size_t(i)], uint64_t(i));
    }
}

TEST(ChunkRing, DetachedConsumersStopTheProducer)
{
    ChunkRing ring(2);
    const int consumer = ring.addConsumer();

    // Consumer takes three chunks then abandons the stream.
    std::thread t([&] {
        for (int i = 0; i < 3; ++i)
            ASSERT_NE(ring.pop(consumer), nullptr);
        ring.detach(consumer);
    });

    // Producer tries to push far more than the ring could ever hold;
    // push() returning false (not a deadlock) is the teardown path.
    int pushed = 0;
    while (pushed < 1000) {
        if (!ring.push(std::make_shared<TraceChunk>(uint64_t(pushed), 4u)))
            break;
        ++pushed;
    }
    t.join();
    EXPECT_LT(pushed, 1000);
}

TEST(GeneratedChunkSource, ShapesChunksToCapacityAndLimit)
{
    const auto source = syntheticSource(1000, 256);
    EXPECT_EQ(source.size(), 1000u);
    EXPECT_EQ(source.chunkCapacity(), 256u);

    auto stream = source.open();
    std::vector<ChunkPtr> chunks;
    while (ChunkPtr c = stream->next())
        chunks.push_back(std::move(c));
    // 1000 = 3 full chunks of 256 + one partial of 232.
    ASSERT_EQ(chunks.size(), 4u);
    for (size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(chunks[i]->base, i * 256);
        EXPECT_EQ(chunks[i]->count, 256u);
    }
    EXPECT_EQ(chunks[3]->base, 768u);
    EXPECT_EQ(chunks[3]->count, 232u);
}

TEST(GeneratedChunkSource, EveryOpenReplaysTheIdenticalStream)
{
    const auto source = syntheticSource(5000, 512);
    const auto first = drain(source);
    const auto second = drain(source);
    ASSERT_EQ(first.size(), 5000u);
    ASSERT_EQ(second.size(), 5000u);
    for (size_t i = 0; i < first.size(); ++i)
        expectSameInst(first[i], second[i]);
}

TEST(GeneratedChunkSource, StreamMatchesMaterialisedBuffer)
{
    constexpr uint64_t kInsts = 5000;
    SyntheticSource generator(42);
    TraceBuffer buffer("synthetic");
    buffer.fill(generator, kInsts);
    ASSERT_EQ(buffer.size(), kInsts);

    const auto streamed = drain(syntheticSource(kInsts, 512));
    ASSERT_EQ(streamed.size(), kInsts);
    for (uint64_t i = 0; i < kInsts; ++i)
        expectSameInst(streamed[size_t(i)], buffer.at(size_t(i)));
}

TEST(GeneratedChunkSource, MidStreamTeardownJoinsTheProducer)
{
    const auto source = syntheticSource(1u << 20, 1024);
    // Abandon several streams after one chunk each: the destructor
    // must detach and join the producer thread without hanging even
    // though the ring is full and the trace is nowhere near done.
    for (int round = 0; round < 5; ++round) {
        auto stream = source.open();
        ASSERT_NE(stream->next(), nullptr);
    }
}

TEST(ChunkRing, SkewedConsumersAllSeeEveryChunkInOrder)
{
    // One fast and one deliberately slow consumer on a tiny ring: the
    // producer must block (condvar wait, not teardown) until the
    // slowest cursor frees slots, and both cursors still observe the
    // full sequence in order.
    constexpr int kChunks = 120;
    ChunkRing ring(2);
    const int fast = ring.addConsumer();
    const int slow = ring.addConsumer();

    auto consume = [&ring](int consumer, bool throttle) {
        std::vector<uint64_t> bases;
        while (ChunkPtr c = ring.pop(consumer)) {
            bases.push_back(c->base);
            if (throttle && bases.size() % 16 == 0) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(2));
            }
        }
        return bases;
    };
    std::vector<uint64_t> seen_fast, seen_slow;
    std::thread tf([&] { seen_fast = consume(fast, false); });
    std::thread ts([&] { seen_slow = consume(slow, true); });

    for (int i = 0; i < kChunks; ++i)
        ASSERT_TRUE(ring.push(std::make_shared<TraceChunk>(uint64_t(i), 4u)));
    ring.close();
    tf.join();
    ts.join();

    ASSERT_EQ(seen_fast.size(), size_t(kChunks));
    ASSERT_EQ(seen_slow.size(), size_t(kChunks));
    for (int i = 0; i < kChunks; ++i) {
        EXPECT_EQ(seen_fast[size_t(i)], uint64_t(i));
        EXPECT_EQ(seen_slow[size_t(i)], uint64_t(i));
    }
}

TEST(ChunkRing, PushFailsOnceEveryConsumerDetaches)
{
    ChunkRing ring(4);
    // No consumer ever registered: nothing can observe a push.
    EXPECT_FALSE(ring.push(std::make_shared<TraceChunk>(0, 4u)));

    ChunkRing ring2(4);
    const int a = ring2.addConsumer();
    const int b = ring2.addConsumer();
    EXPECT_TRUE(ring2.push(std::make_shared<TraceChunk>(0, 4u)));
    ring2.detach(a);
    EXPECT_TRUE(ring2.push(std::make_shared<TraceChunk>(1, 4u)));
    ring2.detach(b);
    EXPECT_FALSE(ring2.push(std::make_shared<TraceChunk>(2, 4u)));
}

TEST(StreamFanout, BroadcastSlotsReplayOneGenerationIdentically)
{
    constexpr uint64_t kInsts = 20000;
    const auto source = syntheticSource(kInsts, 512);
    const auto reference = drain(source);

    auto fanout = source.openFanout(3);
    ASSERT_EQ(fanout->consumers(), 3u);
    std::vector<std::unique_ptr<ChunkStream>> slots(3);
    for (size_t i = 0; i < 3; ++i)
        slots[i] = fanout->stream(i);

    // One generation feeds all three cursors, so the slots must be
    // drained concurrently (the bounded ring ties them together).
    std::vector<std::vector<Instruction>> seen(3);
    std::vector<std::thread> threads;
    for (size_t i = 0; i < 3; ++i) {
        threads.emplace_back([&, i] {
            while (ChunkPtr c = slots[i]->next())
                for (uint32_t j = 0; j < c->count; ++j)
                    seen[i].push_back(c->get(j));
        });
    }
    for (std::thread &t : threads)
        t.join();

    // All slots rode ONE producer: one generator construction total.
    EXPECT_EQ(source.generatorsBuilt(), 1u);
    for (size_t i = 0; i < 3; ++i) {
        ASSERT_EQ(seen[i].size(), reference.size()) << "slot " << i;
        for (size_t j = 0; j < reference.size(); ++j)
            expectSameInst(seen[i][j], reference[j]);
    }
}

TEST(StreamFanout, AbandonedSlotDoesNotStallSiblings)
{
    const auto source = syntheticSource(1u << 18, 1024);
    auto fanout = source.openFanout(2);
    auto keeper = fanout->stream(0);
    {
        // Claim, take one chunk, abandon: the dropped cursor detaches
        // so the survivor (and the producer) keep flowing.
        auto dropped = fanout->stream(1);
        ASSERT_NE(dropped->next(), nullptr);
    }
    uint64_t drained = 0;
    while (ChunkPtr c = keeper->next())
        drained += c->count;
    EXPECT_EQ(drained, uint64_t(1) << 18);
}

TEST(StreamFanout, UnclaimedSlotsDetachOnDestruction)
{
    const auto source = syntheticSource(1u << 18, 1024);
    auto fanout = source.openFanout(3);
    auto only = fanout->stream(0);
    // Slots 1 and 2 are never claimed. They are still registered
    // consumers (a late claimer must miss nothing), so they hold the
    // bounded ring back and slot 0 can only run ring-capacity chunks
    // ahead. Destroying the fan-out mid-trace must detach the
    // unclaimed slots and join the producer without hanging.
    const ChunkPtr first = only->next();
    ASSERT_NE(first, nullptr);
    EXPECT_EQ(first->base, 0u);
    only.reset();
    fanout.reset();
}

TEST(StreamFanout, ZeroLengthTraceEndsEverySlotImmediately)
{
    const auto source = syntheticSource(0, 256);
    auto fanout = source.openFanout(2);
    auto s0 = fanout->stream(0);
    auto s1 = fanout->stream(1);
    EXPECT_EQ(s0->next(), nullptr);
    EXPECT_EQ(s1->next(), nullptr);
}

TEST(GeneratedChunkSource, SequentialOpensReuseOneGenerator)
{
    // The generator-pool regression handle: reopening a source for
    // pass after pass (annotate, then each engine) must reset() the
    // pooled generator, not construct a fresh one per open.
    const auto source = syntheticSource(5000, 512);
    const auto first = drain(source);
    const auto second = drain(source);
    const auto third = drain(source);
    EXPECT_EQ(source.generatorsBuilt(), 1u);
    ASSERT_EQ(third.size(), first.size());
    for (size_t i = 0; i < first.size(); ++i) {
        expectSameInst(second[i], first[i]);
        expectSameInst(third[i], first[i]);
    }
}

TEST(LimitedSource, ResetRestoresTheProducedWindow)
{
    SyntheticSource inner(99);
    LimitedSource limited(inner, 7);

    auto drain_limited = [&limited] {
        std::vector<Instruction> insts;
        Instruction inst;
        while (limited.next(inst))
            insts.push_back(inst);
        return insts;
    };

    const auto first = drain_limited();
    ASSERT_EQ(first.size(), 7u);
    Instruction probe;
    EXPECT_FALSE(limited.next(probe)); // window stays exhausted

    // reset() must rewind the inner source AND re-open the window:
    // the second pass yields the same seven instructions, not zero
    // (a stale produced-count) and not a continuation.
    limited.reset();
    const auto second = drain_limited();
    ASSERT_EQ(second.size(), 7u);
    for (size_t i = 0; i < first.size(); ++i)
        expectSameInst(first[i], second[i]);
}

} // namespace mlpsim::test
