/**
 * @file
 * Streaming trace-layer tests: SoA chunk round-trips, the bounded
 * SPMC chunk ring, replayable generated chunk sources, and the
 * LimitedSource window-reset contract the replay path depends on.
 */
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "trace/chunk_ring.hh"
#include "trace/stream_source.hh"
#include "trace/trace_buffer.hh"
#include "trace/trace_source.hh"

namespace mlpsim::test {

using namespace mlpsim::trace;

namespace {

/** Deterministic, infinite, replayable synthetic instruction mix. */
class SyntheticSource : public TraceSource
{
  public:
    explicit SyntheticSource(uint64_t seed_value)
        : seed(seed_value | 1), state(seed)
    {
    }

    bool
    next(Instruction &inst) override
    {
        const uint64_t r = nextRand();
        const uint64_t pc = 0x400000 + (r % 4096) * 4;
        switch (r % 5) {
        case 0:
            inst = makeLoad(pc, uint8_t(r % 32), r * 64, uint8_t(r % 16),
                            r ^ 0x5a5a5a5a);
            break;
        case 1:
            inst = makeStore(pc, r * 64, uint8_t(r % 32), noReg, r);
            break;
        case 2:
            inst = makeBranch(pc, pc + 16, (r >> 7) & 1, uint8_t(r % 32));
            break;
        case 3:
            inst = makeSerializing(pc, (r % 3) ? r * 64 : 0);
            break;
        default:
            inst = makeAlu(pc, uint8_t(r % 32), uint8_t((r >> 5) % 32),
                           uint8_t((r >> 10) % 32));
            break;
        }
        return true;
    }

    void reset() override { state = seed; }
    std::string name() const override { return "synthetic"; }

  private:
    uint64_t
    nextRand()
    {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        return state >> 17;
    }

    uint64_t seed;
    uint64_t state;
};

void
expectSameInst(const Instruction &a, const Instruction &b)
{
    EXPECT_EQ(a.pc, b.pc);
    EXPECT_EQ(a.effAddr, b.effAddr);
    EXPECT_EQ(a.rawMeta(), b.rawMeta());
    EXPECT_EQ(a.rawPayload(), b.rawPayload());
    EXPECT_EQ(a.dst, b.dst);
    for (unsigned s = 0; s < maxSrcRegs; ++s)
        EXPECT_EQ(a.src[s], b.src[s]);
}

GeneratedChunkSource
syntheticSource(uint64_t limit, uint32_t chunk_cap)
{
    return GeneratedChunkSource(
        "synthetic", limit,
        [] { return std::make_unique<SyntheticSource>(42); }, chunk_cap);
}

/** Drain one stream into a flat instruction vector. */
std::vector<Instruction>
drain(const ChunkSource &source)
{
    std::vector<Instruction> insts;
    auto stream = source.open();
    while (ChunkPtr c = stream->next()) {
        EXPECT_EQ(c->base, insts.size());
        for (uint32_t i = 0; i < c->count; ++i)
            insts.push_back(c->get(i));
    }
    return insts;
}

} // namespace

TEST(TraceChunk, RoundTripsEveryFieldAndHelper)
{
    SyntheticSource src(7);
    TraceChunk chunk(100, 256);
    std::vector<Instruction> ref;
    for (int i = 0; i < 200; ++i) {
        Instruction inst;
        ASSERT_TRUE(src.next(inst));
        chunk.append(inst);
        ref.push_back(inst);
    }
    EXPECT_EQ(chunk.base, 100u);
    EXPECT_EQ(chunk.count, 200u);
    EXPECT_EQ(chunk.end(), 300u);
    EXPECT_FALSE(chunk.full());
    for (uint32_t i = 0; i < chunk.count; ++i) {
        expectSameInst(chunk.get(i), ref[i]);
        // The column helpers must agree with the packed record's own
        // decoders — they share Instruction's bit constants.
        EXPECT_EQ(chunk.cls(i), ref[i].cls());
        EXPECT_EQ(chunk.brKind(i), ref[i].brKind());
        EXPECT_EQ(chunk.taken(i), ref[i].taken());
        EXPECT_EQ(chunk.isBranch(i), ref[i].isBranch());
        EXPECT_EQ(chunk.isSerializing(i), ref[i].isSerializing());
        EXPECT_EQ(chunk.hasDst(i), ref[i].hasDst());
        EXPECT_EQ(chunk.value(i), ref[i].value());
    }
}

TEST(ChunkRing, SpmcDeliversEveryChunkInOrderToEveryConsumer)
{
    constexpr int kChunks = 50;
    ChunkRing ring(2);
    const int c0 = ring.addConsumer();
    const int c1 = ring.addConsumer();

    auto consume = [&ring](int consumer) {
        std::vector<uint64_t> bases;
        while (ChunkPtr c = ring.pop(consumer))
            bases.push_back(c->base);
        return bases;
    };
    std::vector<uint64_t> seen0, seen1;
    std::thread t0([&] { seen0 = consume(c0); });
    std::thread t1([&] { seen1 = consume(c1); });

    for (int i = 0; i < kChunks; ++i) {
        auto chunk = std::make_shared<TraceChunk>(uint64_t(i), 4u);
        ASSERT_TRUE(ring.push(std::move(chunk)));
    }
    ring.close();
    t0.join();
    t1.join();

    ASSERT_EQ(seen0.size(), size_t(kChunks));
    ASSERT_EQ(seen1.size(), size_t(kChunks));
    for (int i = 0; i < kChunks; ++i) {
        EXPECT_EQ(seen0[size_t(i)], uint64_t(i));
        EXPECT_EQ(seen1[size_t(i)], uint64_t(i));
    }
}

TEST(ChunkRing, DetachedConsumersStopTheProducer)
{
    ChunkRing ring(2);
    const int consumer = ring.addConsumer();

    // Consumer takes three chunks then abandons the stream.
    std::thread t([&] {
        for (int i = 0; i < 3; ++i)
            ASSERT_NE(ring.pop(consumer), nullptr);
        ring.detach(consumer);
    });

    // Producer tries to push far more than the ring could ever hold;
    // push() returning false (not a deadlock) is the teardown path.
    int pushed = 0;
    while (pushed < 1000) {
        if (!ring.push(std::make_shared<TraceChunk>(uint64_t(pushed), 4u)))
            break;
        ++pushed;
    }
    t.join();
    EXPECT_LT(pushed, 1000);
}

TEST(GeneratedChunkSource, ShapesChunksToCapacityAndLimit)
{
    const auto source = syntheticSource(1000, 256);
    EXPECT_EQ(source.size(), 1000u);
    EXPECT_EQ(source.chunkCapacity(), 256u);

    auto stream = source.open();
    std::vector<ChunkPtr> chunks;
    while (ChunkPtr c = stream->next())
        chunks.push_back(std::move(c));
    // 1000 = 3 full chunks of 256 + one partial of 232.
    ASSERT_EQ(chunks.size(), 4u);
    for (size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(chunks[i]->base, i * 256);
        EXPECT_EQ(chunks[i]->count, 256u);
    }
    EXPECT_EQ(chunks[3]->base, 768u);
    EXPECT_EQ(chunks[3]->count, 232u);
}

TEST(GeneratedChunkSource, EveryOpenReplaysTheIdenticalStream)
{
    const auto source = syntheticSource(5000, 512);
    const auto first = drain(source);
    const auto second = drain(source);
    ASSERT_EQ(first.size(), 5000u);
    ASSERT_EQ(second.size(), 5000u);
    for (size_t i = 0; i < first.size(); ++i)
        expectSameInst(first[i], second[i]);
}

TEST(GeneratedChunkSource, StreamMatchesMaterialisedBuffer)
{
    constexpr uint64_t kInsts = 5000;
    SyntheticSource generator(42);
    TraceBuffer buffer("synthetic");
    buffer.fill(generator, kInsts);
    ASSERT_EQ(buffer.size(), kInsts);

    const auto streamed = drain(syntheticSource(kInsts, 512));
    ASSERT_EQ(streamed.size(), kInsts);
    for (uint64_t i = 0; i < kInsts; ++i)
        expectSameInst(streamed[size_t(i)], buffer.at(size_t(i)));
}

TEST(GeneratedChunkSource, MidStreamTeardownJoinsTheProducer)
{
    const auto source = syntheticSource(1u << 20, 1024);
    // Abandon several streams after one chunk each: the destructor
    // must detach and join the producer thread without hanging even
    // though the ring is full and the trace is nowhere near done.
    for (int round = 0; round < 5; ++round) {
        auto stream = source.open();
        ASSERT_NE(stream->next(), nullptr);
    }
}

TEST(LimitedSource, ResetRestoresTheProducedWindow)
{
    SyntheticSource inner(99);
    LimitedSource limited(inner, 7);

    auto drain_limited = [&limited] {
        std::vector<Instruction> insts;
        Instruction inst;
        while (limited.next(inst))
            insts.push_back(inst);
        return insts;
    };

    const auto first = drain_limited();
    ASSERT_EQ(first.size(), 7u);
    Instruction probe;
    EXPECT_FALSE(limited.next(probe)); // window stays exhausted

    // reset() must rewind the inner source AND re-open the window:
    // the second pass yields the same seven instructions, not zero
    // (a stale produced-count) and not a continuation.
    limited.reset();
    const auto second = drain_limited();
    ASSERT_EQ(second.size(), 7u);
    for (size_t i = 0; i < first.size(); ++i)
        expectSameInst(first[i], second[i]);
}

} // namespace mlpsim::test
