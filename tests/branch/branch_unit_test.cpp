/** @file Composite branch unit and the trace annotator. */
#include <gtest/gtest.h>

#include "branch/branch_unit.hh"

namespace mlpsim::test {

using namespace mlpsim::branch;
using namespace mlpsim::trace;

namespace {

BranchConfig
smallConfig()
{
    BranchConfig cfg;
    cfg.gshareEntries = 4096;
    cfg.historyBits = 8;
    cfg.btbEntries = 256;
    cfg.rasDepth = 8;
    return cfg;
}

} // namespace

TEST(BranchUnit, LearnsStableConditionalBranch)
{
    BranchUnit unit(smallConfig());
    const auto br = makeBranch(0x400, 0x500, true);
    // First encounters mispredict (BTB cold); later ones should hit.
    for (int i = 0; i < 16; ++i)
        unit.predictAndUpdate(br);
    EXPECT_FALSE(unit.predictAndUpdate(br));
    EXPECT_EQ(unit.branches(), 17u);
}

TEST(BranchUnit, TakenNeedsBtbTarget)
{
    BranchUnit unit(smallConfig());
    // Direction predicted taken (weakly-taken init) but BTB empty:
    // first taken branch mispredicts on target.
    EXPECT_TRUE(unit.predictAndUpdate(makeBranch(0x400, 0x500, true)));
    EXPECT_FALSE(unit.predictAndUpdate(makeBranch(0x400, 0x500, true)));
}

TEST(BranchUnit, TargetChangeMispredicts)
{
    BranchUnit unit(smallConfig());
    unit.predictAndUpdate(makeBranch(0x400, 0x500, true));
    unit.predictAndUpdate(makeBranch(0x400, 0x500, true));
    EXPECT_TRUE(unit.predictAndUpdate(makeBranch(0x400, 0x600, true)));
}

TEST(BranchUnit, CallReturnPairPredictsThroughRas)
{
    BranchUnit unit(smallConfig());
    const auto call =
        makeBranch(0x400, 0x1000, true, noReg, BranchKind::Call);
    const auto ret =
        makeBranch(0x1010, 0x404, true, noReg, BranchKind::Return);
    unit.predictAndUpdate(call); // cold BTB: mispredicts, pushes RAS
    EXPECT_FALSE(unit.predictAndUpdate(ret)); // RAS: 0x400+4 == 0x404
}

TEST(BranchUnit, ReturnWithWrongTargetMispredicts)
{
    BranchUnit unit(smallConfig());
    unit.predictAndUpdate(
        makeBranch(0x400, 0x1000, true, noReg, BranchKind::Call));
    EXPECT_TRUE(unit.predictAndUpdate(
        makeBranch(0x1010, 0x9999, true, noReg, BranchKind::Return)));
}

TEST(BranchUnit, NestedCallsReturnInOrder)
{
    BranchUnit unit(smallConfig());
    unit.predictAndUpdate(
        makeBranch(0x400, 0x1000, true, noReg, BranchKind::Call));
    unit.predictAndUpdate(
        makeBranch(0x1000, 0x2000, true, noReg, BranchKind::Call));
    EXPECT_FALSE(unit.predictAndUpdate(
        makeBranch(0x2010, 0x1004, true, noReg, BranchKind::Return)));
    EXPECT_FALSE(unit.predictAndUpdate(
        makeBranch(0x1010, 0x404, true, noReg, BranchKind::Return)));
}

TEST(BranchUnit, JumpUsesBtb)
{
    BranchUnit unit(smallConfig());
    const auto jump =
        makeBranch(0x400, 0x3000, true, noReg, BranchKind::Jump);
    EXPECT_TRUE(unit.predictAndUpdate(jump));
    EXPECT_FALSE(unit.predictAndUpdate(jump));
}

TEST(BranchUnit, PerfectModeNeverMispredicts)
{
    BranchConfig cfg = smallConfig();
    cfg.perfect = true;
    BranchUnit unit(cfg);
    EXPECT_FALSE(unit.predictAndUpdate(makeBranch(0x400, 0x500, true)));
    EXPECT_FALSE(unit.predictAndUpdate(
        makeBranch(0x404, 0x900, true, noReg, BranchKind::Return)));
    EXPECT_DOUBLE_EQ(unit.mispredictRate(), 0.0);
}

TEST(BranchUnit, ResetClearsState)
{
    BranchUnit unit(smallConfig());
    unit.predictAndUpdate(makeBranch(0x400, 0x500, true));
    unit.reset();
    EXPECT_EQ(unit.branches(), 0u);
    // BTB cleared: taken branch mispredicts on target again.
    EXPECT_TRUE(unit.predictAndUpdate(makeBranch(0x400, 0x500, true)));
}

TEST(AnnotateBranches, FlagsOnlyBranches)
{
    trace::TraceBuffer buf;
    buf.append(makeAlu(0x100, 1));
    buf.append(makeBranch(0x104, 0x200, true));
    buf.append(makeLoad(0x108, 1, 0x1000));
    const auto ann = annotateBranches(buf, smallConfig());
    EXPECT_EQ(ann.branches, 1u);
    EXPECT_FALSE(ann.isMispredict(0));
    EXPECT_FALSE(ann.isMispredict(2));
}

TEST(AnnotateBranches, WarmupTrainsButIsNotCounted)
{
    trace::TraceBuffer buf;
    for (int i = 0; i < 10; ++i)
        buf.append(makeBranch(0x400, 0x500, true));
    const auto ann = annotateBranches(buf, smallConfig(), 5);
    EXPECT_EQ(ann.branches, 5u);
    // The cold mispredictions happened during warm-up.
    EXPECT_EQ(ann.mispredicts, 0u);
    EXPECT_DOUBLE_EQ(ann.mispredictRate(), 0.0);
}

TEST(AnnotateBranches, PerfectModeFlagsNothing)
{
    trace::TraceBuffer buf;
    for (int i = 0; i < 10; ++i)
        buf.append(makeBranch(0x400 + 32u * unsigned(i), 0x9000, true));
    BranchConfig cfg = smallConfig();
    cfg.perfect = true;
    const auto ann = annotateBranches(buf, cfg);
    EXPECT_EQ(ann.mispredicts, 0u);
}

} // namespace mlpsim::test
