/** @file Return address stack. */
#include <gtest/gtest.h>

#include "branch/ras.hh"

namespace mlpsim::test {

using mlpsim::branch::ReturnAddressStack;

TEST(Ras, LifoOrder)
{
    ReturnAddressStack ras(8);
    ras.push(0x100);
    ras.push(0x200);
    ras.push(0x300);
    EXPECT_EQ(ras.pop(), 0x300u);
    EXPECT_EQ(ras.pop(), 0x200u);
    EXPECT_EQ(ras.pop(), 0x100u);
}

TEST(Ras, EmptyPopReturnsZero)
{
    ReturnAddressStack ras(4);
    EXPECT_EQ(ras.pop(), 0u);
    EXPECT_EQ(ras.size(), 0u);
}

TEST(Ras, OverflowWrapsLikeHardware)
{
    ReturnAddressStack ras(2);
    ras.push(1);
    ras.push(2);
    ras.push(3); // overwrites the oldest
    EXPECT_EQ(ras.size(), 2u);
    EXPECT_EQ(ras.pop(), 3u);
    EXPECT_EQ(ras.pop(), 2u);
    EXPECT_EQ(ras.pop(), 0u); // 1 was lost
}

TEST(Ras, InterleavedPushPop)
{
    ReturnAddressStack ras(4);
    ras.push(1);
    EXPECT_EQ(ras.pop(), 1u);
    ras.push(2);
    ras.push(3);
    EXPECT_EQ(ras.pop(), 3u);
    ras.push(4);
    EXPECT_EQ(ras.pop(), 4u);
    EXPECT_EQ(ras.pop(), 2u);
}

TEST(Ras, ResetEmpties)
{
    ReturnAddressStack ras(4);
    ras.push(5);
    ras.reset();
    EXPECT_EQ(ras.size(), 0u);
    EXPECT_EQ(ras.pop(), 0u);
}

TEST(RasDeath, RejectsZeroDepth)
{
    EXPECT_EXIT(ReturnAddressStack(0), ::testing::ExitedWithCode(1),
                "positive");
}

} // namespace mlpsim::test
