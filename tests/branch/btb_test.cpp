/** @file Branch target buffer. */
#include <gtest/gtest.h>

#include "branch/btb.hh"

namespace mlpsim::test {

using mlpsim::branch::Btb;

TEST(Btb, MissThenHitAfterUpdate)
{
    Btb btb(64, 4);
    uint64_t target = 0;
    EXPECT_FALSE(btb.lookup(0x400, target));
    btb.update(0x400, 0x1234);
    ASSERT_TRUE(btb.lookup(0x400, target));
    EXPECT_EQ(target, 0x1234u);
}

TEST(Btb, UpdateOverwritesTarget)
{
    Btb btb(64, 4);
    btb.update(0x400, 0x1111);
    btb.update(0x400, 0x2222);
    uint64_t target = 0;
    ASSERT_TRUE(btb.lookup(0x400, target));
    EXPECT_EQ(target, 0x2222u);
}

TEST(Btb, LruEvictionWithinSet)
{
    Btb btb(8, 2); // 4 sets x 2 ways
    // Three branches aliasing set 0 (pc>>2 multiples of 4).
    const uint64_t a = 0x00, b = 0x40, c = 0x80;
    btb.update(a, 1);
    btb.update(b, 2);
    btb.update(a, 1); // refresh a
    btb.update(c, 3); // evicts b
    uint64_t t = 0;
    EXPECT_TRUE(btb.lookup(a, t));
    EXPECT_FALSE(btb.lookup(b, t));
    EXPECT_TRUE(btb.lookup(c, t));
}

TEST(Btb, DistinctSetsDoNotInterfere)
{
    Btb btb(8, 2);
    btb.update(0x04, 7); // set 1
    btb.update(0x00, 1);
    btb.update(0x40, 2);
    btb.update(0x80, 3); // set-0 churn
    uint64_t t = 0;
    EXPECT_TRUE(btb.lookup(0x04, t));
    EXPECT_EQ(t, 7u);
}

TEST(Btb, ResetDropsEverything)
{
    Btb btb(64, 4);
    btb.update(0x400, 0x1234);
    btb.reset();
    uint64_t t = 0;
    EXPECT_FALSE(btb.lookup(0x400, t));
}

TEST(BtbDeath, RejectsBadGeometry)
{
    EXPECT_EXIT(Btb(100, 3), ::testing::ExitedWithCode(1), "");
    EXPECT_EXIT(Btb(96, 4), ::testing::ExitedWithCode(1),
                "power of two");
}

} // namespace mlpsim::test
