/** @file gshare direction predictor. */
#include <gtest/gtest.h>

#include "branch/gshare.hh"

namespace mlpsim::test {

using mlpsim::branch::Gshare;

TEST(Gshare, LearnsAlwaysTaken)
{
    Gshare g(1024, 8);
    for (int i = 0; i < 8; ++i)
        g.update(0x400, true);
    EXPECT_TRUE(g.predict(0x400));
}

TEST(Gshare, LearnsAlwaysNotTaken)
{
    Gshare g(1024, 8);
    for (int i = 0; i < 8; ++i)
        g.update(0x400, false);
    EXPECT_FALSE(g.predict(0x400));
}

TEST(Gshare, LearnsAlternatingPatternThroughHistory)
{
    Gshare g(4096, 8);
    // Train T,N,T,N...: history disambiguates the two contexts.
    bool dir = false;
    for (int i = 0; i < 400; ++i) {
        dir = !dir;
        g.update(0x800, dir);
    }
    int correct = 0;
    for (int i = 0; i < 100; ++i) {
        dir = !dir;
        correct += (g.predict(0x800) == dir);
        g.update(0x800, dir);
    }
    EXPECT_GT(correct, 95);
}

TEST(Gshare, CountersSaturate)
{
    Gshare g(256, 4);
    for (int i = 0; i < 100; ++i)
        g.update(0x10, true);
    // One contrary outcome must not flip a saturated counter.
    g.update(0x10, false);
    EXPECT_TRUE(g.predict(0x10));
}

TEST(Gshare, ResetRestoresWeaklyTaken)
{
    Gshare g(256, 4);
    for (int i = 0; i < 10; ++i)
        g.update(0x10, false);
    g.reset();
    EXPECT_TRUE(g.predict(0x10)); // counters reinitialised weakly taken
}

TEST(GshareDeath, RejectsNonPowerOfTwo)
{
    EXPECT_EXIT(Gshare(1000, 8), ::testing::ExitedWithCode(1),
                "power of two");
}

TEST(Gshare, BiasedBranchAccuracyTracksBias)
{
    Gshare g(64 * 1024, 16);
    // 90% taken, random interleave: accuracy should approach ~90%.
    uint64_t x = 12345;
    int correct = 0, total = 0;
    for (int i = 0; i < 5000; ++i) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        const bool taken = (x >> 33) % 10 != 0;
        if (i > 500) {
            correct += (g.predict(0x1234) == taken);
            ++total;
        }
        g.update(0x1234, taken);
    }
    EXPECT_GT(double(correct) / total, 0.75);
}

} // namespace mlpsim::test
