/**
 * @file
 * End-to-end determinism of the parallel sweep path: preparing
 * workloads and running a small (config x workload) grid with
 * --jobs 1 and --jobs 8 must produce bit-identical traces,
 * MlpResults and CycleSimResults. This is the property that makes the
 * bench suite's parallelism safe: stdout of every bench is a pure
 * function of its flags, never of thread scheduling.
 *
 * Also compiled under ThreadSanitizer (parallel_tests_tsan) so the
 * shared-trace concurrent-read pattern is race-checked in the default
 * ctest tier.
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bench_common.hh"

namespace mlpsim {
namespace {

using bench::BenchSetup;
using bench::PreparedWorkload;
using bench::Sweep;

/** Small-but-nontrivial budgets to keep the grid fast under TSan. */
BenchSetup
smallSetup(unsigned jobs)
{
    BenchSetup setup;
    setup.warmupInsts = 10'000;
    setup.measureInsts = 40'000;
    setup.jobs = jobs;
    setup.annotation.warmupInsts = setup.warmupInsts;
    return setup;
}

std::vector<PreparedWorkload>
prepare(unsigned jobs)
{
    char arg0[] = "determinism_test";
    char *argv[] = {arg0};
    Options opts(1, argv);
    return bench::prepareAll(smallSetup(jobs), opts);
}

/** The grid every test sweeps: three machines per workload. */
std::vector<core::MlpConfig>
machineGrid()
{
    core::MlpConfig decoupled =
        core::MlpConfig::sized(64, core::IssueConfig::D);
    decoupled.robSize = 256;
    return {core::MlpConfig::sized(32, core::IssueConfig::A), decoupled,
            core::MlpConfig::runahead()};
}

void
expectSameMlpResult(const core::MlpResult &a, const core::MlpResult &b)
{
    EXPECT_EQ(a.epochs, b.epochs);
    EXPECT_EQ(a.usefulAccesses, b.usefulAccesses);
    EXPECT_EQ(a.dmissAccesses, b.dmissAccesses);
    EXPECT_EQ(a.imissAccesses, b.imissAccesses);
    EXPECT_EQ(a.pmissAccesses, b.pmissAccesses);
    EXPECT_EQ(a.smissAccesses, b.smissAccesses);
    EXPECT_EQ(a.measuredInsts, b.measuredInsts);
    // Doubles compared for exact equality on purpose: identical code
    // over identical inputs must produce identical bits.
    EXPECT_EQ(a.mlp(), b.mlp());
    for (size_t i = 0; i < core::numInhibitors; ++i) {
        EXPECT_EQ(a.inhibitors.count[i], b.inhibitors.count[i])
            << "inhibitor " << i;
    }
}

TEST(SweepDeterminism, ParallelPreparationYieldsBitIdenticalTraces)
{
    const auto serial = prepare(1);
    const auto parallel = prepare(8);
    ASSERT_EQ(serial.size(), parallel.size());
    ASSERT_EQ(serial.size(), 3u);

    for (size_t w = 0; w < serial.size(); ++w) {
        EXPECT_EQ(serial[w].name, parallel[w].name);
        const auto &a = *serial[w].buffer;
        const auto &b = *parallel[w].buffer;
        ASSERT_EQ(a.size(), b.size()) << serial[w].name;
        for (size_t i = 0; i < a.size(); ++i) {
            const auto &x = a.at(i);
            const auto &y = b.at(i);
            const bool same = x.pc == y.pc && x.effAddr == y.effAddr &&
                              x.value() == y.value() && x.target() == y.target() &&
                              x.cls() == y.cls() && x.taken() == y.taken();
            ASSERT_TRUE(same) << serial[w].name << " instruction " << i;
        }
    }
}

TEST(SweepDeterminism, SeedsDependOnNameNotPreparationOrder)
{
    // prepareWorkload() must give the same trace no matter which other
    // workloads were prepared before it on the same thread.
    const auto alone = bench::prepareWorkload("specweb99", smallSetup(1));
    bench::prepareWorkload("database", smallSetup(1));
    bench::prepareWorkload("specjbb2000", smallSetup(1));
    const auto after = bench::prepareWorkload("specweb99", smallSetup(1));
    ASSERT_EQ(alone.buffer->size(), after.buffer->size());
    for (size_t i = 0; i < alone.buffer->size(); ++i) {
        ASSERT_EQ(alone.buffer->at(i).pc, after.buffer->at(i).pc)
            << "instruction " << i;
        ASSERT_EQ(alone.buffer->at(i).effAddr,
                  after.buffer->at(i).effAddr)
            << "instruction " << i;
    }
    EXPECT_EQ(workloads::workloadSeed("specweb99"),
              workloads::workloadSeed("specweb99"));
    EXPECT_NE(workloads::workloadSeed("database"),
              workloads::workloadSeed("specjbb2000"));
}

TEST(SweepDeterminism, MlpGridBitIdenticalAcrossJobCounts)
{
    const auto wlsSerial = prepare(1);
    const auto wlsParallel = prepare(8);
    const auto grid = machineGrid();

    auto sweepAll = [&grid](const std::vector<PreparedWorkload> &wls,
                            unsigned jobs) {
        Sweep sweep(smallSetup(jobs));
        std::vector<Job<core::MlpResult>> cells;
        for (const auto &wl : wls)
            for (const auto &cfg : grid)
                cells.push_back(sweep.mlp(cfg, wl));
        sweep.run("determinism-mlp");
        return cells;
    };

    auto serial = sweepAll(wlsSerial, 1);
    auto parallel = sweepAll(wlsParallel, 8);
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i) {
        SCOPED_TRACE("cell " + std::to_string(i));
        expectSameMlpResult(serial[i].get(), parallel[i].get());
    }
}

TEST(SweepDeterminism, CycleSimGridBitIdenticalAcrossJobCounts)
{
    const auto wlsSerial = prepare(1);
    const auto wlsParallel = prepare(8);

    auto sweepAll = [](const std::vector<PreparedWorkload> &wls,
                       unsigned jobs) {
        Sweep sweep(smallSetup(jobs));
        std::vector<Job<cyclesim::CycleSimResult>> cells;
        for (const auto &wl : wls) {
            for (unsigned latency : {200u, 1000u}) {
                cyclesim::CycleSimConfig cfg;
                cfg.offChipLatency = latency;
                cells.push_back(sweep.cycleSim(cfg, wl));
            }
        }
        sweep.run("determinism-cyclesim");
        return cells;
    };

    auto serial = sweepAll(wlsSerial, 1);
    auto parallel = sweepAll(wlsParallel, 8);
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i) {
        const auto &a = serial[i].get();
        const auto &b = parallel[i].get();
        EXPECT_EQ(a.cycles, b.cycles) << "cell " << i;
        EXPECT_EQ(a.instructions, b.instructions) << "cell " << i;
        EXPECT_EQ(a.offChipAccesses, b.offChipAccesses) << "cell " << i;
        EXPECT_EQ(a.mlpCycles, b.mlpCycles) << "cell " << i;
        EXPECT_EQ(a.mlpSum, b.mlpSum) << "cell " << i;
    }
}

} // namespace
} // namespace mlpsim
