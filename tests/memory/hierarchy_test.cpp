/** @file Two-level hierarchy: levels, inclusion recency, perfect modes. */
#include <gtest/gtest.h>

#include "memory/hierarchy.hh"

namespace mlpsim::test {

using namespace mlpsim::memory;

namespace {

HierarchyConfig
smallConfig()
{
    HierarchyConfig cfg;
    cfg.l1i = {1024, 2, 64};
    cfg.l1d = {1024, 2, 64};
    cfg.l2 = {8192, 4, 64};
    return cfg;
}

} // namespace

TEST(Hierarchy, ColdReadGoesOffChip)
{
    CacheHierarchy mem(smallConfig());
    EXPECT_EQ(mem.dataRead(0x1000).level, AccessLevel::OffChip);
    EXPECT_EQ(mem.dataRead(0x1000).level, AccessLevel::L1);
}

TEST(Hierarchy, L1EvictionFallsBackToL2)
{
    CacheHierarchy mem(smallConfig());
    // 1KB 2-way L1 = 8 sets; lines 0x0, 0x2000, 0x4000 alias set 0.
    mem.dataRead(0x0);
    mem.dataRead(0x2000);
    mem.dataRead(0x4000); // evicts 0x0 from L1
    EXPECT_EQ(mem.dataRead(0x0).level, AccessLevel::L2);
}

TEST(Hierarchy, InstFetchUsesSeparateL1)
{
    CacheHierarchy mem(smallConfig());
    mem.instFetch(0x7000);
    EXPECT_EQ(mem.instFetch(0x7000).level, AccessLevel::L1);
    // The data side never saw that line in its L1, but shares the L2.
    EXPECT_EQ(mem.dataRead(0x7000).level, AccessLevel::L2);
}

TEST(Hierarchy, WriteAllocates)
{
    CacheHierarchy mem(smallConfig());
    EXPECT_EQ(mem.dataWrite(0x3000).level, AccessLevel::OffChip);
    EXPECT_EQ(mem.dataRead(0x3000).level, AccessLevel::L1);
}

TEST(Hierarchy, PrefetchFillsBothLevels)
{
    CacheHierarchy mem(smallConfig());
    EXPECT_EQ(mem.prefetch(0x5000).level, AccessLevel::OffChip);
    EXPECT_EQ(mem.dataRead(0x5000).level, AccessLevel::L1);
}

TEST(Hierarchy, PerfectL2NeverGoesOffChip)
{
    HierarchyConfig cfg = smallConfig();
    cfg.perfectL2 = true;
    CacheHierarchy mem(cfg);
    for (uint64_t a = 0; a < 64; ++a)
        EXPECT_NE(mem.dataRead(a * 4096).level, AccessLevel::OffChip);
}

TEST(Hierarchy, PerfectInstFetchOnlyAffectsISide)
{
    HierarchyConfig cfg = smallConfig();
    cfg.perfectInstFetch = true;
    CacheHierarchy mem(cfg);
    EXPECT_NE(mem.instFetch(0x9000).level, AccessLevel::OffChip);
    EXPECT_EQ(mem.dataRead(0xA0000).level, AccessLevel::OffChip);
}

TEST(Hierarchy, InclusiveRecencyProtectsL1HotLines)
{
    // A line that hits in the L1 keeps its L2 recency fresh, so
    // streaming traffic evicts other lines first.
    CacheHierarchy mem(smallConfig());
    mem.dataRead(0x0); // hot line
    // Stream enough lines through the L2 set of 0x0 to evict it if its
    // recency were stale. L2: 8KB 4-way = 32 sets; 0x0's set peers are
    // multiples of 32*64 = 0x800.
    for (int i = 1; i <= 3; ++i) {
        mem.dataRead(uint64_t(i) * 0x800);
        mem.dataRead(0x0); // L1 hit -> touches L2 recency
    }
    mem.dataRead(4 * 0x800); // fills the set's 4th... evicts LRU peer
    // The hot line must still be L2-resident: evict it from the L1 by
    // aliasing, then re-read.
    mem.dataRead(0x2000);
    mem.dataRead(0x4000);
    EXPECT_EQ(mem.dataRead(0x0).level, AccessLevel::L2);
}

TEST(Hierarchy, TlbCountsAccessesAndMisses)
{
    CacheHierarchy mem(smallConfig());
    mem.dataRead(0x0);
    mem.dataRead(0x8);    // same page
    mem.instFetch(0x100000);
    EXPECT_EQ(mem.tlbAccesses(), 3u);
    EXPECT_GE(mem.tlbMisses(), 2u);
}

TEST(Hierarchy, ResetClearsEverything)
{
    CacheHierarchy mem(smallConfig());
    mem.dataRead(0x1000);
    mem.reset();
    EXPECT_EQ(mem.dataRead(0x1000).level, AccessLevel::OffChip);
    EXPECT_EQ(mem.tlbAccesses(), 1u);
}

TEST(Hierarchy, EvictionReportsL2Victim)
{
    CacheHierarchy mem(smallConfig());
    // Fill one L2 set (4 ways) plus one more.
    uint64_t stride = 32 * 64; // L2 sets * line
    for (int i = 0; i < 4; ++i)
        mem.dataRead(uint64_t(i) * stride);
    const auto r = mem.dataRead(4 * stride);
    EXPECT_TRUE(r.offChip());
    EXPECT_TRUE(r.l2Evicted);
    EXPECT_EQ(r.l2EvictedLine, 0u);
}

TEST(Hierarchy, DefaultConfigMatchesPaper)
{
    HierarchyConfig cfg;
    EXPECT_EQ(cfg.l1i.sizeBytes, 32u * 1024);
    EXPECT_EQ(cfg.l1d.sizeBytes, 32u * 1024);
    EXPECT_EQ(cfg.l2.sizeBytes, 2u * 1024 * 1024);
    EXPECT_EQ(cfg.l1i.assoc, 4u);
    EXPECT_EQ(cfg.l2.assoc, 4u);
    EXPECT_EQ(cfg.l2.lineBytes, 64u);
    EXPECT_EQ(cfg.tlbEntries, 2048u);
}

} // namespace mlpsim::test
