/** @file Set-associative cache: hits, LRU, probe/touch/invalidate. */
#include <gtest/gtest.h>

#include "memory/cache.hh"

namespace mlpsim::test {

using namespace mlpsim::memory;

namespace {

/** A tiny 2-way cache with 2 sets of 64B lines (256B total). */
CacheConfig
tinyConfig()
{
    return CacheConfig{256, 2, 64};
}

/** Address mapping to @p set with distinct tag @p k. */
uint64_t
addrFor(unsigned set, unsigned k)
{
    return uint64_t(k) * 128 + set * 64;
}

} // namespace

TEST(Cache, FirstAccessMissesSecondHits)
{
    Cache c(tinyConfig());
    EXPECT_FALSE(c.access(0x40).hit);
    EXPECT_TRUE(c.access(0x40).hit);
    EXPECT_EQ(c.accesses(), 2u);
    EXPECT_EQ(c.misses(), 1u);
    EXPECT_DOUBLE_EQ(c.missRatio(), 0.5);
}

TEST(Cache, SameLineDifferentOffsetsHit)
{
    Cache c(tinyConfig());
    c.access(0x40);
    EXPECT_TRUE(c.access(0x40 + 63).hit);
    EXPECT_TRUE(c.access(0x40 + 8).hit);
}

TEST(Cache, LruEvictsLeastRecentlyUsed)
{
    Cache c(tinyConfig());
    c.access(addrFor(0, 0)); // way 0
    c.access(addrFor(0, 1)); // way 1
    c.access(addrFor(0, 0)); // refresh 0
    const auto r = c.access(addrFor(0, 2)); // evicts 1
    EXPECT_TRUE(r.evicted);
    EXPECT_EQ(r.evictedLine, addrFor(0, 1));
    EXPECT_TRUE(c.access(addrFor(0, 0)).hit);
    EXPECT_FALSE(c.access(addrFor(0, 1)).hit);
}

TEST(Cache, SetsAreIndependent)
{
    Cache c(tinyConfig());
    c.access(addrFor(0, 0));
    c.access(addrFor(0, 1));
    c.access(addrFor(1, 0));
    c.access(addrFor(0, 2)); // thrashes set 0 only
    EXPECT_TRUE(c.access(addrFor(1, 0)).hit);
}

TEST(Cache, ProbeDoesNotDisturbState)
{
    Cache c(tinyConfig());
    c.access(addrFor(0, 0));
    c.access(addrFor(0, 1));
    // Probing way 0 must not refresh it.
    EXPECT_TRUE(c.probe(addrFor(0, 0)));
    EXPECT_FALSE(c.probe(addrFor(0, 9)));
    c.access(addrFor(0, 2)); // should evict k=0 (oldest by access)
    EXPECT_FALSE(c.probe(addrFor(0, 0)));
    EXPECT_EQ(c.accesses(), 3u); // probes not counted
}

TEST(Cache, TouchRefreshesRecencyWithoutStats)
{
    Cache c(tinyConfig());
    c.access(addrFor(0, 0));
    c.access(addrFor(0, 1));
    c.touch(addrFor(0, 0)); // make k=1 the LRU
    const uint64_t accesses_before = c.accesses();
    c.access(addrFor(0, 2));
    EXPECT_TRUE(c.probe(addrFor(0, 0)));
    EXPECT_FALSE(c.probe(addrFor(0, 1)));
    EXPECT_EQ(c.accesses(), accesses_before + 1); // touch uncounted
}

TEST(Cache, TouchOnAbsentLineIsNoop)
{
    Cache c(tinyConfig());
    c.touch(0x40);
    EXPECT_FALSE(c.probe(0x40));
}

TEST(Cache, InvalidateRemovesLine)
{
    Cache c(tinyConfig());
    c.access(0x40);
    c.invalidate(0x40);
    EXPECT_FALSE(c.probe(0x40));
    c.invalidate(0x80); // absent: no-op
}

TEST(Cache, ResetClearsContentsAndStats)
{
    Cache c(tinyConfig());
    c.access(0x40);
    c.reset();
    EXPECT_EQ(c.accesses(), 0u);
    EXPECT_EQ(c.misses(), 0u);
    EXPECT_FALSE(c.probe(0x40));
}

TEST(Cache, GeometryAccessors)
{
    Cache c(CacheConfig{32 * 1024, 4, 64});
    EXPECT_EQ(c.numSets(), 128u);
    EXPECT_EQ(c.associativity(), 4u);
    EXPECT_EQ(c.lineSize(), 64u);
    EXPECT_EQ(c.lineAddr(0x12345), 0x12340u & ~63ull);
}

TEST(CacheDeath, RejectsBadGeometry)
{
    EXPECT_EXIT(Cache(CacheConfig{0, 4, 64}),
                ::testing::ExitedWithCode(1), "non-zero");
    EXPECT_EXIT(Cache(CacheConfig{1024, 4, 48}),
                ::testing::ExitedWithCode(1), "power of two");
    EXPECT_EXIT(Cache(CacheConfig{192, 4, 64}),
                ::testing::ExitedWithCode(1), "");
}

/** Capacity property over several geometries: N distinct lines fit a
 *  cache of >= N lines when they map uniformly. */
class CacheCapacityTest
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

TEST_P(CacheCapacityTest, WorkingSetWithinCapacityAlwaysHits)
{
    const auto [size_kb, assoc] = GetParam();
    Cache c(CacheConfig{uint64_t(size_kb) * 1024, assoc, 64});
    const unsigned lines = size_kb * 1024 / 64;
    for (unsigned i = 0; i < lines; ++i)
        c.access(uint64_t(i) * 64);
    // Second sweep in the same order: straight LRU keeps everything.
    for (unsigned i = 0; i < lines; ++i)
        ASSERT_TRUE(c.access(uint64_t(i) * 64).hit) << i;
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheCapacityTest,
    ::testing::Values(std::make_tuple(4u, 1u), std::make_tuple(4u, 2u),
                      std::make_tuple(8u, 4u), std::make_tuple(32u, 4u),
                      std::make_tuple(64u, 8u)));

TEST(Cache, StreamingBeyondCapacityAlwaysMisses)
{
    Cache c(CacheConfig{4096, 4, 64});
    for (int pass = 0; pass < 2; ++pass) {
        for (unsigned i = 0; i < 256; ++i) // 16KB stream through 4KB
            c.access(uint64_t(i) * 64);
    }
    EXPECT_EQ(c.misses(), c.accesses()); // LRU: zero reuse survives
}

} // namespace mlpsim::test
