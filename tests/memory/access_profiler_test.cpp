/** @file Program-order miss annotation: I-side, D-side, prefetch
 *  usefulness, warm-up accounting. */
#include <gtest/gtest.h>

#include "memory/access_profiler.hh"
#include "trace/trace_buffer.hh"

namespace mlpsim::test {

using namespace mlpsim::memory;
using namespace mlpsim::trace;

namespace {

/** Small hierarchy so tests control eviction easily. */
ProfileConfig
smallProfile()
{
    ProfileConfig cfg;
    cfg.hierarchy.l1i = {1024, 2, 64};
    cfg.hierarchy.l1d = {1024, 2, 64};
    cfg.hierarchy.l2 = {8192, 4, 64};
    return cfg;
}

constexpr uint64_t codePc = 0x100000;

} // namespace

TEST(AccessProfiler, FirstLoadMissesRepeatHits)
{
    TraceBuffer buf;
    buf.append(makeLoad(codePc, 1, 0x5000));
    buf.append(makeLoad(codePc + 4, 2, 0x5000));
    const auto ann = AccessProfiler(smallProfile()).profile(buf);
    EXPECT_TRUE(ann.dataMiss(0));
    EXPECT_FALSE(ann.dataMiss(1));
    EXPECT_EQ(ann.loadMisses, 1u);
}

TEST(AccessProfiler, InstructionMissPerLineNotPerInstruction)
{
    TraceBuffer buf;
    // 16 sequential instructions = one 64B I-line.
    for (unsigned i = 0; i < 16; ++i)
        buf.append(makeAlu(codePc + 4 * i, 1));
    // Next line.
    buf.append(makeAlu(codePc + 64, 1));
    const auto ann = AccessProfiler(smallProfile()).profile(buf);
    EXPECT_TRUE(ann.fetchMiss(0));
    for (unsigned i = 1; i < 16; ++i)
        EXPECT_FALSE(ann.fetchMiss(i)) << i;
    EXPECT_TRUE(ann.fetchMiss(16));
    EXPECT_EQ(ann.fetchMisses, 2u);
}

TEST(AccessProfiler, RefetchedColdLineMissesAgainAfterJumpBack)
{
    TraceBuffer buf;
    buf.append(makeAlu(codePc, 1));
    buf.append(makeAlu(codePc + 4096, 1)); // different line
    buf.append(makeAlu(codePc, 1));        // back: line now cached
    const auto ann = AccessProfiler(smallProfile()).profile(buf);
    EXPECT_TRUE(ann.fetchMiss(0));
    EXPECT_TRUE(ann.fetchMiss(1));
    EXPECT_FALSE(ann.fetchMiss(2));
}

TEST(AccessProfiler, UsefulPrefetchCreditedOnLoadTouch)
{
    TraceBuffer buf;
    buf.append(makePrefetch(codePc, 0x9000));
    buf.append(makeLoad(codePc + 4, 1, 0x9008)); // same line
    const auto ann = AccessProfiler(smallProfile()).profile(buf);
    EXPECT_TRUE(ann.usefulPrefetch(0));
    EXPECT_FALSE(ann.dataMiss(1)); // it hits thanks to the prefetch
    EXPECT_EQ(ann.usefulPrefetches, 1u);
    EXPECT_EQ(ann.uselessPrefetches, 0u);
}

TEST(AccessProfiler, UntouchedPrefetchIsUseless)
{
    TraceBuffer buf;
    buf.append(makePrefetch(codePc, 0x9000));
    buf.append(makeLoad(codePc + 4, 1, 0xA000)); // different line
    const auto ann = AccessProfiler(smallProfile()).profile(buf);
    EXPECT_FALSE(ann.usefulPrefetch(0));
    EXPECT_EQ(ann.uselessPrefetches, 1u);
}

TEST(AccessProfiler, StoreTouchDoesNotCreditPrefetch)
{
    // The paper's usefulness criterion: used by a subsequent
    // non-speculative load or instruction fetch (not stores).
    TraceBuffer buf;
    buf.append(makePrefetch(codePc, 0x9000));
    buf.append(makeStore(codePc + 4, 0x9008));
    const auto ann = AccessProfiler(smallProfile()).profile(buf);
    EXPECT_FALSE(ann.usefulPrefetch(0));
}

TEST(AccessProfiler, PrefetchHitIsNotAnOffChipAccess)
{
    TraceBuffer buf;
    buf.append(makeLoad(codePc, 1, 0x9000));
    buf.append(makePrefetch(codePc + 4, 0x9000)); // already resident
    buf.append(makeLoad(codePc + 8, 1, 0x9000));
    const auto ann = AccessProfiler(smallProfile()).profile(buf);
    EXPECT_FALSE(ann.usefulPrefetch(1));
    EXPECT_EQ(ann.usefulPrefetches + ann.uselessPrefetches, 0u);
}

TEST(AccessProfiler, EvictedPrefetchLosesItsCredit)
{
    ProfileConfig cfg = smallProfile();
    TraceBuffer buf;
    buf.append(makePrefetch(codePc, 0x0));
    // Stream through the prefetched line's L2 set: L2 8KB 4-way = 32
    // sets, peers at multiples of 0x800.
    for (int i = 1; i <= 4; ++i)
        buf.append(makeLoad(codePc + 4u * unsigned(i),
                            1, uint64_t(i) * 0x800));
    buf.append(makeLoad(codePc + 64, 1, 0x0)); // after eviction
    const auto ann = AccessProfiler(cfg).profile(buf);
    EXPECT_FALSE(ann.usefulPrefetch(0));
    EXPECT_TRUE(ann.dataMiss(5)); // the load misses again
}

TEST(AccessProfiler, AtomicReadCountsAsDataMiss)
{
    TraceBuffer buf;
    buf.append(makeSerializing(codePc, 0xB000));
    buf.append(makeSerializing(codePc + 4, 0xB000));
    buf.append(makeSerializing(codePc + 8)); // pure membar: no access
    const auto ann = AccessProfiler(smallProfile()).profile(buf);
    EXPECT_TRUE(ann.dataMiss(0));
    EXPECT_FALSE(ann.dataMiss(1));
    EXPECT_FALSE(ann.dataMiss(2));
}

TEST(AccessProfiler, L2HitBitDistinguishesOnChipLevels)
{
    TraceBuffer buf;
    buf.append(makeLoad(codePc, 1, 0x0));
    buf.append(makeLoad(codePc + 4, 1, 0x2000));
    buf.append(makeLoad(codePc + 8, 1, 0x4000)); // evicts 0x0 from L1
    buf.append(makeLoad(codePc + 12, 1, 0x0));   // L2 hit
    buf.append(makeLoad(codePc + 16, 1, 0x2000)); // L1? evicted: L2
    const auto ann = AccessProfiler(smallProfile()).profile(buf);
    EXPECT_TRUE(ann.dataMiss(0));
    EXPECT_FALSE(ann.dataL2Hit(0));
    EXPECT_FALSE(ann.dataMiss(3));
    EXPECT_TRUE(ann.dataL2Hit(3));
}

TEST(AccessProfiler, WarmupExcludedFromCountsButNotState)
{
    ProfileConfig cfg = smallProfile();
    cfg.warmupInsts = 2;
    TraceBuffer buf;
    buf.append(makeLoad(codePc, 1, 0x5000));     // warm-up miss
    buf.append(makeLoad(codePc + 4, 1, 0x5000)); // warm-up hit
    buf.append(makeLoad(codePc + 8, 1, 0x5000)); // measured hit
    buf.append(makeLoad(codePc + 12, 1, 0x6000)); // measured miss
    const auto ann = AccessProfiler(cfg).profile(buf);
    EXPECT_EQ(ann.loadMisses, 1u);
    EXPECT_EQ(ann.measuredInsts, 2u);
    EXPECT_TRUE(ann.dataMiss(0)); // flags still set in warm-up
}

TEST(AccessProfiler, InterMissDistanceHistogram)
{
    TraceBuffer buf;
    buf.append(makeLoad(codePc, 1, 0x10000));
    buf.append(makeAlu(codePc + 4, 1));
    buf.append(makeAlu(codePc + 8, 1));
    buf.append(makeLoad(codePc + 12, 1, 0x20000)); // distance 3
    buf.append(makeLoad(codePc + 16, 1, 0x30000)); // distance 1
    const auto ann = AccessProfiler(smallProfile()).profile(buf);
    // The instruction fetch of the first line is itself an off-chip
    // access at index 0, so distances: (0:i,0:d)->..., conservatively
    // just check the histogram is populated and bounded.
    EXPECT_GE(ann.interMissDistance.samples(), 2u);
    EXPECT_LE(ann.interMissDistance.quantile(1.0), 4u);
}

TEST(AccessProfiler, MissRatePer100)
{
    TraceBuffer buf;
    for (unsigned i = 0; i < 100; ++i)
        buf.append(makeAlu(0x0 + 4 * i, 1)); // PC 0x0: I-line miss x7
    const auto ann = AccessProfiler(smallProfile()).profile(buf);
    EXPECT_DOUBLE_EQ(ann.missRatePer100(),
                     double(ann.usefulAccesses()));
}

TEST(AccessProfiler, BuilderApiForTests)
{
    MissAnnotations ann;
    ann.resetForBuild(4);
    ann.markDataMiss(1);
    ann.markFetchMiss(2);
    ann.markUsefulPrefetch(3);
    EXPECT_FALSE(ann.anyUseful(0));
    EXPECT_TRUE(ann.dataMiss(1));
    EXPECT_TRUE(ann.fetchMiss(2));
    EXPECT_TRUE(ann.usefulPrefetch(3));
    EXPECT_EQ(ann.usefulAccesses(), 3u);
    EXPECT_EQ(ann.usefulCount(3), 1u);
}

} // namespace mlpsim::test
