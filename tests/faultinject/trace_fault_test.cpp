/**
 * @file
 * Fault-injection harness for the trace-file reader.
 *
 * Every test starts from a known-good file, programmatically corrupts
 * it (bit flips, truncation at each structural boundary, tampered
 * header fields, trailing garbage…) and asserts the defect is
 * *detected and reported* as a Status error — never a crash, abort,
 * or silently-wrong TraceBuffer. The whole suite also runs under
 * ASan/UBSan (faultinject_tests_san) so an out-of-bounds read on
 * corrupt input fails loudly rather than by luck.
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "support/trace_corruption.hh"
#include "trace/trace_io.hh"

namespace mlpsim::test {

using namespace mlpsim::trace;

namespace {

std::string
tempPath(const char *tag)
{
    return ::testing::TempDir() + "mlpsim_fault_" + tag + ".trace";
}

/** A small trace exercising every record field and class. */
TraceBuffer
sampleBuffer()
{
    TraceBuffer buf("faultinject");
    buf.append(makeLoad(0x1000, 3, 0xABCD, 2, 99));
    buf.append(makeStore(0x1004, 0x2000, 5, 4));
    buf.append(makeBranch(0x1008, 0x3000, true, 6, BranchKind::Call));
    buf.append(makePrefetch(0x100c, 0x4000, 7));
    buf.append(makeSerializing(0x1010, 0x5000, 1));
    buf.append(makeAlu(0x1014, 8, 9, 10));
    return buf;
}

/**
 * Write the sample trace in the v2 record format and return its
 * on-disk image (the v2 fault matrix below pokes at v2 offsets; the
 * v3 matrix has its own image builder).
 */
std::vector<uint8_t>
freshImage(const std::string &path)
{
    const Status st = writeTrace(path, sampleBuffer(), 2);
    EXPECT_TRUE(st.ok()) << st.toString();
    std::vector<uint8_t> bytes = readFileBytes(path);
    EXPECT_EQ(bytes.size(),
              v2HeaderSize + sampleBuffer().size() * recordSize);
    return bytes;
}

/** The sample trace in the default (v3 chunked) format. */
std::vector<uint8_t>
freshV3Image(const std::string &path)
{
    const Status st = writeTrace(path, sampleBuffer());
    EXPECT_TRUE(st.ok()) << st.toString();
    std::vector<uint8_t> bytes = readFileBytes(path);
    EXPECT_EQ(bytes.size(),
              v3ChunkOffset(0) + v3ChunkSectionSize(sampleBuffer().size()));
    return bytes;
}

/** The corruption must surface as a Status error, never a crash. */
testing::AssertionResult
rejects(const std::string &path, const char *expect_substring)
{
    const Expected<TraceBuffer> result = readTrace(path);
    if (result.ok()) {
        return testing::AssertionFailure()
               << "corrupt file was read back as "
               << result.value().size() << " valid records";
    }
    const std::string text = result.status().toString();
    if (text.find(expect_substring) == std::string::npos) {
        return testing::AssertionFailure()
               << "error does not mention '" << expect_substring
               << "': " << text;
    }
    return testing::AssertionSuccess();
}

} // namespace

TEST(TraceFault, HeaderMagicBitFlip)
{
    const std::string path = tempPath("magicflip");
    auto bytes = freshImage(path);
    flipBit(bytes, 0, 3);
    writeFileBytes(path, bytes);
    EXPECT_TRUE(rejects(path, "not an mlpsim trace"));
    std::remove(path.c_str());
}

TEST(TraceFault, WrongMagicEntirely)
{
    const std::string path = tempPath("badmagic");
    auto bytes = freshImage(path);
    std::memcpy(bytes.data(), "XXXX", 4);
    writeFileBytes(path, bytes);
    EXPECT_TRUE(rejects(path, "not an mlpsim trace"));
    std::remove(path.c_str());
}

TEST(TraceFault, UnsupportedVersion)
{
    const std::string path = tempPath("badversion");
    auto bytes = freshImage(path);
    const uint32_t version = 99;
    std::memcpy(bytes.data() + versionOffset, &version, sizeof(version));
    writeFileBytes(path, bytes);
    EXPECT_TRUE(rejects(path, "unsupported format version 99"));
    std::remove(path.c_str());
}

TEST(TraceFault, VersionZero)
{
    const std::string path = tempPath("version0");
    auto bytes = freshImage(path);
    const uint32_t version = 0;
    std::memcpy(bytes.data() + versionOffset, &version, sizeof(version));
    writeFileBytes(path, bytes);
    EXPECT_TRUE(rejects(path, "unsupported format version"));
    std::remove(path.c_str());
}

TEST(TraceFault, HeaderCrcDetectsTamperedCount)
{
    // Tamper with the record count *without* fixing the header CRC:
    // the checksum must catch it before any size reasoning happens.
    const std::string path = tempPath("countflip");
    auto bytes = freshImage(path);
    flipBit(bytes, countOffset, 0);
    writeFileBytes(path, bytes);
    EXPECT_TRUE(rejects(path, "header CRC mismatch"));
    std::remove(path.c_str());
}

TEST(TraceFault, RecordCountInflated)
{
    // A "plausible" tamper: bump the count and fix the header CRC so
    // only the size cross-check can catch it.
    const std::string path = tempPath("countup");
    auto bytes = freshImage(path);
    uint64_t count;
    std::memcpy(&count, bytes.data() + countOffset, sizeof(count));
    ++count;
    std::memcpy(bytes.data() + countOffset, &count, sizeof(count));
    fixHeaderCrc(bytes);
    writeFileBytes(path, bytes);
    EXPECT_TRUE(rejects(path, "truncated"));
    std::remove(path.c_str());
}

TEST(TraceFault, RecordCountDeflated)
{
    const std::string path = tempPath("countdown");
    auto bytes = freshImage(path);
    uint64_t count;
    std::memcpy(&count, bytes.data() + countOffset, sizeof(count));
    --count;
    std::memcpy(bytes.data() + countOffset, &count, sizeof(count));
    fixHeaderCrc(bytes);
    writeFileBytes(path, bytes);
    EXPECT_TRUE(rejects(path, "trailing bytes"));
    std::remove(path.c_str());
}

TEST(TraceFault, ImplausiblyHugeRecordCount)
{
    const std::string path = tempPath("hugecount");
    auto bytes = freshImage(path);
    const uint64_t count = UINT64_MAX / 2;
    std::memcpy(bytes.data() + countOffset, &count, sizeof(count));
    fixHeaderCrc(bytes);
    writeFileBytes(path, bytes);
    EXPECT_TRUE(rejects(path, "record count"));
    std::remove(path.c_str());
}

TEST(TraceFault, OversizedNameField)
{
    // A name filling all 64 bytes with no terminator must be refused,
    // not read past the end of the field.
    const std::string path = tempPath("bigname");
    auto bytes = freshImage(path);
    std::memset(bytes.data() + nameOffset, 'A', 64);
    fixHeaderCrc(bytes);
    writeFileBytes(path, bytes);
    EXPECT_TRUE(rejects(path, "NUL-terminated"));
    std::remove(path.c_str());
}

TEST(TraceFault, PayloadBitFlipsAtVariedOffsets)
{
    const std::string path = tempPath("payloadflip");
    const auto pristine = freshImage(path);
    // One flip per region: first record's pc, a middle record's value,
    // an enum byte, the final record's last byte.
    const size_t offsets[] = {
        v2HeaderSize + 0,                       // record 0 pc
        v2HeaderSize + recordSize * 2 + 16,     // record 2 value
        v2HeaderSize + recordSize * 3 + 32,     // record 3 class byte
        pristine.size() - 1,                    // very last byte
    };
    for (const size_t off : offsets) {
        auto bytes = pristine;
        flipBit(bytes, off, 5);
        writeFileBytes(path, bytes);
        // Either the CRC or (for an enum byte) the range check fires;
        // both are acceptable detections, a crash or success is not.
        const auto result = readTrace(path);
        EXPECT_FALSE(result.ok())
            << "payload flip at offset " << off << " was not detected";
    }
    std::remove(path.c_str());
}

TEST(TraceFault, PayloadCrcFieldItselfCorrupted)
{
    const std::string path = tempPath("crcfield");
    auto bytes = freshImage(path);
    flipBit(bytes, payloadCrcOffset, 7);
    fixHeaderCrc(bytes);
    writeFileBytes(path, bytes);
    EXPECT_TRUE(rejects(path, "payload CRC mismatch"));
    std::remove(path.c_str());
}

TEST(TraceFault, InvalidEnumSurvivesCrcFixup)
{
    // Corrupt an instruction class to 200 and *recompute* both CRCs —
    // simulating a buggy writer rather than bit rot — so only the
    // per-record range check stands between us and an out-of-range
    // enum entering the simulator.
    const std::string path = tempPath("badenum");
    auto bytes = freshImage(path);
    bytes[v2HeaderSize + recordSize * 1 + 32] = 200;
    fixPayloadCrc(bytes);
    writeFileBytes(path, bytes);
    EXPECT_TRUE(rejects(path, "invalid instruction class"));

    auto bytes2 = freshImage(path);
    bytes2[v2HeaderSize + recordSize * 4 + 38] = 77; // brKind
    fixPayloadCrc(bytes2);
    writeFileBytes(path, bytes2);
    EXPECT_TRUE(rejects(path, "invalid branch kind"));
    std::remove(path.c_str());
}

TEST(TraceFault, TruncationAtEveryStructuralBoundary)
{
    const std::string path = tempPath("truncate");
    const auto pristine = freshImage(path);
    const size_t cuts[] = {
        0,                            // empty file
        1,                            // mid-magic
        4,                            // magic only
        7,                            // mid-version
        8,                            // magic+version only
        15,                           // mid-count
        nameOffset + 10,              // mid-name
        v1HeaderSize,                 // exactly a v1 header
        headerCrcOffset,              // v2 header minus its CRC
        v2HeaderSize,                 // header but zero of six records
        v2HeaderSize + 1,             // one byte into record 0
        v2HeaderSize + recordSize - 1,// one byte short of record 0
        v2HeaderSize + recordSize,    // exactly one record
        v2HeaderSize + recordSize * 3 + 17, // mid-record 3
        pristine.size() - 1,          // last byte missing
    };
    for (const size_t cut : cuts) {
        std::vector<uint8_t> bytes(pristine.begin(),
                                   pristine.begin() + long(cut));
        writeFileBytes(path, bytes);
        const auto result = readTrace(path);
        EXPECT_FALSE(result.ok())
            << "truncation to " << cut << " bytes was not detected";
    }
    std::remove(path.c_str());
}

TEST(TraceFault, TrailingGarbage)
{
    const std::string path = tempPath("trailing");
    auto bytes = freshImage(path);
    bytes.insert(bytes.end(), {0xDE, 0xAD, 0xBE, 0xEF});
    writeFileBytes(path, bytes);
    EXPECT_TRUE(rejects(path, "trailing bytes"));
    std::remove(path.c_str());
}

TEST(TraceFault, ExhaustiveSingleBitFlipSweep)
{
    // The v2 format's design property: EVERY single-bit flip anywhere
    // in the file is detected (header CRC covers the header, payload
    // CRC covers the records, and a flip inside either CRC field
    // mismatches the recomputation).
    const std::string path = tempPath("sweep");
    const auto pristine = freshImage(path);
    for (size_t byte = 0; byte < pristine.size(); ++byte) {
        for (unsigned bit = 0; bit < 8; ++bit) {
            auto bytes = pristine;
            flipBit(bytes, byte, bit);
            writeFileBytes(path, bytes);
            const auto result = readTrace(path);
            ASSERT_FALSE(result.ok())
                << "flip of byte " << byte << " bit " << bit
                << " went undetected";
        }
    }
    std::remove(path.c_str());
}

TEST(TraceFault, V1TruncationDetectedBySizeCrossCheck)
{
    // v1 files have no checksums, but the size cross-check still
    // catches truncation up front.
    const std::string path = tempPath("v1trunc");
    writeV1TraceFile(path, sampleBuffer());
    auto bytes = readFileBytes(path);
    bytes.resize(v1HeaderSize + recordSize * 2 + 13);
    writeFileBytes(path, bytes);
    EXPECT_TRUE(rejects(path, "truncated"));
    std::remove(path.c_str());
}

TEST(TraceFault, V1EnumCorruptionDetectedByRangeCheck)
{
    const std::string path = tempPath("v1enum");
    writeV1TraceFile(path, sampleBuffer());
    auto bytes = readFileBytes(path);
    bytes[v1HeaderSize + recordSize * 0 + 32] = 250;
    writeFileBytes(path, bytes);
    EXPECT_TRUE(rejects(path, "invalid instruction class"));
    std::remove(path.c_str());
}

TEST(TraceFault, MissingFileIsStatusNotCrash)
{
    const auto result = readTrace("/nonexistent/dir/x.trace");
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), ErrorCode::NotFound);
}

// ---- v3 (chunked structure-of-arrays) fault matrix ----

TEST(TraceFaultV3, FormatMatrixRoundTrips)
{
    // Every on-disk generation loads back field-identical: v1 (seed),
    // v2 (records + CRCs), v3 (chunked SoA, the current writer).
    const TraceBuffer buf = sampleBuffer();
    const std::string v1 = tempPath("matrix_v1");
    const std::string v2 = tempPath("matrix_v2");
    const std::string v3 = tempPath("matrix_v3");
    writeV1TraceFile(v1, buf);
    ASSERT_TRUE(writeTrace(v2, buf, 2).ok());
    ASSERT_TRUE(writeTrace(v3, buf).ok());

    for (const std::string &path : {v1, v2, v3}) {
        const auto read = readTrace(path);
        ASSERT_TRUE(read.ok()) << path << ": "
                               << read.status().toString();
        ASSERT_EQ(read->size(), buf.size()) << path;
        for (size_t i = 0; i < buf.size(); ++i) {
            const Instruction a = buf.at(i);
            const Instruction b = read->at(i);
            EXPECT_EQ(a.pc, b.pc);
            EXPECT_EQ(a.effAddr, b.effAddr);
            EXPECT_EQ(a.value(), b.value());
            EXPECT_EQ(a.target(), b.target());
            EXPECT_EQ(a.cls(), b.cls());
            EXPECT_EQ(a.dst, b.dst);
            EXPECT_EQ(a.taken(), b.taken());
            EXPECT_EQ(a.brKind(), b.brKind());
            for (unsigned s = 0; s < trace::maxSrcRegs; ++s)
                EXPECT_EQ(a.src[s], b.src[s]);
        }
        std::remove(path.c_str());
    }
}

TEST(TraceFaultV3, MultiChunkRoundTrip)
{
    // A trace spanning several chunks (including a partial tail
    // chunk) survives the chunked format losslessly.
    TraceBuffer buf("multichunk");
    const size_t n = size_t(TraceBuffer::chunkCapacity) * 2 + 1234;
    for (size_t i = 0; i < n; ++i)
        buf.append(makeLoad(0x1000 + 4 * i, uint8_t(i % 32),
                            0x10000 + 64 * i, 2, i));
    const std::string path = tempPath("multichunk");
    ASSERT_TRUE(writeTrace(path, buf).ok());
    const auto read = readTrace(path);
    ASSERT_TRUE(read.ok()) << read.status().toString();
    ASSERT_EQ(read->size(), n);
    for (size_t i = 0; i < n; i += 4099) {
        EXPECT_EQ(buf.at(i).pc, read->at(i).pc);
        EXPECT_EQ(buf.at(i).effAddr, read->at(i).effAddr);
        EXPECT_EQ(buf.at(i).value(), read->at(i).value());
    }
    std::remove(path.c_str());
}

TEST(TraceFaultV3, TruncatedTailRejected)
{
    const std::string path = tempPath("v3trunc");
    const auto pristine = freshV3Image(path);
    const size_t cuts[] = {
        v2HeaderSize,                 // header but no prologue
        v2HeaderSize + 7,             // mid-prologue
        v3ChunkOffset(0),             // prologue but no chunk section
        v3ChunkOffset(0) + 3,         // mid chunk header
        v3ChunkOffset(0) + v3ChunkHeaderSize + 5, // mid pc column
        pristine.size() - 1,          // last byte missing
    };
    for (const size_t cut : cuts) {
        std::vector<uint8_t> bytes(pristine.begin(),
                                   pristine.begin() + long(cut));
        writeFileBytes(path, bytes);
        EXPECT_TRUE(rejects(path, "truncated"))
            << "truncation to " << cut << " bytes";
    }
    std::remove(path.c_str());
}

TEST(TraceFaultV3, FlippedChunkCrcRejected)
{
    const std::string path = tempPath("v3chunkcrc");
    auto bytes = freshV3Image(path);
    // Flip a bit inside the stored per-chunk CRC word; the chunk CRC
    // check fires before the whole-payload CRC is even reachable.
    flipBit(bytes, v3ChunkOffset(0) + 4, 2);
    writeFileBytes(path, bytes);
    EXPECT_TRUE(rejects(path, "CRC mismatch"));
    std::remove(path.c_str());
}

TEST(TraceFaultV3, FlippedColumnByteRejected)
{
    const std::string path = tempPath("v3column");
    const auto pristine = freshV3Image(path);
    const size_t count = sampleBuffer().size();
    const size_t offsets[] = {
        v3ChunkOffset(0) + v3ChunkHeaderSize,      // first pc byte
        v3ChunkOffset(0) + v3ChunkHeaderSize + 8 * count, // effAddr
        v3MetaOffset(count) + 2,                   // a meta byte
        pristine.size() - 1,                       // last src2 byte
    };
    for (const size_t off : offsets) {
        auto bytes = pristine;
        flipBit(bytes, off, 4);
        writeFileBytes(path, bytes);
        EXPECT_TRUE(rejects(path, "CRC mismatch"))
            << "column flip at offset " << off;
    }
    std::remove(path.c_str());
}

TEST(TraceFaultV3, InvalidMetaSurvivesCrcFixup)
{
    // A buggy writer rather than bit rot: corrupt the packed meta
    // byte and recompute every checksum, so only the meta range check
    // stands between the file and the simulators.
    const std::string path = tempPath("v3badmeta");
    const size_t count = sampleBuffer().size();

    auto bytes = freshV3Image(path);
    bytes[v3MetaOffset(count) + 1] = 0x06; // InstClass 6: out of range
    fixV3Crcs(bytes, count);
    writeFileBytes(path, bytes);
    EXPECT_TRUE(rejects(path, "invalid instruction class"));

    auto bytes2 = freshV3Image(path);
    bytes2[v3MetaOffset(count) + 2] = 0x05 << 3; // BranchKind 5
    fixV3Crcs(bytes2, count);
    writeFileBytes(path, bytes2);
    EXPECT_TRUE(rejects(path, "invalid branch kind"));

    auto bytes3 = freshV3Image(path);
    bytes3[v3MetaOffset(count) + 3] = 0x80; // reserved high bit
    fixV3Crcs(bytes3, count);
    writeFileBytes(path, bytes3);
    EXPECT_TRUE(rejects(path, "invalid meta byte"));
    std::remove(path.c_str());
}

TEST(TraceFaultV3, TamperedPrologueRejected)
{
    const std::string path = tempPath("v3prologue");

    // Zero chunk capacity (division guard), checksums fixed up.
    auto bytes = freshV3Image(path);
    std::memset(bytes.data() + v2HeaderSize, 0, 8);
    fixV3Crcs(bytes, sampleBuffer().size());
    writeFileBytes(path, bytes);
    EXPECT_TRUE(rejects(path, "chunk capacity"));

    // Chunk count inconsistent with the record count.
    auto bytes2 = freshV3Image(path);
    const uint64_t two = 2;
    std::memcpy(bytes2.data() + v2HeaderSize + 8, &two, sizeof(two));
    fixV3Crcs(bytes2, sampleBuffer().size());
    writeFileBytes(path, bytes2);
    EXPECT_TRUE(rejects(path, "chunk-count mismatch"));
    std::remove(path.c_str());
}

TEST(TraceFaultV3, TrailingGarbageRejected)
{
    const std::string path = tempPath("v3trailing");
    auto bytes = freshV3Image(path);
    bytes.insert(bytes.end(), {0xDE, 0xAD});
    writeFileBytes(path, bytes);
    EXPECT_TRUE(rejects(path, "trailing bytes"));
    std::remove(path.c_str());
}

TEST(TraceFaultV3, ExhaustiveSingleBitFlipSweep)
{
    // The v2 design property carries over to v3: EVERY single-bit
    // flip anywhere in the file is detected (header CRC covers the
    // header, per-chunk and payload CRCs cover the payload, and a
    // flip inside any CRC field mismatches the recomputation).
    const std::string path = tempPath("v3sweep");
    const auto pristine = freshV3Image(path);
    for (size_t byte = 0; byte < pristine.size(); ++byte) {
        for (unsigned bit = 0; bit < 8; ++bit) {
            auto bytes = pristine;
            flipBit(bytes, byte, bit);
            writeFileBytes(path, bytes);
            const auto result = readTrace(path);
            ASSERT_FALSE(result.ok())
                << "flip of byte " << byte << " bit " << bit
                << " went undetected";
        }
    }
    std::remove(path.c_str());
}

} // namespace mlpsim::test
