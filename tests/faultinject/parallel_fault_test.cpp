/**
 * @file
 * Fault injection against the resilient sweep layer itself: stuck jobs
 * versus deadlines, throwing jobs versus collect-all degradation,
 * transiently failing jobs versus deterministic retry, and the
 * cancel-before-start / cancel-mid-run / zero-deadline edges. Pure
 * synthetic jobs only (no simulator dependencies), so the suite also
 * compiles stand-alone under ASan/UBSan (faultinject_parallel_san) and
 * rides the TSan target (parallel_tests_tsan).
 */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "util/cancellation.hh"
#include "util/parallel.hh"
#include "util/status.hh"

namespace mlpsim {
namespace {

/** Poll-loop "stuck" body: spins until cooperatively cancelled. */
void
spinUntilCancelled()
{
    for (;;) {
        pollCancellation();
        std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
}

JobLimits
withDeadline(double millis)
{
    JobLimits limits;
    limits.deadlineMillis = millis;
    return limits;
}

TEST(SweepFaultTest, StuckJobIsReapedByItsDeadline)
{
    SweepRunner runner(4);
    runner.setFailureMode(FailureMode::CollectAll);
    runner.setJobLimits(withDeadline(50.0));
    auto good = runner.defer<int>("good", [] { return 7; });
    runner.deferVoid("stuck", spinUntilCancelled);
    runner.runAll();

    EXPECT_TRUE(good.succeeded());
    EXPECT_EQ(good.get(), 7);
    ASSERT_EQ(runner.lastFailures().size(), 1u);
    const JobFailure &failure = runner.lastFailures()[0];
    EXPECT_EQ(failure.label, "stuck");
    EXPECT_EQ(failure.index, 1u);
    EXPECT_EQ(failure.status.code(), ErrorCode::DeadlineExceeded);
    EXPECT_EQ(failure.failureClass(), FailureClass::Cancelled);
    EXPECT_EQ(runner.lastBatch().failed, 1u);
}

TEST(SweepFaultTest, ZeroDeadlineFailsBeforeTheBodyRuns)
{
    SweepRunner runner(2);
    runner.setFailureMode(FailureMode::CollectAll);
    runner.setJobLimits(withDeadline(0.0));
    auto body_ran = std::make_shared<std::atomic<bool>>(false);
    auto job = runner.defer<int>("skipped", [body_ran] {
        body_ran->store(true);
        return 1;
    });
    runner.runAll();

    EXPECT_FALSE(body_ran->load());
    EXPECT_FALSE(job.succeeded());
    EXPECT_EQ(job.status().code(), ErrorCode::DeadlineExceeded);
    EXPECT_EQ(job.attempts(), 1u);
}

TEST(SweepFaultTest, DeadlineIsPerAttemptNotPerJob)
{
    // A blown deadline is classified Cancelled, so it must never be
    // retried even under a generous retry policy.
    SweepRunner runner(2);
    runner.setFailureMode(FailureMode::CollectAll);
    JobLimits limits = withDeadline(0.0);
    limits.retry.maxAttempts = 5;
    runner.setJobLimits(limits);
    auto job = runner.defer<int>("expired", [] { return 1; });
    runner.runAll();

    EXPECT_FALSE(job.succeeded());
    EXPECT_EQ(job.attempts(), 1u);
    EXPECT_EQ(runner.lastBatch().retries, 0u);
}

TEST(SweepFaultTest, CancelBeforeStartFailsEveryJobWithoutRunningIt)
{
    SweepRunner runner(4);
    runner.setFailureMode(FailureMode::CollectAll);
    auto ran = std::make_shared<std::atomic<int>>(0);
    std::vector<Job<int>> jobs;
    for (int i = 0; i < 8; ++i) {
        jobs.push_back(runner.defer<int>(
            "cell " + std::to_string(i), [ran, i] {
                ran->fetch_add(1);
                return i;
            }));
    }
    runner.requestCancel("user aborted before start");
    runner.runAll();

    EXPECT_EQ(ran->load(), 0);
    ASSERT_EQ(runner.lastFailures().size(), 8u);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_FALSE(jobs[i].succeeded());
        EXPECT_EQ(jobs[i].status().code(), ErrorCode::Cancelled);
        EXPECT_EQ(runner.lastFailures()[i].index, i);
    }
}

TEST(SweepFaultTest, CancelMidRunStopsPollingJobsAndPendingJobs)
{
    SweepRunner runner(2);
    runner.setFailureMode(FailureMode::CollectAll);
    // One job cancels the whole batch; the poll-loop jobs unwind at
    // their next poll and jobs not yet started never run.
    runner.deferVoid("canceller", [&runner] {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        runner.requestCancel("canceller job pulled the plug");
    });
    for (int i = 0; i < 6; ++i)
        runner.deferVoid("victim " + std::to_string(i),
                         spinUntilCancelled);
    runner.runAll();

    // The canceller itself succeeded; every victim was cancelled.
    ASSERT_EQ(runner.lastFailures().size(), 6u);
    for (const JobFailure &failure : runner.lastFailures()) {
        EXPECT_EQ(failure.status.code(), ErrorCode::Cancelled);
        EXPECT_EQ(failure.failureClass(), FailureClass::Cancelled);
    }
    EXPECT_EQ(runner.lastBatch().failed, 6u);
}

TEST(SweepFaultTest, TransientFailureRetriesUntilSuccess)
{
    SweepRunner runner(2);
    runner.setFailureMode(FailureMode::CollectAll);
    JobLimits limits;
    limits.retry.maxAttempts = 4;
    limits.retry.baseBackoffMillis = 0.1; // keep the test fast
    runner.setJobLimits(limits);

    auto attempts_seen = std::make_shared<std::atomic<unsigned>>(0);
    auto job = runner.defer<int>("flaky", [attempts_seen] {
        if (attempts_seen->fetch_add(1) + 1 <= 2)
            throw StatusError(Status::unavailable("transient blip"));
        return 99;
    });
    runner.runAll();

    EXPECT_TRUE(job.succeeded());
    EXPECT_EQ(job.get(), 99);
    EXPECT_EQ(job.attempts(), 3u);
    EXPECT_TRUE(runner.lastFailures().empty());
    EXPECT_EQ(runner.lastBatch().failed, 0u);
    EXPECT_EQ(runner.lastBatch().retries, 2u);
}

TEST(SweepFaultTest, TransientFailureExhaustsItsAttemptBudget)
{
    SweepRunner runner(2);
    runner.setFailureMode(FailureMode::CollectAll);
    JobLimits limits;
    limits.retry.maxAttempts = 3;
    limits.retry.baseBackoffMillis = 0.1;
    runner.setJobLimits(limits);

    auto job = runner.defer<int>("always-down", []() -> int {
        throw StatusError(Status::unavailable("still down"));
    });
    runner.runAll();

    EXPECT_FALSE(job.succeeded());
    EXPECT_EQ(job.status().code(), ErrorCode::Unavailable);
    EXPECT_EQ(job.attempts(), 3u);
    ASSERT_EQ(runner.lastFailures().size(), 1u);
    EXPECT_EQ(runner.lastFailures()[0].attempts, 3u);
    EXPECT_EQ(runner.lastFailures()[0].failureClass(),
              FailureClass::Transient);
    EXPECT_EQ(runner.lastBatch().retries, 2u);
}

TEST(SweepFaultTest, PermanentFailureIsNeverRetried)
{
    SweepRunner runner(2);
    runner.setFailureMode(FailureMode::CollectAll);
    JobLimits limits;
    limits.retry.maxAttempts = 5;
    runner.setJobLimits(limits);

    auto calls = std::make_shared<std::atomic<unsigned>>(0);
    auto job = runner.defer<int>("poisoned", [calls]() -> int {
        calls->fetch_add(1);
        throw StatusError(Status::dataLoss("corrupt cell"));
    });
    runner.runAll();

    EXPECT_EQ(calls->load(), 1u);
    EXPECT_FALSE(job.succeeded());
    EXPECT_EQ(job.status().code(), ErrorCode::DataLoss);
    ASSERT_EQ(runner.lastFailures().size(), 1u);
    EXPECT_EQ(runner.lastFailures()[0].failureClass(),
              FailureClass::Permanent);
    EXPECT_EQ(runner.lastBatch().retries, 0u);
}

TEST(SweepFaultTest, PlainExceptionsClassifyAsPermanentInternal)
{
    SweepRunner runner(2);
    runner.setFailureMode(FailureMode::CollectAll);
    runner.deferVoid("legacy-throw",
                     [] { throw std::runtime_error("unclassified"); });
    runner.runAll();

    ASSERT_EQ(runner.lastFailures().size(), 1u);
    const JobFailure &failure = runner.lastFailures()[0];
    EXPECT_EQ(failure.status.code(), ErrorCode::Internal);
    EXPECT_EQ(failure.failureClass(), FailureClass::Permanent);
    EXPECT_NE(failure.status.message().find("unclassified"),
              std::string::npos);
}

TEST(SweepFaultTest, CollectAllKeepsEveryFailureInSubmissionOrder)
{
    SweepRunner runner(8);
    runner.setFailureMode(FailureMode::CollectAll);
    std::vector<Job<int>> jobs;
    for (int i = 0; i < 20; ++i) {
        jobs.push_back(runner.defer<int>(
            "cell " + std::to_string(i), [i]() -> int {
                if (i % 3 == 0)
                    throw StatusError(Status::dataLoss("bad cell ", i));
                return i * 10;
            }));
    }
    runner.runAll();

    const auto &failures = runner.lastFailures();
    ASSERT_EQ(failures.size(), 7u); // i = 0, 3, 6, 9, 12, 15, 18
    for (std::size_t k = 0; k < failures.size(); ++k) {
        EXPECT_EQ(failures[k].index, k * 3);
        EXPECT_EQ(failures[k].label,
                  "cell " + std::to_string(k * 3));
    }
    for (int i = 0; i < 20; ++i) {
        if (i % 3 == 0)
            EXPECT_FALSE(jobs[i].succeeded()) << i;
        else
            EXPECT_EQ(jobs[i].get(), i * 10) << i;
    }
    EXPECT_EQ(runner.lastBatch().failed, 7u);
}

TEST(SweepFaultTest, PropagateModeStillRecordsEveryFailure)
{
    SweepRunner runner(4);
    for (int i = 0; i < 8; ++i) {
        runner.deferVoid("cell " + std::to_string(i), [i] {
            if (i == 2 || i == 5)
                throw StatusError(
                    Status::dataLoss("cell ", i, " failed"));
        });
    }
    try {
        runner.runAll();
        FAIL() << "runAll() should have thrown";
    } catch (const StatusError &e) {
        // First in submission order, regardless of completion order.
        EXPECT_NE(std::string(e.what()).find("cell 2"),
                  std::string::npos);
    }
    ASSERT_EQ(runner.lastFailures().size(), 2u);
    EXPECT_EQ(runner.lastFailures()[0].index, 2u);
    EXPECT_EQ(runner.lastFailures()[1].index, 5u);
}

TEST(SweepFaultTest, SerialRunnerHandlesFaultsIdentically)
{
    // jobs == 1 executes inline on the calling thread; the failure
    // model must not depend on which path ran the job.
    SweepRunner runner(1);
    runner.setFailureMode(FailureMode::CollectAll);
    runner.setJobLimits(withDeadline(0.0));
    auto job = runner.defer<int>("inline-expired", [] { return 1; });
    runner.runAll();
    EXPECT_FALSE(job.succeeded());
    EXPECT_EQ(job.status().code(), ErrorCode::DeadlineExceeded);

    // The calling thread's ambient token must be restored: work on
    // this thread after runAll() is not cancelled.
    EXPECT_EQ(activeCancelToken(), nullptr);
    EXPECT_NO_THROW(pollCancellation());
}

TEST(SweepFaultTest, RunnerRecoversAcrossBatchesAfterFailures)
{
    SweepRunner runner(2);
    runner.setFailureMode(FailureMode::CollectAll);
    runner.setJobLimits(withDeadline(0.0));
    runner.deferVoid("doomed", [] {});
    runner.runAll();
    ASSERT_EQ(runner.lastFailures().size(), 1u);

    // Next batch with sane limits: clean slate, no leftover failures.
    runner.setJobLimits(JobLimits{});
    auto ok = runner.defer<int>("fine", [] { return 5; });
    runner.runAll();
    EXPECT_TRUE(runner.lastFailures().empty());
    EXPECT_EQ(runner.lastBatch().failed, 0u);
    EXPECT_EQ(ok.get(), 5);
}

TEST(SweepFaultTest, RetriedJobGetsAFreshDeadlinePerAttempt)
{
    // Each attempt of a transient failure gets its own token and its
    // own full deadline; earlier attempts' expiry must not leak in.
    SweepRunner runner(2);
    runner.setFailureMode(FailureMode::CollectAll);
    JobLimits limits = withDeadline(200.0);
    limits.retry.maxAttempts = 3;
    limits.retry.baseBackoffMillis = 0.1;
    runner.setJobLimits(limits);

    auto attempts_seen = std::make_shared<std::atomic<unsigned>>(0);
    auto job = runner.defer<int>("flaky-with-deadline", [attempts_seen] {
        pollCancellation(); // a live token must be installed
        if (attempts_seen->fetch_add(1) + 1 < 3)
            throw StatusError(Status::unavailable("blip"));
        return 1;
    });
    runner.runAll();
    EXPECT_TRUE(job.succeeded());
    EXPECT_EQ(job.attempts(), 3u);
}

} // namespace
} // namespace mlpsim
