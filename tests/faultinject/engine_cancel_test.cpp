/**
 * @file
 * Cancellation through the real simulation kernels: the epoch engine,
 * the cycle-accurate reference pipeline and the workload generators
 * all poll the ambient CancelToken at their natural epoch/chunk
 * boundaries, so a deadline fires *mid-simulation* — not just between
 * jobs. These tests run genuine (if small) simulations and assert the
 * deadline lands while they are inside the kernel loops.
 */
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/mlpsim.hh"
#include "cyclesim/cycle_sim.hh"
#include "trace/trace_buffer.hh"
#include "util/cancellation.hh"
#include "util/parallel.hh"
#include "workloads/factory.hh"

namespace mlpsim {
namespace {

constexpr uint64_t kWarmup = 1'000;

/** A materialised workload big enough that a few-ms deadline always
 *  lands mid-run, on any machine, sanitized or not. */
struct BigTrace
{
    std::unique_ptr<trace::TraceBuffer> buffer;
    std::unique_ptr<core::AnnotatedTrace> annotated;
};

const BigTrace &
bigTrace()
{
    static const BigTrace trace = [] {
        const std::string name =
            workloads::commercialWorkloadNames().front();
        auto generator = workloads::makeWorkload(name);
        BigTrace out;
        out.buffer = std::make_unique<trace::TraceBuffer>(name);
        out.buffer->fill(*generator, 2'000'000);
        core::AnnotationOptions ann;
        ann.warmupInsts = kWarmup;
        auto annotated = core::AnnotatedTrace::make(*out.buffer, ann);
        MLPSIM_ASSERT(annotated.ok(), annotated.status().toString());
        out.annotated = std::make_unique<core::AnnotatedTrace>(
            *std::move(annotated));
        return out;
    }();
    return trace;
}

JobLimits
withDeadline(double millis)
{
    JobLimits limits;
    limits.deadlineMillis = millis;
    return limits;
}

TEST(EngineCancelTest, EpochEngineHonoursADeadlineMidRun)
{
    SweepRunner runner(1);
    runner.setFailureMode(FailureMode::CollectAll);
    runner.setJobLimits(withDeadline(2.0));
    auto job = runner.defer<core::MlpResult>(
        "mlp under deadline", []() -> core::MlpResult {
            core::MlpConfig config = core::MlpConfig::defaultOoO();
            config.warmupInsts = kWarmup;
            auto result =
                core::tryRunMlp(config, bigTrace().annotated->context());
            if (!result.ok())
                throw StatusError(result.status());
            return *std::move(result);
        });
    runner.runAll();

    EXPECT_FALSE(job.succeeded());
    EXPECT_EQ(job.status().code(), ErrorCode::DeadlineExceeded);
}

TEST(EngineCancelTest, CycleSimHonoursADeadlineMidRun)
{
    SweepRunner runner(1);
    runner.setFailureMode(FailureMode::CollectAll);
    runner.setJobLimits(withDeadline(2.0));
    auto job = runner.defer<cyclesim::CycleSimResult>(
        "cyclesim under deadline", [] {
            cyclesim::CycleSimConfig config;
            config.warmupInsts = kWarmup;
            return cyclesim::CycleSim(config,
                                      bigTrace().annotated->context())
                .run();
        });
    runner.runAll();

    EXPECT_FALSE(job.succeeded());
    EXPECT_EQ(job.status().code(), ErrorCode::DeadlineExceeded);
}

TEST(EngineCancelTest, CycleSimConfigAHonoursADeadlineMidRun)
{
    // Config A threads every memory op through the in-order FIFO, the
    // slowest and most stall-prone scheduler mode — the event-driven
    // fast-forward must still hit the 64K-cycle poll cadence there.
    SweepRunner runner(1);
    runner.setFailureMode(FailureMode::CollectAll);
    runner.setJobLimits(withDeadline(2.0));
    auto job = runner.defer<cyclesim::CycleSimResult>(
        "cyclesim config A under deadline", [] {
            cyclesim::CycleSimConfig config;
            config.issue = core::IssueConfig::A;
            config.offChipLatency = 1000;
            config.warmupInsts = kWarmup;
            return cyclesim::CycleSim(config,
                                      bigTrace().annotated->context())
                .run();
        });
    runner.runAll();

    EXPECT_FALSE(job.succeeded());
    EXPECT_EQ(job.status().code(), ErrorCode::DeadlineExceeded);
}

TEST(EngineCancelTest, TraceGenerationHonoursADeadlineMidFill)
{
    SweepRunner runner(1);
    runner.setFailureMode(FailureMode::CollectAll);
    runner.setJobLimits(withDeadline(5.0));
    runner.deferVoid("generate under deadline", [] {
        const std::string name =
            workloads::commercialWorkloadNames().front();
        auto generator = workloads::makeWorkload(name);
        trace::TraceBuffer buffer(name);
        // Two orders of magnitude past any realistic 5 ms of work:
        // only the fill loop's poll point can end this job.
        buffer.fill(*generator, 500'000'000);
    });
    runner.runAll();

    ASSERT_EQ(runner.lastFailures().size(), 1u);
    EXPECT_EQ(runner.lastFailures()[0].status.code(),
              ErrorCode::DeadlineExceeded);
}

TEST(EngineCancelTest, UndisturbedRunStillCompletesUnderALooseDeadline)
{
    // The poll points must not perturb results: a run that finishes
    // inside its deadline yields exactly the no-deadline result.
    core::MlpConfig config = core::MlpConfig::defaultOoO();
    config.warmupInsts = kWarmup;
    auto baseline =
        core::tryRunMlp(config, bigTrace().annotated->context());
    ASSERT_TRUE(baseline.ok());

    SweepRunner runner(1);
    runner.setJobLimits(withDeadline(300'000.0));
    auto job = runner.defer<core::MlpResult>(
        "mlp under loose deadline", [&config]() -> core::MlpResult {
            auto result =
                core::tryRunMlp(config, bigTrace().annotated->context());
            if (!result.ok())
                throw StatusError(result.status());
            return *std::move(result);
        });
    runner.runAll();

    ASSERT_TRUE(job.succeeded());
    EXPECT_EQ(job.get().mlp(), baseline->mlp());
    EXPECT_EQ(job.get().epochs, baseline->epochs);
}

} // namespace
} // namespace mlpsim
