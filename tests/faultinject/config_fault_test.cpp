/**
 * @file
 * Fault injection for the configuration validators: every
 * inconsistent machine/hierarchy/branch/predictor description must be
 * rejected with an actionable Status (naming the offending knob), and
 * the recoverable entry points (tryRunMlp, AnnotatedTrace::make,
 * tryMakeWorkload) must return those errors instead of terminating.
 */
#include <gtest/gtest.h>

#include "core/mlpsim.hh"
#include "workloads/factory.hh"

namespace mlpsim::test {

using namespace mlpsim::core;

namespace {

/** Expect a failed validation whose message mentions @p substring. */
testing::AssertionResult
rejectsWith(const Status &status, const char *substring)
{
    if (status.ok())
        return testing::AssertionFailure() << "config was accepted";
    if (status.toString().find(substring) == std::string::npos) {
        return testing::AssertionFailure()
               << "error does not mention '" << substring
               << "': " << status.toString();
    }
    return testing::AssertionSuccess();
}

} // namespace

TEST(ConfigFault, DefaultConfigsAreValid)
{
    EXPECT_TRUE(MlpConfig::defaultOoO().validate().ok());
    EXPECT_TRUE(MlpConfig::infinite().validate().ok());
    EXPECT_TRUE(MlpConfig::runahead().validate().ok());
    EXPECT_TRUE(MlpConfig::sized(128, IssueConfig::D).validate().ok());
    EXPECT_TRUE(AnnotationOptions{}.validate().ok());
}

TEST(ConfigFault, ZeroWindowStructures)
{
    MlpConfig cfg;
    cfg.robSize = 0;
    EXPECT_TRUE(rejectsWith(cfg.validate(), "non-empty"));

    cfg = MlpConfig{};
    cfg.issueWindowSize = 0;
    EXPECT_TRUE(rejectsWith(cfg.validate(), "non-empty"));

    cfg = MlpConfig{};
    cfg.fetchBufferSize = 0;
    EXPECT_TRUE(rejectsWith(cfg.validate(), "non-empty"));
}

TEST(ConfigFault, RunaheadRobSmallerThanWindow)
{
    MlpConfig cfg = MlpConfig::runahead();
    cfg.issueWindowSize = 64;
    cfg.robSize = 32;
    EXPECT_TRUE(rejectsWith(cfg.validate(), "ROB"));
    EXPECT_FALSE(MlpConfig::checked(cfg).ok());

    // The plain OoO epoch model accepts either structure binding.
    cfg.mode = CoreMode::OutOfOrder;
    EXPECT_TRUE(cfg.validate().ok());
}

TEST(ConfigFault, RunaheadWithZeroDistance)
{
    MlpConfig cfg = MlpConfig::runahead();
    cfg.maxRunaheadDistance = 0;
    EXPECT_TRUE(rejectsWith(cfg.validate(), "maxRunaheadDistance"));
}

TEST(ConfigFault, ZeroEpochHorizon)
{
    MlpConfig cfg;
    cfg.epochInstHorizon = 0;
    EXPECT_TRUE(rejectsWith(cfg.validate(), "epochInstHorizon"));
}

TEST(ConfigFault, CheckedFactoryNamesTheMachine)
{
    MlpConfig cfg = MlpConfig::sized(64, IssueConfig::C);
    cfg.robSize = 0;
    const auto result = MlpConfig::checked(cfg);
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.status().message().find("machine"),
              std::string::npos);
}

TEST(ConfigFault, NonPowerOfTwoCacheGeometry)
{
    memory::CacheConfig cache;
    cache.lineBytes = 48;
    EXPECT_TRUE(rejectsWith(memory::validateConfig(cache),
                            "power of two"));

    cache = memory::CacheConfig{};
    cache.sizeBytes = 192;
    EXPECT_TRUE(rejectsWith(memory::validateConfig(cache), "divisible"));

    cache = memory::CacheConfig{};
    cache.assoc = 0;
    EXPECT_TRUE(rejectsWith(memory::validateConfig(cache), "non-zero"));
}

TEST(ConfigFault, HierarchyNamesTheOffendingLevel)
{
    memory::HierarchyConfig hier;
    hier.l2.lineBytes = 48;
    EXPECT_TRUE(rejectsWith(memory::validateConfig(hier), "L2"));

    hier = memory::HierarchyConfig{};
    hier.l1d.sizeBytes = 0;
    EXPECT_TRUE(rejectsWith(memory::validateConfig(hier), "L1D"));

    hier = memory::HierarchyConfig{};
    hier.tlbEntries = 0;
    EXPECT_TRUE(rejectsWith(memory::validateConfig(hier), "TLB"));

    hier = memory::HierarchyConfig{};
    hier.pageBytes = 3000;
    EXPECT_TRUE(rejectsWith(memory::validateConfig(hier), "page size"));
}

TEST(ConfigFault, BranchPredictorGeometry)
{
    branch::BranchConfig br;
    br.gshareEntries = 1000;
    EXPECT_TRUE(rejectsWith(branch::validateConfig(br), "gshare"));

    br = branch::BranchConfig{};
    br.historyBits = 24;
    EXPECT_TRUE(rejectsWith(branch::validateConfig(br), "history"));

    br = branch::BranchConfig{};
    br.btbAssoc = 3;
    EXPECT_TRUE(rejectsWith(branch::validateConfig(br), "BTB"));

    br = branch::BranchConfig{};
    br.btbEntries = 96;
    br.btbAssoc = 4;
    EXPECT_TRUE(rejectsWith(branch::validateConfig(br), "BTB set"));

    br = branch::BranchConfig{};
    br.rasDepth = 0;
    EXPECT_TRUE(rejectsWith(branch::validateConfig(br), "RAS"));
}

TEST(ConfigFault, ValuePredictorGeometry)
{
    predictor::ValuePredictorConfig vp;
    vp.entries = 1000;
    EXPECT_TRUE(rejectsWith(predictor::validateConfig(vp),
                            "power of two"));
    vp.entries = 0;
    EXPECT_FALSE(predictor::validateConfig(vp).ok());
}

TEST(ConfigFault, AnnotationOptionsComposeContext)
{
    AnnotationOptions opts;
    opts.hierarchy.l1i.lineBytes = 7;
    const Status st = opts.validate();
    ASSERT_FALSE(st.ok());
    // The context chain should lead from subsystem to detail.
    EXPECT_NE(st.toString().find("hierarchy"), std::string::npos);
    EXPECT_NE(st.toString().find("L1I"), std::string::npos);
}

TEST(ConfigFault, AnnotatedTraceMakeRejectsBadOptions)
{
    trace::TraceBuffer buf("tiny");
    buf.append(trace::makeAlu(0x100, 1));
    AnnotationOptions opts;
    opts.branch.rasDepth = 0;
    const auto result = AnnotatedTrace::make(buf, opts);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), ErrorCode::InvalidArgument);
    EXPECT_NE(result.status().message().find("tiny"), std::string::npos);
}

TEST(ConfigFault, TryRunMlpRejectsWithoutSimulating)
{
    trace::TraceBuffer buf("ctx");
    buf.append(trace::makeAlu(0x100, 1));
    const auto annotated = AnnotatedTrace::make(buf,
                                                AnnotationOptions{});
    ASSERT_TRUE(annotated.ok()) << annotated.status().toString();

    MlpConfig bad;
    bad.robSize = 0;
    const auto result = tryRunMlp(bad, annotated->context());
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), ErrorCode::InvalidArgument);

    // An incomplete context is a precondition failure, not a crash.
    const auto empty = tryRunMlp(MlpConfig::defaultOoO(),
                                 WorkloadContext{});
    ASSERT_FALSE(empty.ok());
    EXPECT_EQ(empty.status().code(), ErrorCode::FailedPrecondition);
}

TEST(ConfigFault, TryRunMlpStillSimulatesValidConfigs)
{
    trace::TraceBuffer buf("ok");
    for (unsigned i = 0; i < 64; ++i)
        buf.append(trace::makeAlu(0x100 + 4 * i, 1));
    const auto annotated = AnnotatedTrace::make(buf,
                                                AnnotationOptions{});
    ASSERT_TRUE(annotated.ok());
    const auto result = tryRunMlp(MlpConfig::defaultOoO(),
                                  annotated->context());
    ASSERT_TRUE(result.ok()) << result.status().toString();
}

TEST(ConfigFault, UnknownWorkloadIsNotFound)
{
    const auto result = workloads::tryMakeWorkload("tpcc");
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), ErrorCode::NotFound);
    EXPECT_NE(result.status().message().find("specjbb2000"),
              std::string::npos);
    EXPECT_TRUE(workloads::tryMakeWorkload("database").ok());
}

} // namespace mlpsim::test
