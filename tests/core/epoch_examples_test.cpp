/**
 * @file
 * The paper's worked Examples 1-5 (Sections 3.2 and 3.4), reproduced
 * literally: each feeds the engine the published five-instruction
 * sequence and asserts the published epoch sets / MLP.
 */
#include <gtest/gtest.h>

#include "tests/support/test_harness.hh"

namespace mlpsim::test {

using core::IssueConfig;
using core::MlpConfig;
using trace::makeAlu;
using trace::makeBranch;
using trace::makeLoad;
using trace::makeSerializing;
using trace::makeStore;

namespace {

constexpr uint8_t r0 = 0, r1 = 1, r2 = 2, r3 = 3, r4 = 4, r5 = 5,
                  r6 = 6, r7 = 7, r8 = 8;

MlpConfig
exampleConfig(IssueConfig issue, unsigned window)
{
    return MlpConfig::sized(window, issue);
}

} // namespace

// --- Example 1: issue window / ROB size -----------------------------
//
//   i1 load 0(r1)->r2    Dmiss
//   i2 add r2,r3->r4
//   i3 load (r4)->r5     Dmiss
//   i4 add r0,r1->r2
//   i5 load (r7)->r8     Dmiss
//
// Window = 4: epoch sets {i1, i4}, {i2, i3, i5}; MLP = (1+2)/2 = 1.5.
TEST(EpochExamples, Example1WindowLimit)
{
    ScriptedTrace s;
    s.add(makeLoad(0x100, r2, 0xA000, r1), Miss::Data); // i1
    s.add(makeAlu(0x104, r4, r2, r3));                  // i2
    s.add(makeLoad(0x108, r5, 0xB000, r4), Miss::Data); // i3
    s.add(makeAlu(0x10c, r2, r0, r1));                  // i4
    s.add(makeLoad(0x110, r8, 0xC000, r7), Miss::Data); // i5

    const auto r = s.run(exampleConfig(IssueConfig::C, 4));
    EXPECT_EQ(r.epochs, 2u);
    EXPECT_EQ(r.usefulAccesses, 3u);
    EXPECT_DOUBLE_EQ(r.mlp(), 1.5);
    EXPECT_EQ(r.inhibitors[core::Inhibitor::Maxwin], 1u);

    // With a larger window the independent i5 instead joins the first
    // epoch: {i1, i4, i5}, {i2, i3}; MLP is still (2+1)/2.
    const auto r8w = s.run(exampleConfig(IssueConfig::C, 8));
    EXPECT_EQ(r8w.epochs, 2u);
    EXPECT_DOUBLE_EQ(r8w.mlp(), 1.5);
    EXPECT_EQ(r8w.accessesPerEpoch.buckets().at(2), 1u);
}

// --- Example 2: serializing instruction ------------------------------
//
//   i1 load (r1)->r2     Dmiss
//   i2 membar
//   i3 add r2,r3->r4
//   i4 load (r4)->r5     Dmiss
//   i5 load (r7)->r8     Dmiss
//
// Epoch sets {i1, i2}, {i3, i4, i5}; MLP = (1+2)/2 = 1.5: the membar
// prevents the independent i5 from overlapping with i1.
TEST(EpochExamples, Example2Serializing)
{
    ScriptedTrace s;
    s.add(makeLoad(0x100, r2, 0xA000, r1), Miss::Data); // i1
    s.add(makeSerializing(0x104));                      // i2
    s.add(makeAlu(0x108, r4, r2, r3));                  // i3
    s.add(makeLoad(0x10c, r5, 0xB000, r4), Miss::Data); // i4
    s.add(makeLoad(0x110, r8, 0xC000, r7), Miss::Data); // i5

    const auto r = s.run(exampleConfig(IssueConfig::C, 8));
    EXPECT_EQ(r.epochs, 2u);
    EXPECT_EQ(r.usefulAccesses, 3u);
    EXPECT_DOUBLE_EQ(r.mlp(), 1.5);
    EXPECT_EQ(r.inhibitors[core::Inhibitor::Serialize], 1u);

    // Config E removes the serializing constraint: i1 and i5 overlap
    // ({i1, i2, i5}, {i3, i4}).
    const auto re = s.run(exampleConfig(IssueConfig::E, 8));
    EXPECT_EQ(re.epochs, 2u);
    EXPECT_DOUBLE_EQ(re.mlp(), 1.5);
    EXPECT_EQ(re.inhibitors[core::Inhibitor::Serialize], 0u);
    EXPECT_EQ(re.accessesPerEpoch.buckets().at(2), 1u);
}

// --- Example 3: instruction miss + unresolvable mispredict -----------
//
//   i1 load (r1)->r2     Dmiss
//   i2 add r2,r3->r4     Imiss
//   i3 load (r4)->r5     Dmiss
//   i4 beq r5,0,tgt      Mispred (depends on i3)
//   i5 load (r7)->r8     Dmiss
//
// Epoch sets {i1, i2-fetch}, {i2, i3}, {i4, i5}: the i2 fetch is an
// off-chip access of epoch 1, so MLP = 4/3.
TEST(EpochExamples, Example3ImissAndMispredict)
{
    ScriptedTrace s;
    s.add(makeLoad(0x100, r2, 0xA000, r1), Miss::Data);  // i1
    s.add(makeAlu(0x104, r4, r2, r3), Miss::Fetch);      // i2
    s.add(makeLoad(0x108, r5, 0xB000, r4), Miss::Data);  // i3
    s.add(makeBranch(0x10c, 0x200, true, r5), Miss::None,
          /*mispredict=*/true);                          // i4
    s.add(makeLoad(0x110, r8, 0xC000, r7), Miss::Data);  // i5

    const auto r = s.run(exampleConfig(IssueConfig::C, 8));
    EXPECT_EQ(r.epochs, 3u);
    EXPECT_EQ(r.usefulAccesses, 4u);
    EXPECT_NEAR(r.mlp(), 4.0 / 3.0, 1e-9);
    EXPECT_EQ(r.inhibitors[core::Inhibitor::ImissEnd], 1u);
    EXPECT_EQ(r.inhibitors[core::Inhibitor::MispredBr], 1u);
}

// --- Example 4: load issue policy ------------------------------------
//
//   i1 load 8(r1)->r2     Dmiss
//   i2 load 0(r2)->r3     Dmiss   (depends on i1)
//   i3 load 108(r1)->r4   Dmiss
//   i4 store r5 -> 0(r3)          (address depends on i2)
//   i5 load 388(r1)->r6   Dmiss
//
// Policy A: {i1}, {i2, i3}, {i4, i5}   -- i3 blocked behind i2
// Policy B: {i1, i3}, {i2}, {i4, i5}   -- i5 blocked by i4's address
// Policy C: {i1, i3, i5}, {i2}, {i4}   -- everything speculates
TEST(EpochExamples, Example4LoadIssuePolicies)
{
    ScriptedTrace s;
    s.add(makeLoad(0x100, r2, 0xA008, r1), Miss::Data);  // i1
    s.add(makeLoad(0x104, r3, 0xB000, r2), Miss::Data);  // i2
    s.add(makeLoad(0x108, r4, 0xA108, r1), Miss::Data);  // i3
    s.add(makeStore(0x10c, 0xB100, r5, r3));             // i4
    s.add(makeLoad(0x110, r6, 0xA388, r1), Miss::Data);  // i5

    const auto ra = s.run(exampleConfig(IssueConfig::A, 8));
    EXPECT_EQ(ra.epochs, 3u);
    EXPECT_EQ(ra.usefulAccesses, 4u);
    // {i1}, {i2,i3}, {i5}.
    EXPECT_EQ(ra.accessesPerEpoch.buckets().at(1), 2u);
    EXPECT_EQ(ra.accessesPerEpoch.buckets().at(2), 1u);

    const auto rb = s.run(exampleConfig(IssueConfig::B, 8));
    EXPECT_EQ(rb.epochs, 3u);
    EXPECT_EQ(rb.usefulAccesses, 4u);
    // {i1,i3}, {i2}, {i5}.
    EXPECT_EQ(rb.accessesPerEpoch.buckets().at(2), 1u);
    EXPECT_EQ(rb.accessesPerEpoch.buckets().at(1), 2u);

    const auto rc = s.run(exampleConfig(IssueConfig::C, 8));
    // {i1,i3,i5}, {i2}; i4 carries no off-chip access, so only two
    // epochs contain accesses.
    EXPECT_EQ(rc.epochs, 2u);
    EXPECT_EQ(rc.usefulAccesses, 4u);
    EXPECT_EQ(rc.accessesPerEpoch.buckets().at(3), 1u);
}

// --- Example 5: branch issue policy ----------------------------------
//
//   i1 load 8(r1)->r2     Dmiss
//   i2 beq r2,1,...               (depends on i1, predicted right)
//   i3 beq r1,1,...       Mispred (independent of the miss)
//   i4 load 108(r1)->r4   Dmiss
//
// In-order branches (A-C): i3 cannot resolve behind i2 -> wrong path
// until the epoch ends; i4 does not overlap i1. Out-of-order branches
// (D): i3 resolves at once and i4 overlaps i1.
TEST(EpochExamples, Example5BranchIssuePolicies)
{
    ScriptedTrace s;
    s.add(makeLoad(0x100, r2, 0xA008, r1), Miss::Data);   // i1
    s.add(makeBranch(0x104, 0x1100, false, r2));          // i2
    s.add(makeBranch(0x108, 0x11ff, false, r1), Miss::None,
          /*mispredict=*/true);                           // i3
    s.add(makeLoad(0x10c, r4, 0xA108, r1), Miss::Data);   // i4

    const auto rc = s.run(exampleConfig(IssueConfig::C, 8));
    EXPECT_EQ(rc.epochs, 2u);
    EXPECT_EQ(rc.usefulAccesses, 2u);
    EXPECT_DOUBLE_EQ(rc.mlp(), 1.0);
    EXPECT_EQ(rc.inhibitors[core::Inhibitor::MispredBr], 1u);

    const auto rd = s.run(exampleConfig(IssueConfig::D, 8));
    EXPECT_EQ(rd.epochs, 1u);
    EXPECT_EQ(rd.usefulAccesses, 2u);
    EXPECT_DOUBLE_EQ(rd.mlp(), 2.0);
    EXPECT_EQ(rd.inhibitors[core::Inhibitor::MispredBr], 0u);
}

} // namespace mlpsim::test
