/** @file Edge cases of the epoch engine: degenerate traces, extreme
 *  window shapes, interaction corners. */
#include <gtest/gtest.h>

#include "tests/support/test_harness.hh"

namespace mlpsim::test {

using core::Inhibitor;
using core::IssueConfig;
using core::MlpConfig;
using predictor::ValueOutcome;
using trace::makeAlu;
using trace::makeBranch;
using trace::makeLoad;
using trace::makeSerializing;
using trace::makeStore;
using trace::noReg;

namespace {

constexpr uint8_t r1 = 1, r2 = 2, r3 = 3, r4 = 4;

} // namespace

TEST(EpochEdge, EmptyTrace)
{
    ScriptedTrace s;
    const auto r = s.run(MlpConfig::defaultOoO());
    EXPECT_EQ(r.epochs, 0u);
    EXPECT_EQ(r.usefulAccesses, 0u);
    EXPECT_DOUBLE_EQ(r.mlp(), 0.0);
}

TEST(EpochEdge, NoMissesNoEpochs)
{
    ScriptedTrace s;
    for (unsigned i = 0; i < 100; ++i)
        s.add(makeAlu(0x100 + 4 * i, r1, r1));
    const auto r = s.run(MlpConfig::defaultOoO());
    EXPECT_EQ(r.epochs, 0u);
    EXPECT_DOUBLE_EQ(r.mlp(), 0.0);
}

TEST(EpochEdge, SingleInstructionWindow)
{
    ScriptedTrace s;
    for (unsigned i = 0; i < 6; ++i)
        s.add(makeLoad(0x100 + 4 * i, r1, 0xA000 + 0x1000ull * i,
                       noReg),
              Miss::Data);
    const auto r = s.run(MlpConfig::sized(1, IssueConfig::C));
    EXPECT_EQ(r.epochs, 6u);
    EXPECT_DOUBLE_EQ(r.mlp(), 1.0);
}

TEST(EpochEdge, SingleEntryFetchBuffer)
{
    ScriptedTrace s;
    for (unsigned i = 0; i < 6; ++i)
        s.add(makeLoad(0x100 + 4 * i, r1, 0xA000 + 0x1000ull * i,
                       noReg),
              Miss::Data);
    MlpConfig cfg = MlpConfig::sized(64, IssueConfig::C);
    cfg.fetchBufferSize = 1;
    const auto r = s.run(cfg);
    // A 1-deep fetch buffer still feeds the big window: all overlap.
    EXPECT_DOUBLE_EQ(r.mlp(), 6.0);
}

TEST(EpochEdge, BackToBackSerializers)
{
    ScriptedTrace s;
    s.add(makeLoad(0x100, r1, 0xA000, noReg), Miss::Data);
    s.add(makeSerializing(0x104));
    s.add(makeSerializing(0x108));
    s.add(makeLoad(0x10c, r2, 0xB000, noReg), Miss::Data);
    const auto r = s.run(MlpConfig::sized(64, IssueConfig::C));
    EXPECT_EQ(r.epochs, 2u);
    EXPECT_EQ(r.usefulAccesses, 2u);
}

TEST(EpochEdge, SerializerAsFirstInstruction)
{
    ScriptedTrace s;
    s.add(makeSerializing(0x100));
    s.add(makeLoad(0x104, r1, 0xA000, noReg), Miss::Data);
    const auto r = s.run(MlpConfig::sized(64, IssueConfig::C));
    EXPECT_EQ(r.epochs, 1u);
    EXPECT_DOUBLE_EQ(r.mlp(), 1.0);
}

TEST(EpochEdge, ConsecutiveUnresolvableMispredicts)
{
    ScriptedTrace s;
    s.add(makeLoad(0x100, r1, 0xA000, noReg), Miss::Data);
    s.add(makeBranch(0x104, 0x200, true, r1), Miss::None, true);
    s.add(makeLoad(0x108, r2, 0xB000, noReg), Miss::Data);
    s.add(makeBranch(0x10c, 0x300, true, r2), Miss::None, true);
    s.add(makeLoad(0x110, r3, 0xC000, noReg), Miss::Data);
    const auto r = s.run(MlpConfig::sized(64, IssueConfig::C));
    EXPECT_EQ(r.epochs, 3u);
    EXPECT_EQ(r.inhibitors[Inhibitor::MispredBr], 2u);
}

TEST(EpochEdge, BranchInOrderBlockingChain)
{
    // Example 5 generalised: a resolvable mispredict queued behind TWO
    // unexecutable branches under in-order branch issue.
    ScriptedTrace s;
    s.add(makeLoad(0x100, r1, 0xA000, noReg), Miss::Data);
    s.add(makeBranch(0x104, 0x200, false, r1)); // dep, predicted right
    s.add(makeBranch(0x108, 0x204, false, r1)); // dep, predicted right
    s.add(makeBranch(0x10c, 0x208, false, r2), Miss::None, true);
    s.add(makeLoad(0x110, r3, 0xB000, noReg), Miss::Data);
    const auto rc = s.run(MlpConfig::sized(64, IssueConfig::C));
    EXPECT_EQ(rc.epochs, 2u); // blocked: no overlap
    const auto rd = s.run(MlpConfig::sized(64, IssueConfig::D));
    EXPECT_EQ(rd.epochs, 1u); // OoO branches: resolves, overlaps
}

TEST(EpochEdge, AtomicIsNotSerializingUnderConfigE)
{
    ScriptedTrace s;
    s.add(makeSerializing(0x100, 0xA000), Miss::Data);
    s.add(makeLoad(0x104, r2, 0xB000, noReg), Miss::Data);
    const auto r = s.run(MlpConfig::sized(64, IssueConfig::E));
    EXPECT_EQ(r.epochs, 1u);
    EXPECT_DOUBLE_EQ(r.mlp(), 2.0);
}

TEST(EpochEdge, ValuePredictionAcrossConfigA)
{
    // A VP-correct missing load releases its dependent load even under
    // in-order load issue (the dependent is the next memory op).
    ScriptedTrace s;
    s.add(makeLoad(0x100, r1, 0xA000, noReg), Miss::Data, false,
          ValueOutcome::Correct);
    s.add(makeLoad(0x104, r2, 0xB000, r1), Miss::Data);
    MlpConfig cfg = MlpConfig::sized(64, IssueConfig::A);
    cfg.valuePrediction = true;
    const auto r = s.run(cfg);
    EXPECT_EQ(r.epochs, 1u);
    EXPECT_DOUBLE_EQ(r.mlp(), 2.0);
}

TEST(EpochEdge, StoreDataDependenceDoesNotBlockConfigB)
{
    // Config B waits only for store *addresses*; a store whose DATA
    // depends on a miss must not block later loads.
    ScriptedTrace s;
    s.add(makeLoad(0x100, r1, 0xA000, noReg), Miss::Data);
    s.add(makeStore(0x104, 0xB000, /*data=*/r1, /*addr=*/noReg));
    s.add(makeLoad(0x108, r2, 0xC000, noReg), Miss::Data);
    const auto r = s.run(MlpConfig::sized(64, IssueConfig::B));
    EXPECT_EQ(r.epochs, 1u);
    EXPECT_DOUBLE_EQ(r.mlp(), 2.0);
}

TEST(EpochEdge, ForwardedLoadValueCarriesDependence)
{
    // store(data <- miss) ; load same address ; dependent missing load:
    // the chain through memory serialises the last load.
    ScriptedTrace s;
    s.add(makeLoad(0x100, r1, 0xA000, noReg), Miss::Data);
    s.add(makeStore(0x104, 0xD000, /*data=*/r1, /*addr=*/noReg));
    s.add(makeLoad(0x108, r2, 0xD000, noReg));
    s.add(makeLoad(0x10c, r3, 0xE000, r2), Miss::Data);
    const auto r = s.run(MlpConfig::infinite());
    EXPECT_EQ(r.epochs, 2u);
}

TEST(EpochEdge, WarmupLargerThanTrace)
{
    ScriptedTrace s;
    s.add(makeLoad(0x100, r1, 0xA000, noReg), Miss::Data);
    MlpConfig cfg = MlpConfig::defaultOoO();
    cfg.warmupInsts = 100;
    const auto r = s.run(cfg);
    EXPECT_EQ(r.epochs, 0u);
    EXPECT_EQ(r.measuredInsts, 0u);
}

TEST(EpochEdge, TrailingEpochIsClosedAtTraceEnd)
{
    ScriptedTrace s;
    s.add(makeLoad(0x100, r1, 0xA000, noReg), Miss::Data);
    s.add(makeAlu(0x104, r2, r1)); // dependent, executes next epoch
    const auto r = s.run(MlpConfig::defaultOoO());
    EXPECT_EQ(r.epochs, 1u);
    EXPECT_EQ(r.inhibitors[Inhibitor::EndOfTrace], 1u);
}

TEST(EpochEdge, TinyRunaheadBudgetAddsNothing)
{
    ScriptedTrace s;
    for (unsigned i = 0; i < 12; ++i)
        s.add(makeLoad(0x100 + 4 * i, uint8_t(10 + i),
                       0xA000 + 0x1000ull * i, noReg),
              Miss::Data);
    MlpConfig tiny = MlpConfig::runahead();
    tiny.issueWindowSize = 2;
    tiny.robSize = 2;
    tiny.maxRunaheadDistance = 1; // cannot reach past the base window
    const double capped = s.run(tiny).mlp();
    MlpConfig full = tiny;
    full.maxRunaheadDistance = 2048;
    const double uncapped = s.run(full).mlp();
    EXPECT_NEAR(capped, 2.0, 0.3); // the 2-entry window's own overlap
    EXPECT_DOUBLE_EQ(uncapped, 12.0);
}

TEST(EpochEdge, HugeWindowOnTinyTrace)
{
    ScriptedTrace s;
    s.add(makeLoad(0x100, r1, 0xA000, noReg), Miss::Data);
    MlpConfig cfg = MlpConfig::infinite();
    const auto r = s.run(cfg);
    EXPECT_EQ(r.epochs, 1u);
    EXPECT_DOUBLE_EQ(r.mlp(), 1.0);
}

TEST(EpochEdge, AccessPerEpochHistogramIsConsistent)
{
    ScriptedTrace s;
    for (unsigned i = 0; i < 9; ++i)
        s.add(makeLoad(0x100 + 4 * i, uint8_t(10 + i),
                       0xA000 + 0x1000ull * i, noReg),
              Miss::Data);
    const auto r = s.run(MlpConfig::sized(3, IssueConfig::C));
    uint64_t epochs = 0, accesses = 0;
    for (const auto &[size, count] : r.accessesPerEpoch.buckets()) {
        epochs += count;
        accesses += size * count;
    }
    EXPECT_EQ(epochs, r.epochs);
    EXPECT_EQ(accesses, r.usefulAccesses);
}

} // namespace mlpsim::test
