/** @file Configuration helpers: labels, factory presets, names. */
#include <gtest/gtest.h>

#include "core/mlp_config.hh"
#include "core/mlp_result.hh"

#include <set>
#include <string>

namespace mlpsim::test {

using namespace mlpsim::core;

TEST(MlpConfig, DefaultMatchesPaperSection51)
{
    const MlpConfig cfg = MlpConfig::defaultOoO();
    EXPECT_EQ(cfg.mode, CoreMode::OutOfOrder);
    EXPECT_EQ(cfg.issue, IssueConfig::C);
    EXPECT_EQ(cfg.fetchBufferSize, 32u);
    EXPECT_EQ(cfg.issueWindowSize, 64u);
    EXPECT_EQ(cfg.robSize, 64u);
    EXPECT_FALSE(cfg.valuePrediction);
    EXPECT_FALSE(cfg.finiteStoreBuffer);
}

TEST(MlpConfig, SizedCouplesWindowAndRob)
{
    const MlpConfig cfg = MlpConfig::sized(128, IssueConfig::D);
    EXPECT_EQ(cfg.issueWindowSize, 128u);
    EXPECT_EQ(cfg.robSize, 128u);
    EXPECT_EQ(cfg.issue, IssueConfig::D);
}

TEST(MlpConfig, InfinitePreset)
{
    const MlpConfig cfg = MlpConfig::infinite();
    EXPECT_EQ(cfg.issueWindowSize, 2048u);
    EXPECT_EQ(cfg.robSize, 2048u);
    EXPECT_EQ(cfg.issue, IssueConfig::E);
}

TEST(MlpConfig, RunaheadPresetMatchesFigure8)
{
    const MlpConfig cfg = MlpConfig::runahead();
    EXPECT_EQ(cfg.mode, CoreMode::Runahead);
    EXPECT_EQ(cfg.issueWindowSize, 64u);
    EXPECT_EQ(cfg.issue, IssueConfig::D);
    EXPECT_EQ(cfg.maxRunaheadDistance, 2048u);
    EXPECT_EQ(MlpConfig::runahead(256).robSize, 256u);
}

TEST(MlpConfig, Labels)
{
    EXPECT_EQ(MlpConfig::sized(64, IssueConfig::C).label(), "64C");
    MlpConfig decoupled = MlpConfig::sized(64, IssueConfig::D);
    decoupled.robSize = 256;
    EXPECT_EQ(decoupled.label(), "64D/rob256");
    EXPECT_EQ(MlpConfig::runahead().label(), "RAE");
    MlpConfig som;
    som.mode = CoreMode::InOrderStallOnMiss;
    EXPECT_EQ(som.label(), "in-order-som");
}

TEST(MlpConfig, EnumNames)
{
    EXPECT_STREQ(issueConfigName(IssueConfig::A), "A");
    EXPECT_STREQ(issueConfigName(IssueConfig::E), "E");
    EXPECT_STREQ(coreModeName(CoreMode::Runahead), "runahead");
    EXPECT_STREQ(coreModeName(CoreMode::OutOfOrder), "out-of-order");
}

TEST(InhibitorNames, AllDistinct)
{
    std::set<std::string> names;
    for (size_t i = 0; i < numInhibitors; ++i)
        names.insert(inhibitorName(static_cast<Inhibitor>(i)));
    EXPECT_EQ(names.size(), numInhibitors);
}

} // namespace mlpsim::test
