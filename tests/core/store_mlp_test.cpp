/** @file Store-MLP extension (the paper's stated future work): finite
 *  store buffers make off-chip store fills part of the MLP picture. */
#include <gtest/gtest.h>

#include "tests/support/test_harness.hh"

namespace mlpsim::test {

using core::IssueConfig;
using core::MlpConfig;
using trace::makeAlu;
using trace::makeLoad;
using trace::makeStore;
using trace::noReg;

namespace {

constexpr uint8_t r1 = 1, r2 = 2;

/** Inject a store-miss annotation (the harness lacks a Miss:: value
 *  for stores, so mark it directly). */
core::MlpResult
runWithStoreMisses(ScriptedTrace &s, const std::vector<size_t> &stores,
                   MlpConfig cfg)
{
    auto ctx = s.context();
    auto misses = *ctx.misses; // copy, then extend
    for (size_t i : stores)
        misses.markStoreMiss(i);
    ctx.misses = &misses;
    return core::runMlp(cfg, ctx);
}

} // namespace

TEST(StoreMlp, DisabledByDefault)
{
    ScriptedTrace s;
    s.add(makeStore(0x100, 0xA000));
    s.add(makeLoad(0x104, r1, 0xB000, noReg), Miss::Data);
    const auto r = runWithStoreMisses(s, {0}, MlpConfig::defaultOoO());
    EXPECT_EQ(r.usefulAccesses, 1u); // the store fill is not counted
    EXPECT_EQ(r.smissAccesses, 0u);
}

TEST(StoreMlp, StoreFillCountsWhenEnabled)
{
    ScriptedTrace s;
    s.add(makeStore(0x100, 0xA000));
    s.add(makeLoad(0x104, r1, 0xB000, noReg), Miss::Data);
    MlpConfig cfg = MlpConfig::defaultOoO();
    cfg.finiteStoreBuffer = true;
    const auto r = runWithStoreMisses(s, {0}, cfg);
    EXPECT_EQ(r.usefulAccesses, 2u);
    EXPECT_EQ(r.smissAccesses, 1u);
    // The independent store fill and load miss overlap.
    EXPECT_EQ(r.epochs, 1u);
    EXPECT_DOUBLE_EQ(r.mlp(), 2.0);
}

TEST(StoreMlp, MissingStoreBlocksRetirement)
{
    // With the store buffer full, a missing store at the ROB head
    // stalls the window just like a missing load.
    ScriptedTrace s;
    s.add(makeStore(0x100, 0xA000));
    for (unsigned i = 0; i < 6; ++i)
        s.add(makeAlu(0x104 + 4 * i, r2, r2));
    s.add(makeLoad(0x120, r1, 0xB000, noReg), Miss::Data);
    MlpConfig cfg = MlpConfig::sized(4, IssueConfig::C);
    cfg.finiteStoreBuffer = true;
    const auto r = runWithStoreMisses(s, {0}, cfg);
    // The 4-entry ROB fills behind the outstanding store: the load
    // lands in a second epoch.
    EXPECT_EQ(r.epochs, 2u);
}

TEST(StoreMlp, StoreOnlyTrafficHasUnitMlpInOrderStores)
{
    ScriptedTrace s;
    std::vector<size_t> store_indices;
    for (unsigned i = 0; i < 8; ++i) {
        s.add(makeStore(0x100 + 4 * i, 0xA000 + 0x1000ull * i));
        store_indices.push_back(i);
    }
    MlpConfig cfg = MlpConfig::sized(64, IssueConfig::C);
    cfg.finiteStoreBuffer = true;
    const auto r = runWithStoreMisses(s, store_indices, cfg);
    EXPECT_EQ(r.usefulAccesses, 8u);
    // Independent store fills all overlap (window permitting).
    EXPECT_DOUBLE_EQ(r.mlp(), 8.0);
}

TEST(StoreMlp, AnnotationsCarryStoreMisses)
{
    // End-to-end through the profiler: cold stores are flagged.
    trace::TraceBuffer buf;
    buf.append(makeStore(0x100000, 0xA0000));
    buf.append(makeStore(0x100004, 0xA0000)); // same line: hit
    memory::ProfileConfig cfg;
    const auto ann = memory::AccessProfiler(cfg).profile(buf);
    EXPECT_TRUE(ann.storeMiss(0));
    EXPECT_FALSE(ann.storeMiss(1));
    EXPECT_EQ(ann.storeMisses, 1u);
    // Store misses are NOT part of the paper's useful accesses.
    EXPECT_EQ(ann.usefulAccesses(), ann.fetchMisses);
}

} // namespace mlpsim::test
