/** @file Runahead execution (paper Sections 3.5 and 5.4.1). */
#include <gtest/gtest.h>

#include "tests/support/test_harness.hh"

namespace mlpsim::test {

using core::Inhibitor;
using core::IssueConfig;
using core::MlpConfig;
using trace::makeAlu;
using trace::makeBranch;
using trace::makeLoad;
using trace::makeSerializing;
using trace::noReg;

namespace {

constexpr uint8_t r1 = 1, r2 = 2;

MlpConfig
runaheadConfig(unsigned distance = 2048)
{
    MlpConfig cfg = MlpConfig::runahead();
    cfg.maxRunaheadDistance = distance;
    return cfg;
}

/** n independent misses separated by @p pad ALUs. */
ScriptedTrace
spacedMisses(unsigned n, unsigned pad)
{
    ScriptedTrace s;
    uint64_t pc = 0x100;
    for (unsigned i = 0; i < n; ++i) {
        s.add(makeLoad(pc, uint8_t(10 + (i % 40)),
                       0xA000 + 0x1000ull * i, noReg),
              Miss::Data);
        pc += 4;
        for (unsigned p = 0; p < pad; ++p) {
            s.add(makeAlu(pc, r1, r1));
            pc += 4;
        }
    }
    return s;
}

} // namespace

TEST(Runahead, IgnoresWindowCapacity)
{
    auto s = spacedMisses(16, 7); // 8 insts per miss
    MlpConfig tiny = MlpConfig::sized(8, IssueConfig::D);
    const double base = s.run(tiny).mlp();

    MlpConfig rae = runaheadConfig();
    rae.issueWindowSize = 8;
    rae.robSize = 8;
    const double ahead = s.run(rae).mlp();
    EXPECT_GT(ahead, base * 3);
    EXPECT_DOUBLE_EQ(ahead, 16.0); // all 16 overlap in one epoch
}

TEST(Runahead, RespectsMaxDistance)
{
    auto s = spacedMisses(64, 7); // 8 insts per miss
    MlpConfig rae = runaheadConfig(32); // reaches ~4 misses
    rae.epochInstHorizon = 4096;
    const auto r = s.run(rae);
    EXPECT_NEAR(r.mlp(), 4.0, 1.0);
}

TEST(Runahead, IgnoresSerializingInstructions)
{
    ScriptedTrace s;
    s.add(makeLoad(0x100, r1, 0xA000, noReg), Miss::Data);
    s.add(makeSerializing(0x104));
    s.add(makeLoad(0x108, r2, 0xB000, noReg), Miss::Data);
    const auto conventional =
        s.run(MlpConfig::sized(64, IssueConfig::D));
    EXPECT_EQ(conventional.epochs, 2u);

    const auto rae = s.run(runaheadConfig());
    EXPECT_EQ(rae.epochs, 1u);
    EXPECT_DOUBLE_EQ(rae.mlp(), 2.0);
    EXPECT_EQ(rae.inhibitors[Inhibitor::Serialize], 0u);
}

TEST(Runahead, InstructionMissStillTerminates)
{
    ScriptedTrace s;
    s.add(makeLoad(0x100, r1, 0xA000, noReg), Miss::Data);
    s.add(makeAlu(0x140, r2), Miss::Fetch);
    s.add(makeLoad(0x144, r2, 0xB000, noReg), Miss::Data);
    const auto r = s.run(runaheadConfig());
    // The Imiss overlaps the load but blocks fetch: the third miss
    // lands in the next epoch.
    EXPECT_EQ(r.epochs, 2u);
    EXPECT_EQ(r.inhibitors[Inhibitor::ImissEnd], 1u);
}

TEST(Runahead, UnresolvableMispredictStillTerminates)
{
    ScriptedTrace s;
    s.add(makeLoad(0x100, r1, 0xA000, noReg), Miss::Data);
    s.add(makeBranch(0x104, 0x200, true, r1), Miss::None, true);
    s.add(makeLoad(0x108, r2, 0xB000, noReg), Miss::Data);
    const auto r = s.run(runaheadConfig());
    EXPECT_EQ(r.epochs, 2u);
    EXPECT_EQ(r.inhibitors[Inhibitor::MispredBr], 1u);
}

TEST(Runahead, DependentMissesAreSkippedNotIssued)
{
    // A load whose address depends on the trigger cannot issue during
    // runahead (its register is invalid) and lands in the next epoch.
    ScriptedTrace s;
    s.add(makeLoad(0x100, r1, 0xA000, noReg), Miss::Data);
    s.add(makeLoad(0x104, r2, 0xB000, r1), Miss::Data);
    const auto r = s.run(runaheadConfig());
    EXPECT_EQ(r.epochs, 2u);
    EXPECT_DOUBLE_EQ(r.mlp(), 1.0);
}

TEST(Runahead, MatchesInfOnScriptedTraces)
{
    // The paper: RAE results are identical to the INF machine
    // (window 2048, ROB 2048, config E).
    auto s = spacedMisses(40, 3);
    const auto rae = s.run(runaheadConfig());
    const auto inf = s.run(MlpConfig::infinite());
    EXPECT_EQ(rae.epochs, inf.epochs);
    EXPECT_EQ(rae.usefulAccesses, inf.usefulAccesses);
    EXPECT_DOUBLE_EQ(rae.mlp(), inf.mlp());
}

TEST(Runahead, NotTriggeredByInstructionMissAlone)
{
    // Runahead enters on a missing-load trigger; a pure Imiss-start
    // epoch stays a one-access epoch.
    ScriptedTrace s;
    s.add(makeAlu(0x100, r1), Miss::Fetch);
    s.add(makeLoad(0x104, r2, 0xA000, noReg), Miss::Data);
    const auto r = s.run(runaheadConfig());
    EXPECT_EQ(r.epochs, 2u);
    EXPECT_EQ(r.inhibitors[Inhibitor::ImissStart], 1u);
}

TEST(Runahead, BeatsLargeConventionalWindowWithSerialization)
{
    // With serializing instructions sprinkled in, runahead beats even
    // a much larger conventional machine (config D serializes).
    ScriptedTrace s;
    uint64_t pc = 0x100;
    for (unsigned i = 0; i < 24; ++i) {
        s.add(makeLoad(pc, uint8_t(10 + (i % 40)),
                       0xA000 + 0x1000ull * i, noReg),
              Miss::Data);
        pc += 4;
        if (i % 2 == 1) {
            s.add(makeSerializing(pc));
            pc += 4;
        }
    }
    const double conventional =
        s.run(MlpConfig::sized(256, IssueConfig::D)).mlp();
    const double rae = s.run(runaheadConfig()).mlp();
    EXPECT_GT(rae, 2.0 * conventional);
}

} // namespace mlpsim::test
