/** @file Missing-load value prediction in the epoch model
 *  (paper Sections 3.6 and 5.5). */
#include <gtest/gtest.h>

#include "tests/support/test_harness.hh"

namespace mlpsim::test {

using core::IssueConfig;
using core::MlpConfig;
using predictor::ValueOutcome;
using trace::makeAlu;
using trace::makeLoad;
using trace::noReg;

namespace {

constexpr uint8_t r1 = 1, r2 = 2, r3 = 3;

MlpConfig
withVp(MlpConfig cfg)
{
    cfg.valuePrediction = true;
    return cfg;
}

} // namespace

TEST(ValuePrediction, CorrectPredictionReleasesDependentMiss)
{
    ScriptedTrace s;
    s.add(makeLoad(0x100, r1, 0xA000, noReg), Miss::Data, false,
          ValueOutcome::Correct);
    s.add(makeLoad(0x104, r2, 0xB000, r1), Miss::Data);
    const auto off = s.run(MlpConfig::sized(64, IssueConfig::C));
    EXPECT_EQ(off.epochs, 2u);
    const auto on = s.run(withVp(MlpConfig::sized(64, IssueConfig::C)));
    EXPECT_EQ(on.epochs, 1u);
    EXPECT_DOUBLE_EQ(on.mlp(), 2.0);
}

TEST(ValuePrediction, WrongPredictionBehavesLikeNoPrediction)
{
    ScriptedTrace s;
    s.add(makeLoad(0x100, r1, 0xA000, noReg), Miss::Data, false,
          ValueOutcome::Wrong);
    s.add(makeLoad(0x104, r2, 0xB000, r1), Miss::Data);
    const auto on = s.run(withVp(MlpConfig::sized(64, IssueConfig::C)));
    EXPECT_EQ(on.epochs, 2u);
}

TEST(ValuePrediction, DisabledConfigIgnoresAnnotations)
{
    ScriptedTrace s;
    s.add(makeLoad(0x100, r1, 0xA000, noReg), Miss::Data, false,
          ValueOutcome::Correct);
    s.add(makeLoad(0x104, r2, 0xB000, r1), Miss::Data);
    const auto off = s.run(MlpConfig::sized(64, IssueConfig::C));
    EXPECT_EQ(off.epochs, 2u);
}

TEST(ValuePrediction, PerfectVpCollapsesDependentChain)
{
    ScriptedTrace s;
    uint8_t reg = r1;
    for (unsigned i = 0; i < 6; ++i) {
        s.add(makeLoad(0x100 + 4 * i, reg, 0xA000 + 0x1000ull * i,
                       reg),
              Miss::Data, false, ValueOutcome::Correct);
    }
    const auto on = s.run(withVp(MlpConfig::sized(64, IssueConfig::C)));
    EXPECT_EQ(on.epochs, 1u);
    EXPECT_DOUBLE_EQ(on.mlp(), 6.0);
}

TEST(ValuePrediction, PredictedLoadStillBlocksRetirement)
{
    // Value prediction frees consumers, not the ROB: the predicted
    // load retires only when its data returns, so Maxwin still caps
    // the window at the same place.
    ScriptedTrace s;
    s.add(makeLoad(0x100, r1, 0xA000, noReg), Miss::Data, false,
          ValueOutcome::Correct);
    for (unsigned i = 0; i < 6; ++i)
        s.add(makeAlu(0x104 + 4 * i, r2, r2));
    s.add(makeLoad(0x120, r3, 0xB000, noReg), Miss::Data);
    MlpConfig cfg = withVp(MlpConfig::sized(4, IssueConfig::C));
    const auto r = s.run(cfg);
    // ROB of 4 fills with the ALUs before the second load dispatches.
    EXPECT_EQ(r.epochs, 2u);
}

TEST(ValuePrediction, HelpsRunaheadMost)
{
    // A dependent chain of predicted misses: runahead+VP overlaps all
    // of them; conventional machines are still window-limited.
    ScriptedTrace s;
    for (unsigned i = 0; i < 24; ++i) {
        s.add(makeLoad(0x100 + 16 * i, r1, 0xA000 + 0x1000ull * i, r1),
              Miss::Data, false, ValueOutcome::Correct);
        for (int p = 0; p < 3; ++p)
            s.add(makeAlu(0x104 + 16 * i + 4u * unsigned(p), r2, r1));
    }
    MlpConfig small = withVp(MlpConfig::sized(16, IssueConfig::D));
    MlpConfig rae = withVp(MlpConfig::runahead());
    const double small_mlp = s.run(small).mlp();
    const double rae_mlp = s.run(rae).mlp();
    EXPECT_GT(rae_mlp, 2.0 * small_mlp);
    EXPECT_DOUBLE_EQ(rae_mlp, 24.0);
}

} // namespace mlpsim::test
