/** @file In-order machine models: stall-on-miss and stall-on-use
 *  (paper Section 3.3 / Table 5). */
#include <gtest/gtest.h>

#include "tests/support/test_harness.hh"

namespace mlpsim::test {

using core::CoreMode;
using core::Inhibitor;
using core::MlpConfig;
using trace::makeAlu;
using trace::makeBranch;
using trace::makeLoad;
using trace::makePrefetch;
using trace::makeSerializing;
using trace::noReg;

namespace {

constexpr uint8_t r1 = 1, r2 = 2, r3 = 3, r4 = 4;

MlpConfig
som()
{
    MlpConfig cfg;
    cfg.mode = CoreMode::InOrderStallOnMiss;
    return cfg;
}

MlpConfig
sou()
{
    MlpConfig cfg;
    cfg.mode = CoreMode::InOrderStallOnUse;
    return cfg;
}

} // namespace

TEST(InOrder, StallOnMissNeverOverlapsLoads)
{
    ScriptedTrace s;
    s.add(makeLoad(0x100, r1, 0xA000, noReg), Miss::Data);
    s.add(makeLoad(0x104, r2, 0xB000, noReg), Miss::Data);
    s.add(makeLoad(0x108, r3, 0xC000, noReg), Miss::Data);
    const auto r = s.run(som());
    EXPECT_EQ(r.epochs, 3u);
    EXPECT_DOUBLE_EQ(r.mlp(), 1.0);
}

TEST(InOrder, StallOnUseOverlapsUntilFirstUse)
{
    ScriptedTrace s;
    s.add(makeLoad(0x100, r1, 0xA000, noReg), Miss::Data);
    s.add(makeLoad(0x104, r2, 0xB000, noReg), Miss::Data);
    s.add(makeAlu(0x108, r3, r1)); // first use of missing data
    s.add(makeLoad(0x10c, r4, 0xC000, noReg), Miss::Data);
    const auto r = s.run(sou());
    EXPECT_EQ(r.epochs, 2u);
    EXPECT_EQ(r.accessesPerEpoch.buckets().at(2), 1u);
    EXPECT_DOUBLE_EQ(r.mlp(), 1.5);
}

TEST(InOrder, StallOnUseStallsOnAddressUse)
{
    ScriptedTrace s;
    s.add(makeLoad(0x100, r1, 0xA000, noReg), Miss::Data);
    s.add(makeLoad(0x104, r2, 0xB000, r1), Miss::Data); // addr uses r1
    const auto r = s.run(sou());
    EXPECT_EQ(r.epochs, 2u);
}

TEST(InOrder, PrefetchOverlapsStallOnMiss)
{
    // Section 3.3: missing prefetches may overlap a missing load.
    ScriptedTrace s;
    s.add(makePrefetch(0x100, 0xD000), Miss::UsefulPrefetch);
    s.add(makeLoad(0x104, r1, 0xA000, noReg), Miss::Data);
    const auto r = s.run(som());
    EXPECT_EQ(r.epochs, 1u);
    EXPECT_DOUBLE_EQ(r.mlp(), 2.0);
}

TEST(InOrder, ImissWithinFetchBufferOverlapsStalledLoad)
{
    ScriptedTrace s;
    s.add(makeLoad(0x100, r1, 0xA000, noReg), Miss::Data);
    s.add(makeAlu(0x104, r2));
    s.add(makeAlu(0x140, r2), Miss::Fetch); // within fetch buffer
    const auto r = s.run(som());
    EXPECT_EQ(r.usefulAccesses, 2u);
    EXPECT_EQ(r.epochs, 1u);
}

TEST(InOrder, ImissBeyondFetchBufferDoesNotOverlap)
{
    ScriptedTrace s;
    s.add(makeLoad(0x100, r1, 0xA000, noReg), Miss::Data);
    for (unsigned i = 0; i < 40; ++i) // beyond the 32-entry buffer
        s.add(makeAlu(0x104 + 4 * i, r2));
    s.add(makeAlu(0x400, r2), Miss::Fetch);
    const auto r = s.run(som());
    EXPECT_EQ(r.usefulAccesses, 2u);
    EXPECT_EQ(r.epochs, 2u);
    EXPECT_EQ(r.inhibitors[Inhibitor::ImissStart], 1u);
}

TEST(InOrder, LoneImissFormsItsOwnEpoch)
{
    ScriptedTrace s;
    s.add(makeAlu(0x100, r1), Miss::Fetch);
    s.add(makeAlu(0x104, r1));
    const auto r = s.run(som());
    EXPECT_EQ(r.epochs, 1u);
    EXPECT_EQ(r.inhibitors[Inhibitor::ImissStart], 1u);
}

TEST(InOrder, SerializingDrainsOutstandingPrefetchEpoch)
{
    ScriptedTrace s;
    s.add(makePrefetch(0x100, 0xD000), Miss::UsefulPrefetch);
    s.add(makeSerializing(0x104));
    s.add(makePrefetch(0x108, 0xE000), Miss::UsefulPrefetch);
    const auto r = s.run(sou());
    EXPECT_EQ(r.epochs, 2u);
    EXPECT_EQ(r.inhibitors[Inhibitor::Serialize], 1u);
}

TEST(InOrder, MissingAtomicIsItsOwnEpoch)
{
    ScriptedTrace s;
    s.add(makeSerializing(0x100, 0xA000), Miss::Data);
    s.add(makeLoad(0x104, r1, 0xB000, noReg), Miss::Data);
    const auto r = s.run(som());
    EXPECT_EQ(r.epochs, 2u);
    EXPECT_EQ(r.usefulAccesses, 2u);
}

TEST(InOrder, UnresolvableMispredictChargedToBranch)
{
    ScriptedTrace s;
    s.add(makeLoad(0x100, r1, 0xA000, noReg), Miss::Data);
    s.add(makeBranch(0x104, 0x200, true, r1), Miss::None, true);
    s.add(makeLoad(0x108, r2, 0xB000, noReg), Miss::Data);
    const auto r = s.run(sou());
    EXPECT_EQ(r.epochs, 2u);
    EXPECT_EQ(r.inhibitors[Inhibitor::MispredBr], 1u);
}

TEST(InOrder, StallOnUseNeverBeatenByStallOnMiss)
{
    // Property: on any trace, sou MLP >= som MLP.
    ScriptedTrace s;
    uint64_t pc = 0x100;
    for (unsigned i = 0; i < 50; ++i) {
        const uint8_t reg = uint8_t(8 + (i % 8));
        s.add(makeLoad(pc, reg, 0xA000 + 0x1000ull * i,
                       i % 3 == 0 ? uint8_t(8 + ((i + 5) % 8)) : noReg),
              i % 2 == 0 ? Miss::Data : Miss::None);
        pc += 4;
        s.add(makeAlu(pc, uint8_t(8 + ((i + 1) % 8)), reg));
        pc += 4;
    }
    EXPECT_GE(s.run(sou()).mlp() + 1e-9, s.run(som()).mlp());
}

TEST(InOrder, HorizonClosesNonStallingEpochs)
{
    ScriptedTrace s;
    for (unsigned i = 0; i < 64; ++i) {
        s.add(makePrefetch(0x100 + 4 * i, 0xA000 + 0x1000ull * i),
              Miss::UsefulPrefetch);
    }
    MlpConfig cfg = som();
    cfg.epochInstHorizon = 8;
    const auto r = s.run(cfg);
    EXPECT_EQ(r.usefulAccesses, 64u);
    EXPECT_GE(r.epochs, 8u);
    EXPECT_GT(r.inhibitors[Inhibitor::TriggerDone], 0u);
}

TEST(InOrder, WarmupExcluded)
{
    ScriptedTrace s;
    for (unsigned i = 0; i < 10; ++i)
        s.add(makeLoad(0x100 + 4 * i, r1, 0xA000 + 0x1000ull * i,
                       noReg),
              Miss::Data);
    MlpConfig cfg = som();
    cfg.warmupInsts = 5;
    const auto r = s.run(cfg);
    EXPECT_EQ(r.epochs, 5u);
    EXPECT_EQ(r.usefulAccesses, 5u);
}

} // namespace mlpsim::test
