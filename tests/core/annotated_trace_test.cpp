/** @file The AnnotatedTrace facade: option plumbing and context
 *  wiring. */
#include <gtest/gtest.h>

#include "core/mlpsim.hh"
#include "workloads/micro.hh"

namespace mlpsim::test {

using namespace mlpsim;

namespace {

trace::TraceBuffer
smallTrace()
{
    workloads::SerializingStormWorkload w;
    trace::TraceBuffer buf("storm");
    buf.fill(w, 30000);
    return buf;
}

} // namespace

TEST(AnnotatedTrace, ContextPointsAtAllAnnotations)
{
    const auto buf = smallTrace();
    core::AnnotatedTrace annotated(buf, core::AnnotationOptions{});
    const auto ctx = annotated.context();
    EXPECT_EQ(ctx.buffer, &buf);
    EXPECT_EQ(ctx.misses, &annotated.misses());
    EXPECT_EQ(ctx.branches, &annotated.branches());
    EXPECT_NE(ctx.values, nullptr);
    EXPECT_EQ(ctx.size(), buf.size());
}

TEST(AnnotatedTrace, ValuesCanBeSkipped)
{
    const auto buf = smallTrace();
    core::AnnotationOptions opts;
    opts.buildValues = false;
    core::AnnotatedTrace annotated(buf, opts);
    EXPECT_EQ(annotated.context().values, nullptr);
}

TEST(AnnotatedTrace, PerfectHierarchyOptionRemovesImisses)
{
    const auto buf = smallTrace();
    core::AnnotationOptions opts;
    opts.hierarchy.perfectInstFetch = true;
    core::AnnotatedTrace annotated(buf, opts);
    EXPECT_EQ(annotated.misses().fetchMisses, 0u);
}

TEST(AnnotatedTrace, PerfectBranchOptionRemovesMispredicts)
{
    const auto buf = smallTrace();
    core::AnnotationOptions opts;
    opts.branch.perfect = true;
    core::AnnotatedTrace annotated(buf, opts);
    EXPECT_EQ(annotated.branches().mispredicts, 0u);
}

TEST(AnnotatedTrace, PerfectValueOptionMakesEverythingCorrect)
{
    const auto buf = smallTrace();
    core::AnnotationOptions opts;
    opts.value.perfect = true;
    core::AnnotatedTrace annotated(buf, opts);
    const auto &v = annotated.values();
    EXPECT_GT(v.missingLoads, 0u);
    EXPECT_EQ(v.correct, v.missingLoads);
}

TEST(AnnotatedTrace, SmallerL2RaisesMissRate)
{
    const auto buf = smallTrace();
    core::AnnotationOptions small;
    small.hierarchy.l2.sizeBytes = 256 * 1024;
    core::AnnotationOptions big;
    big.hierarchy.l2.sizeBytes = 8 * 1024 * 1024;
    core::AnnotatedTrace a(buf, small), b(buf, big);
    EXPECT_GE(a.misses().usefulAccesses(),
              b.misses().usefulAccesses());
}

TEST(RunMlpFacade, DispatchesByMode)
{
    const auto buf = smallTrace();
    core::AnnotatedTrace annotated(buf, core::AnnotationOptions{});
    core::MlpConfig som;
    som.mode = core::CoreMode::InOrderStallOnMiss;
    const auto in_order = core::runMlp(som, annotated.context());
    const auto ooo = core::runMlp(core::MlpConfig::defaultOoO(),
                                  annotated.context());
    EXPECT_GT(ooo.mlp(), in_order.mlp());
    // Both account for every useful access.
    EXPECT_EQ(in_order.usefulAccesses, ooo.usefulAccesses);
}

TEST(RunMlpFacade, WarmupMustMatchAnnotationsForFullCoverage)
{
    // Documented contract: the engine's warmupInsts should equal the
    // annotation warm-up. This test pins the behaviour when they do.
    const auto buf = smallTrace();
    core::AnnotationOptions opts;
    opts.warmupInsts = 10000;
    core::AnnotatedTrace annotated(buf, opts);
    core::MlpConfig cfg = core::MlpConfig::defaultOoO();
    cfg.warmupInsts = 10000;
    const auto r = core::runMlp(cfg, annotated.context());
    EXPECT_EQ(r.measuredInsts, buf.size() - 10000);
    EXPECT_NEAR(double(r.usefulAccesses),
                double(annotated.misses().usefulAccesses()),
                0.02 * double(annotated.misses().usefulAccesses()) + 8);
}

} // namespace mlpsim::test
