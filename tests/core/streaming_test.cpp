/**
 * @file
 * Streamed-vs-materialised equivalence: the streaming pipeline's
 * central guarantee is that fusing generation into consumption changes
 * *nothing* observable. The annotation planes, every simulator's
 * results and the chunking itself must be bit-identical between a
 * materialised TraceBuffer and a re-generating chunk stream, for any
 * chunk capacity.
 */
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/mlpsim.hh"
#include "core/shared_stream.hh"
#include "core/trace_pipeline.hh"
#include "cyclesim/cycle_sim.hh"
#include "trace/stream_source.hh"
#include "workloads/factory.hh"

namespace mlpsim::test {

using namespace mlpsim;

namespace {

constexpr uint64_t kInsts = 40000;
constexpr uint64_t kWarmup = 10000;

std::string
workloadName()
{
    return workloads::commercialWorkloadNames().front();
}

trace::GeneratedChunkSource
makeStream(uint32_t chunk_cap)
{
    const std::string name = workloadName();
    return trace::GeneratedChunkSource(
        name, kInsts,
        [name] {
            return workloads::makeWorkload(name,
                                           workloads::workloadSeed(name));
        },
        chunk_cap);
}

core::AnnotationOptions
annotationOptions()
{
    core::AnnotationOptions opts;
    opts.warmupInsts = kWarmup;
    return opts;
}

/** The materialised reference everything is compared against. */
struct Materialised
{
    std::unique_ptr<trace::TraceBuffer> buffer;
    std::unique_ptr<core::AnnotatedTrace> annotated;

    Materialised()
    {
        auto generator = workloads::makeWorkload(
            workloadName(), workloads::workloadSeed(workloadName()));
        buffer = std::make_unique<trace::TraceBuffer>(workloadName());
        buffer->fill(*generator, kInsts);
        annotated = std::make_unique<core::AnnotatedTrace>(
            *buffer, annotationOptions());
    }
};

void
expectSameAnnotations(const core::StreamingTrace &streamed,
                      const core::AnnotatedTrace &reference)
{
    const auto &sm = streamed.misses();
    const auto &rm = reference.misses();
    EXPECT_EQ(sm.measuredInsts, rm.measuredInsts);
    EXPECT_EQ(sm.fetchMisses, rm.fetchMisses);
    EXPECT_EQ(sm.loadMisses, rm.loadMisses);
    EXPECT_EQ(sm.storeMisses, rm.storeMisses);
    EXPECT_EQ(sm.usefulPrefetches, rm.usefulPrefetches);
    EXPECT_EQ(sm.uselessPrefetches, rm.uselessPrefetches);
    ASSERT_EQ(sm.size(), rm.size());

    const auto &sb = streamed.branches();
    const auto &rb = reference.branches();
    EXPECT_EQ(sb.branches, rb.branches);
    EXPECT_EQ(sb.mispredicts, rb.mispredicts);

    const auto &sv = streamed.values();
    const auto &rv = reference.values();
    EXPECT_EQ(sv.missingLoads, rv.missingLoads);
    EXPECT_EQ(sv.correct, rv.correct);
    EXPECT_EQ(sv.wrong, rv.wrong);
    EXPECT_EQ(sv.noPredict, rv.noPredict);

    // Every per-instruction plane, bit for bit.
    for (size_t i = 0; i < rm.size(); ++i) {
        ASSERT_EQ(sm.fetchMiss(i), rm.fetchMiss(i)) << "at " << i;
        ASSERT_EQ(sm.dataMiss(i), rm.dataMiss(i)) << "at " << i;
        ASSERT_EQ(sm.usefulPrefetch(i), rm.usefulPrefetch(i)) << "at " << i;
        ASSERT_EQ(sm.dataL2Hit(i), rm.dataL2Hit(i)) << "at " << i;
        ASSERT_EQ(sm.storeMiss(i), rm.storeMiss(i)) << "at " << i;
        ASSERT_EQ(sb.isMispredict(i), rb.isMispredict(i)) << "at " << i;
        ASSERT_EQ(sv.outcome[i], rv.outcome[i]) << "at " << i;
    }
}

} // namespace

TEST(StreamingTrace, AnnotationsMatchMaterialisedForAnyChunkSize)
{
    const Materialised ref;
    // Chunk capacity must be result-invariant: a tiny odd size, a
    // mid-size power of two, and the default (trace fits in 3 chunks).
    for (const uint32_t cap : {613u, 4096u, trace::defaultChunkCapacity}) {
        SCOPED_TRACE("chunk capacity " + std::to_string(cap));
        const auto source = makeStream(cap);
        const core::StreamingTrace streamed(source, annotationOptions());
        EXPECT_EQ(streamed.instructions(), kInsts);
        expectSameAnnotations(streamed, *ref.annotated);
    }
}

TEST(StreamingTrace, ContextExposesStreamAndAnnotations)
{
    const auto source = makeStream(4096);
    const core::StreamingTrace streamed(source, annotationOptions());
    const auto ctx = streamed.context();
    EXPECT_EQ(ctx.buffer, nullptr);
    EXPECT_EQ(ctx.stream, &source);
    EXPECT_TRUE(ctx.hasTrace());
    EXPECT_EQ(ctx.size(), kInsts);
    EXPECT_EQ(ctx.misses, &streamed.misses());
    EXPECT_EQ(ctx.branches, &streamed.branches());
    EXPECT_NE(ctx.values, nullptr);
}

TEST(StreamingTrace, EpochEngineMatchesMaterialised)
{
    const Materialised ref;
    const auto source = makeStream(4096);
    const core::StreamingTrace streamed(source, annotationOptions());

    core::MlpConfig cfg = core::MlpConfig::defaultOoO();
    cfg.warmupInsts = kWarmup;
    const auto a = core::runMlp(cfg, ref.annotated->context());
    const auto b = core::runMlp(cfg, streamed.context());
    EXPECT_EQ(a.epochs, b.epochs);
    EXPECT_EQ(a.usefulAccesses, b.usefulAccesses);
    EXPECT_EQ(a.dmissAccesses, b.dmissAccesses);
    EXPECT_EQ(a.imissAccesses, b.imissAccesses);
    EXPECT_EQ(a.pmissAccesses, b.pmissAccesses);
    EXPECT_EQ(a.smissAccesses, b.smissAccesses);
    EXPECT_EQ(a.measuredInsts, b.measuredInsts);
}

TEST(StreamingTrace, InOrderModelMatchesMaterialised)
{
    const Materialised ref;
    const auto source = makeStream(4096);
    const core::StreamingTrace streamed(source, annotationOptions());

    core::MlpConfig cfg;
    cfg.mode = core::CoreMode::InOrderStallOnMiss;
    cfg.warmupInsts = kWarmup;
    const auto a = core::runMlp(cfg, ref.annotated->context());
    const auto b = core::runMlp(cfg, streamed.context());
    EXPECT_EQ(a.epochs, b.epochs);
    EXPECT_EQ(a.usefulAccesses, b.usefulAccesses);
    EXPECT_EQ(a.measuredInsts, b.measuredInsts);
}

TEST(StreamingTrace, CycleSimMatchesMaterialised)
{
    const Materialised ref;
    const auto source = makeStream(4096);
    const core::StreamingTrace streamed(source, annotationOptions());

    cyclesim::CycleSimConfig cfg;
    cfg.warmupInsts = kWarmup;
    cfg.validate().orFatal();
    const auto a = cyclesim::CycleSim(cfg, ref.annotated->context()).run();
    const auto b = cyclesim::CycleSim(cfg, streamed.context()).run();
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.offChipAccesses, b.offChipAccesses);
    EXPECT_EQ(a.mlpCycles, b.mlpCycles);
    EXPECT_EQ(a.mlpSum, b.mlpSum);
}

TEST(StreamingTrace, BackToBackEngineRunsReuseTheSameSource)
{
    // Pass 2 opens one fresh stream per engine run; many runs over one
    // source must all see the identical trace.
    const auto source = makeStream(4096);
    const core::StreamingTrace streamed(source, annotationOptions());
    core::MlpConfig cfg = core::MlpConfig::defaultOoO();
    cfg.warmupInsts = kWarmup;
    const auto first = core::runMlp(cfg, streamed.context());
    const auto second = core::runMlp(cfg, streamed.context());
    EXPECT_EQ(first.epochs, second.epochs);
    EXPECT_EQ(first.usefulAccesses, second.usefulAccesses);
}

namespace {

std::vector<core::MlpConfig>
sampleConfigs()
{
    std::vector<core::MlpConfig> configs;
    for (const unsigned window : {16u, 32u, 64u}) {
        core::MlpConfig cfg = core::MlpConfig::defaultOoO();
        cfg.warmupInsts = kWarmup;
        cfg.robSize = window;
        configs.push_back(cfg);
    }
    return configs;
}

void
expectSameResult(const core::MlpResult &a, const core::MlpResult &b)
{
    EXPECT_EQ(a.epochs, b.epochs);
    EXPECT_EQ(a.usefulAccesses, b.usefulAccesses);
    EXPECT_EQ(a.dmissAccesses, b.dmissAccesses);
    EXPECT_EQ(a.imissAccesses, b.imissAccesses);
    EXPECT_EQ(a.pmissAccesses, b.pmissAccesses);
    EXPECT_EQ(a.smissAccesses, b.smissAccesses);
    EXPECT_EQ(a.measuredInsts, b.measuredInsts);
}

std::vector<core::SharedCell>
cellsFor(const std::vector<core::MlpConfig> &configs,
         std::vector<std::optional<core::MlpResult>> &slots)
{
    slots.assign(configs.size(), std::nullopt);
    std::vector<core::SharedCell> cells;
    for (size_t i = 0; i < configs.size(); ++i) {
        const core::MlpConfig cfg = configs[i];
        auto *slot = &slots[i];
        cells.push_back({"cell " + std::to_string(i),
                         [cfg, slot](const core::WorkloadContext &ctx) {
                             slot->emplace(core::runMlp(cfg, ctx));
                         }});
    }
    return cells;
}

} // namespace

TEST(SharedStream, SharedCellsMatchIndependentEngineRuns)
{
    const auto source = makeStream(4096);
    const core::StreamingTrace streamed(source, annotationOptions());
    const auto configs = sampleConfigs();

    std::vector<core::MlpResult> independent;
    for (const core::MlpConfig &cfg : configs)
        independent.push_back(core::runMlp(cfg, streamed.context()));

    std::vector<std::optional<core::MlpResult>> slots;
    auto cells = cellsFor(configs, slots);
    core::runSharedCells(streamed.context(), cells);

    const size_t opens_before_shared = source.generatorsBuilt();
    for (size_t i = 0; i < configs.size(); ++i) {
        ASSERT_TRUE(slots[i].has_value()) << "cell " << i;
        expectSameResult(*slots[i], independent[i]);
    }
    // The shared wave rode one broadcast generation, so it cannot have
    // constructed more generators than the sequential runs already did.
    EXPECT_EQ(source.generatorsBuilt(), opens_before_shared);
}

TEST(SharedStream, FusedAnnotateAndCellsMatchesTwoPassPipeline)
{
    const Materialised ref;
    const auto source = makeStream(4096);
    const auto configs = sampleConfigs();

    std::vector<core::MlpResult> classic;
    {
        const core::StreamingTrace streamed(source, annotationOptions());
        for (const core::MlpConfig &cfg : configs)
            classic.push_back(core::runMlp(cfg, streamed.context()));
    }

    std::vector<std::optional<core::MlpResult>> slots;
    auto cells = cellsFor(configs, slots);
    core::FusedRunReport report;
    auto fused = core::runFusedAnnotateAndCells(
        source, annotationOptions(), cells, core::SharedRunOptions{},
        &report);
    ASSERT_TRUE(fused.ok()) << fused.status().toString();
    EXPECT_EQ(report.fusedCells, configs.size());

    expectSameAnnotations(*fused, *ref.annotated);
    for (size_t i = 0; i < configs.size(); ++i) {
        ASSERT_TRUE(slots[i].has_value()) << "cell " << i;
        expectSameResult(*slots[i], classic[i]);
    }
}

TEST(SharedStream, FusedHazardFallbackStaysBitIdentical)
{
    // specweb99 emits software prefetches whose demand touches credit
    // them retroactively; a zero-chunk lookahead over tiny chunks pins
    // the read floor right behind the annotate position, so some
    // credit lands below the floor, defers, and triggers the re-run
    // fallback. Results must not change; the report records the path.
    const std::string name = "specweb99";
    const trace::GeneratedChunkSource source(
        name, kInsts,
        [name] {
            return workloads::makeWorkload(name,
                                           workloads::workloadSeed(name));
        },
        613);
    const auto configs = sampleConfigs();

    std::vector<core::MlpResult> classic;
    {
        const core::StreamingTrace streamed(source, annotationOptions());
        for (const core::MlpConfig &cfg : configs)
            classic.push_back(core::runMlp(cfg, streamed.context()));
    }

    std::vector<std::optional<core::MlpResult>> slots;
    auto cells = cellsFor(configs, slots);
    core::SharedRunOptions options;
    options.lookaheadChunks = 0;
    core::FusedRunReport report;
    auto fused = core::runFusedAnnotateAndCells(
        source, annotationOptions(), cells, options, &report);
    ASSERT_TRUE(fused.ok()) << fused.status().toString();
    EXPECT_TRUE(report.hazardFallback);

    auto generator =
        workloads::makeWorkload(name, workloads::workloadSeed(name));
    trace::TraceBuffer buffer(name);
    buffer.fill(*generator, kInsts);
    const core::AnnotatedTrace reference(buffer, annotationOptions());
    expectSameAnnotations(*fused, reference);
    for (size_t i = 0; i < configs.size(); ++i) {
        ASSERT_TRUE(slots[i].has_value()) << "cell " << i;
        expectSameResult(*slots[i], classic[i]);
    }
}

TEST(SharedStream, FusedMoreCellsThanWaveStillAllRun)
{
    const auto source = makeStream(4096);
    const auto configs = sampleConfigs();

    std::vector<core::MlpResult> classic;
    {
        const core::StreamingTrace streamed(source, annotationOptions());
        for (const core::MlpConfig &cfg : configs)
            classic.push_back(core::runMlp(cfg, streamed.context()));
    }

    std::vector<std::optional<core::MlpResult>> slots;
    auto cells = cellsFor(configs, slots);
    core::SharedRunOptions options;
    options.maxConcurrent = 2; // 3 cells: 2 fused + 1 shared afterwards
    core::FusedRunReport report;
    auto fused = core::runFusedAnnotateAndCells(
        source, annotationOptions(), cells, options, &report);
    ASSERT_TRUE(fused.ok()) << fused.status().toString();
    EXPECT_EQ(report.fusedCells, 2u);
    for (size_t i = 0; i < configs.size(); ++i) {
        ASSERT_TRUE(slots[i].has_value()) << "cell " << i;
        expectSameResult(*slots[i], classic[i]);
    }
}

} // namespace mlpsim::test
