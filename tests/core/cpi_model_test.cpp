/** @file The Section 2.2 CPI performance model. */
#include <gtest/gtest.h>

#include "core/cpi_model.hh"

namespace mlpsim::test {

using namespace mlpsim::core;

TEST(CpiModel, PaperWorkedExample)
{
    // Figure 1's example: Cycles_perf = 200, 3 misses of 200 cycles,
    // Overlap_CM = 0.2, MLP = 1.463 -> 570 total cycles. Expressed per
    // "instruction" by treating the program as one unit.
    CpiModelParams params;
    params.cpiPerf = 200.0;
    params.overlapCM = 0.2;
    params.missRatePerInst = 3.0;
    params.missPenalty = 200.0;
    params.mlp = 1.463;
    EXPECT_NEAR(estimateCpi(params), 570.0, 1.0);
}

TEST(CpiModel, ComponentsSumToTotal)
{
    CpiModelParams params{1.5, 0.1, 0.01, 400.0, 1.3};
    EXPECT_DOUBLE_EQ(estimateCpi(params),
                     cpiOnChip(params) + cpiOffChip(params));
}

TEST(CpiModel, DoublingMlpHalvesOffChip)
{
    CpiModelParams params{1.5, 0.0, 0.01, 400.0, 1.0};
    const double off1 = cpiOffChip(params);
    params.mlp = 2.0;
    EXPECT_DOUBLE_EQ(cpiOffChip(params), off1 / 2.0);
}

TEST(CpiModel, ZeroMissRateLeavesOnChipOnly)
{
    CpiModelParams params{1.2, 0.0, 0.0, 1000.0, 1.0};
    EXPECT_DOUBLE_EQ(estimateCpi(params), 1.2);
}

TEST(CpiModel, OverlapReducesOnChipComponent)
{
    CpiModelParams params{2.0, 0.25, 0.0, 0.0, 1.0};
    EXPECT_DOUBLE_EQ(cpiOnChip(params), 1.5);
}

TEST(CpiModel, SolveOverlapRoundTrips)
{
    CpiModelParams params{1.47, 0.18, 0.0084, 1000.0, 1.38};
    const double cpi = estimateCpi(params);
    const double solved = solveOverlapCM(cpi, params.cpiPerf,
                                         params.missRatePerInst,
                                         params.missPenalty, params.mlp);
    EXPECT_NEAR(solved, 0.18, 1e-12);
}

TEST(CpiModel, Table1DatabaseRowIsSelfConsistent)
{
    // Paper Table 1, database at 1000 cycles: CPI 7.28, CPI_on 1.47,
    // miss rate 0.84/100, MLP 1.38 -> off-chip = 6.09... the published
    // row rounds; check the identity within rounding slack.
    CpiModelParams params{1.47 / (1.0 - 0.18), 0.18, 0.0084, 1000.0,
                          1.38};
    EXPECT_NEAR(estimateCpi(params), 7.28, 0.35);
}

TEST(CpiModel, SpeedupPercent)
{
    EXPECT_DOUBLE_EQ(speedupPercent(2.0, 1.0), 100.0);
    EXPECT_DOUBLE_EQ(speedupPercent(1.0, 1.0), 0.0);
    EXPECT_NEAR(speedupPercent(7.28, 4.55), 60.0, 0.1);
}

TEST(CpiModelDeath, RejectsNonPositiveMlp)
{
    CpiModelParams params{1.0, 0.0, 0.01, 100.0, 0.0};
    EXPECT_DEATH({ const double v = cpiOffChip(params); (void)v; },
                 "MLP");
}

TEST(CpiModelDeath, SolveRejectsZeroCpiPerf)
{
    EXPECT_DEATH(
        {
            const double v = solveOverlapCM(2.0, 0.0, 0.01, 100.0, 1.2);
            (void)v;
        },
        "CPI_perf");
}

} // namespace mlpsim::test
