/** @file Epoch-engine semantics beyond the paper's worked examples:
 *  window structures, fetch buffer, termination bookkeeping, memory
 *  dependences, the epoch horizon. */
#include <gtest/gtest.h>

#include "tests/support/test_harness.hh"

namespace mlpsim::test {

using core::Inhibitor;
using core::IssueConfig;
using core::MlpConfig;
using trace::makeAlu;
using trace::makeBranch;
using trace::makeLoad;
using trace::makePrefetch;
using trace::makeSerializing;
using trace::makeStore;
using trace::noReg;

namespace {

constexpr uint8_t r1 = 1, r2 = 2, r3 = 3, r4 = 4, r5 = 5, r6 = 6;

/** N independent missing loads with @p pad ALU ops in between. */
ScriptedTrace
independentMisses(unsigned n, unsigned pad = 0)
{
    ScriptedTrace s;
    for (unsigned i = 0; i < n; ++i) {
        s.add(makeLoad(0x100 + 64 * i, uint8_t(10 + (i % 40)),
                       0xA000 + 0x1000ull * i, noReg),
              Miss::Data);
        for (unsigned p = 0; p < pad; ++p)
            s.add(makeAlu(0x104 + 64 * i + 4 * p, r1, r1));
    }
    return s;
}

} // namespace

TEST(EpochEngine, AllIndependentMissesOverlapInLargeWindow)
{
    auto s = independentMisses(10);
    const auto r = s.run(MlpConfig::sized(64, IssueConfig::C));
    EXPECT_EQ(r.epochs, 1u);
    EXPECT_EQ(r.usefulAccesses, 10u);
    EXPECT_DOUBLE_EQ(r.mlp(), 10.0);
}

TEST(EpochEngine, WindowSizeCapsOverlap)
{
    auto s = independentMisses(16, 3); // 4 insts per miss
    // ROB of 8 holds 2 misses (and their pads) per epoch.
    const auto r = s.run(MlpConfig::sized(8, IssueConfig::C));
    EXPECT_EQ(r.usefulAccesses, 16u);
    EXPECT_NEAR(r.mlp(), 2.0, 0.3);
    EXPECT_GT(r.inhibitors[Inhibitor::Maxwin], 0u);
}

TEST(EpochEngine, MlpGrowsMonotonicallyWithWindow)
{
    auto s = independentMisses(64, 3);
    double prev = 0.0;
    for (unsigned w : {4u, 8u, 16u, 32u, 64u, 128u}) {
        const double mlp = s.run(MlpConfig::sized(w, IssueConfig::C)).mlp();
        EXPECT_GE(mlp, prev - 1e-9) << "window " << w;
        prev = mlp;
    }
}

TEST(EpochEngine, DependentChainNeverOverlaps)
{
    ScriptedTrace s;
    for (unsigned i = 0; i < 8; ++i)
        s.add(makeLoad(0x100 + 4 * i, r1, 0xA000 + 0x1000ull * i, r1),
              Miss::Data);
    const auto r = s.run(MlpConfig::infinite());
    EXPECT_EQ(r.epochs, 8u);
    EXPECT_DOUBLE_EQ(r.mlp(), 1.0);
}

TEST(EpochEngine, RobLimitsEvenWhenIssueWindowIsLarge)
{
    auto s = independentMisses(16, 3);
    MlpConfig cfg = MlpConfig::sized(8, IssueConfig::C);
    cfg.issueWindowSize = 256; // ROB (8) must still bind
    const auto r = s.run(cfg);
    EXPECT_NEAR(r.mlp(), 2.0, 0.3);
}

TEST(EpochEngine, IssueWindowLimitsWhenRobIsLarge)
{
    // Dependent instructions clog the issue window: each miss is
    // followed by 3 dependent ALUs that cannot issue until the miss
    // returns.
    ScriptedTrace s;
    for (unsigned i = 0; i < 12; ++i) {
        const uint8_t reg = uint8_t(10 + i);
        s.add(makeLoad(0x100 + 16 * i, reg, 0xA000 + 0x1000ull * i,
                       noReg),
              Miss::Data);
        for (int p = 0; p < 3; ++p)
            s.add(makeAlu(0x104 + 16 * i + 4u * unsigned(p), reg, reg));
    }
    MlpConfig small = MlpConfig::sized(8, IssueConfig::C);
    small.robSize = 2048; // only the 8-entry issue window binds
    MlpConfig large = small;
    large.issueWindowSize = 2048;
    const double bound = s.run(small).mlp();
    const double free = s.run(large).mlp();
    // The issue window limits overlap well below the unbounded case
    // but still above the fully-coupled tiny machine.
    EXPECT_LT(bound, 0.5 * free);
    EXPECT_GT(bound, 1.5);
}

TEST(EpochEngine, DecoupledRobBeatsCoupled)
{
    // Dependents clog the ROB in the coupled machine; enlarging only
    // the ROB lets more misses in (paper Section 5.3.2).
    ScriptedTrace s;
    for (unsigned i = 0; i < 32; ++i) {
        const uint8_t reg = uint8_t(10 + (i % 40));
        s.add(makeLoad(0x100 + 32 * i, reg, 0xA000 + 0x1000ull * i,
                       noReg),
              Miss::Data);
        for (int p = 0; p < 5; ++p)
            s.add(makeAlu(0x104 + 32 * i + 4u * unsigned(p), reg, reg));
    }
    MlpConfig coupled = MlpConfig::sized(12, IssueConfig::C);
    MlpConfig decoupled = coupled;
    decoupled.robSize = 96;
    EXPECT_GT(s.run(decoupled).mlp(), s.run(coupled).mlp() + 0.5);
}

TEST(EpochEngine, FetchBufferExtendsImissOverlap)
{
    // A data miss, then an instruction miss shortly after: the fetch
    // buffer lets the I-side access overlap the data miss even when
    // the ROB is full.
    ScriptedTrace s;
    s.add(makeLoad(0x100, r1, 0xA000, noReg), Miss::Data);
    s.add(makeAlu(0x104, r2, r2));
    s.add(makeAlu(0x108, r2, r2));
    s.add(makeAlu(0x10c, r2, r2)); // ROB(4) is now full
    s.add(makeAlu(0x140, r2, r2), Miss::Fetch);
    MlpConfig cfg = MlpConfig::sized(4, IssueConfig::C);
    cfg.fetchBufferSize = 8;
    const auto r = cfg.fetchBufferSize ? s.run(cfg) : core::MlpResult{};
    EXPECT_EQ(r.usefulAccesses, 2u);
    EXPECT_EQ(r.epochs, 1u); // the Imiss overlapped the Dmiss
    EXPECT_EQ(r.inhibitors[Inhibitor::ImissEnd], 1u);
}

TEST(EpochEngine, ImissStartEpochHasOneAccess)
{
    ScriptedTrace s;
    s.add(makeAlu(0x100, r1), Miss::Fetch);
    s.add(makeLoad(0x104, r2, 0xA000, noReg), Miss::Data);
    const auto r = s.run(MlpConfig::sized(64, IssueConfig::C));
    // Epoch 1: the instruction fetch alone (fetch is blocking);
    // epoch 2: the load.
    EXPECT_EQ(r.epochs, 2u);
    EXPECT_EQ(r.inhibitors[Inhibitor::ImissStart], 1u);
    EXPECT_EQ(r.accessesPerEpoch.buckets().at(1), 2u);
}

TEST(EpochEngine, ResolvableMispredictDoesNotTerminate)
{
    ScriptedTrace s;
    s.add(makeLoad(0x100, r1, 0xA000, noReg), Miss::Data);
    // Mispredicted branch whose operand is on-chip-ready: resolves
    // within the epoch at no modelled cost.
    s.add(makeAlu(0x104, r2));
    s.add(makeBranch(0x108, 0x200, true, r2), Miss::None, true);
    s.add(makeLoad(0x10c, r3, 0xB000, noReg), Miss::Data);
    const auto r = s.run(MlpConfig::sized(64, IssueConfig::C));
    EXPECT_EQ(r.epochs, 1u);
    EXPECT_DOUBLE_EQ(r.mlp(), 2.0);
    EXPECT_EQ(r.inhibitors[Inhibitor::MispredBr], 0u);
}

TEST(EpochEngine, SerializingAfterQuiescenceIsFree)
{
    ScriptedTrace s;
    s.add(makeAlu(0x100, r1));
    s.add(makeSerializing(0x104)); // nothing outstanding: free
    s.add(makeLoad(0x108, r2, 0xA000, noReg), Miss::Data);
    s.add(makeLoad(0x10c, r3, 0xB000, noReg), Miss::Data);
    const auto r = s.run(MlpConfig::sized(64, IssueConfig::C));
    EXPECT_EQ(r.epochs, 1u);
    EXPECT_DOUBLE_EQ(r.mlp(), 2.0);
}

TEST(EpochEngine, InstructionsBehindSerializerWaitForDrain)
{
    ScriptedTrace s;
    s.add(makeLoad(0x100, r1, 0xA000, noReg), Miss::Data);
    s.add(makeSerializing(0x104));
    s.add(makeLoad(0x108, r2, 0xB000, noReg), Miss::Data);
    s.add(makeLoad(0x10c, r3, 0xC000, noReg), Miss::Data);
    const auto r = s.run(MlpConfig::sized(64, IssueConfig::C));
    EXPECT_EQ(r.epochs, 2u);
    EXPECT_EQ(r.inhibitors[Inhibitor::Serialize], 1u);
    // After the drain, the two loads behind the membar overlap.
    EXPECT_EQ(r.accessesPerEpoch.buckets().at(2), 1u);
}

TEST(EpochEngine, AtomicWithMissingLineIsAnAccess)
{
    ScriptedTrace s;
    s.add(makeSerializing(0x100, 0xA000), Miss::Data);
    s.add(makeLoad(0x104, r2, 0xB000, noReg), Miss::Data);
    const auto r = s.run(MlpConfig::sized(64, IssueConfig::C));
    EXPECT_EQ(r.usefulAccesses, 2u);
    // The atomic serializes: the load cannot overlap it.
    EXPECT_EQ(r.epochs, 2u);
}

TEST(EpochEngine, StoreForwardingCreatesMemoryDependence)
{
    ScriptedTrace s;
    s.add(makeLoad(0x100, r1, 0xA000, noReg), Miss::Data);
    s.add(makeStore(0x104, 0xB000, /*data=*/r1, /*addr=*/noReg));
    // This load reads the stored location: it must wait for the store
    // data (which waits for the miss), even under config C.
    s.add(makeLoad(0x108, r2, 0xB000, noReg));
    s.add(makeLoad(0x10c, r3, 0xC000, r2), Miss::Data);
    const auto r = s.run(MlpConfig::sized(64, IssueConfig::C));
    EXPECT_EQ(r.epochs, 2u);
    EXPECT_DOUBLE_EQ(r.mlp(), 1.0);
}

TEST(EpochEngine, DepStoreClassification)
{
    // Config B: a store with an unresolved (miss-dependent) address
    // blocks a ready load -> the epoch is charged to "Dep store".
    ScriptedTrace s;
    s.add(makeLoad(0x100, r1, 0xA000, noReg), Miss::Data);
    s.add(makeAlu(0x104, r2, r1));
    s.add(makeStore(0x108, 0xB000, /*data=*/r3, /*addr=*/r2));
    s.add(makeLoad(0x10c, r4, 0xC000, noReg), Miss::Data);
    const auto rb = s.run(MlpConfig::sized(64, IssueConfig::B));
    EXPECT_EQ(rb.epochs, 2u);
    EXPECT_EQ(rb.inhibitors[Inhibitor::DepStore], 1u);

    const auto rc = s.run(MlpConfig::sized(64, IssueConfig::C));
    EXPECT_EQ(rc.epochs, 1u);
    EXPECT_DOUBLE_EQ(rc.mlp(), 2.0);
}

TEST(EpochEngine, MissingLoadClassificationUnderConfigA)
{
    ScriptedTrace s;
    s.add(makeLoad(0x100, r1, 0xA000, noReg), Miss::Data);
    s.add(makeLoad(0x104, r2, 0xB000, r1)); // dependent load (hits)
    s.add(makeLoad(0x108, r3, 0xC000, noReg), Miss::Data);
    const auto ra = s.run(MlpConfig::sized(64, IssueConfig::A));
    EXPECT_EQ(ra.epochs, 2u);
    EXPECT_EQ(ra.inhibitors[Inhibitor::MissingLoad], 1u);

    // Config B lets loads pass loads: both misses overlap.
    const auto rbb = s.run(MlpConfig::sized(64, IssueConfig::B));
    EXPECT_EQ(rbb.epochs, 1u);
}

TEST(EpochEngine, PrefetchesBypassConfigAOrdering)
{
    ScriptedTrace s;
    s.add(makeLoad(0x100, r1, 0xA000, noReg), Miss::Data);
    s.add(makeLoad(0x104, r2, 0xB000, r1)); // blocked dependent load
    s.add(makePrefetch(0x108, 0xC000), Miss::UsefulPrefetch);
    const auto r = s.run(MlpConfig::sized(64, IssueConfig::A));
    // The prefetch is a hint: it overlaps the miss despite in-order
    // load issue.
    EXPECT_EQ(r.epochs, 1u);
    EXPECT_EQ(r.usefulAccesses, 2u);
}

TEST(EpochEngine, EpochHorizonBoundsNonStallingEpochs)
{
    // Useful prefetches never stall, so only the horizon ends the
    // epoch.
    ScriptedTrace s;
    for (unsigned i = 0; i < 64; ++i) {
        s.add(makePrefetch(0x100 + 4 * i, 0xA000 + 0x1000ull * i),
              Miss::UsefulPrefetch);
        s.add(makeAlu(0x100 + 4 * i + 2, r1, r1));
    }
    MlpConfig cfg = MlpConfig::sized(16, IssueConfig::C);
    cfg.epochInstHorizon = 16;
    // The horizon stops *fetch*; instructions already in the fetch
    // buffer and window still execute, so each epoch spans roughly
    // horizon + fetchBuffer + window instructions.
    const auto r = s.run(cfg);
    EXPECT_EQ(r.usefulAccesses, 64u);
    EXPECT_GE(r.epochs, 3u);
    EXPECT_GT(r.inhibitors[Inhibitor::TriggerDone], 0u);

    cfg.epochInstHorizon = 4096; // one giant epoch
    const auto r2 = s.run(cfg);
    EXPECT_EQ(r2.epochs, 1u);
}

TEST(EpochEngine, WarmupEpochsAreExcluded)
{
    auto s = independentMisses(10, 0);
    MlpConfig cfg = MlpConfig::sized(4, IssueConfig::C);
    const auto all = s.run(cfg);
    cfg.warmupInsts = 5;
    const auto tail = s.run(cfg);
    EXPECT_LT(tail.usefulAccesses, all.usefulAccesses);
    EXPECT_LT(tail.epochs, all.epochs);
    EXPECT_EQ(tail.measuredInsts, 5u);
}

TEST(EpochEngine, AccessConservation)
{
    auto s = independentMisses(20, 2);
    for (auto ic : {IssueConfig::A, IssueConfig::C, IssueConfig::E}) {
        for (unsigned w : {4u, 16u, 64u}) {
            const auto r = s.run(MlpConfig::sized(w, ic));
            EXPECT_EQ(r.usefulAccesses, 20u)
                << core::issueConfigName(ic) << w;
        }
    }
}

TEST(EpochEngine, InhibitorsSumToEpochs)
{
    auto s = independentMisses(20, 2);
    const auto r = s.run(MlpConfig::sized(8, IssueConfig::C));
    EXPECT_EQ(r.inhibitors.total(), r.epochs);
}

TEST(EpochEngine, DeterministicAcrossRuns)
{
    auto s = independentMisses(30, 1);
    const auto a = s.run(MlpConfig::sized(16, IssueConfig::C));
    const auto b = s.run(MlpConfig::sized(16, IssueConfig::C));
    EXPECT_EQ(a.epochs, b.epochs);
    EXPECT_EQ(a.usefulAccesses, b.usefulAccesses);
    EXPECT_DOUBLE_EQ(a.mlp(), b.mlp());
}

TEST(EpochEngineDeath, RejectsInOrderModes)
{
    ScriptedTrace s;
    s.add(makeAlu(0x100, r1));
    const auto ctx = s.context();
    core::MlpConfig cfg;
    cfg.mode = core::CoreMode::InOrderStallOnMiss;
    EXPECT_DEATH({ core::EpochEngine engine(cfg, ctx); }, "OoO");
}

TEST(EpochEngineDeath, RejectsZeroSizedWindows)
{
    ScriptedTrace s;
    s.add(makeAlu(0x100, r1));
    const auto ctx = s.context();
    core::MlpConfig cfg;
    cfg.robSize = 0;
    EXPECT_DEATH({ core::EpochEngine engine(cfg, ctx); }, "non-empty");
}

} // namespace mlpsim::test
