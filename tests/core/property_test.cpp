/** @file Cross-configuration properties of the epoch model, swept over
 *  the three commercial workloads (parameterised): monotonicity,
 *  config ordering, conservation, runahead/INF equivalence, limit-
 *  study invariants. */
#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <memory>

#include "core/mlpsim.hh"
#include "workloads/factory.hh"

namespace mlpsim::test {

using core::Inhibitor;
using core::IssueConfig;
using core::MlpConfig;

namespace {

constexpr uint64_t traceInsts = 150'000;

struct SharedWorkload
{
    std::unique_ptr<trace::TraceBuffer> buffer;
    std::unique_ptr<core::AnnotatedTrace> annotated;
    std::unique_ptr<core::AnnotatedTrace> perfectBp;
    std::unique_ptr<core::AnnotatedTrace> perfectI;
};

const SharedWorkload &
shared(const std::string &name)
{
    static std::map<std::string, SharedWorkload> cache;
    auto it = cache.find(name);
    if (it == cache.end()) {
        SharedWorkload w;
        w.buffer = std::make_unique<trace::TraceBuffer>(name);
        auto generator = workloads::makeWorkload(name);
        w.buffer->fill(*generator, traceInsts);
        core::AnnotationOptions opts;
        w.annotated =
            std::make_unique<core::AnnotatedTrace>(*w.buffer, opts);
        core::AnnotationOptions bp_opts;
        bp_opts.branch.perfect = true;
        w.perfectBp =
            std::make_unique<core::AnnotatedTrace>(*w.buffer, bp_opts);
        core::AnnotationOptions i_opts;
        i_opts.hierarchy.perfectInstFetch = true;
        w.perfectI =
            std::make_unique<core::AnnotatedTrace>(*w.buffer, i_opts);
        it = cache.emplace(name, std::move(w)).first;
    }
    return it->second;
}

double
mlpOf(const std::string &name, const MlpConfig &cfg)
{
    return core::runMlp(cfg, shared(name).annotated->context()).mlp();
}

} // namespace

class WorkloadProperty : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadProperty, MlpIsAtLeastOne)
{
    for (auto ic : {IssueConfig::A, IssueConfig::C, IssueConfig::E}) {
        EXPECT_GE(mlpOf(GetParam(), MlpConfig::sized(64, ic)), 1.0);
    }
}

TEST_P(WorkloadProperty, MlpIsMonotoneInWindowSize)
{
    double prev = 0.0;
    for (unsigned w : {16u, 32u, 64u, 128u, 256u, 512u}) {
        const double m =
            mlpOf(GetParam(), MlpConfig::sized(w, IssueConfig::C));
        EXPECT_GE(m, prev - 0.02) << "window " << w;
        prev = m;
    }
}

TEST_P(WorkloadProperty, IssueConfigsAreOrdered)
{
    for (unsigned w : {32u, 64u, 128u, 256u}) {
        double prev = 0.0;
        for (auto ic : {IssueConfig::A, IssueConfig::B, IssueConfig::C,
                        IssueConfig::D, IssueConfig::E}) {
            const double m = mlpOf(GetParam(), MlpConfig::sized(w, ic));
            EXPECT_GE(m, prev - 0.02)
                << "window " << w << " config "
                << core::issueConfigName(ic);
            prev = m;
        }
    }
}

TEST_P(WorkloadProperty, EnlargingRobNeverHurts)
{
    MlpConfig cfg = MlpConfig::sized(64, IssueConfig::D);
    double prev = 0.0;
    for (unsigned mult : {1u, 2u, 4u, 8u, 16u}) {
        cfg.robSize = 64 * mult;
        const double m = mlpOf(GetParam(), cfg);
        EXPECT_GE(m, prev - 0.02) << "rob " << cfg.robSize;
        prev = m;
    }
}

TEST_P(WorkloadProperty, RunaheadMatchesInfiniteWindow)
{
    const double rae = mlpOf(GetParam(), MlpConfig::runahead());
    const double inf = mlpOf(GetParam(), MlpConfig::infinite());
    EXPECT_NEAR(rae, inf, 0.05 * inf);
}

TEST_P(WorkloadProperty, RunaheadBeatsItsBaseline)
{
    const double rae = mlpOf(GetParam(), MlpConfig::runahead());
    const double base =
        mlpOf(GetParam(), MlpConfig::sized(64, IssueConfig::D));
    EXPECT_GE(rae, base);
}

TEST_P(WorkloadProperty, InOrderOrdering)
{
    MlpConfig som;
    som.mode = core::CoreMode::InOrderStallOnMiss;
    MlpConfig sou;
    sou.mode = core::CoreMode::InOrderStallOnUse;
    const double m_som = mlpOf(GetParam(), som);
    const double m_sou = mlpOf(GetParam(), sou);
    const double m_ooo = mlpOf(GetParam(), MlpConfig::defaultOoO());
    EXPECT_GE(m_som, 1.0);
    EXPECT_GE(m_sou, m_som - 0.01);
    EXPECT_GE(m_ooo, m_sou - 0.01);
}

TEST_P(WorkloadProperty, AccessesAreConserved)
{
    // With no warm-up exclusion, every useful access annotated must be
    // counted in exactly one epoch, for any machine.
    const auto &w = shared(GetParam());
    const uint64_t expected = w.annotated->misses().usefulAccesses();
    for (auto cfg :
         {MlpConfig::sized(16, IssueConfig::A),
          MlpConfig::sized(64, IssueConfig::C), MlpConfig::infinite(),
          MlpConfig::runahead()}) {
        const auto r = core::runMlp(cfg, w.annotated->context());
        EXPECT_EQ(r.usefulAccesses, expected) << cfg.label();
    }
}

TEST_P(WorkloadProperty, InhibitorsSumToEpochs)
{
    const auto &w = shared(GetParam());
    for (auto cfg : {MlpConfig::sized(64, IssueConfig::C),
                     MlpConfig::runahead()}) {
        const auto r = core::runMlp(cfg, w.annotated->context());
        EXPECT_EQ(r.inhibitors.total(), r.epochs) << cfg.label();
    }
}

TEST_P(WorkloadProperty, DeterministicAcrossRuns)
{
    const auto &w = shared(GetParam());
    const auto a = core::runMlp(MlpConfig::defaultOoO(),
                                w.annotated->context());
    const auto b = core::runMlp(MlpConfig::defaultOoO(),
                                w.annotated->context());
    EXPECT_EQ(a.epochs, b.epochs);
    EXPECT_EQ(a.usefulAccesses, b.usefulAccesses);
}

TEST_P(WorkloadProperty, PerfectBranchPredictionRemovesMispredEpochs)
{
    const auto &w = shared(GetParam());
    const auto r = core::runMlp(MlpConfig::sized(64, IssueConfig::C),
                                w.perfectBp->context());
    EXPECT_EQ(r.inhibitors[Inhibitor::MispredBr], 0u);
    const auto base = core::runMlp(MlpConfig::sized(64, IssueConfig::C),
                                   w.annotated->context());
    EXPECT_GE(r.mlp(), base.mlp() - 0.02);
}

TEST_P(WorkloadProperty, PerfectInstFetchRemovesImissEpochs)
{
    const auto &w = shared(GetParam());
    const auto r = core::runMlp(MlpConfig::sized(64, IssueConfig::C),
                                w.perfectI->context());
    EXPECT_EQ(r.inhibitors[Inhibitor::ImissStart], 0u);
    EXPECT_EQ(r.inhibitors[Inhibitor::ImissEnd], 0u);
    EXPECT_EQ(r.imissAccesses, 0u);
}

TEST_P(WorkloadProperty, ValuePredictionNeverHurts)
{
    const auto &w = shared(GetParam());
    for (auto base : {MlpConfig::sized(64, IssueConfig::D),
                      MlpConfig::runahead()}) {
        MlpConfig vp = base;
        vp.valuePrediction = true;
        const double without =
            core::runMlp(base, w.annotated->context()).mlp();
        const double with =
            core::runMlp(vp, w.annotated->context()).mlp();
        EXPECT_GE(with, without - 0.02) << base.label();
    }
}

TEST_P(WorkloadProperty, LargerHorizonNeverLowersMlp)
{
    MlpConfig cfg = MlpConfig::defaultOoO();
    double prev = 0.0;
    for (unsigned h : {256u, 1024u, 2048u, 8192u}) {
        cfg.epochInstHorizon = h;
        const double m = mlpOf(GetParam(), cfg);
        EXPECT_GE(m, prev - 0.02) << "horizon " << h;
        prev = m;
    }
}

TEST_P(WorkloadProperty, AccessBreakdownAddsUp)
{
    const auto &w = shared(GetParam());
    const auto r = core::runMlp(MlpConfig::defaultOoO(),
                                w.annotated->context());
    EXPECT_EQ(r.usefulAccesses,
              r.dmissAccesses + r.imissAccesses + r.pmissAccesses);
}

INSTANTIATE_TEST_SUITE_P(
    Commercial, WorkloadProperty,
    ::testing::Values("database", "specjbb2000", "specweb99"),
    [](const auto &info) {
        std::string n = info.param;
        for (auto &c : n)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return n;
    });

} // namespace mlpsim::test
