/**
 * @file
 * Metrics under parallelism: concurrent registry updates are race-free
 * (this file is also compiled into parallel_tests_tsan, so TSan checks
 * every load/store), and the JSON snapshot a bench sweep produces is
 * bit-identical between --jobs 1 and --jobs 8 — the determinism
 * contract the --metrics-out flag advertises.
 */
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "bench_common.hh"
#include "metrics/export.hh"
#include "metrics/registry.hh"

namespace mlpsim {
namespace {

using bench::BenchSetup;
using bench::PreparedWorkload;
using bench::Sweep;

TEST(MetricsConcurrency, ConcurrentUpdatesAreRaceFree)
{
    metrics::MetricRegistry reg;
    constexpr int threads = 4;
    constexpr uint64_t opsPerThread = 5'000;

    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
        workers.emplace_back([&reg, t] {
            for (uint64_t i = 0; i < opsPerThread; ++i) {
                reg.add("shared/count");
                reg.add("per_thread/count" + std::to_string(t));
                reg.observe("shared/stat", double(i));
                reg.observeKey("shared/hist", i % 16);
                reg.set("shared/gauge", double(t));
            }
        });
    }
    for (auto &worker : workers)
        worker.join();

    const auto snap = reg.snapshot();
    EXPECT_EQ(snap.at("shared/count").counter, threads * opsPerThread);
    EXPECT_EQ(snap.at("shared/stat").stat.count(), threads * opsPerThread);
    EXPECT_EQ(snap.at("shared/hist").hist.samples(),
              threads * opsPerThread);
    for (int t = 0; t < threads; ++t) {
        EXPECT_EQ(
            snap.at("per_thread/count" + std::to_string(t)).counter,
            opsPerThread);
    }
}

TEST(MetricsConcurrency, ConcurrentMergesLoseNothing)
{
    metrics::MetricRegistry target;
    constexpr int threads = 4;

    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
        workers.emplace_back([&target] {
            metrics::MetricRegistry local;
            local.add("merged/count", 10);
            local.observe("merged/stat", 1.0);
            target.merge(local);
        });
    }
    for (auto &worker : workers)
        worker.join();

    const auto snap = target.snapshot();
    EXPECT_EQ(snap.at("merged/count").counter, 10u * threads);
    EXPECT_EQ(snap.at("merged/stat").stat.count(), unsigned(threads));
}

/** Small budgets; mirrors tests/parallel/determinism_test.cpp. */
BenchSetup
smallSetup(unsigned jobs)
{
    BenchSetup setup;
    setup.warmupInsts = 10'000;
    setup.measureInsts = 40'000;
    setup.jobs = jobs;
    setup.annotation.warmupInsts = setup.warmupInsts;
    return setup;
}

/**
 * Run the full instrumented bench pipeline (prepareAll + an mlp/cycle
 * sweep) at @p jobs and return the canonical JSON snapshot text.
 */
std::string
sweepSnapshot(unsigned jobs)
{
    metrics::MetricRegistry::global().clear();

    char arg0[] = "metrics_determinism_test";
    char *argv[] = {arg0};
    Options opts(1, argv);
    const auto wls = bench::prepareAll(smallSetup(jobs), opts);

    Sweep sweep(smallSetup(jobs));
    for (const auto &wl : wls) {
        sweep.mlp(core::MlpConfig::sized(64, core::IssueConfig::C), wl);
        sweep.mlp(core::MlpConfig::runahead(), wl);
        cyclesim::CycleSimConfig cycle_cfg;
        sweep.cycleSim(cycle_cfg, wl);
    }
    sweep.run("metrics-determinism");

    metrics::JsonValue meta = metrics::JsonValue::object();
    meta.set("bench", "metrics-determinism");
    std::string text =
        metrics::toJson(metrics::MetricRegistry::global().snapshot(),
                        std::move(meta))
            .dump(2);
    metrics::MetricRegistry::global().clear();
    return text;
}

TEST(MetricsDeterminism, SweepSnapshotsBitIdenticalAcrossJobCounts)
{
    ASSERT_FALSE(metrics::enabled());
    metrics::setEnabled(true);
    metrics::installSweepIsolation();

    const std::string serial = sweepSnapshot(1);
    const std::string parallel = sweepSnapshot(8);
    metrics::setEnabled(false);

    // Something must actually have been collected...
    EXPECT_NE(serial.find("core/epoch_engine"), std::string::npos);
    EXPECT_NE(serial.find("workloads/"), std::string::npos);
    // ...and the serialised documents must match byte for byte.
    EXPECT_EQ(serial, parallel);
}

} // namespace
} // namespace mlpsim
