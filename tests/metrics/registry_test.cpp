/**
 * @file
 * MetricRegistry unit tests: kind bookkeeping, merge semantics, the
 * thread-local label/collector context, exporter output shape, and the
 * zero-cost-when-disabled contract.
 *
 * These tests use private MetricRegistry instances wherever possible;
 * the few that touch process state (enabled flag, label stack) restore
 * it before returning so test order never matters.
 */
#include <gtest/gtest.h>

#include <string>

#include "metrics/export.hh"
#include "metrics/registry.hh"

namespace mlpsim::metrics {
namespace {

TEST(MetricRegistry, RecordsEveryKind)
{
    MetricRegistry reg;
    reg.add("c");
    reg.add("c", 4);
    reg.set("g", 1.5);
    reg.set("g", 2.5);
    reg.observe("s", 1.0);
    reg.observe("s", 3.0);
    reg.observeKey("h", 7, 2);
    reg.observeKey("h", 9);
    reg.addTime("t", 0.25);

    const auto snap = reg.snapshot();
    ASSERT_EQ(snap.size(), 5u);
    EXPECT_EQ(snap.at("c").kind, MetricKind::Counter);
    EXPECT_EQ(snap.at("c").counter, 5u);
    EXPECT_EQ(snap.at("g").kind, MetricKind::Gauge);
    EXPECT_DOUBLE_EQ(snap.at("g").gauge, 2.5); // last write wins
    EXPECT_EQ(snap.at("s").kind, MetricKind::Stat);
    EXPECT_EQ(snap.at("s").stat.count(), 2u);
    EXPECT_DOUBLE_EQ(snap.at("s").stat.mean(), 2.0);
    EXPECT_EQ(snap.at("h").kind, MetricKind::Hist);
    EXPECT_EQ(snap.at("h").hist.samples(), 3u);
    EXPECT_EQ(snap.at("t").kind, MetricKind::Timer);
    EXPECT_DOUBLE_EQ(snap.at("t").stat.sum(), 0.25);

    EXPECT_FALSE(reg.empty());
    reg.clear();
    EXPECT_TRUE(reg.empty());
}

TEST(MetricRegistry, MergeFollowsPerKindSemantics)
{
    MetricRegistry a, b;
    a.add("counter", 3);
    b.add("counter", 4);
    a.set("gauge", 1.0);
    b.set("gauge", 9.0);
    a.observe("stat", 2.0);
    b.observe("stat", 4.0);
    a.observeKey("hist", 1);
    b.observeKey("hist", 5, 3);
    b.add("only_in_b", 2);

    a.merge(b);
    const auto snap = a.snapshot();
    EXPECT_EQ(snap.at("counter").counter, 7u); // counters sum
    // Gauges are last-write-wins; merge order is submission order, so
    // the later job's value survives, matching serial execution.
    EXPECT_DOUBLE_EQ(snap.at("gauge").gauge, 9.0);
    EXPECT_EQ(snap.at("stat").stat.count(), 2u);
    EXPECT_DOUBLE_EQ(snap.at("stat").stat.mean(), 3.0);
    EXPECT_EQ(snap.at("hist").hist.samples(), 4u);
    EXPECT_EQ(snap.at("only_in_b").counter, 2u);
}

TEST(MetricRegistry, KindMismatchIsFatal)
{
    MetricRegistry reg;
    reg.add("path");
    EXPECT_DEATH({ reg.set("path", 1.0); }, "registered as");

    Metric counter, gauge;
    counter.kind = MetricKind::Counter;
    gauge.kind = MetricKind::Gauge;
    EXPECT_DEATH({ counter.merge(gauge); }, "merging");
}

TEST(MetricLabels, ScopedLabelsComposeLeftToRight)
{
    EXPECT_EQ(scopedPath("metric"), "metric");
    {
        ScopedLabel outer("database");
        EXPECT_EQ(scopedPath("metric"), "database/metric");
        {
            ScopedLabel inner("64C");
            EXPECT_EQ(scopedPath("core/metric"),
                      "database/64C/core/metric");
        }
        EXPECT_EQ(scopedPath("metric"), "database/metric");
    }
    EXPECT_EQ(scopedPath("metric"), "metric");
}

TEST(MetricLabels, CollectorScopeRedirectsCur)
{
    EXPECT_EQ(&cur(), &MetricRegistry::global());
    MetricRegistry job;
    {
        CollectorScope scope(&job);
        EXPECT_EQ(&cur(), &job);
        cur().add("routed");
        MetricRegistry nested;
        {
            CollectorScope inner(&nested);
            EXPECT_EQ(&cur(), &nested);
        }
        EXPECT_EQ(&cur(), &job); // unwinds to the previous collector
    }
    EXPECT_EQ(&cur(), &MetricRegistry::global());
    EXPECT_EQ(job.snapshot().at("routed").counter, 1u);
}

TEST(MetricExport, SnapshotJsonShapeAndTimerExclusion)
{
    MetricRegistry reg;
    reg.add("alpha/count", 3);
    reg.set("alpha/value", 0.5);
    reg.observe("beta/stat", 2.0);
    reg.observeKey("beta/hist", 4, 2);
    reg.addTime("beta/wall_s", 0.125);

    JsonValue meta = JsonValue::object();
    meta.set("bench", "unit");
    const JsonValue doc = toJson(reg.snapshot(), std::move(meta));

    ASSERT_NE(doc.find("schema"), nullptr);
    EXPECT_EQ(doc.find("schema")->string(), snapshotSchema);
    EXPECT_EQ(doc.find("meta")->find("bench")->string(), "unit");

    const JsonValue &metrics_obj = *doc.find("metrics");
    ASSERT_NE(metrics_obj.find("alpha/count"), nullptr);
    EXPECT_EQ(metrics_obj.find("alpha/count")->find("kind")->string(),
              "counter");
    EXPECT_EQ(metrics_obj.find("alpha/count")->find("value")->uinteger(),
              3u);
    EXPECT_EQ(metrics_obj.find("alpha/value")->find("kind")->string(),
              "gauge");
    EXPECT_EQ(metrics_obj.find("beta/stat")->find("kind")->string(),
              "stat");
    EXPECT_EQ(metrics_obj.find("beta/hist")->find("kind")->string(),
              "histogram");
    // Timers are wall-clock noise: excluded unless explicitly asked
    // for, so the default document stays bit-identical run to run.
    EXPECT_EQ(metrics_obj.find("beta/wall_s"), nullptr);

    SnapshotOptions with_timers;
    with_timers.includeTimers = true;
    const JsonValue full =
        toJson(reg.snapshot(), JsonValue::object(), with_timers);
    ASSERT_NE(full.find("metrics")->find("beta/wall_s"), nullptr);
    EXPECT_EQ(full.find("metrics")
                  ->find("beta/wall_s")
                  ->find("kind")
                  ->string(),
              "timer");
}

TEST(MetricExport, CsvIsHeaderedAndTimerFree)
{
    MetricRegistry reg;
    reg.add("z/count", 2);
    reg.add("a/count", 1);
    reg.addTime("a/wall_s", 1.0);

    const std::string csv = toCsv(reg.snapshot());
    EXPECT_EQ(csv.rfind("path,kind,count,value,mean,min,max", 0), 0u);
    EXPECT_NE(csv.find("a/count,counter"), std::string::npos);
    EXPECT_NE(csv.find("z/count,counter"), std::string::npos);
    EXPECT_EQ(csv.find("wall_s"), std::string::npos);
    // Paths come out lexicographically ordered.
    EXPECT_LT(csv.find("a/count"), csv.find("z/count"));

    SnapshotOptions with_timers;
    with_timers.includeTimers = true;
    EXPECT_NE(toCsv(reg.snapshot(), with_timers).find("a/wall_s,timer"),
              std::string::npos);
}

TEST(MetricEnabled, DisabledCollectionIsInvisible)
{
    ASSERT_FALSE(enabled()) << "tests expect collection off by default";

    // ScopedTimer must not record anything while disabled.
    MetricRegistry quiet;
    {
        CollectorScope scope(&quiet);
        ScopedTimer timer("should_not_appear");
    }
    EXPECT_TRUE(quiet.empty());

    setEnabled(true);
    EXPECT_TRUE(enabled());
    MetricRegistry loud;
    {
        CollectorScope scope(&loud);
        ScopedTimer timer("recorded_s");
    }
    setEnabled(false);
    const auto snap = loud.snapshot();
    ASSERT_EQ(snap.count("recorded_s"), 1u);
    EXPECT_EQ(snap.at("recorded_s").kind, MetricKind::Timer);
    EXPECT_EQ(snap.at("recorded_s").stat.count(), 1u);
    EXPECT_GE(snap.at("recorded_s").stat.min(), 0.0);
}

} // namespace
} // namespace mlpsim::metrics
