/**
 * @file
 * JSON document model, writer and strict reader (metrics/json.hh):
 * round trips, insertion-order preservation, number-kind fidelity,
 * deterministic formatting, and reader strictness.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "metrics/json.hh"

namespace mlpsim::metrics {
namespace {

TEST(Json, ScalarKindsAndAccessors)
{
    EXPECT_TRUE(JsonValue().isNull());
    EXPECT_TRUE(JsonValue(nullptr).isNull());
    EXPECT_EQ(JsonValue(true).boolean(), true);
    EXPECT_EQ(JsonValue(int64_t(-7)).number(), -7.0);
    EXPECT_EQ(JsonValue(uint64_t(7)).uinteger(), 7u);
    EXPECT_EQ(JsonValue(2.5).number(), 2.5);
    EXPECT_EQ(JsonValue("hi").string(), "hi");
}

TEST(Json, ObjectPreservesInsertionOrder)
{
    JsonValue obj = JsonValue::object();
    obj.set("zebra", 1);
    obj.set("alpha", 2);
    obj.set("mid", 3);
    ASSERT_EQ(obj.size(), 3u);
    EXPECT_EQ(obj.members()[0].first, "zebra");
    EXPECT_EQ(obj.members()[1].first, "alpha");
    EXPECT_EQ(obj.members()[2].first, "mid");

    // Overwriting keeps the key's original position.
    obj.set("zebra", 9);
    EXPECT_EQ(obj.members()[0].first, "zebra");
    EXPECT_EQ(obj.members()[0].second.number(), 9.0);
    EXPECT_EQ(obj.size(), 3u);

    EXPECT_EQ(obj.dump(0), "{\"zebra\":9,\"alpha\":2,\"mid\":3}");
}

TEST(Json, NumberFormattingIsDeterministic)
{
    // Integers keep integer formatting; integral doubles get ".0" so
    // the kind survives a round trip.
    EXPECT_EQ(JsonValue(uint64_t(18446744073709551615ull)).dump(0),
              "18446744073709551615");
    EXPECT_EQ(JsonValue(int64_t(-42)).dump(0), "-42");
    EXPECT_EQ(JsonValue(1.0).dump(0), "1.0");
    EXPECT_EQ(JsonValue(0.1).dump(0), "0.1");
    EXPECT_EQ(JsonValue(1e300).dump(0), "1e+300");
}

TEST(Json, EqualityAcrossIntegerKinds)
{
    EXPECT_EQ(JsonValue(int64_t(7)), JsonValue(uint64_t(7)));
    EXPECT_NE(JsonValue(int64_t(7)), JsonValue(uint64_t(8)));
    // Doubles only compare equal to doubles (a 1 vs 1.0 difference is
    // a real formatting difference and must not be masked).
    EXPECT_NE(JsonValue(int64_t(1)), JsonValue(1.0));
    EXPECT_EQ(JsonValue(1.0), JsonValue(1.0));
}

TEST(Json, DumpParseRoundTrip)
{
    JsonValue doc = JsonValue::object();
    doc.set("string", "with \"quotes\", \\ and \x01 control");
    doc.set("int", int64_t(-123));
    doc.set("uint", uint64_t(456));
    doc.set("double", 2.718281828459045);
    doc.set("bool", true);
    doc.set("null", nullptr);
    JsonValue arr = JsonValue::array();
    arr.push(1);
    arr.push("two");
    JsonValue nested = JsonValue::object();
    nested.set("k", "v");
    arr.push(std::move(nested));
    doc.set("arr", std::move(arr));

    for (int indent : {0, 2, 4}) {
        const auto parsed = JsonValue::parse(doc.dump(indent));
        ASSERT_TRUE(parsed.ok()) << parsed.status().message();
        EXPECT_EQ(*parsed, doc) << "indent " << indent;
    }
}

TEST(Json, ParseAcceptsUnicodeEscapes)
{
    const auto parsed =
        JsonValue::parse("\"a\\u00e9b\\ud83d\\ude00c\\n\"");
    ASSERT_TRUE(parsed.ok());
    // é is 2 UTF-8 bytes, the emoji (surrogate pair) is 4.
    EXPECT_EQ(parsed->string(), "a\xc3\xa9"
                                "b\xf0\x9f\x98\x80"
                                "c\n");
}

TEST(Json, ParseKeepsNumberKinds)
{
    auto doc = JsonValue::parse("[18446744073709551615, -1, 1.5, 1e3]");
    ASSERT_TRUE(doc.ok());
    EXPECT_EQ(doc->items()[0].kind(), JsonValue::Kind::Uint);
    EXPECT_EQ(doc->items()[1].kind(), JsonValue::Kind::Int);
    EXPECT_EQ(doc->items()[2].kind(), JsonValue::Kind::Double);
    EXPECT_EQ(doc->items()[3].kind(), JsonValue::Kind::Double);
    EXPECT_EQ(doc->items()[3].number(), 1000.0);
}

TEST(Json, ParseRejectsMalformedDocuments)
{
    const char *bad[] = {
        "",
        "{",
        "{\"a\": 1,}",       // trailing comma
        "{a: 1}",            // unquoted key
        "[1, 2] garbage",    // trailing garbage
        "NaN",
        "Infinity",
        "\"unterminated",
        "\"bad \\q escape\"",
        "01",                // leading zero
        "+1",
        "[1 2]",
        "{\"a\" 1}",
        "\"\\ud83d\"",       // lone surrogate
    };
    for (const char *text : bad) {
        EXPECT_FALSE(JsonValue::parse(text).ok())
            << "accepted: " << text;
    }
}

TEST(Json, ParseRejectsRunawayNesting)
{
    const std::string deep(100, '[');
    EXPECT_FALSE(JsonValue::parse(deep).ok());
    std::string nested;
    for (int i = 0; i < 80; ++i)
        nested += "[";
    for (int i = 0; i < 80; ++i)
        nested += "]";
    EXPECT_FALSE(JsonValue::parse(nested).ok());
}

TEST(Json, FindAndMissingMembers)
{
    JsonValue obj = JsonValue::object();
    obj.set("present", 1);
    ASSERT_NE(obj.find("present"), nullptr);
    EXPECT_EQ(obj.find("absent"), nullptr);
    EXPECT_EQ(JsonValue(5).find("anything"), nullptr);
}

TEST(Json, FileRoundTripIsAtomicAndExact)
{
    const std::string path =
        testing::TempDir() + "/mlpsim_json_test.json";
    JsonValue doc = JsonValue::object();
    doc.set("answer", uint64_t(42));
    doc.set("pi", 3.141592653589793);
    ASSERT_TRUE(writeJsonFile(path, doc).ok());
    const auto read = readJsonFile(path);
    ASSERT_TRUE(read.ok()) << read.status().message();
    EXPECT_EQ(*read, doc);
    std::remove(path.c_str());

    EXPECT_FALSE(readJsonFile(path).ok()); // gone again
}

} // namespace
} // namespace mlpsim::metrics
