/** @file Micro-workloads: analytically known MLP behaviour and
 *  generator determinism. */
#include <gtest/gtest.h>

#include "core/mlpsim.hh"
#include "trace/trace_stats.hh"
#include "workloads/micro.hh"

namespace mlpsim::test {

using core::IssueConfig;
using core::MlpConfig;
using namespace mlpsim::workloads;

namespace {

constexpr uint64_t microInsts = 60'000;

core::MlpResult
runOn(trace::TraceSource &source, const MlpConfig &cfg)
{
    trace::TraceBuffer buf(source.name());
    buf.fill(source, microInsts);
    core::AnnotatedTrace annotated(buf, core::AnnotationOptions{});
    return core::runMlp(cfg, annotated.context());
}

} // namespace

TEST(MicroWorkloads, PointerChaseHasUnitMlpEverywhere)
{
    PointerChaseWorkload w;
    for (auto cfg : {MlpConfig::sized(64, IssueConfig::C),
                     MlpConfig::infinite(), MlpConfig::runahead()}) {
        w.reset();
        // Cold-start instruction misses overlap the very first data
        // misses; beyond that the chase is strictly serial.
        EXPECT_NEAR(runOn(w, cfg).mlp(), 1.0, 0.01) << cfg.label();
    }
}

class StreamCountTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(StreamCountTest, MlpEqualsStreamCount)
{
    IndependentStreamsWorkload::Params params;
    params.streams = GetParam();
    IndependentStreamsWorkload w(params);
    const double mlp = runOn(w, MlpConfig::sized(256, IssueConfig::C)).mlp();
    EXPECT_NEAR(mlp, double(GetParam()), 0.03 * GetParam() + 0.03);
}

INSTANTIATE_TEST_SUITE_P(Counts, StreamCountTest,
                         ::testing::Values(1u, 2u, 4u, 8u, 12u));

TEST(MicroWorkloads, StreamsStallOnUseVsStallOnMiss)
{
    IndependentStreamsWorkload w;
    MlpConfig som;
    som.mode = core::CoreMode::InOrderStallOnMiss;
    MlpConfig sou;
    sou.mode = core::CoreMode::InOrderStallOnUse;
    EXPECT_NEAR(runOn(w, som).mlp(), 1.0, 0.01);
    w.reset();
    EXPECT_NEAR(runOn(w, sou).mlp(), 4.0, 0.05);
}

TEST(MicroWorkloads, SerializingStormCappedByAtomicsExceptConfigE)
{
    SerializingStormWorkload w;
    const double c =
        runOn(w, MlpConfig::sized(256, IssueConfig::C)).mlp();
    w.reset();
    const double e =
        runOn(w, MlpConfig::sized(256, IssueConfig::E)).mlp();
    EXPECT_NEAR(c, 4.0, 0.2); // group size
    EXPECT_GT(e, 3.0 * c);    // config E sails past the atomics
}

TEST(MicroWorkloads, SerializingStormRunaheadIgnoresAtomics)
{
    SerializingStormWorkload w;
    const double d =
        runOn(w, MlpConfig::sized(64, IssueConfig::D)).mlp();
    w.reset();
    const double rae = runOn(w, MlpConfig::runahead()).mlp();
    EXPECT_GT(rae, 3.0 * d);
}

TEST(MicroWorkloads, PrefetchedStreamPrefetchesAreUseful)
{
    PrefetchedStreamWorkload w;
    trace::TraceBuffer buf("p");
    buf.fill(w, microInsts);
    core::AnnotatedTrace annotated(buf, core::AnnotationOptions{});
    const auto &m = annotated.misses();
    EXPECT_GT(m.usefulPrefetches, 1000u);
    // Nearly every prefetch is useful; the demand loads behind them
    // hit.
    EXPECT_LT(m.uselessPrefetches, m.usefulPrefetches / 20 + 10);
    EXPECT_LT(m.loadMisses, m.usefulPrefetches / 5);
}

TEST(MicroWorkloads, GeneratorsAreDeterministic)
{
    const auto dump = [](trace::TraceSource &w) {
        trace::TraceBuffer buf("x");
        buf.fill(w, 5000);
        return buf;
    };
    PointerChaseWorkload a, b;
    const auto ta = dump(a), tb = dump(b);
    ASSERT_EQ(ta.size(), tb.size());
    for (size_t i = 0; i < ta.size(); ++i) {
        ASSERT_EQ(ta.at(i).pc, tb.at(i).pc) << i;
        ASSERT_EQ(ta.at(i).effAddr, tb.at(i).effAddr) << i;
    }
}

TEST(MicroWorkloads, ResetReproducesTheStream)
{
    SerializingStormWorkload w;
    trace::TraceBuffer first("f");
    first.fill(w, 5000);
    w.reset();
    trace::TraceBuffer second("s");
    second.fill(w, 5000);
    ASSERT_EQ(first.size(), second.size());
    for (size_t i = 0; i < first.size(); ++i) {
        ASSERT_EQ(first.at(i).effAddr, second.at(i).effAddr) << i;
        ASSERT_EQ(first.at(i).cls(), second.at(i).cls()) << i;
    }
}

TEST(MicroWorkloads, DifferentSeedsDiffer)
{
    PointerChaseWorkload::Params pa, pb;
    pa.seed = 1;
    pb.seed = 2;
    PointerChaseWorkload a(pa), b(pb);
    trace::TraceBuffer ta("a"), tb("b");
    ta.fill(a, 1000);
    tb.fill(b, 1000);
    int differing = 0;
    for (size_t i = 0; i < ta.size(); ++i)
        differing += ta.at(i).effAddr != tb.at(i).effAddr;
    EXPECT_GT(differing, 100);
}

TEST(MicroWorkloads, SerializingMixContainsAtomics)
{
    SerializingStormWorkload w;
    const auto mix = trace::measureMix(w, 20000);
    EXPECT_GT(mix.fracSerializing(), 0.01);
    EXPECT_GT(mix.fracLoads(), 0.1);
}

} // namespace mlpsim::test
