/** @file The workload-authoring framework: PC layout, call/return
 *  consistency, loops, mixed hot work. */
#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <set>
#include <vector>

#include "workloads/workload_base.hh"

namespace mlpsim::test {

using namespace mlpsim::workloads;
using trace::BranchKind;
using trace::Instruction;
using trace::InstClass;

namespace {

/** A scriptable workload for exercising the base-class helpers. */
class Probe : public WorkloadBase
{
  public:
    using Body = std::function<void(Probe &)>;

    explicit Probe(Body body)
        : WorkloadBase("probe", 42), bodyFn(std::move(body))
    {
    }

    // surface the protected helpers
    using WorkloadBase::callFunction;
    using WorkloadBase::currentPc;
    using WorkloadBase::emitAlu;
    using WorkloadBase::emitCompute;
    using WorkloadBase::emitCondBranch;
    using WorkloadBase::emitHotWork;
    using WorkloadBase::emitLoad;
    using WorkloadBase::loopBack;
    using WorkloadBase::random;
    using WorkloadBase::loopHead;
    using WorkloadBase::returnFromFunction;

  protected:
    void initialize() override {}
    void generate() override { bodyFn(*this); }

  private:
    Body bodyFn;
};

std::vector<Instruction>
drain(Probe &p, size_t n)
{
    std::vector<Instruction> out;
    Instruction inst;
    while (out.size() < n && p.next(inst))
        out.push_back(inst);
    return out;
}

} // namespace

TEST(WorkloadBase, CallEmitsCallBranchToFunctionBase)
{
    Probe p([](Probe &w) {
        w.callFunction(7);
        w.emitAlu(1);
        w.returnFromFunction();
    });
    const auto insts = drain(p, 3);
    ASSERT_EQ(insts.size(), 3u);
    EXPECT_EQ(insts[0].brKind(), BranchKind::Call);
    EXPECT_TRUE(insts[0].taken());
    // The callee body starts at the call target.
    EXPECT_EQ(insts[1].pc, insts[0].target());
    EXPECT_EQ(insts[2].brKind(), BranchKind::Return);
}

TEST(WorkloadBase, ReturnTargetsInstructionAfterCall)
{
    Probe p([](Probe &w) {
        w.callFunction(7);
        w.returnFromFunction();
        w.emitAlu(1); // first caller instruction after the call
    });
    const auto insts = drain(p, 3);
    EXPECT_EQ(insts[1].target(), insts[0].pc + 4);
    EXPECT_EQ(insts[2].pc, insts[0].pc + 4);
}

TEST(WorkloadBase, SameFunctionSamePcsOnEveryCall)
{
    Probe p([](Probe &w) {
        w.callFunction(9);
        w.emitAlu(1);
        w.emitAlu(2);
        w.returnFromFunction();
    });
    const auto first = drain(p, 4);
    const auto second = drain(p, 4);
    for (size_t i = 0; i < 4; ++i)
        EXPECT_EQ(first[i].pc, second[i].pc) << i;
}

TEST(WorkloadBase, DistinctCalleesGetDistinctCallSites)
{
    // The direct-call layout: a caller reaches different callees from
    // different call-site PCs, so the BTB can learn each target.
    Probe p([](Probe &w) {
        for (uint32_t f = 20; f < 28; ++f) {
            w.callFunction(f);
            w.returnFromFunction();
        }
    });
    const auto insts = drain(p, 16);
    std::set<uint64_t> call_pcs;
    for (const auto &inst : insts) {
        if (inst.brKind() == BranchKind::Call)
            call_pcs.insert(inst.pc);
    }
    EXPECT_GE(call_pcs.size(), 7u);
}

TEST(WorkloadBase, LoopBackReusesPcs)
{
    Probe p([](Probe &w) {
        w.callFunction(3);
        const uint64_t head = w.loopHead();
        for (int iter = 0; iter < 3; ++iter) {
            w.emitAlu(1);
            w.emitAlu(2);
            w.loopBack(head, iter + 1 < 3);
        }
        w.returnFromFunction();
    });
    const auto insts = drain(p, 11);
    // Iterations 1 and 2 reuse the same body PCs and back-edge PC.
    EXPECT_EQ(insts[1].pc, insts[4].pc);
    EXPECT_EQ(insts[2].pc, insts[5].pc);
    EXPECT_EQ(insts[3].pc, insts[6].pc); // the branch
    EXPECT_TRUE(insts[3].taken());
    EXPECT_FALSE(insts[9].taken()); // final iteration falls through
    EXPECT_EQ(insts[3].target(), insts[1].pc);
}

TEST(WorkloadBase, CondBranchSkipsForward)
{
    Probe p([](Probe &w) {
        w.callFunction(4);
        w.emitCondBranch(true, trace::noReg, 2);
        w.emitAlu(1); // lands AFTER the skipped slots
        w.returnFromFunction();
    });
    const auto insts = drain(p, 3);
    EXPECT_EQ(insts[0].brKind(), BranchKind::Call);
    EXPECT_EQ(insts[1].cls(), InstClass::Branch);
    EXPECT_EQ(insts[2].pc, insts[1].target());
}

TEST(WorkloadBase, HotWorkMixesLoadsIntoCompute)
{
    Probe p([](Probe &w) {
        w.callFunction(5);
        w.emitHotWork(1, 40, 0x1'0000'0000ULL, 64);
        w.returnFromFunction();
    });
    const auto insts = drain(p, 42);
    unsigned loads = 0, alus = 0;
    for (const auto &inst : insts) {
        loads += inst.cls() == InstClass::Load;
        alus += inst.cls() == InstClass::Alu;
    }
    EXPECT_NEAR(loads, 10u, 2u); // ~1 load per 4 instructions
    EXPECT_GT(alus, 25u);
}

TEST(WorkloadBase, ResetReproducesExactly)
{
    Probe p([](Probe &w) {
        w.callFunction(6);
        w.emitHotWork(1, 16, 0x1'0000'0000ULL, 64);
        w.emitCondBranch(w.random().chance(0.5), 2, 2);
        w.returnFromFunction();
    });
    const auto first = drain(p, 50);
    p.reset();
    const auto second = drain(p, 50);
    ASSERT_EQ(first.size(), second.size());
    for (size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(first[i].pc, second[i].pc) << i;
        EXPECT_EQ(first[i].effAddr, second[i].effAddr) << i;
        EXPECT_EQ(first[i].taken(), second[i].taken()) << i;
    }
}

TEST(WorkloadBase, PcsStayInsideTheFunctionStride)
{
    Probe p([](Probe &w) {
        w.callFunction(11);
        w.emitCompute(1, 500); // longer than funcStride/4 slots: wraps
        w.returnFromFunction();
    });
    const auto insts = drain(p, 400);
    const uint64_t base = insts[0].target();
    for (size_t i = 1; i < insts.size(); ++i) {
        EXPECT_GE(insts[i].pc, base);
        EXPECT_LT(insts[i].pc, base + 1024);
    }
}

} // namespace mlpsim::test
