/** @file Calibration bands of the three commercial-workload
 *  synthesizers against the paper's published characteristics. The
 *  bands are deliberately loose: they catch structural regressions,
 *  not statistical noise. */
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "core/mlpsim.hh"
#include "trace/trace_stats.hh"
#include "workloads/factory.hh"

namespace mlpsim::test {

using core::IssueConfig;
using core::MlpConfig;

namespace {

constexpr uint64_t warmupInsts = 400'000;
constexpr uint64_t measureInsts = 600'000;

struct Prepared
{
    std::unique_ptr<trace::TraceBuffer> buffer;
    std::unique_ptr<core::AnnotatedTrace> annotated;
    trace::TraceMix mix;
};

const Prepared &
prepared(const std::string &name)
{
    static std::map<std::string, Prepared> cache;
    auto it = cache.find(name);
    if (it == cache.end()) {
        Prepared p;
        auto generator = workloads::makeWorkload(name);
        p.buffer = std::make_unique<trace::TraceBuffer>(name);
        p.buffer->fill(*generator, warmupInsts + measureInsts);
        core::AnnotationOptions opts;
        opts.warmupInsts = warmupInsts;
        p.annotated =
            std::make_unique<core::AnnotatedTrace>(*p.buffer, opts);
        auto cursor = p.buffer->cursor();
        p.mix = trace::measureMix(cursor, p.buffer->size());
        it = cache.emplace(name, std::move(p)).first;
    }
    return it->second;
}

double
mlpOf(const std::string &name, MlpConfig cfg)
{
    cfg.warmupInsts = warmupInsts;
    return core::runMlp(cfg, prepared(name).annotated->context()).mlp();
}

} // namespace

// ---- instruction mix ------------------------------------------------

TEST(CommercialMix, LoadFractionsAreProgramLike)
{
    for (const auto &name : workloads::commercialWorkloadNames()) {
        const auto &mix = prepared(name).mix;
        EXPECT_GT(mix.fracLoads(), 0.12) << name;
        EXPECT_LT(mix.fracLoads(), 0.35) << name;
        EXPECT_GT(mix.fracBranches(), 0.02) << name;
        EXPECT_LT(mix.fracBranches(), 0.12) << name;
        EXPECT_GT(mix.fracStores(), 0.003) << name;
    }
}

TEST(CommercialMix, JbbHasCasaDensityLikeThePaper)
{
    // Paper: CASA > 0.6% of the dynamic instructions in SPECjbb2000.
    const auto &mix = prepared("specjbb2000").mix;
    EXPECT_GT(mix.fracSerializing(), 0.005);
    EXPECT_LT(mix.fracSerializing(), 0.015);
}

TEST(CommercialMix, OnlyWebCarriesPrefetches)
{
    EXPECT_GT(prepared("specweb99").mix.fracPrefetches(), 0.0005);
    EXPECT_DOUBLE_EQ(prepared("database").mix.fracPrefetches(), 0.0);
    EXPECT_DOUBLE_EQ(prepared("specjbb2000").mix.fracPrefetches(), 0.0);
}

// ---- Table 1 miss-rate bands ----------------------------------------

TEST(CommercialMissRate, DatabaseNearPaper)
{
    const double rate =
        prepared("database").annotated->misses().missRatePer100();
    EXPECT_GT(rate, 0.5);
    EXPECT_LT(rate, 1.2); // paper 0.84
}

TEST(CommercialMissRate, JbbNearPaper)
{
    const double rate =
        prepared("specjbb2000").annotated->misses().missRatePer100();
    EXPECT_GT(rate, 0.10);
    EXPECT_LT(rate, 0.40); // paper 0.19
}

TEST(CommercialMissRate, WebNearPaper)
{
    const double rate =
        prepared("specweb99").annotated->misses().missRatePer100();
    EXPECT_GT(rate, 0.02);
    EXPECT_LT(rate, 0.15); // paper 0.09
}

TEST(CommercialMissRate, OrderingMatchesPaper)
{
    const double db =
        prepared("database").annotated->misses().missRatePer100();
    const double jbb =
        prepared("specjbb2000").annotated->misses().missRatePer100();
    const double web =
        prepared("specweb99").annotated->misses().missRatePer100();
    EXPECT_GT(db, jbb);
    EXPECT_GT(jbb, web);
}

// ---- instruction-side structure --------------------------------------

TEST(CommercialISide, DatabaseAndWebMissInstructions)
{
    EXPECT_GT(prepared("database").annotated->misses().fetchMisses,
              100u);
    EXPECT_GT(prepared("specweb99").annotated->misses().fetchMisses,
              20u);
}

TEST(CommercialISide, JbbCodeFitsTheL2)
{
    const auto &m = prepared("specjbb2000").annotated->misses();
    EXPECT_LT(double(m.fetchMisses), 0.05 * double(m.loadMisses) + 20);
}

// ---- branch and value prediction -------------------------------------

TEST(CommercialBranches, MispredictRatesAreSane)
{
    for (const auto &name : workloads::commercialWorkloadNames()) {
        const double rate =
            prepared(name).annotated->branches().mispredictRate();
        EXPECT_GT(rate, 0.01) << name;
        EXPECT_LT(rate, 0.30) << name;
    }
}

TEST(CommercialValues, CorrectFractionsTrackTable6)
{
    // Paper Table 6 correct%: db 42, jbb 20, web 25.
    const double db =
        prepared("database").annotated->values().fracCorrect();
    const double jbb =
        prepared("specjbb2000").annotated->values().fracCorrect();
    const double web =
        prepared("specweb99").annotated->values().fracCorrect();
    EXPECT_NEAR(db, 0.42, 0.12);
    EXPECT_NEAR(jbb, 0.20, 0.10);
    EXPECT_NEAR(web, 0.25, 0.14);
    EXPECT_GT(db, jbb);
}

// ---- miss clustering (Figure 2) --------------------------------------

TEST(CommercialClustering, ObservedBeatsUniformAtSmallDistances)
{
    // Paper Figure 2: the clustering is extreme for SPECweb99 and
    // SPECjbb2000; the database workload's high miss rate means the
    // uniform curve is already steep and the two nearly coincide.
    for (const auto &name : workloads::commercialWorkloadNames()) {
        const auto &hist =
            prepared(name).annotated->misses().interMissDistance;
        const double mean = hist.mean();
        const double observed = hist.cdfAt(64);
        const double uniform = uniformInterMissCdf(mean, 64);
        if (name == "database")
            EXPECT_GT(observed, uniform - 0.05) << name;
        else
            EXPECT_GT(observed, uniform + 0.1) << name;
    }
}

// ---- headline MLP bands ----------------------------------------------

TEST(CommercialMlp, Default64CBands)
{
    EXPECT_NEAR(mlpOf("database", MlpConfig::defaultOoO()), 1.38, 0.25);
    EXPECT_NEAR(mlpOf("specjbb2000", MlpConfig::defaultOoO()), 1.13,
                0.12);
    EXPECT_NEAR(mlpOf("specweb99", MlpConfig::defaultOoO()), 1.28,
                0.25);
}

TEST(CommercialMlp, InOrderNearUnity)
{
    MlpConfig som;
    som.mode = core::CoreMode::InOrderStallOnMiss;
    for (const auto &name : workloads::commercialWorkloadNames()) {
        const double m = mlpOf(name, som);
        EXPECT_GE(m, 1.0) << name;
        EXPECT_LT(m, 1.25) << name;
    }
}

TEST(CommercialMlp, RunaheadGainsAreLarge)
{
    for (const auto &name : workloads::commercialWorkloadNames()) {
        const double base =
            mlpOf(name, MlpConfig::sized(64, IssueConfig::D));
        const double rae = mlpOf(name, MlpConfig::runahead());
        EXPECT_GT(rae, 1.3 * base) << name; // paper: +49% .. +102%
    }
}

TEST(CommercialMlp, SerializationDominatesJbbAtLargeWindows)
{
    // Paper Figures 4/5: config E breaks away for SPECjbb2000.
    const double c = mlpOf("specjbb2000",
                           MlpConfig::sized(256, IssueConfig::C));
    const double e = mlpOf("specjbb2000",
                           MlpConfig::sized(256, IssueConfig::E));
    EXPECT_GT(e, 1.15 * c);
}

TEST(CommercialMlp, WebLoadsSerializeUnderConfigA)
{
    const double a =
        mlpOf("specweb99", MlpConfig::sized(64, IssueConfig::A));
    const double c =
        mlpOf("specweb99", MlpConfig::sized(64, IssueConfig::C));
    EXPECT_GT(c, a + 0.05);
}

TEST(CommercialWorkloads, GeneratorsAreDeterministic)
{
    for (const auto &name : workloads::commercialWorkloadNames()) {
        auto a = workloads::makeWorkload(name);
        auto b = workloads::makeWorkload(name);
        trace::TraceBuffer ta(name), tb(name);
        ta.fill(*a, 20000);
        tb.fill(*b, 20000);
        ASSERT_EQ(ta.size(), tb.size());
        for (size_t i = 0; i < ta.size(); i += 61) {
            ASSERT_EQ(ta.at(i).pc, tb.at(i).pc) << name << " @" << i;
            ASSERT_EQ(ta.at(i).effAddr, tb.at(i).effAddr)
                << name << " @" << i;
        }
    }
}

TEST(CommercialWorkloadsDeath, UnknownNameIsFatal)
{
    EXPECT_EXIT(workloads::makeWorkload("oracle"),
                ::testing::ExitedWithCode(1), "unknown workload");
}

} // namespace mlpsim::test
