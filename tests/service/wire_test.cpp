/**
 * @file
 * Wire-layer tests for the mlpsimd sweep service: request parsing and
 * its classified rejections, the canonical cell-key / content-hash
 * scheme the caches are addressed by, and response construction. The
 * keying tests pin the property the whole service stands on — that
 * presentation-only fields (config names, request ids, deadlines)
 * never reach a cache key, while every simulation-relevant knob does.
 */
#include <gtest/gtest.h>

#include <string>

#include "metrics/json.hh"
#include "service/wire.hh"
#include "util/status.hh"

namespace mlpsim::service {
namespace {

using metrics::JsonValue;

JsonValue
parseJson(const std::string &text)
{
    auto doc = JsonValue::parse(text);
    EXPECT_TRUE(doc.ok()) << doc.status().toString();
    return *std::move(doc);
}

const char *kMinimalRequest = R"({
    "schema": "mlpsim-sweep-request-v1",
    "id": "req-1",
    "workload": "database",
    "warmup": 100,
    "insts": 1000,
    "configs": [{}]
})";

TEST(SweepRequestTest, MinimalRequestUsesDefaults)
{
    auto request = parseSweepRequest(parseJson(kMinimalRequest));
    ASSERT_TRUE(request.ok()) << request.status().toString();
    EXPECT_EQ(request->id, "req-1");
    EXPECT_EQ(request->workload, "database");
    EXPECT_EQ(request->warmup, 100u);
    EXPECT_EQ(request->insts, 1000u);
    EXPECT_LT(request->deadlineMillis, 0.0);
    EXPECT_EQ(request->maxAttempts, 1u);
    ASSERT_EQ(request->configs.size(), 1u);
    // An empty config object means the default machine, named by its
    // own label.
    EXPECT_EQ(request->configs[0].name,
              request->configs[0].config.label());
    EXPECT_NE(request->seed, 0u); // workloadSeed("database")
}

TEST(SweepRequestTest, WrongSchemaIsInvalidArgument)
{
    JsonValue doc = parseJson(kMinimalRequest);
    doc.set("schema", "mlpsim-sweep-response-v1");
    auto request = parseSweepRequest(doc);
    ASSERT_FALSE(request.ok());
    EXPECT_EQ(request.status().code(), ErrorCode::InvalidArgument);
}

TEST(SweepRequestTest, UnknownWorkloadIsNotFound)
{
    JsonValue doc = parseJson(kMinimalRequest);
    doc.set("workload", "nonesuch");
    auto request = parseSweepRequest(doc);
    ASSERT_FALSE(request.ok());
    EXPECT_EQ(request.status().code(), ErrorCode::NotFound);
    // The rejection lists the accepted names.
    EXPECT_NE(request.status().toString().find("database"),
              std::string::npos);
}

TEST(SweepRequestTest, ZeroInstsIsRejected)
{
    JsonValue doc = parseJson(kMinimalRequest);
    doc.set("insts", 0);
    EXPECT_FALSE(parseSweepRequest(doc).ok());
}

TEST(SweepRequestTest, BudgetCapIsOutOfRange)
{
    auto request = parseSweepRequest(parseJson(kMinimalRequest),
                                     /*max_insts=*/500);
    ASSERT_FALSE(request.ok());
    EXPECT_EQ(request.status().code(), ErrorCode::OutOfRange);
}

TEST(SweepRequestTest, UnknownConfigMemberIsRejected)
{
    JsonValue doc = parseJson(kMinimalRequest);
    JsonValue config = JsonValue::object();
    config.set("widnow", 128); // typo must not pass silently
    JsonValue configs = JsonValue::array();
    configs.push(std::move(config));
    doc.set("configs", std::move(configs));
    auto request = parseSweepRequest(doc);
    ASSERT_FALSE(request.ok());
    EXPECT_EQ(request.status().code(), ErrorCode::InvalidArgument);
}

TEST(SweepRequestTest, InconsistentMachineFailsValidation)
{
    JsonValue doc = parseJson(kMinimalRequest);
    JsonValue config = JsonValue::object();
    config.set("window", 0);
    JsonValue configs = JsonValue::array();
    configs.push(std::move(config));
    doc.set("configs", std::move(configs));
    EXPECT_FALSE(parseSweepRequest(doc).ok());
}

TEST(ConfigWireTest, RoundTripPreservesEveryKnob)
{
    core::MlpConfig config = core::MlpConfig::runahead();
    config.valuePrediction = true;
    config.fetchBufferSize = 48;
    const JsonValue doc = configToJson(config);
    auto back = configFromJson(doc);
    ASSERT_TRUE(back.ok()) << back.status().toString();
    EXPECT_EQ(configToJson(*back).dump(0), doc.dump(0));
}

TEST(CellKeyTest, PresentationFieldsDoNotAffectTheKey)
{
    auto a = parseSweepRequest(parseJson(kMinimalRequest));
    ASSERT_TRUE(a.ok());

    JsonValue doc = parseJson(kMinimalRequest);
    doc.set("id", "a-completely-different-id");
    doc.set("deadline_ms", 1234.5);
    doc.set("retries", 3);
    auto b = parseSweepRequest(doc);
    ASSERT_TRUE(b.ok()) << b.status().toString();
    b->configs[0].name = "my-pet-config";

    EXPECT_EQ(cellKey(*a, a->configs[0].config),
              cellKey(*b, b->configs[0].config));
    EXPECT_EQ(requestHash(*a), requestHash(*b));
}

TEST(CellKeyTest, SimulationKnobsAllReachTheKey)
{
    auto base = parseSweepRequest(parseJson(kMinimalRequest));
    ASSERT_TRUE(base.ok());
    const std::string key = cellKey(*base, base->configs[0].config);

    SweepRequest variant = *base;
    variant.seed += 1;
    EXPECT_NE(cellKey(variant, variant.configs[0].config), key);

    variant = *base;
    variant.warmup += 1;
    EXPECT_NE(cellKey(variant, variant.configs[0].config), key);

    variant = *base;
    variant.insts += 1;
    EXPECT_NE(cellKey(variant, variant.configs[0].config), key);

    core::MlpConfig config = base->configs[0].config;
    config.issueWindowSize *= 2;
    EXPECT_NE(cellKey(*base, config), key);
}

TEST(ContentHashTest, StableAndSixteenHexChars)
{
    const std::string hash = contentHash("hello");
    EXPECT_EQ(hash.size(), 16u);
    EXPECT_EQ(hash, contentHash("hello"));
    EXPECT_NE(hash, contentHash("hello!"));
    for (char c : hash)
        EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))
            << hash;
}

TEST(ResponseTest, OkResponseValidatesAndIsDeterministic)
{
    auto request = parseSweepRequest(parseJson(kMinimalRequest));
    ASSERT_TRUE(request.ok());

    core::MlpResult result;
    result.epochs = 10;
    result.usefulAccesses = 25;
    result.dmissAccesses = 20;
    result.imissAccesses = 5;
    result.measuredInsts = 1000;
    result.inhibitors.record(core::Inhibitor::Maxwin);
    result.accessesPerEpoch.add(2, 5);
    result.accessesPerEpoch.add(3, 5);

    const JsonValue response = makeOkResponse(
        *request, {{request->configs[0].name, result}});
    const Status valid = validateSweepResponse(response);
    EXPECT_TRUE(valid.ok()) << valid.toString();
    EXPECT_EQ(response.find("status")->string(), "ok");
    EXPECT_EQ(response.find("id")->string(), "req-1");
    EXPECT_EQ(response.find("request_hash")->string(),
              requestHash(*request));

    const JsonValue &row = *response.find("results")->items().begin();
    EXPECT_EQ(row.find("epochs")->uinteger(), 10u);
    EXPECT_DOUBLE_EQ(row.find("mlp")->number(), 2.5);
    ASSERT_NE(row.find("inhibitors"), nullptr);
    EXPECT_TRUE(row.find("inhibitors")->isObject());
    ASSERT_NE(row.find("accesses_per_epoch"), nullptr);

    // The cache-hit guarantee in miniature: two independent
    // serialisations of the same content are byte-identical.
    const JsonValue again = makeOkResponse(
        *request, {{request->configs[0].name, result}});
    EXPECT_EQ(response.dump(0), again.dump(0));
}

TEST(ResponseTest, ErrorResponseCarriesTheFailureTaxonomy)
{
    const Status failure =
        Status::notFound("workload 'nonesuch' is not known");
    const JsonValue response =
        makeErrorResponse("req-9", "0123456789abcdef", failure);
    const Status valid = validateSweepResponse(response);
    EXPECT_TRUE(valid.ok()) << valid.toString();
    EXPECT_EQ(response.find("status")->string(), "error");
    const JsonValue *error = response.find("error");
    ASSERT_NE(error, nullptr);
    EXPECT_EQ(error->find("code")->string(),
              errorCodeName(ErrorCode::NotFound));
    EXPECT_EQ(error->find("class")->string(),
              failureClassName(failureClass(ErrorCode::NotFound)));
    EXPECT_NE(error->find("message")->string().find("nonesuch"),
              std::string::npos);
}

TEST(ResponseTest, ValidateRejectsMangledDocuments)
{
    auto request = parseSweepRequest(parseJson(kMinimalRequest));
    ASSERT_TRUE(request.ok());
    JsonValue response = makeOkResponse(
        *request, {{request->configs[0].name, core::MlpResult{}}});
    ASSERT_TRUE(validateSweepResponse(response).ok());

    JsonValue wrong_schema = response;
    wrong_schema.set("schema", "mlpsim-sweep-request-v1");
    EXPECT_FALSE(validateSweepResponse(wrong_schema).ok());

    JsonValue bad_status = response;
    bad_status.set("status", "maybe");
    EXPECT_FALSE(validateSweepResponse(bad_status).ok());

    EXPECT_FALSE(validateSweepResponse(JsonValue::object()).ok());
}

TEST(EventTest, PlannedEventCountsAddUp)
{
    const JsonValue event = makePlannedEvent("req-1", 4, 3, 1);
    EXPECT_EQ(event.find("schema")->string(), sweepEventSchema);
    EXPECT_EQ(event.find("event")->string(), "planned");
    EXPECT_EQ(event.find("cells")->uinteger(), 4u);
    EXPECT_EQ(event.find("hits")->uinteger(), 3u);
    EXPECT_EQ(event.find("computed")->uinteger(), 1u);
}

} // namespace
} // namespace mlpsim::service
