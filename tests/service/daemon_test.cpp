/**
 * @file
 * Daemon tests over a real framed pipe pair: the full serve() loop
 * short of a process boundary. Each case queues frames into the input
 * pipe, runs serve() to clean EOF (or shutdown), and inspects the
 * emitted frame stream — so the batching, caching, error-classification
 * and event behaviour are all exercised through the same code path
 * mlpsimd --stdio runs in production.
 */
#include <gtest/gtest.h>

#include <unistd.h>

#include <string>
#include <vector>

#include "metrics/json.hh"
#include "service/daemon.hh"
#include "service/framing.hh"
#include "service/wire.hh"
#include "util/status.hh"

namespace mlpsim::service {
namespace {

using metrics::JsonValue;

std::string
requestPayload(const std::string &id, const std::string &workload,
               const std::string &config_body)
{
    return "{\"schema\":\"mlpsim-sweep-request-v1\",\"id\":\"" + id +
           "\",\"workload\":\"" + workload +
           "\",\"warmup\":200,\"insts\":1000,\"configs\":[" +
           config_body + "]}";
}

struct Session
{
    Status served;                    //!< serve()'s verdict
    std::vector<std::string> frames;  //!< every emitted frame, raw
    std::vector<std::string> responses; //!< response frames only
    std::vector<JsonValue> events;    //!< event frames, parsed
};

/**
 * Queue @p payloads into a pipe, serve them to EOF, and collect the
 * emitted frames. Payload and response volume must stay well under
 * the pipe buffer (the tests use ~1 KB frames), since both sides run
 * on this one thread.
 */
Session
runSession(Daemon &daemon, const std::vector<std::string> &payloads)
{
    int in[2], out[2];
    EXPECT_EQ(::pipe(in), 0);
    EXPECT_EQ(::pipe(out), 0);
    {
        FrameWriter writer(in[1]);
        for (const std::string &payload : payloads) {
            const Status sent = writer.write(payload);
            EXPECT_TRUE(sent.ok()) << sent.toString();
        }
    }
    ::close(in[1]);

    Session session;
    session.served = daemon.serve(in[0], out[1]);
    ::close(in[0]);
    ::close(out[1]);

    FrameReader reader(out[0]);
    std::string frame;
    while (true) {
        auto more = reader.read(&frame);
        EXPECT_TRUE(more.ok()) << more.status().toString();
        if (!more.ok() || !*more)
            break;
        session.frames.push_back(frame);
        auto doc = JsonValue::parse(frame);
        EXPECT_TRUE(doc.ok()) << doc.status().toString();
        const JsonValue *schema = doc->find("schema");
        if (!schema || !schema->isString()) {
            ADD_FAILURE() << "frame without a schema: " << frame;
            continue;
        }
        if (schema->string() == sweepResponseSchema)
            session.responses.push_back(frame);
        else if (schema->string() == sweepEventSchema)
            session.events.push_back(*std::move(doc));
    }
    ::close(out[0]);
    return session;
}

std::unique_ptr<Daemon>
memoryDaemon()
{
    DaemonConfig config;
    config.jobs = 2;
    auto daemon = Daemon::create(config);
    EXPECT_TRUE(daemon.ok()) << daemon.status().toString();
    return *std::move(daemon);
}

TEST(DaemonTest, AnswersRequestsInFrameOrder)
{
    auto daemon = memoryDaemon();
    const Session session = runSession(
        *daemon,
        {requestPayload("first", "database", "{}"),
         requestPayload("second", "specweb99", "{\"window\":32}")});
    ASSERT_TRUE(session.served.ok()) << session.served.toString();
    ASSERT_EQ(session.responses.size(), 2u);

    for (size_t i = 0; i < 2; ++i) {
        const JsonValue doc =
            JsonValue::parse(session.responses[i]).orFatal();
        const Status valid = validateSweepResponse(doc);
        EXPECT_TRUE(valid.ok()) << valid.toString();
        EXPECT_EQ(doc.find("status")->string(), "ok");
        EXPECT_EQ(doc.find("id")->string(),
                  i == 0 ? "first" : "second");
    }
    EXPECT_EQ(daemon->stats().requests, 2u);
    EXPECT_EQ(daemon->stats().cells, 2u);
    EXPECT_EQ(daemon->stats().cellsComputed, 2u);

    // One "planned" event per request precedes execution.
    size_t planned = 0;
    for (const JsonValue &event : session.events)
        planned += event.find("event")->string() == "planned";
    EXPECT_EQ(planned, 2u);
}

TEST(DaemonTest, DuplicateInOneBatchIsDedupedAndByteIdentical)
{
    auto daemon = memoryDaemon();
    const std::string payload = requestPayload("dup", "database", "{}");
    const Session session = runSession(*daemon, {payload, payload});
    ASSERT_TRUE(session.served.ok()) << session.served.toString();
    ASSERT_EQ(session.responses.size(), 2u);
    EXPECT_EQ(session.responses[0], session.responses[1]);
    EXPECT_EQ(daemon->stats().cells, 2u);
    EXPECT_EQ(daemon->stats().cellsComputed, 1u);
    EXPECT_EQ(daemon->stats().cellHits, 1u);
}

TEST(DaemonTest, WarmSessionServesFromCacheByteIdentically)
{
    auto daemon = memoryDaemon();
    const std::string payload =
        requestPayload("warm", "database", "{\"mode\":\"runahead\"}");

    const Session cold = runSession(*daemon, {payload});
    ASSERT_EQ(cold.responses.size(), 1u);
    EXPECT_EQ(daemon->stats().cellsComputed, 1u);

    const Session warm = runSession(*daemon, {payload});
    ASSERT_EQ(warm.responses.size(), 1u);
    EXPECT_EQ(warm.responses[0], cold.responses[0]);
    EXPECT_EQ(daemon->stats().cellsComputed, 1u); // nothing new ran
    EXPECT_EQ(daemon->stats().cellHits, 1u);

    // The warm request's planned event reports the hit.
    bool found = false;
    for (const JsonValue &event : warm.events) {
        if (event.find("event")->string() != "planned")
            continue;
        found = true;
        EXPECT_EQ(event.find("hits")->uinteger(), 1u);
        EXPECT_EQ(event.find("computed")->uinteger(), 0u);
    }
    EXPECT_TRUE(found);
}

TEST(DaemonTest, BadRequestsGetClassifiedErrorsNotAborts)
{
    auto daemon = memoryDaemon();
    const Session session = runSession(
        *daemon, {"this is not json",
                  requestPayload("ghost", "nonesuch", "{}"),
                  requestPayload("fine", "database", "{}")});
    ASSERT_TRUE(session.served.ok()) << session.served.toString();
    ASSERT_EQ(session.responses.size(), 3u);

    const JsonValue garbage =
        JsonValue::parse(session.responses[0]).orFatal();
    EXPECT_EQ(garbage.find("status")->string(), "error");
    EXPECT_EQ(garbage.find("error")->find("code")->string(),
              errorCodeName(ErrorCode::InvalidArgument));

    // The id survives even though the request was rejected, and the
    // error carries the PR 6 failure-class taxonomy.
    const JsonValue ghost =
        JsonValue::parse(session.responses[1]).orFatal();
    EXPECT_EQ(ghost.find("status")->string(), "error");
    EXPECT_EQ(ghost.find("id")->string(), "ghost");
    EXPECT_EQ(ghost.find("error")->find("code")->string(),
              errorCodeName(ErrorCode::NotFound));
    EXPECT_EQ(ghost.find("error")->find("class")->string(),
              failureClassName(failureClass(ErrorCode::NotFound)));

    // A bad neighbour never poisons the healthy request beside it.
    const JsonValue fine =
        JsonValue::parse(session.responses[2]).orFatal();
    EXPECT_EQ(fine.find("status")->string(), "ok");
    EXPECT_EQ(fine.find("id")->string(), "fine");
    EXPECT_EQ(daemon->stats().responsesError, 2u);
}

TEST(DaemonTest, ControlFramesPingAndShutdown)
{
    auto daemon = memoryDaemon();
    const Session session = runSession(
        *daemon,
        {"{\"schema\":\"mlpsim-sweep-control-v1\",\"command\":"
         "\"ping\"}",
         "{\"schema\":\"mlpsim-sweep-control-v1\",\"command\":"
         "\"shutdown\"}"});
    ASSERT_TRUE(session.served.ok()) << session.served.toString();
    EXPECT_TRUE(daemon->shutdownRequested());

    bool pong = false, bye = false;
    for (const JsonValue &event : session.events) {
        pong = pong || event.find("event")->string() == "pong";
        bye = bye || event.find("event")->string() == "bye";
    }
    EXPECT_TRUE(pong);
    EXPECT_TRUE(bye);
}

TEST(DaemonTest, NoEventsModeEmitsOnlyResponses)
{
    DaemonConfig config;
    config.jobs = 2;
    config.emitEvents = false;
    auto daemon = Daemon::create(config);
    ASSERT_TRUE(daemon.ok()) << daemon.status().toString();

    const Session session = runSession(
        **daemon, {requestPayload("quiet", "database", "{}")});
    ASSERT_TRUE(session.served.ok()) << session.served.toString();
    EXPECT_EQ(session.responses.size(), 1u);
    EXPECT_TRUE(session.events.empty());
    EXPECT_EQ(session.frames.size(), session.responses.size());
}

} // namespace
} // namespace mlpsim::service
