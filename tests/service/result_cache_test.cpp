/**
 * @file
 * ResultCache tests: the persistent (cell key → MlpResult) tier of the
 * sweep service. Covers the memory-only mode, replay-on-reopen (a
 * restarted daemon starts warm), bit-exact round trips through the
 * storage form, and salvage of a log whose tail a crash tore — the
 * exact file state mlpsimd --kill-after leaves behind.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "core/result_json.hh"
#include "service/result_cache.hh"
#include "util/recordio.hh"

namespace mlpsim::service {
namespace {

std::string
tempPath(const std::string &tag)
{
    const std::string path =
        ::testing::TempDir() + "mlpsim_result_cache_" + tag + ".rec";
    std::remove(path.c_str());
    return path;
}

core::MlpResult
sampleResult(uint64_t salt)
{
    core::MlpResult result;
    result.epochs = 40 + salt;
    result.usefulAccesses = 100 + 3 * salt;
    result.dmissAccesses = 80 + salt;
    result.imissAccesses = 15 + salt;
    result.pmissAccesses = 5 + salt;
    result.measuredInsts = 10000;
    result.inhibitors.record(core::Inhibitor::Maxwin);
    result.inhibitors.record(core::Inhibitor::MispredBr);
    result.accessesPerEpoch.add(1, 10 + salt);
    result.accessesPerEpoch.add(4, 30);
    return result;
}

std::string
dumpOf(const core::MlpResult &result)
{
    return core::resultToJson(result).dump(0);
}

TEST(ResultCacheTest, MemoryOnlyRecordAndLookup)
{
    ResultCache cache;
    EXPECT_FALSE(cache.persistent());
    EXPECT_EQ(cache.size(), 0u);

    const core::MlpResult stored = sampleResult(1);
    ASSERT_TRUE(cache.record("cell-a", stored).ok());
    EXPECT_EQ(cache.size(), 1u);

    core::MlpResult loaded;
    ASSERT_TRUE(cache.lookup("cell-a", &loaded));
    EXPECT_EQ(dumpOf(loaded), dumpOf(stored));
    EXPECT_FALSE(cache.lookup("cell-b", &loaded));
}

TEST(ResultCacheTest, DuplicateRecordIsIdempotent)
{
    ResultCache cache;
    ASSERT_TRUE(cache.record("cell-a", sampleResult(1)).ok());
    ASSERT_TRUE(cache.record("cell-a", sampleResult(2)).ok());
    EXPECT_EQ(cache.size(), 1u);

    // First write wins: a cell's result is immutable once recorded.
    core::MlpResult loaded;
    ASSERT_TRUE(cache.lookup("cell-a", &loaded));
    EXPECT_EQ(dumpOf(loaded), dumpOf(sampleResult(1)));
}

TEST(ResultCacheTest, ReopenReplaysEveryRecord)
{
    const std::string path = tempPath("reopen");
    {
        auto cache = ResultCache::open(path);
        ASSERT_TRUE(cache.ok()) << cache.status().toString();
        EXPECT_TRUE(cache->persistent());
        EXPECT_FALSE(cache->salvaged());
        ASSERT_TRUE(cache->record("cell-a", sampleResult(1)).ok());
        ASSERT_TRUE(cache->record("cell-b", sampleResult(2)).ok());
    }
    auto warm = ResultCache::open(path);
    ASSERT_TRUE(warm.ok()) << warm.status().toString();
    EXPECT_EQ(warm->size(), 2u);
    EXPECT_FALSE(warm->salvaged());

    core::MlpResult loaded;
    ASSERT_TRUE(warm->lookup("cell-a", &loaded));
    EXPECT_EQ(dumpOf(loaded), dumpOf(sampleResult(1)));
    ASSERT_TRUE(warm->lookup("cell-b", &loaded));
    EXPECT_EQ(dumpOf(loaded), dumpOf(sampleResult(2)));
}

TEST(ResultCacheTest, TornTailIsSalvagedAndAppendable)
{
    const std::string path = tempPath("torn");
    {
        auto cache = ResultCache::open(path);
        ASSERT_TRUE(cache.ok()) << cache.status().toString();
        ASSERT_TRUE(cache->record("cell-a", sampleResult(1)).ok());
        ASSERT_TRUE(cache->record("cell-b", sampleResult(2)).ok());
    }
    {
        // A crash mid-append: a length word promising more bytes than
        // the file holds (what --kill-after injects deliberately).
        std::ofstream out(path, std::ios::binary | std::ios::app);
        const char torn[] = {'\xe8', '\x03', '\x00', '\x00',
                             '\xde', '\xad', '\xbe', '\xef'};
        out.write(torn, sizeof(torn));
    }
    auto salvaged = ResultCache::open(path);
    ASSERT_TRUE(salvaged.ok()) << salvaged.status().toString();
    EXPECT_TRUE(salvaged->salvaged());
    EXPECT_EQ(salvaged->size(), 2u);

    core::MlpResult loaded;
    ASSERT_TRUE(salvaged->lookup("cell-a", &loaded));
    EXPECT_EQ(dumpOf(loaded), dumpOf(sampleResult(1)));

    // The salvaged log accepts new appends and replays them next open.
    ASSERT_TRUE(salvaged->record("cell-c", sampleResult(3)).ok());
    auto again = ResultCache::open(path);
    ASSERT_TRUE(again.ok()) << again.status().toString();
    EXPECT_EQ(again->size(), 3u);
    EXPECT_FALSE(again->salvaged());
    ASSERT_TRUE(again->lookup("cell-c", &loaded));
    EXPECT_EQ(dumpOf(loaded), dumpOf(sampleResult(3)));
}

/** Append a torn frame (a length word promising more bytes than the
 *  file holds) — the state a kill mid-append leaves behind. */
void
tearTail(const std::string &path)
{
    std::ofstream out(path, std::ios::binary | std::ios::app);
    const char torn[] = {'\xe8', '\x03', '\x00', '\x00',
                         '\xde', '\xad', '\xbe', '\xef'};
    out.write(torn, sizeof(torn));
}

TEST(ResultCacheTest, OpenCompactsDuplicateAndDeadRecords)
{
    const std::string path = tempPath("compact");
    {
        // Hand-build a log with frames ResultCache::record() would
        // never produce itself: a duplicate key and an unparseable
        // payload (CRC-valid junk, e.g. from a writer bug).
        auto log = RecordLog::open(path, "mlpsim-result-cache-v1");
        ASSERT_TRUE(log.ok()) << log.status().toString();
        ASSERT_TRUE(log->append(core::resultRecordToJson(
                                    "cell-a", sampleResult(1))
                                    .dump(0))
                        .ok());
        ASSERT_TRUE(log->append("this is not a json record").ok());
        ASSERT_TRUE(log->append(core::resultRecordToJson(
                                    "cell-a", sampleResult(2))
                                    .dump(0))
                        .ok());
        ASSERT_TRUE(log->append(core::resultRecordToJson(
                                    "cell-b", sampleResult(3))
                                    .dump(0))
                        .ok());
    }
    auto cache = ResultCache::open(path);
    ASSERT_TRUE(cache.ok()) << cache.status().toString();
    EXPECT_TRUE(cache->compacted());
    EXPECT_EQ(cache->size(), 2u);

    // Replay semantics are last-record-wins; compaction must keep
    // exactly that entry.
    core::MlpResult loaded;
    ASSERT_TRUE(cache->lookup("cell-a", &loaded));
    EXPECT_EQ(dumpOf(loaded), dumpOf(sampleResult(2)));

    // On disk: one frame per distinct key, nothing else.
    auto contents = readRecordFile(path);
    ASSERT_TRUE(contents.ok()) << contents.status().toString();
    EXPECT_FALSE(contents->truncated);
    EXPECT_EQ(contents->records.size(), 2u);

    // A clean log does not get rewritten again.
    auto again = ResultCache::open(path);
    ASSERT_TRUE(again.ok()) << again.status().toString();
    EXPECT_FALSE(again->compacted());
    EXPECT_EQ(again->size(), 2u);
}

TEST(ResultCacheTest, RepeatedKillCyclesNeverGrowTheLog)
{
    const std::string path = tempPath("killcycles");
    {
        auto cache = ResultCache::open(path);
        ASSERT_TRUE(cache.ok()) << cache.status().toString();
        ASSERT_TRUE(cache->record("cell-a", sampleResult(1)).ok());
        ASSERT_TRUE(cache->record("cell-b", sampleResult(2)).ok());
    }
    // Crash/restart loop (what repeated mlpsimd --kill-after runs do):
    // every cycle tears the tail, every reopen salvages + compacts,
    // and the steady state is exactly one frame per key — the log
    // must not accrete dead bytes across cycles.
    for (int cycle = 0; cycle < 5; ++cycle) {
        tearTail(path);
        auto cache = ResultCache::open(path);
        ASSERT_TRUE(cache.ok()) << cache.status().toString();
        EXPECT_TRUE(cache->salvaged()) << "cycle " << cycle;
        EXPECT_TRUE(cache->compacted()) << "cycle " << cycle;
        EXPECT_EQ(cache->size(), 2u) << "cycle " << cycle;

        core::MlpResult loaded;
        ASSERT_TRUE(cache->lookup("cell-a", &loaded));
        EXPECT_EQ(dumpOf(loaded), dumpOf(sampleResult(1)));

        auto contents = readRecordFile(path);
        ASSERT_TRUE(contents.ok()) << contents.status().toString();
        EXPECT_FALSE(contents->truncated);
        EXPECT_EQ(contents->records.size(), 2u) << "cycle " << cycle;
    }
}

} // namespace
} // namespace mlpsim::service
