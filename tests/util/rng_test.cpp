/** @file Deterministic RNG behaviour and distribution sanity. */
#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hh"

namespace mlpsim::test {

TEST(SplitMix64, IsDeterministic)
{
    EXPECT_EQ(splitMix64(0), splitMix64(0));
    EXPECT_EQ(splitMix64(42), splitMix64(42));
    EXPECT_NE(splitMix64(0), splitMix64(1));
}

TEST(SplitMix64, MixesNearbyInputs)
{
    int total_flips = 0;
    for (uint64_t i = 0; i < 64; ++i)
        total_flips += __builtin_popcountll(splitMix64(i) ^
                                            splitMix64(i + 1));
    EXPECT_GT(total_flips / 64, 20);
}

TEST(Rng, SameSeedSameStream)
{
    Rng a(7), b(7);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDifferentStreams)
{
    Rng a(7), b(8);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += (a() == b());
    EXPECT_LT(equal, 2);
}

TEST(Rng, ReseedRestartsStream)
{
    Rng a(123);
    std::vector<uint64_t> first;
    for (int i = 0; i < 16; ++i)
        first.push_back(a());
    a.reseed(123);
    for (int i = 0; i < 16; ++i)
        ASSERT_EQ(a(), first[size_t(i)]);
}

TEST(Rng, BelowStaysInBounds)
{
    Rng r(1);
    for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
        for (int i = 0; i < 200; ++i)
            ASSERT_LT(r.below(bound), bound);
    }
}

TEST(Rng, BelowCoversRange)
{
    Rng r(2);
    std::vector<int> seen(8, 0);
    for (int i = 0; i < 4000; ++i)
        ++seen[r.below(8)];
    for (int count : seen)
        EXPECT_GT(count, 300);
}

TEST(Rng, RangeInclusive)
{
    Rng r(3);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const uint64_t v = r.range(5, 8);
        ASSERT_GE(v, 5u);
        ASSERT_LE(v, 8u);
        saw_lo |= v == 5;
        saw_hi |= v == 8;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIsInUnitInterval)
{
    Rng r(4);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes)
{
    Rng r(5);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng r(6);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += r.chance(0.3);
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, GeometricIsPositiveWithRoughMean)
{
    Rng r(7);
    double sum = 0;
    for (int i = 0; i < 5000; ++i) {
        const uint64_t v = r.geometric(8.0);
        ASSERT_GE(v, 1u);
        sum += double(v);
    }
    EXPECT_NEAR(sum / 5000, 8.0, 1.2);
}

TEST(Rng, GeometricDegenerateMean)
{
    Rng r(8);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(r.geometric(0.5), 1u);
}

class ZipfSkewTest : public ::testing::TestWithParam<double>
{
};

TEST_P(ZipfSkewTest, StaysInRangeAndIsHeadHeavy)
{
    const double s = GetParam();
    Rng r(uint64_t(s * 1000));
    constexpr uint64_t n = 1000;
    uint64_t head = 0;
    for (int i = 0; i < 20000; ++i) {
        const uint64_t v = r.zipf(n, s);
        ASSERT_LT(v, n);
        head += (v < n / 10);
    }
    // Skewed draws put far more than 10% of the mass in the first
    // decile.
    EXPECT_GT(head, 20000u / 10 + 2000);
}

INSTANTIATE_TEST_SUITE_P(Skews, ZipfSkewTest,
                         ::testing::Values(0.6, 0.8, 1.0, 1.2, 1.5));

TEST(Rng, ZipfMoreSkewMoreHead)
{
    Rng a(10), b(10);
    constexpr uint64_t n = 4096;
    uint64_t head_low = 0, head_high = 0;
    for (int i = 0; i < 20000; ++i) {
        head_low += (a.zipf(n, 0.6) < 32);
        head_high += (b.zipf(n, 1.4) < 32);
    }
    EXPECT_GT(head_high, head_low);
}

} // namespace mlpsim::test
