/** @file Command-line option parsing. */
#include <gtest/gtest.h>

#include <cstdlib>

#include "util/options.hh"

namespace mlpsim::test {

namespace {

Options
parse(std::vector<std::string> args)
{
    std::vector<char *> argv;
    static std::vector<std::string> storage;
    storage = std::move(args);
    argv.push_back(const_cast<char *>("prog"));
    for (auto &s : storage)
        argv.push_back(const_cast<char *>(s.c_str()));
    return Options(int(argv.size()), argv.data());
}

} // namespace

TEST(Options, EqualsForm)
{
    auto o = parse({"--insts=500"});
    EXPECT_TRUE(o.has("insts"));
    EXPECT_EQ(o.getU64("insts", 0), 500u);
}

TEST(Options, SpaceForm)
{
    auto o = parse({"--workload", "database"});
    EXPECT_EQ(o.getString("workload", ""), "database");
}

TEST(Options, FlagWithoutValueDefaultsToOne)
{
    auto o = parse({"--verbose"});
    EXPECT_TRUE(o.has("verbose"));
    EXPECT_EQ(o.getU64("verbose", 0), 1u);
}

TEST(Options, MissingUsesDefault)
{
    auto o = parse({});
    EXPECT_FALSE(o.has("nothing"));
    EXPECT_EQ(o.getU64("nothing", 7), 7u);
    EXPECT_EQ(o.getString("nothing", "x"), "x");
    EXPECT_DOUBLE_EQ(o.getDouble("nothing", 1.5), 1.5);
}

TEST(Options, DoubleParsing)
{
    auto o = parse({"--ratio=0.25"});
    EXPECT_DOUBLE_EQ(o.getDouble("ratio", 0), 0.25);
}

TEST(Options, ScaledInstsUsesEnvScale)
{
    setenv("MLPSIM_SCALE", "0.5", 1);
    auto o = parse({});
    EXPECT_EQ(o.scaledInsts("insts", 1000), 500u);
    unsetenv("MLPSIM_SCALE");
}

TEST(Options, ExplicitValueOverridesScale)
{
    setenv("MLPSIM_SCALE", "0.5", 1);
    auto o = parse({"--insts=300"});
    EXPECT_EQ(o.scaledInsts("insts", 1000), 300u);
    unsetenv("MLPSIM_SCALE");
}

TEST(OptionsDeath, PositionalArgumentIsFatal)
{
    EXPECT_EXIT(parse({"oops"}), ::testing::ExitedWithCode(1),
                "positional");
}

TEST(OptionsDeath, BadScaleIsFatal)
{
    setenv("MLPSIM_SCALE", "-1", 1);
    EXPECT_EXIT(parse({}), ::testing::ExitedWithCode(1), "positive");
    unsetenv("MLPSIM_SCALE");
}

} // namespace mlpsim::test
