/** @file Command-line option parsing. */
#include <gtest/gtest.h>

#include <cstdlib>

#include "util/options.hh"

namespace mlpsim::test {

namespace {

Options
parse(std::vector<std::string> args)
{
    std::vector<char *> argv;
    static std::vector<std::string> storage;
    storage = std::move(args);
    argv.push_back(const_cast<char *>("prog"));
    for (auto &s : storage)
        argv.push_back(const_cast<char *>(s.c_str()));
    return Options(int(argv.size()), argv.data());
}

Expected<Options>
tryParse(std::vector<std::string> args)
{
    std::vector<char *> argv;
    static std::vector<std::string> storage;
    storage = std::move(args);
    argv.push_back(const_cast<char *>("prog"));
    for (auto &s : storage)
        argv.push_back(const_cast<char *>(s.c_str()));
    return Options::parse(int(argv.size()), argv.data());
}

} // namespace

TEST(Options, EqualsForm)
{
    auto o = parse({"--insts=500"});
    EXPECT_TRUE(o.has("insts"));
    EXPECT_EQ(o.getU64("insts", 0), 500u);
}

TEST(Options, SpaceForm)
{
    auto o = parse({"--workload", "database"});
    EXPECT_EQ(o.getString("workload", ""), "database");
}

TEST(Options, FlagWithoutValueDefaultsToOne)
{
    auto o = parse({"--verbose"});
    EXPECT_TRUE(o.has("verbose"));
    EXPECT_EQ(o.getU64("verbose", 0), 1u);
}

TEST(Options, MissingUsesDefault)
{
    auto o = parse({});
    EXPECT_FALSE(o.has("nothing"));
    EXPECT_EQ(o.getU64("nothing", 7), 7u);
    EXPECT_EQ(o.getString("nothing", "x"), "x");
    EXPECT_DOUBLE_EQ(o.getDouble("nothing", 1.5), 1.5);
}

TEST(Options, DoubleParsing)
{
    auto o = parse({"--ratio=0.25"});
    EXPECT_DOUBLE_EQ(o.getDouble("ratio", 0), 0.25);
}

TEST(Options, ScaledInstsUsesEnvScale)
{
    setenv("MLPSIM_SCALE", "0.5", 1);
    auto o = parse({});
    EXPECT_EQ(o.scaledInsts("insts", 1000), 500u);
    unsetenv("MLPSIM_SCALE");
}

TEST(Options, ExplicitValueOverridesScale)
{
    setenv("MLPSIM_SCALE", "0.5", 1);
    auto o = parse({"--insts=300"});
    EXPECT_EQ(o.scaledInsts("insts", 1000), 300u);
    unsetenv("MLPSIM_SCALE");
}

TEST(Options, MalformedNumericIsAStatusError)
{
    auto o = parse({"--insts=12x", "--ratio=fast", "--neg=-3"});
    const auto insts = o.tryGetU64("insts", 0);
    ASSERT_FALSE(insts.ok());
    EXPECT_EQ(insts.status().code(), ErrorCode::InvalidArgument);
    EXPECT_NE(insts.status().message().find("--insts"),
              std::string::npos);
    EXPECT_FALSE(o.tryGetDouble("ratio", 0).ok());
    EXPECT_FALSE(o.tryGetU64("neg", 0).ok());
}

TEST(Options, NumericOverflowIsOutOfRange)
{
    auto o = parse({"--insts=99999999999999999999999"});
    const auto insts = o.tryGetU64("insts", 0);
    ASSERT_FALSE(insts.ok());
    EXPECT_EQ(insts.status().code(), ErrorCode::OutOfRange);
}

TEST(Options, TryGettersReturnDefaultWhenAbsent)
{
    auto o = parse({});
    const auto u = o.tryGetU64("missing", 42);
    ASSERT_TRUE(u.ok());
    EXPECT_EQ(*u, 42u);
    const auto d = o.tryGetDouble("missing", 2.5);
    ASSERT_TRUE(d.ok());
    EXPECT_DOUBLE_EQ(*d, 2.5);
}

TEST(Options, CheckKnownDiagnosesTypos)
{
    auto o = parse({"--instz=100", "--workload=database"});
    const Status st = o.checkKnown({"insts", "workload", "warmup"});
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.message().find("--instz"), std::string::npos);
    EXPECT_NE(st.message().find("--insts"), std::string::npos);

    auto good = parse({"--insts=100", "--workload=database"});
    EXPECT_TRUE(good.checkKnown({"insts", "workload", "warmup"}).ok());
}

TEST(Options, ParseStatusApiReportsErrors)
{
    const auto positional = tryParse({"oops"});
    ASSERT_FALSE(positional.ok());
    EXPECT_EQ(positional.status().code(), ErrorCode::InvalidArgument);

    const auto empty_name = tryParse({"--=5"});
    ASSERT_FALSE(empty_name.ok());
    EXPECT_NE(empty_name.status().message().find("empty flag name"),
              std::string::npos);
}

TEST(OptionsDeath, PositionalArgumentIsFatal)
{
    EXPECT_EXIT(parse({"oops"}), ::testing::ExitedWithCode(1),
                "positional");
}

TEST(OptionsDeath, BadScaleIsFatal)
{
    setenv("MLPSIM_SCALE", "-1", 1);
    EXPECT_EXIT(parse({}), ::testing::ExitedWithCode(1), "positive");
    unsetenv("MLPSIM_SCALE");
}

TEST(OptionsDeath, ZeroScaleIsFatal)
{
    setenv("MLPSIM_SCALE", "0", 1);
    EXPECT_EXIT(parse({}), ::testing::ExitedWithCode(1), "positive");
    unsetenv("MLPSIM_SCALE");
}

TEST(OptionsDeath, MalformedScaleIsFatal)
{
    setenv("MLPSIM_SCALE", "fast", 1);
    EXPECT_EXIT(parse({}), ::testing::ExitedWithCode(1),
                "MLPSIM_SCALE");
    unsetenv("MLPSIM_SCALE");
}

TEST(OptionsDeath, MalformedNumericIsFatal)
{
    EXPECT_EXIT(parse({"--insts=12x"}).getU64("insts", 0),
                ::testing::ExitedWithCode(1),
                "not an unsigned integer");
}

TEST(OptionsDeath, UnknownFlagIsFatal)
{
    EXPECT_EXIT(parse({"--instz=5"}).rejectUnknown({"insts"}),
                ::testing::ExitedWithCode(1), "unknown flag");
}

} // namespace mlpsim::test
