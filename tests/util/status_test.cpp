/** @file Recoverable-error layer: Status, Expected and the macros. */
#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "util/status.hh"

namespace mlpsim::test {

TEST(Status, OkIsOk)
{
    const Status ok = Status::okStatus();
    EXPECT_TRUE(ok.ok());
    EXPECT_EQ(ok.code(), ErrorCode::Ok);
    EXPECT_EQ(ok.toString(), "ok");
}

TEST(Status, FactoriesFormatVariadicMessages)
{
    const Status st = Status::invalidArgument("got ", 42, " of ", 7);
    EXPECT_FALSE(st.ok());
    EXPECT_EQ(st.code(), ErrorCode::InvalidArgument);
    EXPECT_EQ(st.message(), "got 42 of 7");
    EXPECT_NE(st.toString().find("invalid argument"),
              std::string::npos);
}

TEST(Status, ContextChainsOutsideIn)
{
    Status st = Status::dataLoss("bad byte");
    st = std::move(st).withContext("record ", 3);
    st = std::move(st).withContext("reading 'x.trace'");
    EXPECT_EQ(st.message(), "reading 'x.trace': record 3: bad byte");
    EXPECT_EQ(st.code(), ErrorCode::DataLoss);
}

TEST(Status, EveryCodeHasAName)
{
    for (ErrorCode code : {ErrorCode::InvalidArgument,
                           ErrorCode::NotFound, ErrorCode::DataLoss,
                           ErrorCode::OutOfRange, ErrorCode::IoError,
                           ErrorCode::FailedPrecondition,
                           ErrorCode::Internal}) {
        EXPECT_STRNE(errorCodeName(code), "");
    }
}

TEST(Expected, HoldsValueOrStatus)
{
    Expected<int> good = 7;
    ASSERT_TRUE(good.ok());
    EXPECT_EQ(*good, 7);
    EXPECT_EQ(good.valueOr(9), 7);

    Expected<int> bad = Status::notFound("nope");
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.valueOr(9), 9);
    EXPECT_EQ(bad.status().code(), ErrorCode::NotFound);
}

TEST(Expected, MovesValueOut)
{
    Expected<std::string> s = std::string(100, 'x');
    const std::string moved = *std::move(s);
    EXPECT_EQ(moved.size(), 100u);
}

TEST(Expected, ContextWrapsTheError)
{
    Expected<int> bad = Status::ioError("short read");
    const auto wrapped = std::move(bad).withContext("loading");
    ASSERT_FALSE(wrapped.ok());
    EXPECT_EQ(wrapped.status().message(), "loading: short read");
}

namespace {

Status
failsThrough()
{
    MLPSIM_RETURN_IF_ERROR(Status::internal("inner failure"));
    return Status::okStatus();
}

Expected<int>
doublesOrFails(Expected<int> input)
{
    MLPSIM_ASSIGN_OR_RETURN(const int v, std::move(input));
    return 2 * v;
}

} // namespace

TEST(StatusMacros, ReturnIfErrorPropagates)
{
    const Status st = failsThrough();
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), ErrorCode::Internal);
}

TEST(StatusMacros, AssignOrReturnUnwrapsAndPropagates)
{
    const auto good = doublesOrFails(21);
    ASSERT_TRUE(good.ok());
    EXPECT_EQ(*good, 42);

    const auto bad = doublesOrFails(Status::outOfRange("too big"));
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.status().code(), ErrorCode::OutOfRange);
}

TEST(StatusDeath, OrFatalTerminatesWithMessage)
{
    EXPECT_EXIT(Status::invalidArgument("boom detail").orFatal(),
                ::testing::ExitedWithCode(1), "boom detail");
    Expected<int> bad = Status::ioError("disk detail");
    EXPECT_EXIT(std::move(bad).orFatal(),
                ::testing::ExitedWithCode(1), "disk detail");
}

} // namespace mlpsim::test
