/** @file Statistics accumulators: RunningStat, Histogram, CDF helper. */
#include <gtest/gtest.h>

#include <cmath>

#include "util/stats.hh"

namespace mlpsim::test {

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(RunningStat, SingleSample)
{
    RunningStat s;
    s.add(5.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 5.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStat, KnownMeanAndVariance)
{
    RunningStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12); // sample variance
    EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, ResetClearsEverything)
{
    RunningStat s;
    s.add(1.0);
    s.add(2.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(RunningStat, NegativeValues)
{
    RunningStat s;
    s.add(-3.0);
    s.add(3.0);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), -3.0);
    EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(Histogram, EmptyBehaviour)
{
    Histogram h;
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.cdfAt(100), 0.0);
    EXPECT_EQ(h.quantile(0.5), 0u);
}

TEST(Histogram, MeanAndCdf)
{
    Histogram h;
    h.add(1);
    h.add(2);
    h.add(3);
    h.add(10);
    EXPECT_EQ(h.samples(), 4u);
    EXPECT_DOUBLE_EQ(h.mean(), 4.0);
    EXPECT_DOUBLE_EQ(h.cdfAt(0), 0.0);
    EXPECT_DOUBLE_EQ(h.cdfAt(1), 0.25);
    EXPECT_DOUBLE_EQ(h.cdfAt(3), 0.75);
    EXPECT_DOUBLE_EQ(h.cdfAt(10), 1.0);
    EXPECT_DOUBLE_EQ(h.cdfAt(10000), 1.0);
}

TEST(Histogram, WeightedAdd)
{
    Histogram h;
    h.add(4, 3);
    h.add(8, 1);
    EXPECT_EQ(h.samples(), 4u);
    EXPECT_DOUBLE_EQ(h.mean(), 5.0);
    EXPECT_DOUBLE_EQ(h.cdfAt(4), 0.75);
}

TEST(Histogram, Quantiles)
{
    Histogram h;
    for (uint64_t i = 1; i <= 100; ++i)
        h.add(i);
    EXPECT_EQ(h.quantile(0.01), 1u);
    EXPECT_EQ(h.quantile(0.5), 50u);
    EXPECT_EQ(h.quantile(1.0), 100u);
}

TEST(Histogram, QuantileEdgeCases)
{
    Histogram h;
    // Empty histogram: defined as 0 for every fraction.
    EXPECT_EQ(h.quantile(0.0), 0u);
    EXPECT_EQ(h.quantile(0.5), 0u);
    EXPECT_EQ(h.quantile(1.0), 0u);

    h.add(3, 2);
    h.add(7, 5);
    h.add(40);
    EXPECT_EQ(h.minKey(), 3u);
    EXPECT_EQ(h.maxKey(), 40u);
    EXPECT_EQ(h.quantile(0.0), 3u);  // q = 0 is the smallest key
    EXPECT_EQ(h.quantile(1.0), 40u); // q = 1 is the largest key
    // Tiny but non-zero fractions land on the first bucket.
    EXPECT_EQ(h.quantile(1e-12), 3u);
    // Fractions just under 1 land on the last non-empty step.
    EXPECT_EQ(h.quantile(0.875), 7u);
    EXPECT_EQ(h.quantile(0.876), 40u);
}

TEST(Histogram, QuantileRejectsOutOfRangeFractions)
{
    Histogram h;
    h.add(1);
    EXPECT_DEATH({ (void)h.quantile(-0.1); }, "outside");
    EXPECT_DEATH({ (void)h.quantile(1.5); }, "outside");
}

TEST(Histogram, MinMaxKeyRequireSamples)
{
    Histogram h;
    EXPECT_DEATH({ (void)h.minKey(); }, "empty");
    EXPECT_DEATH({ (void)h.maxKey(); }, "empty");
}

TEST(Histogram, MergeMatchesSerialAccumulation)
{
    Histogram a, b, serial;
    for (uint64_t i = 1; i <= 10; ++i) {
        a.add(i, i);
        serial.add(i, i);
    }
    for (uint64_t i = 5; i <= 15; ++i) {
        b.add(i, 2);
        serial.add(i, 2);
    }
    a.merge(b);
    EXPECT_EQ(a.samples(), serial.samples());
    EXPECT_DOUBLE_EQ(a.mean(), serial.mean());
    EXPECT_EQ(a.buckets(), serial.buckets());

    // Merging an empty histogram (either way) is a no-op.
    Histogram empty;
    a.merge(empty);
    EXPECT_EQ(a.buckets(), serial.buckets());
    empty.merge(a);
    EXPECT_EQ(empty.buckets(), serial.buckets());
}

TEST(RunningStat, MergeMatchesSerialAccumulation)
{
    RunningStat a, b, serial;
    for (double x : {2.0, 4.0, 4.0, 4.0}) {
        a.add(x);
        serial.add(x);
    }
    for (double x : {5.0, 5.0, 7.0, 9.0}) {
        b.add(x);
        serial.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), serial.count());
    EXPECT_DOUBLE_EQ(a.mean(), serial.mean());
    EXPECT_NEAR(a.variance(), serial.variance(), 1e-12);
    EXPECT_DOUBLE_EQ(a.min(), serial.min());
    EXPECT_DOUBLE_EQ(a.max(), serial.max());
    EXPECT_DOUBLE_EQ(a.sum(), serial.sum());

    RunningStat empty;
    a.merge(empty);
    EXPECT_EQ(a.count(), serial.count());
    EXPECT_DOUBLE_EQ(a.mean(), serial.mean());
    empty.merge(a);
    EXPECT_EQ(empty.count(), serial.count());
    EXPECT_DOUBLE_EQ(empty.mean(), serial.mean());
}

TEST(Histogram, ResetClears)
{
    Histogram h;
    h.add(7);
    h.reset();
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_TRUE(h.buckets().empty());
}

TEST(UniformInterMissCdf, LimitsAndMonotonicity)
{
    EXPECT_DOUBLE_EQ(uniformInterMissCdf(0.0, 10.0), 1.0);
    EXPECT_NEAR(uniformInterMissCdf(100.0, 0.0), 0.0, 1e-12);
    double prev = 0.0;
    for (double d = 1; d <= 4096; d *= 2) {
        const double c = uniformInterMissCdf(100.0, d);
        EXPECT_GE(c, prev);
        EXPECT_LE(c, 1.0);
        prev = c;
    }
    // Exponential with mean 100: CDF at 100 is 1 - 1/e.
    EXPECT_NEAR(uniformInterMissCdf(100.0, 100.0), 1.0 - std::exp(-1.0),
                1e-12);
}

} // namespace mlpsim::test
