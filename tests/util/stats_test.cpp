/** @file Statistics accumulators: RunningStat, Histogram, CDF helper. */
#include <gtest/gtest.h>

#include <cmath>

#include "util/stats.hh"

namespace mlpsim::test {

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(RunningStat, SingleSample)
{
    RunningStat s;
    s.add(5.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 5.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStat, KnownMeanAndVariance)
{
    RunningStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12); // sample variance
    EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, ResetClearsEverything)
{
    RunningStat s;
    s.add(1.0);
    s.add(2.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(RunningStat, NegativeValues)
{
    RunningStat s;
    s.add(-3.0);
    s.add(3.0);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), -3.0);
    EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(Histogram, EmptyBehaviour)
{
    Histogram h;
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.cdfAt(100), 0.0);
    EXPECT_EQ(h.quantile(0.5), 0u);
}

TEST(Histogram, MeanAndCdf)
{
    Histogram h;
    h.add(1);
    h.add(2);
    h.add(3);
    h.add(10);
    EXPECT_EQ(h.samples(), 4u);
    EXPECT_DOUBLE_EQ(h.mean(), 4.0);
    EXPECT_DOUBLE_EQ(h.cdfAt(0), 0.0);
    EXPECT_DOUBLE_EQ(h.cdfAt(1), 0.25);
    EXPECT_DOUBLE_EQ(h.cdfAt(3), 0.75);
    EXPECT_DOUBLE_EQ(h.cdfAt(10), 1.0);
    EXPECT_DOUBLE_EQ(h.cdfAt(10000), 1.0);
}

TEST(Histogram, WeightedAdd)
{
    Histogram h;
    h.add(4, 3);
    h.add(8, 1);
    EXPECT_EQ(h.samples(), 4u);
    EXPECT_DOUBLE_EQ(h.mean(), 5.0);
    EXPECT_DOUBLE_EQ(h.cdfAt(4), 0.75);
}

TEST(Histogram, Quantiles)
{
    Histogram h;
    for (uint64_t i = 1; i <= 100; ++i)
        h.add(i);
    EXPECT_EQ(h.quantile(0.01), 1u);
    EXPECT_EQ(h.quantile(0.5), 50u);
    EXPECT_EQ(h.quantile(1.0), 100u);
}

TEST(Histogram, ResetClears)
{
    Histogram h;
    h.add(7);
    h.reset();
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_TRUE(h.buckets().empty());
}

TEST(UniformInterMissCdf, LimitsAndMonotonicity)
{
    EXPECT_DOUBLE_EQ(uniformInterMissCdf(0.0, 10.0), 1.0);
    EXPECT_NEAR(uniformInterMissCdf(100.0, 0.0), 0.0, 1e-12);
    double prev = 0.0;
    for (double d = 1; d <= 4096; d *= 2) {
        const double c = uniformInterMissCdf(100.0, d);
        EXPECT_GE(c, prev);
        EXPECT_LE(c, 1.0);
        prev = c;
    }
    // Exponential with mean 100: CDF at 100 is 1 - 1/e.
    EXPECT_NEAR(uniformInterMissCdf(100.0, 100.0), 1.0 - std::exp(-1.0),
                1e-12);
}

} // namespace mlpsim::test
