#include <gtest/gtest.h>

#include "util/bitvec.hh"

namespace {

using mlpsim::util::BitVector;
using mlpsim::util::PackedEnumVector;

TEST(BitVector, StartsCleared)
{
    BitVector v;
    v.assign(130, false);
    EXPECT_EQ(v.size(), 130u);
    EXPECT_FALSE(v.empty());
    for (size_t i = 0; i < v.size(); ++i)
        EXPECT_FALSE(v.test(i)) << i;
}

TEST(BitVector, AssignTrueSetsEveryBit)
{
    BitVector v;
    v.assign(70, true);
    for (size_t i = 0; i < v.size(); ++i)
        EXPECT_TRUE(v[i]) << i;
}

TEST(BitVector, SetResetAndProxyWrites)
{
    BitVector v;
    v.assign(200, false);
    v.set(0);
    v.set(63);
    v.set(64);
    v[199] = 1; // the vector<uint8_t>-style spelling tests use
    EXPECT_TRUE(v.test(0));
    EXPECT_TRUE(v.test(63));
    EXPECT_TRUE(v.test(64));
    EXPECT_TRUE(v.test(199));
    EXPECT_FALSE(v.test(1));
    EXPECT_FALSE(v.test(65));

    v.reset(63);
    EXPECT_FALSE(v.test(63));
    EXPECT_TRUE(v.test(64)); // neighbours untouched

    v[64] = false;
    EXPECT_FALSE(v.test(64));
}

TEST(BitVector, ReassignClearsOldContents)
{
    BitVector v;
    v.assign(64, true);
    v.assign(64, false);
    for (size_t i = 0; i < 64; ++i)
        EXPECT_FALSE(v.test(i)) << i;
}

enum class Quad : uint8_t { Zero, One, Two, Three };

TEST(PackedEnumVector, AssignFillsEveryElement)
{
    PackedEnumVector<Quad, 2> v;
    v.assign(100, Quad::Two);
    EXPECT_EQ(v.size(), 100u);
    const auto &cv = v;
    for (size_t i = 0; i < v.size(); ++i)
        EXPECT_EQ(cv[i], Quad::Two) << i;
}

TEST(PackedEnumVector, ProxyWritesDoNotDisturbNeighbours)
{
    PackedEnumVector<Quad, 2> v;
    v.assign(67, Quad::Zero);
    v[0] = Quad::Three;
    v[31] = Quad::One;  // last element of the first word
    v[32] = Quad::Two;  // first element of the second word
    v[66] = Quad::Three;

    const auto &cv = v;
    EXPECT_EQ(cv[0], Quad::Three);
    EXPECT_EQ(cv[1], Quad::Zero);
    EXPECT_EQ(cv[30], Quad::Zero);
    EXPECT_EQ(cv[31], Quad::One);
    EXPECT_EQ(cv[32], Quad::Two);
    EXPECT_EQ(cv[33], Quad::Zero);
    EXPECT_EQ(cv[66], Quad::Three);

    v[31] = Quad::Zero;
    EXPECT_EQ(cv[31], Quad::Zero);
    EXPECT_EQ(cv[32], Quad::Two);
}

TEST(PackedEnumVector, ProxyReads)
{
    PackedEnumVector<Quad, 2> v;
    v.assign(4, Quad::One);
    // Non-const operator[] returns a proxy that converts back.
    EXPECT_EQ(static_cast<Quad>(v[2]), Quad::One);
    EXPECT_TRUE(v[3] == Quad::One);
}

} // namespace
