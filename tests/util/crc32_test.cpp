/** @file CRC-32 (IEEE 802.3) against published check values. */
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "util/crc32.hh"

namespace mlpsim::test {

TEST(Crc32, PublishedCheckValues)
{
    // The standard check value for poly 0xEDB88320 (zlib-compatible).
    EXPECT_EQ(Crc32::compute("123456789", 9), 0xCBF43926u);
    EXPECT_EQ(Crc32::compute("", 0), 0x00000000u);
    EXPECT_EQ(Crc32::compute("a", 1), 0xE8B7BE43u);
}

TEST(Crc32, IncrementalEqualsOneShot)
{
    const char data[] = "The quick brown fox jumps over the lazy dog";
    const size_t len = std::strlen(data);
    Crc32 crc;
    for (size_t i = 0; i < len; ++i)
        crc.update(data + i, 1);
    EXPECT_EQ(crc.value(), Crc32::compute(data, len));
}

TEST(Crc32, ResetStartsOver)
{
    Crc32 crc;
    crc.update("garbage", 7);
    crc.reset();
    crc.update("123456789", 9);
    EXPECT_EQ(crc.value(), 0xCBF43926u);
}

TEST(Crc32, SensitiveToEverySingleBitFlip)
{
    std::vector<uint8_t> data(64);
    for (size_t i = 0; i < data.size(); ++i)
        data[i] = uint8_t(i * 7 + 1);
    const uint32_t base = Crc32::compute(data.data(), data.size());
    for (size_t byte = 0; byte < data.size(); ++byte) {
        for (unsigned bit = 0; bit < 8; ++bit) {
            data[byte] ^= uint8_t(1u << bit);
            EXPECT_NE(Crc32::compute(data.data(), data.size()), base)
                << "flip at byte " << byte << " bit " << bit;
            data[byte] ^= uint8_t(1u << bit);
        }
    }
}

} // namespace mlpsim::test
