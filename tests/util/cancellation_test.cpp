/**
 * @file
 * CancelToken / CancelScope / pollCancellation unit tests: deadline
 * edge semantics (zero = already expired, negative = none), parent
 * chaining, latch-once expiry, and the thread-local scope mechanics
 * the simulation kernels' poll points rely on. Compiled plain
 * (util_tests) and under ThreadSanitizer (parallel_tests_tsan).
 */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "util/cancellation.hh"

namespace mlpsim {
namespace {

TEST(CancelTokenTest, FreshTokenIsNotStopped)
{
    CancelToken token;
    EXPECT_FALSE(token.stopRequested());
    EXPECT_FALSE(token.hasDeadline());
    EXPECT_TRUE(token.status().ok());
    EXPECT_EQ(token.stopKind(), CancelKind::None);
}

TEST(CancelTokenTest, CancelIsStickyAndCarriesTheReason)
{
    CancelToken token;
    token.cancel("operator hit ^C");
    EXPECT_TRUE(token.stopRequested());
    EXPECT_EQ(token.stopKind(), CancelKind::Cancelled);
    const Status st = token.status();
    EXPECT_EQ(st.code(), ErrorCode::Cancelled);
    EXPECT_NE(st.message().find("operator hit ^C"), std::string::npos);
    // Idempotent: a second cancel must not clobber the first reason.
    token.cancel("second reason");
    EXPECT_NE(token.status().message().find("operator hit ^C"),
              std::string::npos);
}

TEST(CancelTokenTest, ZeroDeadlineIsAlreadyExpired)
{
    CancelToken token;
    token.setDeadlineAfterMillis(0.0);
    EXPECT_TRUE(token.hasDeadline());
    EXPECT_TRUE(token.stopRequested());
    EXPECT_EQ(token.stopKind(), CancelKind::DeadlineExceeded);
    EXPECT_EQ(token.status().code(), ErrorCode::DeadlineExceeded);
}

TEST(CancelTokenTest, NegativeDeadlineMeansNone)
{
    CancelToken token;
    token.setDeadlineAfterMillis(-1.0);
    EXPECT_FALSE(token.hasDeadline());
    EXPECT_FALSE(token.stopRequested());
}

TEST(CancelTokenTest, GenerousDeadlineDoesNotStopImmediately)
{
    CancelToken token;
    token.setDeadlineAfterMillis(60'000.0);
    EXPECT_TRUE(token.hasDeadline());
    EXPECT_FALSE(token.stopRequested());
}

TEST(CancelTokenTest, ExpireIfPastDeadlineLatchesExactlyOnce)
{
    CancelToken token;
    token.setDeadlineAfterMillis(0.0);
    // Whichever call observes the expiry first does the latching; every
    // later call reports "already latched" so the watchdog logs each
    // overdue job once.
    const bool first = token.expireIfPastDeadline();
    const bool second = token.expireIfPastDeadline();
    EXPECT_TRUE(token.stopRequested());
    EXPECT_FALSE(first && second);
    EXPECT_FALSE(second);
}

TEST(CancelTokenTest, ExpireIfPastDeadlineIsNoOpBeforeTheDeadline)
{
    CancelToken token;
    token.setDeadlineAfterMillis(60'000.0);
    EXPECT_FALSE(token.expireIfPastDeadline());
    EXPECT_FALSE(token.stopRequested());
}

TEST(CancelTokenTest, ChildStopsWhenParentIsCancelled)
{
    auto parent = std::make_shared<CancelToken>();
    CancelToken child(parent);
    EXPECT_FALSE(child.stopRequested());
    parent->cancel("batch cancelled");
    EXPECT_TRUE(child.stopRequested());
    EXPECT_EQ(child.stopKind(), CancelKind::Cancelled);
    EXPECT_EQ(child.status().code(), ErrorCode::Cancelled);
}

TEST(CancelTokenTest, ChildCancellationDoesNotPropagateUpward)
{
    auto parent = std::make_shared<CancelToken>();
    CancelToken child(parent);
    child.cancel("just this job");
    EXPECT_TRUE(child.stopRequested());
    EXPECT_FALSE(parent->stopRequested());
}

TEST(CancelTokenTest, DeadlineCanBeRearmedBetweenAttempts)
{
    CancelToken token;
    token.setDeadlineAfterMillis(0.0);
    EXPECT_TRUE(token.hasDeadline());
    token.setDeadlineAfterMillis(-1.0);
    EXPECT_FALSE(token.hasDeadline());
    // Disarming does not clear an already-latched stop: the failure
    // was observed and must stay observable.
    // (A *fresh* token per attempt is how SweepRunner gets a clean
    // slate — re-arming only moves the expiry of a still-live token.)
}

TEST(CancelScopeTest, PollIsNoOpOutsideAnyScope)
{
    EXPECT_EQ(activeCancelToken(), nullptr);
    EXPECT_FALSE(cancellationRequested());
    EXPECT_NO_THROW(pollCancellation());
}

TEST(CancelScopeTest, PollThrowsCancelledErrorInsideACancelledScope)
{
    CancelToken token;
    token.cancel("test cancel");
    CancelScope scope(&token);
    EXPECT_EQ(activeCancelToken(), &token);
    EXPECT_TRUE(cancellationRequested());
    try {
        pollCancellation();
        FAIL() << "pollCancellation() should have thrown";
    } catch (const CancelledError &e) {
        EXPECT_EQ(e.status().code(), ErrorCode::Cancelled);
    }
}

TEST(CancelScopeTest, PollCarriesDeadlineExceededForExpiredDeadline)
{
    CancelToken token;
    token.setDeadlineAfterMillis(0.0);
    CancelScope scope(&token);
    try {
        pollCancellation();
        FAIL() << "pollCancellation() should have thrown";
    } catch (const CancelledError &e) {
        EXPECT_EQ(e.status().code(), ErrorCode::DeadlineExceeded);
    }
}

TEST(CancelScopeTest, ScopesNestAndRestoreThePreviousToken)
{
    CancelToken outer, inner;
    {
        CancelScope outer_scope(&outer);
        EXPECT_EQ(activeCancelToken(), &outer);
        {
            CancelScope inner_scope(&inner);
            EXPECT_EQ(activeCancelToken(), &inner);
        }
        EXPECT_EQ(activeCancelToken(), &outer);
    }
    EXPECT_EQ(activeCancelToken(), nullptr);
}

TEST(CancelScopeTest, ActiveTokenIsPerThread)
{
    CancelToken token;
    CancelScope scope(&token);
    std::atomic<bool> other_thread_saw_null{false};
    std::thread other([&other_thread_saw_null] {
        other_thread_saw_null = (activeCancelToken() == nullptr);
    });
    other.join();
    EXPECT_TRUE(other_thread_saw_null.load());
    EXPECT_EQ(activeCancelToken(), &token);
}

TEST(CancelTokenTest, CancelFromAnotherThreadIsObserved)
{
    CancelToken token;
    std::thread canceller([&token] {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        token.cancel("from another thread");
    });
    while (!token.stopRequested())
        std::this_thread::sleep_for(std::chrono::microseconds(100));
    canceller.join();
    EXPECT_EQ(token.status().code(), ErrorCode::Cancelled);
}

} // namespace
} // namespace mlpsim
