/**
 * @file
 * RetryPolicy unit tests: failure-class driven retry decisions and the
 * deterministic exponential-backoff-with-jitter schedule. Determinism
 * is the point — two runs of the same sweep must back off identically,
 * so these tests assert exact reproducibility, not just bounds.
 */
#include <gtest/gtest.h>

#include <string>

#include "util/retry.hh"
#include "util/status.hh"

namespace mlpsim {
namespace {

TEST(Fnv1a64Test, MatchesKnownVectors)
{
    // Standard FNV-1a test vectors.
    EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
    EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
    EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(Fnv1a64Test, DistinctLabelsHashDifferently)
{
    EXPECT_NE(fnv1a64("mlp cpmail/64C"), fnv1a64("mlp cpmail/64E"));
    EXPECT_NE(fnv1a64("job"), fnv1a64("job2"));
}

TEST(FailureClassTest, TaxonomyBucketsAreCorrect)
{
    EXPECT_EQ(failureClass(ErrorCode::Ok), FailureClass::None);
    EXPECT_EQ(failureClass(ErrorCode::Unavailable),
              FailureClass::Transient);
    EXPECT_EQ(failureClass(ErrorCode::IoError), FailureClass::Transient);
    EXPECT_EQ(failureClass(ErrorCode::Cancelled), FailureClass::Cancelled);
    EXPECT_EQ(failureClass(ErrorCode::DeadlineExceeded),
              FailureClass::Cancelled);
    EXPECT_EQ(failureClass(ErrorCode::InvalidArgument),
              FailureClass::Permanent);
    EXPECT_EQ(failureClass(ErrorCode::DataLoss), FailureClass::Permanent);
    EXPECT_EQ(failureClass(ErrorCode::Internal), FailureClass::Permanent);

    EXPECT_TRUE(isRetryable(ErrorCode::Unavailable));
    EXPECT_TRUE(isRetryable(ErrorCode::IoError));
    EXPECT_FALSE(isRetryable(ErrorCode::Cancelled));
    EXPECT_FALSE(isRetryable(ErrorCode::DataLoss));
    EXPECT_FALSE(isRetryable(ErrorCode::Ok));
}

TEST(RetryPolicyTest, DefaultPolicyNeverRetries)
{
    RetryPolicy policy;
    EXPECT_FALSE(policy.shouldRetry(Status::unavailable("down"), 1));
}

TEST(RetryPolicyTest, OnlyTransientFailuresRetry)
{
    RetryPolicy policy;
    policy.maxAttempts = 3;
    EXPECT_TRUE(policy.shouldRetry(Status::unavailable("down"), 1));
    EXPECT_TRUE(policy.shouldRetry(Status::ioError("flaky disk"), 2));
    EXPECT_FALSE(policy.shouldRetry(Status::dataLoss("corrupt"), 1));
    EXPECT_FALSE(policy.shouldRetry(Status::cancelled("stop"), 1));
    EXPECT_FALSE(
        policy.shouldRetry(Status::deadlineExceeded("too slow"), 1));
    EXPECT_FALSE(policy.shouldRetry(Status(), 1)); // OK never "retries"
}

TEST(RetryPolicyTest, AttemptBudgetIsRespected)
{
    RetryPolicy policy;
    policy.maxAttempts = 3;
    const Status transient = Status::unavailable("down");
    EXPECT_TRUE(policy.shouldRetry(transient, 1));
    EXPECT_TRUE(policy.shouldRetry(transient, 2));
    EXPECT_FALSE(policy.shouldRetry(transient, 3));
    EXPECT_FALSE(policy.shouldRetry(transient, 4));
}

TEST(RetryPolicyTest, NoDelayBeforeTheFirstAttempt)
{
    RetryPolicy policy;
    policy.maxAttempts = 4;
    EXPECT_EQ(policy.backoffMillis("job", 0), 0.0);
    EXPECT_EQ(policy.backoffMillis("job", 1), 0.0);
    EXPECT_GT(policy.backoffMillis("job", 2), 0.0);
}

TEST(RetryPolicyTest, BackoffIsDeterministicPerSeedLabelAttempt)
{
    RetryPolicy policy;
    policy.maxAttempts = 5;
    policy.seed = 42;
    for (unsigned attempt = 2; attempt <= 5; ++attempt) {
        EXPECT_EQ(policy.backoffMillis("mlp cpmail/64C", attempt),
                  policy.backoffMillis("mlp cpmail/64C", attempt))
            << "attempt " << attempt;
    }
}

TEST(RetryPolicyTest, JitterVariesAcrossLabelsSeedsAndAttempts)
{
    RetryPolicy policy;
    policy.maxAttempts = 3;
    const double a = policy.backoffMillis("job-a", 2);
    const double b = policy.backoffMillis("job-b", 2);
    EXPECT_NE(a, b) << "labels should de-synchronise retries";

    RetryPolicy reseeded = policy;
    reseeded.seed = 1;
    EXPECT_NE(policy.backoffMillis("job-a", 2),
              reseeded.backoffMillis("job-a", 2));
}

TEST(RetryPolicyTest, BackoffGrowsExponentiallyWithinJitterBounds)
{
    RetryPolicy policy;
    policy.maxAttempts = 6;
    policy.baseBackoffMillis = 10.0;
    policy.backoffMultiplier = 2.0;
    policy.maxBackoffMillis = 1'000'000.0; // out of the way
    policy.jitterFraction = 0.25;
    for (unsigned attempt = 2; attempt <= 6; ++attempt) {
        // Un-jittered delay: base * multiplier^(attempt - 2).
        const double nominal = 10.0 * double(1u << (attempt - 2));
        const double delay = policy.backoffMillis("job", attempt);
        EXPECT_GE(delay, nominal * 0.75) << "attempt " << attempt;
        EXPECT_LT(delay, nominal * 1.25) << "attempt " << attempt;
    }
}

TEST(RetryPolicyTest, BackoffIsCappedBeforeJitter)
{
    RetryPolicy policy;
    policy.maxAttempts = 20;
    policy.baseBackoffMillis = 100.0;
    policy.backoffMultiplier = 10.0;
    policy.maxBackoffMillis = 500.0;
    policy.jitterFraction = 0.25;
    // By attempt 10 the un-jittered delay is astronomically past the
    // cap; the jittered value must stay within the cap's jitter band.
    const double delay = policy.backoffMillis("job", 10);
    EXPECT_GE(delay, 500.0 * 0.75);
    EXPECT_LT(delay, 500.0 * 1.25);
}

TEST(RetryPolicyTest, ZeroJitterYieldsTheExactNominalSchedule)
{
    RetryPolicy policy;
    policy.maxAttempts = 4;
    policy.baseBackoffMillis = 8.0;
    policy.backoffMultiplier = 2.0;
    policy.jitterFraction = 0.0;
    EXPECT_DOUBLE_EQ(policy.backoffMillis("anything", 2), 8.0);
    EXPECT_DOUBLE_EQ(policy.backoffMillis("anything", 3), 16.0);
    EXPECT_DOUBLE_EQ(policy.backoffMillis("anything", 4), 32.0);
}

} // namespace
} // namespace mlpsim
