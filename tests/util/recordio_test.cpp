/**
 * @file
 * Record-file (util/recordio.hh) round-trip and corruption-recovery
 * tests: the storage guarantees the checkpoint/resume journal stands
 * on. The corruption cases (truncated tail, bit-flipped payload,
 * foreign magic, mismatched meta) mirror what a kill -9 or a stray
 * writer actually leaves behind.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "util/recordio.hh"

namespace mlpsim {
namespace {

std::string
tempPath(const std::string &tag)
{
    const std::string path =
        ::testing::TempDir() + "mlpsim_recordio_" + tag + ".bin";
    std::remove(path.c_str());
    return path;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

void
spit(const std::string &path, const std::string &data)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(), std::streamsize(data.size()));
}

constexpr const char *kMeta = "test-log-v1;param=7";

TEST(RecordIoTest, MissingFileIsNotFound)
{
    const auto contents = readRecordFile(tempPath("missing"));
    ASSERT_FALSE(contents.ok());
    EXPECT_EQ(contents.status().code(), ErrorCode::NotFound);
}

TEST(RecordIoTest, FreshLogRoundTrips)
{
    const std::string path = tempPath("roundtrip");
    {
        auto log = RecordLog::open(path, kMeta);
        ASSERT_TRUE(log.ok()) << log.status().toString();
        EXPECT_TRUE(log->freshStart());
        EXPECT_FALSE(log->salvaged());
        EXPECT_TRUE(log->recovered().empty());
        ASSERT_TRUE(log->append("first record").ok());
        ASSERT_TRUE(log->append("").ok()); // empty payloads are legal
        ASSERT_TRUE(log->append("third\0binary\xff").ok());
    }
    const auto contents = readRecordFile(path);
    ASSERT_TRUE(contents.ok()) << contents.status().toString();
    EXPECT_EQ(contents->meta, kMeta);
    EXPECT_FALSE(contents->truncated);
    ASSERT_EQ(contents->records.size(), 3u);
    EXPECT_EQ(contents->records[0], "first record");
    EXPECT_EQ(contents->records[1], "");
    // The string literal stops at the embedded NUL; what was appended
    // is what must come back.
    EXPECT_EQ(contents->records[2], std::string("third"));
}

TEST(RecordIoTest, ReopenRecoversPriorRecordsAndAppends)
{
    const std::string path = tempPath("reopen");
    {
        auto log = RecordLog::open(path, kMeta);
        ASSERT_TRUE(log.ok());
        ASSERT_TRUE(log->append("one").ok());
        ASSERT_TRUE(log->append("two").ok());
    }
    {
        auto log = RecordLog::open(path, kMeta);
        ASSERT_TRUE(log.ok());
        EXPECT_FALSE(log->freshStart());
        EXPECT_FALSE(log->salvaged());
        ASSERT_EQ(log->recovered().size(), 2u);
        EXPECT_EQ(log->recovered()[0], "one");
        EXPECT_EQ(log->recovered()[1], "two");
        ASSERT_TRUE(log->append("three").ok());
    }
    const auto contents = readRecordFile(path);
    ASSERT_TRUE(contents.ok());
    ASSERT_EQ(contents->records.size(), 3u);
    EXPECT_EQ(contents->records[2], "three");
}

TEST(RecordIoTest, MetaMismatchDiscardsAndStartsFresh)
{
    const std::string path = tempPath("meta_mismatch");
    {
        auto log = RecordLog::open(path, "test-log-v1;param=7");
        ASSERT_TRUE(log.ok());
        ASSERT_TRUE(log->append("stale record").ok());
    }
    {
        // Same file, different parameters: half-trusting the old
        // records would mix incompatible results, so the log restarts.
        auto log = RecordLog::open(path, "test-log-v1;param=8");
        ASSERT_TRUE(log.ok());
        EXPECT_TRUE(log->freshStart());
        EXPECT_TRUE(log->recovered().empty());
        ASSERT_TRUE(log->append("new record").ok());
    }
    const auto contents = readRecordFile(path);
    ASSERT_TRUE(contents.ok());
    EXPECT_EQ(contents->meta, "test-log-v1;param=8");
    ASSERT_EQ(contents->records.size(), 1u);
    EXPECT_EQ(contents->records[0], "new record");
}

TEST(RecordIoTest, TruncatedTailIsDroppedAndSalvaged)
{
    const std::string path = tempPath("truncated");
    {
        auto log = RecordLog::open(path, kMeta);
        ASSERT_TRUE(log.ok());
        ASSERT_TRUE(log->append("intact-1").ok());
        ASSERT_TRUE(log->append("intact-2").ok());
        ASSERT_TRUE(log->append("will-be-torn").ok());
    }
    // Simulate a kill mid-append: chop the last frame in half.
    std::string bytes = slurp(path);
    ASSERT_GT(bytes.size(), 6u);
    spit(path, bytes.substr(0, bytes.size() - 6));

    {
        const auto contents = readRecordFile(path);
        ASSERT_TRUE(contents.ok());
        EXPECT_TRUE(contents->truncated);
        ASSERT_EQ(contents->records.size(), 2u);
    }
    {
        auto log = RecordLog::open(path, kMeta);
        ASSERT_TRUE(log.ok());
        EXPECT_TRUE(log->salvaged());
        EXPECT_FALSE(log->freshStart());
        ASSERT_EQ(log->recovered().size(), 2u);
        EXPECT_EQ(log->recovered()[0], "intact-1");
        EXPECT_EQ(log->recovered()[1], "intact-2");
        ASSERT_TRUE(log->append("appended-after-salvage").ok());
    }
    // The salvage rewrite must leave a fully valid file behind.
    const auto contents = readRecordFile(path);
    ASSERT_TRUE(contents.ok());
    EXPECT_FALSE(contents->truncated);
    ASSERT_EQ(contents->records.size(), 3u);
    EXPECT_EQ(contents->records[2], "appended-after-salvage");
}

TEST(RecordIoTest, BitFlippedRecordIsDroppedByCrc)
{
    const std::string path = tempPath("bitflip");
    {
        auto log = RecordLog::open(path, kMeta);
        ASSERT_TRUE(log.ok());
        ASSERT_TRUE(log->append("good").ok());
        ASSERT_TRUE(log->append("about to rot").ok());
    }
    // Flip one bit in the final record's payload; its CRC no longer
    // matches, so the parser must drop it (and everything after).
    std::string bytes = slurp(path);
    bytes[bytes.size() - 3] ^= 0x20;
    spit(path, bytes);

    const auto contents = readRecordFile(path);
    ASSERT_TRUE(contents.ok());
    EXPECT_TRUE(contents->truncated);
    ASSERT_EQ(contents->records.size(), 1u);
    EXPECT_EQ(contents->records[0], "good");

    auto log = RecordLog::open(path, kMeta);
    ASSERT_TRUE(log.ok());
    EXPECT_TRUE(log->salvaged());
    ASSERT_EQ(log->recovered().size(), 1u);
}

TEST(RecordIoTest, ForeignMagicIsDataLossForReadButFreshForOpen)
{
    const std::string path = tempPath("foreign");
    spit(path, "definitely not a record file\n");

    const auto contents = readRecordFile(path);
    ASSERT_FALSE(contents.ok());
    EXPECT_EQ(contents.status().code(), ErrorCode::DataLoss);

    // open() treats an unusable file as "no journal": it restarts
    // rather than failing the sweep over its own cache file.
    auto log = RecordLog::open(path, kMeta);
    ASSERT_TRUE(log.ok());
    EXPECT_TRUE(log->freshStart());
    ASSERT_TRUE(log->append("rewritten").ok());
    const auto reread = readRecordFile(path);
    ASSERT_TRUE(reread.ok());
    ASSERT_EQ(reread->records.size(), 1u);
}

TEST(RecordIoTest, CorruptMetaFrameStartsFresh)
{
    const std::string path = tempPath("corrupt_meta");
    {
        auto log = RecordLog::open(path, kMeta);
        ASSERT_TRUE(log.ok());
        ASSERT_TRUE(log->append("payload").ok());
    }
    // Corrupt the meta frame itself (right after the 8-byte magic):
    // the whole file is untrustworthy and must be discarded.
    std::string bytes = slurp(path);
    bytes[8 + 8] ^= 0xff; // first payload byte of frame 0
    spit(path, bytes);

    auto log = RecordLog::open(path, kMeta);
    ASSERT_TRUE(log.ok());
    EXPECT_TRUE(log->freshStart());
    EXPECT_TRUE(log->recovered().empty());
}

TEST(RecordIoTest, RewriteReplacesContentsAndResumesAppending)
{
    const std::string path = tempPath("rewrite");
    {
        auto log = RecordLog::open(path, kMeta);
        ASSERT_TRUE(log.ok());
        ASSERT_TRUE(log->append("a").ok());
        ASSERT_TRUE(log->append("b").ok());
        ASSERT_TRUE(log->append("c").ok());

        // Compact to one record; the in-memory view follows the file.
        ASSERT_TRUE(log->rewrite({"merged"}).ok());
        ASSERT_EQ(log->recovered().size(), 1u);
        EXPECT_EQ(log->recovered()[0], "merged");

        // Appends land after the rewritten contents, not the old ones.
        ASSERT_TRUE(log->append("after").ok());
    }
    const auto contents = readRecordFile(path);
    ASSERT_TRUE(contents.ok());
    EXPECT_EQ(contents->meta, kMeta);
    EXPECT_FALSE(contents->truncated);
    ASSERT_EQ(contents->records.size(), 2u);
    EXPECT_EQ(contents->records[0], "merged");
    EXPECT_EQ(contents->records[1], "after");

    auto reopened = RecordLog::open(path, kMeta);
    ASSERT_TRUE(reopened.ok());
    EXPECT_FALSE(reopened->salvaged());
    EXPECT_EQ(reopened->recovered().size(), 2u);
}

} // namespace
} // namespace mlpsim
