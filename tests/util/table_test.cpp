/** @file Text-table rendering. */
#include <gtest/gtest.h>

#include "util/table.hh"

namespace mlpsim::test {

TEST(TextTable, NumberFormatting)
{
    EXPECT_EQ(TextTable::num(1.234567), "1.23");
    EXPECT_EQ(TextTable::num(1.235, 2), "1.24");
    EXPECT_EQ(TextTable::num(3.0, 0), "3");
    EXPECT_EQ(TextTable::num(-0.5, 1), "-0.5");
}

TEST(TextTable, RendersHeaderAndRule)
{
    TextTable t({"a", "bb"});
    const std::string out = t.render();
    EXPECT_NE(out.find("a"), std::string::npos);
    EXPECT_NE(out.find("bb"), std::string::npos);
    EXPECT_NE(out.find("--"), std::string::npos);
}

TEST(TextTable, ColumnsAreAligned)
{
    TextTable t({"name", "v"});
    t.addRow({"x", "1"});
    t.addRow({"longername", "2"});
    const std::string out = t.render();
    // Every line is as wide as the widest cell per column (+separator).
    size_t pos = 0, prev_len = std::string::npos;
    while (pos < out.size()) {
        const size_t eol = out.find('\n', pos);
        const size_t len = eol - pos;
        if (prev_len != std::string::npos)
            EXPECT_EQ(len, prev_len);
        prev_len = len;
        pos = eol + 1;
    }
}

TEST(TextTable, RaggedRowsAreTolerated)
{
    TextTable t({"a", "b", "c"});
    t.addRow({"1"});
    t.addRow({"1", "2", "3"});
    EXPECT_NO_THROW({ const auto s = t.render(); (void)s; });
}

TEST(TextTable, ExtraCellsBeyondHeaderAreIgnored)
{
    TextTable t({"a"});
    t.addRow({"1", "2", "3"});
    const std::string out = t.render();
    EXPECT_EQ(out.find("2"), std::string::npos);
}

} // namespace mlpsim::test
