/**
 * @file
 * SweepRunner / ThreadPool unit tests: submission-ordered result
 * collection, deterministic exception propagation, batch reuse, and
 * basic pool liveness. Compiled both plain (util target) and under
 * ThreadSanitizer (parallel_tests_tsan) in the default ctest tier.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/parallel.hh"

namespace mlpsim {
namespace {

TEST(ThreadPoolTest, RunsEveryPostedJob)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 200; ++i)
        pool.post([&count] { ++count; });
    pool.waitIdle();
    EXPECT_EQ(count.load(), 200);
    EXPECT_EQ(pool.threadCount(), 4u);
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPoolReturnsImmediately)
{
    ThreadPool pool(2);
    pool.waitIdle();
    SUCCEED();
}

TEST(ThreadPoolTest, DestructorDrainsPendingWork)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 64; ++i)
            pool.post([&count] { ++count; });
        // No waitIdle: the destructor must still run every job.
    }
    EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPoolTest, HardwareThreadsNeverZero)
{
    EXPECT_GE(ThreadPool::hardwareThreads(), 1u);
}

TEST(SweepRunnerTest, ResultsComeBackInSubmissionOrder)
{
    SweepRunner runner(8);
    std::vector<Job<uint64_t>> jobs;
    for (uint64_t i = 0; i < 100; ++i) {
        jobs.push_back(runner.defer<uint64_t>(
            "square", [i] { return i * i; }));
    }
    runner.runAll();
    for (uint64_t i = 0; i < 100; ++i)
        EXPECT_EQ(jobs[i].get(), i * i) << "slot " << i;
    EXPECT_EQ(runner.lastBatch().jobs, 100u);
}

TEST(SweepRunnerTest, SerialAndParallelProduceIdenticalResults)
{
    auto fill = [](SweepRunner &runner) {
        std::vector<Job<double>> jobs;
        for (int i = 0; i < 32; ++i) {
            jobs.push_back(runner.defer<double>("cell", [i] {
                double acc = 1.0;
                for (int k = 1; k <= 50 + i; ++k)
                    acc = acc * 1.0000001 + double(k);
                return acc;
            }));
        }
        runner.runAll();
        return jobs;
    };
    SweepRunner serial(1), parallel(8);
    auto a = fill(serial);
    auto b = fill(parallel);
    ASSERT_EQ(a.size(), b.size());
    // Identical code over identical inputs: bit-identical doubles.
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].get(), b[i].get()) << "slot " << i;
}

TEST(SweepRunnerTest, FirstExceptionInSubmissionOrderWins)
{
    SweepRunner runner(8);
    for (int i = 0; i < 16; ++i) {
        runner.deferVoid("maybe-throw", [i] {
            if (i == 3)
                throw std::runtime_error("slot 3 failed");
            if (i == 11)
                throw std::runtime_error("slot 11 failed");
        });
    }
    // Whatever order the workers finish in, the rethrow must pick the
    // earliest-submitted failure.
    try {
        runner.runAll();
        FAIL() << "runAll() should have thrown";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "slot 3 failed");
    }
}

TEST(SweepRunnerTest, SuccessfulSlotsRemainReadableAfterFailedBatch)
{
    SweepRunner runner(4);
    auto ok = runner.defer<int>("ok", [] { return 42; });
    runner.deferVoid("boom", [] { throw std::runtime_error("boom"); });
    EXPECT_THROW(runner.runAll(), std::runtime_error);
    EXPECT_EQ(ok.get(), 42);
}

TEST(SweepRunnerTest, RunnerIsReusableAcrossBatches)
{
    SweepRunner runner(4);
    auto first = runner.defer<int>("first", [] { return 1; });
    runner.runAll();
    // Second batch can consume the first batch's result (the benches'
    // prepare-then-sweep pattern).
    auto second = runner.defer<int>(
        "second", [&first] { return first.get() + 1; });
    runner.runAll();
    EXPECT_EQ(first.get(), 1);
    EXPECT_EQ(second.get(), 2);
    EXPECT_EQ(runner.totalDeferred(), 2u);
    EXPECT_EQ(runner.lastBatch().jobs, 1u);
}

TEST(SweepRunnerTest, ZeroResolvesToHardwareConcurrency)
{
    SweepRunner runner(0);
    EXPECT_EQ(runner.jobs(), ThreadPool::hardwareThreads());
}

TEST(SweepRunnerTest, MoveOnlyResultsAreTakeable)
{
    SweepRunner runner(2);
    auto job = runner.defer<std::unique_ptr<int>>(
        "ptr", [] { return std::make_unique<int>(7); });
    runner.runAll();
    std::unique_ptr<int> out = job.take();
    ASSERT_TRUE(out);
    EXPECT_EQ(*out, 7);
}

TEST(SweepRunnerTest, SuccessfulJobsReportStatusAndAttempts)
{
    SweepRunner runner(2);
    auto job = runner.defer<int>("ok", [] { return 3; });
    runner.runAll();
    EXPECT_TRUE(job.succeeded());
    EXPECT_TRUE(job.status().ok());
    EXPECT_EQ(job.attempts(), 1u);
    EXPECT_TRUE(runner.lastFailures().empty());
    EXPECT_EQ(runner.lastBatch().failed, 0u);
    EXPECT_EQ(runner.lastBatch().retries, 0u);
}

TEST(SweepRunnerTest, FailedBatchStillRecordsEveryFailure)
{
    // Even in the default Propagate mode nothing is silently dropped:
    // the full failure record is available after the rethrow.
    SweepRunner runner(4);
    runner.deferVoid("a", [] {});
    runner.deferVoid("b", [] { throw std::runtime_error("b died"); });
    runner.deferVoid("c", [] { throw std::runtime_error("c died"); });
    EXPECT_THROW(runner.runAll(), std::runtime_error);
    ASSERT_EQ(runner.lastFailures().size(), 2u);
    EXPECT_EQ(runner.lastFailures()[0].label, "b");
    EXPECT_EQ(runner.lastFailures()[1].label, "c");
    EXPECT_EQ(runner.lastBatch().failed, 2u);
}

TEST(SweepRunnerTest, RecordsPerJobAndBatchTiming)
{
    SweepRunner runner(2);
    auto job = runner.defer<int>("work", [] {
        volatile int64_t sink = 0;
        for (int64_t i = 0; i < 2'000'000; ++i)
            sink += i;
        return sink > 0 ? 1 : 0;
    });
    runner.runAll();
    EXPECT_EQ(job.get(), 1);
    EXPECT_GE(job.millis(), 0.0);
    const auto &batch = runner.lastBatch();
    EXPECT_EQ(batch.jobs, 1u);
    EXPECT_GE(batch.wallMillis, 0.0);
    EXPECT_GE(batch.busyMillis, 0.0);
    EXPECT_GE(batch.maxJobMillis, 0.0);
    EXPECT_GT(batch.concurrency(), 0.0);
}

} // namespace
} // namespace mlpsim
