/** @file Missing-load last-value predictor and its annotator. */
#include <gtest/gtest.h>

#include "predictor/value_predictor.hh"

namespace mlpsim::test {

using namespace mlpsim::predictor;
using namespace mlpsim::trace;

TEST(LastValuePredictor, ColdEntryIsNoPredict)
{
    LastValuePredictor p(ValuePredictorConfig{});
    EXPECT_EQ(p.predictAndUpdate(0x400, 7), ValueOutcome::NoPredict);
}

TEST(LastValuePredictor, RepeatValueIsCorrect)
{
    LastValuePredictor p(ValuePredictorConfig{});
    p.predictAndUpdate(0x400, 7);
    EXPECT_EQ(p.predictAndUpdate(0x400, 7), ValueOutcome::Correct);
    EXPECT_EQ(p.predictAndUpdate(0x400, 7), ValueOutcome::Correct);
}

TEST(LastValuePredictor, ChangedValueIsWrongThenCorrect)
{
    LastValuePredictor p(ValuePredictorConfig{});
    p.predictAndUpdate(0x400, 7);
    EXPECT_EQ(p.predictAndUpdate(0x400, 8), ValueOutcome::Wrong);
    EXPECT_EQ(p.predictAndUpdate(0x400, 8), ValueOutcome::Correct);
}

TEST(LastValuePredictor, TagConflictEvicts)
{
    ValuePredictorConfig cfg;
    cfg.entries = 16; // index = (pc>>2) & 15
    LastValuePredictor p(cfg);
    p.predictAndUpdate(0x400, 7);
    // Same index (0x400>>2 and (0x400+16*4)>>2 differ by 16), other tag.
    p.predictAndUpdate(0x400 + 16 * 4, 9);
    EXPECT_EQ(p.predictAndUpdate(0x400, 7), ValueOutcome::NoPredict);
}

TEST(LastValuePredictor, PerfectModeAlwaysCorrect)
{
    ValuePredictorConfig cfg;
    cfg.perfect = true;
    LastValuePredictor p(cfg);
    EXPECT_EQ(p.predictAndUpdate(0x400, 1), ValueOutcome::Correct);
    EXPECT_EQ(p.predictAndUpdate(0x404, 2), ValueOutcome::Correct);
}

TEST(LastValuePredictor, ResetForgets)
{
    LastValuePredictor p(ValuePredictorConfig{});
    p.predictAndUpdate(0x400, 7);
    p.reset();
    EXPECT_EQ(p.predictAndUpdate(0x400, 7), ValueOutcome::NoPredict);
}

TEST(LastValuePredictorDeath, RejectsNonPowerOfTwo)
{
    ValuePredictorConfig cfg;
    cfg.entries = 1000;
    EXPECT_EXIT(LastValuePredictor p(cfg), ::testing::ExitedWithCode(1),
                "power of two");
}

namespace {

/** Trace of repeated loads at one PC with chosen values; only the
 *  odd-indexed ones "miss". */
struct VpFixture
{
    trace::TraceBuffer buf;
    memory::MissAnnotations misses;

    explicit VpFixture(const std::vector<uint64_t> &values,
                       const std::vector<bool> &missing)
    {
        for (size_t i = 0; i < values.size(); ++i) {
            buf.append(makeLoad(0x400, 1, 0x1000, noReg, values[i]));
        }
        misses.resetForBuild(values.size());
        for (size_t i = 0; i < missing.size(); ++i) {
            if (missing[i])
                misses.markDataMiss(i);
        }
    }
};

} // namespace

TEST(AnnotateValues, OnlyMissingLoadsParticipate)
{
    VpFixture f({5, 5, 5, 5}, {true, false, true, false});
    const auto ann =
        annotateValues(f.buf, f.misses, ValuePredictorConfig{});
    EXPECT_EQ(ann.missingLoads, 2u);
    EXPECT_EQ(ann.outcome[1], ValueOutcome::NotApplicable);
    EXPECT_EQ(ann.outcome[3], ValueOutcome::NotApplicable);
    // First miss trains, second predicts correctly.
    EXPECT_EQ(ann.outcome[0], ValueOutcome::NoPredict);
    EXPECT_EQ(ann.outcome[2], ValueOutcome::Correct);
    EXPECT_TRUE(ann.isCorrect(2));
}

TEST(AnnotateValues, StatsAddUp)
{
    VpFixture f({5, 6, 6, 7}, {true, true, true, true});
    const auto ann =
        annotateValues(f.buf, f.misses, ValuePredictorConfig{});
    EXPECT_EQ(ann.missingLoads, 4u);
    EXPECT_EQ(ann.noPredict, 1u);
    EXPECT_EQ(ann.wrong, 2u);  // 5->6 and 6->7
    EXPECT_EQ(ann.correct, 1u); // 6->6
    EXPECT_DOUBLE_EQ(ann.fracCorrect() + ann.fracWrong() +
                         ann.fracNoPredict(),
                     1.0);
}

TEST(AnnotateValues, WarmupTrainsSilently)
{
    VpFixture f({5, 5, 5}, {true, true, true});
    const auto ann = annotateValues(f.buf, f.misses,
                                    ValuePredictorConfig{}, 1);
    EXPECT_EQ(ann.missingLoads, 2u);
    EXPECT_EQ(ann.correct, 2u); // the no-predict happened in warm-up
}

TEST(AnnotateValues, PerfectEverythingCorrect)
{
    VpFixture f({1, 2, 3}, {true, true, true});
    ValuePredictorConfig cfg;
    cfg.perfect = true;
    const auto ann = annotateValues(f.buf, f.misses, cfg);
    EXPECT_EQ(ann.correct, 3u);
    EXPECT_DOUBLE_EQ(ann.fracCorrect(), 1.0);
}

} // namespace mlpsim::test
