/** @file Integration: the timing-free epoch model must track the timed
 *  pipeline on real workloads (the paper's Table 3/4 claims). */
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>

#include "core/cpi_model.hh"
#include "core/mlpsim.hh"
#include "cyclesim/cycle_sim.hh"
#include "workloads/factory.hh"

namespace mlpsim::test {

using core::IssueConfig;
using core::MlpConfig;
using cyclesim::CycleSim;
using cyclesim::CycleSimConfig;

namespace {

constexpr uint64_t traceInsts = 120'000;

const core::AnnotatedTrace &
annotated(const std::string &name)
{
    static std::map<std::string,
                    std::pair<std::unique_ptr<trace::TraceBuffer>,
                              std::unique_ptr<core::AnnotatedTrace>>>
        cache;
    auto it = cache.find(name);
    if (it == cache.end()) {
        auto buffer = std::make_unique<trace::TraceBuffer>(name);
        auto generator = workloads::makeWorkload(name);
        buffer->fill(*generator, traceInsts);
        auto ann = std::make_unique<core::AnnotatedTrace>(
            *buffer, core::AnnotationOptions{});
        it = cache.emplace(name, std::make_pair(std::move(buffer),
                                                std::move(ann)))
                 .first;
    }
    return *it->second.second;
}

} // namespace

class ValidationTest
    : public ::testing::TestWithParam<
          std::tuple<std::string, unsigned, IssueConfig>>
{
};

TEST_P(ValidationTest, EpochModelTracksTimedPipelineAtLongLatency)
{
    const auto [name, window, issue] = GetParam();
    const auto &ann = annotated(name);

    CycleSimConfig timed;
    timed.issue = issue;
    timed.issueWindowSize = window;
    timed.robSize = window;
    timed.offChipLatency = 1000;
    const double cyc = CycleSim(timed, ann.context()).run().mlp();

    const double model =
        core::runMlp(MlpConfig::sized(window, issue), ann.context())
            .mlp();

    EXPECT_NEAR(model, cyc, 0.05 + 0.05 * cyc)
        << name << " w=" << window;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ValidationTest,
    ::testing::Combine(::testing::Values("database", "specjbb2000",
                                         "specweb99"),
                       ::testing::Values(32u, 64u),
                       ::testing::Values(IssueConfig::A,
                                         IssueConfig::C)),
    [](const auto &info) {
        std::string name = std::get<0>(info.param);
        for (auto &c : name)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name + "_w" + std::to_string(std::get<1>(info.param)) +
               core::issueConfigName(std::get<2>(info.param));
    });

TEST(Validation, AgreementImprovesWithLatency)
{
    const auto &ann = annotated("database");
    const double model =
        core::runMlp(MlpConfig::defaultOoO(), ann.context()).mlp();
    double err_short = 0, err_long = 0;
    for (unsigned latency : {100u, 1000u}) {
        CycleSimConfig timed;
        timed.offChipLatency = latency;
        const double cyc = CycleSim(timed, ann.context()).run().mlp();
        (latency == 100 ? err_short : err_long) =
            std::abs(cyc - model);
    }
    EXPECT_LE(err_long, err_short + 0.01);
}

TEST(Validation, CpiEstimateTracksMeasuredCpi)
{
    // The paper's Table 4 method: estimate CPI from MLPsim numbers
    // plus CPI_perf / Overlap_CM from the timed run; compare with the
    // timed run's own CPI.
    for (const auto &name : workloads::commercialWorkloadNames()) {
        const auto &ann = annotated(name);
        CycleSimConfig perfect;
        perfect.perfectL2 = true;
        const double cpi_perf =
            CycleSim(perfect, ann.context()).run().cpi();
        CycleSimConfig timed;
        timed.offChipLatency = 1000;
        const auto measured = CycleSim(timed, ann.context()).run();
        const double overlap = core::solveOverlapCM(
            measured.cpi(), cpi_perf,
            measured.missRatePer100() / 100.0, 1000.0, measured.mlp());

        const auto model =
            core::runMlp(MlpConfig::defaultOoO(), ann.context());
        core::CpiModelParams params{cpi_perf, overlap,
                                    model.missRatePer100() / 100.0,
                                    1000.0, model.mlp()};
        const double estimated = core::estimateCpi(params);
        EXPECT_NEAR(estimated, measured.cpi(), 0.08 * measured.cpi())
            << name;
    }
}

TEST(Validation, MissRatesAgreeBetweenSimulators)
{
    for (const auto &name : workloads::commercialWorkloadNames()) {
        const auto &ann = annotated(name);
        CycleSimConfig timed;
        const auto measured = CycleSim(timed, ann.context()).run();
        const auto model =
            core::runMlp(MlpConfig::defaultOoO(), ann.context());
        EXPECT_NEAR(measured.missRatePer100(), model.missRatePer100(),
                    0.02 * model.missRatePer100() + 0.01)
            << name;
    }
}

} // namespace mlpsim::test
