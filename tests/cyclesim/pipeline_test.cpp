/** @file Additional timed-pipeline behaviour: config B, structure
 *  sizes, prefetches, MLP accounting. */
#include <gtest/gtest.h>

#include "cyclesim/cycle_sim.hh"
#include "tests/support/test_harness.hh"

namespace mlpsim::test {

using core::IssueConfig;
using cyclesim::CycleSim;
using cyclesim::CycleSimConfig;
using trace::makeAlu;
using trace::makeLoad;
using trace::makePrefetch;
using trace::makeStore;
using trace::noReg;

namespace {

constexpr uint8_t r1 = 1, r2 = 2, r3 = 3;

cyclesim::CycleSimResult
run(ScriptedTrace &s, const CycleSimConfig &cfg)
{
    CycleSim sim(cfg, s.context());
    return sim.run();
}

} // namespace

TEST(CycleSimPipeline, ConfigBWaitsForStoreAddresses)
{
    ScriptedTrace s;
    s.add(makeLoad(0x100, r1, 0xA000, noReg), Miss::Data);
    s.add(makeAlu(0x104, r2, r1));
    s.add(makeStore(0x108, 0xB000, /*data=*/r3, /*addr=*/r2));
    s.add(makeLoad(0x10c, r3, 0xC000, noReg), Miss::Data);
    CycleSimConfig b;
    b.issue = IssueConfig::B;
    b.offChipLatency = 300;
    CycleSimConfig c;
    c.offChipLatency = 300;
    const auto rb = run(s, b);
    const auto rc = run(s, c);
    EXPECT_GT(rb.cycles, rc.cycles + 250);
    EXPECT_GT(rc.mlp(), rb.mlp() + 0.5);
}

TEST(CycleSimPipeline, UsefulPrefetchOverlapsWithoutStalling)
{
    ScriptedTrace s;
    s.add(makePrefetch(0x100, 0xD000), Miss::UsefulPrefetch);
    s.add(makeLoad(0x104, r1, 0xA000, noReg), Miss::Data);
    s.add(makeAlu(0x108, r2, r1));
    CycleSimConfig cfg;
    cfg.offChipLatency = 300;
    const auto r = run(s, cfg);
    EXPECT_NEAR(r.mlp(), 2.0, 0.05);
    EXPECT_LT(r.cycles, 330u); // prefetch did not serialise anything
    EXPECT_EQ(r.offChipAccesses, 2u);
}

TEST(CycleSimPipeline, SmallRobThrottlesOverlap)
{
    ScriptedTrace s;
    for (unsigned i = 0; i < 8; ++i) {
        s.add(makeLoad(0x100 + 16 * i, uint8_t(10 + i),
                       0xA000 + 0x1000ull * i, noReg),
              Miss::Data);
        for (int p = 0; p < 3; ++p)
            s.add(makeAlu(0x104 + 16 * i + 4u * unsigned(p), r2, r2));
    }
    CycleSimConfig big;
    big.offChipLatency = 400;
    CycleSimConfig small = big;
    small.robSize = 8;
    small.issueWindowSize = 8;
    EXPECT_GT(run(s, small).cycles, run(s, big).cycles + 300);
}

TEST(CycleSimPipeline, FetchBufferBoundsFrontEndRunahead)
{
    // With a 1-deep fetch buffer and fetch stalled behind dispatch,
    // the machine degrades but still completes correctly.
    ScriptedTrace s;
    for (unsigned i = 0; i < 64; ++i)
        s.add(makeAlu(0x100 + 4 * i, uint8_t(1 + (i % 16))));
    CycleSimConfig cfg;
    cfg.fetchBufferSize = 1;
    const auto r = run(s, cfg);
    EXPECT_EQ(r.instructions, 64u);
    EXPECT_GE(r.cpi(), 0.9); // one inst per cycle max through fetch
}

TEST(CycleSimPipeline, MlpCyclesNeverExceedTotalCycles)
{
    ScriptedTrace s;
    for (unsigned i = 0; i < 10; ++i)
        s.add(makeLoad(0x100 + 4 * i, uint8_t(10 + i),
                       0xA000 + 0x1000ull * i, noReg),
              i % 2 ? Miss::Data : Miss::None);
    CycleSimConfig cfg;
    const auto r = run(s, cfg);
    EXPECT_LE(r.mlpCycles, r.cycles);
    EXPECT_GE(r.mlp(), 1.0);
}

TEST(CycleSimPipeline, ZeroWarmupMeasuresEverything)
{
    ScriptedTrace s;
    for (unsigned i = 0; i < 20; ++i)
        s.add(makeAlu(0x100 + 4 * i, r1, r1));
    CycleSimConfig cfg;
    const auto r = run(s, cfg);
    EXPECT_EQ(r.instructions, 20u);
    EXPECT_GT(r.cycles, 0u);
}

} // namespace mlpsim::test
