/** @file Timed pipeline behaviour on hand-scripted traces. */
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <deque>
#include <queue>
#include <random>
#include <unordered_map>
#include <vector>

#include "cyclesim/cycle_sim.hh"
#include "tests/support/test_harness.hh"

namespace mlpsim::test {

using core::IssueConfig;
using cyclesim::CycleSim;
using cyclesim::CycleSimConfig;
using cyclesim::CycleSimResult;
using trace::makeAlu;
using trace::makeBranch;
using trace::makeLoad;
using trace::makePrefetch;
using trace::makeSerializing;
using trace::makeStore;
using trace::noReg;

namespace {

constexpr uint8_t r1 = 1, r2 = 2;

cyclesim::CycleSimResult
run(ScriptedTrace &s, const CycleSimConfig &cfg)
{
    CycleSim sim(cfg, s.context());
    return sim.run();
}

} // namespace

TEST(CycleSim, SerialAluChainRunsAtOneIpc)
{
    ScriptedTrace s;
    for (unsigned i = 0; i < 1000; ++i)
        s.add(makeAlu(0x100 + 4 * i, r1, r1)); // dst <- f(dst): serial
    const auto r = run(s, CycleSimConfig{});
    EXPECT_NEAR(r.cpi(), 1.0, 0.05);
}

TEST(CycleSim, IndependentAlusUseTheFullWidth)
{
    ScriptedTrace s;
    for (unsigned i = 0; i < 3000; ++i)
        s.add(makeAlu(0x100 + 4 * i, uint8_t(1 + (i % 32))));
    CycleSimConfig cfg;
    const auto r = run(s, cfg);
    EXPECT_NEAR(r.cpi(), 1.0 / cfg.issueWidth, 0.05);
}

TEST(CycleSim, SingleMissCostsAboutTheLatency)
{
    ScriptedTrace s;
    s.add(makeLoad(0x100, r1, 0xA000, noReg), Miss::Data);
    for (unsigned i = 0; i < 10; ++i)
        s.add(makeAlu(0x104 + 4 * i, r2, r1)); // all dependent
    CycleSimConfig cfg;
    cfg.offChipLatency = 300;
    const auto r = run(s, cfg);
    EXPECT_GT(r.cycles, 300u);
    EXPECT_LT(r.cycles, 340u);
    EXPECT_EQ(r.offChipAccesses, 1u);
}

TEST(CycleSim, TwoIndependentMissesOverlap)
{
    ScriptedTrace s;
    s.add(makeLoad(0x100, r1, 0xA000, noReg), Miss::Data);
    s.add(makeLoad(0x104, r2, 0xB000, noReg), Miss::Data);
    s.add(makeAlu(0x108, r1, r1));
    CycleSimConfig cfg;
    cfg.offChipLatency = 300;
    const auto r = run(s, cfg);
    EXPECT_LT(r.cycles, 330u); // overlapped, not 600
    EXPECT_NEAR(r.mlp(), 2.0, 0.05);
}

TEST(CycleSim, DependentMissesSerialise)
{
    ScriptedTrace s;
    s.add(makeLoad(0x100, r1, 0xA000, noReg), Miss::Data);
    s.add(makeLoad(0x104, r2, 0xB000, r1), Miss::Data);
    CycleSimConfig cfg;
    cfg.offChipLatency = 300;
    const auto r = run(s, cfg);
    EXPECT_GT(r.cycles, 600u);
    EXPECT_NEAR(r.mlp(), 1.0, 0.01);
}

TEST(CycleSim, PerfectL2RemovesOffChipTime)
{
    ScriptedTrace s;
    s.add(makeLoad(0x100, r1, 0xA000, noReg), Miss::Data);
    s.add(makeLoad(0x104, r2, 0xB000, r1), Miss::Data);
    CycleSimConfig cfg;
    cfg.perfectL2 = true;
    const auto r = run(s, cfg);
    EXPECT_LT(r.cycles, 60u);
    EXPECT_EQ(r.offChipAccesses, 0u);
}

TEST(CycleSim, InstructionMissStallsFetch)
{
    ScriptedTrace s;
    s.add(makeAlu(0x100, r1), Miss::Fetch);
    s.add(makeAlu(0x104, r1));
    CycleSimConfig cfg;
    cfg.offChipLatency = 250;
    const auto r = run(s, cfg);
    EXPECT_GT(r.cycles, 250u);
    EXPECT_EQ(r.offChipAccesses, 1u);
}

TEST(CycleSim, MispredictStallsUntilResolutionPlusRedirect)
{
    ScriptedTrace s;
    s.add(makeLoad(0x100, r1, 0xA000, noReg), Miss::Data);
    s.add(makeBranch(0x104, 0x200, true, r1), Miss::None, true);
    s.add(makeAlu(0x108, r2));
    CycleSimConfig cfg;
    cfg.offChipLatency = 300;
    const auto r = run(s, cfg);
    // The branch resolves only after the load returns.
    EXPECT_GT(r.cycles, 300u + cfg.branchRedirectPenalty);
}

TEST(CycleSim, ResolvedMispredictIsCheap)
{
    ScriptedTrace s;
    s.add(makeAlu(0x100, r1));
    s.add(makeBranch(0x104, 0x200, true, r1), Miss::None, true);
    for (unsigned i = 0; i < 50; ++i)
        s.add(makeAlu(0x108 + 4 * i, r2));
    const auto r = run(s, CycleSimConfig{});
    EXPECT_LT(r.cycles, 60u);
}

TEST(CycleSim, SerializingDrainsThePipeline)
{
    ScriptedTrace s;
    s.add(makeLoad(0x100, r1, 0xA000, noReg), Miss::Data);
    s.add(makeSerializing(0x104));
    s.add(makeLoad(0x108, r2, 0xB000, noReg), Miss::Data);
    CycleSimConfig cfg;
    cfg.offChipLatency = 300;
    const auto r = run(s, cfg);
    // The second load cannot start until the first completes: ~2x.
    EXPECT_GT(r.cycles, 600u);
    EXPECT_NEAR(r.mlp(), 1.0, 0.01);
}

TEST(CycleSim, ConfigAKeepsLoadsInOrder)
{
    ScriptedTrace s;
    s.add(makeLoad(0x100, r1, 0xA000, noReg), Miss::Data);
    s.add(makeLoad(0x104, r2, 0xB000, r1)); // dependent (hit)
    s.add(makeLoad(0x108, uint8_t(3), 0xC000, noReg), Miss::Data);
    CycleSimConfig a;
    a.issue = IssueConfig::A;
    a.offChipLatency = 300;
    const auto ra = run(s, a);
    CycleSimConfig c;
    c.offChipLatency = 300;
    const auto rc = run(s, c);
    EXPECT_GT(ra.cycles, rc.cycles + 200);
    EXPECT_GT(rc.mlp(), ra.mlp() + 0.5);
}

TEST(CycleSim, L2HitLatencyIsUsed)
{
    // A dataL2Hit-annotated load costs ~l2Latency, not off-chip time.
    ScriptedTrace s;
    s.add(makeLoad(0x100, r1, 0xA000, noReg));
    s.add(makeAlu(0x104, r2, r1));
    const auto r = run(s, CycleSimConfig{});
    EXPECT_LT(r.cycles, 30u);
}

TEST(CycleSim, WarmupSplitsMeasurement)
{
    ScriptedTrace s;
    for (unsigned i = 0; i < 20; ++i)
        s.add(makeLoad(0x100 + 4 * i, r1, 0xA000 + 0x1000ull * i, r1),
              Miss::Data);
    CycleSimConfig cfg;
    cfg.offChipLatency = 100;
    cfg.warmupInsts = 10;
    const auto r = run(s, cfg);
    EXPECT_EQ(r.instructions, 10u);
    EXPECT_EQ(r.offChipAccesses, 10u);
    EXPECT_NEAR(r.cpi(), 100.0, 15.0); // one serial miss per inst
}

TEST(CycleSimDeath, RejectsConfigsDAndE)
{
    ScriptedTrace s;
    s.add(makeAlu(0x100, r1));
    const auto ctx = s.context();
    CycleSimConfig cfg;
    cfg.issue = IssueConfig::D;
    EXPECT_DEATH({ CycleSim sim(cfg, ctx); }, "A-C");
}

TEST(CycleSimConfigValidate, AcceptsTheDefaults)
{
    EXPECT_TRUE(CycleSimConfig{}.validate().ok());
}

TEST(CycleSimConfigValidate, RejectsBadConfigs)
{
    {
        CycleSimConfig cfg;
        cfg.issue = IssueConfig::E;
        const auto s = cfg.validate();
        EXPECT_FALSE(s.ok());
        EXPECT_NE(s.message().find("A-C"), std::string::npos);
    }
    for (unsigned CycleSimConfig::*width :
         {&CycleSimConfig::fetchWidth, &CycleSimConfig::dispatchWidth,
          &CycleSimConfig::issueWidth, &CycleSimConfig::commitWidth,
          &CycleSimConfig::fetchBufferSize,
          &CycleSimConfig::issueWindowSize, &CycleSimConfig::robSize,
          &CycleSimConfig::aluLatency, &CycleSimConfig::l1Latency,
          &CycleSimConfig::l2Latency, &CycleSimConfig::offChipLatency}) {
        CycleSimConfig cfg;
        cfg.*width = 0;
        EXPECT_FALSE(cfg.validate().ok());
    }
}

// --- warm-up accounting at the trace boundary ------------------------

TEST(CycleSim, WarmupEqualToTraceSizeMeasuresNothing)
{
    ScriptedTrace s;
    for (unsigned i = 0; i < 10; ++i)
        s.add(makeAlu(0x100 + 4 * i, r1));
    CycleSimConfig cfg;
    cfg.warmupInsts = 10;
    const auto r = run(s, cfg);
    EXPECT_EQ(r.instructions, 0u);
    EXPECT_EQ(r.offChipAccesses, 0u);
    EXPECT_EQ(r.cpi(), 0.0);
}

TEST(CycleSim, WarmupBeyondTraceSizeMeasuresNothing)
{
    // Regression: the pre-fix accounting computed committed -
    // warmupInsts unconditionally, so a warm-up larger than the trace
    // wrapped around to ~2^64 instructions.
    ScriptedTrace s;
    for (unsigned i = 0; i < 10; ++i)
        s.add(makeAlu(0x100 + 4 * i, r1));
    CycleSimConfig cfg;
    cfg.warmupInsts = 1000;
    const auto r = run(s, cfg);
    EXPECT_EQ(r.instructions, 0u);
    EXPECT_EQ(r.cycles, 0u);
    EXPECT_EQ(r.cpi(), 0.0);
    EXPECT_EQ(r.mlp(), 0.0);
}

TEST(CycleSim, EmptyTraceFinishesImmediately)
{
    ScriptedTrace s;
    const auto r = run(s, CycleSimConfig{});
    EXPECT_EQ(r.instructions, 0u);
    EXPECT_EQ(r.cycles, 0u);
    EXPECT_EQ(r.offChipAccesses, 0u);
}

// --- structural edge cases -------------------------------------------

TEST(CycleSim, SerializingFirstInstructionDispatchesIntoTheEmptyRob)
{
    ScriptedTrace s;
    s.add(makeSerializing(0x100));
    for (unsigned i = 0; i < 20; ++i)
        s.add(makeAlu(0x104 + 4 * i, r1));
    const auto r = run(s, CycleSimConfig{});
    EXPECT_EQ(r.instructions, 21u);
    EXPECT_LT(r.cycles, 40u);
}

TEST(CycleSim, BackToBackFetchMissesEachStallOnce)
{
    ScriptedTrace s;
    s.add(makeAlu(0x100, r1), Miss::Fetch);
    s.add(makeAlu(0x104, r1), Miss::Fetch);
    s.add(makeAlu(0x108, r1));
    CycleSimConfig cfg;
    cfg.offChipLatency = 250;
    const auto r = run(s, cfg);
    EXPECT_EQ(r.offChipAccesses, 2u);
    EXPECT_GT(r.cycles, 500u);
    EXPECT_LT(r.cycles, 560u);
}

TEST(CycleSim, PerfectL2ReportsNoMlp)
{
    // With a perfect L2 nothing goes off-chip, so the MLP accumulator
    // must stay empty: no outstanding-access cycles at all.
    ScriptedTrace s;
    s.add(makeLoad(0x100, r1, 0xA000, noReg), Miss::Data);
    s.add(makeLoad(0x104, r2, 0xB000, noReg), Miss::Data);
    s.add(makeAlu(0x108, r1, r2));
    CycleSimConfig cfg;
    cfg.perfectL2 = true;
    const auto r = run(s, cfg);
    EXPECT_EQ(r.offChipAccesses, 0u);
    EXPECT_EQ(r.mlpCycles, 0u);
    EXPECT_EQ(r.mlp(), 0.0);
    EXPECT_EQ(r.missRatePer100(), 0.0);
}

// --- old-vs-new scheduler equivalence --------------------------------
//
// A line-for-line copy of the pre-overhaul scheduler: std::deque ROB,
// per-cycle rescan of the unissued window, unordered_map store
// producers. The production scheduler (ring-buffer ROB, event-driven
// wakeup) must reproduce its timing bit for bit; the seeded mini-grid
// below compares every result field exactly.

namespace {

class ReferencePipeline
{
  public:
    ReferencePipeline(const CycleSimConfig &config,
                      const core::WorkloadContext &workload)
        : cfg(config), wl(workload)
    {
    }

    CycleSimResult
    run()
    {
        const uint64_t trace_size = wl.size();
        result = CycleSimResult{};
        if (cfg.warmupInsts == 0)
            measuring = true;

        while (committed < trace_size) {
            bool work = false;
            work |= commitStage();
            work |= issueStage();
            work |= dispatchStage();
            work |= fetchStage();

            uint64_t next = now + 1;
            if (!work) {
                const uint64_t event = nextEventCycle();
                if (event == ~0ULL) {
                    ADD_FAILURE() << "reference pipeline deadlock at "
                                  << now;
                    return result;
                }
                next = std::max(next, event);
            }
            while (!events.empty() && events.top() <= now)
                events.pop();
            accumulateMlp(now, next);
            now = next;
        }

        result.cycles = measuring ? now - measureStartCycle : 0;
        result.instructions = committed > cfg.warmupInsts
                                  ? committed - cfg.warmupInsts
                                  : 0;
        return result;
    }

  private:
    struct RobEntry
    {
        uint64_t seq = 0;
        uint64_t prods[4] = {};
        uint64_t completeCycle = 0;
        uint8_t numProds = 0;
        uint8_t numAddrProds = 0;
        bool issued = false;
        bool isPrefetch = false;
        bool isMemOp = false;
        bool isLoadLike = false;
        bool isStore = false;
        bool isBranch = false;
        bool isSerializing = false;
        bool dMiss = false;
        bool usefulPmiss = false;
        bool dL2 = false;
    };

    bool
    producerComplete(uint64_t prod_seq) const
    {
        if (prod_seq == 0 || prod_seq < headSeq)
            return true;
        if (prod_seq >= headSeq + rob.size())
            return false;
        const RobEntry &producer = rob[size_t(prod_seq - headSeq)];
        return producer.issued && producer.completeCycle <= now;
    }

    bool
    operandsComplete(const RobEntry &entry) const
    {
        for (unsigned p = 0; p < entry.numProds; ++p) {
            if (!producerComplete(entry.prods[p]))
                return false;
        }
        return true;
    }

    bool
    storeAddrComplete(const RobEntry &entry) const
    {
        for (unsigned p = 0; p < entry.numAddrProds; ++p) {
            if (!producerComplete(entry.prods[p]))
                return false;
        }
        return true;
    }

    unsigned
    dataLatency(const RobEntry &entry) const
    {
        if (entry.dMiss)
            return cfg.perfectL2 ? cfg.l2Latency : cfg.offChipLatency;
        if (entry.dL2)
            return cfg.l2Latency;
        return cfg.l1Latency;
    }

    RobEntry
    makeEntry(uint64_t idx)
    {
        const trace::Instruction &inst = wl.buffer->at(idx);
        RobEntry entry;
        entry.seq = idx + 1;

        const bool atomic_mem =
            inst.cls() == trace::InstClass::Serializing &&
            inst.effAddr != 0;
        entry.isMemOp = inst.isMem();
        entry.isPrefetch = inst.isPrefetch();
        entry.isLoadLike =
            inst.isLoad() || inst.isPrefetch() || atomic_mem;
        entry.isStore = inst.isStore();
        entry.isBranch = inst.isBranch();
        entry.isSerializing = inst.isSerializing();
        entry.dMiss = wl.misses->dataMiss(idx);
        entry.usefulPmiss = wl.misses->usefulPrefetch(idx);
        entry.dL2 = wl.misses->dataL2Hit(idx);

        auto capture = [&](uint8_t reg) {
            if (reg == noReg)
                return;
            const uint64_t prod = regProducer[reg];
            if (prod != 0)
                entry.prods[entry.numProds++] = prod;
        };
        if (entry.isStore) {
            capture(inst.src[0]);
            capture(inst.src[2]);
            entry.numAddrProds = entry.numProds;
            capture(inst.src[1]);
        } else {
            for (unsigned s = 0; s < trace::maxSrcRegs; ++s)
                capture(inst.src[s]);
            entry.numAddrProds = entry.numProds;
        }

        const uint64_t mem_key = inst.effAddr >> 3;
        if (entry.isLoadLike && !inst.isPrefetch()) {
            auto it = storeProducer.find(mem_key);
            if (it != storeProducer.end() && entry.numProds < 4)
                entry.prods[entry.numProds++] = it->second;
        }
        if (entry.isStore || atomic_mem)
            storeProducer[mem_key] = entry.seq;

        if (inst.hasDst())
            regProducer[inst.dst] = entry.seq;
        return entry;
    }

    void
    recordOffChip(uint64_t idx, uint64_t complete_cycle)
    {
        outstanding.push(complete_cycle);
        events.push(complete_cycle);
        if (idx >= cfg.warmupInsts)
            ++result.offChipAccesses;
    }

    bool
    commitStage()
    {
        bool any = false;
        for (unsigned n = 0; n < cfg.commitWidth && !rob.empty(); ++n) {
            const RobEntry &head = rob.front();
            if (!head.issued || head.completeCycle > now)
                break;
            const trace::Instruction &inst = wl.buffer->at(head.seq - 1);
            if (inst.hasDst() && regProducer[inst.dst] == head.seq)
                regProducer[inst.dst] = 0;
            if (head.isStore ||
                (head.isSerializing && inst.effAddr != 0)) {
                auto it = storeProducer.find(inst.effAddr >> 3);
                if (it != storeProducer.end() && it->second == head.seq)
                    storeProducer.erase(it);
            }
            if (serializeBlockSeq == head.seq)
                serializeBlockSeq = 0;
            rob.pop_front();
            ++headSeq;
            ++committed;
            any = true;
            if (!measuring && committed >= cfg.warmupInsts) {
                measuring = true;
                measureStartCycle = now;
            }
        }
        return any;
    }

    bool
    issueStage()
    {
        bool any = false;
        unsigned issued_now = 0;
        bool seen_unissued_mem = false;
        bool seen_unresolved_store = false;
        bool seen_unissued_branch = false;

        std::vector<uint64_t> still;
        still.reserve(unissued.size());

        for (uint64_t seq : unissued) {
            RobEntry &entry = rob[size_t(seq - headSeq)];

            bool eligible = issued_now < cfg.issueWidth;
            if (cfg.issue == IssueConfig::A && entry.isMemOp &&
                seen_unissued_mem) {
                eligible = false;
            }
            if (cfg.issue == IssueConfig::B && entry.isLoadLike &&
                seen_unresolved_store) {
                eligible = false;
            }
            if (entry.isBranch && seen_unissued_branch)
                eligible = false;

            if (eligible && operandsComplete(entry)) {
                entry.issued = true;
                ++issued_now;
                any = true;

                unsigned latency = cfg.aluLatency;
                if (entry.isPrefetch)
                    latency = 1;
                else if (entry.isLoadLike)
                    latency = dataLatency(entry);
                entry.completeCycle = now + latency;
                events.push(entry.completeCycle);

                const uint64_t idx = entry.seq - 1;
                if (!cfg.perfectL2 && (entry.dMiss || entry.usefulPmiss))
                    recordOffChip(idx, now + cfg.offChipLatency);

                if (mispredBlockSeq == entry.seq) {
                    fetchResumeCycle =
                        std::max(fetchResumeCycle,
                                 entry.completeCycle +
                                     cfg.branchRedirectPenalty);
                    events.push(fetchResumeCycle);
                    mispredBlockSeq = 0;
                }
                continue;
            }

            still.push_back(seq);
            if (entry.isMemOp)
                seen_unissued_mem = true;
            if (entry.isStore && !storeAddrComplete(entry))
                seen_unresolved_store = true;
            if (entry.isBranch)
                seen_unissued_branch = true;
        }

        unissued.swap(still);
        return any;
    }

    bool
    dispatchStage()
    {
        bool any = false;
        for (unsigned n = 0; n < cfg.dispatchWidth; ++n) {
            if (nextDispatchIdx >= nextFetchIdx)
                break;
            if (serializeBlockSeq != 0)
                break;
            if (rob.size() >= cfg.robSize ||
                unissued.size() >= cfg.issueWindowSize) {
                break;
            }
            const trace::Instruction &inst =
                wl.buffer->at(nextDispatchIdx);
            if (inst.isSerializing()) {
                if (!rob.empty())
                    break;
                rob.push_back(makeEntry(nextDispatchIdx));
                unissued.push_back(rob.back().seq);
                serializeBlockSeq = rob.back().seq;
                ++nextDispatchIdx;
                any = true;
                break;
            }
            rob.push_back(makeEntry(nextDispatchIdx));
            unissued.push_back(rob.back().seq);
            ++nextDispatchIdx;
            any = true;
        }
        return any;
    }

    bool
    fetchStage()
    {
        if (now < fetchResumeCycle || mispredBlockSeq != 0)
            return false;

        bool any = false;
        const uint64_t trace_size = wl.size();
        for (unsigned n = 0; n < cfg.fetchWidth; ++n) {
            if (nextFetchIdx >= trace_size ||
                nextFetchIdx - nextDispatchIdx >= cfg.fetchBufferSize) {
                break;
            }
            const uint64_t idx = nextFetchIdx;
            if (wl.misses->fetchMiss(idx) && !imissHandled) {
                imissHandled = true;
                const unsigned latency =
                    cfg.perfectL2 ? cfg.l2Latency : cfg.offChipLatency;
                fetchResumeCycle = now + latency;
                events.push(fetchResumeCycle);
                if (!cfg.perfectL2)
                    recordOffChip(idx, now + cfg.offChipLatency);
                any = true;
                break;
            }
            imissHandled = false;
            ++nextFetchIdx;
            any = true;

            const trace::Instruction &inst = wl.buffer->at(idx);
            if (inst.isBranch() && wl.branches->isMispredict(idx)) {
                mispredBlockSeq = idx + 1;
                break;
            }
        }
        return any;
    }

    uint64_t
    nextEventCycle() const
    {
        uint64_t next = ~0ULL;
        if (!events.empty())
            next = events.top();
        if (fetchResumeCycle > now)
            next = std::min(next, fetchResumeCycle);
        return next;
    }

    void
    accumulateMlp(uint64_t from_cycle, uint64_t to_cycle)
    {
        while (from_cycle < to_cycle) {
            while (!outstanding.empty() &&
                   outstanding.top() <= from_cycle) {
                outstanding.pop();
            }
            if (outstanding.empty())
                return;
            const uint64_t seg_end =
                std::min<uint64_t>(to_cycle, outstanding.top());
            if (measuring) {
                result.mlpSum += double(outstanding.size()) *
                                 double(seg_end - from_cycle);
                result.mlpCycles += seg_end - from_cycle;
            }
            from_cycle = seg_end;
        }
    }

    const CycleSimConfig cfg;
    const core::WorkloadContext &wl;

    uint64_t now = 0;
    std::deque<RobEntry> rob;
    uint64_t headSeq = 1;
    std::vector<uint64_t> unissued;
    std::array<uint64_t, trace::numArchRegs> regProducer{};
    std::unordered_map<uint64_t, uint64_t> storeProducer;

    uint64_t nextFetchIdx = 0;
    uint64_t nextDispatchIdx = 0;
    uint64_t fetchResumeCycle = 0;
    bool imissHandled = false;
    uint64_t mispredBlockSeq = 0;
    uint64_t serializeBlockSeq = 0;

    std::priority_queue<uint64_t, std::vector<uint64_t>,
                        std::greater<uint64_t>>
        outstanding;
    std::priority_queue<uint64_t, std::vector<uint64_t>,
                        std::greater<uint64_t>>
        events;

    bool measuring = false;
    uint64_t committed = 0;
    uint64_t measureStartCycle = 0;
    CycleSimResult result;
};

/** A deterministic pseudo-random instruction mix: ALU chains, loads
 *  and stores over an aliasing address pool (exercising forwarding),
 *  prefetches, branches (some mispredicted), fetch misses and the odd
 *  serializing instruction, atomic or plain. */
ScriptedTrace
randomTrace(uint32_t seed, size_t n)
{
    std::mt19937 rng(seed);
    auto pick = [&](uint32_t bound) { return uint32_t(rng() % bound); };
    ScriptedTrace s;
    uint64_t pc = 0x1000;
    for (size_t i = 0; i < n; ++i, pc += 4) {
        const uint8_t dst = uint8_t(1 + pick(12));
        const uint8_t src = uint8_t(1 + pick(12));
        const uint64_t addr = 0xA000 + 8 * pick(24);
        const Miss fetch = pick(25) == 0 ? Miss::Fetch : Miss::None;
        const uint32_t roll = pick(100);
        if (roll < 40) {
            s.add(makeAlu(pc, dst, src,
                          pick(2) ? uint8_t(1 + pick(12)) : noReg),
                  fetch);
        } else if (roll < 62) {
            s.add(makeLoad(pc, dst, addr, pick(3) ? src : noReg),
                  pick(4) == 0 ? Miss::Data : fetch);
        } else if (roll < 77) {
            s.add(makeStore(pc, addr, src, uint8_t(1 + pick(12))),
                  fetch);
        } else if (roll < 84) {
            s.add(makePrefetch(pc, addr, pick(2) ? src : noReg),
                  pick(3) == 0 ? Miss::UsefulPrefetch : fetch);
        } else if (roll < 96) {
            s.add(makeBranch(pc, pc + 16, pick(2) != 0,
                             pick(2) ? src : noReg),
                  fetch, pick(6) == 0);
        } else if (roll < 98) {
            s.add(makeSerializing(pc), fetch);
        } else {
            s.add(makeSerializing(pc, addr, src), fetch); // atomic
        }
    }
    return s;
}

} // namespace

TEST(CycleSimEquivalence, MatchesTheLegacyScanSchedulerExactly)
{
    for (uint32_t seed : {1u, 2u, 3u}) {
        ScriptedTrace s = randomTrace(0xC0FFEE + seed, 600);
        const auto ctx = s.context();
        for (auto ic : {IssueConfig::A, IssueConfig::B, IssueConfig::C}) {
            for (unsigned window : {8u, 32u}) {
                for (unsigned lat : {60u, 300u}) {
                    for (uint64_t warm : {uint64_t(0), uint64_t(100)}) {
                        CycleSimConfig cfg;
                        cfg.issue = ic;
                        cfg.issueWindowSize = window;
                        cfg.robSize = window == 8 ? 16 : 32;
                        cfg.offChipLatency = lat;
                        cfg.warmupInsts = warm;
                        SCOPED_TRACE(testing::Message()
                                     << "seed=" << seed << " "
                                     << cfg.metricLabel()
                                     << " warm=" << warm);
                        const auto expect =
                            ReferencePipeline(cfg, ctx).run();
                        const auto got = CycleSim(cfg, ctx).run();
                        EXPECT_EQ(got.cycles, expect.cycles);
                        EXPECT_EQ(got.instructions, expect.instructions);
                        EXPECT_EQ(got.offChipAccesses,
                                  expect.offChipAccesses);
                        EXPECT_EQ(got.mlpCycles, expect.mlpCycles);
                        EXPECT_EQ(got.mlpSum, expect.mlpSum);
                    }
                }
            }
        }
    }
}

} // namespace mlpsim::test
