/** @file Timed pipeline behaviour on hand-scripted traces. */
#include <gtest/gtest.h>

#include "cyclesim/cycle_sim.hh"
#include "tests/support/test_harness.hh"

namespace mlpsim::test {

using core::IssueConfig;
using cyclesim::CycleSim;
using cyclesim::CycleSimConfig;
using trace::makeAlu;
using trace::makeBranch;
using trace::makeLoad;
using trace::makeSerializing;
using trace::noReg;

namespace {

constexpr uint8_t r1 = 1, r2 = 2;

cyclesim::CycleSimResult
run(ScriptedTrace &s, const CycleSimConfig &cfg)
{
    CycleSim sim(cfg, s.context());
    return sim.run();
}

} // namespace

TEST(CycleSim, SerialAluChainRunsAtOneIpc)
{
    ScriptedTrace s;
    for (unsigned i = 0; i < 1000; ++i)
        s.add(makeAlu(0x100 + 4 * i, r1, r1)); // dst <- f(dst): serial
    const auto r = run(s, CycleSimConfig{});
    EXPECT_NEAR(r.cpi(), 1.0, 0.05);
}

TEST(CycleSim, IndependentAlusUseTheFullWidth)
{
    ScriptedTrace s;
    for (unsigned i = 0; i < 3000; ++i)
        s.add(makeAlu(0x100 + 4 * i, uint8_t(1 + (i % 32))));
    CycleSimConfig cfg;
    const auto r = run(s, cfg);
    EXPECT_NEAR(r.cpi(), 1.0 / cfg.issueWidth, 0.05);
}

TEST(CycleSim, SingleMissCostsAboutTheLatency)
{
    ScriptedTrace s;
    s.add(makeLoad(0x100, r1, 0xA000, noReg), Miss::Data);
    for (unsigned i = 0; i < 10; ++i)
        s.add(makeAlu(0x104 + 4 * i, r2, r1)); // all dependent
    CycleSimConfig cfg;
    cfg.offChipLatency = 300;
    const auto r = run(s, cfg);
    EXPECT_GT(r.cycles, 300u);
    EXPECT_LT(r.cycles, 340u);
    EXPECT_EQ(r.offChipAccesses, 1u);
}

TEST(CycleSim, TwoIndependentMissesOverlap)
{
    ScriptedTrace s;
    s.add(makeLoad(0x100, r1, 0xA000, noReg), Miss::Data);
    s.add(makeLoad(0x104, r2, 0xB000, noReg), Miss::Data);
    s.add(makeAlu(0x108, r1, r1));
    CycleSimConfig cfg;
    cfg.offChipLatency = 300;
    const auto r = run(s, cfg);
    EXPECT_LT(r.cycles, 330u); // overlapped, not 600
    EXPECT_NEAR(r.mlp(), 2.0, 0.05);
}

TEST(CycleSim, DependentMissesSerialise)
{
    ScriptedTrace s;
    s.add(makeLoad(0x100, r1, 0xA000, noReg), Miss::Data);
    s.add(makeLoad(0x104, r2, 0xB000, r1), Miss::Data);
    CycleSimConfig cfg;
    cfg.offChipLatency = 300;
    const auto r = run(s, cfg);
    EXPECT_GT(r.cycles, 600u);
    EXPECT_NEAR(r.mlp(), 1.0, 0.01);
}

TEST(CycleSim, PerfectL2RemovesOffChipTime)
{
    ScriptedTrace s;
    s.add(makeLoad(0x100, r1, 0xA000, noReg), Miss::Data);
    s.add(makeLoad(0x104, r2, 0xB000, r1), Miss::Data);
    CycleSimConfig cfg;
    cfg.perfectL2 = true;
    const auto r = run(s, cfg);
    EXPECT_LT(r.cycles, 60u);
    EXPECT_EQ(r.offChipAccesses, 0u);
}

TEST(CycleSim, InstructionMissStallsFetch)
{
    ScriptedTrace s;
    s.add(makeAlu(0x100, r1), Miss::Fetch);
    s.add(makeAlu(0x104, r1));
    CycleSimConfig cfg;
    cfg.offChipLatency = 250;
    const auto r = run(s, cfg);
    EXPECT_GT(r.cycles, 250u);
    EXPECT_EQ(r.offChipAccesses, 1u);
}

TEST(CycleSim, MispredictStallsUntilResolutionPlusRedirect)
{
    ScriptedTrace s;
    s.add(makeLoad(0x100, r1, 0xA000, noReg), Miss::Data);
    s.add(makeBranch(0x104, 0x200, true, r1), Miss::None, true);
    s.add(makeAlu(0x108, r2));
    CycleSimConfig cfg;
    cfg.offChipLatency = 300;
    const auto r = run(s, cfg);
    // The branch resolves only after the load returns.
    EXPECT_GT(r.cycles, 300u + cfg.branchRedirectPenalty);
}

TEST(CycleSim, ResolvedMispredictIsCheap)
{
    ScriptedTrace s;
    s.add(makeAlu(0x100, r1));
    s.add(makeBranch(0x104, 0x200, true, r1), Miss::None, true);
    for (unsigned i = 0; i < 50; ++i)
        s.add(makeAlu(0x108 + 4 * i, r2));
    const auto r = run(s, CycleSimConfig{});
    EXPECT_LT(r.cycles, 60u);
}

TEST(CycleSim, SerializingDrainsThePipeline)
{
    ScriptedTrace s;
    s.add(makeLoad(0x100, r1, 0xA000, noReg), Miss::Data);
    s.add(makeSerializing(0x104));
    s.add(makeLoad(0x108, r2, 0xB000, noReg), Miss::Data);
    CycleSimConfig cfg;
    cfg.offChipLatency = 300;
    const auto r = run(s, cfg);
    // The second load cannot start until the first completes: ~2x.
    EXPECT_GT(r.cycles, 600u);
    EXPECT_NEAR(r.mlp(), 1.0, 0.01);
}

TEST(CycleSim, ConfigAKeepsLoadsInOrder)
{
    ScriptedTrace s;
    s.add(makeLoad(0x100, r1, 0xA000, noReg), Miss::Data);
    s.add(makeLoad(0x104, r2, 0xB000, r1)); // dependent (hit)
    s.add(makeLoad(0x108, uint8_t(3), 0xC000, noReg), Miss::Data);
    CycleSimConfig a;
    a.issue = IssueConfig::A;
    a.offChipLatency = 300;
    const auto ra = run(s, a);
    CycleSimConfig c;
    c.offChipLatency = 300;
    const auto rc = run(s, c);
    EXPECT_GT(ra.cycles, rc.cycles + 200);
    EXPECT_GT(rc.mlp(), ra.mlp() + 0.5);
}

TEST(CycleSim, L2HitLatencyIsUsed)
{
    // A dataL2Hit-annotated load costs ~l2Latency, not off-chip time.
    ScriptedTrace s;
    s.add(makeLoad(0x100, r1, 0xA000, noReg));
    s.add(makeAlu(0x104, r2, r1));
    const auto r = run(s, CycleSimConfig{});
    EXPECT_LT(r.cycles, 30u);
}

TEST(CycleSim, WarmupSplitsMeasurement)
{
    ScriptedTrace s;
    for (unsigned i = 0; i < 20; ++i)
        s.add(makeLoad(0x100 + 4 * i, r1, 0xA000 + 0x1000ull * i, r1),
              Miss::Data);
    CycleSimConfig cfg;
    cfg.offChipLatency = 100;
    cfg.warmupInsts = 10;
    const auto r = run(s, cfg);
    EXPECT_EQ(r.instructions, 10u);
    EXPECT_EQ(r.offChipAccesses, 10u);
    EXPECT_NEAR(r.cpi(), 100.0, 15.0); // one serial miss per inst
}

TEST(CycleSimDeath, RejectsConfigsDAndE)
{
    ScriptedTrace s;
    s.add(makeAlu(0x100, r1));
    const auto ctx = s.context();
    CycleSimConfig cfg;
    cfg.issue = IssueConfig::D;
    EXPECT_DEATH({ CycleSim sim(cfg, ctx); }, "A-C");
}

} // namespace mlpsim::test
