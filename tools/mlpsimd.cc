/**
 * @file
 * mlpsimd — the persistent sweep service daemon.
 *
 * Accepts framed mlpsim-sweep-request-v1 documents (service/wire.hh)
 * over stdin/stdout (--stdio, the default — the transport sweep_client
 * --spawn uses) or an AF_UNIX stream socket (--socket PATH), batches
 * compatible requests onto one shared SweepRunner, and serves
 * duplicate work from two content-addressed caches: prepared traces
 * (in-memory LRU + on-disk spill) and finished cell results (a
 * persistent CRC-framed recordio log that survives crashes and warms
 * the next daemon). See service/daemon.hh for the full lifecycle.
 *
 * Flags:
 *   --stdio             serve stdin/stdout (default)
 *   --socket PATH       serve an AF_UNIX socket instead
 *   --cache-dir DIR     persistence root (results.rec + traces/);
 *                       absent = memory-only caches
 *   --jobs N            sweep worker threads (0 = hardware)
 *   --trace-cache N     in-memory prepared-trace LRU capacity
 *   --max-insts N       reject requests above this warmup+insts
 *   --batch-max N       max frames drained into one batch
 *   --kill-after N      crash-inject: _Exit(42) after N recorded
 *                       cells, leaving a torn cache tail (tests)
 *   --no-events         suppress progress event frames
 *   --metrics-out FILE  enable metrics; write a snapshot at clean exit
 *
 * Error-handling split (DESIGN.md): operator errors — a bad flag, an
 * unusable cache directory — terminate via fatal() before serving.
 * Everything a *client* can cause is answered with a classified
 * status:"error" response; no request content reaches fatal().
 */
#include <csignal>
#include <cstdio>
#include <string>

#include "metrics/export.hh"
#include "metrics/registry.hh"
#include "service/daemon.hh"
#include "util/logging.hh"
#include "util/options.hh"

using namespace mlpsim;

int
main(int argc, char **argv)
{
    // A client that disconnects mid-write must surface as an EPIPE
    // Status on that connection, not kill the daemon with SIGPIPE.
    std::signal(SIGPIPE, SIG_IGN);

    Options opts(argc, argv);
    opts.rejectUnknown({"stdio", "socket", "cache-dir", "jobs",
                        "trace-cache", "max-insts", "batch-max",
                        "kill-after", "no-events", "metrics-out",
                        "stream-chunk"});

    const std::string socket_path = opts.getString("socket", "");
    if (opts.has("stdio") && !socket_path.empty())
        fatal("--stdio and --socket are mutually exclusive");

    service::DaemonConfig config;
    config.cacheDir = opts.getString("cache-dir", "");
    config.jobs = static_cast<unsigned>(opts.getU64("jobs", 0));
    config.traceCacheCapacity = opts.getU64("trace-cache", 4);
    config.maxInsts = opts.getU64("max-insts", 100'000'000);
    config.maxBatch =
        static_cast<unsigned>(opts.getU64("batch-max", 16));
    config.killAfter = opts.getU64("kill-after", 0);
    config.emitEvents = !opts.has("no-events");
    const uint64_t stream_chunk = opts.getU64("stream-chunk", 0);
    if (stream_chunk > (uint64_t(1) << 24))
        fatal("--stream-chunk must be <= 2^24");
    config.streamChunk = static_cast<uint32_t>(stream_chunk);
    if (config.streamChunk != 0 && !config.cacheDir.empty()) {
        // Streamed traces never spill; the result cache still
        // persists, so the combination is legal — just note it.
        std::fprintf(stderr, "mlpsimd: streamed traces do not use the "
                             "trace spill tier\n");
    }
    if (config.maxBatch == 0)
        fatal("--batch-max must be >= 1");
    if (config.killAfter != 0 && config.cacheDir.empty())
        fatal("--kill-after requires --cache-dir (nothing would "
              "survive the crash)");

    const std::string metrics_out = opts.getString("metrics-out", "");
    if (!metrics_out.empty())
        metrics::setEnabled(true);

    auto daemon = service::Daemon::create(config).orFatal();
    if (daemon->resultCache().persistent()) {
        std::fprintf(stderr,
                     "mlpsimd: result cache '%s/results.rec': %zu "
                     "cells warm%s\n",
                     config.cacheDir.c_str(),
                     daemon->resultCache().size(),
                     daemon->resultCache().salvaged()
                         ? " (salvaged corrupt tail)"
                         : "");
    }

    Status served;
    if (!socket_path.empty()) {
        std::fprintf(stderr, "mlpsimd: serving socket %s\n",
                     socket_path.c_str());
        served = daemon->serveSocket(socket_path);
    } else {
        served = daemon->serve(0, 1);
    }
    if (!served.ok())
        fatal("mlpsimd: ", served.toString());

    const service::ServiceStats &stats = daemon->stats();
    const service::TraceCache::Stats traces = daemon->traceStats();
    std::fprintf(stderr,
                 "mlpsimd: served %llu requests (%llu cells: %llu "
                 "hits, %llu computed; traces: %llu built, %llu "
                 "memory hits, %llu disk hits; %llu errors)\n",
                 static_cast<unsigned long long>(stats.requests),
                 static_cast<unsigned long long>(stats.cells),
                 static_cast<unsigned long long>(stats.cellHits),
                 static_cast<unsigned long long>(stats.cellsComputed),
                 static_cast<unsigned long long>(traces.builds),
                 static_cast<unsigned long long>(traces.memoryHits),
                 static_cast<unsigned long long>(traces.diskHits),
                 static_cast<unsigned long long>(
                     stats.responsesError));

    if (!metrics_out.empty()) {
        metrics::JsonValue meta = metrics::JsonValue::object();
        meta.set("tool", "mlpsimd");
        metrics::writeSnapshotFile(metrics_out, std::move(meta))
            .orFatal();
        std::fprintf(stderr, "mlpsimd: metrics written to %s\n",
                     metrics_out.c_str());
    }
    return 0;
}
