/**
 * @file
 * Fault-injection harness for the resilient sweep path.
 *
 * Runs a real (small) epoch-model sweep — every commercial workload
 * under issue configs 64C and 64E — and injects configurable faults
 * alongside it: jobs that hang until their deadline fires, jobs that
 * throw permanent errors, and flaky jobs that fail transiently a set
 * number of times before succeeding. In the default collect-all mode
 * the sweep runs to completion anyway: good cells print their results
 * (deterministically — the injected faults must not perturb them),
 * failed jobs degrade into the sweep report, and retried jobs show up
 * in the retry count. The faultinject_sweep ctest drives this binary
 * and validates the emitted report with
 * `metrics_check --kind sweep-report`.
 *
 * Usage:
 *   sweep_faultinject [--jobs N] [--insts N] [--warmup N]
 *       [--stuck N] [--throw N] [--flaky N] [--flaky-failures F]
 *       [--deadline-ms D] [--retries R] [--backoff-ms B] [--seed S]
 *       [--report FILE] [--journal FILE] [--propagate]
 *
 * This binary is also the demonstration of the Status-returning
 * option path: it uses Options::parse / checkKnown / tryGetU64 /
 * tryScaledInsts and reports flag errors recoverably on stderr with
 * exit code 2, where the benches' classic getters would fatal().
 */
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/mlpsim.hh"
#include "core/result_journal.hh"
#include "metrics/export.hh"
#include "util/cancellation.hh"
#include "util/options.hh"
#include "util/parallel.hh"
#include "workloads/factory.hh"

using namespace mlpsim;

namespace {

struct GridCell
{
    std::string label;
    core::MlpConfig config;
    const core::AnnotatedTrace *trace;
};

/** Spin until cancelled: the "stuck job" the watchdog exists for. */
void
stuckBody()
{
    for (;;) {
        pollCancellation();
        std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
}

int
flagError(const Status &status)
{
    std::fprintf(stderr, "sweep_faultinject: %s\n",
                 status.toString().c_str());
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    auto parsed = Options::parse(argc, argv);
    if (!parsed.ok())
        return flagError(parsed.status());
    const Options &opts = *parsed;
    const Status known = opts.checkKnown(
        {"jobs", "insts", "warmup", "stuck", "throw", "flaky",
         "flaky-failures", "deadline-ms", "retries", "backoff-ms",
         "seed", "report", "journal", "propagate"});
    if (!known.ok())
        return flagError(known);

    uint64_t insts = 0, warmup = 0, jobs = 0;
    uint64_t stuck = 0, throwing = 0, flaky = 0, flaky_failures = 0;
    uint64_t retries = 0, seed = 0;
    double deadline_ms = 0.0, backoff_ms = 0.0;
    {
        // Every getter returns Expected; the first failure aborts the
        // run with a description instead of a fatal() stack.
        struct Binding
        {
            uint64_t *out;
            Expected<uint64_t> value;
        };
        Binding bindings[] = {
            {&insts, opts.tryScaledInsts("insts", 20'000)},
            {&warmup, opts.tryScaledInsts("warmup", 2'000)},
            {&jobs, opts.tryGetU64("jobs", 2)},
            {&stuck, opts.tryGetU64("stuck", 0)},
            {&throwing, opts.tryGetU64("throw", 0)},
            {&flaky, opts.tryGetU64("flaky", 0)},
            {&flaky_failures, opts.tryGetU64("flaky-failures", 2)},
            {&retries, opts.tryGetU64("retries", 1)},
            {&seed, opts.tryGetU64("seed", 0)},
        };
        for (Binding &binding : bindings) {
            if (!binding.value.ok())
                return flagError(binding.value.status());
            *binding.out = *binding.value;
        }
        auto deadline = opts.tryGetDouble("deadline-ms", -1.0);
        if (!deadline.ok())
            return flagError(deadline.status());
        deadline_ms = *deadline;
        auto backoff = opts.tryGetDouble("backoff-ms", 1.0);
        if (!backoff.ok())
            return flagError(backoff.status());
        backoff_ms = *backoff;
    }
    if (stuck != 0 && deadline_ms < 0.0) {
        return flagError(Status::invalidArgument(
            "--stuck requires --deadline-ms (a stuck job would hang "
            "the sweep forever)"));
    }

    // ----- build the real grid ------------------------------------
    core::AnnotationOptions ann;
    ann.warmupInsts = warmup;

    std::vector<std::unique_ptr<trace::TraceBuffer>> buffers;
    std::vector<std::unique_ptr<core::AnnotatedTrace>> traces;
    std::vector<GridCell> cells;
    const std::pair<const char *, core::MlpConfig> configs[] = {
        {"64C", core::MlpConfig::defaultOoO()},
        {"64E", core::MlpConfig::sized(64, core::IssueConfig::E)},
    };
    for (const std::string &name : workloads::commercialWorkloadNames()) {
        auto generator = workloads::makeWorkload(name);
        buffers.push_back(
            std::make_unique<trace::TraceBuffer>(name));
        buffers.back()->fill(*generator, insts);
        auto annotated = core::AnnotatedTrace::make(*buffers.back(), ann);
        if (!annotated.ok())
            return flagError(annotated.status());
        traces.push_back(std::make_unique<core::AnnotatedTrace>(
            *std::move(annotated)));
        for (const auto &[key, config] : configs) {
            core::MlpConfig cell_config = config;
            cell_config.warmupInsts = warmup;
            cells.push_back(GridCell{name + "/" + key, cell_config,
                                     traces.back().get()});
        }
    }

    std::optional<core::ResultJournal> journal;
    const std::string journal_path = opts.getString("journal", "");
    if (!journal_path.empty()) {
        auto opened =
            core::ResultJournal::open(journal_path, warmup, insts);
        if (!opened.ok())
            return flagError(opened.status());
        journal = *std::move(opened);
    }

    // ----- defer everything ---------------------------------------
    SweepRunner runner{unsigned(jobs)};
    runner.setFailureMode(opts.has("propagate") ? FailureMode::Propagate
                                                : FailureMode::CollectAll);
    JobLimits limits;
    limits.deadlineMillis = deadline_ms;
    limits.retry.maxAttempts = unsigned(retries);
    limits.retry.baseBackoffMillis = backoff_ms;
    limits.retry.seed = seed;
    runner.setJobLimits(limits);

    std::vector<Job<core::MlpResult>> results(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const GridCell &cell = cells[i];
        std::string cell_key;
        core::MlpResult replay;
        if (journal) {
            cell_key = core::ResultJournal::key(
                cell.label, "faultinject",
                workloads::workloadSeed(
                    cell.label.substr(0, cell.label.find('/'))));
            if (journal->lookup(cell_key, &replay)) {
                std::printf("%-16s  mlp %.6f  (journal)\n",
                            cell.label.c_str(), replay.mlp());
                continue;
            }
        }
        results[i] = runner.defer<core::MlpResult>(
            cell.label, [&cell]() -> core::MlpResult {
                auto result =
                    core::tryRunMlp(cell.config, cell.trace->context());
                if (!result.ok())
                    throw StatusError(result.status());
                return *std::move(result);
            });
    }

    // Injected faults ride the same batch as the real cells.
    for (uint64_t i = 0; i < stuck; ++i)
        runner.deferVoid("inject/stuck" + std::to_string(i), stuckBody);
    for (uint64_t i = 0; i < throwing; ++i) {
        runner.deferVoid("inject/throw" + std::to_string(i), [] {
            throw StatusError(
                Status::dataLoss("injected permanent fault"));
        });
    }
    for (uint64_t i = 0; i < flaky; ++i) {
        auto attempts_seen = std::make_shared<std::atomic<uint64_t>>(0);
        runner.deferVoid("inject/flaky" + std::to_string(i),
                         [attempts_seen, flaky_failures] {
                             const uint64_t attempt =
                                 attempts_seen->fetch_add(1) + 1;
                             if (attempt <= flaky_failures) {
                                 throw StatusError(Status::unavailable(
                                     "injected transient fault (attempt ",
                                     attempt, ")"));
                             }
                         });
    }

    runner.runAll();

    // ----- report --------------------------------------------------
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (!results[i].valid() || !results[i].succeeded())
            continue;
        const core::MlpResult &result = results[i].get();
        std::printf("%-16s  mlp %.6f\n", cells[i].label.c_str(),
                    result.mlp());
        if (journal) {
            const std::string cell_key = core::ResultJournal::key(
                cells[i].label, "faultinject",
                workloads::workloadSeed(cells[i].label.substr(
                    0, cells[i].label.find('/'))));
            const Status st = journal->record(cell_key, result);
            if (!st.ok())
                warn(st.toString());
        }
    }

    const auto &batch = runner.lastBatch();
    const auto &failures = runner.lastFailures();
    std::printf("sweep: %zu jobs, %zu failed, %zu retries\n", batch.jobs,
                batch.failed, batch.retries);
    for (const JobFailure &failure : failures) {
        std::printf("  failed: %-16s  [%s] %s (attempts %u)\n",
                    failure.label.c_str(),
                    failureClassName(failure.failureClass()),
                    errorCodeName(failure.status.code()),
                    failure.attempts);
    }

    const std::string report_path = opts.getString("report", "");
    if (!report_path.empty()) {
        metrics::JsonValue meta = metrics::JsonValue::object();
        meta.set("tool", "sweep_faultinject");
        meta.set("insts", insts);
        meta.set("warmup", warmup);
        metrics::writeSweepReportFile(report_path, batch.jobs,
                                      batch.retries, failures,
                                      std::move(meta))
            .orFatal();
    }
    return 0;
}
