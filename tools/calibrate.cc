/**
 * @file
 * Workload calibration report.
 *
 * Prints, for each commercial workload, the trace characteristics the
 * paper reports (Table 1 miss rates, Table 5 in-order MLP, Figure 4/8
 * MLP points, Table 6 value-predictor statistics, Figure 5 inhibitor
 * mix) next to the paper's published values. Used while tuning the
 * synthetic workload parameters and kept as a tool so downstream users
 * adapting the generators can re-check their own presets.
 *
 * The target numbers come from a metrics snapshot — the embedded
 * paper-targets document by default (see workloads/paper_targets.hh,
 * committed as data/paper_targets.json), or any snapshot given with
 * --targets FILE, so a previous run's --metrics-out file can serve as
 * the baseline for a parameter-tuning diff.
 */
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/mlpsim.hh"
#include "metrics/export.hh"
#include "metrics/registry.hh"
#include "trace/trace_stats.hh"
#include "util/options.hh"
#include "util/parallel.hh"
#include "workloads/factory.hh"
#include "workloads/paper_targets.hh"

using namespace mlpsim;

namespace {

/** One materialised workload (buffer heap-allocated so moves are safe). */
struct Prep
{
    std::string name;
    std::unique_ptr<trace::TraceBuffer> buf;
    std::unique_ptr<core::AnnotatedTrace> ann;
};

/** The epoch-model cells calibrate reports for one workload. */
struct Cells
{
    Job<core::MlpResult> som, sou;
    std::vector<Job<core::MlpResult>> grid; //!< 4 windows x 5 configs
    Job<core::MlpResult> c64, rae, inf;
};

} // namespace

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    opts.rejectUnknown({"insts", "warmup", "workload", "l2mb", "jobs",
                        "targets", "metrics-out", "trace-events"});
    const uint64_t warmup = opts.scaledInsts("warmup", 1'000'000);
    const uint64_t measure = opts.scaledInsts("insts", 3'000'000);
    const uint64_t total = warmup + measure;
    const uint64_t l2mb = opts.getU64("l2mb", 2);

    const std::string targets_path = opts.getString("targets", "");
    const metrics::JsonValue targets_doc =
        targets_path.empty()
            ? workloads::paperTargetsSnapshot()
            : metrics::readJsonFile(targets_path).orFatal();

    const std::string metrics_out = opts.getString("metrics-out", "");
    const std::string trace_events = opts.getString("trace-events", "");
    if (!metrics_out.empty() || !trace_events.empty()) {
        metrics::setEnabled(true);
        metrics::installSweepIsolation();
    }

    std::vector<std::string> names;
    for (const auto &name : workloads::commercialWorkloadNames()) {
        if (opts.has("workload") &&
            opts.getString("workload", "") != name) {
            continue;
        }
        names.push_back(name);
    }

    SweepRunner runner(unsigned(opts.getU64("jobs", 0)));

    // Stage 1: materialise + annotate every workload concurrently.
    std::vector<Job<Prep>> prepJobs;
    for (const auto &name : names) {
        prepJobs.push_back(runner.defer<Prep>(
            "prepare " + name, [name, total, warmup, l2mb] {
                metrics::ScopedLabel wl_label(name);
                Prep prep;
                prep.name = name;
                auto wl = workloads::makeWorkload(
                    name, workloads::workloadSeed(name));
                prep.buf = std::make_unique<trace::TraceBuffer>(name);
                prep.buf->fill(*wl, total);

                core::AnnotationOptions aopts;
                aopts.warmupInsts = warmup;
                aopts.hierarchy.l2.sizeBytes = l2mb * 1024 * 1024;
                prep.ann = std::make_unique<core::AnnotatedTrace>(
                    *prep.buf, aopts);
                return prep;
            }));
    }
    runner.runAll();

    std::vector<Prep> preps;
    for (auto &job : prepJobs)
        preps.push_back(job.take());

    // Stage 2: every epoch-model cell of every workload concurrently.
    using core::IssueConfig;
    auto defer = [&](const Prep &prep, core::MlpConfig cfg) {
        cfg.warmupInsts = warmup;
        const core::AnnotatedTrace *ann = prep.ann.get();
        const std::string name = prep.name;
        return runner.defer<core::MlpResult>(
            "mlp " + prep.name, [cfg, ann, name] {
                metrics::ScopedLabel wl_label(name);
                metrics::ScopedLabel cfg_label(cfg.metricLabel());
                return core::runMlp(cfg, ann->context());
            });
    };

    std::vector<Cells> cells(preps.size());
    for (size_t w = 0; w < preps.size(); ++w) {
        core::MlpConfig som;
        som.mode = core::CoreMode::InOrderStallOnMiss;
        core::MlpConfig sou;
        sou.mode = core::CoreMode::InOrderStallOnUse;
        cells[w].som = defer(preps[w], som);
        cells[w].sou = defer(preps[w], sou);
        for (unsigned window : {32u, 64u, 128u, 256u}) {
            for (auto ic : {IssueConfig::A, IssueConfig::B,
                            IssueConfig::C, IssueConfig::D,
                            IssueConfig::E}) {
                cells[w].grid.push_back(defer(
                    preps[w], core::MlpConfig::sized(window, ic)));
            }
        }
        cells[w].c64 = defer(
            preps[w], core::MlpConfig::sized(64, IssueConfig::C));
        cells[w].rae = defer(preps[w], core::MlpConfig::runahead());
        cells[w].inf = defer(preps[w], core::MlpConfig::infinite());
    }
    runner.runAll();

    for (size_t w = 0; w < preps.size(); ++w) {
        const std::string &name = preps[w].name;
        const trace::TraceBuffer &buf = *preps[w].buf;
        const core::AnnotatedTrace &ann = *preps[w].ann;
        const auto &m = ann.misses();
        const auto t =
            workloads::targetsFromSnapshot(targets_doc, name).orFatal();

        const auto mix = [&] {
            auto cursor = buf.cursor();
            return trace::measureMix(cursor, total);
        }();

        std::printf("=== %s (%llu insts measured) ===\n", name.c_str(),
                    (unsigned long long)measure);
        std::printf("mix: loads=%.1f%% stores=%.1f%% branches=%.1f%% "
                    "serializing=%.3f%% prefetch=%.2f%%\n",
                    100 * mix.fracLoads(), 100 * mix.fracStores(),
                    100 * mix.fracBranches(),
                    100 * mix.fracSerializing(),
                    100 * mix.fracPrefetches());
        std::printf("miss/100: %.3f (paper %.2f)   [dmiss %.3f  imiss "
                    "%.3f  pmiss %.3f]   mispredict %.1f%%\n",
                    m.missRatePer100(), t.missPer100,
                    100.0 * double(m.loadMisses) / double(measure),
                    100.0 * double(m.fetchMisses) / double(measure),
                    100.0 * double(m.usefulPrefetches) / double(measure),
                    100 * ann.branches().mispredictRate());
        std::printf("VP: correct=%.0f%% wrong=%.0f%% nopred=%.0f%% "
                    "(paper C/W/N: db 42/7/51 jbb 20/3/77 web "
                    "25/5/70)\n",
                    100 * ann.values().fracCorrect(),
                    100 * ann.values().fracWrong(),
                    100 * ann.values().fracNoPredict());

        // Where do the demand misses come from? Bucket by the top
        // address nibbles (each workload gives its regions distinct
        // high bits).
        {
            std::map<uint64_t, uint64_t> regions;
            for (size_t i = warmup; i < buf.size(); ++i) {
                if (m.dataMiss(i))
                    ++regions[buf.at(i).effAddr >> 32];
            }
            std::printf("dmiss regions (addr>>32):");
            for (auto &[r, c] : regions)
                std::printf(" 0x%llx:%llu", (unsigned long long)r,
                            (unsigned long long)c);
            std::printf("\n");
        }

        std::printf("MLP: som=%.2f(%.2f) sou=%.2f(%.2f)\n",
                    cells[w].som.get().mlp(), t.mlpSom,
                    cells[w].sou.get().mlp(), t.mlpSou);
        size_t cell = 0;
        for (unsigned window : {32u, 64u, 128u, 256u}) {
            std::printf("  w=%-3u", window);
            for (auto ic : {IssueConfig::A, IssueConfig::B,
                            IssueConfig::C, IssueConfig::D,
                            IssueConfig::E}) {
                std::printf(" %s=%.2f", core::issueConfigName(ic),
                            cells[w].grid[cell++].get().mlp());
            }
            std::printf("\n");
        }
        std::printf("  64C=%.2f(paper %.2f) RAE=%.2f(paper %.1f) "
                    "INF=%.2f\n",
                    cells[w].c64.get().mlp(), t.mlp64C,
                    cells[w].rae.get().mlp(), t.mlpRunahead,
                    cells[w].inf.get().mlp());

        const auto &r = cells[w].c64.get();
        std::printf("64C inhibitors:");
        for (size_t i = 0; i < core::numInhibitors; ++i) {
            const auto inh = static_cast<core::Inhibitor>(i);
            if (r.inhibitors[inh]) {
                std::printf(" %s=%.0f%%", core::inhibitorName(inh),
                            100 * r.inhibitors.fraction(inh));
            }
        }
        std::printf("\n\n");
    }

    if (!metrics_out.empty()) {
        metrics::JsonValue meta = metrics::JsonValue::object();
        meta.set("tool", "calibrate");
        meta.set("warmup_insts", warmup);
        meta.set("measure_insts", measure);
        metrics::writeSnapshotFile(metrics_out, std::move(meta)).orFatal();
    }
    if (!trace_events.empty())
        metrics::writeTraceEventsFile(trace_events).orFatal();
    return 0;
}
