/**
 * @file
 * Workload calibration report.
 *
 * Prints, for each commercial workload, the trace characteristics the
 * paper reports (Table 1 miss rates, Table 5 in-order MLP, Figure 4/8
 * MLP points, Table 6 value-predictor statistics, Figure 5 inhibitor
 * mix) next to the paper's published values. Used while tuning the
 * synthetic workload parameters and kept as a tool so downstream users
 * adapting the generators can re-check their own presets.
 */
#include <cstdio>
#include <map>

#include "core/mlpsim.hh"
#include "trace/trace_stats.hh"
#include "util/options.hh"
#include "workloads/factory.hh"

using namespace mlpsim;

namespace {

struct PaperTargets
{
    double missRate, mlp64C, som, sou, rae;
};

PaperTargets
targets(const std::string &name)
{
    if (name == "database")
        return {0.84, 1.38, 1.02, 1.06, 2.5};
    if (name == "specjbb2000")
        return {0.19, 1.13, 1.00, 1.01, 2.3};
    return {0.09, 1.28, 1.10, 1.13, 1.9};
}

double
runCfg(core::MlpConfig cfg, const core::WorkloadContext &ctx,
       uint64_t warmup)
{
    cfg.warmupInsts = warmup;
    return core::runMlp(cfg, ctx).mlp();
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    opts.rejectUnknown({"insts", "warmup", "workload", "l2mb"});
    const uint64_t warmup = opts.scaledInsts("warmup", 1'000'000);
    const uint64_t measure = opts.scaledInsts("insts", 3'000'000);
    const uint64_t total = warmup + measure;

    for (const auto &name : workloads::commercialWorkloadNames()) {
        if (opts.has("workload") &&
            opts.getString("workload", "") != name) {
            continue;
        }
        auto wl = workloads::makeWorkload(name);
        trace::TraceBuffer buf(name);
        buf.fill(*wl, total);

        core::AnnotationOptions aopts;
        aopts.warmupInsts = warmup;
        aopts.hierarchy.l2.sizeBytes =
            opts.getU64("l2mb", 2) * 1024 * 1024;
        core::AnnotatedTrace ann(buf, aopts);
        const auto ctx = ann.context();
        const auto &m = ann.misses();
        const auto t = targets(name);

        const auto mix = [&] {
            auto cursor = buf.cursor();
            return trace::measureMix(cursor, total);
        }();

        std::printf("=== %s (%llu insts measured) ===\n", name.c_str(),
                    (unsigned long long)measure);
        std::printf("mix: loads=%.1f%% stores=%.1f%% branches=%.1f%% "
                    "serializing=%.3f%% prefetch=%.2f%%\n",
                    100 * mix.fracLoads(), 100 * mix.fracStores(),
                    100 * mix.fracBranches(),
                    100 * mix.fracSerializing(),
                    100 * mix.fracPrefetches());
        std::printf("miss/100: %.3f (paper %.2f)   [dmiss %.3f  imiss "
                    "%.3f  pmiss %.3f]   mispredict %.1f%%\n",
                    m.missRatePer100(), t.missRate,
                    100.0 * double(m.loadMisses) / double(measure),
                    100.0 * double(m.fetchMisses) / double(measure),
                    100.0 * double(m.usefulPrefetches) / double(measure),
                    100 * ann.branches().mispredictRate());
        std::printf("VP: correct=%.0f%% wrong=%.0f%% nopred=%.0f%% "
                    "(paper C/W/N: db 42/7/51 jbb 20/3/77 web "
                    "25/5/70)\n",
                    100 * ann.values().fracCorrect(),
                    100 * ann.values().fracWrong(),
                    100 * ann.values().fracNoPredict());

        // Where do the demand misses come from? Bucket by the top
        // address nibbles (each workload gives its regions distinct
        // high bits).
        {
            std::map<uint64_t, uint64_t> regions;
            for (size_t i = warmup; i < buf.size(); ++i) {
                if (m.dataMiss(i))
                    ++regions[buf.at(i).effAddr >> 32];
            }
            std::printf("dmiss regions (addr>>32):");
            for (auto &[r, c] : regions)
                std::printf(" 0x%llx:%llu", (unsigned long long)r,
                            (unsigned long long)c);
            std::printf("\n");
        }

        using core::IssueConfig;
        core::MlpConfig som;
        som.mode = core::CoreMode::InOrderStallOnMiss;
        core::MlpConfig sou;
        sou.mode = core::CoreMode::InOrderStallOnUse;
        std::printf("MLP: som=%.2f(%.2f) sou=%.2f(%.2f)\n",
                    runCfg(som, ctx, warmup), t.som,
                    runCfg(sou, ctx, warmup), t.sou);
        for (unsigned window : {32u, 64u, 128u, 256u}) {
            std::printf("  w=%-3u", window);
            for (auto ic : {IssueConfig::A, IssueConfig::B,
                            IssueConfig::C, IssueConfig::D,
                            IssueConfig::E}) {
                std::printf(" %s=%.2f", core::issueConfigName(ic),
                            runCfg(core::MlpConfig::sized(window, ic),
                                   ctx, warmup));
            }
            std::printf("\n");
        }
        std::printf("  64C=%.2f(paper %.2f) RAE=%.2f(paper %.1f) "
                    "INF=%.2f\n",
                    runCfg(core::MlpConfig::sized(64, IssueConfig::C),
                           ctx, warmup), t.mlp64C,
                    runCfg(core::MlpConfig::runahead(), ctx, warmup),
                    t.rae,
                    runCfg(core::MlpConfig::infinite(), ctx, warmup));

        auto cfg64c = core::MlpConfig::sized(64, IssueConfig::C);
        cfg64c.warmupInsts = warmup;
        const auto r = core::runMlp(cfg64c, ctx);
        std::printf("64C inhibitors:");
        for (size_t i = 0; i < core::numInhibitors; ++i) {
            const auto inh = static_cast<core::Inhibitor>(i);
            if (r.inhibitors[inh]) {
                std::printf(" %s=%.0f%%", core::inhibitorName(inh),
                            100 * r.inhibitors.fraction(inh));
            }
        }
        std::printf("\n\n");
    }
    return 0;
}
