/**
 * @file
 * Golden-result regression gate for the epoch-model simulators.
 *
 * Runs a small fixed sweep — every commercial workload under issue
 * configs A..E plus the runahead, value-prediction and store-buffer
 * variants — and serialises every numeric field of each MlpResult
 * (epochs, access tallies, inhibitor taxonomy, accesses-per-epoch
 * histogram) into one canonical JSON document. The committed copy in
 * data/golden_results.json is the reference; the golden_results ctest
 * re-runs the sweep and fails on any drift, which is what lets the
 * engine internals be rewritten while proving results stay
 * bit-identical.
 *
 * Usage:
 *   golden_check --check FILE   # compare a fresh sweep against FILE
 *   golden_check --write FILE   # (re)generate FILE
 *
 * Checkpoint/resume (the golden_resume ctest):
 *   --journal FILE      persist each completed cell to FILE and skip
 *                       cells FILE already has (core/result_journal.hh)
 *   --kill-after N      simulate a crash: _Exit(42) after N cells have
 *                       been *computed* this run (replays don't count)
 *
 * A killed run resumed against the same journal produces a document
 * byte-identical to an uninterrupted run — replayed cells are the
 * exact MlpResult records the first run journalled.
 *
 * The sweep is deterministic end to end: workload generators use
 * their fixed default seeds, annotation substrates are replayed in
 * program order, and MLP (the only double) is a single IEEE division
 * of two integers, so the document compares exactly.
 */
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "core/mlpsim.hh"
#include "core/result_json.hh"
#include "core/result_journal.hh"
#include "metrics/json.hh"
#include "util/logging.hh"
#include "util/options.hh"
#include "workloads/factory.hh"

using namespace mlpsim;
using metrics::JsonValue;

namespace {

constexpr uint64_t goldenInsts = 30'000;
constexpr uint64_t goldenWarmup = 5'000;

/** One simulated machine of the golden sweep. */
struct GoldenConfig
{
    const char *key; //!< stable name used in the JSON document
    core::MlpConfig config;
};

std::vector<GoldenConfig>
goldenConfigs()
{
    using core::IssueConfig;
    using core::MlpConfig;

    std::vector<GoldenConfig> configs;
    const char *names[] = {"64A", "64B", "64C", "64D", "64E"};
    const IssueConfig issues[] = {IssueConfig::A, IssueConfig::B,
                                  IssueConfig::C, IssueConfig::D,
                                  IssueConfig::E};
    for (unsigned i = 0; i < 5; ++i)
        configs.push_back({names[i], MlpConfig::sized(64, issues[i])});

    configs.push_back({"RA", MlpConfig::runahead()});

    MlpConfig vp = MlpConfig::defaultOoO();
    vp.valuePrediction = true;
    configs.push_back({"64C+vp", vp});

    MlpConfig sb = MlpConfig::defaultOoO();
    sb.finiteStoreBuffer = true;
    configs.push_back({"64C+sb", sb});

    for (GoldenConfig &gc : configs)
        gc.config.warmupInsts = goldenWarmup;
    return configs;
}

JsonValue
runGoldenSweep(core::ResultJournal *journal, uint64_t kill_after)
{
    core::AnnotationOptions ann;
    ann.warmupInsts = goldenWarmup;

    uint64_t computed = 0;
    JsonValue results = JsonValue::object();
    for (const std::string &name : workloads::commercialWorkloadNames()) {
        auto generator = workloads::makeWorkload(name);
        trace::TraceBuffer buffer(name);
        buffer.fill(*generator, goldenInsts);
        const core::AnnotatedTrace annotated(buffer, ann);
        for (const GoldenConfig &gc : goldenConfigs()) {
            const std::string cell_key = core::ResultJournal::key(
                name, gc.key, workloads::workloadSeed(name));
            core::MlpResult r;
            if (journal && journal->lookup(cell_key, &r)) {
                // Completed by a previous (possibly killed) run;
                // replay the journalled result instead of recomputing.
                results.set(name + "/" + gc.key, resultToJson(r));
                continue;
            }
            r = core::runMlp(gc.config, annotated.context());
            if (journal)
                journal->record(cell_key, r).orFatal();
            results.set(name + "/" + gc.key, resultToJson(r));
            if (kill_after != 0 && ++computed >= kill_after) {
                // Simulated crash for the golden_resume ctest: the
                // journalled cells survive, nothing else does. _Exit
                // skips destructors on purpose — a real kill would too.
                std::fprintf(stderr,
                             "golden_check: simulated crash after %llu "
                             "computed cells\n",
                             static_cast<unsigned long long>(computed));
                std::_Exit(42);
            }
        }
    }

    JsonValue doc = JsonValue::object();
    doc.set("schema", "mlpsim-golden-results-v1");
    JsonValue meta = JsonValue::object();
    meta.set("insts", goldenInsts);
    meta.set("warmup", goldenWarmup);
    doc.set("meta", std::move(meta));
    doc.set("results", std::move(results));
    return doc;
}

/** First path at which two documents differ, for an actionable diff. */
std::string
firstDifference(const JsonValue &a, const JsonValue &b,
                const std::string &path)
{
    if (a.isObject() && b.isObject()) {
        for (const auto &[key, value] : a.members()) {
            const JsonValue *other = b.find(key);
            if (!other)
                return path + "/" + key + " (missing from golden file)";
            if (value != *other) {
                const std::string hit =
                    firstDifference(value, *other, path + "/" + key);
                if (!hit.empty())
                    return hit;
            }
        }
        for (const auto &[key, value] : b.members()) {
            if (!a.find(key))
                return path + "/" + key + " (missing from this run)";
        }
        return path;
    }
    return path + ": got " + a.dump(0) + ", golden " + b.dump(0);
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    opts.rejectUnknown({"check", "write", "journal", "kill-after"});

    const std::string check = opts.getString("check", "");
    const std::string write = opts.getString("write", "");
    if (check.empty() == write.empty())
        fatal("exactly one of --check FILE / --write FILE is required");

    const std::string journal_path = opts.getString("journal", "");
    const uint64_t kill_after = opts.getU64("kill-after", 0);
    if (kill_after != 0 && journal_path.empty())
        fatal("--kill-after requires --journal (nothing would survive)");

    std::optional<core::ResultJournal> journal;
    if (!journal_path.empty()) {
        journal = core::ResultJournal::open(journal_path, goldenWarmup,
                                            goldenInsts)
                      .orFatal();
        if (journal->size() != 0) {
            std::fprintf(stderr,
                         "golden_check: resuming, %zu cells on record%s\n",
                         journal->size(),
                         journal->salvaged() ? " (salvaged corrupt tail)"
                                             : "");
        }
    }

    const JsonValue fresh =
        runGoldenSweep(journal ? &*journal : nullptr, kill_after);

    if (!write.empty()) {
        metrics::writeJsonFile(write, fresh).orFatal();
        std::printf("%s: written (%zu cells)\n", write.c_str(),
                    fresh.find("results")->members().size());
        return 0;
    }

    const JsonValue golden = metrics::readJsonFile(check).orFatal();
    if (fresh != golden) {
        fatal(check, ": results drifted from golden at ",
              firstDifference(fresh, golden, ""),
              "; if the change is intended, regenerate with "
              "golden_check --write ", check);
    }
    std::printf("%s: matches (%zu cells, %llu insts each)\n",
                check.c_str(),
                fresh.find("results")->members().size(),
                static_cast<unsigned long long>(goldenInsts));
    return 0;
}
