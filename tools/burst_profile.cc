/**
 * @file
 * Off-chip burst profile.
 *
 * The paper (Section 4.1) notes that MLPsim "can be used as a simple
 * processor model that accurately estimates the clustering of off-chip
 * accesses in simulation-based queueing models of memory and system
 * interconnects". This tool produces exactly that input: for a chosen
 * machine, the distribution of simultaneous off-chip accesses per
 * epoch (burst sizes), their mean, and the epoch-arrival statistics a
 * queueing model of the memory system needs.
 *
 * Usage: ./burst_profile [--workload NAME] [--machine 64C|RAE|INF|som]
 *                        [--insts N] [--warmup N] [--jobs N]
 *                        [--metrics-out FILE] [--trace-events FILE]
 */
#include <cstdio>
#include <string>
#include <vector>

#include "core/mlpsim.hh"
#include "metrics/export.hh"
#include "metrics/registry.hh"
#include "util/logging.hh"
#include "util/options.hh"
#include "util/parallel.hh"
#include "util/table.hh"
#include "workloads/factory.hh"

using namespace mlpsim;

namespace {

core::MlpConfig
machineByName(const std::string &name)
{
    if (name == "RAE")
        return core::MlpConfig::runahead();
    if (name == "INF")
        return core::MlpConfig::infinite();
    if (name == "som") {
        core::MlpConfig cfg;
        cfg.mode = core::CoreMode::InOrderStallOnMiss;
        return cfg;
    }
    if (name == "sou") {
        core::MlpConfig cfg;
        cfg.mode = core::CoreMode::InOrderStallOnUse;
        return cfg;
    }
    // "<window><config>" labels like 64C / 128E.
    const size_t split = name.find_first_not_of("0123456789");
    if (split == std::string::npos || split == 0)
        fatal("unknown machine '", name, "'");
    const unsigned window = unsigned(std::stoul(name.substr(0, split)));
    const char cfg_letter = name[split];
    if (cfg_letter < 'A' || cfg_letter > 'E')
        fatal("unknown issue config '", name.substr(split), "'");
    return core::MlpConfig::sized(
        window, static_cast<core::IssueConfig>(cfg_letter - 'A'));
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    opts.rejectUnknown({"insts", "warmup", "machine", "workload", "jobs",
                        "metrics-out", "trace-events"});
    if (opts.has("workload"))
        workloads::tryMakeWorkload(opts.getString("workload", ""))
            .orFatal();
    const uint64_t warmup = opts.scaledInsts("warmup", 1'000'000);
    const uint64_t measure = opts.scaledInsts("insts", 3'000'000);
    const std::string machine = opts.getString("machine", "64C");

    const std::string metrics_out = opts.getString("metrics-out", "");
    const std::string trace_events = opts.getString("trace-events", "");
    if (!metrics_out.empty() || !trace_events.empty()) {
        metrics::setEnabled(true);
        metrics::installSweepIsolation();
    }

    // One job per workload: prepare + annotate + simulate; results are
    // printed in canonical order regardless of completion order.
    SweepRunner runner(unsigned(opts.getU64("jobs", 0)));
    std::vector<std::string> names;
    std::vector<Job<core::MlpResult>> cells;
    for (const auto &name : workloads::commercialWorkloadNames()) {
        if (opts.has("workload") &&
            opts.getString("workload", "") != name) {
            continue;
        }
        names.push_back(name);
        cells.push_back(runner.defer<core::MlpResult>(
            name, [name, warmup, measure, &machine] {
                metrics::ScopedLabel wl_label(name);
                metrics::ScopedLabel cfg_label(
                    machineByName(machine).metricLabel());
                auto generator = workloads::makeWorkload(
                    name, workloads::workloadSeed(name));
                trace::TraceBuffer buffer(name);
                buffer.fill(*generator, warmup + measure);
                core::AnnotationOptions annotation;
                annotation.warmupInsts = warmup;
                core::AnnotatedTrace annotated(buffer, annotation);

                core::MlpConfig cfg = machineByName(machine);
                cfg.warmupInsts = warmup;
                return core::runMlp(cfg, annotated.context());
            }));
    }
    runner.runAll();

    for (size_t w = 0; w < names.size(); ++w) {
        const std::string &name = names[w];
        const auto &r = cells[w].get();

        std::printf("== %s on %s ==\n", name.c_str(), machine.c_str());
        std::printf("epochs: %llu   accesses: %llu   MLP: %.3f   "
                    "epoch arrival rate: %.4f per instruction\n",
                    (unsigned long long)r.epochs,
                    (unsigned long long)r.usefulAccesses, r.mlp(),
                    r.measuredInsts
                        ? double(r.epochs) / double(r.measuredInsts)
                        : 0.0);

        TextTable table({"burst size", "epochs", "fraction",
                         "cumulative"});
        uint64_t running = 0;
        for (const auto &[size, count] :
             r.accessesPerEpoch.buckets()) {
            running += count;
            if (size > 16 && count < r.epochs / 1000)
                continue; // compress the long tail
            table.addRow({std::to_string(size), std::to_string(count),
                          TextTable::num(double(count) /
                                             double(r.epochs),
                                         4),
                          TextTable::num(double(running) /
                                             double(r.epochs),
                                         4)});
        }
        std::printf("%s", table.render().c_str());
        std::printf("p50/p90/p99 burst size: %llu / %llu / %llu\n\n",
                    (unsigned long long)r.accessesPerEpoch.quantile(0.5),
                    (unsigned long long)r.accessesPerEpoch.quantile(0.9),
                    (unsigned long long)
                        r.accessesPerEpoch.quantile(0.99));
    }

    if (!metrics_out.empty()) {
        metrics::JsonValue meta = metrics::JsonValue::object();
        meta.set("tool", "burst_profile");
        meta.set("machine", machine);
        meta.set("warmup_insts", warmup);
        meta.set("measure_insts", measure);
        metrics::writeSnapshotFile(metrics_out, std::move(meta)).orFatal();
    }
    if (!trace_events.empty())
        metrics::writeTraceEventsFile(trace_events).orFatal();
    return 0;
}
