/**
 * @file
 * Validator for the JSON files the benches and tools emit.
 *
 * Used by the bench_smoke ctest suite: after a tiny sweep writes its
 * --metrics-out / --trace-events files, this tool checks that the
 * document parses with the strict metrics/json.hh reader, carries the
 * expected schema and required keys, and survives a full
 * dump-parse-compare round trip (writer and reader agree exactly).
 *
 * Usage:
 *   metrics_check --in FILE
 *                 [--kind snapshot|trace|bench-perf|sweep-report
 *                        |sweep-request|sweep-response]
 *                 [--require path1,path2,...]
 *   metrics_check --dump-paper-targets   # print the embedded targets
 *
 * --require names metric paths (snapshot), event names (trace),
 * result keys (bench-perf) or failed-job labels (sweep-report) that
 * must be present. For bench-perf a "bench:NAME" token instead
 * requires a result row whose "bench" field is NAME, and a
 * "max-rss-kb:NAME:KB" token additionally asserts that every result
 * row for bench NAME reports peak_rss_kb at or below KB — the CI
 * ceiling that keeps the streaming pipeline's footprint honest.
 *
 * The mlpsimd wire kinds run the *daemon's own* validators
 * (service/wire.hh), so a request file that passes here is exactly a
 * request the daemon would accept. Their --require tokens:
 *   sweep-request:  "workload:NAME", "config:NAME" (a config with
 *                   that display name), or a plain top-level key;
 *   sweep-response: "status:ok" / "status:error", "config:NAME" (a
 *                   result row for that config), or a plain key every
 *                   result row must carry.
 *
 * Exit status is 0 only if every check passes; failures are fatal()
 * with a description.
 */
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "metrics/export.hh"
#include "metrics/json.hh"
#include "service/wire.hh"
#include "util/logging.hh"
#include "util/options.hh"
#include "workloads/paper_targets.hh"

using namespace mlpsim;
using metrics::JsonValue;

namespace {

std::vector<std::string>
splitCommas(const std::string &list)
{
    std::vector<std::string> out;
    size_t begin = 0;
    while (begin <= list.size()) {
        const size_t end = list.find(',', begin);
        if (end == std::string::npos) {
            if (begin < list.size())
                out.push_back(list.substr(begin));
            break;
        }
        if (end > begin)
            out.push_back(list.substr(begin, end - begin));
        begin = end + 1;
    }
    return out;
}

const JsonValue &
requireMember(const JsonValue &doc, const std::string &key,
              const char *what)
{
    const JsonValue *member = doc.find(key);
    if (!member)
        fatal(what, " lacks required member \"", key, "\"");
    return *member;
}

void
checkSnapshot(const JsonValue &doc,
              const std::vector<std::string> &required)
{
    const JsonValue &schema = requireMember(doc, "schema", "snapshot");
    if (!schema.isString() || schema.string() != metrics::snapshotSchema)
        fatal("snapshot schema is not ", metrics::snapshotSchema);
    if (!requireMember(doc, "meta", "snapshot").isObject())
        fatal("snapshot \"meta\" is not an object");
    const JsonValue &paths = requireMember(doc, "metrics", "snapshot");
    if (!paths.isObject())
        fatal("snapshot \"metrics\" is not an object");
    for (const auto &[path, metric] : paths.members()) {
        if (!metric.isObject() || !metric.find("kind"))
            fatal("metric '", path, "' has no \"kind\"");
    }
    for (const auto &path : required) {
        if (!paths.find(path))
            fatal("snapshot lacks required metric '", path, "'");
    }
}

void
checkTrace(const JsonValue &doc, const std::vector<std::string> &required)
{
    const JsonValue &events = requireMember(doc, "traceEvents", "trace");
    if (!events.isArray())
        fatal("\"traceEvents\" is not an array");
    for (const JsonValue &event : events.items()) {
        for (const char *key : {"name", "ph", "ts", "dur", "tid"}) {
            if (!event.find(key))
                fatal("trace event lacks \"", key, "\"");
        }
    }
    for (const auto &name : required) {
        bool found = false;
        for (const JsonValue &event : events.items())
            found = found || (event.find("name") &&
                              event.find("name")->isString() &&
                              event.find("name")->string() == name);
        if (!found)
            fatal("trace has no event named '", name, "'");
    }
}

void
checkBenchPerf(const JsonValue &doc,
               const std::vector<std::string> &required)
{
    const JsonValue &schema = requireMember(doc, "schema", "bench-perf");
    if (!schema.isString() || schema.string() != metrics::benchPerfSchema)
        fatal("bench-perf schema is not ", metrics::benchPerfSchema);
    const JsonValue &results = requireMember(doc, "results", "bench-perf");
    if (!results.isArray() || results.size() == 0)
        fatal("bench-perf \"results\" is not a non-empty array");
    // A plain --require token is a key every result row must carry; a
    // "bench:NAME" token instead asserts that at least one row reports
    // benchmark NAME (e.g. bench:CycleSim for the cyclesim-only pass);
    // a "max-rss-kb:NAME:KB" token caps peak_rss_kb on NAME's rows; a
    // "min-ratio:NUM/DEN:R" token asserts that NUM's best instr_per_s
    // is at least R times DEN's best — the CI floor that keeps the
    // streamed fan-out within striking distance of materialised replay.
    std::vector<std::string> keys = {"bench",  "workload",    "config",
                                     "wall_s", "instr_per_s", "peak_rss_kb"};
    std::vector<std::string> benches;
    std::vector<std::pair<std::string, uint64_t>> rss_ceilings;
    struct RatioFloor
    {
        std::string numerator;
        std::string denominator;
        double floor;
    };
    std::vector<RatioFloor> ratio_floors;
    for (const auto &token : required) {
        if (token.rfind("bench:", 0) == 0) {
            benches.push_back(token.substr(6));
        } else if (token.rfind("min-ratio:", 0) == 0) {
            const std::string spec = token.substr(10);
            const size_t slash = spec.find('/');
            const size_t colon = spec.find(':', slash + 1);
            char *end = nullptr;
            const double floor =
                colon == std::string::npos
                    ? 0.0
                    : std::strtod(spec.c_str() + colon + 1, &end);
            if (slash == std::string::npos ||
                colon == std::string::npos || slash == 0 ||
                colon <= slash + 1 || floor <= 0.0 ||
                end != spec.c_str() + spec.size()) {
                fatal("malformed --require token '", token,
                      "' (want min-ratio:NUM_BENCH/DEN_BENCH:RATIO)");
            }
            ratio_floors.push_back({spec.substr(0, slash),
                                    spec.substr(slash + 1,
                                                colon - slash - 1),
                                    floor});
        } else if (token.rfind("max-rss-kb:", 0) == 0) {
            const std::string spec = token.substr(11);
            const size_t colon = spec.find(':');
            char *end = nullptr;
            const uint64_t kb =
                colon == std::string::npos
                    ? 0
                    : std::strtoull(spec.c_str() + colon + 1, &end, 10);
            if (colon == std::string::npos || kb == 0 ||
                end != spec.c_str() + spec.size()) {
                fatal("malformed --require token '", token,
                      "' (want max-rss-kb:BENCH:KILOBYTES)");
            }
            rss_ceilings.emplace_back(spec.substr(0, colon), kb);
        } else {
            keys.push_back(token);
        }
    }
    for (const JsonValue &row : results.items()) {
        for (const auto &key : keys) {
            if (!row.find(key))
                fatal("bench-perf result lacks \"", key, "\"");
        }
    }
    for (const auto &bench : benches) {
        bool found = false;
        for (const JsonValue &row : results.items())
            found = found || (row.find("bench") &&
                              row.find("bench")->isString() &&
                              row.find("bench")->string() == bench);
        if (!found)
            fatal("bench-perf has no result row for bench '", bench, "'");
    }
    for (const auto &[bench, ceiling_kb] : rss_ceilings) {
        bool found = false;
        for (const JsonValue &row : results.items()) {
            if (!row.find("bench") || !row.find("bench")->isString() ||
                row.find("bench")->string() != bench) {
                continue;
            }
            found = true;
            const JsonValue *rss = row.find("peak_rss_kb");
            if (!rss->isNumber()) {
                fatal("bench-perf row for '", bench,
                      "' has a non-numeric peak_rss_kb");
            }
            if (rss->uinteger() > ceiling_kb) {
                fatal("bench-perf row for '", bench, "' peaked at ",
                      rss->uinteger(), " kB RSS, over the ", ceiling_kb,
                      " kB ceiling — the streaming path is "
                      "materialising something it should not");
            }
        }
        if (!found) {
            fatal("bench-perf has no result row for bench '", bench,
                  "' to apply the RSS ceiling to");
        }
    }
    for (const auto &ratio : ratio_floors) {
        // Best row per bench: the floor compares peak capability, so a
        // deliberately small config on one side cannot fail the gate.
        const auto best = [&results](const std::string &bench) {
            double out = -1.0;
            for (const JsonValue &row : results.items()) {
                if (!row.find("bench") || !row.find("bench")->isString() ||
                    row.find("bench")->string() != bench) {
                    continue;
                }
                const JsonValue *rate = row.find("instr_per_s");
                if (!rate || !rate->isNumber()) {
                    fatal("bench-perf row for '", bench,
                          "' has a non-numeric instr_per_s");
                }
                if (rate->number() > out)
                    out = rate->number();
            }
            return out;
        };
        const double num = best(ratio.numerator);
        const double den = best(ratio.denominator);
        if (num < 0.0 || den < 0.0) {
            fatal("bench-perf lacks result rows for '",
                  num < 0.0 ? ratio.numerator : ratio.denominator,
                  "' to apply the throughput-ratio floor to");
        }
        if (num < ratio.floor * den) {
            fatal("bench-perf throughput ratio ", ratio.numerator, "/",
                  ratio.denominator, " = ", num / den, " is below the ",
                  ratio.floor, " floor (", num, " vs ", den,
                  " instr/s) — the streamed pipeline regressed "
                  "relative to materialised replay");
        }
    }
}

void
checkSweepReport(const JsonValue &doc,
                 const std::vector<std::string> &required)
{
    const JsonValue &schema = requireMember(doc, "schema", "sweep-report");
    if (!schema.isString() ||
        schema.string() != metrics::sweepReportSchema) {
        fatal("sweep-report schema is not ", metrics::sweepReportSchema);
    }
    if (!requireMember(doc, "meta", "sweep-report").isObject())
        fatal("sweep-report \"meta\" is not an object");

    uint64_t totals[4]; // jobs, succeeded, failed, retries
    const char *names[4] = {"jobs", "succeeded", "failed", "retries"};
    for (unsigned i = 0; i < 4; ++i) {
        const JsonValue &count =
            requireMember(doc, names[i], "sweep-report");
        if (!count.isNumber())
            fatal("sweep-report \"", names[i], "\" is not a number");
        totals[i] = count.uinteger();
    }
    if (totals[1] + totals[2] != totals[0]) {
        fatal("sweep-report totals are inconsistent: succeeded (",
              totals[1], ") + failed (", totals[2], ") != jobs (",
              totals[0], ")");
    }

    const JsonValue &failures =
        requireMember(doc, "failures", "sweep-report");
    if (!failures.isArray())
        fatal("sweep-report \"failures\" is not an array");
    if (failures.size() != totals[2]) {
        fatal("sweep-report lists ", failures.size(),
              " failure entries but \"failed\" says ", totals[2]);
    }
    for (const JsonValue &entry : failures.items()) {
        for (const char *key : {"index", "label", "code", "class",
                                "message", "attempts", "wall_ms"}) {
            if (!entry.find(key))
                fatal("sweep-report failure entry lacks \"", key, "\"");
        }
        const std::string &klass = entry.find("class")->string();
        if (klass != "transient" && klass != "permanent" &&
            klass != "cancelled") {
            fatal("sweep-report failure class '", klass,
                  "' is not a known failure class");
        }
    }
    for (const auto &label : required) {
        bool found = false;
        for (const JsonValue &entry : failures.items())
            found = found || (entry.find("label") &&
                              entry.find("label")->isString() &&
                              entry.find("label")->string() == label);
        if (!found)
            fatal("sweep-report has no failure labelled '", label, "'");
    }
}

void
checkSweepRequest(const JsonValue &doc,
                  const std::vector<std::string> &required)
{
    // The daemon's own parser is the contract: a file that passes
    // here is a request mlpsimd would accept, byte for byte.
    auto parsed = service::parseSweepRequest(doc);
    if (!parsed.ok())
        fatal("sweep-request: ", parsed.status().toString());

    for (const auto &token : required) {
        if (token.rfind("workload:", 0) == 0) {
            const std::string want = token.substr(9);
            if (parsed->workload != want)
                fatal("sweep-request workload is '", parsed->workload,
                      "', not '", want, "'");
        } else if (token.rfind("config:", 0) == 0) {
            const std::string want = token.substr(7);
            bool found = false;
            for (const service::RequestConfig &rc : parsed->configs)
                found = found || rc.name == want;
            if (!found)
                fatal("sweep-request has no config named '", want, "'");
        } else if (!doc.find(token)) {
            fatal("sweep-request lacks required member \"", token,
                  "\"");
        }
    }
}

void
checkSweepResponse(const JsonValue &doc,
                   const std::vector<std::string> &required)
{
    const Status valid = service::validateSweepResponse(doc);
    if (!valid.ok())
        fatal("sweep-response: ", valid.toString());

    const std::string &status = doc.find("status")->string();
    const JsonValue *results = doc.find("results");
    for (const auto &token : required) {
        if (token.rfind("status:", 0) == 0) {
            const std::string want = token.substr(7);
            if (status != want)
                fatal("sweep-response status is '", status, "', not '",
                      want, "'");
        } else if (token.rfind("config:", 0) == 0) {
            const std::string want = token.substr(7);
            bool found = false;
            if (results) {
                for (const JsonValue &row : results->items())
                    found = found ||
                            (row.find("config")->string() == want);
            }
            if (!found)
                fatal("sweep-response has no result row for config '",
                      want, "'");
        } else {
            if (!results)
                fatal("sweep-response is an error response; cannot "
                      "require result key \"", token, "\"");
            for (const JsonValue &row : results->items()) {
                if (!row.find(token))
                    fatal("sweep-response result row lacks \"", token,
                          "\"");
            }
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    opts.rejectUnknown({"in", "kind", "require", "dump-paper-targets",
                        "check-paper-targets"});

    if (opts.has("dump-paper-targets")) {
        std::fputs(workloads::paperTargetsJsonText().c_str(), stdout);
        return 0;
    }

    if (opts.has("check-paper-targets")) {
        const std::string targets = opts.getString("check-paper-targets", "");
        const JsonValue committed = metrics::readJsonFile(targets).orFatal();
        if (committed != workloads::paperTargetsSnapshot()) {
            fatal(targets, " differs from the embedded paper targets; "
                  "regenerate it with metrics_check --dump-paper-targets");
        }
        std::printf("%s: matches the embedded paper targets\n",
                    targets.c_str());
        return 0;
    }

    const std::string path = opts.getString("in", "");
    if (path.empty())
        fatal("--in FILE is required (or --dump-paper-targets)");
    const std::string kind = opts.getString("kind", "snapshot");
    const auto required = splitCommas(opts.getString("require", ""));

    const JsonValue doc = metrics::readJsonFile(path).orFatal();

    // Writer/reader agreement: serialising the parsed document and
    // parsing it again must reproduce the document exactly.
    const JsonValue reparsed = JsonValue::parse(doc.dump(2)).orFatal();
    if (reparsed != doc)
        fatal(path, ": dump/parse round trip changed the document");

    if (kind == "snapshot")
        checkSnapshot(doc, required);
    else if (kind == "trace")
        checkTrace(doc, required);
    else if (kind == "bench-perf")
        checkBenchPerf(doc, required);
    else if (kind == "sweep-report")
        checkSweepReport(doc, required);
    else if (kind == "sweep-request")
        checkSweepRequest(doc, required);
    else if (kind == "sweep-response")
        checkSweepResponse(doc, required);
    else
        fatal("unknown --kind '", kind,
              "' (expected snapshot|trace|bench-perf|sweep-report|"
              "sweep-request|sweep-response)");

    std::printf("%s: ok (%s)\n", path.c_str(), kind.c_str());
    return 0;
}
