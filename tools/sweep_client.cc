/**
 * @file
 * sweep_client — load generator and verification harness for mlpsimd.
 *
 * Builds a deterministic stream of sweep requests from a pool of
 * paper-style machine configurations, sends it to a daemon — either
 * one it spawns over a pipe pair (--spawn PATH) or an already-running
 * one on an AF_UNIX socket (--socket PATH) — with a configurable
 * fraction of *duplicate* requests, and verifies the service's cache
 * contract while measuring it:
 *
 *  - every duplicate's response must be byte-identical to the first
 *    response of the same request content (the client diffs the raw
 *    frames; any mismatch is fatal);
 *  - per-request latency (send → response) is split into hit requests
 *    (the daemon's "planned" event reported 0 computed cells) and
 *    cold requests, reporting p50/p99 and the hit/cold speedup;
 *  - the observed cache-hit ratio and total cell hits can be asserted
 *    with --min-hit-ratio / --min-cell-hits (CI gates).
 *
 * Requests are pipelined up to --window outstanding frames, so the
 * daemon's batch-drain path is exercised, and responses are matched
 * FIFO (the protocol guarantees request-order responses).
 *
 * The summary can be written as a bench-perf row (--bench-out) in the
 * BENCH_perf.json schema: bench "Service", the six standard keys,
 * plus requests_per_s / hit_ratio / latency detail — the
 * `bench_service` row tracked alongside the microbenchmarks.
 *
 * Flags (defaults in brackets):
 *   --spawn PATH            daemon binary to fork/exec over pipes
 *   --socket PATH           connect to a serving daemon instead
 *   --requests N [32]       total requests to send
 *   --duplicate-ratio R [0.5]  fraction duplicating an earlier request
 *   --configs-per-request K [3]
 *   --workloads CSV [database,specjbb2000,specweb99]
 *   --warmup N [2000]       per-request warm-up instructions
 *   --insts N [20000]       per-request measured instructions
 *   --seed S [1]            duplicate-stream RNG seed
 *   --window W [8]          max outstanding requests
 *   --requests-out PREFIX   write request i to PREFIX<i>.json
 *   --responses-out PREFIX  write response i to PREFIX<i>.json
 *   --bench-out FILE        write the bench-perf summary document
 *   --min-hit-ratio X [0]   fail if cell hit ratio < X
 *   --min-cell-hits N [0]   fail if total cell hits < N
 *   --daemon-jobs N         forwarded to a spawned daemon (--jobs)
 *   --cache-dir DIR         forwarded to a spawned daemon
 *   --daemon-kill-after N   forwarded (--kill-after, crash tests)
 *   --daemon-stream-chunk N forwarded (--stream-chunk, streamed
 *                           traces + shared-generation batches)
 */
#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include "metrics/export.hh"
#include "metrics/json.hh"
#include "service/framing.hh"
#include "service/wire.hh"
#include "util/logging.hh"
#include "util/options.hh"
#include "util/rng.hh"
#include "util/stats.hh"

using namespace mlpsim;
using metrics::JsonValue;

namespace {

/**
 * The config pool requests draw from: the paper's issue configs, the
 * runahead machine, the feature toggles, a wide window, and the
 * infinite machine — expressed in the wire form of service/wire.hh.
 */
struct PoolEntry
{
    const char *name;
    const char *json; //!< config object body, without the name
};

constexpr PoolEntry configPool[] = {
    {"64A", R"({"issue":"A"})"},
    {"64B", R"({"issue":"B"})"},
    {"64C", R"({})"},
    {"64D", R"({"issue":"D"})"},
    {"64E", R"({"issue":"E"})"},
    {"RA", R"({"mode":"runahead","issue":"D","rob":64})"},
    {"128C", R"({"window":128,"rob":128})"},
    {"64C+vp", R"({"vp":true})"},
    {"64C+sb", R"({"sb":true})"},
    {"INF", R"({"window":2048,"rob":2048,"issue":"E"})"},
};
constexpr size_t poolSize = sizeof configPool / sizeof configPool[0];

std::vector<std::string>
splitCsv(const std::string &text)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (start <= text.size()) {
        const size_t comma = text.find(',', start);
        const size_t end = comma == std::string::npos ? text.size()
                                                      : comma;
        if (end > start)
            out.push_back(text.substr(start, end - start));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

/** Build the canonical request document for template @p t. */
JsonValue
templateRequest(uint64_t t, const std::vector<std::string> &workloads,
                uint64_t configs_per_request, uint64_t warmup,
                uint64_t insts)
{
    JsonValue doc = JsonValue::object();
    doc.set("schema", service::sweepRequestSchema);
    doc.set("id", "t" + std::to_string(t));
    doc.set("workload", workloads[t % workloads.size()]);
    doc.set("warmup", warmup);
    doc.set("insts", insts);
    JsonValue configs = JsonValue::array();
    for (uint64_t j = 0; j < configs_per_request; ++j) {
        const PoolEntry &entry = configPool[(t + j) % poolSize];
        JsonValue config =
            JsonValue::parse(entry.json).orFatal();
        JsonValue named = JsonValue::object();
        named.set("name", entry.name);
        for (const auto &[key, value] : config.members())
            named.set(key, value);
        configs.push(std::move(named));
    }
    doc.set("configs", std::move(configs));
    return doc;
}

/** fork/exec @p daemon with a pipe pair; returns the child's pid. */
pid_t
spawnDaemon(const std::string &daemon,
            const std::vector<std::string> &extra_flags, int *in_fd,
            int *out_fd)
{
    int to_daemon[2], from_daemon[2];
    if (::pipe(to_daemon) != 0 || ::pipe(from_daemon) != 0)
        fatal("pipe: ", std::strerror(errno));

    const pid_t pid = ::fork();
    if (pid < 0)
        fatal("fork: ", std::strerror(errno));
    if (pid == 0) {
        ::dup2(to_daemon[0], 0);
        ::dup2(from_daemon[1], 1);
        ::close(to_daemon[0]);
        ::close(to_daemon[1]);
        ::close(from_daemon[0]);
        ::close(from_daemon[1]);
        std::vector<char *> argv;
        argv.push_back(const_cast<char *>(daemon.c_str()));
        for (const std::string &flag : extra_flags)
            argv.push_back(const_cast<char *>(flag.c_str()));
        argv.push_back(nullptr);
        ::execv(daemon.c_str(), argv.data());
        std::fprintf(stderr, "sweep_client: exec %s: %s\n",
                     daemon.c_str(), std::strerror(errno));
        std::_Exit(127);
    }
    ::close(to_daemon[0]);
    ::close(from_daemon[1]);
    *in_fd = from_daemon[0]; // daemon's stdout
    *out_fd = to_daemon[1];  // daemon's stdin
    return pid;
}

int
connectSocket(const std::string &path)
{
    sockaddr_un addr = {};
    if (path.size() >= sizeof addr.sun_path)
        fatal("socket path '", path, "' is too long for AF_UNIX");
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        fatal("socket: ", std::strerror(errno));
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof addr) != 0)
        fatal("connect '", path, "': ", std::strerror(errno));
    return fd;
}

double
millisSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

int
main(int argc, char **argv)
{
    // A daemon that dies mid-conversation (or a --spawn path that
    // fails to exec) must surface as a stream error, not kill the
    // client with SIGPIPE while it is still queueing requests.
    std::signal(SIGPIPE, SIG_IGN);

    Options opts(argc, argv);
    opts.rejectUnknown(
        {"spawn", "socket", "requests", "duplicate-ratio",
         "configs-per-request", "workloads", "warmup", "insts", "seed",
         "window", "requests-out", "responses-out", "bench-out",
         "min-hit-ratio", "min-cell-hits", "daemon-jobs", "cache-dir",
         "daemon-kill-after", "daemon-stream-chunk"});

    const std::string spawn = opts.getString("spawn", "");
    const std::string socket_path = opts.getString("socket", "");
    if (spawn.empty() == socket_path.empty())
        fatal("exactly one of --spawn PATH / --socket PATH is "
              "required");

    const uint64_t requests = opts.getU64("requests", 32);
    const double duplicate_ratio =
        opts.getDouble("duplicate-ratio", 0.5);
    const uint64_t configs_per_request =
        opts.getU64("configs-per-request", 3);
    const std::vector<std::string> workloads = splitCsv(
        opts.getString("workloads", "database,specjbb2000,specweb99"));
    const uint64_t warmup = opts.getU64("warmup", 2000);
    const uint64_t insts = opts.scaledInsts("insts", 20'000);
    const uint64_t seed = opts.getU64("seed", 1);
    const uint64_t window = opts.getU64("window", 8);
    const std::string requests_out = opts.getString("requests-out", "");
    const std::string responses_out =
        opts.getString("responses-out", "");
    const std::string bench_out = opts.getString("bench-out", "");
    const double min_hit_ratio = opts.getDouble("min-hit-ratio", 0.0);
    const uint64_t min_cell_hits = opts.getU64("min-cell-hits", 0);
    if (requests == 0 || configs_per_request == 0 || window == 0 ||
        workloads.empty() || duplicate_ratio < 0.0 ||
        duplicate_ratio > 1.0)
        fatal("nonsensical load shape (zero counts or a duplicate "
              "ratio outside [0, 1])");

    // --- the deterministic request plan -----------------------------
    // Template u is a distinct request content; the stream repeats an
    // earlier template with probability --duplicate-ratio.
    Rng rng(splitMix64(seed));
    std::vector<uint64_t> plan; // request index -> template
    uint64_t unique = 0;
    for (uint64_t i = 0; i < requests; ++i) {
        const bool duplicate =
            unique != 0 &&
            static_cast<double>(rng()) /
                    static_cast<double>(~0ULL) <
                duplicate_ratio;
        plan.push_back(duplicate ? rng.below(unique) : unique++);
    }

    // --- connect ----------------------------------------------------
    int in_fd = -1, out_fd = -1;
    pid_t daemon_pid = -1;
    if (!spawn.empty()) {
        std::vector<std::string> flags;
        if (opts.has("cache-dir"))
            flags.push_back("--cache-dir=" +
                            opts.getString("cache-dir", ""));
        flags.push_back("--jobs=" +
                        std::to_string(opts.getU64("daemon-jobs", 0)));
        if (opts.has("daemon-kill-after")) {
            flags.push_back(
                "--kill-after=" +
                std::to_string(opts.getU64("daemon-kill-after", 0)));
        }
        if (opts.has("daemon-stream-chunk")) {
            flags.push_back(
                "--stream-chunk=" +
                std::to_string(opts.getU64("daemon-stream-chunk", 0)));
        }
        daemon_pid = spawnDaemon(spawn, flags, &in_fd, &out_fd);
    } else {
        in_fd = out_fd = connectSocket(socket_path);
    }
    service::FrameReader reader(in_fd);
    service::FrameWriter writer(out_fd);

    // --- pipelined exchange -----------------------------------------
    struct Outstanding
    {
        uint64_t tmpl = 0;
        std::chrono::steady_clock::time_point sent;
    };
    std::vector<Outstanding> inflight;             // FIFO
    std::vector<std::string> firstResponse(requests); // by template
    std::vector<std::vector<std::pair<uint64_t, uint64_t>>>
        plannedByTemplate(requests); // (hits, computed) FIFO per tmpl
    Histogram latencyUs, hitUs, coldUs;
    uint64_t cellHits = 0, cellsComputed = 0, cellDone = 0;
    uint64_t duplicateMismatches = 0, errorResponses = 0;
    uint64_t sentCount = 0, receivedCount = 0;

    const auto wallStart = std::chrono::steady_clock::now();

    const auto receiveOne = [&]() {
        std::string frame;
        for (;;) {
            const bool got = reader.read(&frame).orFatal();
            if (!got)
                fatal("daemon stream ended with ",
                      receivedCount, " of ", requests,
                      " responses received");
            JsonValue doc = JsonValue::parse(frame).orFatal();
            const JsonValue *schema = doc.find("schema");
            if (!schema || !schema->isString())
                fatal("frame without a schema");
            if (schema->string() == service::sweepEventSchema) {
                const std::string event =
                    doc.find("event")->string();
                if (event == "planned") {
                    const uint64_t hits =
                        doc.find("hits")->uinteger();
                    const uint64_t computed =
                        doc.find("computed")->uinteger();
                    cellHits += hits;
                    cellsComputed += computed;
                    const std::string &id = doc.find("id")->string();
                    const uint64_t tmpl =
                        std::stoull(id.substr(1));
                    plannedByTemplate[tmpl].push_back(
                        {hits, computed});
                } else if (event == "cell-done") {
                    ++cellDone;
                }
                continue; // events interleave; keep reading
            }
            if (schema->string() != service::sweepResponseSchema)
                fatal("unexpected frame schema '", schema->string(),
                      "'");

            // Responses are FIFO: this frame answers the oldest
            // outstanding request.
            if (inflight.empty())
                fatal("response received with nothing outstanding");
            const Outstanding req = inflight.front();
            inflight.erase(inflight.begin());
            const double us = millisSince(req.sent) * 1000.0;
            latencyUs.add(static_cast<uint64_t>(us));

            service::validateSweepResponse(doc).orFatal();
            const std::string expect_id =
                "t" + std::to_string(req.tmpl);
            if (doc.find("id")->string() != expect_id)
                fatal("response id '", doc.find("id")->string(),
                      "' does not match expected '", expect_id, "'");
            if (doc.find("status")->string() == "error")
                ++errorResponses;

            // The cache contract: a duplicate's bytes must equal the
            // template's first response, exactly.
            if (firstResponse[req.tmpl].empty())
                firstResponse[req.tmpl] = frame;
            else if (firstResponse[req.tmpl] != frame)
                ++duplicateMismatches;

            // Hit/cold latency split via this request's planned event
            // (absent only if events were disabled).
            auto &planned = plannedByTemplate[req.tmpl];
            if (!planned.empty()) {
                const auto [hits, computed] = planned.front();
                planned.erase(planned.begin());
                (computed == 0 ? hitUs : coldUs)
                    .add(static_cast<uint64_t>(us));
            }

            if (!responses_out.empty()) {
                metrics::writeTextFile(
                    responses_out + std::to_string(receivedCount) +
                        ".json",
                    doc.dump(2))
                    .orFatal();
            }
            ++receivedCount;
            return;
        }
    };

    for (uint64_t i = 0; i < requests; ++i) {
        while (inflight.size() >= window)
            receiveOne();
        const uint64_t tmpl = plan[i];
        const JsonValue request = templateRequest(
            tmpl, workloads, configs_per_request, warmup, insts);
        if (!requests_out.empty()) {
            metrics::writeTextFile(requests_out + std::to_string(i) +
                                       ".json",
                                   request.dump(2))
                .orFatal();
        }
        inflight.push_back(
            {tmpl, std::chrono::steady_clock::now()});
        writer.write(request.dump(0)).orFatal();
        ++sentCount;
    }
    while (receivedCount < requests)
        receiveOne();

    const double wallSeconds = millisSince(wallStart) / 1000.0;

    // --- shut the daemon down cleanly -------------------------------
    JsonValue shutdown = JsonValue::object();
    shutdown.set("schema", service::sweepControlSchema);
    shutdown.set("command", "shutdown");
    writer.write(shutdown.dump(0)).orFatal();
    if (!spawn.empty()) {
        ::close(out_fd);
        std::string tail;
        while (reader.read(&tail).orFatal())
            ; // drain the bye event and EOF
        ::close(in_fd);
        int status = 0;
        ::waitpid(daemon_pid, &status, 0);
        if (!WIFEXITED(status) || WEXITSTATUS(status) != 0)
            fatal("daemon exited abnormally (status ", status, ")");
    } else {
        ::close(in_fd);
    }

    // --- verdicts ---------------------------------------------------
    if (duplicateMismatches != 0)
        fatal(duplicateMismatches,
              " duplicate responses were not byte-identical to "
              "their originals");
    if (errorResponses != 0)
        fatal(errorResponses, " requests answered with errors");

    const uint64_t cells = cellHits + cellsComputed;
    const double hit_ratio =
        cells == 0 ? 0.0
                   : static_cast<double>(cellHits) /
                         static_cast<double>(cells);
    const double p50_ms =
        static_cast<double>(latencyUs.quantile(0.5)) / 1000.0;
    const double p99_ms =
        static_cast<double>(latencyUs.quantile(0.99)) / 1000.0;
    const double hit_ms =
        hitUs.samples() ? hitUs.mean() / 1000.0 : 0.0;
    const double cold_ms =
        coldUs.samples() ? coldUs.mean() / 1000.0 : 0.0;
    const double speedup =
        hit_ms > 0.0 && cold_ms > 0.0 ? cold_ms / hit_ms : 0.0;

    inform("sweep_client: ", sentCount, " requests in ", wallSeconds,
           " s (", static_cast<double>(sentCount) / wallSeconds,
           " req/s); cells: ", cellHits, " hits / ", cellsComputed,
           " computed (hit ratio ", hit_ratio, "); latency p50 ",
           p50_ms, " ms p99 ", p99_ms, " ms; hit ", hit_ms,
           " ms cold ", cold_ms, " ms (speedup ", speedup, "x); ",
           cellDone, " cell-done events");

    if (hit_ratio < min_hit_ratio)
        fatal("cell hit ratio ", hit_ratio, " below required ",
              min_hit_ratio);
    if (cellHits < min_cell_hits)
        fatal("cell hits ", cellHits, " below required ",
              min_cell_hits);

    if (!bench_out.empty()) {
        struct rusage usage = {};
        ::getrusage(RUSAGE_SELF, &usage);

        std::string workload_list;
        for (const std::string &name : workloads) {
            workload_list +=
                workload_list.empty() ? name : "," + name;
        }
        JsonValue row = JsonValue::object();
        row.set("bench", "Service");
        row.set("workload", workload_list);
        row.set("config",
                std::to_string(configs_per_request) + "cfg x" +
                    std::to_string(requests) + "req");
        row.set("wall_s", wallSeconds);
        row.set("instr_per_s",
                static_cast<double>(cells * insts) / wallSeconds);
        row.set("peak_rss_kb",
                static_cast<uint64_t>(usage.ru_maxrss));
        row.set("requests_per_s",
                static_cast<double>(sentCount) / wallSeconds);
        row.set("hit_ratio", hit_ratio);
        row.set("p50_ms", p50_ms);
        row.set("p99_ms", p99_ms);
        row.set("hit_ms", hit_ms);
        row.set("cold_ms", cold_ms);
        row.set("hit_speedup", speedup);

        JsonValue results = JsonValue::array();
        results.push(std::move(row));
        metrics::writeJsonFile(
            bench_out, metrics::makeBenchPerfDoc(std::move(results)))
            .orFatal();
        inform("sweep_client: bench summary written to ", bench_out);
    }
    return 0;
}
