# Graceful-degradation proof for the resilient sweep path.
#
# Invoked by the faultinject_sweep ctest entry (see tools/CMakeLists.txt):
#   cmake -DTOOL=<sweep_faultinject exe> -DCHECKER=<metrics_check exe>
#         -DWORKDIR=<scratch dir> -P cmake/sweep_faultinject.cmake
#
# Scenario: a real mini-sweep with one stuck job (killed by its
# deadline), one permanently-failing job, and one flaky job that
# succeeds on retry, run in collect-all mode:
#   - the process must exit 0 (the sweep survives its failures);
#   - the sweep report must validate and list exactly the stuck and
#     throwing jobs (the flaky one recovered);
#   - the surviving cells must be unperturbed: two faulted runs print
#     identical results;
#   - in propagate mode the same faults must fail the process.

set(budget --insts 8000 --warmup 1000)
set(faults --stuck 1 --throw 1 --flaky 1 --flaky-failures 2
    --retries 3 --deadline-ms 200 --backoff-ms 1 --jobs 4)

file(MAKE_DIRECTORY ${WORKDIR})

# 1. Collect-all sweep with injected faults completes successfully.
execute_process(
    COMMAND ${TOOL} ${budget} ${faults} --report ${WORKDIR}/report.json
    RESULT_VARIABLE rc OUTPUT_VARIABLE out1 ERROR_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "collect-all sweep failed (exit ${rc})")
endif()

# 2. The report validates; the deadline-killed and throwing jobs are
#    on record, and the recovered flaky job is not.
execute_process(
    COMMAND ${CHECKER} --in ${WORKDIR}/report.json --kind sweep-report
            --require inject/stuck0,inject/throw0
    RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "sweep report failed validation (exit ${rc})")
endif()
file(READ ${WORKDIR}/report.json report)
if(report MATCHES "inject/flaky0")
    message(FATAL_ERROR
            "flaky job appears in the report despite recovering")
endif()

# 3. Deterministic degradation: a second faulted run prints the same
#    results and the same failure record.
execute_process(
    COMMAND ${TOOL} ${budget} ${faults}
    RESULT_VARIABLE rc OUTPUT_VARIABLE out2 ERROR_QUIET)
if(NOT rc EQUAL 0 OR NOT out1 STREQUAL out2)
    message(FATAL_ERROR "faulted sweep output is not deterministic")
endif()

# 4. Propagate mode turns the same faults into a process failure.
execute_process(
    COMMAND ${TOOL} ${budget} --throw 1 --propagate
    RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(rc EQUAL 0)
    message(FATAL_ERROR "propagate-mode sweep ignored its failure")
endif()
