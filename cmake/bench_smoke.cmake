# Smoke-runs one bench binary with a tiny instruction budget and
# --metrics-out, then validates the emitted JSON with tools/metrics_check
# (strict parse, schema, required metric paths, dump/parse round trip).
#
# Invoked by the bench_smoke_* ctest entries (see bench/CMakeLists.txt):
#   cmake -DBENCH=<bench exe> -DCHECKER=<metrics_check exe>
#         -DOUT=<snapshot destination> [-DTRACE_OUT=<trace destination>]
#         [-DREQUIRE=<comma-separated metric paths>] [-DDETERMINISM=1]
#         -P cmake/bench_smoke.cmake
#
# With DETERMINISM the bench runs again at --jobs 1 and --jobs 8 and the
# two snapshots must be byte-identical — the bit-identical-output
# guarantee --metrics-out advertises, checked end to end.

set(budget --warmup 2000 --insts 10000)

function(run_or_die)
    execute_process(COMMAND ${ARGN} RESULT_VARIABLE rc OUTPUT_QUIET)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "command failed (exit ${rc}): ${ARGN}")
    endif()
endfunction()

set(trace_args)
if(TRACE_OUT)
    set(trace_args --trace-events ${TRACE_OUT})
endif()

run_or_die(${BENCH} ${budget} --jobs 2 --metrics-out ${OUT} ${trace_args})

set(require_args)
if(REQUIRE)
    set(require_args --require ${REQUIRE})
endif()
run_or_die(${CHECKER} --in ${OUT} --kind snapshot ${require_args})
if(TRACE_OUT)
    run_or_die(${CHECKER} --in ${TRACE_OUT} --kind trace)
endif()

if(DETERMINISM)
    run_or_die(${BENCH} ${budget} --jobs 1 --metrics-out ${OUT}.jobs1)
    run_or_die(${BENCH} ${budget} --jobs 8 --metrics-out ${OUT}.jobs8)
    run_or_die(${CMAKE_COMMAND} -E compare_files
               ${OUT}.jobs1 ${OUT}.jobs8)
endif()
