# End-to-end equivalence of the two trace pipelines: one bench binary
# runs materialised (--materialize) and streamed (--stream-chunk=N),
# and BOTH its stdout tables and its --metrics-out snapshot must be
# byte-identical between the modes — for a second, odd chunk size and
# a different --jobs value too, since chunk capacity and sweep
# parallelism are both required to be result-invariant.
#
# Invoked by the streaming_equivalence ctest entry (bench/CMakeLists.txt):
#   cmake -DBENCH=<bench exe> -DOUT=<output prefix>
#         -P cmake/streaming_equivalence.cmake

set(budget --warmup 2000 --insts 10000)

# Runs the bench capturing stdout (the printed tables) to ${tag}.txt
# and the metrics snapshot to ${tag}.json. Stderr (wall-clock batch
# reports) is deliberately not captured — it is not deterministic.
function(run_mode tag)
    execute_process(COMMAND ${BENCH} ${budget} ${ARGN}
                    --metrics-out ${OUT}.${tag}.json
                    OUTPUT_FILE ${OUT}.${tag}.txt
                    ERROR_QUIET RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "bench failed (exit ${rc}): ${BENCH} ${ARGN}")
    endif()
endfunction()

function(expect_same a b)
    execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                    ${OUT}.${a} ${OUT}.${b} RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
            "${OUT}.${a} and ${OUT}.${b} differ: the streamed and "
            "materialised pipelines diverged")
    endif()
endfunction()

run_mode(mat --jobs 2 --materialize)
# Streamed runs share one generation per (workload, seed, insts) group
# by default — these two legs exercise the fan-out path itself.
run_mode(stream --jobs 2 --stream-chunk=4096)
# An odd, tiny chunk size at a different --jobs: chunk-boundary and
# scheduling effects must not reach any output byte.
run_mode(stream_odd --jobs 1 --stream-chunk=777)
# Fan-out leg: the same streamed runs with sharing forced off, so each
# cell regenerates independently. Shared-stream grouping must not move
# a single output byte relative to either independent streaming or the
# materialised reference, at both --jobs values.
run_mode(noshare --jobs 2 --stream-chunk=4096 --no-share-streams)
run_mode(noshare_j1 --jobs 1 --stream-chunk=4096 --no-share-streams)

expect_same(mat.txt stream.txt)
expect_same(mat.json stream.json)
expect_same(mat.txt stream_odd.txt)
expect_same(mat.json stream_odd.json)
expect_same(mat.txt noshare.txt)
expect_same(mat.json noshare.json)
expect_same(mat.txt noshare_j1.txt)
expect_same(mat.json noshare_j1.json)
