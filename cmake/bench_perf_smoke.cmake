# Smoke-runs the perf_microbench suite in its tiny configuration (one
# short repetition of the engine-replay benchmarks, then one of the
# cycle-accurate pipeline benchmarks) and validates each emitted perf
# summary with tools/metrics_check: strict parse, the
# mlpsim-bench-perf-v1 schema assertion, the per-result keys —
# instr_per_s in particular, so throughput reporting can't silently
# rot out of BENCH_perf.json — and, for the cyclesim pass, the
# presence of the CycleSim rows themselves (bench:CycleSim).
#
# Invoked by the bench_perf_smoke ctest entry (see bench/CMakeLists.txt):
#   cmake -DBENCH=<perf_microbench exe> -DCHECKER=<metrics_check exe>
#         -DOUT=<summary destination> -P cmake/bench_perf_smoke.cmake

function(run_or_die)
    execute_process(COMMAND ${ARGN} RESULT_VARIABLE rc OUTPUT_QUIET)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "command failed (exit ${rc}): ${ARGN}")
    endif()
endfunction()

# The --engine-only filter (^BM_EpochEngine) covers the materialised
# replay rows AND the shared fan-out streaming rows, so one summary
# carries both sides of the throughput-ratio gate: the streamed
# fan-out's best instr_per_s must stay within 15% of materialised
# replay, or the shared-generation machinery has regressed. This pass
# runs longer than the others because the gate compares best-of-N
# across the two sides: at 0.01s the fan-out rows get a single
# iteration, so one scheduling hiccup lands entirely in the ratio
# (observed 0.83 on a loaded runner vs 0.99 when sampled properly).
run_or_die(${BENCH} --engine-only --benchmark_min_time=0.25
           --metrics-out ${OUT})
run_or_die(${CHECKER} --in ${OUT} --kind bench-perf
           --require instr_per_s,bench:EpochEngine,bench:EpochEngineStream,min-ratio:EpochEngineStream/EpochEngine:0.85)

run_or_die(${BENCH} --cyclesim-only --benchmark_min_time=0.01
           --metrics-out ${OUT}.cyclesim)
run_or_die(${CHECKER} --in ${OUT}.cyclesim --kind bench-perf
           --require instr_per_s,bench:CycleSim)

# Streaming pipeline pass: a fresh process that only runs the
# chunk-stream engine rows and so never materialises a trace. Its
# peak_rss_kb is the streaming pipeline's whole footprint (binary +
# annotation planes + a bounded chunk window); the ceiling fails the
# build if someone reintroduces a whole-trace allocation on this path.
run_or_die(${BENCH} --stream-only --benchmark_min_time=0.01
           --metrics-out ${OUT}.stream)
run_or_die(${CHECKER} --in ${OUT}.stream --kind bench-perf
           --require instr_per_s,bench:EpochEngineStream,max-rss-kb:EpochEngineStream:32768)

# The sweep service's load generator reports through the same schema:
# one bench:Service row with throughput, cache hit ratio and latency
# quantiles (memory-only daemon; the persistent-cache path is
# service_smoke's job).
run_or_die(${CLIENT} --spawn ${DAEMON} --requests 8
           --duplicate-ratio 0.5 --warmup 500 --insts 2000
           --bench-out ${OUT}.service)
run_or_die(${CHECKER} --in ${OUT}.service --kind bench-perf
           --require instr_per_s,bench:Service,requests_per_s,hit_ratio,p50_ms,p99_ms)
