# End-to-end proof of the mlpsimd sweep service and its
# content-addressed caches.
#
# Invoked by the service_smoke ctest entry (see tools/CMakeLists.txt):
#   cmake -DDAEMON=<mlpsimd exe> -DCLIENT=<sweep_client exe>
#         -DCHECKER=<metrics_check exe> -DWORKDIR=<scratch dir>
#         -P cmake/service_smoke.cmake
#
# Scenario:
#   1. a cold client run (50% duplicates) populates the persistent
#      caches; its request, response and bench documents all pass the
#      metrics_check wire validators;
#   2. a warm rerun against the same cache directory is served
#      entirely from disk (hit ratio ~1) and every response is
#      byte-identical to its cold counterpart;
#   3. a daemon crash-injected after 2 recorded cells (torn frame left
#      at the cache tail) fails the client run, but the next daemon
#      salvages the log and still serves those 2 cells warm.

function(run_or_die)
    execute_process(COMMAND ${ARGN} RESULT_VARIABLE rc OUTPUT_QUIET)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "command failed (exit ${rc}): ${ARGN}")
    endif()
endfunction()

set(REQUESTS 10)
set(GRID --requests ${REQUESTS} --duplicate-ratio 0.5 --seed 3
    --warmup 1000 --insts 5000 --configs-per-request 2 --window 4)

file(REMOVE_RECURSE ${WORKDIR})
file(MAKE_DIRECTORY ${WORKDIR})

# 1. Cold run: everything computes, artifacts written for validation.
run_or_die(${CLIENT} --spawn ${DAEMON} ${GRID}
           --cache-dir ${WORKDIR}/cache
           --requests-out ${WORKDIR}/req
           --responses-out ${WORKDIR}/cold
           --bench-out ${WORKDIR}/bench.json)

# The emitted documents pass the daemon's own wire validators: the
# request parses as the daemon would parse it, every response is
# status:ok with full result rows, and the bench summary carries the
# service throughput/latency/hit-ratio keys.
run_or_die(${CHECKER} --in ${WORKDIR}/req0.json --kind sweep-request
           --require workload:database,configs)
run_or_die(${CHECKER} --in ${WORKDIR}/cold0.json --kind sweep-response
           --require status:ok,epochs,mlp,accesses_per_epoch)
run_or_die(${CHECKER} --in ${WORKDIR}/bench.json --kind bench-perf
           --require bench:Service,requests_per_s,hit_ratio,p99_ms)

# 2. Warm rerun: same grid, same cache directory. --min-hit-ratio
#    makes the client itself fail unless every cell is served from
#    cache; the byte-compare proves a hit is indistinguishable from
#    the cold computation it replays.
run_or_die(${CLIENT} --spawn ${DAEMON} ${GRID}
           --cache-dir ${WORKDIR}/cache
           --responses-out ${WORKDIR}/warm
           --min-hit-ratio 0.99)
math(EXPR last "${REQUESTS} - 1")
foreach(i RANGE ${last})
    run_or_die(${CMAKE_COMMAND} -E compare_files
               ${WORKDIR}/cold${i}.json ${WORKDIR}/warm${i}.json)
endforeach()

# 3. Crash salvage: a daemon killed right after recording its 2nd
#    cell leaves a torn frame at the cache tail. The client must
#    notice the dead daemon (nonzero exit) ...
execute_process(
    COMMAND ${CLIENT} --spawn ${DAEMON} ${GRID}
            --cache-dir ${WORKDIR}/crash --daemon-kill-after 2
    RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(rc EQUAL 0)
    message(FATAL_ERROR
            "client reported success despite the daemon crash")
endif()

# ... and the next daemon salvages the log, serves the 2 recorded
# cells warm (--min-cell-hits), and completes the full grid with
# responses byte-identical to the healthy cache's.
run_or_die(${CLIENT} --spawn ${DAEMON} ${GRID}
           --cache-dir ${WORKDIR}/crash
           --responses-out ${WORKDIR}/salvaged
           --min-cell-hits 2)
foreach(i RANGE ${last})
    run_or_die(${CMAKE_COMMAND} -E compare_files
               ${WORKDIR}/cold${i}.json ${WORKDIR}/salvaged${i}.json)
endforeach()
