# Kill-and-resume proof for the sweep checkpoint journal.
#
# Invoked by the golden_resume ctest entry (see tools/CMakeLists.txt):
#   cmake -DCHECKER=<golden_check exe> -DGOLDEN=<data/golden_results.json>
#         -DWORKDIR=<scratch dir> -P cmake/golden_resume.cmake
#
# Scenario:
#   1. an uninterrupted run writes the reference document;
#   2. a journalled run is killed (simulated crash, exit 42) after
#      3 computed cells — the journal keeps exactly those cells;
#   3. the resumed run against the same journal replays the finished
#      cells and computes the rest;
#   4. the resumed document must be byte-identical to the
#      uninterrupted one, and must still match the committed golden
#      results.

function(run_or_die)
    execute_process(COMMAND ${ARGN} RESULT_VARIABLE rc OUTPUT_QUIET)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "command failed (exit ${rc}): ${ARGN}")
    endif()
endfunction()

file(MAKE_DIRECTORY ${WORKDIR})
file(REMOVE ${WORKDIR}/journal.bin ${WORKDIR}/uninterrupted.json
     ${WORKDIR}/resumed.json)

# 1. Uninterrupted reference run (no journal).
run_or_die(${CHECKER} --write ${WORKDIR}/uninterrupted.json)

# 2. Journalled run, killed after 3 computed cells. The simulated
#    crash exits 42 and must NOT have produced an output document.
execute_process(
    COMMAND ${CHECKER} --write ${WORKDIR}/resumed.json
            --journal ${WORKDIR}/journal.bin --kill-after 3
    RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(NOT rc EQUAL 42)
    message(FATAL_ERROR
            "expected the killed run to exit 42, got ${rc}")
endif()
if(EXISTS ${WORKDIR}/resumed.json)
    message(FATAL_ERROR "killed run wrote an output document")
endif()

# 3. Resume against the same journal.
run_or_die(${CHECKER} --write ${WORKDIR}/resumed.json
           --journal ${WORKDIR}/journal.bin)

# 4. Byte-identical to the uninterrupted run, and still golden.
run_or_die(${CMAKE_COMMAND} -E compare_files
           ${WORKDIR}/uninterrupted.json ${WORKDIR}/resumed.json)
run_or_die(${CHECKER} --check ${GOLDEN}
           --journal ${WORKDIR}/journal.bin)
