/**
 * @file
 * Missing-load value prediction (paper Section 3.6 / 5.5).
 *
 * The paper's predictor is a 16K-entry last-value predictor that is
 * queried and trained *only* on loads that miss off-chip, which keeps
 * the structure small. A correct prediction lets instructions dependent
 * on the missing load execute in the same epoch.
 *
 * Outcomes are precomputed per trace in program order (like the other
 * annotators) so all simulators agree on which missing loads predict
 * correctly.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "memory/access_profiler.hh"
#include "trace/trace_buffer.hh"
#include "util/bitvec.hh"
#include "util/status.hh"

namespace mlpsim::predictor {

/** Prediction outcome for one missing load. */
enum class ValueOutcome : uint8_t {
    NotApplicable, //!< instruction is not a missing load
    NoPredict,     //!< no table entry (cold or evicted by aliasing)
    Correct,       //!< predicted value matched
    Wrong,         //!< predicted value differed
};

/** Predictor configuration. */
struct ValuePredictorConfig
{
    unsigned entries = 16 * 1024; //!< direct-mapped, PC-tagged
    bool perfect = false;         //!< limit study: always correct
};

/** Recoverable form of the constructor's geometry checks. */
Status validateConfig(const ValuePredictorConfig &config);

/** Tagged direct-mapped last-value table. */
class LastValuePredictor
{
  public:
    explicit LastValuePredictor(const ValuePredictorConfig &config);

    /**
     * Predict-and-train on one missing load.
     * @param pc Load PC. @param actual Value the load returns.
     */
    ValueOutcome predictAndUpdate(uint64_t pc, uint64_t actual);

    void reset();

  private:
    struct Entry
    {
        uint64_t tag = 0;
        uint64_t value = 0;
        bool valid = false;
    };

    ValuePredictorConfig cfg;
    std::vector<Entry> table;
};

/** Per-trace value-prediction annotations and Table 6 statistics. */
struct ValueAnnotations
{
    /** Two bits per dynamic instruction (the four ValueOutcomes). */
    util::PackedEnumVector<ValueOutcome, 2> outcome;

    uint64_t missingLoads = 0;
    uint64_t correct = 0;
    uint64_t wrong = 0;
    uint64_t noPredict = 0;

    bool
    isCorrect(size_t i) const
    {
        return outcome[i] == ValueOutcome::Correct;
    }

    double fracCorrect() const { return frac(correct); }
    double fracWrong() const { return frac(wrong); }
    double fracNoPredict() const { return frac(noPredict); }

  private:
    double
    frac(uint64_t n) const
    {
        return missingLoads ? double(n) / double(missingLoads) : 0.0;
    }
};

/**
 * Chunk-incremental value annotator. Reads the profiler's dataMiss
 * plane at the indices of the chunk being added — those bits are set
 * by the profiler's pass over the *same* chunk and never
 * retroactively (only usefulPrefetchV is), so feeding each chunk to
 * the profiler first and this annotator second streams correctly.
 * Predictor table state carries across chunks, so outcomes are
 * bit-identical to a whole-trace pass for any chunking.
 */
class ValueAnnotator
{
  public:
    ValueAnnotator(const memory::MissAnnotations &misses,
                   const ValuePredictorConfig &config,
                   uint64_t warmup_insts)
        : miss(misses), predictor(config), warmup(warmup_insts)
    {
    }

    /** Size the outcome plane for an @p n-instruction trace up front
     *  so fused runs never reallocate it mid-stream. */
    void
    preallocate(size_t n)
    {
        ann.outcome.assign(n, ValueOutcome::NotApplicable);
    }

    /** Feed the next chunk of the trace, in order. */
    void add(const trace::TraceChunk &chunk);

    /** The in-progress annotations: final for every chunk already
     *  add()ed (value outcomes are never retroactive). */
    const ValueAnnotations &partial() const { return ann; }

    /** The completed annotations; the annotator is spent afterwards. */
    ValueAnnotations finish() { return std::move(ann); }

  private:
    const memory::MissAnnotations &miss;
    LastValuePredictor predictor;
    uint64_t warmup;
    ValueAnnotations ann;
};

/**
 * Run the predictor over every missing load of @p buffer (as
 * identified by @p misses) in program order (a fresh ValueAnnotator
 * pass over its chunks).
 * @param warmup_insts Loads before this index train the predictor but
 *        are excluded from the statistics.
 */
ValueAnnotations annotateValues(const trace::TraceBuffer &buffer,
                                const memory::MissAnnotations &misses,
                                const ValuePredictorConfig &config,
                                uint64_t warmup_insts = 0);

} // namespace mlpsim::predictor
