#include "value_predictor.hh"

#include <bit>

#include "util/logging.hh"

namespace mlpsim::predictor {

Status
validateConfig(const ValuePredictorConfig &config)
{
    if (config.entries == 0 ||
        !std::has_single_bit(uint64_t(config.entries))) {
        return Status::invalidArgument(
            "value predictor entries must be a power of two, got ",
            config.entries);
    }
    return Status::okStatus();
}

LastValuePredictor::LastValuePredictor(const ValuePredictorConfig &config)
    : cfg(config)
{
    validateConfig(config).orFatal();
    table.resize(config.entries);
}

ValueOutcome
LastValuePredictor::predictAndUpdate(uint64_t pc, uint64_t actual)
{
    if (cfg.perfect)
        return ValueOutcome::Correct;

    Entry &e = table[(pc >> 2) & (table.size() - 1)];
    ValueOutcome result;
    if (!e.valid || e.tag != pc) {
        result = ValueOutcome::NoPredict;
    } else if (e.value == actual) {
        result = ValueOutcome::Correct;
    } else {
        result = ValueOutcome::Wrong;
    }
    e.valid = true;
    e.tag = pc;
    e.value = actual;
    return result;
}

void
LastValuePredictor::reset()
{
    for (Entry &e : table)
        e.valid = false;
}

void
ValueAnnotator::add(const trace::TraceChunk &chunk)
{
    // Grown entries read back as NotApplicable (enum value 0).
    if (chunk.end() > ann.outcome.size())
        ann.outcome.resize(chunk.end());
    for (uint32_t ci = 0; ci < chunk.count; ++ci) {
        const size_t i = chunk.base + ci;
        // "Missing load" here: any instruction whose data read went
        // off-chip (demand loads and CASA-style atomics).
        if (!miss.dataMiss(i))
            continue;
        const ValueOutcome out =
            predictor.predictAndUpdate(chunk.pc[ci], chunk.value(ci));
        ann.outcome[i] = out;
        if (i < warmup)
            continue;
        ++ann.missingLoads;
        switch (out) {
          case ValueOutcome::Correct: ++ann.correct; break;
          case ValueOutcome::Wrong: ++ann.wrong; break;
          case ValueOutcome::NoPredict: ++ann.noPredict; break;
          case ValueOutcome::NotApplicable: break;
        }
    }
}

ValueAnnotations
annotateValues(const trace::TraceBuffer &buffer,
               const memory::MissAnnotations &misses,
               const ValuePredictorConfig &config, uint64_t warmup_insts)
{
    ValueAnnotator pass(misses, config, warmup_insts);
    for (size_t ci = 0; ci < buffer.numChunks(); ++ci)
        pass.add(buffer.chunk(ci));
    return pass.finish();
}

} // namespace mlpsim::predictor
