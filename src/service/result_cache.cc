#include "result_cache.hh"

#include "core/result_json.hh"
#include "metrics/json.hh"
#include "util/logging.hh"

namespace mlpsim::service {

namespace {

constexpr const char *cacheMeta = "mlpsim-result-cache-v1";

} // namespace

Expected<ResultCache>
ResultCache::open(const std::string &path)
{
    ResultCache cache;
    if (path.empty())
        return cache;

    MLPSIM_ASSIGN_OR_RETURN(RecordLog log,
                            RecordLog::open(path, cacheMeta)
                                .withContext("opening result cache"));
    cache.didSalvage = log.salvaged();
    // First-seen key order, so a compacted rewrite is deterministic
    // for a given log (entries itself is unordered).
    std::vector<std::string> key_order;
    for (const std::string &payload : log.recovered()) {
        auto parsed = metrics::JsonValue::parse(payload);
        if (!parsed.ok()) {
            warn("result cache '", path, "': skipping entry: ",
                 parsed.status().message());
            continue;
        }
        std::string cell_key;
        core::MlpResult result;
        const Status st =
            core::resultRecordFromJson(*parsed, &cell_key, &result);
        if (!st.ok()) {
            // CRC-valid but unparseable: a writer bug, not bit rot.
            // Dropping it costs one recomputation, not the cache.
            warn("result cache '", path, "': skipping entry: ",
                 st.message());
            continue;
        }
        if (cache.entries.count(cell_key) == 0)
            key_order.push_back(cell_key);
        cache.entries[cell_key] = result;
    }

    // Startup compaction: a torn tail, a skipped (unparseable) entry
    // or duplicate keys mean the file carries dead frames — every
    // future replay would re-pay for them. Rewrite it to exactly one
    // frame per distinct key (atomic, so a crash mid-compaction keeps
    // the old log). Failure is only a lost optimisation: the replayed
    // entries above are already authoritative.
    if (log.salvaged() || log.recovered().size() != cache.entries.size()) {
        std::vector<std::string> records;
        records.reserve(key_order.size());
        for (const std::string &key : key_order) {
            records.push_back(
                core::resultRecordToJson(key, cache.entries[key]).dump(0));
        }
        const size_t before = log.recovered().size();
        const Status st = log.rewrite(std::move(records));
        if (st.ok()) {
            cache.didCompact = true;
            inform("result cache '", path, "': compacted ", before,
                   " logged records to ", cache.entries.size());
        } else {
            warn("result cache '", path,
                 "': compaction failed: ", st.message());
        }
    }
    cache.log = std::make_unique<RecordLog>(std::move(log));
    return cache;
}

bool
ResultCache::lookup(const std::string &cell_key,
                    core::MlpResult *out) const
{
    std::lock_guard<std::mutex> lock(*mutex);
    const auto it = entries.find(cell_key);
    if (it == entries.end())
        return false;
    *out = it->second;
    return true;
}

Status
ResultCache::record(const std::string &cell_key,
                    const core::MlpResult &result)
{
    std::lock_guard<std::mutex> lock(*mutex);
    if (entries.count(cell_key) != 0)
        return Status::okStatus(); // duplicate within one batch
    if (log) {
        MLPSIM_RETURN_IF_ERROR(
            log->append(core::resultRecordToJson(cell_key, result)
                            .dump(0))
                .withContext("recording sweep cell"));
    }
    entries[cell_key] = result;
    return Status::okStatus();
}

size_t
ResultCache::size() const
{
    std::lock_guard<std::mutex> lock(*mutex);
    return entries.size();
}

} // namespace mlpsim::service
