#include "trace_cache.hh"

#include <cerrno>
#include <cstring>

#include <sys/stat.h>

#include "metrics/json.hh"
#include "service/wire.hh"
#include "trace/trace_io.hh"
#include "util/logging.hh"
#include "workloads/factory.hh"

namespace mlpsim::service {

namespace {

/** Best-effort directory creation; existing directory is success. */
bool
ensureDirectory(const std::string &path)
{
    if (::mkdir(path.c_str(), 0777) == 0 || errno == EEXIST)
        return true;
    warn("trace cache: cannot create spill directory '", path,
         "': ", std::strerror(errno), "; spill disabled");
    return false;
}

} // namespace

std::string
TraceCache::Key::canonical() const
{
    metrics::JsonValue doc = metrics::JsonValue::object();
    doc.set("schema", "mlpsim-trace-key-v1");
    doc.set("workload", workload);
    doc.set("seed", seed);
    doc.set("warmup", warmup);
    doc.set("insts", insts);
    return doc.dump(0);
}

TraceCache::TraceCache(std::string spill_dir, size_t capacity,
                       uint32_t stream_chunk)
    : dir(std::move(spill_dir)),
      capacityLimit(capacity == 0 ? 1 : capacity),
      streamChunk(stream_chunk)
{
    if (!dir.empty() && !ensureDirectory(dir))
        dir.clear();
}

std::string
TraceCache::spillPath(const std::string &canonical) const
{
    return dir + "/trace_" + contentHash(canonical) + ".mlpt";
}

Expected<std::shared_ptr<const PreparedTrace>>
TraceCache::get(const Key &key)
{
    const std::string canonical = key.canonical();
    {
        std::lock_guard<std::mutex> lock(mutex);
        const auto it = index.find(canonical);
        if (it != index.end()) {
            entries.splice(entries.begin(), entries, it->second);
            ++counters.memoryHits;
            return it->second->second;
        }
    }

    // Prepare outside the lock: generation takes seconds, and two
    // requests wanting *different* traces must not serialise. A rare
    // concurrent double-build of the same key costs time only — both
    // products are bit-identical, and the second insert wins the LRU
    // slot.
    const uint64_t total = key.warmup + key.insts;
    auto prepared = std::make_shared<PreparedTrace>();
    bool from_disk = false;

    if (streamChunk != 0) {
        // Streamed mode: validate the workload up front (the source's
        // factory uses the fatal() maker and runs on sweep threads),
        // then annotate in one streaming pass — no buffer, no spill.
        if (auto probe = workloads::tryMakeWorkload(key.workload, key.seed);
            !probe.ok()) {
            Status bad = probe.status();
            return std::move(bad).withContext("preparing streamed trace");
        }
        const std::string workload = key.workload;
        const uint64_t seed = key.seed;
        prepared->source = std::make_unique<trace::GeneratedChunkSource>(
            workload, total,
            [workload, seed] {
                return workloads::makeWorkload(workload, seed);
            },
            streamChunk);
        core::AnnotationOptions options;
        options.warmupInsts = key.warmup;
        MLPSIM_ASSIGN_OR_RETURN(
            auto streamed,
            core::StreamingTrace::make(*prepared->source, options));
        prepared->streamed = std::make_unique<core::StreamingTrace>(
            std::move(streamed));

        std::lock_guard<std::mutex> lock(mutex);
        ++counters.builds;
        const auto it = index.find(canonical);
        if (it != index.end())
            return it->second->second;
        entries.emplace_front(canonical, prepared);
        index[canonical] = entries.begin();
        while (entries.size() > capacityLimit) {
            index.erase(entries.back().first);
            entries.pop_back();
        }
        return std::shared_ptr<const PreparedTrace>(prepared);
    }

    if (!dir.empty()) {
        auto loaded = trace::readTrace(spillPath(canonical));
        if (loaded.ok() && loaded->name() == key.workload &&
            loaded->size() == total) {
            prepared->buffer = std::make_unique<trace::TraceBuffer>(
                *std::move(loaded));
            from_disk = true;
        }
    }
    if (!from_disk) {
        MLPSIM_ASSIGN_OR_RETURN(
            auto generator,
            workloads::tryMakeWorkload(key.workload, key.seed));
        prepared->buffer =
            std::make_unique<trace::TraceBuffer>(key.workload);
        prepared->buffer->fill(*generator, total);
        if (!dir.empty()) {
            const Status spilled =
                trace::writeTrace(spillPath(canonical),
                                  *prepared->buffer);
            if (!spilled.ok())
                warn("trace cache: spill failed: ", spilled.toString());
        }
    }

    core::AnnotationOptions options;
    options.warmupInsts = key.warmup;
    MLPSIM_ASSIGN_OR_RETURN(
        auto annotated,
        core::AnnotatedTrace::make(*prepared->buffer, options));
    prepared->annotated =
        std::make_unique<core::AnnotatedTrace>(std::move(annotated));

    std::lock_guard<std::mutex> lock(mutex);
    if (from_disk)
        ++counters.diskHits;
    else
        ++counters.builds;
    const auto it = index.find(canonical);
    if (it != index.end())
        return it->second->second; // lost a build race; reuse theirs
    entries.emplace_front(canonical, prepared);
    index[canonical] = entries.begin();
    while (entries.size() > capacityLimit) {
        index.erase(entries.back().first);
        entries.pop_back();
    }
    return std::shared_ptr<const PreparedTrace>(prepared);
}

TraceCache::Stats
TraceCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return counters;
}

} // namespace mlpsim::service
