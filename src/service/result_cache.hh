/**
 * @file
 * Content-addressed (cell key → MlpResult) cache with an optional
 * persistent recordio backing log.
 *
 * The daemon's result tier: a cell that was ever computed — by this
 * process or by a daemon that crashed yesterday — is served from here
 * without simulating. Keys are the canonical cell-key JSON strings of
 * service/wire.hh (the full string, so hash collisions are
 * impossible); values are exact MlpResult records in the storage form
 * of core/result_json.hh, so a replayed result is bit-identical to
 * the original computation.
 *
 * Persistence reuses the CRC32-framed RecordLog (util/recordio.hh):
 * every record() appends one flushed frame, and open() replays the
 * log — salvaging a corrupt tail from a mid-append kill — so a
 * restarted daemon starts warm. Only *successful* results are ever
 * recorded; failures stay failures and are recomputed on retry.
 *
 * Thread-safe: lookup() may run concurrently with other lookups;
 * record() serialises (the daemon records from the runAll() caller in
 * submission order, keeping the log's record order deterministic for
 * a given request history).
 */
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "core/mlp_result.hh"
#include "util/recordio.hh"
#include "util/status.hh"

namespace mlpsim::service {

class ResultCache
{
  public:
    /** A memory-only cache (equivalent to open("")). */
    ResultCache() = default;

    /**
     * Open a cache backed by @p path (replaying any prior contents),
     * or a memory-only cache when @p path is empty. Fails only if an
     * existing backing file cannot be opened for append; a corrupt
     * tail or a meta mismatch is recovered per RecordLog::open().
     */
    static Expected<ResultCache> open(const std::string &path);

    ResultCache(ResultCache &&) = default;
    ResultCache &operator=(ResultCache &&) = default;

    /** The result recorded for @p cell_key, if any. */
    bool lookup(const std::string &cell_key,
                core::MlpResult *out) const;

    /** Record a computed result (appends to the backing log). */
    Status record(const std::string &cell_key,
                  const core::MlpResult &result);

    /** Distinct cells on record. */
    size_t size() const;

    /** True if open() dropped a corrupt tail from the backing log. */
    bool salvaged() const { return didSalvage; }

    /** True if open() rewrote the backing log to one frame per key
     *  (it held torn, duplicate or unparseable records). */
    bool compacted() const { return didCompact; }

    /** True when a backing log is attached. */
    bool persistent() const { return log != nullptr; }

  private:
    // Indirections keep ResultCache movable (RecordLog is move-only,
    // std::mutex is not movable at all).
    std::unique_ptr<std::mutex> mutex =
        std::make_unique<std::mutex>();
    std::unique_ptr<RecordLog> log; //!< null = memory-only
    std::unordered_map<std::string, core::MlpResult> entries;
    bool didSalvage = false;
    bool didCompact = false;
};

} // namespace mlpsim::service
