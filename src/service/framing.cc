#include "framing.hh"

#include <cerrno>
#include <cstring>

#include <poll.h>
#include <unistd.h>

namespace mlpsim::service {

namespace {

/**
 * Read exactly @p len bytes, riding out EINTR and short reads.
 * Returns the byte count actually read: len on success, less only if
 * EOF arrived first, or an errno failure.
 */
Expected<size_t>
readFull(int fd, void *buf, size_t len)
{
    size_t got = 0;
    while (got < len) {
        const ssize_t n =
            ::read(fd, static_cast<char *>(buf) + got, len - got);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return Status::ioError("read: ", std::strerror(errno));
        }
        if (n == 0)
            break; // EOF
        got += static_cast<size_t>(n);
    }
    return got;
}

Status
writeFull(int fd, const void *buf, size_t len)
{
    size_t put = 0;
    while (put < len) {
        const ssize_t n =
            ::write(fd, static_cast<const char *>(buf) + put, len - put);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return Status::ioError("write: ", std::strerror(errno));
        }
        put += static_cast<size_t>(n);
    }
    return Status::okStatus();
}

} // namespace

Expected<bool>
FrameReader::read(std::string *payload)
{
    unsigned char word[4];
    MLPSIM_ASSIGN_OR_RETURN(const size_t header_bytes,
                            readFull(fd, word, sizeof word));
    if (header_bytes == 0)
        return false; // clean EOF between frames
    if (header_bytes < sizeof word) {
        return Status::dataLoss("frame stream truncated inside a "
                                "length prefix (", header_bytes,
                                " of 4 bytes)");
    }

    const uint32_t len = static_cast<uint32_t>(word[0]) |
                         static_cast<uint32_t>(word[1]) << 8 |
                         static_cast<uint32_t>(word[2]) << 16 |
                         static_cast<uint32_t>(word[3]) << 24;
    if (len > maxFrameBytes) {
        return Status::dataLoss("frame length ", len, " exceeds the ",
                                maxFrameBytes,
                                "-byte cap (peer not speaking the "
                                "mlpsimd frame protocol?)");
    }

    payload->resize(len);
    if (len != 0) {
        MLPSIM_ASSIGN_OR_RETURN(const size_t body_bytes,
                                readFull(fd, payload->data(), len));
        if (body_bytes < len) {
            return Status::dataLoss("frame stream truncated inside a ",
                                    len, "-byte payload (got ",
                                    body_bytes, ")");
        }
    }
    return true;
}

bool
FrameReader::pending() const
{
    struct pollfd pfd = {};
    pfd.fd = fd;
    pfd.events = POLLIN;
    return ::poll(&pfd, 1, 0) == 1 &&
           (pfd.revents & (POLLIN | POLLHUP)) != 0;
}

Status
FrameWriter::write(std::string_view payload)
{
    if (payload.size() > maxFrameBytes) {
        return Status::outOfRange("frame payload of ", payload.size(),
                                  " bytes exceeds the ", maxFrameBytes,
                                  "-byte cap");
    }
    const uint32_t len = static_cast<uint32_t>(payload.size());
    const unsigned char word[4] = {
        static_cast<unsigned char>(len),
        static_cast<unsigned char>(len >> 8),
        static_cast<unsigned char>(len >> 16),
        static_cast<unsigned char>(len >> 24),
    };

    std::lock_guard<std::mutex> lock(mutex);
    MLPSIM_RETURN_IF_ERROR(writeFull(fd, word, sizeof word));
    return writeFull(fd, payload.data(), payload.size());
}

} // namespace mlpsim::service
