#include "daemon.hh"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <unordered_map>
#include <vector>

#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include "core/mlpsim.hh"
#include "core/shared_stream.hh"
#include "metrics/registry.hh"
#include "service/framing.hh"
#include "service/wire.hh"
#include "util/logging.hh"

namespace mlpsim::service {

using metrics::JsonValue;

namespace {

std::string
resultsLogPath(const std::string &cache_dir)
{
    return cache_dir + "/results.rec";
}

/** Our hook token: the wrapped metrics token plus the cell label. */
struct CellToken
{
    std::shared_ptr<void> inner;
    std::string label;
};

} // namespace

Daemon::Daemon(DaemonConfig daemon_config)
    : config(daemon_config), runner(daemon_config.jobs),
      traces(daemon_config.cacheDir.empty()
                 ? std::string()
                 : daemon_config.cacheDir + "/traces",
             daemon_config.traceCacheCapacity,
             daemon_config.streamChunk)
{
    runner.setFailureMode(FailureMode::CollectAll);
    installHooks();
}

Daemon::~Daemon()
{
    // Hand the hook slot back to the plain metrics isolation hooks
    // (what every sweep binary installs), not to nothing, so in-
    // process tests that keep running sweeps stay deterministic.
    SweepRunner::setJobHooks(metrics::sweepIsolationHooks());
}

Expected<std::unique_ptr<Daemon>>
Daemon::create(DaemonConfig daemon_config)
{
    if (!daemon_config.cacheDir.empty() &&
        ::mkdir(daemon_config.cacheDir.c_str(), 0777) != 0 &&
        errno != EEXIST) {
        return Status::ioError("cannot create cache directory '",
                               daemon_config.cacheDir,
                               "': ", std::strerror(errno));
    }

    // SweepRunner is neither movable nor copyable, so the daemon
    // lives behind a unique_ptr from birth.
    std::unique_ptr<Daemon> daemon(new Daemon(daemon_config));
    MLPSIM_ASSIGN_OR_RETURN(
        daemon->results,
        ResultCache::open(daemon_config.cacheDir.empty()
                              ? std::string()
                              : resultsLogPath(daemon_config.cacheDir)));
    return daemon;
}

void
Daemon::installHooks()
{
    // Compose the metrics sweep-isolation hooks (deterministic
    // submission-order merge) with live per-cell progress events.
    const JobHooks base = metrics::sweepIsolationHooks();
    JobHooks hooks;
    hooks.begin = [base](const std::string &label) {
        auto token = std::make_shared<CellToken>();
        if (base.begin)
            token->inner = base.begin(label);
        token->label = label;
        return token;
    };
    hooks.end = [this, base](const std::shared_ptr<void> &token) {
        auto *cell = static_cast<CellToken *>(token.get());
        if (base.end)
            base.end(cell->inner);
        if (config.emitEvents)
            emitFrame(makeCellDoneEvent(cell->label));
    };
    hooks.commit = [base](const std::shared_ptr<void> &token,
                          const std::string &label) {
        auto *cell = static_cast<CellToken *>(token.get());
        if (base.commit)
            base.commit(cell->inner, label);
    };
    SweepRunner::setJobHooks(std::move(hooks));
}

void
Daemon::emitFrame(const JsonValue &event)
{
    std::lock_guard<std::mutex> lock(writerMutex);
    if (!activeWriter)
        return;
    const Status sent = activeWriter->write(event.dump(0));
    if (!sent.ok())
        warn("mlpsimd: dropping event frame: ", sent.toString());
}

void
Daemon::recordComputedCell(const std::string &cell_key,
                           const core::MlpResult &result)
{
    const Status recorded = results.record(cell_key, result);
    if (!recorded.ok()) {
        // Persistence is an optimisation; the response still carries
        // the computed result.
        warn("mlpsimd: result cache append failed: ",
             recorded.toString());
    }

    if (config.killAfter != 0 && ++recordedCells >= config.killAfter &&
        results.persistent()) {
        // Crash injection for the salvage tests: leave a *truncated*
        // frame at the cache tail (a length word promising more bytes
        // than follow), exactly what a mid-append kill produces, then
        // die without running destructors.
        if (std::FILE *f = std::fopen(
                resultsLogPath(config.cacheDir).c_str(), "ab")) {
            const unsigned char tail[9] = {0xE8, 0x03, 0, 0, // len 1000
                                           0xDE, 0xAD, 0xBE, 0xEF,
                                           0x7F};
            std::fwrite(tail, 1, sizeof tail, f);
            std::fflush(f);
        }
        std::fprintf(stderr,
                     "mlpsimd: simulated crash after %llu recorded "
                     "cells\n",
                     static_cast<unsigned long long>(recordedCells));
        std::_Exit(42);
    }
}

Status
Daemon::handleBatch(const std::vector<std::string> &frames,
                    FrameWriter &writer)
{
    /** What one planned cell resolves to. */
    struct PlannedCell
    {
        Job<core::MlpResult> job;  //!< valid() iff deferred this batch
        core::MlpResult cached;    //!< the result when hit
        bool hit = false;
    };
    /** Per-frame disposition, in frame order. */
    struct Outcome
    {
        std::optional<JsonValue> earlyResponse; //!< pre-built error
        std::optional<SweepRequest> request;
        std::vector<std::string> keys; //!< cell keys, config order
        uint64_t hits = 0;
        uint64_t computed = 0;
        bool control = false;
    };

    std::vector<Outcome> outcomes(frames.size());
    std::unordered_map<std::string, PlannedCell> plan;
    std::vector<std::string> defer_order;
    const ServiceStats before = counters;

    // Streamed mode: a batch's computed cells, grouped by prepared
    // trace, consume shared stream generations instead of each cell
    // regenerating the trace (leader/follower — see SharedCellGroup).
    // Groups outlive runAll() below; each group is fully built before
    // the batch executes because defer only queues jobs.
    std::vector<std::pair<const PreparedTrace *,
                          std::unique_ptr<core::SharedCellGroup>>>
        stream_groups;
    const auto group_for =
        [&stream_groups](
            const std::shared_ptr<const PreparedTrace> &prepared) {
            for (auto &entry : stream_groups)
                if (entry.first == prepared.get())
                    return entry.second.get();
            stream_groups.emplace_back(
                prepared.get(), std::make_unique<core::SharedCellGroup>(
                                    prepared->context()));
            return stream_groups.back().second.get();
        };

    for (size_t i = 0; i < frames.size(); ++i) {
        Outcome &outcome = outcomes[i];

        auto doc = JsonValue::parse(frames[i]);
        if (!doc.ok()) {
            outcome.earlyResponse = makeErrorResponse(
                "", "",
                Status::invalidArgument("request is not valid JSON: ",
                                        doc.status().message()));
            continue;
        }

        const JsonValue *schema = doc->find("schema");
        if (schema && schema->isString() &&
            schema->string() == sweepControlSchema) {
            outcome.control = true;
            const JsonValue *cmd = doc->find("command");
            const std::string command =
                cmd && cmd->isString() ? cmd->string() : "";
            if (command == "shutdown") {
                shuttingDown = true;
            } else if (command == "ping") {
                MLPSIM_RETURN_IF_ERROR(
                    writer.write(makeEvent("pong").dump(0)));
            } else {
                outcome.earlyResponse = makeErrorResponse(
                    "", "",
                    Status::invalidArgument(
                        "unknown control command '", command, "'"));
            }
            continue;
        }

        auto parsed = parseSweepRequest(*doc, config.maxInsts);
        if (!parsed.ok()) {
            // Salvage the id for correlation when it parsed at least
            // that far; the request itself is rejected, not the
            // connection and certainly not the process.
            std::string id;
            if (const JsonValue *id_field = doc->find("id");
                id_field && id_field->isString())
                id = id_field->string();
            outcome.earlyResponse =
                makeErrorResponse(id, "", parsed.status());
            continue;
        }
        outcome.request = std::move(*parsed);
        SweepRequest &request = *outcome.request;
        ++counters.requests;
        counters.cells += request.configs.size();

        std::shared_ptr<const PreparedTrace> prepared;
        Status trace_error;
        for (const RequestConfig &rc : request.configs) {
            std::string key = cellKey(request, rc.config);

            if (const auto it = plan.find(key); it != plan.end()) {
                // Cache hit or within-batch dedup onto an in-flight
                // job; either way this request computes nothing new.
                ++outcome.hits;
                outcome.keys.push_back(std::move(key));
                continue;
            }

            core::MlpResult cached;
            if (results.lookup(key, &cached)) {
                PlannedCell cell;
                cell.cached = cached;
                cell.hit = true;
                plan.emplace(key, std::move(cell));
                ++outcome.hits;
                outcome.keys.push_back(std::move(key));
                continue;
            }

            if (!prepared && trace_error.ok()) {
                auto trace = traces.get({request.workload,
                                         request.seed, request.warmup,
                                         request.insts});
                if (trace.ok())
                    prepared = *trace;
                else
                    trace_error = trace.status();
            }
            if (!trace_error.ok())
                break;

            JobLimits limits;
            limits.deadlineMillis = request.deadlineMillis;
            limits.retry.maxAttempts = request.maxAttempts;
            runner.setJobLimits(limits);

            PlannedCell cell;
            const core::MlpConfig job_config = rc.config;
            const std::string workload = request.workload;
            const std::string label = workload + "/" + rc.name;
            if (prepared->streamed) {
                core::SharedCellGroup *group = group_for(prepared);
                auto slot = std::make_shared<
                    std::optional<core::MlpResult>>();
                const size_t index = group->add(core::SharedCell{
                    label,
                    [prepared, job_config, workload,
                     slot](const core::WorkloadContext &ctx) {
                        metrics::ScopedLabel wl(workload);
                        metrics::ScopedLabel cfg(
                            job_config.metricLabel());
                        auto r = core::tryRunMlp(job_config, ctx);
                        if (!r.ok())
                            throw StatusError(r.status());
                        slot->emplace(*std::move(r));
                    }});
                cell.job = runner.defer<core::MlpResult>(
                    label, [group, index, slot]() {
                        group->runCell(index);
                        return std::move(**slot);
                    });
            } else {
                cell.job = runner.defer<core::MlpResult>(
                    label, [prepared, job_config, workload]() {
                        metrics::ScopedLabel wl(workload);
                        metrics::ScopedLabel cfg(job_config.metricLabel());
                        auto r = core::tryRunMlp(
                            job_config, prepared->annotated->context());
                        if (!r.ok())
                            throw StatusError(r.status());
                        return *std::move(r);
                    });
            }
            plan.emplace(key, std::move(cell));
            defer_order.push_back(key);
            ++outcome.computed;
            ++counters.cellsComputed;
            outcome.keys.push_back(std::move(key));
        }
        counters.cellHits += outcome.hits;

        if (!trace_error.ok()) {
            outcome.earlyResponse = makeErrorResponse(
                request.id, requestHash(request),
                std::move(trace_error)
                    .withContext("preparing trace for workload '",
                                 request.workload, "'"));
        }
    }

    // Progress preamble (frame order), then the one shared batch.
    if (config.emitEvents) {
        for (const Outcome &outcome : outcomes) {
            if (outcome.request && !outcome.earlyResponse) {
                emitFrame(makePlannedEvent(
                    outcome.request->id, outcome.keys.size(),
                    outcome.hits, outcome.computed));
            }
        }
    }
    if (!defer_order.empty())
        runner.runAll();

    // Persist computed cells in submission order — deterministic log
    // contents for a given request history, and where the killAfter
    // crash countdown lives.
    for (const std::string &key : defer_order) {
        const PlannedCell &cell = plan.at(key);
        if (cell.job.succeeded())
            recordComputedCell(key, cell.job.get());
    }

    // Responses, strictly in frame order.
    for (const Outcome &outcome : outcomes) {
        if (outcome.earlyResponse) {
            ++counters.responsesError;
            MLPSIM_RETURN_IF_ERROR(
                writer.write(outcome.earlyResponse->dump(0)));
            continue;
        }
        if (!outcome.request)
            continue; // control frame, already handled

        const SweepRequest &request = *outcome.request;
        std::vector<ResponseRow> rows;
        Status failed;
        for (size_t j = 0; j < outcome.keys.size(); ++j) {
            const PlannedCell &cell = plan.at(outcome.keys[j]);
            if (cell.hit) {
                rows.push_back({request.configs[j].name, cell.cached});
            } else if (cell.job.succeeded()) {
                rows.push_back(
                    {request.configs[j].name, cell.job.get()});
            } else {
                failed = cell.job.status();
                failed = std::move(failed).withContext(
                    "cell '", request.workload, "/",
                    request.configs[j].name, "'");
                break;
            }
        }
        if (!failed.ok()) {
            ++counters.responsesError;
            MLPSIM_RETURN_IF_ERROR(writer.write(
                makeErrorResponse(request.id, requestHash(request),
                                  failed)
                    .dump(0)));
            continue;
        }
        MLPSIM_RETURN_IF_ERROR(
            writer.write(makeOkResponse(request, rows).dump(0)));
    }

    if (metrics::enabled()) {
        auto &global = metrics::MetricRegistry::global();
        global.add("service/requests",
                   counters.requests - before.requests);
        global.add("service/cells", counters.cells - before.cells);
        global.add("service/cell_hits",
                   counters.cellHits - before.cellHits);
        global.add("service/cells_computed",
                   counters.cellsComputed - before.cellsComputed);
        global.add("service/responses_error",
                   counters.responsesError - before.responsesError);
    }
    return Status::okStatus();
}

Status
Daemon::serve(int in_fd, int out_fd)
{
    FrameReader reader(in_fd);
    FrameWriter writer(out_fd);
    {
        std::lock_guard<std::mutex> lock(writerMutex);
        activeWriter = &writer;
    }

    Status outcome;
    bool eof = false;
    while (!shuttingDown && !eof && outcome.ok()) {
        std::vector<std::string> frames;
        std::string frame;

        auto first = reader.read(&frame);
        if (!first.ok()) {
            outcome = first.status();
            break;
        }
        if (!*first)
            break; // clean EOF at a frame boundary
        frames.push_back(std::move(frame));

        // Drain the burst the client already queued so duplicates and
        // siblings share one ThreadPool batch.
        while (frames.size() < config.maxBatch && reader.pending()) {
            auto more = reader.read(&frame);
            if (!more.ok()) {
                outcome = more.status();
                break;
            }
            if (!*more) {
                eof = true;
                break;
            }
            frames.push_back(std::move(frame));
        }

        const Status handled = handleBatch(frames, writer);
        if (outcome.ok() && !handled.ok())
            outcome = handled;
    }

    if (shuttingDown && config.emitEvents)
        emitFrame(makeEvent("bye"));
    {
        std::lock_guard<std::mutex> lock(writerMutex);
        activeWriter = nullptr;
    }
    return outcome;
}

Status
Daemon::serveSocket(const std::string &path)
{
    sockaddr_un addr = {};
    if (path.size() >= sizeof addr.sun_path) {
        return Status::invalidArgument("socket path '", path,
                                       "' is too long for AF_UNIX");
    }
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

    ::unlink(path.c_str());
    const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd < 0)
        return Status::ioError("socket: ", std::strerror(errno));
    if (::bind(listen_fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof addr) != 0 ||
        ::listen(listen_fd, 8) != 0) {
        const Status failed = Status::ioError(
            "binding '", path, "': ", std::strerror(errno));
        ::close(listen_fd);
        return failed;
    }

    Status outcome;
    while (!shuttingDown) {
        const int conn = ::accept(listen_fd, nullptr, nullptr);
        if (conn < 0) {
            if (errno == EINTR)
                continue;
            outcome = Status::ioError("accept: ",
                                      std::strerror(errno));
            break;
        }
        const Status served = serve(conn, conn);
        ::close(conn);
        if (!served.ok()) {
            // One misbehaving client never takes the daemon down.
            warn("mlpsimd: connection ended with: ", served.toString());
        }
    }
    ::close(listen_fd);
    ::unlink(path.c_str());
    return outcome;
}

} // namespace mlpsim::service
