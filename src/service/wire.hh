/**
 * @file
 * JSON wire schemas of the mlpsimd sweep service, and the
 * content-addressing scheme its caches key on.
 *
 * Four document kinds flow over the framed stream (service/framing.hh):
 *
 *  - `mlpsim-sweep-request-v1` (client → daemon): one workload, an
 *    instruction budget, and a list of machine configurations to
 *    simulate over the workload's trace.
 *  - `mlpsim-sweep-response-v1` (daemon → client): one per request, in
 *    request order. Either status "ok" with a per-config result row
 *    (the presentation form of core/result_json.hh), or status
 *    "error" with the failure's code, PR 6 FailureClass bucket, and
 *    message. Response bodies are a pure function of the request
 *    content — no timestamps, no served-from-cache flags — which is
 *    what makes a cache hit byte-identical to the cold computation it
 *    replays.
 *  - `mlpsim-sweep-event-v1` (daemon → client, optional): progress
 *    frames interleaved with responses — "planned" (how many cells a
 *    request needs and how many the cache already had) and
 *    "cell-done" (a cell finished computing, streamed live from the
 *    job hooks).
 *  - `mlpsim-sweep-control-v1` (client → daemon): "ping" (answered
 *    with a "pong" event) and "shutdown" (daemon drains and exits).
 *
 * Content addressing: a *cell* is one (workload, seed, warmup, insts,
 * config) simulation. Its identity is the canonical cell-key JSON —
 * fixed member order, compact dump — produced by cellKey(). Cache maps
 * are keyed by this full string (collision-proof); contentHash() of it
 * (16 hex chars of splitMix64 ∘ FNV-1a) names derived artifacts where
 * a short stable token is needed: spilled trace filenames and the
 * request_hash echoed in responses. Presentation-only fields (the
 * config's display name, the request id, deadlines/retries) are
 * excluded from keys, so renaming a config or retuning limits still
 * hits the cache.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/mlp_config.hh"
#include "core/mlp_result.hh"
#include "metrics/json.hh"
#include "util/status.hh"

namespace mlpsim::service {

// Schema identifiers, exactly as they appear on the wire.
inline constexpr const char *sweepRequestSchema =
    "mlpsim-sweep-request-v1";
inline constexpr const char *sweepResponseSchema =
    "mlpsim-sweep-response-v1";
inline constexpr const char *sweepEventSchema = "mlpsim-sweep-event-v1";
inline constexpr const char *sweepControlSchema =
    "mlpsim-sweep-control-v1";

/** One machine configuration of a request, with its display name. */
struct RequestConfig
{
    std::string name;       //!< presentation label (default: label())
    core::MlpConfig config; //!< validated machine description
};

/** A parsed, validated sweep request. */
struct SweepRequest
{
    std::string id;       //!< client correlation token, echoed back
    std::string workload; //!< commercial workload name
    uint64_t seed = 0;    //!< trace seed (default: workloadSeed())
    uint64_t warmup = 0;  //!< instructions excluded from statistics
    uint64_t insts = 0;   //!< measured instructions (≥ 1)

    double deadlineMillis = -1.0; //!< per-cell deadline; < 0 = none
    unsigned maxAttempts = 1;     //!< per-cell attempts (1 = no retry)

    std::vector<RequestConfig> configs; //!< non-empty
};

/**
 * Parse and validate a request document. Errors are classified, never
 * fatal: wrong schema / malformed shape → InvalidArgument, unknown
 * workload → NotFound (listing accepted names), inconsistent machine
 * description → the MlpConfig::validate() error. @p max_insts caps
 * warmup+insts (daemon resource guard); 0 = uncapped.
 */
Expected<SweepRequest> parseSweepRequest(const metrics::JsonValue &doc,
                                         uint64_t max_insts = 0);

/** Canonical wire form of a machine configuration (fixed key order). */
metrics::JsonValue configToJson(const core::MlpConfig &config);

/**
 * Parse a wire config object. Unknown members are rejected; absent
 * members keep their MlpConfig defaults, so a request can say just
 * {"window": 128} and mean "the default machine at 128 entries".
 * The result is not yet validate()d — parseSweepRequest() does that.
 */
Expected<core::MlpConfig> configFromJson(const metrics::JsonValue &doc);

/** Canonical cell-key JSON for one (request, config) simulation. */
std::string cellKey(const SweepRequest &request,
                    const core::MlpConfig &config);

/** 16-hex-char content fingerprint (splitMix64 ∘ FNV-1a) of @p text. */
std::string contentHash(std::string_view text);

/**
 * The request's content fingerprint: contentHash() of the canonical
 * request JSON (workload/seed/budget/configs — id, deadline and
 * retries excluded). Echoed as "request_hash" in every response so a
 * client can pair duplicates without trusting its own bookkeeping.
 */
std::string requestHash(const SweepRequest &request);

/** One computed result row: display name + its result. */
struct ResponseRow
{
    std::string config; //!< RequestConfig::name
    core::MlpResult result;
};

/** Build a status:"ok" response (rows in request config order). */
metrics::JsonValue makeOkResponse(const SweepRequest &request,
                                  const std::vector<ResponseRow> &rows);

/**
 * Build a status:"error" response carrying @p error's code, its
 * FailureClass bucket, and message. @p id / @p request_hash may be
 * empty when the request never parsed far enough to have them.
 */
metrics::JsonValue makeErrorResponse(const std::string &id,
                                     const std::string &request_hash,
                                     const Status &error);

/**
 * Structural validation of a response document (the metrics_check
 * --kind sweep-response contract): schema, status, a well-formed
 * error object or result rows with every presentation field.
 */
Status validateSweepResponse(const metrics::JsonValue &doc);

/** Progress-event constructors (doc comments: file comment above). */
metrics::JsonValue makePlannedEvent(const std::string &id,
                                    uint64_t cells, uint64_t hits,
                                    uint64_t computed);
metrics::JsonValue makeCellDoneEvent(const std::string &label);
metrics::JsonValue makeEvent(const std::string &kind);

} // namespace mlpsim::service
