#include "wire.hh"

#include <cstdio>

#include "core/result_json.hh"
#include "util/retry.hh"
#include "util/rng.hh"
#include "workloads/factory.hh"

namespace mlpsim::service {

using metrics::JsonValue;

namespace {

/** Wire spellings of CoreMode, in enum order. */
constexpr const char *modeNames[] = {
    "out-of-order",
    "in-order-stall-on-miss",
    "in-order-stall-on-use",
    "runahead",
};

Expected<core::CoreMode>
parseMode(const std::string &text)
{
    for (unsigned i = 0; i < 4; ++i) {
        if (text == modeNames[i])
            return static_cast<core::CoreMode>(i);
    }
    return Status::invalidArgument(
        "unknown mode '", text,
        "' (accepted: out-of-order, in-order-stall-on-miss, "
        "in-order-stall-on-use, runahead)");
}

Expected<core::IssueConfig>
parseIssue(const std::string &text)
{
    if (text.size() == 1 && text[0] >= 'A' && text[0] <= 'E')
        return static_cast<core::IssueConfig>(text[0] - 'A');
    return Status::invalidArgument("unknown issue config '", text,
                                   "' (accepted: A..E)");
}

/** Fetch a required/optional unsigned member with type checking. */
Status
getUint(const JsonValue &doc, const char *name, bool required,
        uint64_t *out)
{
    const JsonValue *field = doc.find(name);
    if (!field) {
        if (required)
            return Status::invalidArgument("missing field '", name, "'");
        return Status::okStatus();
    }
    if (!field->isNumber() || field->number() < 0.0)
        return Status::invalidArgument("field '", name,
                                       "' must be a non-negative "
                                       "integer");
    *out = field->uinteger();
    return Status::okStatus();
}

} // namespace

JsonValue
configToJson(const core::MlpConfig &config)
{
    // Fixed member order: this document *is* the cache identity of a
    // machine, so the order may never depend on how the config was
    // described.
    JsonValue doc = JsonValue::object();
    doc.set("mode", modeNames[static_cast<unsigned>(config.mode)]);
    doc.set("issue", core::issueConfigName(config.issue));
    doc.set("fetch", static_cast<uint64_t>(config.fetchBufferSize));
    doc.set("window", static_cast<uint64_t>(config.issueWindowSize));
    doc.set("rob", static_cast<uint64_t>(config.robSize));
    doc.set("runahead",
            static_cast<uint64_t>(config.maxRunaheadDistance));
    doc.set("horizon", static_cast<uint64_t>(config.epochInstHorizon));
    doc.set("vp", config.valuePrediction);
    doc.set("sb", config.finiteStoreBuffer);
    return doc;
}

Expected<core::MlpConfig>
configFromJson(const JsonValue &doc)
{
    if (!doc.isObject())
        return Status::invalidArgument("config must be an object");

    core::MlpConfig config; // wire defaults = MlpConfig defaults

    for (const auto &[key, value] : doc.members()) {
        if (key == "name") {
            // Presentation-only; the request parser reads it.
            if (!value.isString())
                return Status::invalidArgument(
                    "config field 'name' must be a string");
            continue;
        }
        if (key == "mode") {
            if (!value.isString())
                return Status::invalidArgument(
                    "config field 'mode' must be a string");
            MLPSIM_ASSIGN_OR_RETURN(config.mode,
                                    parseMode(value.string()));
            continue;
        }
        if (key == "issue") {
            if (!value.isString())
                return Status::invalidArgument(
                    "config field 'issue' must be a string");
            MLPSIM_ASSIGN_OR_RETURN(config.issue,
                                    parseIssue(value.string()));
            continue;
        }
        if (key == "vp" || key == "sb") {
            if (!value.isBool())
                return Status::invalidArgument("config field '", key,
                                               "' must be a boolean");
            (key == "vp" ? config.valuePrediction
                         : config.finiteStoreBuffer) = value.boolean();
            continue;
        }

        unsigned *target = nullptr;
        if (key == "fetch")
            target = &config.fetchBufferSize;
        else if (key == "window")
            target = &config.issueWindowSize;
        else if (key == "rob")
            target = &config.robSize;
        else if (key == "runahead")
            target = &config.maxRunaheadDistance;
        else if (key == "horizon")
            target = &config.epochInstHorizon;
        else
            return Status::invalidArgument("unknown config field '",
                                           key, "'");

        if (!value.isNumber() || value.number() < 0.0 ||
            value.number() > 4294967295.0) {
            return Status::invalidArgument("config field '", key,
                                           "' must be a u32");
        }
        *target = static_cast<unsigned>(value.uinteger());
    }
    return config;
}

Expected<SweepRequest>
parseSweepRequest(const JsonValue &doc, uint64_t max_insts)
{
    if (!doc.isObject())
        return Status::invalidArgument("request must be a JSON object");

    const JsonValue *schema = doc.find("schema");
    if (!schema || !schema->isString() ||
        schema->string() != sweepRequestSchema) {
        return Status::invalidArgument("request schema must be '",
                                       sweepRequestSchema, "'");
    }

    SweepRequest request;

    if (const JsonValue *id = doc.find("id")) {
        if (!id->isString())
            return Status::invalidArgument("field 'id' must be a string");
        request.id = id->string();
    }

    const JsonValue *workload = doc.find("workload");
    if (!workload || !workload->isString())
        return Status::invalidArgument(
            "missing or non-string field 'workload'");
    request.workload = workload->string();

    bool known = false;
    std::string accepted;
    for (const std::string &name :
         workloads::commercialWorkloadNames()) {
        known = known || name == request.workload;
        accepted += accepted.empty() ? name : ", " + name;
    }
    if (!known) {
        return Status::notFound("unknown workload '", request.workload,
                                "' (accepted: ", accepted, ")");
    }

    request.seed = workloads::workloadSeed(request.workload);
    MLPSIM_RETURN_IF_ERROR(getUint(doc, "seed", false, &request.seed));
    MLPSIM_RETURN_IF_ERROR(
        getUint(doc, "warmup", false, &request.warmup));
    MLPSIM_RETURN_IF_ERROR(getUint(doc, "insts", true, &request.insts));
    if (request.insts == 0)
        return Status::invalidArgument("field 'insts' must be >= 1");
    if (max_insts != 0 && request.warmup + request.insts > max_insts) {
        return Status::outOfRange(
            "warmup + insts = ", request.warmup + request.insts,
            " exceeds this daemon's --max-insts ", max_insts);
    }

    if (const JsonValue *deadline = doc.find("deadline_ms")) {
        if (!deadline->isNumber())
            return Status::invalidArgument(
                "field 'deadline_ms' must be a number");
        request.deadlineMillis = deadline->number();
    }
    uint64_t retries = 0;
    MLPSIM_RETURN_IF_ERROR(getUint(doc, "retries", false, &retries));
    request.maxAttempts = static_cast<unsigned>(retries) + 1;

    const JsonValue *configs = doc.find("configs");
    if (!configs || !configs->isArray() || configs->size() == 0) {
        return Status::invalidArgument(
            "field 'configs' must be a non-empty array");
    }
    for (size_t i = 0; i < configs->size(); ++i) {
        const JsonValue &entry = configs->items()[i];
        auto parsed = configFromJson(entry);
        if (!parsed.ok()) {
            Status st = parsed.status();
            return std::move(st).withContext("configs[", i, "]");
        }
        RequestConfig rc;
        rc.config = *parsed;
        rc.config.warmupInsts = request.warmup;
        if (const JsonValue *name = entry.find("name"))
            rc.name = name->string();
        else
            rc.name = rc.config.label();
        MLPSIM_RETURN_IF_ERROR(
            rc.config.validate().withContext("configs[", i, "] ('",
                                             rc.name, "')"));
        request.configs.push_back(std::move(rc));
    }
    return request;
}

std::string
cellKey(const SweepRequest &request, const core::MlpConfig &config)
{
    JsonValue doc = JsonValue::object();
    doc.set("schema", "mlpsim-sweep-cell-v1");
    doc.set("workload", request.workload);
    doc.set("seed", request.seed);
    doc.set("warmup", request.warmup);
    doc.set("insts", request.insts);
    doc.set("config", configToJson(config));
    return doc.dump(0);
}

std::string
contentHash(std::string_view text)
{
    char out[17];
    std::snprintf(out, sizeof out, "%016llx",
                  static_cast<unsigned long long>(
                      splitMix64(fnv1a64(text))));
    return out;
}

std::string
requestHash(const SweepRequest &request)
{
    JsonValue doc = JsonValue::object();
    doc.set("schema", sweepRequestSchema);
    doc.set("workload", request.workload);
    doc.set("seed", request.seed);
    doc.set("warmup", request.warmup);
    doc.set("insts", request.insts);
    JsonValue configs = JsonValue::array();
    for (const RequestConfig &rc : request.configs)
        configs.push(configToJson(rc.config));
    doc.set("configs", std::move(configs));
    return contentHash(doc.dump(0));
}

JsonValue
makeOkResponse(const SweepRequest &request,
               const std::vector<ResponseRow> &rows)
{
    JsonValue doc = JsonValue::object();
    doc.set("schema", sweepResponseSchema);
    doc.set("id", request.id);
    doc.set("request_hash", requestHash(request));
    doc.set("status", "ok");
    JsonValue results = JsonValue::array();
    for (const ResponseRow &row : rows) {
        JsonValue entry = JsonValue::object();
        entry.set("config", row.config);
        const JsonValue fields = core::resultToJson(row.result);
        for (const auto &[key, value] : fields.members())
            entry.set(key, value);
        results.push(std::move(entry));
    }
    doc.set("results", std::move(results));
    return doc;
}

JsonValue
makeErrorResponse(const std::string &id,
                  const std::string &request_hash, const Status &error)
{
    JsonValue doc = JsonValue::object();
    doc.set("schema", sweepResponseSchema);
    doc.set("id", id);
    doc.set("request_hash", request_hash);
    doc.set("status", "error");
    JsonValue detail = JsonValue::object();
    detail.set("code", errorCodeName(error.code()));
    detail.set("class", failureClassName(failureClass(error.code())));
    detail.set("message", error.message());
    doc.set("error", std::move(detail));
    return doc;
}

Status
validateSweepResponse(const JsonValue &doc)
{
    if (!doc.isObject())
        return Status::invalidArgument("response must be a JSON object");
    const JsonValue *schema = doc.find("schema");
    if (!schema || !schema->isString() ||
        schema->string() != sweepResponseSchema) {
        return Status::invalidArgument("response schema must be '",
                                       sweepResponseSchema, "'");
    }
    const JsonValue *id = doc.find("id");
    if (!id || !id->isString())
        return Status::invalidArgument("missing string field 'id'");
    const JsonValue *hash = doc.find("request_hash");
    if (!hash || !hash->isString())
        return Status::invalidArgument(
            "missing string field 'request_hash'");

    const JsonValue *status = doc.find("status");
    if (!status || !status->isString())
        return Status::invalidArgument("missing string field 'status'");

    if (status->string() == "error") {
        const JsonValue *error = doc.find("error");
        if (!error || !error->isObject())
            return Status::invalidArgument(
                "error response lacks an 'error' object");
        for (const char *field : {"code", "class", "message"}) {
            const JsonValue *member = error->find(field);
            if (!member || !member->isString())
                return Status::invalidArgument(
                    "error object lacks string field '", field, "'");
        }
        return Status::okStatus();
    }
    if (status->string() != "ok")
        return Status::invalidArgument("status must be 'ok' or "
                                       "'error', got '",
                                       status->string(), "'");

    const JsonValue *results = doc.find("results");
    if (!results || !results->isArray() || results->size() == 0) {
        return Status::invalidArgument(
            "ok response lacks a non-empty 'results' array");
    }
    for (size_t i = 0; i < results->size(); ++i) {
        const JsonValue &row = results->items()[i];
        if (!row.isObject())
            return Status::invalidArgument("results[", i,
                                           "] is not an object");
        const JsonValue *config = row.find("config");
        if (!config || !config->isString())
            return Status::invalidArgument(
                "results[", i, "] lacks string field 'config'");
        for (const char *field :
             {"epochs", "useful_accesses", "dmiss_accesses",
              "imiss_accesses", "pmiss_accesses", "smiss_accesses",
              "measured_insts", "mlp"}) {
            const JsonValue *member = row.find(field);
            if (!member || !member->isNumber())
                return Status::invalidArgument(
                    "results[", i, "] lacks numeric field '", field,
                    "'");
        }
        for (const char *field : {"inhibitors", "accesses_per_epoch"}) {
            const JsonValue *member = row.find(field);
            if (!member || !member->isObject())
                return Status::invalidArgument(
                    "results[", i, "] lacks object field '", field,
                    "'");
        }
    }
    return Status::okStatus();
}

JsonValue
makeEvent(const std::string &kind)
{
    JsonValue doc = JsonValue::object();
    doc.set("schema", sweepEventSchema);
    doc.set("event", kind);
    return doc;
}

JsonValue
makePlannedEvent(const std::string &id, uint64_t cells, uint64_t hits,
                 uint64_t computed)
{
    JsonValue doc = makeEvent("planned");
    doc.set("id", id);
    doc.set("cells", cells);
    doc.set("hits", hits);
    doc.set("computed", computed);
    return doc;
}

JsonValue
makeCellDoneEvent(const std::string &label)
{
    JsonValue doc = makeEvent("cell-done");
    doc.set("label", label);
    return doc;
}

} // namespace mlpsim::service
