/**
 * @file
 * The mlpsimd sweep daemon: a long-running service that accepts
 * framed sweep-request documents, batches compatible work onto one
 * shared SweepRunner, and answers every request — in request order —
 * with a response that is a pure function of the request's content.
 *
 * Request lifecycle:
 *
 *   1. *Drain.* serve() blocks for one frame, then greedily drains
 *      whatever else the client already queued (up to maxBatch
 *      frames), so a pipelined burst becomes one batch sharing the
 *      thread pool instead of N serialised round trips.
 *   2. *Validate.* Each frame parses through the wire layer; every
 *      defect — bad JSON, wrong schema, unknown workload, an
 *      inconsistent machine — becomes a status:"error" response
 *      carrying the PR 6 FailureClass taxonomy. The daemon never
 *      aborts on request content; fatal() stays reserved for
 *      operator errors at startup (bad flags, unusable cache dir).
 *   3. *Plan.* Each request expands into cells (one per config).
 *      Cells already in the result cache are hits; identical cells
 *      within the batch are deduplicated onto one job; the rest
 *      defer onto the SweepRunner with the request's deadline/retry
 *      limits, reading a shared immutable trace from the TraceCache.
 *   4. *Execute.* One runAll() per batch, CollectAll mode — one bad
 *      cell degrades its request to an error response, never the
 *      batch, never the process.
 *   5. *Record + respond.* Computed cells append to the persistent
 *      result cache (submission order, so the log is deterministic
 *      for a given request history); responses go out in frame
 *      order. A request whose cells all hit the cache answers
 *      without simulating anything — byte-identical to its cold
 *      counterpart, because response bodies carry no cache metadata.
 *
 * Progress events (optional, --events): "planned" per request before
 * execution, "cell-done" streamed live from the job-completion hooks,
 * which also wrap the metrics sweep-isolation hooks so per-cell
 * metrics keep their deterministic submission-order merge.
 *
 * Crash injection: killAfter > 0 makes the daemon _Exit(42) right
 * after recording its Nth computed cell, deliberately leaving a
 * truncated frame at the cache tail — the service_smoke harness uses
 * this to prove a restarted daemon salvages the log and stays warm.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "metrics/json.hh"
#include "service/result_cache.hh"
#include "service/trace_cache.hh"
#include "util/parallel.hh"
#include "util/status.hh"

namespace mlpsim::service {

class FrameWriter;

struct DaemonConfig
{
    unsigned jobs = 0;        //!< SweepRunner threads (0 = hardware)
    std::string cacheDir;     //!< persistence root; "" = memory-only
    size_t traceCacheCapacity = 4;
    /**
     * --stream-chunk: non-zero prepares traces in streamed mode with
     * this chunk capacity (memory stops scaling with the instruction
     * budget) and groups a batch's computed cells by trace so each
     * group's engines consume shared stream generations
     * (core::SharedCellGroup). Responses are byte-identical to
     * materialised mode.
     */
    uint32_t streamChunk = 0;
    uint64_t maxInsts = 100'000'000; //!< per-request warmup+insts cap
    unsigned maxBatch = 16;   //!< frames drained into one batch
    uint64_t killAfter = 0;   //!< crash-inject after N recorded cells
    bool emitEvents = true;
};

/** Lifetime service counters (see also TraceCache::Stats). */
struct ServiceStats
{
    uint64_t requests = 0;       //!< request frames parsed OK
    uint64_t responsesError = 0; //!< error responses sent
    uint64_t cells = 0;          //!< cells across all OK requests
    uint64_t cellHits = 0;       //!< served from cache / batch dedup
    uint64_t cellsComputed = 0;  //!< simulated this process
};

class Daemon
{
  public:
    /**
     * Construct a daemon: opens (and replays) the persistent result
     * cache under config.cacheDir and installs the composed job
     * hooks. Fails if an existing cache file is unusable for append.
     */
    static Expected<std::unique_ptr<Daemon>> create(DaemonConfig config);

    ~Daemon();

    Daemon(const Daemon &) = delete;
    Daemon &operator=(const Daemon &) = delete;

    /**
     * Serve one framed stream until clean EOF or a shutdown control
     * frame. Returns the first stream-level failure (truncated frame,
     * broken pipe); request-level failures never surface here.
     */
    Status serve(int in_fd, int out_fd);

    /**
     * Bind an AF_UNIX stream socket at @p path and serve one
     * connection at a time until a client sends shutdown.
     */
    Status serveSocket(const std::string &path);

    const ServiceStats &stats() const { return counters; }
    TraceCache::Stats traceStats() const { return traces.stats(); }
    const ResultCache &resultCache() const { return results; }
    bool shutdownRequested() const { return shuttingDown; }

  private:
    explicit Daemon(DaemonConfig daemon_config);

    void installHooks();
    void emitFrame(const metrics::JsonValue &event);
    Status handleBatch(const std::vector<std::string> &frames,
                       FrameWriter &writer);
    void recordComputedCell(const std::string &cell_key,
                            const core::MlpResult &result);

    DaemonConfig config;
    SweepRunner runner;
    TraceCache traces;
    ResultCache results;
    ServiceStats counters;

    uint64_t recordedCells = 0; //!< killAfter countdown basis
    bool shuttingDown = false;

    std::mutex writerMutex; //!< guards activeWriter across job threads
    FrameWriter *activeWriter = nullptr;
};

} // namespace mlpsim::service
