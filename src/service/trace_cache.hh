/**
 * @file
 * Shared cache of prepared (generated + annotated) workload traces.
 *
 * Trace generation and annotation dominate a cold sweep cell: every
 * config simulated over the same (workload, seed, warmup, budget)
 * tuple replays the *same* annotated trace, and consecutive requests
 * in a duplicate-heavy stream replay it again. The daemon therefore
 * prepares each distinct tuple once and hands out shared_ptrs to an
 * immutable PreparedTrace that concurrent sweep jobs read without
 * locking.
 *
 * Two tiers:
 *
 *  - an in-memory LRU of fully prepared traces (buffer + annotations),
 *    bounded by a trace count (traces are the daemon's dominant memory
 *    consumer; the default of 4 covers the three commercial workloads
 *    plus one odd seed);
 *  - an optional on-disk spill directory of *raw* trace buffers in the
 *    CRC-checked trace-file format (trace/trace_io.hh), keyed by
 *    content hash. A disk hit skips generation (the deterministic
 *    part worth persisting) and re-annotates; annotations are cheap
 *    relative to generation and depend on substrate options, so they
 *    are not spilled.
 *
 * Everything is keyed by the canonical trace-key JSON (full string,
 * collision-proof); contentHash() of it names spill files. Disk I/O
 * failures degrade to generation — a broken cache directory costs
 * time, never correctness.
 */
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/mlpsim.hh"
#include "core/trace_pipeline.hh"
#include "trace/stream_source.hh"
#include "trace/trace_buffer.hh"
#include "util/status.hh"

namespace mlpsim::service {

/**
 * An immutable prepared trace, shared read-only across sweep jobs, in
 * one of two modes (mirroring bench::PreparedWorkload):
 *
 *  - materialised (default): `buffer` + `annotated`;
 *  - streamed (stream_chunk != 0): `source` regenerates the trace on
 *    demand, `streamed` holds its annotations — the daemon's resident
 *    set stops scaling with the instruction budget, and batch cells
 *    share stream generations (see Daemon::handleBatch).
 */
struct PreparedTrace
{
    // unique_ptrs for address stability: AnnotatedTrace borrows the
    // buffer, and shared_ptr owners may move the struct's container.
    std::unique_ptr<trace::TraceBuffer> buffer;
    std::unique_ptr<core::AnnotatedTrace> annotated;
    std::unique_ptr<trace::GeneratedChunkSource> source;
    std::unique_ptr<core::StreamingTrace> streamed;

    core::WorkloadContext context() const
    {
        return annotated ? annotated->context() : streamed->context();
    }
};

class TraceCache
{
  public:
    /**
     * @param spill_dir directory for on-disk trace spill (created if
     *        missing); empty = memory-only.
     * @param capacity  in-memory LRU entry cap (≥ 1).
     * @param stream_chunk non-zero: prepare traces in streamed mode
     *        with this chunk capacity instead of materialising them.
     *        Streamed traces never spill (regeneration replaces
     *        storage — the generator IS the persistent form).
     */
    explicit TraceCache(std::string spill_dir = "",
                        size_t capacity = 4, uint32_t stream_chunk = 0);

    /** The preparation identity (what the cache is keyed on). */
    struct Key
    {
        std::string workload;
        uint64_t seed = 0;
        uint64_t warmup = 0;
        uint64_t insts = 0; //!< measured instructions (total = +warmup)

        /** Canonical JSON string form (map key; hash input). */
        std::string canonical() const;
    };

    /**
     * Return the prepared trace for @p key, preparing (or loading and
     * re-annotating a spilled buffer) on miss. Fails only when the
     * workload cannot be generated or annotated — never because of
     * spill-directory trouble.
     */
    Expected<std::shared_ptr<const PreparedTrace>> get(const Key &key);

    struct Stats
    {
        uint64_t memoryHits = 0;
        uint64_t diskHits = 0; //!< spilled buffer reloaded + annotated
        uint64_t builds = 0;   //!< generated from the workload model
    };

    Stats stats() const;

  private:
    std::string spillPath(const std::string &canonical) const;

    mutable std::mutex mutex;
    std::string dir;      //!< empty = no spill tier
    size_t capacityLimit;
    uint32_t streamChunk; //!< 0 = materialise

    /** LRU: most recently used at the front. */
    std::list<std::pair<std::string,
                        std::shared_ptr<const PreparedTrace>>> entries;
    std::unordered_map<std::string, decltype(entries)::iterator> index;

    Stats counters;
};

} // namespace mlpsim::service
