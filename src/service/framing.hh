/**
 * @file
 * Length-prefixed message framing for the mlpsimd wire protocol.
 *
 * Every message — request, response, progress event, control — is one
 * UTF-8 JSON document sent as a single frame:
 *
 *   [u32-LE payload length][payload bytes]
 *
 * over an ordinary byte stream (a pipe pair in --stdio mode, an
 * AF_UNIX stream socket in --socket mode). The length prefix is the
 * entire protocol: no delimiters inside payloads to escape, no
 * resynchronisation states — a reader is either at a frame boundary
 * or mid-frame, and EOF mid-frame is a hard DataLoss error while EOF
 * at a boundary is a clean shutdown.
 *
 * Frames are capped at 16 MiB. A length word above the cap means the
 * peer is not speaking this protocol (e.g. someone piped a trace file
 * in); failing fast beats attempting a 4 GB allocation.
 *
 * FrameWriter serialises concurrent writers with a mutex so progress
 * events emitted from job hooks interleave with responses at frame
 * granularity, never mid-frame.
 */
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>

#include "util/status.hh"

namespace mlpsim::service {

/** Upper bound on a single frame's payload, in bytes. */
constexpr uint32_t maxFrameBytes = 16u << 20;

/**
 * Blocking frame reader over a POSIX fd. Not thread-safe: one reader
 * per stream (the protocol is strictly client-drives-requests).
 */
class FrameReader
{
  public:
    explicit FrameReader(int fd) : fd(fd) {}

    /**
     * Read one complete frame into @p payload. Returns true on a
     * frame, false on clean EOF at a frame boundary. EOF inside a
     * frame, an over-cap length word, or a read(2) failure is an
     * error.
     */
    Expected<bool> read(std::string *payload);

    /**
     * True if at least one byte is readable right now (poll with a
     * zero timeout). Used by the daemon to drain a burst of queued
     * requests into one batch without blocking the batch on a quiet
     * client.
     */
    bool pending() const;

  private:
    int fd;
};

/**
 * Frame writer over a POSIX fd. write() is atomic at frame
 * granularity (internally locked), so response and event frames from
 * different threads never interleave bytes.
 */
class FrameWriter
{
  public:
    explicit FrameWriter(int fd) : fd(fd) {}

    Status write(std::string_view payload);

  private:
    int fd;
    std::mutex mutex;
};

} // namespace mlpsim::service
