/**
 * @file
 * Dense bit-vector and packed small-enum vector.
 *
 * The per-trace annotation sidecars (miss flags, branch mispredicts,
 * value-prediction outcomes) are consulted once per replayed
 * instruction by every simulator, so their footprint is pure cache
 * pressure: one byte per flag per instruction adds up to several
 * megabytes per workload that compete with the instruction stream
 * itself. These containers store one bit (or a few bits) per element
 * in 64-bit words — an 8-32x density improvement — while keeping the
 * vector<uint8_t>-style surface (`assign(n, v)`, `v[i]`, `v[i] = x`)
 * the annotators and tests already use.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mlpsim::util {

/** One bit per element, vector<bool>-like but with a stable API. */
class BitVector
{
  public:
    /** Writable reference to one bit (`v[i] = 1` support). */
    class Ref
    {
      public:
        Ref(uint64_t *word, uint64_t mask) : w(word), m(mask) {}

        operator bool() const { return (*w & m) != 0; }

        Ref &
        operator=(bool value)
        {
            if (value)
                *w |= m;
            else
                *w &= ~m;
            return *this;
        }

      private:
        uint64_t *w;
        uint64_t m;
    };

    void
    assign(size_t count, bool value)
    {
        n = count;
        words.assign((count + 63) / 64, value ? ~uint64_t(0) : 0);
    }

    /**
     * Grow to @p count bits, preserving existing bits; new bits are
     * zero. The chunk-incremental annotation builders extend their
     * planes one trace chunk at a time with this (the total length is
     * unknown while the trace is still streaming).
     */
    void
    resize(size_t count)
    {
        words.resize((count + 63) / 64, 0);
        n = count;
    }

    size_t size() const { return n; }
    bool empty() const { return n == 0; }

    bool
    test(size_t i) const
    {
        return (words[i >> 6] >> (i & 63)) & 1;
    }

    void set(size_t i) { words[i >> 6] |= uint64_t(1) << (i & 63); }
    void reset(size_t i) { words[i >> 6] &= ~(uint64_t(1) << (i & 63)); }

    bool operator[](size_t i) const { return test(i); }
    Ref operator[](size_t i)
    {
        return Ref(&words[i >> 6], uint64_t(1) << (i & 63));
    }

  private:
    std::vector<uint64_t> words;
    size_t n = 0;
};

/**
 * Fixed-width packed vector of a small enum (Bits per element, 64/Bits
 * elements per word). Element values must fit in Bits bits.
 */
template <typename Enum, unsigned Bits>
class PackedEnumVector
{
    static_assert(Bits > 0 && 64 % Bits == 0, "Bits must divide 64");
    static constexpr uint64_t elemMask = (uint64_t(1) << Bits) - 1;
    static constexpr unsigned perWord = 64 / Bits;

  public:
    /** Writable reference to one element (`v[i] = e` support). */
    class Ref
    {
      public:
        Ref(uint64_t *word, unsigned shift) : w(word), sh(shift) {}

        operator Enum() const
        {
            return static_cast<Enum>((*w >> sh) & elemMask);
        }

        Ref &
        operator=(Enum value)
        {
            *w = (*w & ~(elemMask << sh)) |
                 ((static_cast<uint64_t>(value) & elemMask) << sh);
            return *this;
        }

      private:
        uint64_t *w;
        unsigned sh;
    };

    void
    assign(size_t count, Enum value)
    {
        n = count;
        uint64_t fill = 0;
        for (unsigned e = 0; e < perWord; ++e)
            fill |= (static_cast<uint64_t>(value) & elemMask) << (e * Bits);
        words.assign((count + perWord - 1) / perWord, fill);
    }

    /** Grow to @p count, preserving contents; new elements are 0. */
    void
    resize(size_t count)
    {
        words.resize((count + perWord - 1) / perWord, 0);
        n = count;
    }

    size_t size() const { return n; }
    bool empty() const { return n == 0; }

    Enum
    operator[](size_t i) const
    {
        return static_cast<Enum>(
            (words[i / perWord] >> (i % perWord * Bits)) & elemMask);
    }

    Ref operator[](size_t i)
    {
        return Ref(&words[i / perWord], unsigned(i % perWord * Bits));
    }

  private:
    std::vector<uint64_t> words;
    size_t n = 0;
};

} // namespace mlpsim::util
