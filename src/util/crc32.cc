#include "crc32.hh"

#include <array>

namespace mlpsim {

namespace {

constexpr std::array<uint32_t, 256>
makeCrcTable()
{
    std::array<uint32_t, 256> table{};
    for (uint32_t i = 0; i < 256; ++i) {
        uint32_t c = i;
        for (int bit = 0; bit < 8; ++bit)
            c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

constexpr std::array<uint32_t, 256> crcTable = makeCrcTable();

} // namespace

void
Crc32::update(const void *data, size_t len)
{
    const auto *bytes = static_cast<const uint8_t *>(data);
    uint32_t c = state;
    for (size_t i = 0; i < len; ++i)
        c = crcTable[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
    state = c;
}

} // namespace mlpsim
