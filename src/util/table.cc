#include "table.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace mlpsim {

TextTable::TextTable(std::vector<std::string> header)
    : head(std::move(header))
{
}

void
TextTable::addRow(std::vector<std::string> row)
{
    rows.push_back(std::move(row));
}

std::string
TextTable::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TextTable::render() const
{
    std::vector<size_t> width(head.size(), 0);
    auto widen = [&](const std::vector<std::string> &r) {
        for (size_t i = 0; i < r.size() && i < width.size(); ++i)
            width[i] = std::max(width[i], r[i].size());
    };
    widen(head);
    for (const auto &r : rows)
        widen(r);

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &r) {
        for (size_t i = 0; i < width.size(); ++i) {
            const std::string &cell = i < r.size() ? r[i] : std::string();
            os << (i ? "  " : "");
            os << cell << std::string(width[i] - cell.size(), ' ');
        }
        os << '\n';
    };
    emit(head);
    std::vector<std::string> rule;
    rule.reserve(head.size());
    for (size_t w : width)
        rule.emplace_back(w, '-');
    emit(rule);
    for (const auto &r : rows)
        emit(r);
    return os.str();
}

} // namespace mlpsim
