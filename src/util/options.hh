/**
 * @file
 * Command-line option parsing for the bench, example and tool
 * binaries. Supports --name=value and --name value forms plus an
 * MLPSIM_SCALE environment variable that uniformly scales instruction
 * budgets so the whole suite can be made faster or more statistically
 * solid with one knob.
 *
 * Parsing and numeric conversion are strict: a positional argument, a
 * malformed flag, a typo'd flag name (via checkKnown()) or a value
 * that is not entirely a number of the requested type is diagnosed
 * instead of being silently ignored or default-swallowed. The
 * Status/Expected entry points (parse(), tryGetU64(), tryGetDouble(),
 * checkKnown()) report recoverably; the classic constructor and typed
 * getters are thin fatal()-on-error wrappers over them.
 */
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.hh"

namespace mlpsim {

/** Parsed command-line options with typed, defaulted accessors. */
class Options
{
  public:
    /** fatal()-on-error wrapper around parse(). */
    Options(int argc, char **argv);

    /**
     * Parse @p argv and MLPSIM_SCALE. Fails on positional arguments,
     * empty flag names, and a malformed or non-positive MLPSIM_SCALE.
     */
    static Expected<Options> parse(int argc, char **argv);

    /**
     * Reject any flag not in @p known (catches --instz=100 typos that
     * would otherwise silently leave the default in force).
     */
    Status checkKnown(const std::vector<std::string> &known) const;

    /** fatal()-on-error wrapper around checkKnown(). */
    void rejectUnknown(const std::vector<std::string> &known) const;

    bool has(const std::string &name) const;
    std::string getString(const std::string &name,
                          const std::string &def) const;

    /** @p def if absent; error if present but not a full u64. */
    Expected<uint64_t> tryGetU64(const std::string &name,
                                 uint64_t def) const;

    /** @p def if absent; error if present but not a finite double. */
    Expected<double> tryGetDouble(const std::string &name,
                                  double def) const;

    /** fatal()-on-error wrappers around the try* getters. */
    uint64_t getU64(const std::string &name, uint64_t def) const;
    double getDouble(const std::string &name, double def) const;

    /**
     * Instruction budget helper: the default scaled by MLPSIM_SCALE
     * (if set) and overridable with --<name>=N.
     */
    Expected<uint64_t> tryScaledInsts(const std::string &name,
                                      uint64_t def) const;

    /** fatal()-on-error wrapper around tryScaledInsts(). */
    uint64_t scaledInsts(const std::string &name, uint64_t def) const;

  private:
    Options() = default;

    std::map<std::string, std::string> values;
    double scale = 1.0;
};

} // namespace mlpsim
