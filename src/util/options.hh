/**
 * @file
 * Minimal command-line option parsing for the bench and example
 * binaries. Supports --name=value and --name value forms plus an
 * MLPSIM_SCALE environment variable that uniformly scales instruction
 * budgets so the whole suite can be made faster or more statistically
 * solid with one knob.
 */
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace mlpsim {

/** Parsed command-line options with typed, defaulted accessors. */
class Options
{
  public:
    Options(int argc, char **argv);

    bool has(const std::string &name) const;
    std::string getString(const std::string &name,
                          const std::string &def) const;
    uint64_t getU64(const std::string &name, uint64_t def) const;
    double getDouble(const std::string &name, double def) const;

    /**
     * Instruction budget helper: the default scaled by MLPSIM_SCALE
     * (if set) and overridable with --<name>=N.
     */
    uint64_t scaledInsts(const std::string &name, uint64_t def) const;

  private:
    std::map<std::string, std::string> values;
    double scale = 1.0;
};

} // namespace mlpsim
