#include "status.hh"

namespace mlpsim {

const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::Ok: return "ok";
      case ErrorCode::InvalidArgument: return "invalid argument";
      case ErrorCode::NotFound: return "not found";
      case ErrorCode::DataLoss: return "data loss";
      case ErrorCode::OutOfRange: return "out of range";
      case ErrorCode::IoError: return "i/o error";
      case ErrorCode::FailedPrecondition: return "failed precondition";
      case ErrorCode::Internal: return "internal error";
    }
    return "?";
}

std::string
Status::toString() const
{
    if (ok())
        return "ok";
    return std::string(errorCodeName(ec)) + ": " + msg;
}

} // namespace mlpsim
