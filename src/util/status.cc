#include "status.hh"

namespace mlpsim {

const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::Ok: return "ok";
      case ErrorCode::InvalidArgument: return "invalid argument";
      case ErrorCode::NotFound: return "not found";
      case ErrorCode::DataLoss: return "data loss";
      case ErrorCode::OutOfRange: return "out of range";
      case ErrorCode::IoError: return "i/o error";
      case ErrorCode::FailedPrecondition: return "failed precondition";
      case ErrorCode::Internal: return "internal error";
      case ErrorCode::Unavailable: return "unavailable";
      case ErrorCode::Cancelled: return "cancelled";
      case ErrorCode::DeadlineExceeded: return "deadline exceeded";
    }
    return "?";
}

FailureClass
failureClass(ErrorCode code)
{
    switch (code) {
      case ErrorCode::Ok:
        return FailureClass::None;
      case ErrorCode::Unavailable:
      case ErrorCode::IoError:
        return FailureClass::Transient;
      case ErrorCode::Cancelled:
      case ErrorCode::DeadlineExceeded:
        return FailureClass::Cancelled;
      case ErrorCode::InvalidArgument:
      case ErrorCode::NotFound:
      case ErrorCode::DataLoss:
      case ErrorCode::OutOfRange:
      case ErrorCode::FailedPrecondition:
      case ErrorCode::Internal:
        return FailureClass::Permanent;
    }
    return FailureClass::Permanent;
}

const char *
failureClassName(FailureClass fc)
{
    switch (fc) {
      case FailureClass::None: return "none";
      case FailureClass::Transient: return "transient";
      case FailureClass::Permanent: return "permanent";
      case FailureClass::Cancelled: return "cancelled";
    }
    return "?";
}

bool
isRetryable(ErrorCode code)
{
    return failureClass(code) == FailureClass::Transient;
}

std::string
Status::toString() const
{
    if (ok())
        return "ok";
    return std::string(errorCodeName(ec)) + ": " + msg;
}

} // namespace mlpsim
