/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic choices in mlpsim (workload generators, synthetic data
 * structures) flow through Rng so that every trace is exactly
 * reproducible from a 64-bit seed. The generator is xoshiro256**,
 * seeded through SplitMix64 as its authors recommend.
 */
#pragma once

#include <array>
#include <cstdint>

namespace mlpsim {

/** Stateless 64-bit mixer; used for seeding and hashing. */
constexpr uint64_t
splitMix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/**
 * xoshiro256** pseudo-random generator.
 *
 * Satisfies UniformRandomBitGenerator so it can also feed <random>
 * distributions, though mlpsim mostly uses the convenience members.
 */
class Rng
{
  public:
    using result_type = uint64_t;

    explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

    /** Reset the stream to a deterministic function of @p seed. */
    void
    reseed(uint64_t seed)
    {
        uint64_t x = seed;
        for (auto &word : state) {
            x = splitMix64(x);
            word = x;
        }
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ULL; }

    uint64_t
    operator()()
    {
        const uint64_t result = rotl(state[1] * 5, 7) * 9;
        const uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** Uniform in [0, bound). @pre bound > 0. */
    uint64_t
    below(uint64_t bound)
    {
        // Lemire's multiply-shift rejection-free approximation is fine
        // here: tiny bias at 64-bit range is irrelevant for workload
        // synthesis.
        return static_cast<uint64_t>(
            (static_cast<__uint128_t>((*this)()) * bound) >> 64);
    }

    /** Uniform in [lo, hi] inclusive. @pre lo <= hi. */
    uint64_t
    range(uint64_t lo, uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability @p p. */
    bool chance(double p) { return uniform() < p; }

    /**
     * Geometric-ish positive integer with mean approximately @p mean.
     * Used for synthesizing bursty inter-event distances.
     */
    uint64_t
    geometric(double mean)
    {
        if (mean <= 1.0)
            return 1;
        const double p = 1.0 / mean;
        uint64_t n = 1;
        while (!chance(p) && n < static_cast<uint64_t>(mean * 64.0))
            ++n;
        return n;
    }

    /**
     * Zipf-like choice over [0, n): index i drawn with weight
     * proportional to 1/(i+1)^s, approximated by the rejection-free
     * inverse-power transform. Used to give workloads hot/cold skew.
     */
    uint64_t
    zipf(uint64_t n, double s = 1.0)
    {
        // Inverse transform of the continuous bounded Pareto; cheap and
        // close enough for footprint skew purposes.
        const double u = uniform();
        const double exp = 1.0 - s;
        double v;
        if (exp > 1e-9 || exp < -1e-9) {
            const double hi = static_cast<double>(n);
            v = (u * (powFast(hi, exp) - 1.0) + 1.0);
            v = powFast(v, 1.0 / exp) - 1.0;
        } else {
            v = powFast(static_cast<double>(n), u) - 1.0;
        }
        auto idx = static_cast<uint64_t>(v);
        return idx >= n ? n - 1 : idx;
    }

  private:
    static constexpr uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    static double powFast(double base, double e);

    std::array<uint64_t, 4> state;
};

} // namespace mlpsim
