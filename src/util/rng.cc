#include "rng.hh"

#include <cmath>

namespace mlpsim {

double
Rng::powFast(double base, double e)
{
    return std::pow(base, e);
}

} // namespace mlpsim
