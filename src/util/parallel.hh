/**
 * @file
 * Fixed thread pool and deterministic job-grid execution, with a
 * fault-tolerant execution layer (deadlines, retry, collect-all).
 *
 * MLPsim's sweeps — (machine configuration x workload) grids over the
 * same annotated traces — are embarrassingly parallel: every job only
 * reads a const AnnotatedTrace and writes its own result object.
 * SweepRunner exploits that without giving up reproducibility:
 *
 *  - Jobs are *deferred*: defer() records a closure and returns a
 *    typed Job<T> handle; nothing executes until runAll().
 *  - runAll() executes all pending jobs on a fixed pool of worker
 *    threads (or inline on the calling thread when the runner was
 *    built with one job slot, which is bit-for-bit today's serial
 *    behaviour).
 *  - Results are collected in *submission order*: a Job<T> handle is a
 *    stable slot, so consumers read the grid back in exactly the order
 *    they built it no matter which worker finished first. Stdout
 *    formatting therefore stays deterministic.
 *
 * Failure semantics (DESIGN.md section 13):
 *
 *  - Every job failure — thrown exception, cancellation, blown
 *    deadline — is recorded as a JobFailure (submission index, label,
 *    classified Status, attempt count); nothing is silently dropped.
 *    The batch always runs to completion and lastFailures() exposes
 *    the full record either way.
 *  - In the default FailureMode::Propagate, runAll() then rethrows
 *    the *first* failure in submission order. Submission order — not
 *    completion order — is deliberate: completion order varies with
 *    thread scheduling run to run, so "which failure a sweep dies
 *    with" would be nondeterministic and unbisectable. When several
 *    jobs failed, the count is reported on stderr before the rethrow
 *    so the non-first failures are never invisible.
 *  - In FailureMode::CollectAll, runAll() does not throw: failed jobs
 *    degrade into their JobFailure records, successful slots stay
 *    readable, and the caller turns the record into a sweep report
 *    (metrics/export.hh). This is how a thousand-point sweep survives
 *    one poisoned cell.
 *  - JobLimits (setJobLimits) arm a per-job cooperative deadline
 *    (polled by the simulation kernels via util/cancellation.hh, and
 *    enforced in the background by a watchdog thread that flags
 *    overdue jobs) and a deterministic RetryPolicy for transient
 *    failures (util/retry.hh).
 *
 * On the all-success path none of this machinery observably runs:
 * results, stdout and --metrics-out files stay byte-identical to the
 * pre-fault-tolerance behaviour for every --jobs value.
 *
 * Per-job wall time is recorded on every slot and aggregated per
 * runAll() batch so callers can report observed speedup.
 */
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "util/cancellation.hh"
#include "util/logging.hh"
#include "util/retry.hh"
#include "util/status.hh"

namespace mlpsim {

/**
 * A fixed set of worker threads draining one FIFO queue.
 *
 * The pool is deliberately minimal: post() closures, waitIdle() for
 * the queue to drain. Ordering guarantees live one level up in
 * SweepRunner; the pool itself promises only that every posted closure
 * runs exactly once.
 */
class ThreadPool
{
  public:
    /** Spin up @p threads workers. @pre threads >= 1. */
    explicit ThreadPool(unsigned threads);

    /** Joins all workers after the queue drains. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue @p fn; it must not throw (wrap exceptions yourself). */
    void post(std::function<void()> fn);

    /** Block until the queue is empty and every worker is idle. */
    void waitIdle();

    unsigned threadCount() const { return unsigned(workers.size()); }

    /** std::thread::hardware_concurrency(), never less than 1. */
    static unsigned hardwareThreads();

  private:
    void workerLoop();

    std::vector<std::thread> workers;
    std::deque<std::function<void()>> queue;
    std::mutex mutex;
    std::condition_variable wake;     //!< work available / shutting down
    std::condition_variable idle;     //!< queue drained + workers idle
    unsigned busy = 0;                //!< workers currently running a job
    bool stopping = false;
};

/**
 * The executed extent of one job: when it started (relative to a
 * process-wide epoch), how long it ran, and on which worker. Spans are
 * recorded for every job of every runner into one process-wide log so
 * the metrics layer can export a Chrome trace_event timeline of a
 * whole binary's schedule (prepare batches and sweep batches alike).
 * Failed and cancelled jobs appear too — a stuck job is exactly what
 * the timeline exists to show.
 */
struct JobSpan
{
    std::string label;
    double startMillis = 0.0;  //!< since processEpoch()
    double durMillis = 0.0;
    unsigned worker = 0;       //!< 0 = the runner's calling thread
};

/**
 * Optional per-job instrumentation installed process-wide (see
 * SweepRunner::setJobHooks). `begin` runs on the executing thread
 * right before the job body and returns an opaque token; `end` runs on
 * the same thread right after the body; `commit` runs on the runAll()
 * caller once the batch finished, once per job in *submission order* —
 * the ordering the metrics layer relies on for deterministic merges.
 * begin/commit also receive the job's label, so hooks that report
 * progress (the mlpsimd event stream) can name the cell without a
 * side channel.
 *
 * Retried jobs get a fresh begin/end pair per attempt and only the
 * final attempt's token survives; failed jobs' tokens are dropped
 * without commit, so a half-executed attempt can never leak partial
 * metrics into the deterministic snapshot.
 */
struct JobHooks
{
    std::function<std::shared_ptr<void>(const std::string &label)> begin;
    std::function<void(const std::shared_ptr<void> &)> end;
    std::function<void(const std::shared_ptr<void> &,
                       const std::string &label)>
        commit;
};

/** One recorded job failure (see the file comment's failure model). */
struct JobFailure
{
    std::size_t index = 0;   //!< submission index within the batch
    std::string label;
    Status status;           //!< classified error (never OK)
    unsigned attempts = 1;   //!< attempts actually executed
    double wallMillis = 0.0; //!< execution time across all attempts

    /** The retry taxonomy bucket of `status`. */
    FailureClass failureClass() const
    {
        return ::mlpsim::failureClass(status.code());
    }
};

/** What runAll() does once failures have been recorded. */
enum class FailureMode : uint8_t {
    Propagate, //!< rethrow the first failure in submission order
    CollectAll //!< never throw; degrade failures into JobFailure records
};

/**
 * Per-job execution limits, applied to jobs deferred after
 * SweepRunner::setJobLimits(). The defaults (no deadline, one
 * attempt) are exactly the historical semantics.
 */
struct JobLimits
{
    /**
     * Cooperative deadline per *attempt*, in milliseconds. Negative =
     * none; 0 = already expired (the job fails at its first
     * cancellation poll — the cheap way to express "skip this cell").
     */
    double deadlineMillis = -1.0;

    /** Retry policy for transient failures (default: never retry). */
    RetryPolicy retry;
};

namespace detail {

/** Type-erased result slot shared by SweepRunner and Job<T>. */
struct JobSlot
{
    virtual ~JobSlot() = default;

    std::string label;                //!< for diagnostics/progress
    std::exception_ptr error;         //!< set if the final attempt threw
    Status failStatus;                //!< classified final failure
    JobLimits limits;                 //!< limits in force at defer()
    std::shared_ptr<void> hookToken;  //!< JobHooks begin() result
    double startMillis = 0.0;         //!< since processEpoch()
    double wallMillis = 0.0;          //!< execution time of this job
    unsigned worker = 0;              //!< executing worker (0 = caller)
    unsigned attempts = 1;            //!< attempts actually executed
    bool done = false;                //!< ran (successfully or not)
};

template <typename T>
struct TypedJobSlot final : JobSlot
{
    std::optional<T> value;
};

} // namespace detail

/**
 * Handle to one deferred job's future result. Valid to read after the
 * owning SweepRunner::runAll() returned. In the default Propagate
 * mode that implies the job succeeded (a failure would have
 * propagated out of runAll()); in CollectAll mode check succeeded()
 * before get().
 */
template <typename T>
class Job
{
  public:
    Job() = default;

    /** The job's result. @pre the owning runAll() has returned and
     *  the job succeeded. */
    const T &
    get() const
    {
        MLPSIM_ASSERT(slot && slot->done,
                      "Job::get() before SweepRunner::runAll()");
        MLPSIM_ASSERT(slot->value.has_value(),
                      "Job::get() on a failed job: ",
                      slot->failStatus.toString());
        return *slot->value;
    }

    /** Move the result out (for move-only result types). */
    T
    take()
    {
        MLPSIM_ASSERT(slot && slot->done,
                      "Job::take() before SweepRunner::runAll()");
        MLPSIM_ASSERT(slot->value.has_value(),
                      "Job::take() on a failed or already-taken job: ",
                      slot->failStatus.toString());
        T out = std::move(*slot->value);
        slot->value.reset();
        return out;
    }

    /** True once the job ran to completion without failing. */
    bool
    succeeded() const
    {
        return slot && slot->done && slot->failStatus.ok();
    }

    /** OK while/after a successful run; the final failure otherwise. */
    const Status &
    status() const
    {
        static const Status ok_status;
        return slot ? slot->failStatus : ok_status;
    }

    /** Attempts actually executed (1 unless retries happened). */
    unsigned attempts() const { return slot ? slot->attempts : 0; }

    /** Wall-clock execution time of this job, in milliseconds. */
    double millis() const { return slot ? slot->wallMillis : 0.0; }

    bool valid() const { return slot != nullptr; }

  private:
    friend class SweepRunner;
    explicit Job(std::shared_ptr<detail::TypedJobSlot<T>> s)
        : slot(std::move(s))
    {
    }

    std::shared_ptr<detail::TypedJobSlot<T>> slot;
};

/**
 * Deferred job grid with submission-ordered result collection.
 *
 * Usage:
 * @code
 *   SweepRunner runner(jobs);                    // 0 = hardware threads
 *   auto a = runner.defer<double>("cell a", [] { return runA(); });
 *   auto b = runner.defer<double>("cell b", [] { return runB(); });
 *   runner.runAll();                             // parallel execution
 *   use(a.get(), b.get());                       // submission order
 * @endcode
 *
 * runAll() may be called repeatedly; each call executes the jobs
 * deferred since the previous call (so dependent stages are expressed
 * as consecutive batches). Worker threads are created lazily on the
 * first parallel batch and reused across batches.
 */
class SweepRunner
{
  public:
    /** Aggregate statistics of the most recent runAll() batch. */
    struct BatchStats
    {
        std::size_t jobs = 0;
        std::size_t failed = 0;     //!< jobs whose final attempt failed
        std::size_t retries = 0;    //!< extra attempts across all jobs
        double wallMillis = 0.0;    //!< batch wall-clock time
        double busyMillis = 0.0;    //!< sum of per-job wall times
        double maxJobMillis = 0.0;  //!< slowest single job

        /**
         * busy/wall — the average number of jobs in flight. On an
         * otherwise-idle machine with enough cores this equals the
         * wall-clock speedup over --jobs 1; on an oversubscribed
         * machine it only measures concurrency (per-job wall times
         * are inflated by time slicing).
         */
        double concurrency() const;
    };

    /**
     * @param job_count Worker threads for parallel batches; 0 selects
     *        ThreadPool::hardwareThreads(); 1 executes every batch
     *        inline on the calling thread (exact serial semantics).
     */
    explicit SweepRunner(unsigned job_count = 0);
    ~SweepRunner();

    SweepRunner(const SweepRunner &) = delete;
    SweepRunner &operator=(const SweepRunner &) = delete;

    /** The effective parallelism (resolved, never 0). */
    unsigned jobs() const { return jobCount; }

    /** Record @p fn for the next runAll(); returns its result handle. */
    template <typename T>
    Job<T>
    defer(std::string label, std::function<T()> fn)
    {
        auto slot = std::make_shared<detail::TypedJobSlot<T>>();
        slot->label = std::move(label);
        slot->limits = limits;
        enqueue(slot, [slot, fn = std::move(fn)] { slot->value = fn(); });
        return Job<T>(slot);
    }

    /** defer() for jobs whose only effect is via captured state. */
    void
    deferVoid(std::string label, std::function<void()> fn)
    {
        auto slot = std::make_shared<detail::TypedJobSlot<bool>>();
        slot->label = std::move(label);
        slot->limits = limits;
        enqueue(slot, [fn = std::move(fn)] { fn(); });
    }

    /**
     * Execute all jobs deferred since the last runAll(). Blocks until
     * every one of them finished, recording every failure (see
     * lastFailures()). In Propagate mode the first failure in
     * submission order is then rethrown; in CollectAll mode runAll()
     * returns normally and failed jobs are readable as JobFailure
     * records. Successful slots remain readable through their Job<T>
     * handles either way.
     */
    void runAll();

    /** Failure handling for subsequent runAll() calls. */
    void setFailureMode(FailureMode mode) { failMode = mode; }
    FailureMode failureMode() const { return failMode; }

    /** Limits applied to jobs deferred after this call. */
    void setJobLimits(JobLimits job_limits) { limits = job_limits; }
    const JobLimits &jobLimits() const { return limits; }

    /**
     * Cooperatively cancel this runner: jobs currently executing stop
     * at their next cancellation poll, and jobs not yet started fail
     * as Cancelled without running. Affects this and future batches.
     */
    void requestCancel(std::string reason = "sweep cancelled");

    /** Every failure of the most recent batch, in submission order. */
    const std::vector<JobFailure> &lastFailures() const
    {
        return failures;
    }

    /** Total jobs deferred over the runner's lifetime. */
    std::size_t totalDeferred() const { return deferredCount; }

    const BatchStats &lastBatch() const { return batch; }

    /**
     * Install process-wide per-job hooks (all runners, all batches).
     * Pass a default-constructed JobHooks to uninstall. Not intended
     * to change while a batch is in flight.
     */
    static void setJobHooks(JobHooks hooks);

    /**
     * All job spans recorded process-wide since the last drain, in
     * batch-completion order (submission order within a batch).
     * Draining clears the log.
     */
    static std::vector<JobSpan> drainSpans();

    /** The steady-clock origin JobSpan::startMillis is relative to. */
    static std::chrono::steady_clock::time_point processEpoch();

  private:
    struct Pending
    {
        std::shared_ptr<detail::JobSlot> slot;
        std::function<void()> body;  //!< fills the slot's value
    };

    void enqueue(std::shared_ptr<detail::JobSlot> slot,
                 std::function<void()> body);
    void execute(Pending &job);
    bool runAttempt(Pending &job, const std::shared_ptr<CancelToken> &tok,
                    Status *failure, std::exception_ptr *raw);

    // --- watchdog (deadline enforcement from outside the job) ---
    void watchToken(const std::shared_ptr<CancelToken> &token,
                    const std::string &label);
    void unwatchToken(const std::shared_ptr<CancelToken> &token);
    void watchdogLoop();

    unsigned jobCount;
    std::vector<Pending> pending;
    std::size_t deferredCount = 0;
    std::unique_ptr<ThreadPool> pool;  //!< lazily created, reused
    BatchStats batch;

    FailureMode failMode = FailureMode::Propagate;
    JobLimits limits;
    std::vector<JobFailure> failures;  //!< last batch, submission order
    std::shared_ptr<CancelToken> runnerToken =
        std::make_shared<CancelToken>();

    std::mutex watchMutex;
    std::condition_variable watchCv;
    std::vector<std::pair<std::shared_ptr<CancelToken>, std::string>>
        watched;
    std::thread watchdog;              //!< started on first deadline
    bool watchdogStop = false;
};

} // namespace mlpsim
