/**
 * @file
 * Fixed thread pool and deterministic job-grid execution.
 *
 * MLPsim's sweeps — (machine configuration x workload) grids over the
 * same annotated traces — are embarrassingly parallel: every job only
 * reads a const AnnotatedTrace and writes its own result object.
 * SweepRunner exploits that without giving up reproducibility:
 *
 *  - Jobs are *deferred*: defer() records a closure and returns a
 *    typed Job<T> handle; nothing executes until runAll().
 *  - runAll() executes all pending jobs on a fixed pool of worker
 *    threads (or inline on the calling thread when the runner was
 *    built with one job slot, which is bit-for-bit today's serial
 *    behaviour).
 *  - Results are collected in *submission order*: a Job<T> handle is a
 *    stable slot, so consumers read the grid back in exactly the order
 *    they built it no matter which worker finished first. Stdout
 *    formatting therefore stays deterministic.
 *  - Exceptions propagate deterministically too: a throwing job parks
 *    its std::exception_ptr in its slot, the batch still runs to
 *    completion, and runAll() rethrows the *first* failure in
 *    submission order (not completion order).
 *
 * Per-job wall time is recorded on every slot and aggregated per
 * runAll() batch so callers can report observed speedup.
 */
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "util/logging.hh"

namespace mlpsim {

/**
 * A fixed set of worker threads draining one FIFO queue.
 *
 * The pool is deliberately minimal: post() closures, waitIdle() for
 * the queue to drain. Ordering guarantees live one level up in
 * SweepRunner; the pool itself promises only that every posted closure
 * runs exactly once.
 */
class ThreadPool
{
  public:
    /** Spin up @p threads workers. @pre threads >= 1. */
    explicit ThreadPool(unsigned threads);

    /** Joins all workers after the queue drains. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue @p fn; it must not throw (wrap exceptions yourself). */
    void post(std::function<void()> fn);

    /** Block until the queue is empty and every worker is idle. */
    void waitIdle();

    unsigned threadCount() const { return unsigned(workers.size()); }

    /** std::thread::hardware_concurrency(), never less than 1. */
    static unsigned hardwareThreads();

  private:
    void workerLoop();

    std::vector<std::thread> workers;
    std::deque<std::function<void()>> queue;
    std::mutex mutex;
    std::condition_variable wake;     //!< work available / shutting down
    std::condition_variable idle;     //!< queue drained + workers idle
    unsigned busy = 0;                //!< workers currently running a job
    bool stopping = false;
};

/**
 * The executed extent of one job: when it started (relative to a
 * process-wide epoch), how long it ran, and on which worker. Spans are
 * recorded for every job of every runner into one process-wide log so
 * the metrics layer can export a Chrome trace_event timeline of a
 * whole binary's schedule (prepare batches and sweep batches alike).
 */
struct JobSpan
{
    std::string label;
    double startMillis = 0.0;  //!< since processEpoch()
    double durMillis = 0.0;
    unsigned worker = 0;       //!< 0 = the runner's calling thread
};

/**
 * Optional per-job instrumentation installed process-wide (see
 * SweepRunner::setJobHooks). `begin` runs on the executing thread
 * right before the job body and returns an opaque token; `end` runs on
 * the same thread right after the body; `commit` runs on the runAll()
 * caller once the batch finished, once per job in *submission order* —
 * the ordering the metrics layer relies on for deterministic merges.
 */
struct JobHooks
{
    std::function<std::shared_ptr<void>()> begin;
    std::function<void(const std::shared_ptr<void> &)> end;
    std::function<void(const std::shared_ptr<void> &)> commit;
};

namespace detail {

/** Type-erased result slot shared by SweepRunner and Job<T>. */
struct JobSlot
{
    virtual ~JobSlot() = default;

    std::string label;                //!< for diagnostics/progress
    std::exception_ptr error;         //!< set if the closure threw
    std::shared_ptr<void> hookToken;  //!< JobHooks begin() result
    double startMillis = 0.0;         //!< since processEpoch()
    double wallMillis = 0.0;          //!< execution time of this job
    unsigned worker = 0;              //!< executing worker (0 = caller)
    bool done = false;                //!< ran (successfully or not)
};

template <typename T>
struct TypedJobSlot final : JobSlot
{
    std::optional<T> value;
};

} // namespace detail

/**
 * Handle to one deferred job's future result. Valid to read after the
 * owning SweepRunner::runAll() returned (which implies the job ran and
 * did not throw — a throw would have propagated out of runAll()).
 */
template <typename T>
class Job
{
  public:
    Job() = default;

    /** The job's result. @pre the owning runAll() has returned. */
    const T &
    get() const
    {
        MLPSIM_ASSERT(slot && slot->done,
                      "Job::get() before SweepRunner::runAll()");
        MLPSIM_ASSERT(slot->value.has_value(),
                      "Job::get() on a failed job");
        return *slot->value;
    }

    /** Move the result out (for move-only result types). */
    T
    take()
    {
        MLPSIM_ASSERT(slot && slot->done,
                      "Job::take() before SweepRunner::runAll()");
        MLPSIM_ASSERT(slot->value.has_value(),
                      "Job::take() on a failed or already-taken job");
        T out = std::move(*slot->value);
        slot->value.reset();
        return out;
    }

    /** Wall-clock execution time of this job, in milliseconds. */
    double millis() const { return slot ? slot->wallMillis : 0.0; }

    bool valid() const { return slot != nullptr; }

  private:
    friend class SweepRunner;
    explicit Job(std::shared_ptr<detail::TypedJobSlot<T>> s)
        : slot(std::move(s))
    {
    }

    std::shared_ptr<detail::TypedJobSlot<T>> slot;
};

/**
 * Deferred job grid with submission-ordered result collection.
 *
 * Usage:
 * @code
 *   SweepRunner runner(jobs);                    // 0 = hardware threads
 *   auto a = runner.defer<double>("cell a", [] { return runA(); });
 *   auto b = runner.defer<double>("cell b", [] { return runB(); });
 *   runner.runAll();                             // parallel execution
 *   use(a.get(), b.get());                       // submission order
 * @endcode
 *
 * runAll() may be called repeatedly; each call executes the jobs
 * deferred since the previous call (so dependent stages are expressed
 * as consecutive batches). Worker threads are created lazily on the
 * first parallel batch and reused across batches.
 */
class SweepRunner
{
  public:
    /** Aggregate statistics of the most recent runAll() batch. */
    struct BatchStats
    {
        std::size_t jobs = 0;
        double wallMillis = 0.0;    //!< batch wall-clock time
        double busyMillis = 0.0;    //!< sum of per-job wall times
        double maxJobMillis = 0.0;  //!< slowest single job

        /**
         * busy/wall — the average number of jobs in flight. On an
         * otherwise-idle machine with enough cores this equals the
         * wall-clock speedup over --jobs 1; on an oversubscribed
         * machine it only measures concurrency (per-job wall times
         * are inflated by time slicing).
         */
        double concurrency() const;
    };

    /**
     * @param job_count Worker threads for parallel batches; 0 selects
     *        ThreadPool::hardwareThreads(); 1 executes every batch
     *        inline on the calling thread (exact serial semantics).
     */
    explicit SweepRunner(unsigned job_count = 0);
    ~SweepRunner();

    SweepRunner(const SweepRunner &) = delete;
    SweepRunner &operator=(const SweepRunner &) = delete;

    /** The effective parallelism (resolved, never 0). */
    unsigned jobs() const { return jobCount; }

    /** Record @p fn for the next runAll(); returns its result handle. */
    template <typename T>
    Job<T>
    defer(std::string label, std::function<T()> fn)
    {
        auto slot = std::make_shared<detail::TypedJobSlot<T>>();
        slot->label = std::move(label);
        enqueue(slot, [slot, fn = std::move(fn)] { slot->value = fn(); });
        return Job<T>(slot);
    }

    /** defer() for jobs whose only effect is via captured state. */
    void
    deferVoid(std::string label, std::function<void()> fn)
    {
        auto slot = std::make_shared<detail::TypedJobSlot<bool>>();
        slot->label = std::move(label);
        enqueue(slot, [fn = std::move(fn)] { fn(); });
    }

    /**
     * Execute all jobs deferred since the last runAll(). Blocks until
     * every one of them finished, then rethrows the first exception in
     * submission order (if any). Successful slots remain readable
     * through their Job<T> handles either way.
     */
    void runAll();

    /** Total jobs deferred over the runner's lifetime. */
    std::size_t totalDeferred() const { return deferredCount; }

    const BatchStats &lastBatch() const { return batch; }

    /**
     * Install process-wide per-job hooks (all runners, all batches).
     * Pass a default-constructed JobHooks to uninstall. Not intended
     * to change while a batch is in flight.
     */
    static void setJobHooks(JobHooks hooks);

    /**
     * All job spans recorded process-wide since the last drain, in
     * batch-completion order (submission order within a batch).
     * Draining clears the log.
     */
    static std::vector<JobSpan> drainSpans();

    /** The steady-clock origin JobSpan::startMillis is relative to. */
    static std::chrono::steady_clock::time_point processEpoch();

  private:
    struct Pending
    {
        std::shared_ptr<detail::JobSlot> slot;
        std::function<void()> body;  //!< fills the slot's value
    };

    void enqueue(std::shared_ptr<detail::JobSlot> slot,
                 std::function<void()> body);
    static void execute(Pending &job);

    unsigned jobCount;
    std::vector<Pending> pending;
    std::size_t deferredCount = 0;
    std::unique_ptr<ThreadPool> pool;  //!< lazily created, reused
    BatchStats batch;
};

} // namespace mlpsim
