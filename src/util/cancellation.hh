/**
 * @file
 * Cooperative cancellation and per-job deadlines for long-running
 * simulation jobs.
 *
 * A sweep over thousands of (workload, config) cells cannot afford one
 * stuck job: the whole batch would hang behind it. Hard-killing a
 * thread is not an option in C++ (leaked locks, torn state), so
 * cancellation here is *cooperative*: the code that owns a job
 * (SweepRunner, a future mlpsimd front end) flags a CancelToken, and
 * the simulation kernels — epoch engine, cyclesim, trace generation —
 * poll that flag at their natural epoch/chunk boundaries and unwind
 * with a CancelledError when it is set.
 *
 * Threading the token through every engine signature would churn the
 * whole API for a concern most callers never use, so the active token
 * rides on the executing thread instead (the metrics layer's
 * CollectorScope idiom): SweepRunner installs the job's token with a
 * CancelScope around the job body, and kernels poll through the free
 * functions below. When no token is installed — every non-sweep caller
 * — pollCancellation() is a single thread-local pointer test, so the
 * default path stays byte-identical *and* cycle-comparable.
 *
 * Deadlines are part of the token: setDeadlineAfterMillis() arms a
 * steady-clock expiry that both the polling job itself and the
 * SweepRunner watchdog thread check. A zero deadline is defined as
 * already expired (the job fails at its first poll, before doing real
 * work); a negative deadline means "none".
 *
 * Tokens form an optional parent chain (job token -> runner batch
 * token) so cancelling a whole batch is one flag write, visible
 * through every job's own token.
 */
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "util/status.hh"

namespace mlpsim {

/** Why a token stopped; also the Status code the failure maps to. */
enum class CancelKind : uint8_t { None = 0, Cancelled, DeadlineExceeded };

/**
 * Shared stop-signal between a job's owner and the code running it.
 * All members are safe to call concurrently; the fast path
 * (stopRequested() with no deadline armed) is one relaxed atomic load
 * per chain link.
 */
class CancelToken
{
  public:
    CancelToken() = default;

    /** A token that also stops whenever @p parent stops. */
    explicit CancelToken(std::shared_ptr<const CancelToken> parent)
        : chain(std::move(parent))
    {
    }

    /** Request cooperative cancellation (idempotent, thread-safe). */
    void cancel(std::string why = "cancel requested");

    /**
     * Arm a deadline @p millis from now. millis == 0 is already
     * expired; millis < 0 disarms. May be re-armed between attempts.
     */
    void setDeadlineAfterMillis(double millis);

    bool hasDeadline() const
    {
        return deadlineNs.load(std::memory_order_relaxed) != kNoDeadline;
    }

    /**
     * True once the job should stop: cancelled, past its deadline, or
     * a parent token says so. Reads the clock only when a deadline is
     * armed and the stop flag is not already set.
     */
    bool
    stopRequested() const
    {
        if (kind.load(std::memory_order_acquire) != CancelKind::None)
            return true;
        const int64_t dl = deadlineNs.load(std::memory_order_relaxed);
        if (dl != kNoDeadline && nowNs() >= dl) {
            // Latch the expiry so the reason is recorded exactly once
            // and later polls skip the clock.
            const_cast<CancelToken *>(this)->expireNow();
            return true;
        }
        return chain && chain->stopRequested();
    }

    /**
     * Watchdog entry point: latch DeadlineExceeded if the armed
     * deadline has passed. Returns true if this call did the latching
     * (so the watchdog can log each overdue job exactly once).
     */
    bool expireIfPastDeadline();

    /** OK while running; Cancelled/DeadlineExceeded once stopped. */
    Status status() const;

    /** The stop reason, walking the parent chain. */
    CancelKind stopKind() const;

  private:
    static constexpr int64_t kNoDeadline = INT64_MAX;

    static int64_t nowNs();
    void expireNow();
    void stop(CancelKind k, std::string why);

    std::atomic<CancelKind> kind{CancelKind::None};
    std::atomic<int64_t> deadlineNs{kNoDeadline}; //!< steady-clock ns
    std::shared_ptr<const CancelToken> chain;     //!< optional parent

    mutable std::mutex reasonMutex;
    std::string reason;
};

/**
 * The exception a cancelled job unwinds with. Deliberately *not* a
 * Status return: cancellation must cross the existing
 * fatal()-on-error convenience wrappers (runMlp etc.) without being
 * turned into process death, and an exception is the only channel
 * that threads through them untouched. SweepRunner catches it and
 * records the carried Status in the job's failure record.
 */
class CancelledError : public std::exception
{
  public:
    explicit CancelledError(Status status)
        : st(std::move(status)), text(st.toString())
    {
    }

    const Status &status() const { return st; }
    const char *what() const noexcept override { return text.c_str(); }

  private:
    Status st;
    std::string text;
};

namespace detail {
/** The executing thread's active token; null outside CancelScope. */
extern thread_local const CancelToken *t_activeCancelToken;
} // namespace detail

/** Install @p token as the calling thread's active token (RAII). */
class CancelScope
{
  public:
    explicit CancelScope(const CancelToken *token)
        : prev(detail::t_activeCancelToken)
    {
        detail::t_activeCancelToken = token;
    }

    ~CancelScope() { detail::t_activeCancelToken = prev; }

    CancelScope(const CancelScope &) = delete;
    CancelScope &operator=(const CancelScope &) = delete;

  private:
    const CancelToken *prev;
};

/** The thread's active token (null when none installed). */
inline const CancelToken *
activeCancelToken()
{
    return detail::t_activeCancelToken;
}

/** Cheap boundary check; false (one pointer test) outside any scope. */
inline bool
cancellationRequested()
{
    const CancelToken *token = detail::t_activeCancelToken;
    return token && token->stopRequested();
}

/**
 * The poll simulation kernels place at epoch/chunk boundaries: throws
 * CancelledError carrying the token's Cancelled/DeadlineExceeded
 * status when a stop was requested; no-op otherwise.
 */
void pollCancellation();

} // namespace mlpsim
