/**
 * @file
 * Sequence-number containers shared by the event-driven simulators.
 *
 * Both the epoch engine (DESIGN.md section 12) and the cycle-accurate
 * reference pipeline (section 14) track in-flight instructions by a
 * 32-bit sequence number (trace index + 1, 0 = null) and need the same
 * two hot-path structures: an in-order FIFO of seqs for the Table 2
 * issue constraints (config-A memory ops, in-order branches) and a
 * map from store line key to the newest in-flight store writing it.
 * They were born inside EpochEngine during the PR 4 overhaul and are
 * hoisted here so CycleSim's scheduler can use the identical,
 * already-golden-tested code instead of a copy.
 */
#pragma once

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace mlpsim::util {

/** Sequence number: trace index + 1; 0 is the null link. */
using Seq = uint32_t;

/**
 * In-order queue of sequence numbers (config-A memory ops, in-order
 * branches). A power-of-two ring over a vector; push grows by
 * doubling, so a reset() capacity is a hint, not a limit.
 */
class SeqFifo
{
  public:
    void
    reset(size_t min_capacity)
    {
        buf.assign(std::bit_ceil(std::max<size_t>(min_capacity, 16)), 0);
        head = tail = 0;
    }

    bool empty() const { return head == tail; }
    Seq front() const { return buf[head & (buf.size() - 1)]; }
    void pop() { ++head; }

    void
    push(Seq s)
    {
        if (tail - head == buf.size()) {
            std::vector<Seq> next(buf.size() * 2);
            for (uint32_t i = head; i != tail; ++i)
                next[i & (next.size() - 1)] = buf[i & (buf.size() - 1)];
            buf.swap(next);
        }
        buf[tail & (buf.size() - 1)] = s;
        ++tail;
    }

  private:
    std::vector<Seq> buf;
    uint32_t head = 0;
    uint32_t tail = 0;
};

/**
 * Open-addressing map from store line key to the seq of the newest
 * in-flight store to that line (replaces std::unordered_map on the
 * dispatch/retire hot path). Linear probing with backward-shift
 * deletion; clear() is O(1) by bumping the generation stamp, so a
 * stale slot reads as empty without touching memory.
 */
class StoreMap
{
  public:
    void
    reset(size_t min_capacity)
    {
        const size_t cap = std::bit_ceil(std::max<size_t>(min_capacity, 64));
        slots.assign(cap, Slot{});
        mask = cap - 1;
        live = 0;
        gen = 1;
    }

    void clear() { ++gen; live = 0; }

    /** Seq of the newest in-flight store to @p key (0 if none). */
    Seq
    find(uint64_t key) const
    {
        for (size_t i = probe(key); occupied(slots[i]);
             i = (i + 1) & mask) {
            if (slots[i].key == key)
                return slots[i].seq;
        }
        return 0;
    }

    /** Insert, or overwrite the previous store to the same key. */
    void
    put(uint64_t key, Seq seq)
    {
        // Keep the load factor under 1/2 so probe chains stay short and
        // the scans below always hit an empty slot.
        if ((live + 1) * 2 > slots.size())
            grow();
        size_t i = probe(key);
        while (occupied(slots[i])) {
            if (slots[i].key == key) {
                slots[i].seq = seq;
                return;
            }
            i = (i + 1) & mask;
        }
        slots[i] = Slot{key, seq, gen};
        ++live;
    }

    /** Erase @p key only if it still maps to @p seq. */
    void
    eraseMatching(uint64_t key, Seq seq)
    {
        size_t i = probe(key);
        while (occupied(slots[i])) {
            if (slots[i].key == key) {
                if (slots[i].seq != seq)
                    return;
                // Backward-shift deletion: pull every displaced entry
                // of the probe chain one hole closer to its home slot,
                // so a later find() never stops early at the hole.
                size_t hole = i;
                size_t j = i;
                while (true) {
                    j = (j + 1) & mask;
                    if (!occupied(slots[j]))
                        break;
                    const size_t home = probe(slots[j].key);
                    if (((j - home) & mask) >= ((j - hole) & mask)) {
                        slots[hole] = slots[j];
                        hole = j;
                    }
                }
                slots[hole] = Slot{};
                --live;
                return;
            }
            i = (i + 1) & mask;
        }
    }

  private:
    struct Slot
    {
        uint64_t key = 0;
        Seq seq = 0;   //!< 0 = empty
        uint32_t gen = 0;
    };

    bool occupied(const Slot &s) const
    {
        return s.seq != 0 && s.gen == gen;
    }

    size_t probe(uint64_t key) const
    {
        // Multiply-shift (Fibonacci) hash; low bits after the mix.
        return size_t(key * 0x9E3779B97F4A7C15ull >> 32) & mask;
    }

    void
    grow()
    {
        std::vector<Slot> old;
        old.swap(slots);
        const uint32_t old_gen = gen;
        slots.assign(std::max<size_t>(old.size() * 2, 64), Slot{});
        mask = slots.size() - 1;
        live = 0;
        gen = 1;
        for (const Slot &s : old) {
            if (s.seq != 0 && s.gen == old_gen)
                put(s.key, s.seq);
        }
    }

    std::vector<Slot> slots;
    size_t mask = 0;
    size_t live = 0;
    uint32_t gen = 1;
};

} // namespace mlpsim::util
