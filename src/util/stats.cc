#include "stats.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace mlpsim {

void
RunningStat::add(double x)
{
    ++n;
    total += x;
    if (n == 1) {
        lo = hi = x;
    } else {
        lo = std::min(lo, x);
        hi = std::max(hi, x);
    }
    const double delta = x - mu;
    mu += delta / double(n);
    m2 += delta * (x - mu);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

void
RunningStat::merge(const RunningStat &other)
{
    if (other.n == 0)
        return;
    if (n == 0) {
        *this = other;
        return;
    }
    const double combined_n = double(n) + double(other.n);
    const double delta = other.mu - mu;
    m2 += other.m2 +
          delta * delta * double(n) * double(other.n) / combined_n;
    mu += delta * double(other.n) / combined_n;
    lo = std::min(lo, other.lo);
    hi = std::max(hi, other.hi);
    total += other.total;
    n += other.n;
}

void
Histogram::add(uint64_t key, uint64_t weight)
{
    counts[key] += weight;
    n += weight;
    weighted_sum += double(key) * double(weight);
}

double
Histogram::mean() const
{
    return n ? weighted_sum / double(n) : 0.0;
}

double
Histogram::cdfAt(uint64_t key) const
{
    if (!n)
        return 0.0;
    uint64_t below_or_equal = 0;
    for (const auto &[k, c] : counts) {
        if (k > key)
            break;
        below_or_equal += c;
    }
    return double(below_or_equal) / double(n);
}

void
Histogram::merge(const Histogram &other)
{
    for (const auto &[key, count] : other.counts)
        counts[key] += count;
    n += other.n;
    weighted_sum += other.weighted_sum;
}

uint64_t
Histogram::minKey() const
{
    MLPSIM_ASSERT(n, "minKey() on an empty histogram");
    return counts.begin()->first;
}

uint64_t
Histogram::maxKey() const
{
    MLPSIM_ASSERT(n, "maxKey() on an empty histogram");
    return counts.rbegin()->first;
}

uint64_t
Histogram::quantile(double q) const
{
    MLPSIM_ASSERT(q >= 0.0 && q <= 1.0,
                  "quantile fraction outside [0, 1]: ", q);
    if (!n)
        return 0;
    if (q == 0.0)
        return minKey();
    // ceil(q * n) never exceeds n for q <= 1, but guard the product
    // against floating-point round-up anyway.
    const auto target = std::min(
        uint64_t(n), static_cast<uint64_t>(std::ceil(q * double(n))));
    uint64_t running = 0;
    for (const auto &[k, c] : counts) {
        running += c;
        if (running >= target)
            return k;
    }
    return maxKey();
}

void
Histogram::reset()
{
    counts.clear();
    n = 0;
    weighted_sum = 0.0;
}

double
uniformInterMissCdf(double mean_distance, double distance)
{
    if (mean_distance <= 0.0)
        return 1.0;
    return 1.0 - std::exp(-distance / mean_distance);
}

} // namespace mlpsim
