#include "stats.hh"

#include <algorithm>
#include <cmath>

namespace mlpsim {

void
RunningStat::add(double x)
{
    ++n;
    total += x;
    if (n == 1) {
        lo = hi = x;
    } else {
        lo = std::min(lo, x);
        hi = std::max(hi, x);
    }
    const double delta = x - mu;
    mu += delta / double(n);
    m2 += delta * (x - mu);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

void
Histogram::add(uint64_t key, uint64_t weight)
{
    counts[key] += weight;
    n += weight;
    weighted_sum += double(key) * double(weight);
}

double
Histogram::mean() const
{
    return n ? weighted_sum / double(n) : 0.0;
}

double
Histogram::cdfAt(uint64_t key) const
{
    if (!n)
        return 0.0;
    uint64_t below_or_equal = 0;
    for (const auto &[k, c] : counts) {
        if (k > key)
            break;
        below_or_equal += c;
    }
    return double(below_or_equal) / double(n);
}

uint64_t
Histogram::quantile(double q) const
{
    if (!n)
        return 0;
    const auto target = static_cast<uint64_t>(std::ceil(q * double(n)));
    uint64_t running = 0;
    for (const auto &[k, c] : counts) {
        running += c;
        if (running >= target)
            return k;
    }
    return counts.rbegin()->first;
}

void
Histogram::reset()
{
    counts.clear();
    n = 0;
    weighted_sum = 0.0;
}

double
uniformInterMissCdf(double mean_distance, double distance)
{
    if (mean_distance <= 0.0)
        return 1.0;
    return 1.0 - std::exp(-distance / mean_distance);
}

} // namespace mlpsim
