/**
 * @file
 * Plain-text table formatting for bench output. Every bench prints the
 * rows/series of the paper table or figure it regenerates; TextTable
 * keeps that output aligned and diff-friendly.
 */
#pragma once

#include <string>
#include <vector>

namespace mlpsim {

/** Column-aligned text table with a header row. */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> header);

    /** Append one row; it may have fewer cells than the header. */
    void addRow(std::vector<std::string> row);

    /** Convenience: format a double with @p precision decimals. */
    static std::string num(double v, int precision = 2);

    /** Render with single-space-padded, right-aligned numeric columns. */
    std::string render() const;

  private:
    std::vector<std::string> head;
    std::vector<std::vector<std::string>> rows;
};

} // namespace mlpsim
