#include "cancellation.hh"

namespace mlpsim {

namespace detail {
thread_local const CancelToken *t_activeCancelToken = nullptr;
} // namespace detail

int64_t
CancelToken::nowNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

void
CancelToken::stop(CancelKind k, std::string why)
{
    // First stop wins; later calls (watchdog racing the poller, a
    // cancel() after expiry) keep the original kind and reason. The
    // reason is written before the kind flag is released, so any
    // thread that observes the flag also observes the reason.
    std::lock_guard<std::mutex> lock(reasonMutex);
    if (kind.load(std::memory_order_relaxed) != CancelKind::None)
        return;
    reason = std::move(why);
    kind.store(k, std::memory_order_release);
}

void
CancelToken::cancel(std::string why)
{
    stop(CancelKind::Cancelled, std::move(why));
}

void
CancelToken::setDeadlineAfterMillis(double millis)
{
    if (millis < 0.0) {
        deadlineNs.store(kNoDeadline, std::memory_order_relaxed);
        return;
    }
    // millis == 0 arms a deadline that has already passed: the next
    // poll fails the job before it does any real work.
    const int64_t ns = nowNs() + int64_t(millis * 1e6);
    deadlineNs.store(ns, std::memory_order_relaxed);
}

void
CancelToken::expireNow()
{
    stop(CancelKind::DeadlineExceeded, "deadline exceeded");
}

bool
CancelToken::expireIfPastDeadline()
{
    if (kind.load(std::memory_order_acquire) != CancelKind::None)
        return false;
    const int64_t dl = deadlineNs.load(std::memory_order_relaxed);
    if (dl == kNoDeadline || nowNs() < dl)
        return false;
    std::lock_guard<std::mutex> lock(reasonMutex);
    if (kind.load(std::memory_order_relaxed) != CancelKind::None)
        return false;
    reason = "deadline exceeded";
    kind.store(CancelKind::DeadlineExceeded, std::memory_order_release);
    return true;
}

CancelKind
CancelToken::stopKind() const
{
    const CancelKind own = kind.load(std::memory_order_acquire);
    if (own != CancelKind::None)
        return own;
    return chain ? chain->stopKind() : CancelKind::None;
}

Status
CancelToken::status() const
{
    const CancelKind own = kind.load(std::memory_order_acquire);
    if (own == CancelKind::None)
        return chain ? chain->status() : Status::okStatus();
    std::string why;
    {
        std::lock_guard<std::mutex> lock(reasonMutex);
        why = reason;
    }
    if (own == CancelKind::DeadlineExceeded)
        return Status::deadlineExceeded(why);
    return Status::cancelled(why);
}

void
pollCancellation()
{
    const CancelToken *token = detail::t_activeCancelToken;
    if (!token || !token->stopRequested())
        return;
    Status st = token->status();
    if (st.ok()) {
        // stopRequested() raced a stop() that has set the kind but not
        // yet published the reason; report generically rather than
        // returning to the simulation loop.
        st = Status::cancelled("cancel requested");
    }
    throw CancelledError(std::move(st));
}

} // namespace mlpsim
