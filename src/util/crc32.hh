/**
 * @file
 * Streaming CRC-32 (IEEE 802.3, polynomial 0xEDB88320) used to
 * checksum trace-file payloads. Matches zlib's crc32() bit-for-bit so
 * external tools can produce compatible trace files with any standard
 * CRC library.
 */
#pragma once

#include <cstddef>
#include <cstdint>

namespace mlpsim {

/** Incremental CRC-32 accumulator. */
class Crc32
{
  public:
    /** Fold @p len bytes at @p data into the running checksum. */
    void update(const void *data, size_t len);

    /** Finalised checksum of everything update()d so far. */
    uint32_t value() const { return state ^ 0xFFFFFFFFu; }

    void reset() { state = 0xFFFFFFFFu; }

    /** One-shot helper. */
    static uint32_t
    compute(const void *data, size_t len)
    {
        Crc32 crc;
        crc.update(data, len);
        return crc.value();
    }

  private:
    uint32_t state = 0xFFFFFFFFu;
};

} // namespace mlpsim
