#include "parallel.hh"

#include <algorithm>

namespace mlpsim {

// ----- ThreadPool --------------------------------------------------

ThreadPool::ThreadPool(unsigned threads)
{
    MLPSIM_ASSERT(threads >= 1, "ThreadPool needs at least one thread");
    workers.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        stopping = true;
    }
    wake.notify_all();
    for (auto &worker : workers)
        worker.join();
}

void
ThreadPool::post(std::function<void()> fn)
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        queue.push_back(std::move(fn));
    }
    wake.notify_one();
}

void
ThreadPool::waitIdle()
{
    std::unique_lock<std::mutex> lock(mutex);
    idle.wait(lock, [this] { return queue.empty() && busy == 0; });
}

namespace {

/**
 * Process-wide job-hook and span state. One mutex guards both; jobs
 * touch it twice each (hook copy at start, span append at end), which
 * is noise next to a job body that simulates millions of instructions.
 */
std::mutex g_jobStateMutex;
JobHooks g_jobHooks;
std::vector<JobSpan> g_jobSpans;

/** 1-based id per pool worker thread; 0 on every other thread. */
thread_local unsigned t_workerId = 0;
std::atomic<unsigned> g_nextWorkerId{0};

JobHooks
currentJobHooks()
{
    std::lock_guard<std::mutex> lock(g_jobStateMutex);
    return g_jobHooks;
}

} // namespace

void
ThreadPool::workerLoop()
{
    if (t_workerId == 0)
        t_workerId = 1 + g_nextWorkerId.fetch_add(1);
    std::unique_lock<std::mutex> lock(mutex);
    for (;;) {
        wake.wait(lock, [this] { return stopping || !queue.empty(); });
        if (queue.empty()) {
            // stopping && drained: workers exit only once no work is
            // left, so ~ThreadPool never abandons a posted job.
            return;
        }
        std::function<void()> fn = std::move(queue.front());
        queue.pop_front();
        ++busy;
        lock.unlock();
        fn();
        lock.lock();
        --busy;
        if (queue.empty() && busy == 0)
            idle.notify_all();
    }
}

unsigned
ThreadPool::hardwareThreads()
{
    return std::max(1u, std::thread::hardware_concurrency());
}

// ----- SweepRunner -------------------------------------------------

double
SweepRunner::BatchStats::concurrency() const
{
    return wallMillis > 0.0 ? busyMillis / wallMillis : 1.0;
}

SweepRunner::SweepRunner(unsigned job_count)
    : jobCount(job_count == 0 ? ThreadPool::hardwareThreads() : job_count)
{
    // Pin the span origin no later than the first runner, so no job
    // can start before it and spans never go negative.
    processEpoch();
}

SweepRunner::~SweepRunner()
{
    if (watchdog.joinable()) {
        {
            std::lock_guard<std::mutex> lock(watchMutex);
            watchdogStop = true;
        }
        watchCv.notify_all();
        watchdog.join();
    }
}

void
SweepRunner::requestCancel(std::string reason)
{
    runnerToken->cancel(std::move(reason));
}

void
SweepRunner::enqueue(std::shared_ptr<detail::JobSlot> slot,
                     std::function<void()> body)
{
    ++deferredCount;
    pending.push_back(Pending{std::move(slot), std::move(body)});
}

// ----- watchdog ----------------------------------------------------

void
SweepRunner::watchToken(const std::shared_ptr<CancelToken> &token,
                        const std::string &label)
{
    std::lock_guard<std::mutex> lock(watchMutex);
    watched.emplace_back(token, label);
    if (!watchdog.joinable())
        watchdog = std::thread([this] { watchdogLoop(); });
    watchCv.notify_all();
}

void
SweepRunner::unwatchToken(const std::shared_ptr<CancelToken> &token)
{
    std::lock_guard<std::mutex> lock(watchMutex);
    for (auto it = watched.begin(); it != watched.end(); ++it) {
        if (it->first == token) {
            watched.erase(it);
            return;
        }
    }
}

void
SweepRunner::watchdogLoop()
{
    // The watchdog cannot preempt a job — cancellation is cooperative
    // — but it guarantees an overdue job is *flagged* even while stuck
    // between polls, records the fact on stderr exactly once, and
    // makes the deadline fire promptly for jobs that poll rarely
    // relative to their deadline.
    std::unique_lock<std::mutex> lock(watchMutex);
    for (;;) {
        if (watched.empty()) {
            watchCv.wait(lock, [this] {
                return watchdogStop || !watched.empty();
            });
        } else {
            watchCv.wait_for(lock, std::chrono::milliseconds(2));
        }
        if (watchdogStop)
            return;
        for (const auto &[token, label] : watched) {
            if (token->expireIfPastDeadline()) {
                warn("sweep watchdog: job '", label,
                     "' exceeded its deadline; flagged for ",
                     "cooperative cancellation");
            }
        }
    }
}

// ----- job execution -----------------------------------------------

/**
 * Run one attempt of @p job under @p tok. Returns true on success;
 * otherwise fills @p failure with the classified Status and @p raw
 * with the exception for Propagate-mode rethrow fidelity.
 */
bool
SweepRunner::runAttempt(Pending &job,
                        const std::shared_ptr<CancelToken> &tok,
                        Status *failure, std::exception_ptr *raw)
{
    CancelScope scope(tok.get());
    try {
        // Cancel-before-start: a cancelled runner (or a zero
        // deadline) fails the job without running a single
        // instruction of its body.
        pollCancellation();
        job.body();
        return true;
    } catch (const CancelledError &e) {
        *failure = e.status();
        *raw = std::current_exception();
    } catch (const StatusError &e) {
        *failure = e.status();
        *raw = std::current_exception();
    } catch (const std::exception &e) {
        *failure = Status::internal(e.what());
        *raw = std::current_exception();
    } catch (...) {
        *failure = Status::internal("job threw a non-exception value");
        *raw = std::current_exception();
    }
    return false;
}

void
SweepRunner::execute(Pending &job)
{
    const JobHooks hooks = currentJobHooks();
    const JobLimits &lim = job.slot->limits;

    const auto first_start = std::chrono::steady_clock::now();
    double total_millis = 0.0;
    unsigned attempt = 1;

    for (;; ++attempt) {
        // Fresh token per attempt: a blown deadline on attempt N must
        // not instantly kill attempt N+1. The runner token is the
        // parent, so requestCancel() reaches every attempt.
        auto token = std::make_shared<CancelToken>(runnerToken);
        const bool deadline = lim.deadlineMillis >= 0.0;
        if (deadline) {
            token->setDeadlineAfterMillis(lim.deadlineMillis);
            watchToken(token, job.slot->label);
        }

        // Per-attempt hook pair; a failed attempt's token is dropped
        // below so partial metrics never reach the snapshot merge.
        if (hooks.begin)
            job.slot->hookToken = hooks.begin(job.slot->label);

        Status failure;
        std::exception_ptr raw;
        const auto start = std::chrono::steady_clock::now();
        const bool ok = runAttempt(job, token, &failure, &raw);
        const auto end = std::chrono::steady_clock::now();

        if (hooks.end)
            hooks.end(job.slot->hookToken);
        if (deadline)
            unwatchToken(token);

        total_millis +=
            std::chrono::duration<double, std::milli>(end - start).count();

        if (ok) {
            job.slot->failStatus = Status::okStatus();
            job.slot->error = nullptr;
            break;
        }

        job.slot->hookToken.reset();
        if (lim.retry.shouldRetry(failure, attempt) &&
            !runnerToken->stopRequested()) {
            const double backoff =
                lim.retry.backoffMillis(job.slot->label, attempt + 1);
            if (backoff > 0.0) {
                std::this_thread::sleep_for(
                    std::chrono::duration<double, std::milli>(backoff));
            }
            continue;
        }

        job.slot->failStatus = std::move(failure);
        job.slot->error = raw;
        break;
    }

    job.slot->attempts = attempt;
    job.slot->startMillis =
        std::chrono::duration<double, std::milli>(first_start -
                                                  processEpoch())
            .count();
    job.slot->wallMillis = total_millis;
    job.slot->worker = t_workerId;
    job.slot->done = true;
}

void
SweepRunner::runAll()
{
    std::vector<Pending> jobs;
    jobs.swap(pending);

    const auto start = std::chrono::steady_clock::now();
    if (jobCount == 1 || jobs.size() <= 1) {
        // Inline execution: exactly the pre-parallel serial behaviour
        // (same thread, same order), so --jobs 1 is a true baseline.
        for (auto &job : jobs)
            execute(job);
    } else {
        if (!pool)
            pool = std::make_unique<ThreadPool>(jobCount);
        for (auto &job : jobs)
            pool->post([this, &job] { execute(job); });
        pool->waitIdle();
    }
    const auto end = std::chrono::steady_clock::now();

    batch = BatchStats{};
    batch.jobs = jobs.size();
    batch.wallMillis =
        std::chrono::duration<double, std::milli>(end - start).count();
    failures.clear();
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const auto &slot = *jobs[i].slot;
        batch.busyMillis += slot.wallMillis;
        batch.maxJobMillis = std::max(batch.maxJobMillis, slot.wallMillis);
        batch.retries += slot.attempts - 1;
        if (!slot.failStatus.ok()) {
            ++batch.failed;
            failures.push_back(JobFailure{i, slot.label, slot.failStatus,
                                          slot.attempts,
                                          slot.wallMillis});
        }
    }

    {
        std::lock_guard<std::mutex> lock(g_jobStateMutex);
        for (const auto &job : jobs) {
            g_jobSpans.push_back(JobSpan{job.slot->label,
                                         job.slot->startMillis,
                                         job.slot->wallMillis,
                                         job.slot->worker});
        }
    }

    // Commit per-job hook tokens in submission order — the ordering
    // the metrics layer's deterministic-merge contract depends on —
    // and drop the tokens so job-private state is released with the
    // batch, not with the Job<T> handles. Failed jobs have no token
    // left (dropped in execute()), so only complete, successful
    // attempts are merged.
    const JobHooks hooks = currentJobHooks();
    for (const auto &job : jobs) {
        if (hooks.commit && job.slot->hookToken)
            hooks.commit(job.slot->hookToken, job.slot->label);
        job.slot->hookToken.reset();
    }

    if (failures.empty())
        return;

    if (failMode == FailureMode::CollectAll) {
        // Graceful degradation: the sweep outlives its failed cells.
        // The record is on lastFailures(); callers surface it via the
        // sweep report. One summary line so a quiet terminal still
        // shows that something went wrong.
        warn("sweep: ", failures.size(), " of ", jobs.size(),
             " jobs failed (collect-all mode); first: '",
             failures.front().label, "': ",
             failures.front().status.toString());
        return;
    }

    // Deterministic failure propagation: completion order varies run
    // to run, submission order does not, so the *first-submitted*
    // failure is the one a Propagate-mode sweep dies with. Report the
    // full count first — the other failures must not vanish into the
    // single rethrown exception.
    if (failures.size() > 1) {
        warn("sweep: ", failures.size(), " of ", jobs.size(),
             " jobs failed; propagating the first in submission order "
             "('", failures.front().label, "')");
    }
    for (const auto &job : jobs) {
        if (job.slot->error)
            std::rethrow_exception(job.slot->error);
        if (!job.slot->failStatus.ok())
            throw StatusError(job.slot->failStatus);
    }
}

void
SweepRunner::setJobHooks(JobHooks hooks)
{
    std::lock_guard<std::mutex> lock(g_jobStateMutex);
    g_jobHooks = std::move(hooks);
}

std::vector<JobSpan>
SweepRunner::drainSpans()
{
    std::lock_guard<std::mutex> lock(g_jobStateMutex);
    std::vector<JobSpan> out;
    out.swap(g_jobSpans);
    return out;
}

std::chrono::steady_clock::time_point
SweepRunner::processEpoch()
{
    // First use pins the origin; static-local init is thread-safe.
    static const auto epoch = std::chrono::steady_clock::now();
    return epoch;
}

} // namespace mlpsim
