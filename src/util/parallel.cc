#include "parallel.hh"

#include <algorithm>

namespace mlpsim {

// ----- ThreadPool --------------------------------------------------

ThreadPool::ThreadPool(unsigned threads)
{
    MLPSIM_ASSERT(threads >= 1, "ThreadPool needs at least one thread");
    workers.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        stopping = true;
    }
    wake.notify_all();
    for (auto &worker : workers)
        worker.join();
}

void
ThreadPool::post(std::function<void()> fn)
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        queue.push_back(std::move(fn));
    }
    wake.notify_one();
}

void
ThreadPool::waitIdle()
{
    std::unique_lock<std::mutex> lock(mutex);
    idle.wait(lock, [this] { return queue.empty() && busy == 0; });
}

namespace {

/**
 * Process-wide job-hook and span state. One mutex guards both; jobs
 * touch it twice each (hook copy at start, span append at end), which
 * is noise next to a job body that simulates millions of instructions.
 */
std::mutex g_jobStateMutex;
JobHooks g_jobHooks;
std::vector<JobSpan> g_jobSpans;

/** 1-based id per pool worker thread; 0 on every other thread. */
thread_local unsigned t_workerId = 0;
std::atomic<unsigned> g_nextWorkerId{0};

JobHooks
currentJobHooks()
{
    std::lock_guard<std::mutex> lock(g_jobStateMutex);
    return g_jobHooks;
}

} // namespace

void
ThreadPool::workerLoop()
{
    if (t_workerId == 0)
        t_workerId = 1 + g_nextWorkerId.fetch_add(1);
    std::unique_lock<std::mutex> lock(mutex);
    for (;;) {
        wake.wait(lock, [this] { return stopping || !queue.empty(); });
        if (queue.empty()) {
            // stopping && drained: workers exit only once no work is
            // left, so ~ThreadPool never abandons a posted job.
            return;
        }
        std::function<void()> fn = std::move(queue.front());
        queue.pop_front();
        ++busy;
        lock.unlock();
        fn();
        lock.lock();
        --busy;
        if (queue.empty() && busy == 0)
            idle.notify_all();
    }
}

unsigned
ThreadPool::hardwareThreads()
{
    return std::max(1u, std::thread::hardware_concurrency());
}

// ----- SweepRunner -------------------------------------------------

double
SweepRunner::BatchStats::concurrency() const
{
    return wallMillis > 0.0 ? busyMillis / wallMillis : 1.0;
}

SweepRunner::SweepRunner(unsigned job_count)
    : jobCount(job_count == 0 ? ThreadPool::hardwareThreads() : job_count)
{
    // Pin the span origin no later than the first runner, so no job
    // can start before it and spans never go negative.
    processEpoch();
}

SweepRunner::~SweepRunner() = default;

void
SweepRunner::enqueue(std::shared_ptr<detail::JobSlot> slot,
                     std::function<void()> body)
{
    ++deferredCount;
    pending.push_back(Pending{std::move(slot), std::move(body)});
}

void
SweepRunner::execute(Pending &job)
{
    const JobHooks hooks = currentJobHooks();
    if (hooks.begin)
        job.slot->hookToken = hooks.begin();
    const auto start = std::chrono::steady_clock::now();
    try {
        job.body();
    } catch (...) {
        job.slot->error = std::current_exception();
    }
    const auto end = std::chrono::steady_clock::now();
    if (hooks.end)
        hooks.end(job.slot->hookToken);
    job.slot->startMillis =
        std::chrono::duration<double, std::milli>(start - processEpoch())
            .count();
    job.slot->wallMillis =
        std::chrono::duration<double, std::milli>(end - start).count();
    job.slot->worker = t_workerId;
    job.slot->done = true;
}

void
SweepRunner::runAll()
{
    std::vector<Pending> jobs;
    jobs.swap(pending);

    const auto start = std::chrono::steady_clock::now();
    if (jobCount == 1 || jobs.size() <= 1) {
        // Inline execution: exactly the pre-parallel serial behaviour
        // (same thread, same order), so --jobs 1 is a true baseline.
        for (auto &job : jobs)
            execute(job);
    } else {
        if (!pool)
            pool = std::make_unique<ThreadPool>(jobCount);
        for (auto &job : jobs)
            pool->post([&job] { execute(job); });
        pool->waitIdle();
    }
    const auto end = std::chrono::steady_clock::now();

    batch = BatchStats{};
    batch.jobs = jobs.size();
    batch.wallMillis =
        std::chrono::duration<double, std::milli>(end - start).count();
    for (const auto &job : jobs) {
        batch.busyMillis += job.slot->wallMillis;
        batch.maxJobMillis =
            std::max(batch.maxJobMillis, job.slot->wallMillis);
    }

    {
        std::lock_guard<std::mutex> lock(g_jobStateMutex);
        for (const auto &job : jobs) {
            g_jobSpans.push_back(JobSpan{job.slot->label,
                                         job.slot->startMillis,
                                         job.slot->wallMillis,
                                         job.slot->worker});
        }
    }

    // Commit per-job hook tokens in submission order — the ordering
    // the metrics layer's deterministic-merge contract depends on —
    // and drop the tokens so job-private state is released with the
    // batch, not with the Job<T> handles.
    const JobHooks hooks = currentJobHooks();
    for (const auto &job : jobs) {
        if (hooks.commit && job.slot->hookToken)
            hooks.commit(job.slot->hookToken);
        job.slot->hookToken.reset();
    }

    // Deterministic failure propagation: completion order varies run
    // to run, submission order does not.
    for (const auto &job : jobs) {
        if (job.slot->error)
            std::rethrow_exception(job.slot->error);
    }
}

void
SweepRunner::setJobHooks(JobHooks hooks)
{
    std::lock_guard<std::mutex> lock(g_jobStateMutex);
    g_jobHooks = std::move(hooks);
}

std::vector<JobSpan>
SweepRunner::drainSpans()
{
    std::lock_guard<std::mutex> lock(g_jobStateMutex);
    std::vector<JobSpan> out;
    out.swap(g_jobSpans);
    return out;
}

std::chrono::steady_clock::time_point
SweepRunner::processEpoch()
{
    // First use pins the origin; static-local init is thread-safe.
    static const auto epoch = std::chrono::steady_clock::now();
    return epoch;
}

} // namespace mlpsim
