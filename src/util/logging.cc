#include "logging.hh"

#include <atomic>
#include <mutex>

namespace mlpsim {
namespace detail {

namespace {

/**
 * Single process-wide sink lock. Every log line (warn/inform/fatal/
 * panic) is written under it so lines from concurrent sweep workers
 * never interleave mid-line. Function-local static: safe to use from
 * static initialisation and never destroyed before the last logger.
 */
std::mutex &
sinkMutex()
{
    static std::mutex mutex;
    return mutex;
}

/** The exit-flush hook; guarded by sinkMutex() for install/read. */
std::function<void()> &
exitFlushHook()
{
    static std::function<void()> hook;
    return hook;
}

} // namespace

void
logLine(const char *kind, const std::string &msg)
{
    std::lock_guard<std::mutex> lock(sinkMutex());
    std::fprintf(stderr, "%s: %s\n", kind, msg.c_str());
}

void
exitWith(const char *kind, const std::string &msg, bool abort_process)
{
    // Run the flush hook at most once process-wide: a fatal() raised
    // *by* the hook itself (or by a second thread racing this one)
    // must not recurse into it.
    static std::atomic<bool> flushed{false};
    std::function<void()> hook;
    {
        std::lock_guard<std::mutex> lock(sinkMutex());
        if (!flushed.exchange(true))
            hook = exitFlushHook();
    }
    if (hook)
        hook();

    {
        std::lock_guard<std::mutex> lock(sinkMutex());
        std::fprintf(stderr, "%s: %s\n", kind, msg.c_str());
        // A dying bench may have half a table buffered on stdout and
        // the diagnostic above on stderr; flush both so the terminal
        // shows everything that was produced before the exit, even
        // when other threads are mid-run.
        std::fflush(stderr);
        std::fflush(stdout);
    }
    if (abort_process)
        std::abort();
    std::exit(1);
}

} // namespace detail

void
setExitFlushHook(std::function<void()> hook)
{
    std::lock_guard<std::mutex> lock(detail::sinkMutex());
    detail::exitFlushHook() = std::move(hook);
}

} // namespace mlpsim
