#include "logging.hh"

namespace mlpsim {
namespace detail {

void
exitWith(const char *kind, const std::string &msg, bool abort_process)
{
    std::fprintf(stderr, "%s: %s\n", kind, msg.c_str());
    if (abort_process)
        std::abort();
    std::exit(1);
}

} // namespace detail
} // namespace mlpsim
