/**
 * @file
 * Recoverable-error types in the absl::Status / gem5 idiom.
 *
 * fatal()/panic() (logging.hh) terminate the process and are right for
 * interactive binaries where any error is the user's last word. A
 * production pipeline replaying thousands of trace files cannot afford
 * that: one corrupt record must fail *one* workload, descriptively,
 * and let the sweep continue. Library code therefore reports failures
 * as Status (or Expected<T> when there is a value to return) and lets
 * the caller decide whether to recover, skip, or die. Thin
 * fatal()-on-error wrappers preserve the old terminating behaviour for
 * the existing interactive entry points.
 *
 * Conventions (see DESIGN.md "Error handling"):
 *  - Status / Expected<T>: any failure caused by *inputs* — files,
 *    flags, configuration values — that a caller may plausibly want to
 *    survive.
 *  - fatal(): top-of-main wrappers only, never in library code paths
 *    that new code might want to call recoverably.
 *  - panic()/MLPSIM_ASSERT: internal invariant violations (bugs);
 *    these stay terminating.
 */
#pragma once

#include <exception>
#include <optional>
#include <string>
#include <utility>

#include "util/logging.hh"

namespace mlpsim {

/** Broad failure category, absl-style. */
enum class ErrorCode : uint8_t {
    Ok = 0,
    InvalidArgument,    //!< malformed flag, inconsistent configuration
    NotFound,           //!< named file / workload does not exist
    DataLoss,           //!< corrupt, truncated or tampered input data
    OutOfRange,         //!< value outside the accepted range
    IoError,            //!< OS-level read/write/rename failure
    FailedPrecondition, //!< operation invalid in the current state
    Internal,           //!< invariant violation surfaced recoverably
    Unavailable,        //!< transient resource failure; retrying may work
    Cancelled,          //!< the operation was cooperatively cancelled
    DeadlineExceeded,   //!< the operation outlived its deadline
};

/** Printable name, e.g. "data loss". */
const char *errorCodeName(ErrorCode code);

/**
 * The sweep layer's failure taxonomy: what a failed job's error code
 * says about whether running the job again could succeed.
 *
 *  - Transient: the input was fine but the environment misbehaved
 *    (Unavailable, IoError). A bounded, backed-off retry is sound.
 *  - Cancelled: the job was stopped on purpose (Cancelled,
 *    DeadlineExceeded). Retrying would defeat the cancellation.
 *  - Permanent: everything else — the same inputs will fail the same
 *    way, so a retry only wastes the sweep's time.
 */
enum class FailureClass : uint8_t { None, Transient, Permanent, Cancelled };

FailureClass failureClass(ErrorCode code);
const char *failureClassName(FailureClass fc);

/** Shorthand for failureClass(code) == FailureClass::Transient. */
bool isRetryable(ErrorCode code);

/**
 * An error code plus a human-readable message with a context chain.
 * Default-constructed Status is OK. Functions returning Status must
 * have the result inspected ([[nodiscard]]).
 */
class [[nodiscard]] Status
{
  public:
    /** OK (success). */
    Status() = default;

    Status(ErrorCode error_code, std::string error_message)
        : ec(error_code), msg(std::move(error_message))
    {
    }

    /** Factory for an explicit success return. */
    static Status okStatus() { return {}; }

    template <typename... Args>
    static Status
    invalidArgument(Args &&...args)
    {
        return Status(ErrorCode::InvalidArgument,
                      detail::concat(std::forward<Args>(args)...));
    }

    template <typename... Args>
    static Status
    notFound(Args &&...args)
    {
        return Status(ErrorCode::NotFound,
                      detail::concat(std::forward<Args>(args)...));
    }

    template <typename... Args>
    static Status
    dataLoss(Args &&...args)
    {
        return Status(ErrorCode::DataLoss,
                      detail::concat(std::forward<Args>(args)...));
    }

    template <typename... Args>
    static Status
    outOfRange(Args &&...args)
    {
        return Status(ErrorCode::OutOfRange,
                      detail::concat(std::forward<Args>(args)...));
    }

    template <typename... Args>
    static Status
    ioError(Args &&...args)
    {
        return Status(ErrorCode::IoError,
                      detail::concat(std::forward<Args>(args)...));
    }

    template <typename... Args>
    static Status
    failedPrecondition(Args &&...args)
    {
        return Status(ErrorCode::FailedPrecondition,
                      detail::concat(std::forward<Args>(args)...));
    }

    template <typename... Args>
    static Status
    internal(Args &&...args)
    {
        return Status(ErrorCode::Internal,
                      detail::concat(std::forward<Args>(args)...));
    }

    template <typename... Args>
    static Status
    unavailable(Args &&...args)
    {
        return Status(ErrorCode::Unavailable,
                      detail::concat(std::forward<Args>(args)...));
    }

    template <typename... Args>
    static Status
    cancelled(Args &&...args)
    {
        return Status(ErrorCode::Cancelled,
                      detail::concat(std::forward<Args>(args)...));
    }

    template <typename... Args>
    static Status
    deadlineExceeded(Args &&...args)
    {
        return Status(ErrorCode::DeadlineExceeded,
                      detail::concat(std::forward<Args>(args)...));
    }

    bool ok() const { return ec == ErrorCode::Ok; }
    ErrorCode code() const { return ec; }
    const std::string &message() const { return msg; }

    /** "data loss: reading 'x.trace': record 7: bad CRC". */
    std::string toString() const;

    /**
     * Prepend a context frame ("<context>: <message>") so errors read
     * outermost-operation-first as they propagate up the stack.
     * No-op on an OK status.
     */
    template <typename... Args>
    Status
    withContext(Args &&...args) &&
    {
        if (!ok())
            msg = detail::concat(std::forward<Args>(args)...) + ": " + msg;
        return std::move(*this);
    }

    /** Terminate via fatal() unless OK; for top-of-main wrappers. */
    void orFatal() const
    {
        if (!ok())
            fatal(toString());
    }

  private:
    ErrorCode ec = ErrorCode::Ok;
    std::string msg;
};

/**
 * Either a T or the Status explaining why there is none
 * (absl::StatusOr<T> analogue).
 */
template <typename T>
class [[nodiscard]] Expected
{
  public:
    /** Success. Implicit so functions can `return value;`. */
    Expected(T value) : val(std::move(value)) {}

    /** Failure. The status must not be OK (that would carry no T). */
    Expected(Status error) : st(std::move(error))
    {
        MLPSIM_ASSERT(!st.ok(),
                      "Expected<T> constructed from an OK status");
    }

    bool ok() const { return val.has_value(); }

    /** OK status when holding a value, the error otherwise. */
    const Status &status() const { return st; }

    const T &
    value() const &
    {
        MLPSIM_ASSERT(ok(), "value() on failed Expected: ",
                      st.toString());
        return *val;
    }

    T &
    value() &
    {
        MLPSIM_ASSERT(ok(), "value() on failed Expected: ",
                      st.toString());
        return *val;
    }

    T &&
    value() &&
    {
        MLPSIM_ASSERT(ok(), "value() on failed Expected: ",
                      st.toString());
        return *std::move(val);
    }

    T
    valueOr(T def) const &
    {
        return ok() ? *val : std::move(def);
    }

    const T &operator*() const & { return value(); }
    T &operator*() & { return value(); }
    T &&operator*() && { return std::move(*this).value(); }
    const T *operator->() const { return &value(); }
    T *operator->() { return &value(); }

    /** Unwrap or terminate via fatal(); for top-of-main wrappers. */
    T
    orFatal() &&
    {
        if (!ok())
            fatal(st.toString());
        return *std::move(val);
    }

    /** Add a context frame to the error (no-op on success). */
    template <typename... Args>
    Expected
    withContext(Args &&...args) &&
    {
        if (!ok())
            st = std::move(st).withContext(std::forward<Args>(args)...);
        return std::move(*this);
    }

  private:
    std::optional<T> val;
    Status st;
};

/**
 * A Status carried across an exception boundary. Sweep job bodies run
 * under layers (bench helpers, fatal()-on-error wrappers) that do not
 * thread Status returns through; throwing StatusError lets a job fail
 * with a *classified* error — SweepRunner catches it, keeps the Status
 * for its failure records, and applies the retry taxonomy above —
 * where a plain std::exception would be recorded as Permanent/Internal.
 */
class StatusError : public std::exception
{
  public:
    explicit StatusError(Status status)
        : st(std::move(status)), text(st.toString())
    {
        MLPSIM_ASSERT(!st.ok(), "StatusError constructed from OK status");
    }

    const Status &status() const { return st; }
    const char *what() const noexcept override { return text.c_str(); }

  private:
    Status st;
    std::string text;
};

/** Propagate a failed Status out of a Status-returning function. */
#define MLPSIM_RETURN_IF_ERROR(expr)                      \
    do {                                                  \
        ::mlpsim::Status status_ = (expr);                \
        if (!status_.ok())                                \
            return status_;                               \
    } while (0)

#define MLPSIM_CONCAT_IMPL_(a, b) a##b
#define MLPSIM_CONCAT_(a, b) MLPSIM_CONCAT_IMPL_(a, b)

/**
 * Evaluate an Expected<T> expression; on failure propagate its Status,
 * on success bind the value to @p lhs (a declaration or assignable).
 */
#define MLPSIM_ASSIGN_OR_RETURN(lhs, expr)                             \
    MLPSIM_ASSIGN_OR_RETURN_IMPL_(                                     \
        MLPSIM_CONCAT_(expected_tmp_, __COUNTER__), lhs, expr)

#define MLPSIM_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr)                  \
    auto tmp = (expr);                                                 \
    if (!tmp.ok())                                                     \
        return std::move(tmp).status();                                \
    lhs = *std::move(tmp)

} // namespace mlpsim
