/**
 * @file
 * Append-only, CRC32-framed record files: the storage layer of the
 * sweep checkpoint/resume journal (core/result_journal.hh) and, per
 * ROADMAP.md, the seed of the mlpsimd content-addressed result cache.
 *
 * The format is deliberately dumb so a half-written file is always
 * recoverable:
 *
 *   magic (8 bytes, "MLPRECJ1")
 *   frame 0:  the log's *meta* string (identifies schema + parameters)
 *   frame 1..n: payload records, appended one fflush()ed frame at a
 *               time
 *
 * where every frame is [u32-LE length][u32-LE CRC32][payload bytes].
 *
 * A process killed mid-append leaves at most one truncated or
 * CRC-corrupt frame at the tail. open() *salvages* such a file: the
 * valid prefix is kept, rewritten through the atomic temp-file+rename
 * idiom (so a second crash cannot make things worse), and appending
 * resumes after it. A file whose meta string does not match — a
 * journal written under different sweep parameters — is discarded and
 * restarted rather than half-trusted.
 */
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.hh"

namespace mlpsim {

/** A parsed record file: its meta string and every intact record. */
struct RecordFileContents
{
    std::string meta;
    std::vector<std::string> records;

    /** True when a corrupt/partial tail was dropped during parsing. */
    bool truncated = false;
};

/**
 * Read and validate @p path. NotFound if the file does not exist;
 * DataLoss if even the magic/meta prefix is unusable. A corrupt tail
 * is not an error: the valid prefix comes back with truncated = true.
 */
Expected<RecordFileContents> readRecordFile(const std::string &path);

/**
 * An open record log: recovered prefix plus an append handle.
 * Move-only; the destructor closes the file.
 */
class RecordLog
{
  public:
    /**
     * Open @p path for appending under @p meta. Outcomes:
     *  - no usable file (missing, bad prefix, meta mismatch): start
     *    fresh — recovered() is empty, freshStart() is true;
     *  - intact file with matching meta: append after its records;
     *  - corrupt tail with matching meta: salvage the valid prefix
     *    (atomic rewrite), then append — salvaged() is true.
     */
    static Expected<RecordLog> open(const std::string &path,
                                    const std::string &meta);

    RecordLog(RecordLog &&other) noexcept { *this = std::move(other); }
    RecordLog &
    operator=(RecordLog &&other) noexcept
    {
        if (this != &other) {
            closeFile();
            out = other.out;
            other.out = nullptr;
            loaded = std::move(other.loaded);
            logPath = std::move(other.logPath);
            logMeta = std::move(other.logMeta);
            didSalvage = other.didSalvage;
            fresh = other.fresh;
        }
        return *this;
    }

    RecordLog(const RecordLog &) = delete;
    RecordLog &operator=(const RecordLog &) = delete;

    ~RecordLog() { closeFile(); }

    /** Records recovered from the pre-existing file, in file order. */
    const std::vector<std::string> &recovered() const { return loaded; }

    /** True if a corrupt tail was dropped and the file rewritten. */
    bool salvaged() const { return didSalvage; }

    /** True if no prior contents were usable (new or discarded file). */
    bool freshStart() const { return fresh; }

    const std::string &path() const { return logPath; }

    /**
     * Append one framed record and flush it to the OS, so a subsequent
     * crash loses at most the frame currently being written.
     */
    Status append(std::string_view payload);

    /**
     * Atomically replace the log's contents with @p records (same
     * temp-file+rename idiom as salvage) and resume appending after
     * them. This is the compaction primitive: a replay layer that
     * collapsed duplicate or superseded records rewrites the log to
     * the collapsed set. recovered() reflects the new contents; a
     * crash mid-rewrite leaves the old file intact.
     */
    Status rewrite(std::vector<std::string> records);

  private:
    RecordLog() = default;

    void
    closeFile()
    {
        if (out) {
            std::fclose(out);
            out = nullptr;
        }
    }

    std::FILE *out = nullptr;
    std::vector<std::string> loaded;
    std::string logPath;
    std::string logMeta;
    bool didSalvage = false;
    bool fresh = true;
};

} // namespace mlpsim
