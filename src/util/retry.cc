#include "retry.hh"

#include <algorithm>

#include "util/rng.hh"

namespace mlpsim {

uint64_t
fnv1a64(std::string_view text)
{
    uint64_t hash = 0xcbf29ce484222325ULL;
    for (const char c : text) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

double
RetryPolicy::backoffMillis(std::string_view label,
                           unsigned next_attempt) const
{
    if (next_attempt < 2)
        return 0.0;
    double delay = baseBackoffMillis;
    for (unsigned a = 2; a < next_attempt; ++a) {
        delay *= backoffMultiplier;
        if (delay >= maxBackoffMillis)
            break;
    }
    delay = std::min(delay, maxBackoffMillis);

    // Seed-derived jitter: one splitMix64 draw per (seed, label,
    // attempt) mapped to [1 - j, 1 + j). Reruns of the same sweep
    // therefore back off on the identical schedule.
    const double j = std::clamp(jitterFraction, 0.0, 1.0);
    if (j > 0.0) {
        const uint64_t draw =
            splitMix64(seed ^ fnv1a64(label) ^
                       (0x9E3779B97F4A7C15ULL * next_attempt));
        const double unit = double(draw >> 11) * 0x1.0p-53; // [0, 1)
        delay *= 1.0 - j + 2.0 * j * unit;
    }
    return delay;
}

bool
RetryPolicy::shouldRetry(const Status &failure, unsigned attempt) const
{
    if (failure.ok() || attempt >= maxAttempts)
        return false;
    return isRetryable(failure.code());
}

} // namespace mlpsim
