/**
 * @file
 * Statistics accumulators shared by the simulators and benches:
 * running mean/variance, integer histograms, and empirical CDFs.
 */
#pragma once

#include <cstdint>
#include <map>
#include <vector>

namespace mlpsim {

/** Streaming mean / variance / min / max (Welford's algorithm). */
class RunningStat
{
  public:
    void add(double x);

    /**
     * Fold @p other into this accumulator (Chan et al. parallel
     * variance combine). Deterministic for a fixed merge order; the
     * metrics layer therefore always merges in submission order.
     */
    void merge(const RunningStat &other);

    uint64_t count() const { return n; }
    double mean() const { return n ? mu : 0.0; }
    double variance() const { return n > 1 ? m2 / double(n - 1) : 0.0; }
    double stddev() const;
    double min() const { return n ? lo : 0.0; }
    double max() const { return n ? hi : 0.0; }
    double sum() const { return total; }

    void reset() { *this = RunningStat(); }

  private:
    uint64_t n = 0;
    double mu = 0.0;
    double m2 = 0.0;
    double lo = 0.0;
    double hi = 0.0;
    double total = 0.0;
};

/**
 * Sparse integer histogram keyed by arbitrary 64-bit values.
 * Used for inter-miss distance distributions (Figure 2) and epoch-size
 * statistics.
 */
class Histogram
{
  public:
    void add(uint64_t key, uint64_t weight = 1);

    /** Fold @p other's buckets into this histogram. */
    void merge(const Histogram &other);

    uint64_t samples() const { return n; }
    double mean() const;

    /** Smallest / largest key observed. @pre samples() > 0. */
    uint64_t minKey() const;
    uint64_t maxKey() const;

    /**
     * Fraction of samples with key <= @p key (empirical CDF).
     * Defined as 0.0 on an empty histogram.
     */
    double cdfAt(uint64_t key) const;

    /**
     * Smallest key k such that cdfAt(k) >= @p q, for @p q in [0, 1]
     * (panics outside that range). Edge cases are defined, not
     * accidental: q = 0.0 returns minKey(), q = 1.0 returns maxKey(),
     * and an empty histogram returns 0 for every q.
     */
    uint64_t quantile(double q) const;

    const std::map<uint64_t, uint64_t> &buckets() const { return counts; }

    void reset();

  private:
    std::map<uint64_t, uint64_t> counts;
    uint64_t n = 0;
    double weighted_sum = 0.0;
};

/**
 * Reference CDF of a uniform (exponential inter-arrival) process with
 * the given mean distance; the "thin curves" of the paper's Figure 2.
 */
double uniformInterMissCdf(double mean_distance, double distance);

} // namespace mlpsim
