/**
 * @file
 * Error-reporting helpers in the gem5 fatal()/panic() idiom.
 *
 * fatal() terminates due to a user error (bad configuration, bad
 * arguments); panic() terminates due to an internal invariant violation
 * (a simulator bug). warn()/inform() report status without stopping.
 */
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <utility>

namespace mlpsim {

namespace detail {

/** Stream-concatenate a parameter pack into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

[[noreturn]] void exitWith(const char *kind, const std::string &msg,
                           bool abort_process);

} // namespace detail

/** Terminate: the user asked for something unsupported or inconsistent. */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::exitWith("fatal", detail::concat(std::forward<Args>(args)...),
                     false);
}

/** Terminate: an internal invariant was violated (a bug in mlpsim). */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::exitWith("panic", detail::concat(std::forward<Args>(args)...),
                     true);
}

/** Report a suspicious but survivable condition. */
template <typename... Args>
void
warn(Args &&...args)
{
    std::fprintf(stderr, "warn: %s\n",
                 detail::concat(std::forward<Args>(args)...).c_str());
}

/** Report normal operating status. */
template <typename... Args>
void
inform(Args &&...args)
{
    std::fprintf(stderr, "info: %s\n",
                 detail::concat(std::forward<Args>(args)...).c_str());
}

/** panic() unless the stated invariant holds. */
#define MLPSIM_ASSERT(cond, ...)                                           \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::mlpsim::panic("assertion failed: ", #cond, " at ", __FILE__, \
                            ":", __LINE__, " ", ##__VA_ARGS__);            \
        }                                                                  \
    } while (0)

} // namespace mlpsim
