/**
 * @file
 * Error-reporting helpers in the gem5 fatal()/panic() idiom.
 *
 * fatal() terminates due to a user error (bad configuration, bad
 * arguments); panic() terminates due to an internal invariant violation
 * (a simulator bug). warn()/inform() report status without stopping.
 *
 * All helpers are thread-safe: every line goes through one
 * mutex-guarded sink, so messages from concurrent sweep workers
 * (util/parallel.hh) never interleave mid-line, and fatal()/panic()
 * flush both stdio streams before terminating so partial bench output
 * is not lost.
 */
#pragma once

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <sstream>
#include <string>
#include <utility>

namespace mlpsim {

/**
 * Install a hook fatal()/panic() invoke (once, re-entrancy-guarded)
 * before terminating the process. The bench layer registers a
 * best-effort metrics flush here so a run that dies mid-sweep still
 * leaves its --metrics-out snapshot on disk. Pass nullptr to
 * uninstall. The hook runs outside the log-sink lock and must not
 * terminate the process itself.
 */
void setExitFlushHook(std::function<void()> hook);

namespace detail {

/** Stream-concatenate a parameter pack into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

[[noreturn]] void exitWith(const char *kind, const std::string &msg,
                           bool abort_process);

/** Write "<kind>: <msg>\n" to stderr under the process-wide lock. */
void logLine(const char *kind, const std::string &msg);

} // namespace detail

/** Terminate: the user asked for something unsupported or inconsistent. */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::exitWith("fatal", detail::concat(std::forward<Args>(args)...),
                     false);
}

/** Terminate: an internal invariant was violated (a bug in mlpsim). */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::exitWith("panic", detail::concat(std::forward<Args>(args)...),
                     true);
}

/** Report a suspicious but survivable condition. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::logLine("warn", detail::concat(std::forward<Args>(args)...));
}

/** Report normal operating status. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::logLine("info", detail::concat(std::forward<Args>(args)...));
}

/** panic() unless the stated invariant holds. */
#define MLPSIM_ASSERT(cond, ...)                                           \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::mlpsim::panic("assertion failed: ", #cond, " at ", __FILE__, \
                            ":", __LINE__, " ", ##__VA_ARGS__);            \
        }                                                                  \
    } while (0)

} // namespace mlpsim
