#include "recordio.hh"

#include <cerrno>
#include <cstring>

#include "util/crc32.hh"

namespace mlpsim {

namespace {

constexpr char kMagic[8] = {'M', 'L', 'P', 'R', 'E', 'C', 'J', '1'};

void
putU32(std::string &out, uint32_t v)
{
    out.push_back(char(v & 0xFF));
    out.push_back(char((v >> 8) & 0xFF));
    out.push_back(char((v >> 16) & 0xFF));
    out.push_back(char((v >> 24) & 0xFF));
}

uint32_t
getU32(const char *p)
{
    return uint32_t(uint8_t(p[0])) | (uint32_t(uint8_t(p[1])) << 8) |
           (uint32_t(uint8_t(p[2])) << 16) |
           (uint32_t(uint8_t(p[3])) << 24);
}

std::string
frame(std::string_view payload)
{
    std::string out;
    out.reserve(8 + payload.size());
    putU32(out, uint32_t(payload.size()));
    putU32(out, Crc32::compute(payload.data(), payload.size()));
    out.append(payload);
    return out;
}

/**
 * Parse one frame at @p off. Returns true and advances @p off past the
 * frame on success; false (leaving @p off unchanged) if the data at
 * @p off is truncated or fails its CRC — the caller treats everything
 * from there on as the corrupt tail.
 */
bool
parseFrame(const std::string &data, size_t &off, std::string *payload)
{
    if (data.size() - off < 8)
        return false;
    const uint32_t len = getU32(data.data() + off);
    const uint32_t crc = getU32(data.data() + off + 4);
    if (data.size() - off - 8 < len)
        return false;
    if (Crc32::compute(data.data() + off + 8, len) != crc)
        return false;
    payload->assign(data.data() + off + 8, len);
    off += 8 + len;
    return true;
}

Expected<std::string>
readWholeFile(const std::string &path)
{
    std::FILE *in = std::fopen(path.c_str(), "rb");
    if (!in) {
        if (errno == ENOENT)
            return Status::notFound("no such file: '", path, "'");
        return Status::ioError("opening '", path,
                               "': ", std::strerror(errno));
    }
    std::string data;
    char buf[1 << 16];
    size_t got;
    while ((got = std::fread(buf, 1, sizeof buf, in)) != 0)
        data.append(buf, got);
    const bool failed = std::ferror(in) != 0;
    std::fclose(in);
    if (failed)
        return Status::ioError("reading '", path, "'");
    return data;
}

Status
writeWholeFileAtomic(const std::string &path, const std::string &data)
{
    // Temp-file + rename (the trace-writer / metrics-export idiom):
    // the destination either keeps its old contents or atomically
    // becomes the new ones; a crash mid-salvage cannot eat the valid
    // prefix we just recovered.
    const std::string tmp = path + ".tmp";
    std::FILE *out = std::fopen(tmp.c_str(), "wb");
    if (!out)
        return Status::ioError("creating '", tmp,
                               "': ", std::strerror(errno));
    const bool wrote =
        std::fwrite(data.data(), 1, data.size(), out) == data.size();
    const bool closed = std::fclose(out) == 0;
    if (!wrote || !closed) {
        std::remove(tmp.c_str());
        return Status::ioError("writing '", tmp, "'");
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return Status::ioError("renaming '", tmp, "' to '", path,
                               "': ", std::strerror(errno));
    }
    return Status::okStatus();
}

std::string
serialize(const std::string &meta,
          const std::vector<std::string> &records)
{
    std::string out(kMagic, sizeof kMagic);
    out += frame(meta);
    for (const auto &record : records)
        out += frame(record);
    return out;
}

} // namespace

Expected<RecordFileContents>
readRecordFile(const std::string &path)
{
    MLPSIM_ASSIGN_OR_RETURN(const std::string data, readWholeFile(path));

    RecordFileContents contents;
    if (data.size() < sizeof kMagic ||
        std::memcmp(data.data(), kMagic, sizeof kMagic) != 0) {
        return Status::dataLoss("'", path,
                                "' is not a record file (bad magic)");
    }
    size_t off = sizeof kMagic;
    if (!parseFrame(data, off, &contents.meta)) {
        return Status::dataLoss("'", path,
                                "': meta frame truncated or corrupt");
    }
    std::string payload;
    while (off < data.size()) {
        if (!parseFrame(data, off, &payload)) {
            contents.truncated = true;
            break;
        }
        contents.records.push_back(std::move(payload));
        payload.clear();
    }
    return contents;
}

Expected<RecordLog>
RecordLog::open(const std::string &path, const std::string &meta)
{
    RecordLog log;
    log.logPath = path;
    log.logMeta = meta;

    auto contents = readRecordFile(path);
    const bool usable = contents.ok() && contents->meta == meta;
    if (contents.ok() && contents->meta != meta) {
        warn("record log '", path, "': meta mismatch (found '",
             contents->meta, "', want '", meta, "'); starting fresh");
    } else if (!contents.ok() &&
               contents.status().code() == ErrorCode::DataLoss) {
        warn("record log '", path, "': ", contents.status().message(),
             "; starting fresh");
    } else if (!contents.ok() &&
               contents.status().code() != ErrorCode::NotFound) {
        // A real I/O failure (permissions, disk): surface it rather
        // than silently clobbering a file we could not even read.
        return std::move(contents).status();
    }

    if (usable) {
        log.fresh = false;
        log.loaded = std::move(contents->records);
        if (contents->truncated) {
            // Drop the corrupt tail for good before appending after it.
            log.didSalvage = true;
            MLPSIM_RETURN_IF_ERROR(
                writeWholeFileAtomic(path, serialize(meta, log.loaded))
                    .withContext("salvaging record log"));
        }
        log.out = std::fopen(path.c_str(), "ab");
        if (!log.out) {
            return Status::ioError("opening '", path,
                                   "' for append: ",
                                   std::strerror(errno));
        }
        return log;
    }

    // Fresh start: write the header + meta frame, then hold the handle
    // open for appends.
    log.out = std::fopen(path.c_str(), "wb");
    if (!log.out) {
        return Status::ioError("creating '", path,
                               "': ", std::strerror(errno));
    }
    const std::string header = serialize(meta, {});
    if (std::fwrite(header.data(), 1, header.size(), log.out) !=
            header.size() ||
        std::fflush(log.out) != 0) {
        return Status::ioError("writing header of '", path, "'");
    }
    return log;
}

Status
RecordLog::rewrite(std::vector<std::string> records)
{
    MLPSIM_ASSERT(out != nullptr, "rewrite() on a moved-from RecordLog");
    // Flush and drop the append handle first: the rename below swaps
    // the inode out from under it, and any buffered bytes must land in
    // the *old* file image being replaced, not after it.
    std::fflush(out);
    closeFile();
    MLPSIM_RETURN_IF_ERROR(
        writeWholeFileAtomic(logPath, serialize(logMeta, records))
            .withContext("rewriting record log"));
    loaded = std::move(records);
    out = std::fopen(logPath.c_str(), "ab");
    if (!out) {
        return Status::ioError("reopening '", logPath,
                               "' for append: ", std::strerror(errno));
    }
    return Status::okStatus();
}

Status
RecordLog::append(std::string_view payload)
{
    MLPSIM_ASSERT(out != nullptr, "append() on a moved-from RecordLog");
    const std::string framed = frame(payload);
    if (std::fwrite(framed.data(), 1, framed.size(), out) !=
            framed.size() ||
        std::fflush(out) != 0) {
        return Status::ioError("appending to '", logPath,
                               "': ", std::strerror(errno));
    }
    return Status::okStatus();
}

} // namespace mlpsim
