/**
 * @file
 * Deterministic, bounded retry with exponential backoff and
 * seed-derived jitter.
 *
 * A resilient sweep retries *transient* failures (see
 * status.hh FailureClass) a bounded number of times, backing off
 * exponentially so a struggling resource (disk, filesystem, a future
 * network backend) is not hammered. Jitter de-synchronises the retries
 * of many concurrently failing jobs — but random jitter would make
 * sweep reruns unreproducible, so here it is a pure function of
 * (policy seed, job label, attempt number): two runs of the same sweep
 * back off on exactly the same schedule, which keeps failure-path
 * timelines diffable and lets tests assert the exact sequence.
 */
#pragma once

#include <cstdint>
#include <string_view>

#include "util/status.hh"

namespace mlpsim {

/** 64-bit FNV-1a, the stable label hash the jitter derives from. */
uint64_t fnv1a64(std::string_view text);

/**
 * When and how often to re-run a failed job. The default policy (one
 * attempt) disables retry entirely, so existing callers keep their
 * exact behaviour.
 */
struct RetryPolicy
{
    /** Total attempts including the first; 1 = never retry. */
    unsigned maxAttempts = 1;

    double baseBackoffMillis = 1.0;  //!< delay before attempt 2
    double backoffMultiplier = 2.0;  //!< growth per further attempt
    double maxBackoffMillis = 2000.0; //!< cap on the un-jittered delay

    /** Jitter amplitude: the delay is scaled by a deterministic factor
     *  in [1 - jitterFraction, 1 + jitterFraction). */
    double jitterFraction = 0.25;

    /** Run-level seed the per-(label, attempt) jitter derives from. */
    uint64_t seed = 0;

    /**
     * The delay before attempt @p next_attempt (attempts are 1-based,
     * so the smallest meaningful value is 2). Deterministic: equal
     * (seed, label, next_attempt) always yields the same millis.
     */
    double backoffMillis(std::string_view label,
                         unsigned next_attempt) const;

    /**
     * Whether attempt @p attempt's failure @p failure should be
     * retried: only transient failures, and only while attempts
     * remain. Cancellation and permanent errors never retry.
     */
    bool shouldRetry(const Status &failure, unsigned attempt) const;
};

} // namespace mlpsim
