#include "options.hh"

#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "logging.hh"

namespace mlpsim {

namespace {

/** Strict full-string u64 parse (rejects "", "12x", "-3", overflow). */
Expected<uint64_t>
parseU64(const std::string &text)
{
    if (text.empty() || text[0] == '-') {
        return Status::invalidArgument("'", text,
                                       "' is not an unsigned integer");
    }
    errno = 0;
    char *end = nullptr;
    const unsigned long long parsed =
        std::strtoull(text.c_str(), &end, 0);
    if (end != text.c_str() + text.size() || end == text.c_str()) {
        return Status::invalidArgument("'", text,
                                       "' is not an unsigned integer");
    }
    if (errno == ERANGE) {
        return Status::outOfRange("'", text,
                                  "' overflows a 64-bit integer");
    }
    return uint64_t(parsed);
}

/** Strict full-string finite-double parse. */
Expected<double>
parseDouble(const std::string &text)
{
    if (text.empty())
        return Status::invalidArgument("empty value is not a number");
    errno = 0;
    char *end = nullptr;
    const double parsed = std::strtod(text.c_str(), &end);
    if (end != text.c_str() + text.size() || end == text.c_str())
        return Status::invalidArgument("'", text, "' is not a number");
    if (errno == ERANGE || !std::isfinite(parsed))
        return Status::outOfRange("'", text, "' is out of range");
    return parsed;
}

} // namespace

Options::Options(int argc, char **argv)
{
    *this = parse(argc, argv).orFatal();
}

Expected<Options>
Options::parse(int argc, char **argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            return Status::invalidArgument(
                "unexpected positional argument '", arg, "'");
        }
        arg = arg.substr(2);
        const auto eq = arg.find('=');
        const std::string name =
            eq == std::string::npos ? arg : arg.substr(0, eq);
        if (name.empty()) {
            return Status::invalidArgument("malformed flag '", argv[i],
                                           "': empty flag name");
        }
        if (eq != std::string::npos) {
            opts.values[name] = arg.substr(eq + 1);
        } else if (i + 1 < argc && argv[i + 1][0] != '-') {
            opts.values[name] = argv[++i];
        } else {
            opts.values[name] = "1";
        }
    }
    if (const char *s = std::getenv("MLPSIM_SCALE")) {
        auto scale = parseDouble(s);
        if (!scale.ok()) {
            Status st = scale.status();
            return std::move(st).withContext("MLPSIM_SCALE");
        }
        if (*scale <= 0.0) {
            return Status::invalidArgument(
                "MLPSIM_SCALE must be positive, got '", s, "'");
        }
        opts.scale = *scale;
    }
    return opts;
}

Status
Options::checkKnown(const std::vector<std::string> &known) const
{
    for (const auto &[name, value] : values) {
        bool found = false;
        for (const auto &k : known)
            found = found || k == name;
        if (!found) {
            std::string accepted;
            for (const auto &k : known)
                accepted += (accepted.empty() ? "--" : " --") + k;
            return Status::invalidArgument("unknown flag '--", name,
                                           "' (accepted: ", accepted,
                                           ")");
        }
    }
    return Status::okStatus();
}

void
Options::rejectUnknown(const std::vector<std::string> &known) const
{
    checkKnown(known).orFatal();
}

bool
Options::has(const std::string &name) const
{
    return values.count(name) != 0;
}

std::string
Options::getString(const std::string &name, const std::string &def) const
{
    auto it = values.find(name);
    return it == values.end() ? def : it->second;
}

Expected<uint64_t>
Options::tryGetU64(const std::string &name, uint64_t def) const
{
    auto it = values.find(name);
    if (it == values.end())
        return def;
    return parseU64(it->second).withContext("--", name);
}

Expected<double>
Options::tryGetDouble(const std::string &name, double def) const
{
    auto it = values.find(name);
    if (it == values.end())
        return def;
    return parseDouble(it->second).withContext("--", name);
}

uint64_t
Options::getU64(const std::string &name, uint64_t def) const
{
    return tryGetU64(name, def).orFatal();
}

double
Options::getDouble(const std::string &name, double def) const
{
    return tryGetDouble(name, def).orFatal();
}

Expected<uint64_t>
Options::tryScaledInsts(const std::string &name, uint64_t def) const
{
    if (has(name))
        return tryGetU64(name, def);
    return static_cast<uint64_t>(double(def) * scale);
}

uint64_t
Options::scaledInsts(const std::string &name, uint64_t def) const
{
    return tryScaledInsts(name, def).orFatal();
}

} // namespace mlpsim
