#include "options.hh"

#include <cstdlib>

#include "logging.hh"

namespace mlpsim {

Options::Options(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            fatal("unexpected positional argument '", arg, "'");
        }
        arg = arg.substr(2);
        const auto eq = arg.find('=');
        if (eq != std::string::npos) {
            values[arg.substr(0, eq)] = arg.substr(eq + 1);
        } else if (i + 1 < argc && argv[i + 1][0] != '-') {
            values[arg] = argv[++i];
        } else {
            values[arg] = "1";
        }
    }
    if (const char *s = std::getenv("MLPSIM_SCALE")) {
        scale = std::atof(s);
        if (scale <= 0.0)
            fatal("MLPSIM_SCALE must be positive, got '", s, "'");
    }
}

bool
Options::has(const std::string &name) const
{
    return values.count(name) != 0;
}

std::string
Options::getString(const std::string &name, const std::string &def) const
{
    auto it = values.find(name);
    return it == values.end() ? def : it->second;
}

uint64_t
Options::getU64(const std::string &name, uint64_t def) const
{
    auto it = values.find(name);
    return it == values.end() ? def : std::strtoull(it->second.c_str(),
                                                    nullptr, 0);
}

double
Options::getDouble(const std::string &name, double def) const
{
    auto it = values.find(name);
    return it == values.end() ? def : std::atof(it->second.c_str());
}

uint64_t
Options::scaledInsts(const std::string &name, uint64_t def) const
{
    if (has(name))
        return getU64(name, def);
    return static_cast<uint64_t>(double(def) * scale);
}

} // namespace mlpsim
