/**
 * @file
 * Cycle-accurate reference simulator.
 *
 * Plays the role of the paper's proprietary cycle-accurate SPARC
 * simulator: an independent, *timed* out-of-order pipeline used to
 * (a) validate the timing-free epoch model (Table 3 compares the MLP
 * both report) and (b) measure CPI, CPI_perf and Overlap_CM for the
 * performance model (Tables 1 and 4).
 *
 * The pipeline: in-order fetch (blocking on instruction misses and on
 * unresolved mispredicted branches) into a fetch buffer, in-order
 * dispatch into an issue window + ROB, out-of-order issue respecting
 * the Table 2 constraints for configurations A-C (like the paper's
 * simulator, out-of-order branch issue is not supported), per-class
 * execution latencies with load latency chosen by where the access
 * hits (from the shared annotations), and in-order commit. Serializing
 * instructions drain the pipeline. MLP(t) is sampled every cycle as
 * the number of useful off-chip accesses outstanding; average MLP is
 * its mean over the cycles where it is non-zero (paper Section 2.1).
 */
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <queue>
#include <unordered_map>
#include <vector>

#include "core/mlp_config.hh"
#include "core/workload_context.hh"

namespace mlpsim::cyclesim {

/** Timed-pipeline configuration. */
struct CycleSimConfig
{
    core::IssueConfig issue = core::IssueConfig::C;

    unsigned fetchWidth = 3;
    unsigned dispatchWidth = 3;
    unsigned issueWidth = 3;
    unsigned commitWidth = 3;

    unsigned fetchBufferSize = 32;
    unsigned issueWindowSize = 64;
    unsigned robSize = 64;

    unsigned aluLatency = 1;
    unsigned l1Latency = 3;
    unsigned l2Latency = 15;
    unsigned offChipLatency = 200;   //!< the paper's MissPenalty
    unsigned branchRedirectPenalty = 10;

    /** Model a perfect L2: off-chip accesses become L2 hits. Used to
     *  measure CPI_perf. */
    bool perfectL2 = false;

    uint64_t warmupInsts = 0;

    /** Metric-path segment, e.g. "cyc64C-mp200" or "...+perfL2". */
    std::string metricLabel() const;
};

/** Measurements over the post-warm-up region. */
struct CycleSimResult
{
    uint64_t cycles = 0;
    uint64_t instructions = 0;
    uint64_t offChipAccesses = 0;
    uint64_t mlpCycles = 0;        //!< cycles with >=1 access outstanding
    double mlpSum = 0.0;           //!< sum of MLP(t) over those cycles

    double
    cpi() const
    {
        return instructions ? double(cycles) / double(instructions) : 0.0;
    }

    double
    mlp() const
    {
        return mlpCycles ? mlpSum / double(mlpCycles) : 0.0;
    }

    double
    missRatePer100() const
    {
        return instructions
                   ? 100.0 * double(offChipAccesses) / double(instructions)
                   : 0.0;
    }
};

/** The timed out-of-order pipeline. */
class CycleSim
{
  public:
    CycleSim(const CycleSimConfig &config,
             const core::WorkloadContext &workload);

    /** Simulate the whole trace and return measurements. */
    CycleSimResult run();

  private:
    struct RobEntry
    {
        uint64_t seq = 0;
        uint64_t prods[4] = {};
        uint64_t readyCycle = 0;    //!< unused until issued
        uint64_t completeCycle = 0; //!< valid once issued
        uint8_t numProds = 0;
        uint8_t numAddrProds = 0;
        bool issued = false;
        bool isPrefetch = false;
        bool isMemOp = false;
        bool isLoadLike = false;
        bool isStore = false;
        bool isBranch = false;
        bool isSerializing = false;
        bool dMiss = false;
        bool usefulPmiss = false;
        bool dL2 = false;
    };

    bool commitStage();
    bool issueStage();
    bool dispatchStage();
    bool fetchStage();
    uint64_t nextEventCycle() const;

    RobEntry makeEntry(uint64_t idx);
    bool producerComplete(uint64_t prod_seq) const;
    bool operandsComplete(const RobEntry &entry) const;
    bool storeAddrComplete(const RobEntry &entry) const;
    unsigned dataLatency(const RobEntry &entry) const;
    void recordOffChip(uint64_t idx, uint64_t complete_cycle);
    void drainCompletions();
    void accumulateMlp(uint64_t from_cycle, uint64_t to_cycle);

    const CycleSimConfig cfg;
    const core::WorkloadContext &wl;

    uint64_t now = 0;
    std::deque<RobEntry> rob;
    uint64_t headSeq = 1;
    std::vector<uint64_t> unissued;
    std::array<uint64_t, trace::numArchRegs> regProducer{};
    std::unordered_map<uint64_t, uint64_t> storeProducer;

    uint64_t nextFetchIdx = 0;
    uint64_t nextDispatchIdx = 0;
    uint64_t fetchResumeCycle = 0;   //!< instruction-miss stall
    bool imissHandled = false;
    uint64_t mispredBlockSeq = 0;    //!< 0 = not blocked
    uint64_t serializeBlockSeq = 0;  //!< 0 = not blocked

    /** Completion times of outstanding useful off-chip accesses. */
    std::priority_queue<uint64_t, std::vector<uint64_t>,
                        std::greater<uint64_t>> outstanding;

    /** All scheduled wake-up times (issue completions, redirects),
     *  used to fast-forward idle stretches. */
    std::priority_queue<uint64_t, std::vector<uint64_t>,
                        std::greater<uint64_t>> events;

    bool measuring = false;
    uint64_t committed = 0;
    uint64_t measureStartCycle = 0;
    CycleSimResult result;
};

} // namespace mlpsim::cyclesim
