/**
 * @file
 * Cycle-accurate reference simulator.
 *
 * Plays the role of the paper's proprietary cycle-accurate SPARC
 * simulator: an independent, *timed* out-of-order pipeline used to
 * (a) validate the timing-free epoch model (Table 3 compares the MLP
 * both report) and (b) measure CPI, CPI_perf and Overlap_CM for the
 * performance model (Tables 1 and 4).
 *
 * The pipeline: in-order fetch (blocking on instruction misses and on
 * unresolved mispredicted branches) into a fetch buffer, in-order
 * dispatch into an issue window + ROB, out-of-order issue respecting
 * the Table 2 constraints for configurations A-C (like the paper's
 * simulator, out-of-order branch issue is not supported), per-class
 * execution latencies with load latency chosen by where the access
 * hits (from the shared annotations), and in-order commit. Serializing
 * instructions drain the pipeline. MLP(t) is sampled every cycle as
 * the number of useful off-chip accesses outstanding; average MLP is
 * its mean over the cycles where it is non-zero (paper Section 2.1).
 *
 * Implementation notes (DESIGN.md section 14). The scheduler is
 * event-driven, mirroring the epoch engine's PR 4 overhaul: in-flight
 * instructions live in a power-of-two ring buffer indexed by sequence
 * number, each entry carries an intrusive consumer list so it is
 * re-examined only when one of its at most four producers completes
 * (O(dependence edges) instead of an O(window) rescan every cycle),
 * completions drain from a min-heap keyed by cycle, and the Table 2
 * issue constraints are tracked incrementally — in-order FIFOs for
 * config-A memory ops and for branches, an intrusive unresolved-store
 * list for config B — whose head advances wake exactly the
 * instructions those policies were blocking. Ready instructions drain
 * in ascending sequence order, which reproduces the old oldest-first
 * scan's issue order, and therefore every CycleSimResult bit, exactly.
 */
#pragma once

#include <array>
#include <cstdint>
#include <queue>
#include <utility>
#include <vector>

#include "core/chunk_window.hh"
#include "core/mlp_config.hh"
#include "core/workload_context.hh"
#include "util/seq_containers.hh"
#include "util/status.hh"

namespace mlpsim::cyclesim {

/** Timed-pipeline configuration. */
struct CycleSimConfig
{
    core::IssueConfig issue = core::IssueConfig::C;

    unsigned fetchWidth = 3;
    unsigned dispatchWidth = 3;
    unsigned issueWidth = 3;
    unsigned commitWidth = 3;

    unsigned fetchBufferSize = 32;
    unsigned issueWindowSize = 64;
    unsigned robSize = 64;

    unsigned aluLatency = 1;
    unsigned l1Latency = 3;
    unsigned l2Latency = 15;
    unsigned offChipLatency = 200;   //!< the paper's MissPenalty
    unsigned branchRedirectPenalty = 10;

    /** Model a perfect L2: off-chip accesses become L2 hits. Used to
     *  measure CPI_perf. */
    bool perfectL2 = false;

    uint64_t warmupInsts = 0;

    /**
     * Width/size/latency sanity, mirroring MlpConfig::validate().
     * Execution latencies must be >= 1: the event-driven scheduler
     * delivers a value no earlier than the cycle after issue, so a
     * zero-latency producer would be consumable a cycle late. The
     * CycleSim constructor asserts this; bench setup surfaces it as a
     * Status before any sweep starts.
     */
    Status validate() const;

    /** Metric-path segment, e.g. "cyc64C-mp200" or "...+perfL2". */
    std::string metricLabel() const;
};

/** Measurements over the post-warm-up region. */
struct CycleSimResult
{
    uint64_t cycles = 0;
    uint64_t instructions = 0;
    uint64_t offChipAccesses = 0;
    uint64_t mlpCycles = 0;        //!< cycles with >=1 access outstanding
    double mlpSum = 0.0;           //!< sum of MLP(t) over those cycles

    double
    cpi() const
    {
        return instructions ? double(cycles) / double(instructions) : 0.0;
    }

    double
    mlp() const
    {
        return mlpCycles ? mlpSum / double(mlpCycles) : 0.0;
    }

    double
    missRatePer100() const
    {
        return instructions
                   ? 100.0 * double(offChipAccesses) / double(instructions)
                   : 0.0;
    }
};

/** The timed out-of-order pipeline. */
class CycleSim
{
  public:
    CycleSim(const CycleSimConfig &config,
             const core::WorkloadContext &workload);

    /** Simulate the whole trace and return measurements. */
    CycleSimResult run();

  private:
    /** Maximum producers per instruction: 3 registers + 1 memory. */
    static constexpr unsigned maxProds = 4;

    /** Sequence number: trace index + 1 (0 = null link). The 30-bit
     *  budget comes from the packed consumer links below. */
    using Seq = util::Seq;

    /** Consumer link: (consumer seq << 2) | producer slot; 0 = none. */
    using Link = uint32_t;

    // --- RobEntry::flags bits ---
    static constexpr uint16_t kIssued = 1 << 0;
    static constexpr uint16_t kMemOp = 1 << 1;    //!< memory ordering
    static constexpr uint16_t kPrefetch = 1 << 2; //!< non-binding hint
    static constexpr uint16_t kLoadLike = 1 << 3; //!< load/prefetch/atomic
    static constexpr uint16_t kStore = 1 << 4;
    static constexpr uint16_t kBranch = 1 << 5;
    static constexpr uint16_t kSerializing = 1 << 6;
    static constexpr uint16_t kDMiss = 1 << 7;    //!< data goes off-chip
    static constexpr uint16_t kDL2 = 1 << 8;      //!< data hits in L2
    static constexpr uint16_t kUsefulPmiss = 1 << 9;
    static constexpr uint16_t kInCand = 1 << 10;  //!< in the ready pool
    static constexpr uint16_t kBlockedStore = 1 << 11; //!< config-B wait

    /**
     * One in-flight instruction: exactly one cache line. Producer seqs
     * are not stored — registration converts them into consumer-list
     * membership and the two pending counters; dstReg is cached so
     * commit never touches the trace.
     */
    struct alignas(64) RobEntry
    {
        Seq seq = 0;
        Link consumerHead = 0;         //!< newest-first waiter chain
        uint64_t completeCycle = 0;    //!< valid once issued
        Link nextConsumer[maxProds] = {}; //!< chain tail per input slot
        Seq usPrev = 0, usNext = 0;    //!< unresolved-store list (B)
        uint64_t storeKey = 0;         //!< store-map key + 1 (stores)
        uint8_t pendingProds = 0;      //!< producers not yet complete
        uint8_t pendingAddrProds = 0;  //!< ... among the address inputs
        uint8_t numAddrProds = 0;      //!< inputs 0..n) form the address
        uint8_t dstReg = 0;            //!< destination (noReg if none)
        uint16_t flags = 0;

        bool is(uint16_t f) const { return (flags & f) != 0; }
    };

    static_assert(sizeof(RobEntry) == 64,
                  "RobEntry must stay one cache line; see the "
                  "packed-layout notes in DESIGN.md section 14");

    // --- pipeline stages (each returns whether it made progress) ---
    bool commitStage();
    bool issueStage();
    bool dispatchStage();
    bool fetchStage();
    uint64_t nextEventCycle() const;

    // --- event-driven scheduler helpers ---
    void makeEntry(uint64_t idx);
    void issueEntry(RobEntry &entry);
    void drainCompletions();
    void notifyConsumers(RobEntry &producer);
    void resolveStore(RobEntry &store);
    void wakeBlockedOnStore();
    void growRing();
    void linkUnresolvedStoreTail(RobEntry &entry);
    void pushCandidate(RobEntry &entry);
    Seq popCandidate();

    bool
    candidatesEmpty() const
    {
        return candRunCursor == candRun.size() && candHeap.empty();
    }

    uint64_t robOccupancy() const { return tailSeq - headSeq; }
    RobEntry &entryRef(Seq seq) { return ring[seq & ringMask]; }

    unsigned dataLatency(const RobEntry &entry) const;
    void recordOffChip(uint64_t idx, uint64_t complete_cycle);
    void accumulateMlp(uint64_t from_cycle, uint64_t to_cycle);

    // --- configuration and inputs ---
    const CycleSimConfig cfg;
    // Held by value (it is five non-owning pointers): callers routinely
    // pass a context materialised in the constructor call itself, and a
    // reference member would dangle by the time run() executes.
    const core::WorkloadContext wl;
    core::ChunkWindow window;      //!< buffer- or stream-backed chunks
    core::InstCursor dispatchCur;  //!< makeEntry's trailing cursor
    core::InstCursor fetchCur;     //!< fetch's leading cursor

    // --- machine state ---
    uint64_t now = 0;
    std::vector<RobEntry> ring;        //!< power-of-two ring, seq & mask
    uint32_t ringMask = 0;
    uint64_t headSeq = 1;              //!< oldest in-flight seq
    uint64_t tailSeq = 1;              //!< next seq to allocate
    unsigned iwOccupancy = 0;          //!< dispatched, not yet issued
    std::array<Seq, trace::numArchRegs> regProducer{};
    util::StoreMap storeProducer;      //!< newest in-flight store per line
    util::SeqFifo memFifo;             //!< config-A in-order memory ops
    util::SeqFifo branchFifo;          //!< in-order branches (A/B/C)
    Seq usHead = 0;                    //!< unresolved stores (config B)
    Seq usTail = 0;

    // Ready-candidate pool, popped in ascending seq order: an ascending
    // run consumed by cursor plus an overflow min-heap for the rare
    // out-of-order push (see the epoch engine's identical pool).
    std::vector<Seq> candRun;
    size_t candRunCursor = 0;
    std::vector<Seq> candHeap;
    std::vector<Seq> blockedOnStore;   //!< config-B entries to re-wake

    uint64_t nextFetchIdx = 0;
    uint64_t nextDispatchIdx = 0;
    uint64_t fetchResumeCycle = 0;   //!< instruction-miss stall
    bool imissHandled = false;
    uint64_t mispredBlockSeq = 0;    //!< 0 = not blocked
    uint64_t serializeBlockSeq = 0;  //!< 0 = not blocked

    /** Completion times of outstanding useful off-chip accesses. */
    std::priority_queue<uint64_t, std::vector<uint64_t>,
                        std::greater<uint64_t>> outstanding;

    /** All scheduled wake-up times (issue completions, redirects),
     *  used to fast-forward idle stretches. */
    std::priority_queue<uint64_t, std::vector<uint64_t>,
                        std::greater<uint64_t>> events;

    /** Issued-instruction completions awaiting delivery: (cycle, seq)
     *  min-heap drained at the top of every simulated cycle. */
    std::priority_queue<std::pair<uint64_t, Seq>,
                        std::vector<std::pair<uint64_t, Seq>>,
                        std::greater<std::pair<uint64_t, Seq>>> completions;

    bool measuring = false;
    uint64_t committed = 0;
    uint64_t measureStartCycle = 0;
    CycleSimResult result;
};

} // namespace mlpsim::cyclesim
