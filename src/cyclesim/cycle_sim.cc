#include "cycle_sim.hh"

#include <algorithm>
#include <bit>
#include <functional>

#include "metrics/registry.hh"
#include "util/cancellation.hh"
#include "util/logging.hh"

namespace mlpsim::cyclesim {

using core::IssueConfig;
using trace::InstClass;
using trace::noReg;

Status
CycleSimConfig::validate() const
{
    if (issue != IssueConfig::A && issue != IssueConfig::B &&
        issue != IssueConfig::C) {
        return Status::invalidArgument(
            "the cycle simulator supports issue configs A-C only "
            "(like the paper's reference simulator)");
    }
    if (fetchWidth == 0 || dispatchWidth == 0 || issueWidth == 0 ||
        commitWidth == 0) {
        return Status::invalidArgument(
            "pipeline widths must be >= 1 (fetch ", fetchWidth,
            ", dispatch ", dispatchWidth, ", issue ", issueWidth,
            ", commit ", commitWidth, ")");
    }
    if (fetchBufferSize == 0 || issueWindowSize == 0 || robSize == 0) {
        return Status::invalidArgument(
            "window structures must be non-empty (fetch buffer ",
            fetchBufferSize, ", issue window ", issueWindowSize,
            ", ROB ", robSize, ")");
    }
    if (aluLatency == 0 || l1Latency == 0 || l2Latency == 0 ||
        offChipLatency == 0) {
        return Status::invalidArgument(
            "execution latencies must be >= 1 so a value is never "
            "consumed in the cycle that produces it (alu ", aluLatency,
            ", l1 ", l1Latency, ", l2 ", l2Latency, ", off-chip ",
            offChipLatency, ")");
    }
    return Status::okStatus();
}

std::string
CycleSimConfig::metricLabel() const
{
    std::string out = "cyc" + std::to_string(issueWindowSize) +
                      core::issueConfigName(issue);
    if (robSize != issueWindowSize)
        out += "-rob" + std::to_string(robSize);
    out += "-mp" + std::to_string(offChipLatency);
    if (perfectL2)
        out += "+perfL2";
    return out;
}

CycleSim::CycleSim(const CycleSimConfig &config,
                   const core::WorkloadContext &workload)
    : cfg(config), wl(workload), window(wl), dispatchCur(window),
      fetchCur(window)
{
    MLPSIM_ASSERT(wl.hasTrace() && wl.misses && wl.branches,
                  "workload context incomplete");
    const Status valid = cfg.validate();
    MLPSIM_ASSERT(valid.ok(), valid.message());
    // Consumer links pack a sequence number into 30 bits (DESIGN.md
    // section 14); same hard input limit as the epoch engine.
    MLPSIM_ASSERT(wl.size() < (uint64_t(1) << 30),
                  "trace too large for packed sequence links");

    // The ring only needs to cover the architectural ROB; cap the
    // up-front allocation so huge configured windows start small and
    // growRing() picks the rest up on demand.
    const uint64_t init_cap = std::bit_ceil(
        std::min<uint64_t>(std::max<uint64_t>(cfg.robSize, 16), 8192));
    ring.assign(size_t(init_cap), RobEntry{});
    ringMask = uint32_t(init_cap - 1);
    storeProducer.reset(size_t(std::min<uint64_t>(2 * cfg.robSize, 16384)));
    memFifo.reset(256);
    branchFifo.reset(256);
    candRun.reserve(256);
    candHeap.reserve(64);
}

void
CycleSim::growRing()
{
    std::vector<RobEntry> next(ring.size() * 2);
    const uint32_t new_mask = uint32_t(next.size() - 1);
    for (uint64_t s = headSeq; s < tailSeq; ++s)
        next[size_t(s) & new_mask] = ring[size_t(s) & ringMask];
    ring.swap(next);
    ringMask = new_mask;
}

void
CycleSim::linkUnresolvedStoreTail(RobEntry &entry)
{
    const Seq seq = entry.seq;
    entry.usPrev = usTail;
    entry.usNext = 0;
    if (usTail != 0)
        entryRef(usTail).usNext = seq;
    else
        usHead = seq;
    usTail = seq;
}

void
CycleSim::pushCandidate(RobEntry &entry)
{
    if (entry.is(kInCand) || entry.is(kIssued))
        return;
    entry.flags |= kInCand;
    const Seq seq = entry.seq;
    if (candRun.empty() || seq > candRun.back())
        candRun.push_back(seq);
    else {
        candHeap.push_back(seq);
        std::push_heap(candHeap.begin(), candHeap.end(),
                       std::greater<>());
    }
}

CycleSim::Seq
CycleSim::popCandidate()
{
    // The run past its cursor is ascending and each seq is pooled at
    // most once (kInCand), so the global minimum is the smaller of the
    // two lane heads.
    const bool run_has = candRunCursor != candRun.size();
    if (!candHeap.empty() &&
        (!run_has || candHeap.front() < candRun[candRunCursor])) {
        std::pop_heap(candHeap.begin(), candHeap.end(),
                      std::greater<>());
        const Seq seq = candHeap.back();
        candHeap.pop_back();
        return seq;
    }
    const Seq seq = candRun[candRunCursor++];
    if (candRunCursor == candRun.size()) {
        candRun.clear();
        candRunCursor = 0;
    }
    return seq;
}

unsigned
CycleSim::dataLatency(const RobEntry &entry) const
{
    if (entry.is(kDMiss))
        return cfg.perfectL2 ? cfg.l2Latency : cfg.offChipLatency;
    if (entry.is(kDL2))
        return cfg.l2Latency;
    return cfg.l1Latency;
}

void
CycleSim::makeEntry(uint64_t idx)
{
    // Field reads straight from the chunk columns: dispatch never
    // needs pc or payload, so skip get()'s full record reassembly.
    const trace::TraceChunk &ck = dispatchCur.at(idx);
    const uint32_t ci = uint32_t(idx - ck.base);
    const uint8_t dstReg = ck.dst[ci];
    const uint8_t src0 = ck.src0[ci];
    const uint8_t src1 = ck.src1[ci];
    const uint8_t src2 = ck.src2[ci];
    const uint64_t effAddr = ck.effAddr[ci];
    const Seq seq = Seq(idx + 1);
    RobEntry &entry = entryRef(seq);
    entry = RobEntry{};
    entry.seq = seq;

    // Class-determined flag bits come from a table; only the atomic
    // memory case (Serializing with an effective address, an isMem()
    // instruction per trace/instruction.hh) needs a data-dependent
    // adjustment.
    static constexpr uint16_t classFlags[8] = {
        /* Alu         */ 0,
        /* Load        */ kMemOp | kLoadLike,
        /* Store       */ kMemOp | kStore,
        /* Branch      */ kBranch,
        /* Prefetch    */ kMemOp | kPrefetch | kLoadLike,
        /* Serializing */ kSerializing,
        0, 0,
    };
    const InstClass cls = ck.cls(ci);
    const bool atomic_mem =
        cls == InstClass::Serializing && effAddr != 0;
    const bool is_prefetch = cls == InstClass::Prefetch;
    uint16_t flags = classFlags[size_t(cls) & 7];
    if (atomic_mem)
        flags |= kMemOp | kLoadLike;
    if (wl.misses->dataMiss(idx))
        flags |= kDMiss;
    if (wl.misses->usefulPrefetch(idx))
        flags |= kUsefulPmiss;
    if (wl.misses->dataL2Hit(idx))
        flags |= kDL2;
    entry.flags = flags;
    entry.dstReg = dstReg;

    // Register renaming: capture the current in-flight producer of each
    // source, deduplicated (a producer feeding two sources still
    // completes once). For stores, src[0]/src[2] compute the address
    // and src[1] is the data; address producers are recorded first so
    // the config-B "wait for earlier store addresses" check can test
    // them separately. Loads and atomic reads keep one slot in reserve
    // for the memory dependence below, so a tracked store-to-load
    // forwarding edge is never discarded.
    const bool wants_forward = (flags & kLoadLike) != 0 && !is_prefetch;
    const unsigned reg_limit = wants_forward ? maxProds - 1 : maxProds;
    Seq prods[maxProds];
    unsigned num_prods = 0;
    auto capture = [&](uint8_t reg) {
        if (reg == noReg)
            return;
        const Seq prod = regProducer[reg];
        if (prod == 0)
            return;
        for (unsigned p = 0; p < num_prods; ++p) {
            if (prods[p] == prod)
                return;
        }
        MLPSIM_ASSERT(num_prods < reg_limit,
                      "register producer capture overflow");
        prods[num_prods++] = prod;
    };
    if (entry.is(kStore)) {
        capture(src0);
        capture(src2);
        entry.numAddrProds = uint8_t(num_prods);
        capture(src1);
    } else {
        capture(src0);
        capture(src1);
        capture(src2);
        entry.numAddrProds = uint8_t(num_prods);
    }

    // Memory dependence: a load (or atomic read) whose address was
    // written by an in-flight store forwards from that store, so the
    // store's execution is an additional producer.
    const uint64_t mem_key = effAddr >> 3;
    if (wants_forward) {
        const Seq forward = storeProducer.find(mem_key);
        if (forward != 0) {
            bool dup = false;
            for (unsigned p = 0; p < num_prods; ++p)
                dup |= prods[p] == forward;
            if (!dup) {
                MLPSIM_ASSERT(num_prods < maxProds,
                              "no producer slot left for the memory "
                              "dependence");
                prods[num_prods++] = forward;
            }
        }
    }
    if (entry.is(kStore) || atomic_mem) {
        storeProducer.put(mem_key, seq);
        entry.storeKey = mem_key + 1;
    }

    if (dstReg != noReg)
        regProducer[dstReg] = seq;

    // Producer registration: a producer whose value is already
    // available contributes nothing; every other producer gets this
    // entry on its consumer list and bumps the pending counters that
    // stand in for the old per-cycle ready-scan.
    for (unsigned p = 0; p < num_prods; ++p) {
        if (uint64_t(prods[p]) < headSeq)
            continue; // retired, value long since available
        RobEntry &producer = entryRef(prods[p]);
        if (producer.is(kIssued) && producer.completeCycle <= now)
            continue;
        entry.nextConsumer[p] = producer.consumerHead;
        producer.consumerHead = (Link(seq) << 2) | Link(p);
        ++entry.pendingProds;
        if (p < entry.numAddrProds)
            ++entry.pendingAddrProds;
    }

    // Issue-constraint bookkeeping (Table 2): config A keeps *all*
    // memory operations in order — prefetches included, unlike the
    // epoch engine's idealised treatment — and branches issue in order
    // for every supported config.
    if (cfg.issue == IssueConfig::A && entry.is(kMemOp))
        memFifo.push(seq);
    if (entry.is(kBranch))
        branchFifo.push(seq);
    if (cfg.issue == IssueConfig::B && entry.is(kStore) &&
        entry.pendingAddrProds != 0)
        linkUnresolvedStoreTail(entry);
    if (entry.pendingProds == 0)
        pushCandidate(entry);
}

void
CycleSim::recordOffChip(uint64_t idx, uint64_t complete_cycle)
{
    outstanding.push(complete_cycle);
    events.push(complete_cycle);
    if (idx >= cfg.warmupInsts)
        ++result.offChipAccesses;
}

void
CycleSim::drainCompletions()
{
    while (!completions.empty() && completions.top().first <= now) {
        const Seq seq = completions.top().second;
        completions.pop();
        RobEntry &entry = entryRef(seq);
        // A completion always fires no later than the cycle its entry
        // could first retire, so the slot cannot have been recycled.
        MLPSIM_ASSERT(entry.seq == seq, "completion for a recycled slot");
        notifyConsumers(entry);
    }
}

void
CycleSim::notifyConsumers(RobEntry &producer)
{
    Link link = producer.consumerHead;
    producer.consumerHead = 0;
    while (link != 0) {
        RobEntry &consumer = entryRef(Seq(link >> 2));
        const unsigned slot = link & 3;
        link = consumer.nextConsumer[slot];
        consumer.nextConsumer[slot] = 0;
        --consumer.pendingProds;
        if (slot < consumer.numAddrProds &&
            --consumer.pendingAddrProds == 0 && consumer.is(kStore) &&
            cfg.issue == IssueConfig::B)
            resolveStore(consumer);
        if (consumer.pendingProds == 0)
            pushCandidate(consumer);
    }
}

void
CycleSim::resolveStore(RobEntry &store)
{
    const bool was_head = (usHead == store.seq);
    if (store.usPrev != 0)
        entryRef(store.usPrev).usNext = store.usNext;
    else
        usHead = store.usNext;
    if (store.usNext != 0)
        entryRef(store.usNext).usPrev = store.usPrev;
    else
        usTail = store.usPrev;
    store.usPrev = store.usNext = 0;
    // Only the oldest unresolved store gates config-B issue, so only
    // its resolution can unblock anyone.
    if (was_head)
        wakeBlockedOnStore();
}

void
CycleSim::wakeBlockedOnStore()
{
    for (const Seq seq : blockedOnStore) {
        RobEntry &entry = entryRef(seq);
        if (entry.seq != seq)
            continue; // retired, slot since reused
        entry.flags &= ~kBlockedStore;
        pushCandidate(entry);
    }
    blockedOnStore.clear();
}

bool
CycleSim::commitStage()
{
    bool any = false;
    for (unsigned n = 0; n < cfg.commitWidth && headSeq != tailSeq; ++n) {
        RobEntry &head = entryRef(Seq(headSeq));
        if (!head.is(kIssued) || head.completeCycle > now)
            break;
        if (head.dstReg != noReg && regProducer[head.dstReg] == head.seq)
            regProducer[head.dstReg] = 0;
        if (head.storeKey != 0)
            storeProducer.eraseMatching(head.storeKey - 1, head.seq);
        if (serializeBlockSeq == head.seq)
            serializeBlockSeq = 0;
        ++headSeq;
        ++committed;
        any = true;
        if (!measuring && committed >= cfg.warmupInsts) {
            measuring = true;
            measureStartCycle = now;
        }
    }
    return any;
}

void
CycleSim::issueEntry(RobEntry &entry)
{
    entry.flags |= kIssued;
    MLPSIM_ASSERT(iwOccupancy > 0, "issue window underflow");
    --iwOccupancy;

    unsigned latency = cfg.aluLatency;
    if (entry.is(kPrefetch)) {
        latency = 1; // prefetches are fire-and-forget
    } else if (entry.is(kLoadLike)) {
        latency = dataLatency(entry);
    }
    entry.completeCycle = now + latency;
    events.push(entry.completeCycle);
    completions.push({entry.completeCycle, entry.seq});

    const uint64_t idx = uint64_t(entry.seq) - 1;
    if (!cfg.perfectL2 && (entry.is(kDMiss) || entry.is(kUsefulPmiss)))
        recordOffChip(idx, now + cfg.offChipLatency);

    if (mispredBlockSeq == entry.seq) {
        // The blocking mispredicted branch now has a known resolution
        // time; convert the stall into a timed redirect.
        fetchResumeCycle =
            std::max(fetchResumeCycle,
                     entry.completeCycle + cfg.branchRedirectPenalty);
        events.push(fetchResumeCycle);
        mispredBlockSeq = 0;
    }

    // Advancing an in-order queue is itself a wake event: the next
    // queue head may have been dropped from the pool waiting for it.
    if (cfg.issue == IssueConfig::A && entry.is(kMemOp)) {
        memFifo.pop();
        if (!memFifo.empty())
            pushCandidate(entryRef(memFifo.front()));
    }
    if (entry.is(kBranch)) {
        branchFifo.pop();
        if (!branchFifo.empty())
            pushCandidate(entryRef(branchFifo.front()));
    }
}

bool
CycleSim::issueStage()
{
    // Drain ready candidates oldest-first. Each pop either issues
    // (counted against the issue width) or parks the entry on the wake
    // event that can next change its eligibility: operand completion,
    // an in-order FIFO advance, or the oldest unresolved store
    // resolving. Width exhaustion leaves the rest pooled for the next
    // cycle, which the old scan expressed by re-walking them. The
    // constraint predicates below reproduce the scan's "seen earlier
    // unissued/unresolved" flags: a flag was raised exactly when an
    // older entry of the guarded class had not issued by this cycle.
    bool any = false;
    unsigned issued_now = 0;
    while (issued_now < cfg.issueWidth && !candidatesEmpty()) {
        RobEntry &entry = entryRef(popCandidate());
        entry.flags &= ~kInCand;
        if (entry.is(kIssued))
            continue;
        if (entry.pendingProds != 0)
            continue; // woken by a queue advance ahead of its operands
        if (cfg.issue == IssueConfig::A && entry.is(kMemOp) &&
            memFifo.front() != entry.seq)
            continue; // an older memory op has not issued
        if (entry.is(kBranch) && branchFifo.front() != entry.seq)
            continue; // an older branch has not issued
        if (cfg.issue == IssueConfig::B && entry.is(kLoadLike) &&
            usHead != 0 && uint64_t(usHead) < entry.seq) {
            entry.flags |= kBlockedStore;
            blockedOnStore.push_back(entry.seq);
            continue; // an older store's address is unresolved
        }
        issueEntry(entry);
        ++issued_now;
        any = true;
    }
    return any;
}

bool
CycleSim::dispatchStage()
{
    bool any = false;
    for (unsigned n = 0; n < cfg.dispatchWidth; ++n) {
        if (nextDispatchIdx >= nextFetchIdx)
            break;
        if (serializeBlockSeq != 0)
            break; // draining behind a serializing instruction
        if (robOccupancy() >= cfg.robSize ||
            iwOccupancy >= cfg.issueWindowSize) {
            break;
        }
        const trace::TraceChunk &ck = dispatchCur.at(nextDispatchIdx);
        if (ck.isSerializing(uint32_t(nextDispatchIdx - ck.base))) {
            // Straightforward drain: dispatch only into an empty ROB
            // and block younger dispatch until it commits.
            if (robOccupancy() != 0)
                break;
            if (robOccupancy() == ring.size())
                growRing();
            makeEntry(nextDispatchIdx);
            serializeBlockSeq = tailSeq;
            ++tailSeq;
            ++iwOccupancy;
            ++nextDispatchIdx;
            any = true;
            break;
        }
        if (robOccupancy() == ring.size())
            growRing();
        makeEntry(nextDispatchIdx);
        ++tailSeq;
        ++iwOccupancy;
        ++nextDispatchIdx;
        any = true;
    }
    // Everything below the dispatch point is dead to this pipeline:
    // the stream-backed window may drop those chunks.
    if (any)
        window.releaseBefore(nextDispatchIdx);
    return any;
}

bool
CycleSim::fetchStage()
{
    if (now < fetchResumeCycle || mispredBlockSeq != 0)
        return false;

    bool any = false;
    const uint64_t trace_size = wl.size();
    for (unsigned n = 0; n < cfg.fetchWidth; ++n) {
        if (nextFetchIdx >= trace_size ||
            nextFetchIdx - nextDispatchIdx >= cfg.fetchBufferSize) {
            break;
        }
        const uint64_t idx = nextFetchIdx;
        if (wl.misses->fetchMiss(idx) && !imissHandled) {
            imissHandled = true;
            const unsigned latency =
                cfg.perfectL2 ? cfg.l2Latency : cfg.offChipLatency;
            fetchResumeCycle = now + latency;
            events.push(fetchResumeCycle);
            if (!cfg.perfectL2)
                recordOffChip(idx, now + cfg.offChipLatency);
            any = true;
            break;
        }
        imissHandled = false;
        ++nextFetchIdx;
        any = true;

        const trace::TraceChunk &ck = fetchCur.at(idx);
        if (ck.isBranch(uint32_t(idx - ck.base)) &&
            wl.branches->isMispredict(idx)) {
            // Trace-driven wrong path: fetch stalls until the branch
            // resolves (wrong-path work would be useless anyway and
            // must not contribute to MLP).
            mispredBlockSeq = idx + 1;
            break;
        }
    }
    return any;
}

uint64_t
CycleSim::nextEventCycle() const
{
    uint64_t next = ~0ULL;
    if (!events.empty())
        next = events.top();
    if (fetchResumeCycle > now)
        next = std::min(next, fetchResumeCycle);
    return next;
}

void
CycleSim::accumulateMlp(uint64_t from_cycle, uint64_t to_cycle)
{
    while (from_cycle < to_cycle) {
        while (!outstanding.empty() && outstanding.top() <= from_cycle)
            outstanding.pop();
        if (outstanding.empty())
            return;
        const uint64_t seg_end =
            std::min<uint64_t>(to_cycle, outstanding.top());
        if (measuring) {
            result.mlpSum +=
                double(outstanding.size()) * double(seg_end - from_cycle);
            result.mlpCycles += seg_end - from_cycle;
        }
        from_cycle = seg_end;
    }
}

CycleSimResult
CycleSim::run()
{
    const uint64_t trace_size = wl.size();
    result = CycleSimResult{};
    if (cfg.warmupInsts == 0) {
        measuring = true;
        measureStartCycle = 0;
    }

    // Livelock guard: generous upper bound on total simulated cycles,
    // computed with saturating arithmetic so a large --insts x large
    // --mp sweep cannot overflow it into a spurious (or absent) trip.
    uint64_t guard = uint64_t(cfg.offChipLatency) + 64;
    if (__builtin_mul_overflow(guard, trace_size, &guard) ||
        __builtin_add_overflow(guard, uint64_t(10'000'000), &guard))
        guard = ~uint64_t(0);

    // Cancellation poll cadence: every ~64K simulated cycles. Cheap
    // against the per-cycle work in between, frequent enough that a
    // deadline lands within a fraction of a second of wall time.
    uint64_t next_poll = now + 65536;

    while (committed < trace_size) {
        if (now >= next_poll) {
            pollCancellation();
            next_poll = now + 65536;
        }
        // Deliver every value due by this cycle before any stage looks
        // at readiness: a completion always lands no later than the
        // first cycle its entry could retire, so consumer links are
        // walked strictly before their slots can be recycled.
        drainCompletions();

        bool work = false;
        work |= commitStage();
        work |= issueStage();
        work |= dispatchStage();
        work |= fetchStage();

        uint64_t next = now + 1;
        if (!work) {
            const uint64_t event = nextEventCycle();
            if (event == ~0ULL)
                panic("cycle sim deadlock at cycle ", now, ", committed ",
                      committed, " of ", trace_size);
            next = std::max(next, event);
        }
        while (!events.empty() && events.top() <= now)
            events.pop();

        accumulateMlp(now, next);
        if (guard < next - now)
            panic("cycle sim livelock at cycle ", now);
        guard -= next - now;
        now = next;
    }

    result.cycles = measuring ? now - measureStartCycle : 0;
    // Guarded like epoch_engine.cc / inorder_model.cc: a warm-up at or
    // past the end of the trace measures nothing (instead of wrapping
    // to ~2^64 and poisoning CPI).
    result.instructions =
        committed > cfg.warmupInsts ? committed - cfg.warmupInsts : 0;

    if (metrics::enabled()) {
        auto &m = metrics::cur();
        m.add(metrics::scopedPath("cyclesim/runs"));
        m.add(metrics::scopedPath("cyclesim/cycles"), result.cycles);
        m.add(metrics::scopedPath("cyclesim/instructions"),
              result.instructions);
        m.add(metrics::scopedPath("cyclesim/offchip_accesses"),
              result.offChipAccesses);
        m.add(metrics::scopedPath("cyclesim/mlp_cycles"),
              result.mlpCycles);
        m.set(metrics::scopedPath("cyclesim/cpi"), result.cpi());
        m.set(metrics::scopedPath("cyclesim/mlp"), result.mlp());
    }
    return result;
}

} // namespace mlpsim::cyclesim
