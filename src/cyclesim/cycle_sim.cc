#include "cycle_sim.hh"

#include <algorithm>

#include "metrics/registry.hh"
#include "util/cancellation.hh"
#include "util/logging.hh"

namespace mlpsim::cyclesim {

using core::IssueConfig;
using trace::InstClass;
using trace::Instruction;
using trace::noReg;

std::string
CycleSimConfig::metricLabel() const
{
    std::string out = "cyc" + std::to_string(issueWindowSize) +
                      core::issueConfigName(issue);
    if (robSize != issueWindowSize)
        out += "-rob" + std::to_string(robSize);
    out += "-mp" + std::to_string(offChipLatency);
    if (perfectL2)
        out += "+perfL2";
    return out;
}

CycleSim::CycleSim(const CycleSimConfig &config,
                   const core::WorkloadContext &workload)
    : cfg(config), wl(workload)
{
    MLPSIM_ASSERT(wl.buffer && wl.misses && wl.branches,
                  "workload context incomplete");
    MLPSIM_ASSERT(cfg.issue == IssueConfig::A ||
                      cfg.issue == IssueConfig::B ||
                      cfg.issue == IssueConfig::C,
                  "the cycle simulator supports issue configs A-C only "
                  "(like the paper's reference simulator)");
}

bool
CycleSim::producerComplete(uint64_t prod_seq) const
{
    if (prod_seq == 0 || prod_seq < headSeq)
        return true;
    if (prod_seq >= headSeq + rob.size())
        return false;
    const RobEntry &producer = rob[size_t(prod_seq - headSeq)];
    return producer.issued && producer.completeCycle <= now;
}

bool
CycleSim::operandsComplete(const RobEntry &entry) const
{
    for (unsigned p = 0; p < entry.numProds; ++p) {
        if (!producerComplete(entry.prods[p]))
            return false;
    }
    return true;
}

bool
CycleSim::storeAddrComplete(const RobEntry &entry) const
{
    for (unsigned p = 0; p < entry.numAddrProds; ++p) {
        if (!producerComplete(entry.prods[p]))
            return false;
    }
    return true;
}

unsigned
CycleSim::dataLatency(const RobEntry &entry) const
{
    if (entry.dMiss)
        return cfg.perfectL2 ? cfg.l2Latency : cfg.offChipLatency;
    if (entry.dL2)
        return cfg.l2Latency;
    return cfg.l1Latency;
}

CycleSim::RobEntry
CycleSim::makeEntry(uint64_t idx)
{
    const Instruction &inst = wl.buffer->at(idx);
    RobEntry entry;
    entry.seq = idx + 1;

    const bool atomic_mem =
        inst.cls() == InstClass::Serializing && inst.effAddr != 0;
    entry.isMemOp = inst.isMem();
    entry.isPrefetch = inst.isPrefetch();
    entry.isLoadLike = inst.isLoad() || inst.isPrefetch() || atomic_mem;
    entry.isStore = inst.isStore();
    entry.isBranch = inst.isBranch();
    entry.isSerializing = inst.isSerializing();
    entry.dMiss = wl.misses->dataMiss(idx);
    entry.usefulPmiss = wl.misses->usefulPrefetch(idx);
    entry.dL2 = wl.misses->dataL2Hit(idx);

    auto capture = [&](uint8_t reg) {
        if (reg == noReg)
            return;
        const uint64_t prod = regProducer[reg];
        if (prod != 0)
            entry.prods[entry.numProds++] = prod;
    };
    if (entry.isStore) {
        capture(inst.src[0]);
        capture(inst.src[2]);
        entry.numAddrProds = entry.numProds;
        capture(inst.src[1]);
    } else {
        for (unsigned s = 0; s < trace::maxSrcRegs; ++s)
            capture(inst.src[s]);
        entry.numAddrProds = entry.numProds;
    }

    const uint64_t mem_key = inst.effAddr >> 3;
    if (entry.isLoadLike && !inst.isPrefetch()) {
        auto it = storeProducer.find(mem_key);
        if (it != storeProducer.end() && entry.numProds < 4)
            entry.prods[entry.numProds++] = it->second;
    }
    if (entry.isStore || atomic_mem)
        storeProducer[mem_key] = entry.seq;

    if (inst.hasDst())
        regProducer[inst.dst] = entry.seq;
    return entry;
}

void
CycleSim::recordOffChip(uint64_t idx, uint64_t complete_cycle)
{
    outstanding.push(complete_cycle);
    events.push(complete_cycle);
    if (idx >= cfg.warmupInsts)
        ++result.offChipAccesses;
}

bool
CycleSim::commitStage()
{
    bool any = false;
    for (unsigned n = 0; n < cfg.commitWidth && !rob.empty(); ++n) {
        const RobEntry &head = rob.front();
        if (!head.issued || head.completeCycle > now)
            break;
        const Instruction &inst = wl.buffer->at(head.seq - 1);
        if (inst.hasDst() && regProducer[inst.dst] == head.seq)
            regProducer[inst.dst] = 0;
        if (head.isStore || (head.isSerializing && inst.effAddr != 0)) {
            auto it = storeProducer.find(inst.effAddr >> 3);
            if (it != storeProducer.end() && it->second == head.seq)
                storeProducer.erase(it);
        }
        if (serializeBlockSeq == head.seq)
            serializeBlockSeq = 0;
        rob.pop_front();
        ++headSeq;
        ++committed;
        any = true;
        if (!measuring && committed >= cfg.warmupInsts) {
            measuring = true;
            measureStartCycle = now;
        }
    }
    return any;
}

bool
CycleSim::issueStage()
{
    bool any = false;
    unsigned issued_now = 0;
    bool seen_unissued_mem = false;
    bool seen_unresolved_store = false;
    bool seen_unissued_branch = false;

    std::vector<uint64_t> still;
    still.reserve(unissued.size());

    for (uint64_t seq : unissued) {
        RobEntry &entry = rob[size_t(seq - headSeq)];

        bool eligible = issued_now < cfg.issueWidth;
        if (cfg.issue == IssueConfig::A && entry.isMemOp &&
            seen_unissued_mem) {
            eligible = false;
        }
        if (cfg.issue == IssueConfig::B && entry.isLoadLike &&
            seen_unresolved_store) {
            eligible = false;
        }
        if (entry.isBranch && seen_unissued_branch)
            eligible = false; // branches in order for configs A-C

        if (eligible && operandsComplete(entry)) {
            entry.issued = true;
            ++issued_now;
            any = true;

            unsigned latency = cfg.aluLatency;
            if (entry.isPrefetch) {
                latency = 1; // prefetches are fire-and-forget
            } else if (entry.isLoadLike) {
                latency = dataLatency(entry);
            }
            entry.completeCycle = now + latency;
            events.push(entry.completeCycle);

            const uint64_t idx = entry.seq - 1;
            if (!cfg.perfectL2 && (entry.dMiss || entry.usefulPmiss))
                recordOffChip(idx, now + cfg.offChipLatency);

            if (mispredBlockSeq == entry.seq) {
                // The blocking mispredicted branch now has a known
                // resolution time; convert the stall into a timed
                // redirect.
                fetchResumeCycle =
                    std::max(fetchResumeCycle,
                             entry.completeCycle +
                                 cfg.branchRedirectPenalty);
                events.push(fetchResumeCycle);
                mispredBlockSeq = 0;
            }
            continue;
        }

        still.push_back(seq);
        if (entry.isMemOp)
            seen_unissued_mem = true;
        if (entry.isStore && !storeAddrComplete(entry))
            seen_unresolved_store = true;
        if (entry.isBranch)
            seen_unissued_branch = true;
    }

    unissued.swap(still);
    return any;
}

bool
CycleSim::dispatchStage()
{
    bool any = false;
    for (unsigned n = 0; n < cfg.dispatchWidth; ++n) {
        if (nextDispatchIdx >= nextFetchIdx)
            break;
        if (serializeBlockSeq != 0)
            break; // draining behind a serializing instruction
        if (rob.size() >= cfg.robSize ||
            unissued.size() >= cfg.issueWindowSize) {
            break;
        }
        const Instruction &inst = wl.buffer->at(nextDispatchIdx);
        if (inst.isSerializing()) {
            // Straightforward drain: dispatch only into an empty ROB
            // and block younger dispatch until it commits.
            if (!rob.empty())
                break;
            rob.push_back(makeEntry(nextDispatchIdx));
            unissued.push_back(rob.back().seq);
            serializeBlockSeq = rob.back().seq;
            ++nextDispatchIdx;
            any = true;
            break;
        }
        rob.push_back(makeEntry(nextDispatchIdx));
        unissued.push_back(rob.back().seq);
        ++nextDispatchIdx;
        any = true;
    }
    return any;
}

bool
CycleSim::fetchStage()
{
    if (now < fetchResumeCycle || mispredBlockSeq != 0)
        return false;

    bool any = false;
    const uint64_t trace_size = wl.size();
    for (unsigned n = 0; n < cfg.fetchWidth; ++n) {
        if (nextFetchIdx >= trace_size ||
            nextFetchIdx - nextDispatchIdx >= cfg.fetchBufferSize) {
            break;
        }
        const uint64_t idx = nextFetchIdx;
        if (wl.misses->fetchMiss(idx) && !imissHandled) {
            imissHandled = true;
            const unsigned latency =
                cfg.perfectL2 ? cfg.l2Latency : cfg.offChipLatency;
            fetchResumeCycle = now + latency;
            events.push(fetchResumeCycle);
            if (!cfg.perfectL2)
                recordOffChip(idx, now + cfg.offChipLatency);
            any = true;
            break;
        }
        imissHandled = false;
        ++nextFetchIdx;
        any = true;

        const Instruction &inst = wl.buffer->at(idx);
        if (inst.isBranch() && wl.branches->isMispredict(idx)) {
            // Trace-driven wrong path: fetch stalls until the branch
            // resolves (wrong-path work would be useless anyway and
            // must not contribute to MLP).
            mispredBlockSeq = idx + 1;
            break;
        }
    }
    return any;
}

uint64_t
CycleSim::nextEventCycle() const
{
    uint64_t next = ~0ULL;
    if (!events.empty())
        next = events.top();
    if (fetchResumeCycle > now)
        next = std::min(next, fetchResumeCycle);
    return next;
}

void
CycleSim::accumulateMlp(uint64_t from_cycle, uint64_t to_cycle)
{
    while (from_cycle < to_cycle) {
        while (!outstanding.empty() && outstanding.top() <= from_cycle)
            outstanding.pop();
        if (outstanding.empty())
            return;
        const uint64_t seg_end =
            std::min<uint64_t>(to_cycle, outstanding.top());
        if (measuring) {
            result.mlpSum +=
                double(outstanding.size()) * double(seg_end - from_cycle);
            result.mlpCycles += seg_end - from_cycle;
        }
        from_cycle = seg_end;
    }
}

CycleSimResult
CycleSim::run()
{
    const uint64_t trace_size = wl.size();
    result = CycleSimResult{};
    if (cfg.warmupInsts == 0) {
        measuring = true;
        measureStartCycle = 0;
    }

    uint64_t guard =
        uint64_t(cfg.offChipLatency + 64) * trace_size + 10'000'000;

    // Cancellation poll cadence: every ~64K simulated cycles. Cheap
    // against the per-cycle work in between, frequent enough that a
    // deadline lands within a fraction of a second of wall time.
    uint64_t next_poll = now + 65536;

    while (committed < trace_size) {
        if (now >= next_poll) {
            pollCancellation();
            next_poll = now + 65536;
        }
        bool work = false;
        work |= commitStage();
        work |= issueStage();
        work |= dispatchStage();
        work |= fetchStage();

        uint64_t next = now + 1;
        if (!work) {
            const uint64_t event = nextEventCycle();
            if (event == ~0ULL)
                panic("cycle sim deadlock at cycle ", now, ", committed ",
                      committed, " of ", trace_size);
            next = std::max(next, event);
        }
        while (!events.empty() && events.top() <= now)
            events.pop();

        accumulateMlp(now, next);
        if (guard < next - now)
            panic("cycle sim livelock at cycle ", now);
        guard -= next - now;
        now = next;
    }

    result.cycles = now - measureStartCycle;
    result.instructions = committed - cfg.warmupInsts;

    if (metrics::enabled()) {
        auto &m = metrics::cur();
        m.add(metrics::scopedPath("cyclesim/runs"));
        m.add(metrics::scopedPath("cyclesim/cycles"), result.cycles);
        m.add(metrics::scopedPath("cyclesim/instructions"),
              result.instructions);
        m.add(metrics::scopedPath("cyclesim/offchip_accesses"),
              result.offChipAccesses);
        m.add(metrics::scopedPath("cyclesim/mlp_cycles"),
              result.mlpCycles);
        m.set(metrics::scopedPath("cyclesim/cpi"), result.cpi());
        m.set(metrics::scopedPath("cyclesim/mlp"), result.mlp());
    }
    return result;
}

} // namespace mlpsim::cyclesim
