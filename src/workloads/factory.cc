#include "factory.hh"

#include "util/logging.hh"
#include "workloads/database.hh"
#include "workloads/specjbb.hh"
#include "workloads/specweb.hh"

namespace mlpsim::workloads {

const std::vector<std::string> &
commercialWorkloadNames()
{
    static const std::vector<std::string> names{
        "database", "specjbb2000", "specweb99"};
    return names;
}

std::unique_ptr<WorkloadBase>
makeWorkload(const std::string &name)
{
    if (name == "database")
        return std::make_unique<DatabaseWorkload>();
    if (name == "specjbb2000")
        return std::make_unique<SpecJbbWorkload>();
    if (name == "specweb99")
        return std::make_unique<SpecWebWorkload>();
    fatal("unknown workload '", name,
          "' (expected database|specjbb2000|specweb99)");
}

} // namespace mlpsim::workloads
