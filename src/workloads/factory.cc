#include "factory.hh"

#include "util/logging.hh"
#include "workloads/database.hh"
#include "workloads/specjbb.hh"
#include "workloads/specweb.hh"

namespace mlpsim::workloads {

const std::vector<std::string> &
commercialWorkloadNames()
{
    static const std::vector<std::string> names{
        "database", "specjbb2000", "specweb99"};
    return names;
}

Expected<std::unique_ptr<WorkloadBase>>
tryMakeWorkload(const std::string &name)
{
    if (name == "database")
        return std::unique_ptr<WorkloadBase>(
            std::make_unique<DatabaseWorkload>());
    if (name == "specjbb2000")
        return std::unique_ptr<WorkloadBase>(
            std::make_unique<SpecJbbWorkload>());
    if (name == "specweb99")
        return std::unique_ptr<WorkloadBase>(
            std::make_unique<SpecWebWorkload>());
    return Status::notFound("unknown workload '", name,
                            "' (expected database|specjbb2000|specweb99)");
}

std::unique_ptr<WorkloadBase>
makeWorkload(const std::string &name)
{
    return tryMakeWorkload(name).orFatal();
}

} // namespace mlpsim::workloads
