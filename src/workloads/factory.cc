#include "factory.hh"

#include "util/logging.hh"
#include "util/rng.hh"
#include "workloads/database.hh"
#include "workloads/specjbb.hh"
#include "workloads/specweb.hh"

namespace mlpsim::workloads {

const std::vector<std::string> &
commercialWorkloadNames()
{
    static const std::vector<std::string> names{
        "database", "specjbb2000", "specweb99"};
    return names;
}

Expected<std::unique_ptr<WorkloadBase>>
tryMakeWorkload(const std::string &name)
{
    if (name == "database")
        return std::unique_ptr<WorkloadBase>(
            std::make_unique<DatabaseWorkload>());
    if (name == "specjbb2000")
        return std::unique_ptr<WorkloadBase>(
            std::make_unique<SpecJbbWorkload>());
    if (name == "specweb99")
        return std::unique_ptr<WorkloadBase>(
            std::make_unique<SpecWebWorkload>());
    return Status::notFound("unknown workload '", name,
                            "' (expected database|specjbb2000|specweb99)");
}

Expected<std::unique_ptr<WorkloadBase>>
tryMakeWorkload(const std::string &name, uint64_t seed)
{
    if (name == "database") {
        DatabaseParams params;
        params.seed = seed;
        return std::unique_ptr<WorkloadBase>(
            std::make_unique<DatabaseWorkload>(params));
    }
    if (name == "specjbb2000") {
        SpecJbbParams params;
        params.seed = seed;
        return std::unique_ptr<WorkloadBase>(
            std::make_unique<SpecJbbWorkload>(params));
    }
    if (name == "specweb99") {
        SpecWebParams params;
        params.seed = seed;
        return std::unique_ptr<WorkloadBase>(
            std::make_unique<SpecWebWorkload>(params));
    }
    return Status::notFound("unknown workload '", name,
                            "' (expected database|specjbb2000|specweb99)");
}

std::unique_ptr<WorkloadBase>
makeWorkload(const std::string &name)
{
    return tryMakeWorkload(name).orFatal();
}

std::unique_ptr<WorkloadBase>
makeWorkload(const std::string &name, uint64_t seed)
{
    return tryMakeWorkload(name, seed).orFatal();
}

uint64_t
workloadSeed(const std::string &name)
{
    // FNV-1a, then splitMix64 to spread the hash's low entropy across
    // all 64 bits before it seeds xoshiro256**.
    uint64_t hash = 0xcbf29ce484222325ULL;
    for (const char c : name) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 0x100000001b3ULL;
    }
    return splitMix64(hash);
}

} // namespace mlpsim::workloads
