#include "specjbb.hh"

namespace mlpsim::workloads {

namespace {

constexpr Reg rScratch = 1;
constexpr Reg rTable = 9;
constexpr Reg rAlloc = 48;
constexpr Reg rLock = 49;


// Region bases carry distinct sub-megabyte offsets so the k-th lines
// of different tables do not all land in the same cache set (real
// heaps are not aligned to multi-megabyte boundaries).
constexpr uint64_t heapBase = 0x40'0000'0000ULL + 0x1c40;
constexpr uint64_t hotBase = 0x50'0000'0000ULL + 0x6e00;
constexpr uint64_t tableBase = 0x51'0000'0000ULL + 0x9d40;
constexpr uint64_t lockBase = 0x52'0000'0000ULL + 0x1b80;

constexpr unsigned objectBytes = 128;
constexpr unsigned numLockStripes = 256;

constexpr uint32_t fidOp = 1;
constexpr uint32_t fidAlloc = 2;
constexpr uint32_t fidTouchBase = 8;
constexpr uint32_t fidHotBase = 64;

} // namespace

SpecJbbWorkload::SpecJbbWorkload(const SpecJbbParams &params)
    : WorkloadBase("specjbb2000", params.seed), prm(params)
{
    MLPSIM_ASSERT(prm.objectsPerOp >= 1 && prm.objectsPerOp <= 10,
                  "supported objects per op: 1..10");
}

void
SpecJbbWorkload::initialize()
{
    allocCursor = 0;
    opCounter = 0;
}

void
SpecJbbWorkload::emitHotCall()
{
    const uint32_t fid =
        fidHotBase + uint32_t(random().below(prm.hotFunctions));
    callFunction(fid);
    emitCompute(rScratch, 7);
    const uint64_t hot_lines = prm.hotBytes / 64;
    const uint64_t addr = hotBase + (random()() % hot_lines) * 64;
    emitLoad(rScratch + 1, addr, trace::noReg, splitMix64(addr));
    emitAlu(rScratch + 2, rScratch + 1);
    emitCondBranch(random().chance(0.97), rScratch + 2, 2);
    emitCompute(rScratch, 3);
    returnFromFunction();
}

void
SpecJbbWorkload::emitAllocation()
{
    callFunction(fidAlloc);
    // Bump-pointer allocation in the young generation: the allocation
    // pointer is hot; the initialising stores touch fresh lines
    // (write-allocate traffic that pressures the shared L2 without
    // itself counting toward MLP).
    emitLoad(rAlloc, tableBase + 64, trace::noReg, allocCursor);
    emitCompute(rAlloc, 2);
    const uint64_t obj =
        heapBase + (3ULL << 30) +
        (allocCursor % (prm.youngGenBytes / objectBytes)) * objectBytes;
    ++allocCursor;
    for (unsigned w = 0; w < objectBytes / 64; ++w)
        emitStore(obj + w * 64, rAlloc, rScratch);
    emitStore(tableBase + 64, trace::noReg, rAlloc);
    returnFromFunction();
}

void
SpecJbbWorkload::emitObjectTouch(unsigned slot)
{
    const Reg ref = Reg(16 + 3 * (slot % 10));
    const Reg field = Reg(17 + 3 * (slot % 10));

    callFunction(fidTouchBase + (slot % 8));

    // Object-table load (hot) yields the object reference: one
    // dependent hop to the object itself. Cold objects concentrate in
    // cold ops (a new-order touching many uncached warehouse rows),
    // which is what lets config E / runahead overlap misses across the
    // CASA locks separating the touches.
    const bool cold = random().chance(
        coldOp ? prm.coldObjectFrac : prm.hotOpColdFrac);
    const uint64_t heap_objects = prm.heapBytes / objectBytes;
    const uint64_t hot_objects = prm.hotBytes / objectBytes;
    const uint64_t obj =
        cold ? heapBase + (random()() % heap_objects) * objectBytes
             : hotBase + (2ULL << 30) + 0x12340 +
                   (random()() % (hot_objects / 2)) * objectBytes;

    const uint64_t table_slot =
        tableBase + (random()() % (1 << 13)) * 8;
    emitLoad(ref, table_slot, trace::noReg, obj);

    // Java object locking: CASA on the lock stripe -- the serializing
    // instruction density that dominates SPECjbb's MLP loss.
    const uint64_t lock =
        lockBase + (splitMix64(obj) % numLockStripes) * 64;
    emitAtomic(lock, ref);

    // Field reads of the (possibly cold) object; the first is the
    // header, the rest sit on the same line.
    const bool stable = random().chance(prm.valueStability);
    emitLoad(field, obj, ref, stable ? 0x2B : (random()() | 1));
    // Some objects read a link field through the header (same line,
    // so no extra access): under config A it blocks the second-line
    // miss below while the header is outstanding.
    if (random().chance(0.45)) {
        emitAlu(Reg(field + 2), field);
        emitLoad(Reg(field + 2), obj + 32, Reg(field + 2),
                 splitMix64(obj + 32));
    }
    for (unsigned f = 1; f < prm.fieldsPerObject; ++f) {
        // Some objects spill onto a second cache line; for a cold
        // object that line is another miss. Half the spills reach the
        // second line through a pointer in the header (a dependent
        // chain step -- the depth runahead exposes), half through the
        // original reference (overlappable with the header).
        const bool second_line = f + 1 == prm.fieldsPerObject &&
                                 random().chance(prm.secondLineFrac);
        const uint64_t field_off = second_line ? 72 : 8 * f;
        Reg addr_reg = ref;
        if (second_line && random().chance(0.7)) {
            emitAlu(Reg(field + 2), field);
            addr_reg = Reg(field + 2);
        }
        emitLoad(Reg(field + 1), obj + field_off, addr_reg,
                 random().chance(prm.valueStability)
                     ? 0x2C + f
                     : (random()() | 1));
        emitAlu(field, field, Reg(field + 1));
    }
    emitCondBranch(stable || random().chance(0.85), field, 3);
    emitHotWork(field, coldOp ? prm.computePerObject / 4
                              : prm.computePerObject,
                hotBase, prm.hotBytes / 64);

    // History update.
    emitStore(obj + 16, ref, field);
    returnFromFunction();
}

void
SpecJbbWorkload::generate()
{
    ++opCounter;
    coldOp = random().chance(prm.coldOpFrac);
    callFunction(fidOp);
    emitCompute(rTable, 6);

    unsigned locks_emitted = 0;
    const unsigned overhead_chunk =
        prm.opOverheadCompute / (prm.objectsPerOp + 1);

    if (coldOp) {
        // Cold ops scan their objects back-to-back (an order touching
        // many uncached rows): consecutive CASA-guarded touches sit a
        // few tens of instructions apart, so for configurations A-D
        // the locks are exactly what caps the overlap (Figure 5) and
        // config E / runahead get to reclaim it.
        for (unsigned slot = 0; slot < prm.objectsPerOp; ++slot) {
            emitObjectTouch(slot);
            ++locks_emitted;
        }
        for (unsigned slot = 0; slot < prm.objectsPerOp; ++slot) {
            emitHotWork(rScratch, overhead_chunk, hotBase,
                        prm.hotBytes / 64);
            emitHotCall();
        }
    } else {
        for (unsigned slot = 0; slot < prm.objectsPerOp; ++slot) {
            emitObjectTouch(slot);
            ++locks_emitted; // emitObjectTouch holds one CASA
            emitHotWork(rScratch, overhead_chunk, hotBase,
                        prm.hotBytes / 64);
            emitHotCall();
        }
    }
    for (unsigned a = 0; a < prm.allocationsPerOp; ++a)
        emitAllocation();

    // Remaining object locks (synchronized blocks without a cold
    // object touch).
    while (locks_emitted < prm.locksPerOp) {
        const uint64_t lock =
            lockBase + (random()() % numLockStripes) * 64;
        emitAtomic(lock, rLock);
        emitCompute(rScratch, 10);
        ++locks_emitted;
    }

    emitHotWork(rScratch, overhead_chunk, hotBase, prm.hotBytes / 64);
    returnFromFunction();
}

SpecJbbWorkload::SpecJbbWorkload() : SpecJbbWorkload(SpecJbbParams{}) {}

} // namespace mlpsim::workloads
