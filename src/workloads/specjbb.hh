/**
 * @file
 * Synthetic SPECjbb2000-like middle-tier Java workload.
 *
 * Substitutes for the paper's SPECjbb2000 trace (its Table 1 row: L2
 * miss rate ~0.19 per 100 instructions, MLP ~1.13 at the default
 * window, negligible instruction-side misses, and a high density of
 * CASA serializing instructions -- more than 0.6% of the dynamic
 * stream -- from Java object locking, which the paper identifies as
 * the dominant MLP impediment at large windows).
 *
 * One "operation" models warehouse order processing: allocate order
 * objects (bump-pointer allocation with initialising stores), lock and
 * touch a set of warehouse/item/customer objects through an object
 * table (one dependent hop each), walk a B-tree-ish district index,
 * and update histories. The heap is moderate (tens of MB), the hot
 * code segment small enough to live in the L2.
 */
#pragma once

#include "workloads/workload_base.hh"

namespace mlpsim::workloads {

/** Tunable structure of the SPECjbb-like workload. */
struct SpecJbbParams
{
    uint64_t seed = 0x1BB;

    uint64_t heapBytes = 80ULL << 20;   //!< old-generation objects
    uint64_t hotBytes = 320 * 1024;     //!< young gen / hot tables
    unsigned objectsPerOp = 5;          //!< objects touched per op
    double coldOpFrac = 0.26;           //!< P(op works the cold heap)
    double coldObjectFrac = 0.60;       //!< P(cold object | cold op)
    double hotOpColdFrac = 0.02;        //!< P(cold object | hot op)
    unsigned fieldsPerObject = 3;
    double secondLineFrac = 0.45;       //!< P(object spills to line 2)
    unsigned computePerObject = 56;     //!< business logic per object
    unsigned allocationsPerOp = 2;      //!< new objects per op
    unsigned locksPerOp = 7;            //!< CASA object locks per op
    unsigned opOverheadCompute = 420;
    unsigned hotFunctions = 160;        //!< code fits the L2
    double valueStability = 0.47;       //!< field reread stability
    uint64_t youngGenBytes = 384 * 1024; //!< allocation ring
};

/** Deterministic SPECjbb2000-like trace generator. */
class SpecJbbWorkload : public WorkloadBase
{
  public:
    SpecJbbWorkload();
    explicit SpecJbbWorkload(const SpecJbbParams &params);

  protected:
    void initialize() override;
    void generate() override;

  private:
    void emitObjectTouch(unsigned slot);
    void emitAllocation();
    void emitHotCall();

    SpecJbbParams prm;
    uint64_t allocCursor = 0;
    uint64_t opCounter = 0;
    bool coldOp = false; //!< current op works the cold heap
};

} // namespace mlpsim::workloads
