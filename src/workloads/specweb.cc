#include "specweb.hh"

namespace mlpsim::workloads {

namespace {

constexpr Reg rScratch = 1;
constexpr Reg rEntry = 10;
constexpr Reg rData = 12;
constexpr Reg rSink = 14;
constexpr Reg rNet = 15;


// Region bases carry distinct sub-megabyte offsets so the k-th lines
// of different tables do not all land in the same cache set (real
// heaps are not aligned to multi-megabyte boundaries).
constexpr uint64_t fileRegion = 0x60'0000'0000ULL + 0x0cc0;
constexpr uint64_t hashRegion = 0x70'0000'0000ULL + 0x4ac0;
constexpr uint64_t netRegion = 0x71'0000'0000ULL + 0x3e40;
constexpr uint64_t hotRegion = 0x72'0000'0000ULL + 0x2a700;

constexpr uint32_t fidAccept = 1;
constexpr uint32_t fidParse = 2;
constexpr uint32_t fidLookup = 3;
constexpr uint32_t fidSend = 4;
constexpr uint32_t fidHotBase = 16;
constexpr uint32_t fidColdBase = 128;

} // namespace

SpecWebWorkload::SpecWebWorkload(const SpecWebParams &params)
    : WorkloadBase("specweb99", params.seed), prm(params)
{
    MLPSIM_ASSERT(prm.minFileLines >= 1 &&
                      prm.minFileLines <= prm.maxFileLines,
                  "bad file size range");
}

void
SpecWebWorkload::initialize()
{
    requestCounter = 0;
}

uint64_t
SpecWebWorkload::fileBase(uint64_t file_id) const
{
    return fileRegion + file_id * uint64_t(prm.maxFileLines + 2) * 64;
}

unsigned
SpecWebWorkload::fileLines(uint64_t file_id) const
{
    const unsigned range = prm.maxFileLines - prm.minFileLines + 1;
    return prm.minFileLines + unsigned(splitMix64(file_id * 977) % range);
}

void
SpecWebWorkload::emitHelperCall()
{
    const uint64_t pick =
        random().zipf(prm.hotFunctions + prm.coldFunctions, prm.codeSkew);
    const uint32_t fid =
        pick < prm.hotFunctions
            ? fidHotBase + uint32_t(pick)
            : fidColdBase + uint32_t(pick - prm.hotFunctions);
    callFunction(fid);
    emitCompute(rScratch, 5);
    const uint64_t addr = hotRegion + (random()() % 2048) * 64;
    emitLoad(rScratch + 1, addr, trace::noReg, splitMix64(addr));
    emitCondBranch(random().chance(0.97), rScratch + 1, 2);
    emitCompute(rScratch + 2, 4);
    returnFromFunction();
}

void
SpecWebWorkload::emitParse()
{
    callFunction(fidParse);
    // Header parsing: hot loads (connection buffers), character-class
    // branches, checksum-ish compute.
    const unsigned chunks = prm.callsPerRequest;
    const unsigned per_chunk = prm.parseCompute / (chunks + 1);
    for (unsigned c = 0; c < chunks; ++c) {
        const uint64_t buf = netRegion + (random()() % 256) * 64;
        emitLoad(rScratch + 3, buf, trace::noReg, splitMix64(buf));
        emitCondBranch(random().chance(0.95), rScratch + 3, 2);
        emitHotWork(rScratch, per_chunk, hotRegion, 2048);
        emitHelperCall();
    }
    returnFromFunction();
}

uint64_t
SpecWebWorkload::emitLookup(uint64_t file_id, Reg entry_reg)
{
    callFunction(fidLookup);
    // Two dependent hops through the (hot) file-cache hash table:
    // bucket -> entry.
    const uint64_t bucket = hashRegion + (file_id % 1024) * 64;
    const uint64_t entry = hashRegion + (1ULL << 20) + 0x19780 +
                           (file_id % 1024) * 64;
    emitAlu(entry_reg);
    emitLoad(entry_reg, bucket, entry_reg, entry);
    emitLoad(entry_reg, entry, entry_reg, fileBase(file_id));
    emitCompute(rScratch, 6);
    returnFromFunction();
    return fileBase(file_id);
}

void
SpecWebWorkload::emitSendLoop(uint64_t file_base, unsigned file_lines,
                              Reg entry_reg)
{
    callFunction(fidSend);
    // Files are stored as chains of three-line chunks (buffer-cache
    // style): each chunk's header word -- an off-chip miss on a cold
    // file -- yields the pointer the rest of the chunk is read
    // through, so unprefetched demand misses form a dependent chain
    // while the software prefetches, which follow the sequential
    // layout, still run ahead of it.
    constexpr Reg rChain = 16;
    constexpr unsigned chunkLines = 3;
    emitAlu(rChain, entry_reg);
    const uint64_t head = loopHead();
    for (unsigned line = 0; line < file_lines; ++line) {
        const uint64_t line_addr = file_base + uint64_t(line) * 64;
        if (line % chunkLines == 0) {
            if (line > 0)
                emitAlu(rChain, rData); // previous chunk's data
            emitLoad(rChain, line_addr + 56, rChain,
                     line_addr + chunkLines * 64);
            // Chunked-encoding check on the (possibly missing) header:
            // when mispredicted during a cold burst it is unresolvable
            // and ends the window -- the branch behaviour the paper's
            // limit study removes with perfect branch prediction.
            emitCondBranch(random().chance(0.85), rChain, 2);
        }
        // Software prefetch a configurable distance ahead (SPECweb99's
        // binaries carry such prefetches; they are the paper's main
        // source of useful Pmisses).
        if (line % prm.prefetchEvery == 0 &&
            line + prm.prefetchDistance < file_lines) {
            emitPrefetch(line_addr + uint64_t(prm.prefetchDistance) * 64,
                         entry_reg);
        }
        // Copy the line: eight loads, fold, one store to the socket
        // buffer.
        for (unsigned w = 0; w < 8; ++w) {
            // Static file content; about half the words are zero
            // (sparse blocks), giving the missing-load value
            // predictor its Table 6 hit rate.
            const uint64_t word = splitMix64(line_addr + w * 8);
            emitLoad(rData, line_addr + w * 8, rChain,
                     (word % 100 < 55) ? 0 : (word | 1));
            emitAlu(rSink, rData, rSink);
        }
        emitStore(netRegion + (1ULL << 22) + 0x151c0 + (line % 1024) * 64,
                  rNet,
                  rSink);
        // Jittered per-line work (encryption blocks, ACK handling)
        // so window-size effects do not cliff on a fixed line length.
        emitCompute(rScratch,
                    prm.computePerLine + unsigned(random().below(25)));
        loopBack(head, line + 1 < file_lines, rScratch);
    }
    emitCompute(rScratch, 4);
    returnFromFunction();
}

void
SpecWebWorkload::generate()
{
    ++requestCounter;
    callFunction(fidAccept);
    emitCompute(rScratch, 8);

    emitParse();

    const uint64_t file_id =
        random().zipf(prm.numFiles, prm.fileSkew);
    const uint64_t base = emitLookup(file_id, rEntry);
    emitSendLoop(base, fileLines(file_id), rEntry);

    emitCompute(rScratch, 6);
    returnFromFunction();
}

SpecWebWorkload::SpecWebWorkload() : SpecWebWorkload(SpecWebParams{}) {}

} // namespace mlpsim::workloads
