#include "paper_targets.hh"

#include "metrics/export.hh"
#include "util/logging.hh"

namespace mlpsim::workloads {

namespace {

struct Row
{
    const char *name;
    PaperTargets t;
};

// Table 1 / Table 5 / Figure 4 / Figure 8 published values.
constexpr Row rows[] = {
    {"database", {0.84, 1.38, 1.02, 1.06, 2.5}},
    {"specjbb2000", {0.19, 1.13, 1.00, 1.01, 2.3}},
    {"specweb99", {0.09, 1.28, 1.10, 1.13, 1.9}},
};

metrics::JsonValue
gauge(double value)
{
    metrics::JsonValue m = metrics::JsonValue::object();
    m.set("kind", "gauge");
    m.set("value", value);
    return m;
}

} // namespace

const metrics::JsonValue &
paperTargetsSnapshot()
{
    static const metrics::JsonValue doc = [] {
        using metrics::JsonValue;
        JsonValue meta = JsonValue::object();
        meta.set("source",
                 "Chou, Fahs and Abraham, ISCA 2004: published workload "
                 "characteristics (Tables 1 and 5, Figures 4 and 8)");
        JsonValue paths = JsonValue::object();
        for (const Row &row : rows) {
            const std::string prefix = std::string(row.name) + "/paper/";
            paths.set(prefix + "miss_per_100", gauge(row.t.missPer100));
            paths.set(prefix + "mlp_64C", gauge(row.t.mlp64C));
            paths.set(prefix + "mlp_runahead", gauge(row.t.mlpRunahead));
            paths.set(prefix + "mlp_stall_on_miss", gauge(row.t.mlpSom));
            paths.set(prefix + "mlp_stall_on_use", gauge(row.t.mlpSou));
        }
        JsonValue out = JsonValue::object();
        out.set("schema", metrics::snapshotSchema);
        out.set("meta", std::move(meta));
        out.set("metrics", std::move(paths));
        return out;
    }();
    return doc;
}

std::string
paperTargetsJsonText()
{
    return paperTargetsSnapshot().dump(2);
}

Expected<PaperTargets>
targetsFromSnapshot(const metrics::JsonValue &doc, const std::string &name)
{
    const metrics::JsonValue *schema = doc.find("schema");
    if (!schema || !schema->isString() ||
        schema->string() != metrics::snapshotSchema) {
        return Status::invalidArgument(
            "targets document is not a ", metrics::snapshotSchema,
            " snapshot");
    }
    const metrics::JsonValue *paths = doc.find("metrics");
    if (!paths || !paths->isObject())
        return Status::invalidArgument(
            "targets snapshot has no \"metrics\" object");

    auto read = [&](const char *metric, double *out) -> Status {
        const std::string path = name + "/paper/" + metric;
        const metrics::JsonValue *entry = paths->find(path);
        if (!entry)
            return Status::notFound("targets snapshot lacks '", path, "'");
        const metrics::JsonValue *value = entry->find("value");
        if (!value || !value->isNumber())
            return Status::invalidArgument("'", path,
                                           "' has no numeric value");
        *out = value->number();
        return Status::okStatus();
    };

    PaperTargets t;
    MLPSIM_RETURN_IF_ERROR(read("miss_per_100", &t.missPer100));
    MLPSIM_RETURN_IF_ERROR(read("mlp_64C", &t.mlp64C));
    MLPSIM_RETURN_IF_ERROR(read("mlp_stall_on_miss", &t.mlpSom));
    MLPSIM_RETURN_IF_ERROR(read("mlp_stall_on_use", &t.mlpSou));
    MLPSIM_RETURN_IF_ERROR(read("mlp_runahead", &t.mlpRunahead));
    return t;
}

PaperTargets
paperTargets(const std::string &name)
{
    return targetsFromSnapshot(paperTargetsSnapshot(), name).orFatal();
}

} // namespace mlpsim::workloads
