/**
 * @file
 * Synthetic OLTP database workload.
 *
 * Substitutes for the paper's proprietary database trace (its Table 1
 * row: L2 miss rate ~0.84 per 100 instructions, MLP ~1.33-1.38 at the
 * default 64-entry window, strong miss clustering, 12-18% of epoch
 * triggers being instruction-fetch misses).
 *
 * Structure of one transaction:
 *   1. begin: lock acquire (CASA on a hot lock stripe), txn setup;
 *   2. a handful of index probes, each a B-tree descent whose
 *      node-to-node hops are true dependent load chains and whose
 *      leaf/row lines mostly miss the 2MB L2; some probes depend on a
 *      value produced by the previous probe (rowid lookups);
 *   3. row access + predicate evaluation with data-dependent branches
 *      (mispredicted branches dependent on missing loads);
 *   4. row update, sequential log append;
 *   5. commit: membar + lock release.
 *
 * The instruction stream walks a multi-megabyte synthetic code
 * segment with Zipf-skewed function popularity, giving the workload a
 * realistic instruction footprint that contends with data in the
 * shared L2.
 */
#pragma once

#include "workloads/workload_base.hh"

namespace mlpsim::workloads {

/** Tunable structure of the database workload. */
struct DatabaseParams
{
    uint64_t seed = 0xDB;

    // --- data footprint ---
    unsigned btreeLevels = 4;       //!< root..leaf
    unsigned btreeFanout = 48;      //!< children per node
    uint64_t rowRegionBytes = 1536ULL << 20;
    uint64_t hotRegionBytes = 192 * 1024; //!< catalog/metadata (hot)

    // --- transaction shape ---
    unsigned probesPerTxn = 3;      //!< independent index probes
    double probeDependentFrac = 0.85; //!< probes chained on prior row
    unsigned rowLinesTouched = 2;   //!< independent row lines per probe
    double dependentDetailFrac = 0.5; //!< detail chased before the rows
    double predicateSkew = 0.96;    //!< taken bias of data predicates
    unsigned interProbeCompute = 36; //!< on-chip insts between probes
    unsigned txnOverheadCompute = 440; //!< parse/plan/log on-chip work
    double keySkew = 0.7;           //!< Zipf skew of key popularity

    // --- code footprint ---
    unsigned hotFunctions = 48;     //!< dispatcher/txn management
    unsigned coldFunctions = 3500;  //!< operators/utilities (Zipf)
    double codeSkew = 1.25;         //!< Zipf skew of function popularity
    unsigned callsPerTxn = 10;      //!< cold-ish function calls per txn

    // --- value behaviour (for value prediction) ---
    double fieldValueStability = 0.70; //!< P(field rereads same value)
};

/** Deterministic OLTP-like trace generator. */
class DatabaseWorkload : public WorkloadBase
{
  public:
    DatabaseWorkload();
    explicit DatabaseWorkload(const DatabaseParams &params);

  protected:
    void initialize() override;
    void generate() override;

  private:
    void emitTxnBegin();
    void emitTxnEnd();
    /** One index probe; returns the register holding the row value. */
    Reg emitIndexProbe(unsigned probe_index, Reg chain_input);
    void emitRowAccess(unsigned probe_index, uint64_t row_addr,
                       Reg row_reg);
    void emitHelperCall();
    void emitLogAppend();

    uint64_t nodeAddr(unsigned level, uint64_t index) const;
    uint64_t levelNodes(unsigned level) const;

    DatabaseParams prm;
    uint64_t logCursor = 0;
    uint64_t txnCounter = 0;
};

} // namespace mlpsim::workloads
