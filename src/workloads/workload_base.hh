/**
 * @file
 * Framework for program-like synthetic workload generators.
 *
 * The paper's traces are proprietary (a commercial database,
 * SPECjbb2000, SPECweb99 on SPARC). What the epoch model actually
 * consumes is the *structure* of a trace: register/memory dependences,
 * the spatial/temporal locality of its address streams, the PC stream
 * (instruction footprint), branch behaviour, and the density of
 * serializing instructions. WorkloadBase lets each workload be written
 * like a small program — functions with stable PCs, loops with real
 * back-edges, loads/stores through a register file with true
 * dependences — so those structures arise the same way they do in real
 * code rather than from sampling distributions instruction by
 * instruction.
 *
 * Generators are deterministic functions of their seed: reset()
 * reproduces the identical stream.
 */
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "trace/trace_source.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace mlpsim::workloads {

/** Abstract register id used by the emission helpers. */
using Reg = uint8_t;

/**
 * Base class for generator-backed trace sources.
 *
 * Derived classes implement initialize() (build synthetic data
 * structures) and generate() (emit the next unit of work, e.g. one
 * transaction, via the emit*() helpers).
 */
class WorkloadBase : public trace::TraceSource
{
  public:
    WorkloadBase(std::string workload_name, uint64_t seed);

    bool next(trace::Instruction &inst) final;
    void reset() final;
    std::string name() const final { return label; }

  protected:
    /** Build (or rebuild) all synthetic state. Called by reset(). */
    virtual void initialize() = 0;

    /** Emit at least one instruction (one unit of work). */
    virtual void generate() = 0;

    // ----- code layout ---------------------------------------------
    //
    // The synthetic code space is split into fixed-stride functions.
    // Entering a function positions the PC at its base; every emitted
    // instruction advances the PC by 4 within the function, so a
    // function's Nth instruction always has the same PC on every call
    // (which is what gives the workload a stable, finite instruction
    // footprint and trainable branches).

    /** Base of the synthetic code segment. */
    static constexpr uint64_t codeBase = 0x1000'0000ULL;

    /** Bytes reserved per synthetic function. */
    static constexpr uint64_t funcStride = 1024;

    /**
     * Call into function @p fid (emits the call branch).
     *
     * The call site's position inside the caller is a deterministic
     * function of the callee, modelling direct calls: distinct callees
     * are reached from distinct call sites, so the BTB can learn each
     * target (a single site cycling through many targets would behave
     * like a megamorphic indirect call).
     */
    void callFunction(uint32_t fid);

    /** Return to the caller (emits the return branch). */
    void returnFromFunction();

    /** PC of the current emission point. */
    uint64_t currentPc() const;

    /** Mark a loop head; returns a token for loopBack(). */
    uint64_t loopHead() const { return frame().pos; }

    /**
     * Emit the loop back-edge branch: taken (jumping to @p head) when
     * @p iterate, falling through otherwise.
     * @param cond_reg Optional register the loop condition reads.
     */
    void loopBack(uint64_t head, bool iterate,
                  Reg cond_reg = trace::noReg);

    // ----- instruction emission ------------------------------------

    void emitAlu(Reg dst, Reg src0 = trace::noReg,
                 Reg src1 = trace::noReg);

    /** Emit @p n dependent ALU ops dst <- f(dst). */
    void emitCompute(Reg dst, unsigned n);

    /**
     * Emit ~@p n instructions of realistic on-chip work: roughly one
     * load from the hot region per four ALU ops (cache-resident, so
     * none of it goes off-chip; it gives traces a program-like
     * instruction mix instead of pure ALU padding).
     */
    void emitHotWork(Reg dst, unsigned n, uint64_t hot_base,
                     uint64_t hot_lines);

    void emitLoad(Reg dst, uint64_t addr, Reg addr_reg,
                  uint64_t value = 0);
    void emitStore(uint64_t addr, Reg addr_reg,
                   Reg data_reg = trace::noReg);
    void emitPrefetch(uint64_t addr, Reg addr_reg = trace::noReg);

    /** Forward conditional branch within the current function. */
    void emitCondBranch(bool taken, Reg src = trace::noReg,
                        unsigned skip_insts = 4);

    /** CASA/LDSTUB-style atomic on @p addr (also a memory access). */
    void emitAtomic(uint64_t addr, Reg addr_reg = trace::noReg);

    /** MEMBAR-style pure barrier. */
    void emitMembar();

    Rng &random() { return rng; }

    uint64_t emittedInstructions() const { return emitted; }

  private:
    struct Frame
    {
        uint32_t fid = 0;
        uint64_t pos = 0; //!< instruction slot within the function
    };

    Frame &frame();
    const Frame &frame() const;
    uint64_t pcAt(const Frame &f) const;
    void push(const trace::Instruction &inst);

    std::string label;
    uint64_t seed;
    Rng rng;
    std::deque<trace::Instruction> pending;
    std::vector<Frame> callStack;
    uint64_t emitted = 0;
    bool initialized = false;
};

} // namespace mlpsim::workloads
