/**
 * @file
 * Micro-workloads with analytically known MLP behaviour. Used by the
 * test suite to pin down engine semantics and by the throughput
 * benchmarks.
 */
#pragma once

#include "workloads/workload_base.hh"

namespace mlpsim::workloads {

/**
 * A single dependent pointer chase over a region far larger than the
 * L2: every load misses and depends on the previous one, so MLP -> 1
 * for any machine.
 */
class PointerChaseWorkload : public WorkloadBase
{
  public:
    struct Params
    {
        uint64_t footprintBytes = 256ULL << 20;
        unsigned padAluPerLoad = 4; //!< on-chip work between hops
        uint64_t seed = 1;
    };

    PointerChaseWorkload();
    explicit PointerChaseWorkload(const Params &params);

  protected:
    void initialize() override;
    void generate() override;

  private:
    Params prm;
    uint64_t cursor = 0;
};

/**
 * K independent strided miss streams interleaved: every load misses
 * and is independent of the others, so a machine whose window spans
 * one interleave group achieves MLP ~= K.
 */
class IndependentStreamsWorkload : public WorkloadBase
{
  public:
    struct Params
    {
        unsigned streams = 4;
        uint64_t footprintBytes = 64ULL << 20; //!< per stream
        unsigned padAluPerLoad = 4;
        uint64_t seed = 2;
    };

    IndependentStreamsWorkload();
    explicit IndependentStreamsWorkload(const Params &params);

  protected:
    void initialize() override;
    void generate() override;

  private:
    Params prm;
    std::vector<uint64_t> cursors;
};

/**
 * Independent miss streams with an atomic between every group:
 * serializing instructions cap MLP at ~1 for configs A-D but not for
 * config E or runahead.
 */
class SerializingStormWorkload : public WorkloadBase
{
  public:
    struct Params
    {
        unsigned missesBetweenAtomics = 4;
        uint64_t footprintBytes = 64ULL << 20;
        unsigned padAluPerLoad = 4;
        uint64_t seed = 3;
    };

    SerializingStormWorkload();
    explicit SerializingStormWorkload(const Params &params);

  protected:
    void initialize() override;
    void generate() override;

  private:
    Params prm;
    uint64_t cursor = 0;
};

/**
 * A streaming copy loop with software prefetches issued a configurable
 * distance ahead; exercises useful-prefetch accounting.
 */
class PrefetchedStreamWorkload : public WorkloadBase
{
  public:
    struct Params
    {
        unsigned prefetchDistanceLines = 8;
        uint64_t footprintBytes = 256ULL << 20;
        uint64_t seed = 4;
    };

    PrefetchedStreamWorkload();
    explicit PrefetchedStreamWorkload(const Params &params);

  protected:
    void initialize() override;
    void generate() override;

  private:
    Params prm;
    uint64_t cursor = 0;
};

} // namespace mlpsim::workloads
