#include "database.hh"

namespace mlpsim::workloads {

namespace {

// Register allocation (see trace::numArchRegs = 64):
//   r1-r7    scratch compute
//   r8       transaction context
//   r10+3p   probe p's chase register
//   r11+3p   probe p's key register
//   r12+3p   probe p's row-value register
//   r40-r47  row/field scratch
//   r50      log cursor, r51 lock base
constexpr Reg rScratch = 1;
constexpr Reg rTxn = 8;
constexpr Reg rField = 40;
constexpr Reg rLog = 50;
constexpr Reg rLock = 51;


// Region bases carry distinct sub-megabyte offsets so the k-th lines
// of different tables do not all land in the same cache set (real
// heaps are not aligned to multi-megabyte boundaries).
constexpr uint64_t btreeBase = 0x10'0000'0000ULL + 0x2e80;
constexpr uint64_t rowBase = 0x20'0000'0000ULL + 0x0b40;
constexpr uint64_t hotBase = 0x30'0000'0000ULL + 0x55c0;
constexpr uint64_t lockBase = 0x31'0000'0000ULL + 0x0c80;
constexpr uint64_t logBase = 0x32'0000'0000ULL + 0x1f00;

constexpr uint64_t nodeBytes = 256;
constexpr unsigned numLocks = 512;

// Function-id layout within the synthetic code segment.
constexpr uint32_t fidTxnBegin = 1;
constexpr uint32_t fidTxnEnd = 2;
constexpr uint32_t fidLog = 3;
constexpr uint32_t fidProbeBase = 8;    // one per probe slot
constexpr uint32_t fidHotBase = 32;     // hotFunctions dispatcher funcs
constexpr uint32_t fidColdBase = 256;   // coldFunctions Zipf tail

} // namespace

DatabaseWorkload::DatabaseWorkload(const DatabaseParams &params)
    : WorkloadBase("database", params.seed), prm(params)
{
    MLPSIM_ASSERT(prm.btreeLevels >= 2 && prm.btreeLevels <= 6,
                  "supported B-tree depths: 2..6");
    MLPSIM_ASSERT(prm.probesPerTxn >= 1 && prm.probesPerTxn <= 8,
                  "supported probes per transaction: 1..8");
}

uint64_t
DatabaseWorkload::levelNodes(unsigned level) const
{
    uint64_t n = 1;
    for (unsigned l = 0; l < level; ++l)
        n *= prm.btreeFanout;
    return n;
}

uint64_t
DatabaseWorkload::nodeAddr(unsigned level, uint64_t index) const
{
    // Levels are laid out contiguously; offset by the nodes of all
    // shallower levels.
    uint64_t offset = 0;
    for (unsigned l = 0; l < level; ++l)
        offset += levelNodes(l);
    return btreeBase + (offset + index) * nodeBytes;
}

void
DatabaseWorkload::initialize()
{
    logCursor = 0;
    txnCounter = 0;
}

void
DatabaseWorkload::emitHelperCall()
{
    // Zipf-popular helper function: hot helpers stay L2 resident, the
    // tail provides the instruction-side misses the paper reports.
    const uint64_t pick =
        random().zipf(prm.hotFunctions + prm.coldFunctions, prm.codeSkew);
    const uint32_t fid =
        pick < prm.hotFunctions
            ? fidHotBase + uint32_t(pick)
            : fidColdBase + uint32_t(pick - prm.hotFunctions);
    callFunction(fid);
    // A short body: compute, a couple of hot-metadata loads and a
    // predictable branch.
    emitCompute(rScratch, 6);
    const uint64_t hot_lines = prm.hotRegionBytes / 64;
    const uint64_t meta =
        hotBase + (random()() % hot_lines) * 64;
    emitLoad(rScratch + 1, meta, trace::noReg, splitMix64(meta));
    emitAlu(rScratch + 2, rScratch + 1, rScratch);
    emitCondBranch(true, rScratch + 2, 2);
    emitCompute(rScratch + 3, 4);
    returnFromFunction();
}

void
DatabaseWorkload::emitTxnBegin()
{
    callFunction(fidTxnBegin);
    emitCompute(rTxn, 5);
    // Lock acquire: CASA on a hot lock stripe (stays cache resident).
    const uint64_t lock =
        lockBase + (txnCounter % numLocks) * 64;
    emitAlu(rLock);
    emitAtomic(lock, rLock);
    emitCompute(rTxn, 4);
    returnFromFunction();
}

void
DatabaseWorkload::emitTxnEnd()
{
    callFunction(fidTxnEnd);
    emitCompute(rScratch, 4);
    emitMembar(); // commit barrier
    const uint64_t lock =
        lockBase + (txnCounter % numLocks) * 64;
    emitStore(lock, trace::noReg, rTxn); // lock release
    returnFromFunction();
}

void
DatabaseWorkload::emitLogAppend()
{
    callFunction(fidLog);
    // Sequential stores into the (hot, streaming) log buffer.
    for (unsigned w = 0; w < 4; ++w) {
        const uint64_t slot = logBase + (logCursor % (1 << 16)) * 8;
        emitStore(slot, trace::noReg, Reg(rField + (w & 3)));
        ++logCursor;
    }
    emitCompute(rScratch, 3);
    returnFromFunction();
}

void
DatabaseWorkload::emitRowAccess(unsigned probe_index, uint64_t row_addr,
                                Reg row_reg)
{
    const Reg field0 = Reg(rField + (probe_index & 3));
    const Reg field1 = Reg(rField + 4 + (probe_index & 3));
    const Reg detail = Reg(rField + 8 + (probe_index & 3));

    auto stable_value = [&](uint64_t site_constant) {
        return random().chance(prm.fieldValueStability)
                   ? site_constant
                   : (random()() | 1);
    };

    // Row header (usually an off-chip miss: the row region dwarfs the
    // L2). Its value is a skewed status field: reread stability feeds
    // the value predictor the way low-cardinality DB columns do.
    emitLoad(field0, row_addr, row_reg, stable_value(0x11));

    // A field chased off the header within the same row line: a true
    // dependent load. Config A blocks independent loads behind it
    // while it waits for the header; configs B/C do not (it is a load,
    // not a store). It lands on the already-fetched header line, so
    // it adds no off-chip access of its own.
    auto emit_same_line_detail = [&] {
        emitAlu(detail, field0);
        emitLoad(detail, row_addr + 40, detail, stable_value(0x23));
        emitAlu(detail, detail, field0);
    };

    // An overflow record chased off the header in a different row: a
    // dependent chain step that usually misses (runahead depth).
    auto emit_overflow_detail = [&] {
        emitAlu(detail, field0);
        const uint64_t detail_addr =
            rowBase + (splitMix64(row_addr ^ 0x9e3779b9ULL) %
                       (prm.rowRegionBytes / 128)) * 128;
        emitLoad(detail, detail_addr, detail, stable_value(0x23));
        emitAlu(detail, detail, field0);
    };

    // Independent second row line(s): overlappable with the header on
    // any machine whose window reaches them.
    auto emit_indep = [&] {
        for (unsigned l = 1; l <= prm.rowLinesTouched - 1; ++l) {
            // Not every row spills onto another line: 40% of these
            // reads land on the already-fetched header line.
            const uint64_t off =
                random().chance(0.4) ? 48 : uint64_t(l) * 64;
            emitLoad(field1, row_addr + off, row_reg,
                     stable_value(0x17 + l));
            emitAlu(field1, field1, field0);
        }
    };

    // An update whose slot address is computed from the (possibly
    // missing) header: config B stalls later loads on it, config C
    // speculates past it.
    auto emit_dep_store = [&] {
        emitAlu(rScratch + 6, field0);
        emitStore(row_addr + 8, Reg(rScratch + 6), field0);
    };

    // Three row shapes with distinct issue-policy signatures:
    //  - dependent same-line field between header and the second line:
    //    config A splits the pair, B/C overlap it;
    //  - header-addressed store between them: A and B split, C
    //    overlaps;
    //  - independent line first (plus an overflow chase): every
    //    policy overlaps, and a stall-on-use machine gets its small
    //    edge over stall-on-miss.
    const double shape = random().uniform();
    if (shape < 0.10) {
        emit_same_line_detail();
        emit_indep();
        emit_dep_store();
    } else if (shape < 0.55) {
        emit_dep_store();
        emit_indep();
        emit_same_line_detail();
    } else {
        emit_indep();
        emit_dep_store();
        emit_overflow_detail();
    }

    // Predicate on the header: data-dependent and occasionally
    // mispredicted while its operand is off-chip -- the paper's
    // unresolvable-branch window termination.
    emitCondBranch(random().chance(prm.predicateSkew), field0, 3);
    emitCompute(field1, 4);
}

Reg
DatabaseWorkload::emitIndexProbe(unsigned probe_index, Reg chain_input)
{
    const Reg ptr = Reg(10 + 3 * probe_index);
    const Reg key = Reg(11 + 3 * probe_index);
    const Reg out = Reg(12 + 3 * probe_index);

    callFunction(fidProbeBase + probe_index);

    // Key computation. A dependent probe derives its key from the
    // previous probe's row value (rowid lookup), serialising the two
    // probes' miss chains.
    if (chain_input != trace::noReg) {
        emitAlu(key, chain_input);
    } else {
        emitAlu(key);
    }
    emitCompute(key, 2);

    // Descend the tree. The chosen child index comes from the Zipf-
    // skewed key, fixed per level so the walk is a consistent path.
    const uint64_t leaf_count = levelNodes(prm.btreeLevels - 1);
    const uint64_t leaf_pick = random().zipf(leaf_count, prm.keySkew);

    uint64_t node_index = 0;
    for (unsigned level = 0; level < prm.btreeLevels; ++level) {
        // Child index on this level's path toward leaf_pick.
        uint64_t span = 1;
        for (unsigned l = level + 1; l < prm.btreeLevels; ++l)
            span *= prm.btreeFanout;
        const uint64_t addr = nodeAddr(level, node_index);
        const uint64_t child = (leaf_pick / span) % prm.btreeFanout;

        // Node header: keys/occupancy. The next hop's address is the
        // loaded child pointer -> a true dependent chain.
        const uint64_t next_index = node_index * prm.btreeFanout + child;
        const uint64_t next_addr =
            level + 1 < prm.btreeLevels
                ? nodeAddr(level + 1, next_index)
                : rowBase + (splitMix64(next_index) %
                             (prm.rowRegionBytes / 128)) * 128;

        emitLoad(ptr, addr, level == 0 ? key : ptr, addr + 16);
        emitAlu(rScratch + 4, ptr, key);        // key compare
        emitCondBranch((child & 7) != 0, rScratch + 4, 2); // skewed search direction
        emitLoad(ptr, addr + 16 + (child % 6) * 8, ptr, next_addr);
        emitCompute(rScratch + 5, 2);
        node_index = next_index;
    }

    // `ptr` now holds the row address (value of the leaf entry).
    const uint64_t row_addr = rowBase +
        (splitMix64(node_index) % (prm.rowRegionBytes / 128)) * 128;
    emitRowAccess(probe_index, row_addr, ptr);
    emitAlu(out, Reg(rField + (probe_index & 3)));

    returnFromFunction();
    return out;
}

void
DatabaseWorkload::generate()
{
    ++txnCounter;
    emitTxnBegin();

    // Parse/plan overhead: hot compute sprinkled with helper calls
    // into the Zipf-skewed code segment.
    unsigned overhead_left = prm.txnOverheadCompute;
    const unsigned chunk =
        prm.txnOverheadCompute / (prm.callsPerTxn + 1);
    for (unsigned c = 0; c < prm.callsPerTxn; ++c) {
        emitHotWork(rScratch, chunk, hotBase, prm.hotRegionBytes / 64);
        emitHelperCall();
        overhead_left -= std::min(overhead_left, chunk);
    }
    emitHotWork(rScratch, overhead_left, hotBase,
                prm.hotRegionBytes / 64);

    Reg prev_row = trace::noReg;
    for (unsigned p = 0; p < prm.probesPerTxn; ++p) {
        const bool dependent =
            p > 0 && random().chance(prm.probeDependentFrac);
        const Reg out =
            emitIndexProbe(p, dependent ? prev_row : trace::noReg);
        prev_row = out;
        emitHotWork(rScratch, prm.interProbeCompute, hotBase,
                    prm.hotRegionBytes / 64);
    }

    emitLogAppend();
    emitTxnEnd();
}

DatabaseWorkload::DatabaseWorkload() : DatabaseWorkload(DatabaseParams{}) {}

} // namespace mlpsim::workloads
