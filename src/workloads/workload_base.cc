#include "workload_base.hh"

namespace mlpsim::workloads {

using trace::BranchKind;
using trace::Instruction;
using trace::noReg;

WorkloadBase::WorkloadBase(std::string workload_name, uint64_t seed_value)
    : label(std::move(workload_name)), seed(seed_value), rng(seed_value)
{
    callStack.push_back(Frame{0, 0});
}

bool
WorkloadBase::next(Instruction &inst)
{
    if (!initialized) {
        initialized = true;
        initialize();
    }
    while (pending.empty())
        generate();
    inst = pending.front();
    pending.pop_front();
    return true;
}

void
WorkloadBase::reset()
{
    rng.reseed(seed);
    pending.clear();
    callStack.clear();
    callStack.push_back(Frame{0, 0});
    emitted = 0;
    initialized = false;
}

WorkloadBase::Frame &
WorkloadBase::frame()
{
    return callStack.back();
}

const WorkloadBase::Frame &
WorkloadBase::frame() const
{
    return callStack.back();
}

uint64_t
WorkloadBase::pcAt(const Frame &f) const
{
    // Wrap within the function's byte budget; real functions also have
    // bounded text.
    return codeBase + uint64_t(f.fid) * funcStride +
           (f.pos * 4) % funcStride;
}

uint64_t
WorkloadBase::currentPc() const
{
    return pcAt(frame());
}

void
WorkloadBase::push(const Instruction &inst)
{
    pending.push_back(inst);
    ++frame().pos;
    ++emitted;
}

void
WorkloadBase::callFunction(uint32_t fid)
{
    // Place the call site at a callee-specific position within the
    // caller (direct-call code layout; see the header comment).
    const uint64_t slots = funcStride / 4;
    frame().pos = (frame().pos & ~(slots - 1)) +
                  splitMix64(uint64_t(frame().fid) * 131071 + fid) %
                      slots;
    Frame callee{fid, 0};
    const uint64_t target = pcAt(callee);
    push(trace::makeBranch(currentPc(), target, true, noReg,
                           BranchKind::Call));
    callStack.push_back(callee);
}

void
WorkloadBase::returnFromFunction()
{
    MLPSIM_ASSERT(callStack.size() > 1, "return from the root frame");
    // The return target is the instruction after the call site.
    Frame caller = callStack[callStack.size() - 2];
    const uint64_t target = pcAt(caller);
    push(trace::makeBranch(currentPc(), target, true, noReg,
                           BranchKind::Return));
    callStack.pop_back();
}

void
WorkloadBase::loopBack(uint64_t head, bool iterate, Reg cond_reg)
{
    Frame target_frame = frame();
    target_frame.pos = head;
    const uint64_t target = pcAt(target_frame);
    push(trace::makeBranch(currentPc(), target, iterate, cond_reg,
                           BranchKind::Conditional));
    if (iterate)
        frame().pos = head;
}

void
WorkloadBase::emitAlu(Reg dst, Reg src0, Reg src1)
{
    push(trace::makeAlu(currentPc(), dst, src0, src1));
}

void
WorkloadBase::emitCompute(Reg dst, unsigned n)
{
    for (unsigned i = 0; i < n; ++i)
        emitAlu(dst, dst);
}

void
WorkloadBase::emitHotWork(Reg dst, unsigned n, uint64_t hot_base,
                          uint64_t hot_lines)
{
    const Reg tmp =
        Reg(unsigned(dst) + 1 < trace::numArchRegs ? dst + 1 : dst);
    unsigned left = n;
    while (left > 0) {
        if (left >= 4) {
            const uint64_t addr =
                hot_base + (rng() % hot_lines) * 64 + (rng() % 8) * 8;
            emitLoad(tmp, addr, trace::noReg, splitMix64(addr));
            emitAlu(dst, dst, tmp);
            emitAlu(dst, dst);
            emitAlu(tmp, tmp);
            left -= 4;
        } else {
            emitAlu(dst, dst);
            --left;
        }
    }
}

void
WorkloadBase::emitLoad(Reg dst, uint64_t addr, Reg addr_reg,
                       uint64_t value)
{
    push(trace::makeLoad(currentPc(), dst, addr, addr_reg, value));
}

void
WorkloadBase::emitStore(uint64_t addr, Reg addr_reg, Reg data_reg)
{
    push(trace::makeStore(currentPc(), addr, data_reg, addr_reg));
}

void
WorkloadBase::emitPrefetch(uint64_t addr, Reg addr_reg)
{
    push(trace::makePrefetch(currentPc(), addr, addr_reg));
}

void
WorkloadBase::emitCondBranch(bool taken, Reg src, unsigned skip_insts)
{
    Frame target_frame = frame();
    target_frame.pos += 1 + skip_insts;
    const uint64_t target = pcAt(target_frame);
    push(trace::makeBranch(currentPc(), target, taken, src,
                           BranchKind::Conditional));
    if (taken)
        frame().pos += skip_insts;
}

void
WorkloadBase::emitAtomic(uint64_t addr, Reg addr_reg)
{
    push(trace::makeSerializing(currentPc(), addr, addr_reg));
}

void
WorkloadBase::emitMembar()
{
    push(trace::makeSerializing(currentPc(), 0));
}

} // namespace mlpsim::workloads
