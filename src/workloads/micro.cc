#include "micro.hh"

namespace mlpsim::workloads {

namespace {

/** Base of the synthetic data segment used by the micro-workloads. */
constexpr uint64_t dataBase = 0x8000'0000ULL;

/** Scramble a (seed, index) pair into a cache-line-aligned address. */
uint64_t
scatterLine(uint64_t seed, uint64_t index, uint64_t footprint_bytes)
{
    const uint64_t lines = footprint_bytes / 64;
    return dataBase + (splitMix64(index ^ (seed * 0x9e3779b9ULL)) %
                       lines) * 64;
}

} // namespace

// --- PointerChaseWorkload ------------------------------------------

PointerChaseWorkload::PointerChaseWorkload(const Params &params)
    : WorkloadBase("pointer-chase", params.seed), prm(params)
{
}

void
PointerChaseWorkload::initialize()
{
    cursor = 0;
}

void
PointerChaseWorkload::generate()
{
    constexpr Reg ptr = 10;
    constexpr Reg scratch = 11;
    const uint64_t addr =
        scatterLine(prm.seed, cursor++, prm.footprintBytes);
    const uint64_t next =
        scatterLine(prm.seed, cursor, prm.footprintBytes);
    // The loaded value is the next pointer: a true dependent chain.
    emitLoad(ptr, addr, ptr, next);
    emitCompute(scratch, prm.padAluPerLoad);
}

// --- IndependentStreamsWorkload ------------------------------------

IndependentStreamsWorkload::IndependentStreamsWorkload(
    const Params &params)
    : WorkloadBase("independent-streams", params.seed), prm(params)
{
    MLPSIM_ASSERT(prm.streams >= 1 && prm.streams <= 16,
                  "supported stream counts: 1..16");
}

void
IndependentStreamsWorkload::initialize()
{
    cursors.assign(prm.streams, 0);
}

void
IndependentStreamsWorkload::generate()
{
    constexpr Reg streamRegBase = 20;
    constexpr Reg scratch = 12;
    for (unsigned k = 0; k < prm.streams; ++k) {
        const uint64_t partition =
            dataBase + uint64_t(k + 1) * (4ULL << 30);
        const uint64_t lines = prm.footprintBytes / 64;
        const uint64_t addr =
            partition + (splitMix64(cursors[k]++ ^
                                    (prm.seed * 0x9e3779b9ULL)) %
                         lines) * 64;
        const Reg reg = Reg(streamRegBase + k);
        // Each stream chases within itself (reg -> reg) but streams
        // are mutually independent.
        emitLoad(reg, addr, reg, addr + 64);
        emitCompute(scratch, prm.padAluPerLoad);
    }
}

// --- SerializingStormWorkload --------------------------------------

SerializingStormWorkload::SerializingStormWorkload(const Params &params)
    : WorkloadBase("serializing-storm", params.seed), prm(params)
{
    MLPSIM_ASSERT(prm.missesBetweenAtomics >= 1 &&
                      prm.missesBetweenAtomics <= 16,
                  "supported group sizes: 1..16");
}

void
SerializingStormWorkload::initialize()
{
    cursor = 0;
}

void
SerializingStormWorkload::generate()
{
    constexpr Reg streamRegBase = 20;
    constexpr Reg scratch = 12;
    constexpr uint64_t lockAddr = dataBase - 4096; // stays L2 resident
    for (unsigned k = 0; k < prm.missesBetweenAtomics; ++k) {
        const uint64_t partition =
            dataBase + uint64_t(k + 1) * (4ULL << 30);
        const uint64_t lines = prm.footprintBytes / 64;
        const uint64_t addr =
            partition + (splitMix64(cursor++ ^
                                    (prm.seed * 0x9e3779b9ULL)) %
                         lines) * 64;
        // Loads are fully independent (immediate addresses): only the
        // atomic limits how many can overlap.
        emitLoad(Reg(streamRegBase + k), addr, trace::noReg, addr + 64);
        emitCompute(scratch, prm.padAluPerLoad);
    }
    emitAtomic(lockAddr);
}

// --- PrefetchedStreamWorkload --------------------------------------

PrefetchedStreamWorkload::PrefetchedStreamWorkload(const Params &params)
    : WorkloadBase("prefetched-stream", params.seed), prm(params)
{
}

void
PrefetchedStreamWorkload::initialize()
{
    cursor = 0;
}

void
PrefetchedStreamWorkload::generate()
{
    constexpr Reg base = 10;
    constexpr Reg data = 11;
    constexpr Reg sink = 13;
    constexpr uint64_t sinkBase = dataBase - (1ULL << 20);

    // Sequential stream: prefetch `prefetchDistanceLines` ahead, then
    // consume the current line with eight loads and a store.
    const uint64_t lines = prm.footprintBytes / 64;
    const uint64_t line = dataBase + (cursor % lines) * 64;
    const uint64_t ahead =
        dataBase + ((cursor + prm.prefetchDistanceLines) % lines) * 64;
    ++cursor;

    emitPrefetch(ahead, base);
    for (unsigned w = 0; w < 8; ++w) {
        emitLoad(data, line + w * 8, base, w);
        emitAlu(sink, data, sink);
    }
    emitStore(sinkBase + (cursor % 1024) * 64, base, sink);
}

PointerChaseWorkload::PointerChaseWorkload() : PointerChaseWorkload(Params{}) {}

IndependentStreamsWorkload::IndependentStreamsWorkload() : IndependentStreamsWorkload(Params{}) {}

SerializingStormWorkload::SerializingStormWorkload() : SerializingStormWorkload(Params{}) {}

PrefetchedStreamWorkload::PrefetchedStreamWorkload() : PrefetchedStreamWorkload(Params{}) {}

} // namespace mlpsim::workloads
