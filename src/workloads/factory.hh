/**
 * @file
 * Name-based construction of the three commercial workloads, shared by
 * the benches and examples (every bench takes --workload=<name>).
 */
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "util/status.hh"
#include "workloads/workload_base.hh"

namespace mlpsim::workloads {

/** Names accepted by makeWorkload(), in paper order. */
const std::vector<std::string> &commercialWorkloadNames();

/**
 * Construct a workload by name ("database", "specjbb2000",
 * "specweb99"). An unknown name is a NotFound error listing the
 * accepted names, so a sweep over many workloads can skip and report
 * rather than die.
 */
Expected<std::unique_ptr<WorkloadBase>>
tryMakeWorkload(const std::string &name);

/** fatal()-on-error wrapper around tryMakeWorkload(). */
std::unique_ptr<WorkloadBase> makeWorkload(const std::string &name);

} // namespace mlpsim::workloads
