/**
 * @file
 * Name-based construction of the three commercial workloads, shared by
 * the benches and examples (every bench takes --workload=<name>).
 */
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "util/status.hh"
#include "workloads/workload_base.hh"

namespace mlpsim::workloads {

/** Names accepted by makeWorkload(), in paper order. */
const std::vector<std::string> &commercialWorkloadNames();

/**
 * Construct a workload by name ("database", "specjbb2000",
 * "specweb99"). An unknown name is a NotFound error listing the
 * accepted names, so a sweep over many workloads can skip and report
 * rather than die.
 */
Expected<std::unique_ptr<WorkloadBase>>
tryMakeWorkload(const std::string &name);

/** tryMakeWorkload() with the generator's Rng seed overridden. */
Expected<std::unique_ptr<WorkloadBase>>
tryMakeWorkload(const std::string &name, uint64_t seed);

/** fatal()-on-error wrapper around tryMakeWorkload(). */
std::unique_ptr<WorkloadBase> makeWorkload(const std::string &name);

/** fatal()-on-error wrapper around the seeded tryMakeWorkload(). */
std::unique_ptr<WorkloadBase> makeWorkload(const std::string &name,
                                           uint64_t seed);

/**
 * The canonical per-workload trace seed: splitMix64 of an FNV-1a hash
 * of @p name. A pure function of the workload's *name*, so a trace is
 * bit-identical no matter where, in what order, or on which thread it
 * is materialised (the bench suite prepares workloads concurrently).
 */
uint64_t workloadSeed(const std::string &name);

} // namespace mlpsim::workloads
