/**
 * @file
 * The paper's published per-workload characteristics, shipped as a
 * metrics snapshot.
 *
 * Several binaries compare this reproduction's measurements against
 * numbers from the paper (Table 1 miss rates, Table 5 in-order MLP,
 * the Figure 4 64-entry config-C point, the Figure 8 runahead MLP).
 * Instead of each binary hard-coding its own copy of those constants,
 * they live in exactly one document — a `mlpsim-metrics-v1` snapshot
 * whose gauge paths follow the standard `workload/component/metric`
 * label scheme — embedded here and committed verbatim as
 * `data/paper_targets.json` so external tooling can consume the same
 * numbers. tools/calibrate can also be pointed at a *different*
 * snapshot (--targets FILE), e.g. one produced by a previous calibrate
 * run, to diff two parameterisations.
 */
#pragma once

#include <string>

#include "metrics/json.hh"

namespace mlpsim::workloads {

/** The paper's published targets for one commercial workload. */
struct PaperTargets
{
    double missPer100 = 0.0;  //!< Table 1: useful misses / 100 insts
    double mlp64C = 0.0;      //!< Figure 4: MLP of the default 64C
    double mlpSom = 0.0;      //!< Table 5: in-order stall-on-miss MLP
    double mlpSou = 0.0;      //!< Table 5: in-order stall-on-use MLP
    double mlpRunahead = 0.0; //!< Figure 8: runahead (RAE) MLP
};

/** The embedded snapshot document (identical to data/paper_targets.json). */
const metrics::JsonValue &paperTargetsSnapshot();

/** The embedded document's serialised text, exactly as committed. */
std::string paperTargetsJsonText();

/**
 * Extract @p name's targets from @p doc, a metrics snapshot holding
 * `<name>/paper/<metric>` gauges. Diagnoses a wrong schema or a
 * missing workload/metric path instead of defaulting silently.
 */
Expected<PaperTargets> targetsFromSnapshot(const metrics::JsonValue &doc,
                                           const std::string &name);

/** The embedded targets for @p name; fatal() on an unknown workload. */
PaperTargets paperTargets(const std::string &name);

} // namespace mlpsim::workloads
