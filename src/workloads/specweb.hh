/**
 * @file
 * Synthetic SPECweb99-like web-server workload.
 *
 * Substitutes for the paper's SPECweb99 trace (its Table 1 row: L2
 * miss rate ~0.09 per 100 instructions yet MLP ~1.25 thanks to
 * extremely clustered misses, a significant number of *useful software
 * prefetches*, and 10-13% of epoch triggers being instruction-fetch
 * misses).
 *
 * One request: parse headers (hot compute + branches), hash-table
 * lookup of the file-cache entry (dependent hops), then a send loop
 * that streams the file 64B line by line -- software-prefetching a
 * configurable number of lines ahead and copying each line with eight
 * loads and a store. File popularity is Zipf: the hot head of the file
 * set lives in the L2 (requests with no data misses at all), while the
 * cold tail produces long bursts of sequential, mutually independent
 * line misses covered by the prefetches.
 */
#pragma once

#include "workloads/workload_base.hh"

namespace mlpsim::workloads {

/** Tunable structure of the SPECweb-like workload. */
struct SpecWebParams
{
    uint64_t seed = 0x3EB;

    unsigned numFiles = 16384;
    unsigned minFileLines = 6;    //!< file size range, 64B lines
    unsigned maxFileLines = 12;
    double fileSkew = 1.7;       //!< Zipf skew of file popularity
    unsigned prefetchDistance = 6; //!< lines prefetched ahead
    unsigned prefetchEvery = 3;    //!< prefetch 1 of every N lines
    unsigned computePerLine = 32;  //!< checksum/TCP work per line
    unsigned parseCompute = 400;  //!< header parsing per request
    unsigned hotFunctions = 56;
    unsigned coldFunctions = 600;  //!< logging/CGI tail (Zipf)
    double codeSkew = 1.25;
    unsigned callsPerRequest = 8;
    double valueStability = 0.5;
};

/** Deterministic SPECweb99-like trace generator. */
class SpecWebWorkload : public WorkloadBase
{
  public:
    SpecWebWorkload();
    explicit SpecWebWorkload(const SpecWebParams &params);

  protected:
    void initialize() override;
    void generate() override;

  private:
    void emitParse();
    void emitHelperCall();
    uint64_t emitLookup(uint64_t file_id, Reg entry_reg);
    void emitSendLoop(uint64_t file_base, unsigned file_lines,
                      Reg entry_reg);

    uint64_t fileBase(uint64_t file_id) const;
    unsigned fileLines(uint64_t file_id) const;

    SpecWebParams prm;
    uint64_t requestCounter = 0;
};

} // namespace mlpsim::workloads
