#include "trace_buffer.hh"

#include <algorithm>

#include "util/cancellation.hh"

namespace mlpsim::trace {

void
TraceBuffer::fill(TraceSource &source, uint64_t limit)
{
    Instruction inst;
    uint64_t remaining = limit;
    bool more = true;
    while (remaining > 0 && more) {
        // Trace generation is the other long phase of a sweep job, so
        // it polls for cancellation too (once per chunk).
        pollCancellation();
        if (chunkList.empty() || chunkList.back()->full())
            chunkList.push_back(
                std::make_shared<TraceChunk>(n, chunkCapacity));
        ChunkFiller fill(*chunkList.back());
        while (!fill.full() && remaining > 0 &&
               (more = source.next(inst))) {
            fill.append(inst);
            --remaining;
        }
        n += fill.appended();
        fill.publish();
    }
    // An exhausted source can leave a chunk that was opened for it
    // but never received an instruction.
    if (!chunkList.empty() && chunkList.back()->empty())
        chunkList.pop_back();
}

} // namespace mlpsim::trace
