#include "trace_buffer.hh"

#include <algorithm>

#include "util/cancellation.hh"

namespace mlpsim::trace {

void
TraceBuffer::fill(TraceSource &source, uint64_t limit)
{
    // Reserve up front so multi-million-entry fills do not repeatedly
    // reallocate (and copy) the vector, but cap the reservation: limit
    // is caller-supplied and may be "all of it" (UINT64_MAX), while
    // the source may produce far less.
    constexpr uint64_t maxReserve = uint64_t(1) << 22;
    insts.reserve(insts.size() + size_t(std::min(limit, maxReserve)));
    Instruction inst;
    for (uint64_t i = 0; i < limit && source.next(inst); ++i) {
        // Trace generation is the other long phase of a sweep job, so
        // it polls for cancellation too (every 64K instructions).
        if ((i & 0xFFFF) == 0)
            pollCancellation();
        insts.push_back(inst);
    }
}

} // namespace mlpsim::trace
