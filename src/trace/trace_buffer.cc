#include "trace_buffer.hh"

namespace mlpsim::trace {

void
TraceBuffer::fill(TraceSource &source, uint64_t limit)
{
    insts.reserve(insts.size() + limit);
    Instruction inst;
    for (uint64_t i = 0; i < limit && source.next(inst); ++i)
        insts.push_back(inst);
}

} // namespace mlpsim::trace
