#include "trace_io.hh"

#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <memory>

#include "util/crc32.hh"
#include "util/logging.hh"

namespace mlpsim::trace {

namespace {

constexpr char traceMagic[4] = {'M', 'L', 'P', 'T'};

/**
 * Full on-disk header. Version 1 files stop at `name` (80 bytes);
 * version 2 appends the two CRC words (88 bytes). The prefix through
 * `name` is layout-identical in both versions.
 */
struct FileHeader
{
    char magic[4];
    uint32_t version;
    uint64_t numInsts;
    char name[64];
    uint32_t payloadCrc; // v2: CRC-32 of all record bytes
    uint32_t headerCrc;  // v2: CRC-32 of bytes [0, offsetof(headerCrc))
};

constexpr size_t headerSizeV1 = offsetof(FileHeader, payloadCrc);
constexpr size_t headerSizeV2 = sizeof(FileHeader);
constexpr size_t headerCrcSpan = offsetof(FileHeader, headerCrc);
static_assert(headerSizeV1 == 80, "v1 header layout drifted");
static_assert(headerSizeV2 == 88, "v2 header layout drifted");

/** Fixed-width on-disk instruction record (identical in v1 and v2). */
struct FileRecord
{
    uint64_t pc;
    uint64_t effAddr;
    uint64_t value;
    uint64_t target;
    uint8_t cls;
    uint8_t dst;
    uint8_t src[maxSrcRegs];
    uint8_t taken;
    uint8_t brKind;
    uint8_t pad;
};

static_assert(sizeof(FileRecord) == 40, "trace record layout drifted");

constexpr uint8_t maxInstClass =
    static_cast<uint8_t>(InstClass::Serializing);
constexpr uint8_t maxBranchKind = static_cast<uint8_t>(BranchKind::Jump);

struct FileCloser
{
    void operator()(std::FILE *f) const { if (f) std::fclose(f); }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

FileRecord
packRecord(const Instruction &inst)
{
    FileRecord rec{};
    rec.pc = inst.pc;
    rec.effAddr = inst.effAddr;
    rec.value = inst.value();
    rec.target = inst.target();
    rec.cls = static_cast<uint8_t>(inst.cls());
    rec.dst = inst.dst;
    for (unsigned s = 0; s < maxSrcRegs; ++s)
        rec.src[s] = inst.src[s];
    rec.taken = inst.taken() ? 1 : 0;
    rec.brKind = static_cast<uint8_t>(inst.brKind());
    return rec;
}

/** Range-check the enum fields before trusting them as C++ enums. */
Status
unpackRecord(const FileRecord &rec, uint64_t index, Instruction &inst)
{
    if (rec.cls > maxInstClass) {
        return Status::dataLoss("record ", index,
                                ": invalid instruction class ",
                                unsigned(rec.cls));
    }
    if (rec.brKind > maxBranchKind) {
        return Status::dataLoss("record ", index,
                                ": invalid branch kind ",
                                unsigned(rec.brKind));
    }
    inst.pc = rec.pc;
    inst.effAddr = rec.effAddr;
    inst.setCls(static_cast<InstClass>(rec.cls));
    // In memory the value and target words share one slot (they are
    // mutually exclusive by class); a record carrying the word its
    // class cannot use drops that word here, exactly as every factory-
    // built trace always left it zero.
    inst.setValue(rec.cls == static_cast<uint8_t>(InstClass::Branch)
                      ? rec.target
                      : rec.value);
    inst.dst = rec.dst;
    for (unsigned s = 0; s < maxSrcRegs; ++s)
        inst.src[s] = rec.src[s];
    inst.setTaken(rec.taken != 0);
    inst.setBrKind(static_cast<BranchKind>(rec.brKind));
    return Status::okStatus();
}

Expected<uint64_t>
fileSize(std::FILE *f, const std::string &path)
{
    if (std::fseek(f, 0, SEEK_END) != 0)
        return Status::ioError("cannot seek in '", path, "'");
    const long size = std::ftell(f);
    if (size < 0)
        return Status::ioError("cannot determine size of '", path, "'");
    if (std::fseek(f, 0, SEEK_SET) != 0)
        return Status::ioError("cannot seek in '", path, "'");
    return uint64_t(size);
}

} // namespace

Status
writeTrace(const std::string &path, const TraceBuffer &buffer)
{
    // Write to a sibling temp file and rename into place so a crashed
    // or failed write can never leave a half-written trace at `path`.
    const std::string tmp_path =
        path + ".tmp." + std::to_string(::getpid());
    FilePtr f(std::fopen(tmp_path.c_str(), "wb"));
    if (!f) {
        return Status::ioError("cannot create trace file '", tmp_path,
                               "': ", std::strerror(errno));
    }

    auto fail = [&](Status status) {
        f.reset();
        std::remove(tmp_path.c_str());
        return std::move(status).withContext("writing '", path, "'");
    };

    // The payload CRC is only known after streaming the records, so
    // write a placeholder header first and patch it at the end; the
    // rename makes the intermediate state invisible to readers.
    FileHeader hdr{};
    std::memcpy(hdr.magic, traceMagic, sizeof(traceMagic));
    hdr.version = traceFormatVersion;
    hdr.numInsts = buffer.size();
    std::strncpy(hdr.name, buffer.name().c_str(), sizeof(hdr.name) - 1);
    if (std::fwrite(&hdr, headerSizeV2, 1, f.get()) != 1)
        return fail(Status::ioError("short write of trace header"));

    Crc32 payload_crc;
    for (const Instruction &inst : buffer.instructions()) {
        const FileRecord rec = packRecord(inst);
        payload_crc.update(&rec, sizeof(rec));
        if (std::fwrite(&rec, sizeof(rec), 1, f.get()) != 1)
            return fail(Status::ioError("short write of trace record"));
    }

    hdr.payloadCrc = payload_crc.value();
    hdr.headerCrc = Crc32::compute(&hdr, headerCrcSpan);
    if (std::fseek(f.get(), 0, SEEK_SET) != 0 ||
        std::fwrite(&hdr, headerSizeV2, 1, f.get()) != 1) {
        return fail(Status::ioError("cannot finalise trace header"));
    }

    if (std::fflush(f.get()) != 0)
        return fail(Status::ioError("flush failed: ",
                                    std::strerror(errno)));
    f.reset(); // close before rename
    if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
        Status st = Status::ioError("cannot rename '", tmp_path,
                                    "' into place: ",
                                    std::strerror(errno));
        std::remove(tmp_path.c_str());
        return std::move(st).withContext("writing '", path, "'");
    }
    return Status::okStatus();
}

Expected<TraceBuffer>
readTrace(const std::string &path)
{
    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (!f) {
        return Status::notFound("cannot open trace file '", path, "': ",
                                std::strerror(errno));
    }

    auto corrupt = [&](Status status) {
        return std::move(status).withContext("reading '", path, "'");
    };

    MLPSIM_ASSIGN_OR_RETURN(const uint64_t actual_size,
                            fileSize(f.get(), path));

    // Magic + version prefix, common to every format version.
    uint8_t raw[headerSizeV2];
    if (actual_size < 8 ||
        std::fread(raw, 8, 1, f.get()) != 1) {
        return corrupt(Status::dataLoss(
            "file is ", actual_size,
            " bytes, too short for a trace header"));
    }
    if (std::memcmp(raw, traceMagic, sizeof(traceMagic)) != 0)
        return corrupt(Status::dataLoss("not an mlpsim trace file"));

    uint32_t version;
    std::memcpy(&version, raw + sizeof(traceMagic), sizeof(version));
    if (version < traceFormatMinVersion || version > traceFormatVersion) {
        return corrupt(Status::invalidArgument(
            "unsupported format version ", version, " (expected ",
            traceFormatMinVersion, "..", traceFormatVersion, ")"));
    }

    const size_t header_size =
        version == 1 ? headerSizeV1 : headerSizeV2;
    if (actual_size < header_size ||
        std::fread(raw + 8, header_size - 8, 1, f.get()) != 1) {
        return corrupt(Status::dataLoss(
            "truncated header: file is ", actual_size,
            " bytes, header needs ", header_size));
    }

    FileHeader hdr{};
    std::memcpy(&hdr, raw, header_size);

    if (version >= 2) {
        const uint32_t computed = Crc32::compute(raw, headerCrcSpan);
        if (computed != hdr.headerCrc) {
            return corrupt(Status::dataLoss(
                "header CRC mismatch (stored ", hdr.headerCrc,
                ", computed ", computed, ")"));
        }
    }

    // Bounded name read: the field must contain its terminator.
    if (std::memchr(hdr.name, '\0', sizeof(hdr.name)) == nullptr) {
        return corrupt(Status::dataLoss(
            "trace name field is not NUL-terminated (oversized name)"));
    }

    // Cross-check the declared record count against the file's real
    // size before reading a single record: catches truncation,
    // trailing garbage, and a tampered count in one place.
    if (hdr.numInsts >
        (UINT64_MAX - header_size) / sizeof(FileRecord)) {
        return corrupt(Status::dataLoss("implausible record count ",
                                        hdr.numInsts));
    }
    const uint64_t expected_size =
        header_size + hdr.numInsts * sizeof(FileRecord);
    if (actual_size < expected_size) {
        const uint64_t whole_records =
            (actual_size - header_size) / sizeof(FileRecord);
        return corrupt(Status::dataLoss(
            "truncated: ", hdr.numInsts, " records declared but file "
            "ends after record ", whole_records, " (", actual_size,
            " of ", expected_size, " bytes)"));
    }
    if (actual_size > expected_size) {
        return corrupt(Status::dataLoss(
            "record-count mismatch: ", hdr.numInsts,
            " records declared but file has ",
            actual_size - expected_size, " trailing bytes"));
    }

    TraceBuffer buffer{std::string(hdr.name)};
    Crc32 payload_crc;
    for (uint64_t i = 0; i < hdr.numInsts; ++i) {
        FileRecord rec{};
        if (std::fread(&rec, sizeof(rec), 1, f.get()) != 1) {
            return corrupt(Status::dataLoss("truncated at record ", i,
                                            " of ", hdr.numInsts));
        }
        payload_crc.update(&rec, sizeof(rec));
        Instruction inst;
        Status rec_status = unpackRecord(rec, i, inst);
        if (!rec_status.ok())
            return corrupt(std::move(rec_status));
        buffer.append(inst);
    }

    if (version >= 2 && payload_crc.value() != hdr.payloadCrc) {
        return corrupt(Status::dataLoss(
            "payload CRC mismatch (stored ", hdr.payloadCrc,
            ", computed ", payload_crc.value(),
            "): trace records are corrupt"));
    }
    return buffer;
}

void
writeTraceFile(const std::string &path, const TraceBuffer &buffer)
{
    writeTrace(path, buffer).orFatal();
}

TraceBuffer
readTraceFile(const std::string &path)
{
    return readTrace(path).orFatal();
}

} // namespace mlpsim::trace
