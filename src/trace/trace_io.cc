#include "trace_io.hh"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <memory>

#include "util/crc32.hh"
#include "util/logging.hh"

namespace mlpsim::trace {

namespace {

constexpr char traceMagic[4] = {'M', 'L', 'P', 'T'};

/**
 * Full on-disk header. Version 1 files stop at `name` (80 bytes);
 * versions 2 and 3 append the two CRC words (88 bytes). The prefix
 * through `name` is layout-identical in every version.
 */
struct FileHeader
{
    char magic[4];
    uint32_t version;
    uint64_t numInsts;
    char name[64];
    uint32_t payloadCrc; // v2+: CRC-32 of all payload bytes
    uint32_t headerCrc;  // v2+: CRC-32 of bytes [0, offsetof(headerCrc))
};

constexpr size_t headerSizeV1 = offsetof(FileHeader, payloadCrc);
constexpr size_t headerSizeV2 = sizeof(FileHeader);
constexpr size_t headerCrcSpan = offsetof(FileHeader, headerCrc);
static_assert(headerSizeV1 == 80, "v1 header layout drifted");
static_assert(headerSizeV2 == 88, "v2 header layout drifted");

/** v3 payload prologue, immediately after the header. */
struct ChunkPrologue
{
    uint64_t chunkCapacity;
    uint64_t numChunks;
};
static_assert(sizeof(ChunkPrologue) == 16, "v3 prologue layout drifted");

/** Bytes one instruction occupies inside a v3 chunk section. */
constexpr uint64_t v3BytesPerInst = 3 * 8 + 5;
/** Per-chunk section overhead: the count and chunkCrc words. */
constexpr uint64_t v3ChunkOverhead = 8;
/** Largest chunk capacity the reader will allocate for. */
constexpr uint64_t maxV3ChunkCapacity = uint64_t(1) << 20;

/** Fixed-width on-disk instruction record (identical in v1 and v2). */
struct FileRecord
{
    uint64_t pc;
    uint64_t effAddr;
    uint64_t value;
    uint64_t target;
    uint8_t cls;
    uint8_t dst;
    uint8_t src[maxSrcRegs];
    uint8_t taken;
    uint8_t brKind;
    uint8_t pad;
};

static_assert(sizeof(FileRecord) == 40, "trace record layout drifted");

constexpr uint8_t maxInstClass =
    static_cast<uint8_t>(InstClass::Serializing);
constexpr uint8_t maxBranchKind = static_cast<uint8_t>(BranchKind::Jump);

struct FileCloser
{
    void operator()(std::FILE *f) const { if (f) std::fclose(f); }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

FileRecord
packRecord(const Instruction &inst)
{
    FileRecord rec{};
    rec.pc = inst.pc;
    rec.effAddr = inst.effAddr;
    rec.value = inst.value();
    rec.target = inst.target();
    rec.cls = static_cast<uint8_t>(inst.cls());
    rec.dst = inst.dst;
    for (unsigned s = 0; s < maxSrcRegs; ++s)
        rec.src[s] = inst.src[s];
    rec.taken = inst.taken() ? 1 : 0;
    rec.brKind = static_cast<uint8_t>(inst.brKind());
    return rec;
}

/** Range-check the enum fields before trusting them as C++ enums. */
Status
unpackRecord(const FileRecord &rec, uint64_t index, Instruction &inst)
{
    if (rec.cls > maxInstClass) {
        return Status::dataLoss("record ", index,
                                ": invalid instruction class ",
                                unsigned(rec.cls));
    }
    if (rec.brKind > maxBranchKind) {
        return Status::dataLoss("record ", index,
                                ": invalid branch kind ",
                                unsigned(rec.brKind));
    }
    inst.pc = rec.pc;
    inst.effAddr = rec.effAddr;
    inst.setCls(static_cast<InstClass>(rec.cls));
    // In memory the value and target words share one slot (they are
    // mutually exclusive by class); a record carrying the word its
    // class cannot use drops that word here, exactly as every factory-
    // built trace always left it zero.
    inst.setValue(rec.cls == static_cast<uint8_t>(InstClass::Branch)
                      ? rec.target
                      : rec.value);
    inst.dst = rec.dst;
    for (unsigned s = 0; s < maxSrcRegs; ++s)
        inst.src[s] = rec.src[s];
    inst.setTaken(rec.taken != 0);
    inst.setBrKind(static_cast<BranchKind>(rec.brKind));
    return Status::okStatus();
}

/**
 * Range-check one packed v3 meta byte: the class and branch-kind
 * fields must name real enumerators and the unused high bit must be
 * clear, so corrupt column bytes cannot smuggle an out-of-range enum
 * into the simulators.
 */
Status
checkMetaByte(uint8_t meta, uint64_t index)
{
    if ((meta & Instruction::clsMask) > maxInstClass) {
        return Status::dataLoss("record ", index,
                                ": invalid instruction class ",
                                unsigned(meta & Instruction::clsMask));
    }
    const uint8_t br_kind =
        (meta >> Instruction::brKindShift) & Instruction::clsMask;
    if (br_kind > maxBranchKind) {
        return Status::dataLoss("record ", index,
                                ": invalid branch kind ",
                                unsigned(br_kind));
    }
    if ((meta & 0x80) != 0) {
        return Status::dataLoss("record ", index,
                                ": invalid meta byte ", unsigned(meta));
    }
    return Status::okStatus();
}

Expected<uint64_t>
fileSize(std::FILE *f, const std::string &path)
{
    if (std::fseek(f, 0, SEEK_END) != 0)
        return Status::ioError("cannot seek in '", path, "'");
    const long size = std::ftell(f);
    if (size < 0)
        return Status::ioError("cannot determine size of '", path, "'");
    if (std::fseek(f, 0, SEEK_SET) != 0)
        return Status::ioError("cannot seek in '", path, "'");
    return uint64_t(size);
}

/** Write raw bytes, folding them into the payload CRC. */
bool
writePayload(std::FILE *f, Crc32 &crc, const void *data, size_t bytes)
{
    if (bytes == 0)
        return true;
    crc.update(data, bytes);
    return std::fwrite(data, bytes, 1, f) == 1;
}

/** The v2 payload: one 40-byte record per instruction. */
Status
writeRecordsV2(std::FILE *f, Crc32 &crc, const TraceBuffer &buffer)
{
    for (size_t ci = 0; ci < buffer.numChunks(); ++ci) {
        const TraceChunk &chunk = buffer.chunk(ci);
        for (uint32_t i = 0; i < chunk.count; ++i) {
            const FileRecord rec = packRecord(chunk.get(i));
            if (!writePayload(f, crc, &rec, sizeof(rec)))
                return Status::ioError("short write of trace record");
        }
    }
    return Status::okStatus();
}

/** The v3 payload: the chunk prologue plus one SoA section per chunk. */
Status
writeChunksV3(std::FILE *f, Crc32 &crc, const TraceBuffer &buffer)
{
    const ChunkPrologue pro{TraceBuffer::chunkCapacity,
                            buffer.numChunks()};
    if (!writePayload(f, crc, &pro, sizeof(pro)))
        return Status::ioError("short write of chunk prologue");

    for (size_t ci = 0; ci < buffer.numChunks(); ++ci) {
        const TraceChunk &c = buffer.chunk(ci);
        const size_t n = c.count;
        Crc32 chunk_crc;
        chunk_crc.update(c.pc.data(), n * 8);
        chunk_crc.update(c.effAddr.data(), n * 8);
        chunk_crc.update(c.payload.data(), n * 8);
        chunk_crc.update(c.meta.data(), n);
        chunk_crc.update(c.dst.data(), n);
        chunk_crc.update(c.src0.data(), n);
        chunk_crc.update(c.src1.data(), n);
        chunk_crc.update(c.src2.data(), n);

        const uint32_t count = c.count;
        const uint32_t section_crc = chunk_crc.value();
        if (!writePayload(f, crc, &count, sizeof(count)) ||
            !writePayload(f, crc, &section_crc, sizeof(section_crc)) ||
            !writePayload(f, crc, c.pc.data(), n * 8) ||
            !writePayload(f, crc, c.effAddr.data(), n * 8) ||
            !writePayload(f, crc, c.payload.data(), n * 8) ||
            !writePayload(f, crc, c.meta.data(), n) ||
            !writePayload(f, crc, c.dst.data(), n) ||
            !writePayload(f, crc, c.src0.data(), n) ||
            !writePayload(f, crc, c.src1.data(), n) ||
            !writePayload(f, crc, c.src2.data(), n)) {
            return Status::ioError("short write of chunk section");
        }
    }
    return Status::okStatus();
}

/** Read raw bytes, folding them into the payload CRC. */
bool
readPayload(std::FILE *f, Crc32 &crc, void *data, size_t bytes)
{
    if (bytes == 0)
        return true;
    if (std::fread(data, bytes, 1, f) != 1)
        return false;
    crc.update(data, bytes);
    return true;
}

/** Parse the v3 chunked payload into @p buffer. */
Status
readChunksV3(std::FILE *f, const FileHeader &hdr, uint64_t actual_size,
             TraceBuffer &buffer)
{
    Crc32 payload_crc;
    ChunkPrologue pro{};
    if (actual_size < headerSizeV2 + sizeof(pro) ||
        !readPayload(f, payload_crc, &pro, sizeof(pro))) {
        return Status::dataLoss("truncated: file ends inside the chunk "
                                "prologue");
    }
    if (pro.chunkCapacity == 0 ||
        pro.chunkCapacity > maxV3ChunkCapacity) {
        return Status::dataLoss("implausible chunk capacity ",
                                pro.chunkCapacity);
    }
    const uint64_t expected_chunks =
        hdr.numInsts == 0
            ? 0
            : (hdr.numInsts + pro.chunkCapacity - 1) / pro.chunkCapacity;
    if (pro.numChunks != expected_chunks) {
        return Status::dataLoss("chunk-count mismatch: ", hdr.numInsts,
                                " records at capacity ",
                                pro.chunkCapacity, " need ",
                                expected_chunks, " chunks, header says ",
                                pro.numChunks);
    }

    // Exact-size cross-check before any chunk is parsed (or memory
    // allocated for one): catches truncation, trailing garbage, and a
    // tampered count in one place.
    const uint64_t expected_size = headerSizeV2 + sizeof(pro) +
                                   pro.numChunks * v3ChunkOverhead +
                                   hdr.numInsts * v3BytesPerInst;
    if (actual_size < expected_size) {
        return Status::dataLoss("truncated: ", hdr.numInsts,
                                " records declared but file is ",
                                actual_size, " of ", expected_size,
                                " bytes");
    }
    if (actual_size > expected_size) {
        return Status::dataLoss(
            "record-count mismatch: file has ",
            actual_size - expected_size, " trailing bytes");
    }

    // A file written at the native capacity loads its chunks verbatim
    // (no per-record decode); other capacities re-chunk through
    // append().
    const bool native = pro.chunkCapacity == TraceBuffer::chunkCapacity;
    uint64_t remaining = hdr.numInsts;
    for (uint64_t ci = 0; ci < pro.numChunks; ++ci) {
        const uint64_t expect_count =
            std::min<uint64_t>(remaining, pro.chunkCapacity);
        uint32_t count = 0;
        uint32_t stored_crc = 0;
        if (!readPayload(f, payload_crc, &count, sizeof(count)) ||
            !readPayload(f, payload_crc, &stored_crc,
                         sizeof(stored_crc))) {
            return Status::dataLoss("truncated at chunk ", ci, " of ",
                                    pro.numChunks);
        }
        if (count != expect_count) {
            return Status::dataLoss("chunk ", ci, " count ", count,
                                    " does not match expected ",
                                    expect_count);
        }

        auto chunk = std::make_shared<TraceChunk>(
            buffer.size(),
            native ? TraceBuffer::chunkCapacity : uint32_t(count ? count : 1));
        chunk->pc.resize(count);
        chunk->effAddr.resize(count);
        chunk->payload.resize(count);
        chunk->meta.resize(count);
        chunk->dst.resize(count);
        chunk->src0.resize(count);
        chunk->src1.resize(count);
        chunk->src2.resize(count);
        chunk->count = count;
        if (!readPayload(f, payload_crc, chunk->pc.data(), count * 8) ||
            !readPayload(f, payload_crc, chunk->effAddr.data(),
                         count * 8) ||
            !readPayload(f, payload_crc, chunk->payload.data(),
                         count * 8) ||
            !readPayload(f, payload_crc, chunk->meta.data(), count) ||
            !readPayload(f, payload_crc, chunk->dst.data(), count) ||
            !readPayload(f, payload_crc, chunk->src0.data(), count) ||
            !readPayload(f, payload_crc, chunk->src1.data(), count) ||
            !readPayload(f, payload_crc, chunk->src2.data(), count)) {
            return Status::dataLoss("truncated inside chunk ", ci,
                                    " of ", pro.numChunks);
        }

        Crc32 chunk_crc;
        chunk_crc.update(chunk->pc.data(), count * 8);
        chunk_crc.update(chunk->effAddr.data(), count * 8);
        chunk_crc.update(chunk->payload.data(), count * 8);
        chunk_crc.update(chunk->meta.data(), count);
        chunk_crc.update(chunk->dst.data(), count);
        chunk_crc.update(chunk->src0.data(), count);
        chunk_crc.update(chunk->src1.data(), count);
        chunk_crc.update(chunk->src2.data(), count);
        if (chunk_crc.value() != stored_crc) {
            return Status::dataLoss("chunk ", ci,
                                    " CRC mismatch (stored ", stored_crc,
                                    ", computed ", chunk_crc.value(),
                                    "): chunk columns are corrupt");
        }

        for (uint32_t i = 0; i < count; ++i) {
            Status meta_status =
                checkMetaByte(chunk->meta[i], chunk->base + i);
            if (!meta_status.ok())
                return meta_status;
        }

        if (native) {
            buffer.appendChunk(std::move(chunk));
        } else {
            for (uint32_t i = 0; i < count; ++i)
                buffer.append(chunk->get(i));
        }
        remaining -= expect_count;
    }

    if (payload_crc.value() != hdr.payloadCrc) {
        return Status::dataLoss(
            "payload CRC mismatch (stored ", hdr.payloadCrc,
            ", computed ", payload_crc.value(),
            "): trace payload is corrupt");
    }
    return Status::okStatus();
}

/** Parse the v1/v2 record-stream payload into @p buffer. */
Status
readRecordsV1V2(std::FILE *f, const FileHeader &hdr, uint32_t version,
                uint64_t actual_size, size_t header_size,
                TraceBuffer &buffer)
{
    // Cross-check the declared record count against the file's real
    // size before reading a single record: catches truncation,
    // trailing garbage, and a tampered count in one place.
    if (hdr.numInsts > (UINT64_MAX - header_size) / sizeof(FileRecord)) {
        return Status::dataLoss("implausible record count ",
                                hdr.numInsts);
    }
    const uint64_t expected_size =
        header_size + hdr.numInsts * sizeof(FileRecord);
    if (actual_size < expected_size) {
        const uint64_t whole_records =
            (actual_size - header_size) / sizeof(FileRecord);
        return Status::dataLoss(
            "truncated: ", hdr.numInsts, " records declared but file "
            "ends after record ", whole_records, " (", actual_size,
            " of ", expected_size, " bytes)");
    }
    if (actual_size > expected_size) {
        return Status::dataLoss(
            "record-count mismatch: ", hdr.numInsts,
            " records declared but file has ",
            actual_size - expected_size, " trailing bytes");
    }

    Crc32 payload_crc;
    for (uint64_t i = 0; i < hdr.numInsts; ++i) {
        FileRecord rec{};
        if (std::fread(&rec, sizeof(rec), 1, f) != 1) {
            return Status::dataLoss("truncated at record ", i, " of ",
                                    hdr.numInsts);
        }
        payload_crc.update(&rec, sizeof(rec));
        Instruction inst;
        Status rec_status = unpackRecord(rec, i, inst);
        if (!rec_status.ok())
            return rec_status;
        buffer.append(inst);
    }

    if (version >= 2 && payload_crc.value() != hdr.payloadCrc) {
        return Status::dataLoss(
            "payload CRC mismatch (stored ", hdr.payloadCrc,
            ", computed ", payload_crc.value(),
            "): trace records are corrupt");
    }
    return Status::okStatus();
}

} // namespace

Status
writeTrace(const std::string &path, const TraceBuffer &buffer,
           uint32_t version)
{
    if (version != 2 && version != 3) {
        return Status::invalidArgument("cannot write format version ",
                                       version, " (writer supports 2 "
                                       "and 3)");
    }

    // Write to a sibling temp file and rename into place so a crashed
    // or failed write can never leave a half-written trace at `path`.
    const std::string tmp_path =
        path + ".tmp." + std::to_string(::getpid());
    FilePtr f(std::fopen(tmp_path.c_str(), "wb"));
    if (!f) {
        return Status::ioError("cannot create trace file '", tmp_path,
                               "': ", std::strerror(errno));
    }

    auto fail = [&](Status status) {
        f.reset();
        std::remove(tmp_path.c_str());
        return std::move(status).withContext("writing '", path, "'");
    };

    // The payload CRC is only known after streaming the payload, so
    // write a placeholder header first and patch it at the end; the
    // rename makes the intermediate state invisible to readers.
    FileHeader hdr{};
    std::memcpy(hdr.magic, traceMagic, sizeof(traceMagic));
    hdr.version = version;
    hdr.numInsts = buffer.size();
    std::strncpy(hdr.name, buffer.name().c_str(), sizeof(hdr.name) - 1);
    if (std::fwrite(&hdr, headerSizeV2, 1, f.get()) != 1)
        return fail(Status::ioError("short write of trace header"));

    Crc32 payload_crc;
    Status payload_status =
        version == 3 ? writeChunksV3(f.get(), payload_crc, buffer)
                     : writeRecordsV2(f.get(), payload_crc, buffer);
    if (!payload_status.ok())
        return fail(std::move(payload_status));

    hdr.payloadCrc = payload_crc.value();
    hdr.headerCrc = Crc32::compute(&hdr, headerCrcSpan);
    if (std::fseek(f.get(), 0, SEEK_SET) != 0 ||
        std::fwrite(&hdr, headerSizeV2, 1, f.get()) != 1) {
        return fail(Status::ioError("cannot finalise trace header"));
    }

    if (std::fflush(f.get()) != 0)
        return fail(Status::ioError("flush failed: ",
                                    std::strerror(errno)));
    f.reset(); // close before rename
    if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
        Status st = Status::ioError("cannot rename '", tmp_path,
                                    "' into place: ",
                                    std::strerror(errno));
        std::remove(tmp_path.c_str());
        return std::move(st).withContext("writing '", path, "'");
    }
    return Status::okStatus();
}

Expected<TraceBuffer>
readTrace(const std::string &path)
{
    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (!f) {
        return Status::notFound("cannot open trace file '", path, "': ",
                                std::strerror(errno));
    }

    auto corrupt = [&](Status status) {
        return std::move(status).withContext("reading '", path, "'");
    };

    MLPSIM_ASSIGN_OR_RETURN(const uint64_t actual_size,
                            fileSize(f.get(), path));

    // Magic + version prefix, common to every format version.
    uint8_t raw[headerSizeV2];
    if (actual_size < 8 ||
        std::fread(raw, 8, 1, f.get()) != 1) {
        return corrupt(Status::dataLoss(
            "file is ", actual_size,
            " bytes, too short for a trace header"));
    }
    if (std::memcmp(raw, traceMagic, sizeof(traceMagic)) != 0)
        return corrupt(Status::dataLoss("not an mlpsim trace file"));

    uint32_t version;
    std::memcpy(&version, raw + sizeof(traceMagic), sizeof(version));
    if (version < traceFormatMinVersion || version > traceFormatVersion) {
        return corrupt(Status::invalidArgument(
            "unsupported format version ", version, " (expected ",
            traceFormatMinVersion, "..", traceFormatVersion, ")"));
    }

    const size_t header_size =
        version == 1 ? headerSizeV1 : headerSizeV2;
    if (actual_size < header_size ||
        std::fread(raw + 8, header_size - 8, 1, f.get()) != 1) {
        return corrupt(Status::dataLoss(
            "truncated header: file is ", actual_size,
            " bytes, header needs ", header_size));
    }

    FileHeader hdr{};
    std::memcpy(&hdr, raw, header_size);

    if (version >= 2) {
        const uint32_t computed = Crc32::compute(raw, headerCrcSpan);
        if (computed != hdr.headerCrc) {
            return corrupt(Status::dataLoss(
                "header CRC mismatch (stored ", hdr.headerCrc,
                ", computed ", computed, ")"));
        }
    }

    // Bounded name read: the field must contain its terminator.
    if (std::memchr(hdr.name, '\0', sizeof(hdr.name)) == nullptr) {
        return corrupt(Status::dataLoss(
            "trace name field is not NUL-terminated (oversized name)"));
    }

    TraceBuffer buffer{std::string(hdr.name)};
    Status payload_status =
        version == 3
            ? readChunksV3(f.get(), hdr, actual_size, buffer)
            : readRecordsV1V2(f.get(), hdr, version, actual_size,
                              header_size, buffer);
    if (!payload_status.ok())
        return corrupt(std::move(payload_status));
    return buffer;
}

void
writeTraceFile(const std::string &path, const TraceBuffer &buffer)
{
    writeTrace(path, buffer).orFatal();
}

TraceBuffer
readTraceFile(const std::string &path)
{
    return readTrace(path).orFatal();
}

} // namespace mlpsim::trace
