#include "trace_io.hh"

#include <cstdio>
#include <cstring>
#include <memory>

#include "util/logging.hh"

namespace mlpsim::trace {

namespace {

constexpr char traceMagic[4] = {'M', 'L', 'P', 'T'};

struct FileHeader
{
    char magic[4];
    uint32_t version;
    uint64_t numInsts;
    char name[64];
};

/** Fixed-width on-disk instruction record. */
struct FileRecord
{
    uint64_t pc;
    uint64_t effAddr;
    uint64_t value;
    uint64_t target;
    uint8_t cls;
    uint8_t dst;
    uint8_t src[maxSrcRegs];
    uint8_t taken;
    uint8_t brKind;
    uint8_t pad;
};

static_assert(sizeof(FileRecord) == 40, "trace record layout drifted");

struct FileCloser
{
    void operator()(std::FILE *f) const { if (f) std::fclose(f); }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

} // namespace

void
writeTraceFile(const std::string &path, const TraceBuffer &buffer)
{
    FilePtr f(std::fopen(path.c_str(), "wb"));
    if (!f)
        fatal("cannot create trace file '", path, "'");

    FileHeader hdr{};
    std::memcpy(hdr.magic, traceMagic, sizeof(traceMagic));
    hdr.version = traceFormatVersion;
    hdr.numInsts = buffer.size();
    std::strncpy(hdr.name, buffer.name().c_str(), sizeof(hdr.name) - 1);
    if (std::fwrite(&hdr, sizeof(hdr), 1, f.get()) != 1)
        fatal("short write of trace header to '", path, "'");

    for (const Instruction &inst : buffer.instructions()) {
        FileRecord rec{};
        rec.pc = inst.pc;
        rec.effAddr = inst.effAddr;
        rec.value = inst.value;
        rec.target = inst.target;
        rec.cls = static_cast<uint8_t>(inst.cls);
        rec.dst = inst.dst;
        for (unsigned s = 0; s < maxSrcRegs; ++s)
            rec.src[s] = inst.src[s];
        rec.taken = inst.taken ? 1 : 0;
        rec.brKind = static_cast<uint8_t>(inst.brKind);
        if (std::fwrite(&rec, sizeof(rec), 1, f.get()) != 1)
            fatal("short write of trace record to '", path, "'");
    }
}

TraceBuffer
readTraceFile(const std::string &path)
{
    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (!f)
        fatal("cannot open trace file '", path, "'");

    FileHeader hdr{};
    if (std::fread(&hdr, sizeof(hdr), 1, f.get()) != 1)
        fatal("short read of trace header from '", path, "'");
    if (std::memcmp(hdr.magic, traceMagic, sizeof(traceMagic)) != 0)
        fatal("'", path, "' is not an mlpsim trace file");
    if (hdr.version != traceFormatVersion) {
        fatal("trace file '", path, "' has version ", hdr.version,
              ", expected ", traceFormatVersion);
    }

    hdr.name[sizeof(hdr.name) - 1] = '\0';
    TraceBuffer buffer{std::string(hdr.name)};
    for (uint64_t i = 0; i < hdr.numInsts; ++i) {
        FileRecord rec{};
        if (std::fread(&rec, sizeof(rec), 1, f.get()) != 1)
            fatal("trace file '", path, "' truncated at record ", i);
        Instruction inst;
        inst.pc = rec.pc;
        inst.effAddr = rec.effAddr;
        inst.value = rec.value;
        inst.target = rec.target;
        inst.cls = static_cast<InstClass>(rec.cls);
        inst.dst = rec.dst;
        for (unsigned s = 0; s < maxSrcRegs; ++s)
            inst.src[s] = rec.src[s];
        inst.taken = rec.taken != 0;
        inst.brKind = static_cast<trace::BranchKind>(rec.brKind);
        buffer.append(inst);
    }
    return buffer;
}

} // namespace mlpsim::trace
