#include "trace_stats.hh"

namespace mlpsim::trace {

TraceMix
measureMix(TraceSource &source, uint64_t max_insts)
{
    TraceMix mix;
    Instruction inst;
    while (mix.total < max_insts && source.next(inst)) {
        ++mix.total;
        switch (inst.cls()) {
          case InstClass::Alu: ++mix.alu; break;
          case InstClass::Load: ++mix.loads; break;
          case InstClass::Store: ++mix.stores; break;
          case InstClass::Branch:
            ++mix.branches;
            if (inst.taken())
                ++mix.takenBranches;
            break;
          case InstClass::Prefetch: ++mix.prefetches; break;
          case InstClass::Serializing: ++mix.serializing; break;
        }
    }
    source.reset();
    return mix;
}

} // namespace mlpsim::trace
