/**
 * @file
 * Versioned binary trace file format (current: version 2).
 *
 * The format exists so expensive synthetic traces can be generated
 * once and replayed from disk, and so external tools can feed real
 * traces into mlpsim. Because those files cross process and machine
 * boundaries, the reader treats them as untrusted input: every
 * structural defect — truncation, bit rot, tampering, a buggy writer —
 * is reported as a descriptive Status error, never an abort and never
 * silent garbage.
 *
 * On-disk layout (all fields little-endian, no padding):
 *
 *   offset size  field
 *   ------ ----  ------------------------------------------------
 *        0    4  magic "MLPT"
 *        4    4  format version (2)
 *        8    8  record count
 *       16   64  trace name, NUL-terminated and NUL-padded
 *       80    4  payload CRC-32 (IEEE, over all record bytes)   [v2]
 *       84    4  header CRC-32 (IEEE, over bytes [0, 84))       [v2]
 *       88  40×N instruction records (see trace_io.cc)
 *
 * Version 1 files (the original format) lack the two CRC words; their
 * records start at offset 80. The reader accepts both versions; the
 * writer always produces version 2.
 *
 * Integrity checks performed by readTrace():
 *  - magic and version recognised;
 *  - header CRC (v2) — any corrupted header byte is detected;
 *  - file size must equal header size + 40 × record count exactly,
 *    so truncation and trailing garbage are both diagnosed up front
 *    (and the record count is cross-checked against reality);
 *  - trace name must be NUL-terminated within its 64-byte field;
 *  - per-record range checks on the class/branch-kind enums;
 *  - payload CRC (v2) — any corrupted record byte is detected.
 *
 * writeTrace() writes to a temporary file in the same directory and
 * atomically rename(2)s it into place, so an interrupted or failed
 * write can never leave a half-written trace at the target path.
 *
 * Error-handling convention: the Status/Expected API (writeTrace /
 * readTrace) is the real interface; writeTraceFile / readTraceFile are
 * thin fatal()-on-error wrappers kept for interactive tools that want
 * bad input to terminate the process (see DESIGN.md "Error handling").
 */
#pragma once

#include <string>

#include "trace/trace_buffer.hh"
#include "util/status.hh"

namespace mlpsim::trace {

/** Version written by writeTrace(). */
constexpr uint32_t traceFormatVersion = 2;

/** Oldest version readTrace() still accepts. */
constexpr uint32_t traceFormatMinVersion = 1;

/**
 * Write @p buffer to @p path (format version 2, atomic
 * temp-file-and-rename). Returns a Status describing any I/O failure;
 * on failure the target path is left untouched.
 */
Status writeTrace(const std::string &path, const TraceBuffer &buffer);

/**
 * Read a version-1 or version-2 trace file, running the full
 * integrity checklist above. Corrupt or truncated input yields a
 * DataLoss/InvalidArgument Status naming the file and the defect.
 */
Expected<TraceBuffer> readTrace(const std::string &path);

/** fatal()-on-error wrapper around writeTrace() for legacy callers. */
void writeTraceFile(const std::string &path, const TraceBuffer &buffer);

/** fatal()-on-error wrapper around readTrace() for legacy callers. */
TraceBuffer readTraceFile(const std::string &path);

} // namespace mlpsim::trace
