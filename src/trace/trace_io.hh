/**
 * @file
 * Versioned binary trace file format (current: version 3, chunked
 * structure-of-arrays).
 *
 * The format exists so expensive synthetic traces can be generated
 * once and replayed from disk, and so external tools can feed real
 * traces into mlpsim. Because those files cross process and machine
 * boundaries, the reader treats them as untrusted input: every
 * structural defect — truncation, bit rot, tampering, a buggy writer —
 * is reported as a descriptive Status error, never an abort and never
 * silent garbage.
 *
 * Common header (all fields little-endian, no padding):
 *
 *   offset size  field
 *   ------ ----  ------------------------------------------------
 *        0    4  magic "MLPT"
 *        4    4  format version (1, 2 or 3)
 *        8    8  record count (instructions)
 *       16   64  trace name, NUL-terminated and NUL-padded
 *       80    4  payload CRC-32 (IEEE, over all payload bytes) [v2+]
 *       84    4  header CRC-32 (IEEE, over bytes [0, 84))      [v2+]
 *
 * v1/v2 payload: 40-byte array-of-structs records starting at offset
 * 80 (v1) or 88 (v2) — see trace_io.cc for the record layout.
 *
 * v3 payload (offset 88): a 16-byte prologue [u64 chunkCapacity]
 * [u64 numChunks], then one section per chunk:
 *
 *   [u32 count][u32 chunkCrc]
 *   [count × u64 pc][count × u64 effAddr][count × u64 payload]
 *   [count × u8 meta][count × u8 dst][count × u8 src0]
 *   [count × u8 src1][count × u8 src2]
 *
 * i.e. the TraceChunk columns verbatim (trace_chunk.hh), 29 bytes per
 * instruction instead of 40, loadable straight into the chunk the
 * simulators consume with no per-record decode. chunkCrc covers that
 * chunk's column bytes, so corruption is localised to a chunk; the
 * header's payload CRC additionally covers the whole payload region
 * (prologue and chunk sections), preserving the v2 design property
 * that every single-bit flip anywhere in the file is detected. Every
 * chunk except the last must hold exactly chunkCapacity instructions,
 * so the file size is fully determined by the header and truncation
 * or trailing garbage is diagnosed before any payload is parsed.
 *
 * Integrity checks performed by readTrace():
 *  - magic and version recognised;
 *  - header CRC (v2+) — any corrupted header byte is detected;
 *  - exact file-size cross-check against the declared counts, so
 *    truncation and trailing garbage are both diagnosed up front;
 *  - trace name must be NUL-terminated within its 64-byte field;
 *  - range checks on the class/branch-kind enums (and, v3, the
 *    unused high bit of the packed meta byte);
 *  - v3: per-chunk CRC and chunk-count/capacity cross-checks;
 *  - payload CRC (v2+) — any corrupted payload byte is detected.
 *
 * writeTrace() writes to a temporary file in the same directory and
 * atomically rename(2)s it into place, so an interrupted or failed
 * write can never leave a half-written trace at the target path.
 *
 * Error-handling convention: the Status/Expected API (writeTrace /
 * readTrace) is the real interface; writeTraceFile / readTraceFile are
 * thin fatal()-on-error wrappers kept for interactive tools that want
 * bad input to terminate the process (see DESIGN.md "Error handling").
 */
#pragma once

#include <string>

#include "trace/trace_buffer.hh"
#include "util/status.hh"

namespace mlpsim::trace {

/** Version written by writeTrace() by default. */
constexpr uint32_t traceFormatVersion = 3;

/** Oldest version readTrace() still accepts. */
constexpr uint32_t traceFormatMinVersion = 1;

/**
 * Write @p buffer to @p path (atomic temp-file-and-rename). @p version
 * selects the on-disk format: 3 (chunked SoA, the default) or 2 (the
 * legacy array-of-structs records, kept so compatibility tests can
 * mint v2 files). Returns a Status describing any I/O failure; on
 * failure the target path is left untouched.
 */
Status writeTrace(const std::string &path, const TraceBuffer &buffer,
                  uint32_t version = traceFormatVersion);

/**
 * Read a version-1, -2 or -3 trace file, running the full integrity
 * checklist above. Corrupt or truncated input yields a
 * DataLoss/InvalidArgument Status naming the file and the defect.
 */
Expected<TraceBuffer> readTrace(const std::string &path);

/** fatal()-on-error wrapper around writeTrace() for legacy callers. */
void writeTraceFile(const std::string &path, const TraceBuffer &buffer);

/** fatal()-on-error wrapper around readTrace() for legacy callers. */
TraceBuffer readTraceFile(const std::string &path);

} // namespace mlpsim::trace
