/**
 * @file
 * Versioned binary trace file format.
 *
 * Layout: a fixed header (magic "MLPT", version, instruction count,
 * name) followed by one fixed-width little-endian record per
 * instruction. The format exists so expensive synthetic traces can be
 * generated once and replayed from disk, and so external tools can
 * feed real traces into mlpsim.
 */
#pragma once

#include <string>

#include "trace/trace_buffer.hh"

namespace mlpsim::trace {

/** Current on-disk format version. */
constexpr uint32_t traceFormatVersion = 1;

/**
 * Write @p buffer to @p path.
 * Calls fatal() if the file cannot be created or written.
 */
void writeTraceFile(const std::string &path, const TraceBuffer &buffer);

/**
 * Read a trace file produced by writeTraceFile().
 * Calls fatal() on missing file, bad magic, or version mismatch.
 */
TraceBuffer readTraceFile(const std::string &path);

} // namespace mlpsim::trace
