/**
 * @file
 * Replayable streamed generation: a ChunkSource whose open() spawns a
 * producer thread that runs a fresh generator and pushes fixed-size
 * SoA chunks through a bounded ChunkRing.
 *
 * This is how the streaming pipeline fuses generation into
 * consumption without ever materialising the trace: each pass that
 * needs the instruction stream opens a stream, and the generator is
 * rewound to the same seed — same chunk sequence, which is the
 * replay-determinism contract consumers rely on. The ring's
 * backpressure bounds the footprint to a handful of chunks no matter
 * how long the trace is.
 *
 * openFanout() is the shared-generation path: one producer thread,
 * one ring, N consumer cursors — every engine in a fan-out group
 * reads the same generation instead of re-running the generator N
 * times. Streams and fan-outs must not outlive the source (they
 * return their generator to its pool on destruction).
 *
 * Generators are pooled: construction (and with it any config
 * validation the workload does) happens once, at source construction;
 * subsequent open()s reuse an idle generator via reset(), whose
 * reseed-and-rewind is exactly the replay contract. Teardown needs no
 * cross-thread cancellation token: destroying a stream detaches its
 * ring consumer, the producer's next push() returns false once no
 * consumers remain, and the thread exits and is joined.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "trace/trace_chunk.hh"
#include "trace/trace_source.hh"

namespace mlpsim::trace {

/**
 * Mutex-guarded pool of idle, rewound-on-acquire generators.
 *
 * Hoists generator construction (workload setup, validation) out of
 * the per-pass reopen path: the pool eagerly builds one generator at
 * construction, acquire() prefers reset()ing an idle one over calling
 * the factory, and release() returns a generator for the next pass.
 * built() counts factory invocations — the regression handle proving
 * sequential reopens construct exactly once.
 */
class GeneratorPool
{
  public:
    using SourceFactory = std::function<std::unique_ptr<TraceSource>()>;

    explicit GeneratorPool(SourceFactory source_factory,
                           size_t max_idle = 4);

    /** An idle generator, rewound via reset(); builds one if none idle. */
    std::unique_ptr<TraceSource> acquire();

    /** Return a generator (in any stream position) for reuse. */
    void release(std::unique_ptr<TraceSource> gen);

    /** Total factory invocations so far. */
    size_t built() const;

  private:
    SourceFactory factory;
    const size_t maxIdle;
    mutable std::mutex mutex;
    std::vector<std::unique_ptr<TraceSource>> idle;
    size_t builtCount = 0;
};

/** Chunk-source over a replayable generator factory. */
class GeneratedChunkSource : public ChunkSource
{
  public:
    using SourceFactory = GeneratorPool::SourceFactory;

    /**
     * Eagerly builds the first generator (hoisting workload
     * construction and validation out of every reopen).
     *
     * @param stream_name Trace name (for logs and metrics labels).
     * @param limit Instructions per stream; every open() yields
     *        exactly this many (the factory's source must not run dry
     *        earlier — generators here are infinite).
     * @param ring_chunks Backpressure bound, in chunks.
     */
    GeneratedChunkSource(std::string stream_name, uint64_t limit,
                         SourceFactory source_factory,
                         uint32_t chunk_capacity = defaultChunkCapacity,
                         size_t ring_chunks = 4);

    uint64_t size() const override { return limit; }
    std::string name() const override { return label; }
    std::unique_ptr<ChunkStream> open() const override;

    /**
     * One generation broadcast to @p consumers cursors over a shared
     * ring. All slots must be drained concurrently (see StreamFanout).
     * @p ring_chunks of 0 uses the source's bound, floored at 4 so a
     * mildly skewed consumer pack doesn't serialise on the producer.
     */
    std::unique_ptr<StreamFanout>
    openFanout(size_t consumers, size_t ring_chunks = 0) const override;

    uint32_t chunkCapacity() const { return chunkCap; }

    /** Factory invocations to date (1 after construction; stays 1
     *  across sequential reopens — the pool reuses via reset()). */
    size_t generatorsBuilt() const { return pool.built(); }

  private:
    std::string label;
    uint64_t limit;
    uint32_t chunkCap;
    size_t ringChunks;
    mutable GeneratorPool pool;
};

} // namespace mlpsim::trace
