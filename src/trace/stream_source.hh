/**
 * @file
 * Replayable streamed generation: a ChunkSource whose open() spawns a
 * producer thread that runs a fresh generator and pushes fixed-size
 * SoA chunks through a bounded ChunkRing.
 *
 * This is how the streaming pipeline fuses generation into
 * consumption without ever materialising the trace: each pass that
 * needs the instruction stream (the annotation pass, then every
 * engine run) opens its own stream, and the factory re-creates the
 * generator from scratch — same seed, same chunk sequence, which is
 * the replay-determinism contract consumers rely on. The ring's
 * backpressure bounds the footprint to a handful of chunks no matter
 * how long the trace is.
 *
 * Teardown needs no cross-thread cancellation token: destroying the
 * stream detaches its ring consumer, the producer's next push()
 * returns false, and the thread exits and is joined.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "trace/trace_chunk.hh"
#include "trace/trace_source.hh"

namespace mlpsim::trace {

/** Chunk-source over a replayable generator factory. */
class GeneratedChunkSource : public ChunkSource
{
  public:
    /** Builds a fresh, rewound generator; called once per open(). */
    using SourceFactory = std::function<std::unique_ptr<TraceSource>()>;

    /**
     * @param stream_name Trace name (for logs and metrics labels).
     * @param limit Instructions per stream; every open() yields
     *        exactly this many (the factory's source must not run dry
     *        earlier — generators here are infinite).
     * @param ring_chunks Backpressure bound, in chunks.
     */
    GeneratedChunkSource(std::string stream_name, uint64_t limit,
                         SourceFactory source_factory,
                         uint32_t chunk_capacity = defaultChunkCapacity,
                         size_t ring_chunks = 4);

    uint64_t size() const override { return limit; }
    std::string name() const override { return label; }
    std::unique_ptr<ChunkStream> open() const override;

    uint32_t chunkCapacity() const { return chunkCap; }

  private:
    std::string label;
    uint64_t limit;
    SourceFactory factory;
    uint32_t chunkCap;
    size_t ringChunks;
};

} // namespace mlpsim::trace
