/**
 * @file
 * The abstract dynamic-instruction record consumed by every simulator
 * in mlpsim.
 *
 * The epoch model of the paper (Section 3) only needs each
 * instruction's *class*, its register and memory dependences, its PC
 * stream (for the I-side) and, for value prediction, the value a load
 * returns. This record is therefore ISA-neutral: SPARC specifics such
 * as CASA/LDSTUB/MEMBAR all map onto InstClass::Serializing.
 */
#pragma once

#include <cstdint>

namespace mlpsim::trace {

/** Architectural register count of the abstract machine. */
constexpr unsigned numArchRegs = 64;

/** Sentinel meaning "no register operand". */
constexpr uint8_t noReg = 0xff;

/** Maximum number of source registers an instruction may name. */
constexpr unsigned maxSrcRegs = 3;

/** Flavours of control transfer (used by the branch predictor). */
enum class BranchKind : uint8_t {
    None,        //!< not a branch
    Conditional, //!< direction-predicted branch
    Call,        //!< always-taken call (pushes the return address)
    Return,      //!< return (target predicted by the RAS)
    Jump,        //!< unconditional direct jump
};

/** Instruction classes distinguished by the epoch model. */
enum class InstClass : uint8_t {
    Alu,         //!< register-to-register computation
    Load,        //!< memory read into a register
    Store,       //!< memory write (srcs: address regs + data reg)
    Branch,      //!< conditional or unconditional control transfer
    Prefetch,    //!< non-binding software prefetch (no destination)
    Serializing, //!< atomic / memory-barrier (CASA, LDSTUB, MEMBAR)
};

/** Printable mnemonic for an instruction class. */
const char *instClassName(InstClass cls);

/**
 * One dynamic instruction.
 *
 * Invariants: loads have a destination and an effective address;
 * stores have no destination; branches carry taken/target;
 * serializing instructions may optionally access memory (CASA-style)
 * via effAddr, in which case they also behave as a load+store to that
 * address.
 */
struct Instruction
{
    uint64_t pc = 0;        //!< virtual PC of the instruction
    uint64_t effAddr = 0;   //!< effective address (memory classes)
    uint64_t value = 0;     //!< value loaded / stored (value prediction)
    uint64_t target = 0;    //!< branch target (Branch only)

    InstClass cls = InstClass::Alu;
    uint8_t dst = noReg;              //!< destination register
    uint8_t src[maxSrcRegs] = {noReg, noReg, noReg};

    bool taken = false;     //!< branch outcome (Branch only)
    BranchKind brKind = BranchKind::None;

    bool isMem() const
    {
        return cls == InstClass::Load || cls == InstClass::Store ||
               cls == InstClass::Prefetch ||
               (cls == InstClass::Serializing && effAddr != 0);
    }

    bool isLoad() const { return cls == InstClass::Load; }
    bool isStore() const { return cls == InstClass::Store; }
    bool isBranch() const { return cls == InstClass::Branch; }
    bool isPrefetch() const { return cls == InstClass::Prefetch; }
    bool isSerializing() const { return cls == InstClass::Serializing; }

    bool hasDst() const { return dst != noReg; }
};

/** Compact factory helpers used by workloads and tests. */
Instruction makeAlu(uint64_t pc, uint8_t dst, uint8_t src0 = noReg,
                    uint8_t src1 = noReg);
Instruction makeLoad(uint64_t pc, uint8_t dst, uint64_t addr,
                     uint8_t addr_reg = noReg, uint64_t value = 0);
Instruction makeStore(uint64_t pc, uint64_t addr, uint8_t data_reg = noReg,
                      uint8_t addr_reg = noReg, uint64_t value = 0);
Instruction makePrefetch(uint64_t pc, uint64_t addr,
                         uint8_t addr_reg = noReg);
Instruction makeBranch(uint64_t pc, uint64_t target, bool taken,
                       uint8_t src0 = noReg,
                       BranchKind kind = BranchKind::Conditional);
Instruction makeSerializing(uint64_t pc, uint64_t addr = 0,
                            uint8_t src0 = noReg);

} // namespace mlpsim::trace
