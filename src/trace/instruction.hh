/**
 * @file
 * The abstract dynamic-instruction record consumed by every simulator
 * in mlpsim.
 *
 * The epoch model of the paper (Section 3) only needs each
 * instruction's *class*, its register and memory dependences, its PC
 * stream (for the I-side) and, for value prediction, the value a load
 * returns. This record is therefore ISA-neutral: SPARC specifics such
 * as CASA/LDSTUB/MEMBAR all map onto InstClass::Serializing.
 *
 * The in-memory layout is packed to 32 bytes (two records per cache
 * line) because simulators stream millions of these per run: the
 * branch target and the loaded/stored value share one word (they are
 * mutually exclusive by class — only branches have targets, and
 * branches carry no value), and the class, branch kind and taken flag
 * share one byte. The 40-byte on-disk record of trace_io keeps its
 * own layout; v1/v2 trace files are unaffected.
 */
#pragma once

#include <cstdint>

namespace mlpsim::trace {

/** Architectural register count of the abstract machine. */
constexpr unsigned numArchRegs = 64;

/** Sentinel meaning "no register operand". */
constexpr uint8_t noReg = 0xff;

/** Maximum number of source registers an instruction may name. */
constexpr unsigned maxSrcRegs = 3;

/** Flavours of control transfer (used by the branch predictor). */
enum class BranchKind : uint8_t {
    None,        //!< not a branch
    Conditional, //!< direction-predicted branch
    Call,        //!< always-taken call (pushes the return address)
    Return,      //!< return (target predicted by the RAS)
    Jump,        //!< unconditional direct jump
};

/** Instruction classes distinguished by the epoch model. */
enum class InstClass : uint8_t {
    Alu,         //!< register-to-register computation
    Load,        //!< memory read into a register
    Store,       //!< memory write (srcs: address regs + data reg)
    Branch,      //!< conditional or unconditional control transfer
    Prefetch,    //!< non-binding software prefetch (no destination)
    Serializing, //!< atomic / memory-barrier (CASA, LDSTUB, MEMBAR)
};

/** Printable mnemonic for an instruction class. */
const char *instClassName(InstClass cls);

/**
 * One dynamic instruction.
 *
 * Invariants: loads have a destination and an effective address;
 * stores have no destination; branches carry taken/target;
 * serializing instructions may optionally access memory (CASA-style)
 * via effAddr, in which case they also behave as a load+store to that
 * address.
 */
struct Instruction
{
    uint64_t pc = 0;        //!< virtual PC of the instruction
    uint64_t effAddr = 0;   //!< effective address (memory classes)

    uint8_t dst = noReg;    //!< destination register
    uint8_t src[maxSrcRegs] = {noReg, noReg, noReg};

    InstClass cls() const { return static_cast<InstClass>(meta & clsMask); }
    bool taken() const { return (meta & takenBit) != 0; }
    BranchKind brKind() const
    {
        return static_cast<BranchKind>((meta >> brKindShift) & clsMask);
    }

    /** Value loaded / stored (value prediction). Zero on branches. */
    uint64_t value() const { return isBranch() ? 0 : payload; }
    /** Branch target. Zero on every other class. */
    uint64_t target() const { return isBranch() ? payload : 0; }

    void setCls(InstClass c)
    {
        meta = uint8_t((meta & ~clsMask) | static_cast<uint8_t>(c));
    }
    void setTaken(bool t)
    {
        meta = uint8_t(t ? meta | takenBit : meta & ~takenBit);
    }
    void setBrKind(BranchKind k)
    {
        meta = uint8_t((meta & ~(clsMask << brKindShift)) |
                       (static_cast<uint8_t>(k) << brKindShift));
    }
    void setValue(uint64_t v) { payload = v; }
    void setTarget(uint64_t t) { payload = t; }

    bool isMem() const
    {
        const InstClass c = cls();
        return c == InstClass::Load || c == InstClass::Store ||
               c == InstClass::Prefetch ||
               (c == InstClass::Serializing && effAddr != 0);
    }

    bool isLoad() const { return cls() == InstClass::Load; }
    bool isStore() const { return cls() == InstClass::Store; }
    bool isBranch() const { return cls() == InstClass::Branch; }
    bool isPrefetch() const { return cls() == InstClass::Prefetch; }
    bool isSerializing() const { return cls() == InstClass::Serializing; }

    bool hasDst() const { return dst != noReg; }

    // Bits 0-2: InstClass; bits 3-5: BranchKind; bit 6: taken. Public
    // so the structure-of-arrays TraceChunk can decode its meta column
    // with the same constants (see trace/trace_chunk.hh).
    static constexpr uint8_t clsMask = 0x7;
    static constexpr unsigned brKindShift = 3;
    static constexpr uint8_t takenBit = 1 << 6;

    /**
     * Raw packed-byte accessors for the SoA trace chunk and the v3
     * on-disk format, which store the meta byte and the shared
     * payload word as columns rather than re-deriving them field by
     * field. Invariant-preserving: a round trip through
     * rawMeta()/rawPayload() reproduces the instruction exactly.
     */
    uint8_t rawMeta() const { return meta; }
    void setRawMeta(uint8_t m) { meta = m; }
    uint64_t rawPayload() const { return payload; }
    void setRawPayload(uint64_t p) { payload = p; }

  private:
    uint8_t meta = 0;       //!< InstClass::Alu, BranchKind::None
    uint64_t payload = 0;   //!< branch target or loaded/stored value
};

static_assert(sizeof(Instruction) == 32,
              "Instruction must stay two-per-cache-line; see the "
              "packed-layout notes in DESIGN.md section 12");

/** Compact factory helpers used by workloads and tests. */
Instruction makeAlu(uint64_t pc, uint8_t dst, uint8_t src0 = noReg,
                    uint8_t src1 = noReg);
Instruction makeLoad(uint64_t pc, uint8_t dst, uint64_t addr,
                     uint8_t addr_reg = noReg, uint64_t value = 0);
Instruction makeStore(uint64_t pc, uint64_t addr, uint8_t data_reg = noReg,
                      uint8_t addr_reg = noReg, uint64_t value = 0);
Instruction makePrefetch(uint64_t pc, uint64_t addr,
                         uint8_t addr_reg = noReg);
Instruction makeBranch(uint64_t pc, uint64_t target, bool taken,
                       uint8_t src0 = noReg,
                       BranchKind kind = BranchKind::Conditional);
Instruction makeSerializing(uint64_t pc, uint64_t addr = 0,
                            uint8_t src0 = noReg);

} // namespace mlpsim::trace
