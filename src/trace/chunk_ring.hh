/**
 * @file
 * Bounded single-producer / multi-consumer broadcast ring of trace
 * chunks.
 *
 * The hand-off point of the streaming pipeline: a generator thread
 * push()es immutable chunks, consumer threads pop() them through
 * per-consumer cursors — every live consumer sees every chunk, in
 * order. The ring is bounded by the *slowest live consumer*: the
 * producer blocks once it is `capacity` chunks ahead of it, which is
 * the backpressure that keeps a fused generate-while-simulate run at a
 * constant, small footprint no matter how long the trace is, and — in
 * fan-out mode — what lets one generation feed many engines without
 * ever materialising the trace.
 *
 * Slot release is tied to the slowest consumer's progress: a pop()
 * that moves the minimum cursor forward drops the now-dead front
 * chunks and wakes the producer; pops anywhere else in the pack touch
 * neither the front nor the producer. (An earlier revision notified
 * the producer on *every* pop, which on a 1-CPU box degenerated into
 * a wake/recheck/sleep spin whenever one consumer lagged — the
 * producer woke once per chunk consumed anywhere, found the front
 * still pinned, and went back to sleep.) The producer itself briefly
 * spins on an atomic release counter before committing to a condvar
 * sleep, so the common fast-consumer case never pays a futex round
 * trip.
 *
 * Lifecycle: register every consumer with addConsumer() before
 * producing, push() until done, then close(). A consumer that stops
 * early calls detach(); when no live consumers remain, push() returns
 * false and the producer abandons the stream (this is how a cancelled
 * or destroyed simulation tears the producer thread down without a
 * cancellation token crossing threads).
 *
 * Chunks are shared_ptr<const TraceChunk>: publication happens-before
 * consumption via the ring mutex, and the immutable payload may then
 * be read lock-free by any number of consumers.
 */
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "trace/trace_chunk.hh"
#include "util/logging.hh"

namespace mlpsim::trace {

class ChunkRing
{
  public:
    explicit ChunkRing(size_t capacity_chunks)
        : capacity(capacity_chunks ? capacity_chunks : 1)
    {
    }

    /** Register a consumer; returns its id. Call before producing. */
    int
    addConsumer()
    {
        std::lock_guard<std::mutex> lock(mutex);
        // New consumers start at the oldest chunk still buffered.
        cursors.push_back(tail);
        live.push_back(true);
        return int(cursors.size()) - 1;
    }

    /** Registered consumers (live or detached). */
    size_t
    consumers() const
    {
        std::lock_guard<std::mutex> lock(mutex);
        return cursors.size();
    }

    /**
     * Publish one chunk. Blocks while the slowest live consumer is
     * `capacity` chunks behind. Returns false once no live consumers
     * remain (the producer should stop).
     */
    bool
    push(ChunkPtr chunk)
    {
        std::unique_lock<std::mutex> lock(mutex);
        if (head - tail >= capacity && anyLive()) {
            // Bounded spin before sleeping: when consumers are keeping
            // up, the front slot frees within the time a futex
            // sleep/wake round trip would cost. releasedSeq is bumped
            // on every front release, so the spin needs no lock. The
            // yields give a same-core consumer (the 1-CPU container
            // case) a chance to actually run.
            const uint64_t target = head;
            lock.unlock();
            for (int spin = 0; spin < producerSpinIters; ++spin) {
                if (releasedSeq.load(std::memory_order_relaxed) + capacity >
                    target) {
                    break;
                }
                if ((spin & 15) == 15)
                    std::this_thread::yield();
            }
            lock.lock();
        }
        while (head - tail >= capacity) {
            if (!anyLive())
                return false;
            producerWaiting = true;
            producerCv.wait(lock);
        }
        if (!anyLive())
            return false;
        ring.push_back(std::move(chunk));
        ++head;
        consumerCv.notify_all();
        return true;
    }

    /** Producer is done; consumers drain and then see nullptr. */
    void
    close()
    {
        std::lock_guard<std::mutex> lock(mutex);
        closed = true;
        consumerCv.notify_all();
    }

    /**
     * Next chunk for @p consumer; blocks until one is available.
     * Returns nullptr when the ring is closed and drained.
     */
    ChunkPtr
    pop(int consumer)
    {
        std::unique_lock<std::mutex> lock(mutex);
        const size_t c = size_t(consumer);
        for (;;) {
            if (cursors[c] < head) {
                ChunkPtr chunk = ring[size_t(cursors[c] - tail)];
                const bool was_slowest = cursors[c] == tail;
                ++cursors[c];
                // Only a pop at the pack's tail can free the front
                // slot; pops anywhere else leave both the window and
                // the producer alone.
                if (was_slowest)
                    releaseFront();
                return chunk;
            }
            if (closed)
                return nullptr;
            consumerCv.wait(lock);
        }
    }

    /** Consumer gives up its cursor (stops constraining the producer). */
    void
    detach(int consumer)
    {
        std::lock_guard<std::mutex> lock(mutex);
        const size_t c = size_t(consumer);
        if (!live[c])
            return;
        live[c] = false;
        if (cursors[c] == tail || !anyLive())
            releaseFront();
    }

  private:
    /**
     * Drop front chunks every live consumer has passed and wake the
     * producer if that freed a slot (or ended the last consumer).
     * Lock held. O(consumers) — fan-outs register a handful.
     */
    void
    releaseFront()
    {
        uint64_t min_cursor = head;
        bool any_live = false;
        for (size_t c = 0; c < cursors.size(); ++c) {
            if (!live[c])
                continue;
            any_live = true;
            if (cursors[c] < min_cursor)
                min_cursor = cursors[c];
        }
        const uint64_t release_to = any_live ? min_cursor : head;
        if (release_to == tail && any_live)
            return; // front still pinned: nothing freed, nobody to wake
        while (tail < release_to && !ring.empty()) {
            ring.pop_front();
            ++tail;
        }
        releasedSeq.store(tail, std::memory_order_relaxed);
        if (producerWaiting || !any_live) {
            producerWaiting = false;
            producerCv.notify_one();
        }
    }

    bool
    anyLive() const
    {
        for (const bool l : live)
            if (l)
                return true;
        return false;
    }

    static constexpr int producerSpinIters = 256;

    const size_t capacity;
    mutable std::mutex mutex;
    std::condition_variable producerCv;
    std::condition_variable consumerCv;
    std::deque<ChunkPtr> ring; //!< chunks [tail, head)
    uint64_t head = 0;         //!< sequence number of the next push
    uint64_t tail = 0;         //!< sequence number of the front chunk
    std::atomic<uint64_t> releasedSeq{0}; //!< tail mirror for the spin
    std::vector<uint64_t> cursors;
    std::vector<bool> live;
    bool producerWaiting = false;
    bool closed = false;
};

} // namespace mlpsim::trace
