/**
 * @file
 * Bounded single-producer / multi-consumer ring of trace chunks.
 *
 * The hand-off point of the streaming pipeline: a generator thread
 * push()es immutable chunks, consumer threads pop() them through
 * per-consumer cursors. The ring is bounded by the *slowest live
 * consumer* — the producer blocks once it is `capacity` chunks ahead
 * of it — which is the backpressure that keeps a fused
 * generate-while-simulate run at a constant, small footprint no
 * matter how long the trace is.
 *
 * Lifecycle: register every consumer with addConsumer() before
 * producing, push() until done, then close(). A consumer that stops
 * early calls detach(); when no live consumers remain, push() returns
 * false and the producer abandons the stream (this is how a cancelled
 * or destroyed simulation tears the producer thread down without a
 * cancellation token crossing threads).
 *
 * Chunks are shared_ptr<const TraceChunk>: publication happens-before
 * consumption via the ring mutex, and the immutable payload may then
 * be read lock-free by any number of consumers.
 */
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "trace/trace_chunk.hh"

namespace mlpsim::trace {

class ChunkRing
{
  public:
    explicit ChunkRing(size_t capacity_chunks)
        : capacity(capacity_chunks ? capacity_chunks : 1)
    {
    }

    /** Register a consumer; returns its id. Call before producing. */
    int
    addConsumer()
    {
        std::lock_guard<std::mutex> lock(mutex);
        // New consumers start at the oldest chunk still buffered.
        cursors.push_back(head - ring.size());
        live.push_back(true);
        return int(cursors.size()) - 1;
    }

    /**
     * Publish one chunk. Blocks while the slowest live consumer is
     * `capacity` chunks behind. Returns false once no live consumers
     * remain (the producer should stop).
     */
    bool
    push(ChunkPtr chunk)
    {
        std::unique_lock<std::mutex> lock(mutex);
        for (;;) {
            dropConsumed();
            if (!anyLive())
                return false;
            if (ring.size() < capacity)
                break;
            producerCv.wait(lock);
        }
        ring.push_back(std::move(chunk));
        ++head;
        consumerCv.notify_all();
        return true;
    }

    /** Producer is done; consumers drain and then see nullptr. */
    void
    close()
    {
        std::lock_guard<std::mutex> lock(mutex);
        closed = true;
        consumerCv.notify_all();
    }

    /**
     * Next chunk for @p consumer; blocks until one is available.
     * Returns nullptr when the ring is closed and drained.
     */
    ChunkPtr
    pop(int consumer)
    {
        std::unique_lock<std::mutex> lock(mutex);
        for (;;) {
            if (cursors[size_t(consumer)] < head) {
                const size_t slot =
                    size_t(cursors[size_t(consumer)] - (head - ring.size()));
                ChunkPtr chunk = ring[slot];
                ++cursors[size_t(consumer)];
                // The front may now be fully consumed: wake the
                // producer so backpressure releases promptly.
                producerCv.notify_one();
                return chunk;
            }
            if (closed)
                return nullptr;
            consumerCv.wait(lock);
        }
    }

    /** Consumer gives up its cursor (stops constraining the producer). */
    void
    detach(int consumer)
    {
        std::lock_guard<std::mutex> lock(mutex);
        live[size_t(consumer)] = false;
        producerCv.notify_one();
    }

  private:
    /** Drop front chunks every live consumer has passed. Lock held. */
    void
    dropConsumed()
    {
        uint64_t min_cursor = head;
        for (size_t c = 0; c < cursors.size(); ++c)
            if (live[c] && cursors[c] < min_cursor)
                min_cursor = cursors[c];
        while (!ring.empty() && head - ring.size() < min_cursor)
            ring.pop_front();
    }

    bool
    anyLive() const
    {
        for (const bool l : live)
            if (l)
                return true;
        return false;
    }

    const size_t capacity;
    std::mutex mutex;
    std::condition_variable producerCv;
    std::condition_variable consumerCv;
    std::deque<ChunkPtr> ring; //!< chunks [head - ring.size(), head)
    uint64_t head = 0;         //!< sequence number of the next push
    std::vector<uint64_t> cursors;
    std::vector<bool> live;
    bool closed = false;
};

} // namespace mlpsim::trace
