/**
 * @file
 * Vectorizable bit-plane scans over structure-of-arrays trace chunks.
 *
 * The annotation passes walk every instruction of every chunk, but
 * most instructions are uninteresting to any one pass: the access
 * profiler only acts on memory-class instructions and fetch-line
 * boundaries, the branch annotator only on branches. The scalar
 * walk's per-instruction dispatch (load meta byte, branch on class,
 * usually fall through) is exactly the shape compilers cannot
 * vectorise — the loop body's side effects are opaque calls.
 *
 * These helpers split the walk into two phases:
 *
 *  1. a *mask build* over the SoA columns — branch-free, fixed-trip
 *     arithmetic on the meta/pc columns that auto-vectorises on any
 *     SIMD ISA the compiler targets (one 64-instruction mask word per
 *     iteration group), with a scalar tail and no intrinsics;
 *  2. a *sparse apply* that visits only the set bits, in ascending
 *     index order, via countr_zero — so the expensive per-instruction
 *     body runs once per interesting instruction instead of once per
 *     instruction.
 *
 * The masks are pure functions of the chunk contents (plus the fetch
 * carry), so a masked walk visits exactly the instructions whose
 * scalar body would have done work — results are bit-identical by
 * construction, and the existing scalar bodies stay the source of
 * truth for what happens at each visited instruction.
 */
#pragma once

#include <bit>
#include <cstdint>

#include "trace/instruction.hh"
#include "trace/trace_chunk.hh"

namespace mlpsim::trace {

/** Mask words needed to cover @p count instructions. */
constexpr size_t
scanWords(uint32_t count)
{
    return (size_t(count) + 63) / 64;
}

/** A set of InstClass values as a bitmask over the enum's 3-bit
 *  encodings (fits easily in 8 bits). */
constexpr uint32_t
classBit(InstClass cls)
{
    return 1u << static_cast<uint8_t>(cls);
}

/**
 * OR into @p words a bit per instruction whose class is in
 * @p class_set. The inner loop is one shift+mask per element with no
 * branches — the compiler vectorises the meta-column walk.
 */
inline void
orClassMask(const TraceChunk &chunk, uint32_t class_set, uint64_t *words)
{
    const uint8_t *meta = chunk.meta.data();
    const uint32_t count = chunk.count;
    for (uint32_t w = 0; w * 64 < count; ++w) {
        const uint32_t begin = w * 64;
        const uint32_t n = count - begin < 64 ? count - begin : 64;
        uint64_t bits = 0;
        for (uint32_t j = 0; j < n; ++j) {
            const uint64_t hit =
                (class_set >> (meta[begin + j] & Instruction::clsMask)) & 1u;
            bits |= hit << j;
        }
        words[w] |= bits;
    }
}

/**
 * OR into @p words a bit per instruction that starts a new fetch
 * line: line(pc[i]) != line(pc[i-1]), where instruction 0 compares
 * against @p last_fetch_line (the line of the previous chunk's final
 * instruction, or the profiler's reset value). @p line_mask is the
 * cache's intra-line bit mask (lineAddr(a) == (a & ~line_mask)).
 *
 * Updates @p last_fetch_line to the final instruction's line — the
 * same value the scalar walk's running `lastFetchLine` holds after
 * the chunk, because skipped instructions share their predecessor's
 * line by definition.
 */
inline void
orFetchBoundaryMask(const TraceChunk &chunk, uint64_t line_mask,
                    uint64_t &last_fetch_line, uint64_t *words)
{
    const uint64_t *pc = chunk.pc.data();
    const uint32_t count = chunk.count;
    if (count == 0)
        return;
    uint64_t prev = last_fetch_line;
    for (uint32_t w = 0; w * 64 < count; ++w) {
        const uint32_t begin = w * 64;
        const uint32_t n = count - begin < 64 ? count - begin : 64;
        uint64_t bits = 0;
        for (uint32_t j = 0; j < n; ++j) {
            const uint64_t line = pc[begin + j] & ~line_mask;
            bits |= uint64_t(line != prev) << j;
            prev = line;
        }
        words[w] |= bits;
    }
    last_fetch_line = prev;
}

/**
 * Invoke @p fn(ci) for every set bit of @p words, in ascending local
 * index order, for a chunk of @p count instructions.
 */
template <typename Fn>
inline void
forEachSetBit(const uint64_t *words, uint32_t count, Fn &&fn)
{
    for (uint32_t w = 0; w * 64 < count; ++w) {
        uint64_t bits = words[w];
        while (bits) {
            const uint32_t j = uint32_t(std::countr_zero(bits));
            bits &= bits - 1;
            fn(w * 64 + j);
        }
    }
}

} // namespace mlpsim::trace
