/**
 * @file
 * In-memory trace container.
 *
 * TraceBuffer owns a vector of instructions and hands out replayable
 * TraceSource views. Benches materialise each workload once and then
 * replay it across every processor configuration, which keeps cache
 * warm-up and branch-predictor state exactly identical between
 * configurations (the paper replays the same 150M-instruction trace
 * the same way).
 */
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "trace/trace_source.hh"

namespace mlpsim::trace {

/** Owning, random-access instruction trace. */
class TraceBuffer
{
  public:
    TraceBuffer() = default;
    explicit TraceBuffer(std::string trace_name)
        : label(std::move(trace_name))
    {
    }

    void append(const Instruction &inst) { insts.push_back(inst); }

    /** Drain @p source (up to @p limit instructions) into this buffer. */
    void fill(TraceSource &source, uint64_t limit);

    size_t size() const { return insts.size(); }
    bool empty() const { return insts.empty(); }
    const Instruction &at(size_t i) const { return insts[i]; }
    const std::vector<Instruction> &instructions() const { return insts; }
    std::vector<Instruction> &instructions() { return insts; }

    const std::string &name() const { return label; }
    void setName(std::string n) { label = std::move(n); }

    /** A replayable streaming view over this buffer. */
    class Cursor : public TraceSource
    {
      public:
        explicit Cursor(const TraceBuffer &b) : buffer(b) {}

        bool
        next(Instruction &inst) override
        {
            if (pos >= buffer.size())
                return false;
            inst = buffer.at(pos++);
            return true;
        }

        void reset() override { pos = 0; }
        std::string name() const override { return buffer.name(); }

      private:
        const TraceBuffer &buffer;
        size_t pos = 0;
    };

    Cursor cursor() const { return Cursor(*this); }

  private:
    std::vector<Instruction> insts;
    std::string label = "trace";
};

} // namespace mlpsim::trace
