/**
 * @file
 * In-memory trace container, chunk-native.
 *
 * TraceBuffer owns a sequence of structure-of-arrays TraceChunks
 * (trace_chunk.hh) and hands out replayable views. Benches that
 * materialise do so once per workload and then replay the buffer
 * across every processor configuration, which keeps cache warm-up and
 * branch-predictor state exactly identical between configurations
 * (the paper replays the same 150M-instruction trace the same way).
 *
 * Storing chunks rather than a flat vector<Instruction> means the
 * materialised and streamed paths feed simulators the *same* chunk
 * shape: every consumer walks SoA columns whether the trace lives in
 * memory or is being generated on the fly, so the two modes cannot
 * diverge. All chunks except the last are full, so random access is
 * one divide away: at(i) = chunk(i / cap).get(i % cap).
 */
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "trace/trace_chunk.hh"
#include "trace/trace_source.hh"

namespace mlpsim::trace {

/** Owning, random-access instruction trace (chunked SoA storage). */
class TraceBuffer
{
  public:
    TraceBuffer() = default;
    explicit TraceBuffer(std::string trace_name)
        : label(std::move(trace_name))
    {
    }

    void
    append(const Instruction &inst)
    {
        if (chunkList.empty() || chunkList.back()->full())
            chunkList.push_back(
                std::make_shared<TraceChunk>(n, chunkCapacity));
        chunkList.back()->append(inst);
        ++n;
    }

    /** Drain @p source (up to @p limit instructions) into this buffer. */
    void fill(TraceSource &source, uint64_t limit);

    /**
     * Splice a pre-built full-capacity chunk (the v3 trace reader's
     * zero-decode path). The chunk's base is rewritten to this
     * buffer's running instruction index; the previous chunk, if any,
     * must be full.
     */
    void
    appendChunk(std::shared_ptr<TraceChunk> c)
    {
        assert(c->cap == chunkCapacity);
        assert(chunkList.empty() || chunkList.back()->full());
        chunkList.push_back(std::move(c));
        chunkList.back()->base = n;
        n += chunkList.back()->count;
    }

    size_t size() const { return n; }
    bool empty() const { return n == 0; }

    /** Instruction @p i, reassembled by value from its chunk. */
    Instruction
    at(size_t i) const
    {
        return chunkList[i / chunkCapacity]->get(
            uint32_t(i % chunkCapacity));
    }

    size_t numChunks() const { return chunkList.size(); }
    const TraceChunk &chunk(size_t ci) const { return *chunkList[ci]; }
    ChunkPtr chunkPtr(size_t ci) const { return chunkList[ci]; }

    /** Chunk granularity of every TraceBuffer. */
    static constexpr uint32_t chunkCapacity = defaultChunkCapacity;

    const std::string &name() const { return label; }
    void setName(std::string n_) { label = std::move(n_); }

    /** A replayable streaming view over this buffer. */
    class Cursor : public TraceSource
    {
      public:
        explicit Cursor(const TraceBuffer &b) : buffer(b) {}

        bool
        next(Instruction &inst) override
        {
            if (pos >= buffer.size())
                return false;
            inst = buffer.at(pos++);
            return true;
        }

        void reset() override { pos = 0; }
        std::string name() const override { return buffer.name(); }

      private:
        const TraceBuffer &buffer;
        size_t pos = 0;
    };

    Cursor cursor() const { return Cursor(*this); }

    /** A replayable chunk-level view (zero-copy: shares the chunks). */
    class Chunks : public ChunkStream
    {
      public:
        explicit Chunks(const TraceBuffer &b) : buffer(b) {}

        ChunkPtr
        next() override
        {
            if (ci >= buffer.numChunks())
                return nullptr;
            return buffer.chunkPtr(ci++);
        }

      private:
        const TraceBuffer &buffer;
        size_t ci = 0;
    };

    /** This buffer as a replayable ChunkSource. */
    class Source : public ChunkSource
    {
      public:
        explicit Source(const TraceBuffer &b) : buffer(b) {}

        uint64_t size() const override { return buffer.size(); }
        std::string name() const override { return buffer.name(); }

        std::unique_ptr<ChunkStream>
        open() const override
        {
            return std::make_unique<Chunks>(buffer);
        }

      private:
        const TraceBuffer &buffer;
    };

    Source chunkSource() const { return Source(*this); }

  private:
    std::vector<std::shared_ptr<TraceChunk>> chunkList;
    size_t n = 0;
    std::string label = "trace";
};

} // namespace mlpsim::trace
