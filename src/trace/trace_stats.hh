/**
 * @file
 * Instruction-mix statistics over a trace: class counts, unique PC
 * footprint, branch/taken rates. Used by tests to check that the
 * synthetic workloads have the intended composition and by benches to
 * report what was simulated.
 */
#pragma once

#include <cstdint>

#include "trace/trace_source.hh"

namespace mlpsim::trace {

/** Aggregate composition of a dynamic instruction stream. */
struct TraceMix
{
    uint64_t total = 0;
    uint64_t alu = 0;
    uint64_t loads = 0;
    uint64_t stores = 0;
    uint64_t branches = 0;
    uint64_t takenBranches = 0;
    uint64_t prefetches = 0;
    uint64_t serializing = 0;

    double fracLoads() const { return frac(loads); }
    double fracStores() const { return frac(stores); }
    double fracBranches() const { return frac(branches); }
    double fracSerializing() const { return frac(serializing); }
    double fracPrefetches() const { return frac(prefetches); }

  private:
    double
    frac(uint64_t n) const
    {
        return total ? double(n) / double(total) : 0.0;
    }
};

/** Consume (and rewind) @p source, returning its composition. */
TraceMix measureMix(TraceSource &source, uint64_t max_insts);

} // namespace mlpsim::trace
