#include "stream_source.hh"

#include <algorithm>
#include <cassert>
#include <thread>
#include <utility>

#include "trace/chunk_ring.hh"
#include "util/logging.hh"

namespace mlpsim::trace {

GeneratorPool::GeneratorPool(SourceFactory source_factory, size_t max_idle)
    : factory(std::move(source_factory)), maxIdle(max_idle ? max_idle : 1)
{
    MLPSIM_ASSERT(factory != nullptr, "generator pool needs a factory");
    // Build the first generator now: workload construction and config
    // validation happen once, here, not on every stream reopen.
    idle.push_back(factory());
    builtCount = 1;
}

std::unique_ptr<TraceSource>
GeneratorPool::acquire()
{
    std::unique_ptr<TraceSource> gen;
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (!idle.empty()) {
            gen = std::move(idle.back());
            idle.pop_back();
        } else {
            ++builtCount;
        }
    }
    if (gen) {
        // Rewind outside the lock: reset() reseeds and clears pending
        // state, which is the replay-determinism contract — the reused
        // generator yields the exact stream a fresh one would.
        gen->reset();
        return gen;
    }
    return factory();
}

void
GeneratorPool::release(std::unique_ptr<TraceSource> gen)
{
    if (!gen)
        return;
    std::lock_guard<std::mutex> lock(mutex);
    if (idle.size() < maxIdle)
        idle.push_back(std::move(gen));
}

size_t
GeneratorPool::built() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return builtCount;
}

namespace {

/**
 * The producer loop shared by single streams and fan-outs: run the
 * generator to @p limit instructions, pushing fixed-size chunks.
 * Returns (without close()) if every consumer detached mid-stream.
 */
void
produceAll(ChunkRing &ring, TraceSource &src, uint64_t limit,
           uint32_t chunk_cap)
{
    uint64_t produced = 0;
    Instruction inst;
    bool more = true;
    while (produced < limit && more) {
        auto chunk = std::make_shared<TraceChunk>(produced, chunk_cap);
        ChunkFiller fill(*chunk);
        while (!fill.full() && produced < limit && (more = src.next(inst))) {
            fill.append(inst);
            ++produced;
        }
        fill.publish();
        if (chunk->empty())
            break;
        if (!ring.push(std::move(chunk))) {
            // Every consumer detached: the simulation was destroyed or
            // cancelled; abandon the stream.
            return;
        }
    }
    ring.close();
}

/**
 * One live single-consumer stream: a ring plus the producer thread
 * feeding it. next() blocks on the ring; the destructor detaches the
 * consumer (unblocking a producer stalled on backpressure), joins,
 * and returns the generator to the pool for the next pass.
 */
class GeneratedStream : public ChunkStream
{
  public:
    GeneratedStream(GeneratorPool &generator_pool,
                    std::unique_ptr<TraceSource> source, uint64_t limit,
                    uint32_t chunk_cap, size_t ring_chunks)
        : pool(generator_pool), src(std::move(source)), ring(ring_chunks)
    {
        consumer = ring.addConsumer();
        producer = std::thread([this, limit, chunk_cap]() {
            produceAll(ring, *src, limit, chunk_cap);
        });
    }

    ~GeneratedStream() override
    {
        ring.detach(consumer);
        if (producer.joinable())
            producer.join();
        pool.release(std::move(src));
    }

    ChunkPtr next() override { return ring.pop(consumer); }

  private:
    GeneratorPool &pool;
    std::unique_ptr<TraceSource> src;
    ChunkRing ring;
    int consumer = -1;
    std::thread producer;
};

/**
 * The shared spine of one fan-out group: the ring, the generator, and
 * the single producer thread. Held by shared_ptr from the fan-out
 * handle and every claimed stream; the last owner's destructor joins
 * the producer (all cursors are detached by then, so it exits
 * promptly) and returns the generator.
 */
struct FanoutState
{
    FanoutState(GeneratorPool &generator_pool,
                std::unique_ptr<TraceSource> source, uint64_t limit,
                uint32_t chunk_cap, size_t ring_chunks, size_t consumers)
        : pool(generator_pool), src(std::move(source)), ring(ring_chunks)
    {
        // Register every cursor before the first push so no consumer
        // can miss a chunk.
        for (size_t i = 0; i < consumers; ++i)
            ring.addConsumer();
        producer = std::thread([this, limit, chunk_cap]() {
            produceAll(ring, *src, limit, chunk_cap);
        });
    }

    ~FanoutState()
    {
        if (producer.joinable())
            producer.join();
        pool.release(std::move(src));
    }

    GeneratorPool &pool;
    std::unique_ptr<TraceSource> src;
    ChunkRing ring;
    std::thread producer;
};

/** One claimed cursor into the shared ring. */
class FanoutStream : public ChunkStream
{
  public:
    FanoutStream(std::shared_ptr<FanoutState> shared, int consumer_id)
        : state(std::move(shared)), consumer(consumer_id)
    {
    }

    ~FanoutStream() override { state->ring.detach(consumer); }

    ChunkPtr next() override { return state->ring.pop(consumer); }

  private:
    std::shared_ptr<FanoutState> state;
    int consumer;
};

/**
 * The fan-out handle: tracks which slots were claimed and, on
 * destruction, detaches the unclaimed ones so they never pin the ring
 * against slots that are still draining.
 */
class GeneratedFanout : public StreamFanout
{
  public:
    GeneratedFanout(std::shared_ptr<FanoutState> shared, size_t consumers)
        : state(std::move(shared)), claimed(consumers, false)
    {
    }

    ~GeneratedFanout() override
    {
        for (size_t i = 0; i < claimed.size(); ++i)
            if (!claimed[i])
                state->ring.detach(int(i));
    }

    std::unique_ptr<ChunkStream>
    stream(size_t index) override
    {
        std::lock_guard<std::mutex> lock(claimMutex);
        MLPSIM_ASSERT(index < claimed.size(), "fan-out slot out of range");
        MLPSIM_ASSERT(!claimed[index], "fan-out slot claimed twice");
        claimed[index] = true;
        return std::make_unique<FanoutStream>(state, int(index));
    }

    size_t consumers() const override { return claimed.size(); }

  private:
    std::shared_ptr<FanoutState> state;
    std::mutex claimMutex;
    std::vector<bool> claimed;
};

} // namespace

GeneratedChunkSource::GeneratedChunkSource(std::string stream_name,
                                           uint64_t limit_insts,
                                           SourceFactory source_factory,
                                           uint32_t chunk_capacity,
                                           size_t ring_chunks)
    : label(std::move(stream_name)), limit(limit_insts),
      chunkCap(chunk_capacity), ringChunks(ring_chunks),
      pool(std::move(source_factory))
{
    MLPSIM_ASSERT(chunkCap > 0, "chunk capacity must be positive");
}

std::unique_ptr<ChunkStream>
GeneratedChunkSource::open() const
{
    return std::make_unique<GeneratedStream>(pool, pool.acquire(), limit,
                                             chunkCap, ringChunks);
}

std::unique_ptr<StreamFanout>
GeneratedChunkSource::openFanout(size_t consumers, size_t ring_chunks) const
{
    MLPSIM_ASSERT(consumers > 0, "fan-out needs at least one consumer");
    const size_t cap =
        ring_chunks ? ring_chunks : std::max<size_t>(ringChunks, 4);
    auto state = std::make_shared<FanoutState>(pool, pool.acquire(), limit,
                                               chunkCap, cap, consumers);
    return std::make_unique<GeneratedFanout>(std::move(state), consumers);
}

} // namespace mlpsim::trace
