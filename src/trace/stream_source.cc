#include "stream_source.hh"

#include <thread>
#include <utility>

#include "trace/chunk_ring.hh"
#include "util/logging.hh"

namespace mlpsim::trace {

namespace {

/**
 * One live stream: a ring plus the producer thread feeding it.
 * next() blocks on the ring; the destructor detaches the consumer
 * (unblocking a producer stalled on backpressure) and joins.
 */
class GeneratedStream : public ChunkStream
{
  public:
    GeneratedStream(std::unique_ptr<TraceSource> source, uint64_t limit,
                    uint32_t chunk_cap, size_t ring_chunks)
        : ring(ring_chunks)
    {
        consumer = ring.addConsumer();
        producer = std::thread(
            [this, limit, chunk_cap, src = std::move(source)]() mutable {
                produce(*src, limit, chunk_cap);
            });
    }

    ~GeneratedStream() override
    {
        ring.detach(consumer);
        if (producer.joinable())
            producer.join();
    }

    ChunkPtr next() override { return ring.pop(consumer); }

  private:
    void
    produce(TraceSource &src, uint64_t limit, uint32_t chunk_cap)
    {
        uint64_t produced = 0;
        Instruction inst;
        bool more = true;
        while (produced < limit && more) {
            auto chunk = std::make_shared<TraceChunk>(produced,
                                                      chunk_cap);
            ChunkFiller fill(*chunk);
            while (!fill.full() && produced < limit &&
                   (more = src.next(inst))) {
                fill.append(inst);
                ++produced;
            }
            fill.publish();
            if (chunk->empty())
                break;
            if (!ring.push(std::move(chunk))) {
                // Every consumer detached: the simulation was
                // destroyed or cancelled; abandon the stream.
                return;
            }
        }
        ring.close();
    }

    ChunkRing ring;
    int consumer = -1;
    std::thread producer;
};

} // namespace

GeneratedChunkSource::GeneratedChunkSource(std::string stream_name,
                                           uint64_t limit_insts,
                                           SourceFactory source_factory,
                                           uint32_t chunk_capacity,
                                           size_t ring_chunks)
    : label(std::move(stream_name)), limit(limit_insts),
      factory(std::move(source_factory)), chunkCap(chunk_capacity),
      ringChunks(ring_chunks)
{
    MLPSIM_ASSERT(chunkCap > 0, "chunk capacity must be positive");
    MLPSIM_ASSERT(factory != nullptr, "stream source needs a factory");
}

std::unique_ptr<ChunkStream>
GeneratedChunkSource::open() const
{
    return std::make_unique<GeneratedStream>(factory(), limit, chunkCap,
                                             ringChunks);
}

} // namespace mlpsim::trace
