/**
 * @file
 * Structure-of-arrays trace chunk: the unit of the streaming trace
 * pipeline.
 *
 * The packed 32-byte Instruction (instruction.hh) is the right shape
 * for passing one record around, but simulators walk *fields*, not
 * records: the epoch engine touches cls/effAddr/src/dst of every
 * instruction and never looks at pc or payload, so with an
 * array-of-structs layout half of every cache line it streams is dead
 * weight. A TraceChunk transposes a fixed-size run of instructions
 * into one column per field — a meta-byte walk touches 64
 * instructions per cache line instead of 2 — and is the value that
 * flows through the chunk ring from generator threads to consumers.
 *
 * Chunks are immutable once published (the ring hands out
 * shared_ptr<const TraceChunk>); `base` records the global index of
 * the chunk's first instruction so consumers can address annotation
 * planes and inter-chunk state by absolute instruction index.
 */
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "trace/instruction.hh"

namespace mlpsim::trace {

/**
 * Default instructions per chunk. 16K instructions is ~160KB of
 * columns — big enough that per-chunk overheads (ring handoff, cursor
 * refills) vanish, small enough that a bounded ring of them keeps the
 * streaming pipeline's footprint in the low megabytes.
 */
constexpr uint32_t defaultChunkCapacity = 1u << 14;

/** One fixed-capacity structure-of-arrays run of instructions. */
class TraceChunk
{
  public:
    explicit TraceChunk(uint64_t base_index,
                        uint32_t cap = defaultChunkCapacity);

    /** Global index of instruction 0 of this chunk. */
    uint64_t base = 0;
    /** Instructions currently in the chunk (≤ cap). */
    uint32_t count = 0;
    /** Capacity this chunk was built with. */
    uint32_t cap = defaultChunkCapacity;

    // The columns. u64 columns are 8 instructions per cache line; u8
    // columns are 64. Allocated to `cap` at construction; `count` is
    // the fill level and the only valid-index authority (the file
    // reader shrinks them to `count`, so .size() is not meaningful).
    std::vector<uint64_t> pc;
    std::vector<uint64_t> effAddr;
    std::vector<uint64_t> payload; //!< branch target or load/store value
    std::vector<uint8_t> meta;     //!< packed cls/brKind/taken byte
    std::vector<uint8_t> dst;
    std::vector<uint8_t> src0;
    std::vector<uint8_t> src1;
    std::vector<uint8_t> src2;

    bool full() const { return count == cap; }
    bool empty() const { return count == 0; }
    /** Global index one past the last instruction. */
    uint64_t end() const { return base + count; }

    /** Append one instruction (chunk must not be full). Inline and
     *  bounds-check-free: this sits in the per-instruction path of
     *  both trace generation and the streaming producer thread. */
    void
    append(const Instruction &inst)
    {
        assert(!full());
        pc[count] = inst.pc;
        effAddr[count] = inst.effAddr;
        payload[count] = inst.rawPayload();
        meta[count] = inst.rawMeta();
        dst[count] = inst.dst;
        src0[count] = inst.src[0];
        src1[count] = inst.src[1];
        src2[count] = inst.src[2];
        ++count;
    }

    /** Reassemble instruction @p i (local index) as a packed record. */
    Instruction get(uint32_t i) const;

    // Field reads by local index, decoded with Instruction's own bit
    // constants so the two layouts cannot drift.
    InstClass cls(uint32_t i) const
    {
        return static_cast<InstClass>(meta[i] & Instruction::clsMask);
    }
    BranchKind brKind(uint32_t i) const
    {
        return static_cast<BranchKind>(
            (meta[i] >> Instruction::brKindShift) & Instruction::clsMask);
    }
    bool taken(uint32_t i) const
    {
        return (meta[i] & Instruction::takenBit) != 0;
    }
    bool isBranch(uint32_t i) const { return cls(i) == InstClass::Branch; }
    bool isSerializing(uint32_t i) const
    {
        return cls(i) == InstClass::Serializing;
    }
    bool hasDst(uint32_t i) const { return dst[i] != noReg; }
    /** Loaded/stored value (zero on branches), as Instruction::value. */
    uint64_t value(uint32_t i) const
    {
        return isBranch(i) ? 0 : payload[i];
    }
};

/**
 * Raw-pointer append cursor for the per-instruction producer loops
 * (TraceBuffer::fill, the streaming generator thread). Appending
 * through the chunk reference reloads eight vector data pointers per
 * instruction — the compiler cannot keep them cached across the
 * opaque TraceSource::next() call — so the filler snapshots them
 * once. publish() writes the fill level back; the chunk must not be
 * resized or read below publish() while a filler is live.
 */
class ChunkFiller
{
  public:
    explicit ChunkFiller(TraceChunk &chunk)
        : ck(&chunk), pcp(chunk.pc.data()), eap(chunk.effAddr.data()),
          plp(chunk.payload.data()), mp(chunk.meta.data()),
          dp(chunk.dst.data()), s0p(chunk.src0.data()),
          s1p(chunk.src1.data()), s2p(chunk.src2.data()),
          pos(chunk.count), cap(chunk.cap)
    {
    }

    bool full() const { return pos == cap; }

    void
    append(const Instruction &inst)
    {
        assert(!full());
        pcp[pos] = inst.pc;
        eap[pos] = inst.effAddr;
        plp[pos] = inst.rawPayload();
        mp[pos] = inst.rawMeta();
        dp[pos] = inst.dst;
        s0p[pos] = inst.src[0];
        s1p[pos] = inst.src[1];
        s2p[pos] = inst.src[2];
        ++pos;
    }

    /** Instructions appended since construction. */
    uint32_t appended() const { return pos - ck->count; }

    /** Make the appended instructions visible in the chunk. */
    void publish() { ck->count = pos; }

  private:
    TraceChunk *ck;
    uint64_t *pcp, *eap, *plp;
    uint8_t *mp, *dp, *s0p, *s1p, *s2p;
    uint32_t pos, cap;
};

using ChunkPtr = std::shared_ptr<const TraceChunk>;

/**
 * A forward, single-pass stream of chunks: next() hands out
 * successive chunks until the trace ends (nullptr). Streaming
 * implementations may block in next() waiting for a producer.
 */
class ChunkStream
{
  public:
    virtual ~ChunkStream() = default;
    virtual ChunkPtr next() = 0;
};

/**
 * A registered group of concurrent streams over one trace.
 *
 * openFanout() hands one of these back with `consumers()` slots; each
 * slot is claimed exactly once with stream(i). For broadcast-ring
 * sources every claimed stream is a cursor into ONE generation, so
 * all slots must be consumed concurrently (a slot that is claimed but
 * never drained — or never claimed before the fan-out is destroyed —
 * pins the ring and stalls its siblings). Sources without a shared
 * producer fall back to independent streams, where the slots are
 * fully decoupled.
 */
class StreamFanout
{
  public:
    virtual ~StreamFanout() = default;

    /** Claim consumer slot @p index's stream. Each slot exactly once. */
    virtual std::unique_ptr<ChunkStream> stream(size_t index) = 0;

    /** Number of consumer slots this fan-out was opened with. */
    virtual size_t consumers() const = 0;
};

/**
 * A replayable chunk-stream factory: every open() yields the same
 * chunk sequence from the start (the replay-determinism contract the
 * simulators rely on — each engine run re-streams the trace).
 */
class ChunkSource
{
  public:
    virtual ~ChunkSource() = default;
    /** Total instructions a full stream yields. */
    virtual uint64_t size() const = 0;
    virtual std::string name() const = 0;
    virtual std::unique_ptr<ChunkStream> open() const = 0;

    /**
     * Open @p consumers streams over the same trace as one group.
     * Sources with a per-stream generation cost (GeneratedChunkSource)
     * override this to broadcast ONE generation through a shared ring;
     * the default simply opens independent streams. @p ring_chunks
     * bounds the shared ring (0 = implementation default); it is
     * ignored by the independent fallback.
     */
    virtual std::unique_ptr<StreamFanout>
    openFanout(size_t consumers, size_t ring_chunks = 0) const;
};

} // namespace mlpsim::trace
