/**
 * @file
 * Streaming interface every trace producer implements.
 *
 * Simulators pull instructions one at a time; reset() restarts the
 * stream from the beginning so one workload object can be replayed
 * across many processor configurations deterministically.
 */
#pragma once

#include <cstdint>
#include <string>

#include "trace/instruction.hh"

namespace mlpsim::trace {

/** Abstract producer of a dynamic instruction stream. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /**
     * Produce the next instruction.
     * @param inst Filled in on success.
     * @retval true an instruction was produced.
     * @retval false the stream is exhausted.
     */
    virtual bool next(Instruction &inst) = 0;

    /** Restart the stream from its first instruction. */
    virtual void reset() = 0;

    /** Human-readable name for reports. */
    virtual std::string name() const = 0;
};

/**
 * Wrapper that truncates an underlying source after a fixed number of
 * instructions. Useful for bounding generator-backed (infinite)
 * workloads.
 */
class LimitedSource : public TraceSource
{
  public:
    LimitedSource(TraceSource &inner, uint64_t limit)
        : source(inner), maxInsts(limit)
    {
    }

    bool
    next(Instruction &inst) override
    {
        if (produced >= maxInsts)
            return false;
        if (!source.next(inst))
            return false;
        ++produced;
        return true;
    }

    void
    reset() override
    {
        source.reset();
        produced = 0;
    }

    std::string name() const override { return source.name(); }

  private:
    TraceSource &source;
    uint64_t maxInsts;
    uint64_t produced = 0;
};

} // namespace mlpsim::trace
