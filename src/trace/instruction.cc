#include "instruction.hh"

namespace mlpsim::trace {

const char *
instClassName(InstClass cls)
{
    switch (cls) {
      case InstClass::Alu: return "alu";
      case InstClass::Load: return "load";
      case InstClass::Store: return "store";
      case InstClass::Branch: return "branch";
      case InstClass::Prefetch: return "prefetch";
      case InstClass::Serializing: return "serializing";
    }
    return "?";
}

Instruction
makeAlu(uint64_t pc, uint8_t dst, uint8_t src0, uint8_t src1)
{
    Instruction i;
    i.pc = pc;
    i.setCls(InstClass::Alu);
    i.dst = dst;
    i.src[0] = src0;
    i.src[1] = src1;
    return i;
}

Instruction
makeLoad(uint64_t pc, uint8_t dst, uint64_t addr, uint8_t addr_reg,
         uint64_t value)
{
    Instruction i;
    i.pc = pc;
    i.setCls(InstClass::Load);
    i.dst = dst;
    i.src[0] = addr_reg;
    i.effAddr = addr;
    i.setValue(value);
    return i;
}

Instruction
makeStore(uint64_t pc, uint64_t addr, uint8_t data_reg, uint8_t addr_reg,
          uint64_t value)
{
    Instruction i;
    i.pc = pc;
    i.setCls(InstClass::Store);
    i.src[0] = addr_reg;
    i.src[1] = data_reg;
    i.effAddr = addr;
    i.setValue(value);
    return i;
}

Instruction
makePrefetch(uint64_t pc, uint64_t addr, uint8_t addr_reg)
{
    Instruction i;
    i.pc = pc;
    i.setCls(InstClass::Prefetch);
    i.src[0] = addr_reg;
    i.effAddr = addr;
    return i;
}

Instruction
makeBranch(uint64_t pc, uint64_t target, bool taken, uint8_t src0,
           BranchKind kind)
{
    Instruction i;
    i.pc = pc;
    i.setCls(InstClass::Branch);
    i.src[0] = src0;
    i.setTarget(target);
    i.setTaken(taken);
    i.setBrKind(kind);
    return i;
}

Instruction
makeSerializing(uint64_t pc, uint64_t addr, uint8_t src0)
{
    Instruction i;
    i.pc = pc;
    i.setCls(InstClass::Serializing);
    i.src[0] = src0;
    i.effAddr = addr;
    return i;
}

} // namespace mlpsim::trace
