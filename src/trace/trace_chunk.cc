#include "trace_chunk.hh"

#include <cassert>

namespace mlpsim::trace {

TraceChunk::TraceChunk(uint64_t base_index, uint32_t capacity)
    : base(base_index), cap(capacity)
{
    assert(cap > 0);
    pc.resize(cap);
    effAddr.resize(cap);
    payload.resize(cap);
    meta.resize(cap);
    dst.resize(cap);
    src0.resize(cap);
    src1.resize(cap);
    src2.resize(cap);
}

Instruction
TraceChunk::get(uint32_t i) const
{
    assert(i < count);
    Instruction inst;
    inst.pc = pc[i];
    inst.effAddr = effAddr[i];
    inst.setRawPayload(payload[i]);
    inst.setRawMeta(meta[i]);
    inst.dst = dst[i];
    inst.src[0] = src0[i];
    inst.src[1] = src1[i];
    inst.src[2] = src2[i];
    return inst;
}

} // namespace mlpsim::trace
