#include "trace_chunk.hh"

#include <cassert>

namespace mlpsim::trace {

TraceChunk::TraceChunk(uint64_t base_index, uint32_t capacity)
    : base(base_index), cap(capacity)
{
    assert(cap > 0);
    pc.resize(cap);
    effAddr.resize(cap);
    payload.resize(cap);
    meta.resize(cap);
    dst.resize(cap);
    src0.resize(cap);
    src1.resize(cap);
    src2.resize(cap);
}

namespace {

/**
 * Fallback fan-out: each slot is an ordinary independent stream.
 * Used by sources whose open() is cheap (materialised buffers, file
 * readers) where sharing a generation buys nothing.
 */
class IndependentFanout : public StreamFanout
{
  public:
    IndependentFanout(const ChunkSource &source, size_t consumer_count)
        : src(source), count(consumer_count)
    {
    }

    std::unique_ptr<ChunkStream>
    stream(size_t index) override
    {
        assert(index < count);
        (void)index;
        return src.open();
    }

    size_t consumers() const override { return count; }

  private:
    const ChunkSource &src;
    size_t count;
};

} // namespace

std::unique_ptr<StreamFanout>
ChunkSource::openFanout(size_t consumers, size_t /* ring_chunks */) const
{
    return std::make_unique<IndependentFanout>(*this, consumers);
}

Instruction
TraceChunk::get(uint32_t i) const
{
    assert(i < count);
    Instruction inst;
    inst.pc = pc[i];
    inst.effAddr = effAddr[i];
    inst.setRawPayload(payload[i]);
    inst.setRawMeta(meta[i]);
    inst.dst = dst[i];
    inst.src[0] = src0[i];
    inst.src[1] = src1[i];
    inst.src[2] = src2[i];
    return inst;
}

} // namespace mlpsim::trace
