/**
 * @file
 * Composite branch prediction unit (gshare + BTB + RAS) and the
 * program-order misprediction annotator shared by both simulators.
 *
 * Like the memory-side AccessProfiler, misprediction outcomes are
 * precomputed over the trace in program order so the epoch-model
 * simulator and the cycle-accurate reference agree exactly on *which*
 * dynamic branches mispredict; they then differ only in how that
 * misprediction interacts with the window, which is the effect under
 * study.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "branch/btb.hh"
#include "branch/gshare.hh"
#include "branch/ras.hh"
#include "trace/trace_buffer.hh"
#include "util/bitvec.hh"
#include "util/status.hh"

namespace mlpsim::branch {

/** Front-end predictor configuration (paper Section 5.1 defaults). */
struct BranchConfig
{
    unsigned gshareEntries = 64 * 1024;
    unsigned historyBits = 16;
    unsigned btbEntries = 16 * 1024;
    unsigned btbAssoc = 4;
    unsigned rasDepth = 16;
    /** Perfect branch prediction (limit study): nothing mispredicts. */
    bool perfect = false;
};

/**
 * Check predictor table geometries (power-of-two gshare, BTB sets
 * dividing evenly into ways, non-zero RAS, history bits within the
 * gshare's 16-bit register) without constructing anything.
 */
Status validateConfig(const BranchConfig &config);

/** Combined direction + target predictor. */
class BranchUnit
{
  public:
    explicit BranchUnit(const BranchConfig &config);

    /**
     * Predict and train on one dynamic branch.
     * @retval true the branch was mispredicted (direction or target).
     */
    bool predictAndUpdate(const trace::Instruction &inst);

    uint64_t branches() const { return nBranches; }
    uint64_t mispredicts() const { return nMispredicts; }
    double mispredictRate() const;

    void reset();

  private:
    BranchConfig cfg;
    Gshare gshare;
    Btb btb;
    ReturnAddressStack ras;
    uint64_t nBranches = 0;
    uint64_t nMispredicts = 0;
};

/** Per-trace branch outcome annotations. */
struct BranchAnnotations
{
    /** One flag per dynamic instruction: mispredicted branch. */
    util::BitVector mispredicted;
    uint64_t branches = 0;
    uint64_t mispredicts = 0;

    bool
    isMispredict(size_t i) const
    {
        return mispredicted.test(i);
    }

    double
    mispredictRate() const
    {
        return branches ? double(mispredicts) / double(branches) : 0.0;
    }
};

/**
 * Chunk-incremental branch annotator: the streaming pipeline feeds
 * trace chunks in program order and the predictor state (gshare
 * history, BTB, RAS) carries across chunk boundaries, so the outcome
 * plane is bit-identical to a whole-trace pass for any chunking.
 */
class BranchAnnotator
{
  public:
    BranchAnnotator(const BranchConfig &config, uint64_t warmup_insts)
        : unit(config), warmup(warmup_insts)
    {
    }

    /** Size the misprediction plane for an @p n-instruction trace up
     *  front so fused runs never reallocate it mid-stream. */
    void preallocate(size_t n) { ann.mispredicted.assign(n, false); }

    /** Feed the next chunk of the trace, in order. */
    void add(const trace::TraceChunk &chunk);

    /** The in-progress annotations: final for every chunk already
     *  add()ed (branch outcomes are never retroactive). */
    const BranchAnnotations &partial() const { return ann; }

    /** The completed annotations; the annotator is spent afterwards. */
    BranchAnnotations finish() { return std::move(ann); }

  private:
    BranchUnit unit;
    uint64_t warmup;
    BranchAnnotations ann;
    /** Per-chunk branch mask scratch (trace/chunk_scan.hh). */
    std::vector<uint64_t> scanMask;
};

/**
 * Run @p config's predictor over @p buffer in program order (a fresh
 * BranchAnnotator pass over its chunks).
 * @param warmup_insts Branches before this index train the predictor
 *        but are excluded from the rate statistics.
 */
BranchAnnotations annotateBranches(const trace::TraceBuffer &buffer,
                                   const BranchConfig &config,
                                   uint64_t warmup_insts = 0);

} // namespace mlpsim::branch
