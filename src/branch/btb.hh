/**
 * @file
 * Branch target buffer: a tagged, set-associative cache of branch
 * targets. The paper's default front end uses 16K entries.
 */
#pragma once

#include <cstdint>
#include <vector>

namespace mlpsim::branch {

/** Set-associative branch target buffer. */
class Btb
{
  public:
    explicit Btb(unsigned entries = 16 * 1024, unsigned assoc = 4);

    /**
     * Look up the predicted target for the branch at @p pc.
     * @param target Filled with the stored target on a hit.
     * @retval true the BTB holds a target for @p pc.
     */
    bool lookup(uint64_t pc, uint64_t &target) const;

    /** Install / refresh the target of the branch at @p pc. */
    void update(uint64_t pc, uint64_t target);

    void reset();

  private:
    struct Entry
    {
        uint64_t tag = 0;
        uint64_t target = 0;
        uint64_t lastUse = 0;
        bool valid = false;
    };

    unsigned setOf(uint64_t pc) const;

    std::vector<Entry> entries;
    unsigned sets;
    unsigned ways;
    uint64_t useClock = 0;
};

} // namespace mlpsim::branch
