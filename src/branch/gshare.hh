/**
 * @file
 * gshare direction predictor (McFarling): a table of 2-bit saturating
 * counters indexed by PC xor global branch history. The paper's
 * default front end uses a 64K-entry gshare.
 */
#pragma once

#include <cstdint>
#include <vector>

namespace mlpsim::branch {

/** Classic gshare conditional-branch direction predictor. */
class Gshare
{
  public:
    /**
     * @param entries Counter-table size; must be a power of two.
     * @param history_bits Global-history length (defaults to covering
     *        the index width, capped at 16).
     */
    explicit Gshare(unsigned entries = 64 * 1024,
                    unsigned history_bits = 16);

    /** Predict the direction of the branch at @p pc. */
    bool predict(uint64_t pc) const;

    /**
     * Train with the resolved outcome and advance the global history.
     * Call exactly once per dynamic conditional branch, after
     * predict().
     */
    void update(uint64_t pc, bool taken);

    void reset();

  private:
    unsigned index(uint64_t pc) const;

    std::vector<uint8_t> counters; //!< 2-bit saturating counters
    uint64_t history = 0;
    uint64_t historyMask;
    unsigned tableMask;
};

} // namespace mlpsim::branch
