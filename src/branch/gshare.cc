#include "gshare.hh"

#include <bit>

#include "util/logging.hh"

namespace mlpsim::branch {

Gshare::Gshare(unsigned entries, unsigned history_bits)
{
    if (!std::has_single_bit(uint64_t(entries)))
        fatal("gshare entries must be a power of two, got ", entries);
    counters.assign(entries, 2); // weakly taken
    tableMask = entries - 1;
    if (history_bits > 16)
        history_bits = 16;
    historyMask = (1ULL << history_bits) - 1;
}

unsigned
Gshare::index(uint64_t pc) const
{
    return static_cast<unsigned>(((pc >> 2) ^ history) & tableMask);
}

bool
Gshare::predict(uint64_t pc) const
{
    return counters[index(pc)] >= 2;
}

void
Gshare::update(uint64_t pc, bool taken)
{
    uint8_t &ctr = counters[index(pc)];
    if (taken && ctr < 3)
        ++ctr;
    else if (!taken && ctr > 0)
        --ctr;
    history = ((history << 1) | uint64_t(taken)) & historyMask;
}

void
Gshare::reset()
{
    std::fill(counters.begin(), counters.end(), uint8_t(2));
    history = 0;
}

} // namespace mlpsim::branch
