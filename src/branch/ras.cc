#include "ras.hh"

#include "util/logging.hh"

namespace mlpsim::branch {

ReturnAddressStack::ReturnAddressStack(unsigned depth)
{
    if (depth == 0)
        fatal("RAS depth must be positive");
    slots.assign(depth, 0);
}

void
ReturnAddressStack::push(uint64_t return_pc)
{
    top = (top + 1) % slots.size();
    slots[top] = return_pc;
    if (occupancy < slots.size())
        ++occupancy;
}

uint64_t
ReturnAddressStack::pop()
{
    if (occupancy == 0)
        return 0;
    const uint64_t value = slots[top];
    top = (top + unsigned(slots.size()) - 1) % slots.size();
    --occupancy;
    return value;
}

void
ReturnAddressStack::reset()
{
    top = 0;
    occupancy = 0;
    for (auto &s : slots)
        s = 0;
}

} // namespace mlpsim::branch
