#include "btb.hh"

#include <bit>

#include "util/logging.hh"

namespace mlpsim::branch {

Btb::Btb(unsigned num_entries, unsigned assoc) : ways(assoc)
{
    if (assoc == 0 || num_entries % assoc != 0)
        fatal("BTB entries must divide into ", assoc, " ways");
    sets = num_entries / assoc;
    if (!std::has_single_bit(uint64_t(sets)))
        fatal("BTB set count must be a power of two, got ", sets);
    entries.resize(num_entries);
}

unsigned
Btb::setOf(uint64_t pc) const
{
    return static_cast<unsigned>((pc >> 2) & (sets - 1));
}

bool
Btb::lookup(uint64_t pc, uint64_t &target) const
{
    const Entry *set = &entries[size_t(setOf(pc)) * ways];
    for (unsigned w = 0; w < ways; ++w) {
        if (set[w].valid && set[w].tag == pc) {
            target = set[w].target;
            return true;
        }
    }
    return false;
}

void
Btb::update(uint64_t pc, uint64_t target)
{
    ++useClock;
    Entry *set = &entries[size_t(setOf(pc)) * ways];
    Entry *victim = &set[0];
    for (unsigned w = 0; w < ways; ++w) {
        Entry &e = set[w];
        if (e.valid && e.tag == pc) {
            e.target = target;
            e.lastUse = useClock;
            return;
        }
        if (!victim->valid)
            continue;
        if (!e.valid || e.lastUse < victim->lastUse)
            victim = &e;
    }
    victim->valid = true;
    victim->tag = pc;
    victim->target = target;
    victim->lastUse = useClock;
}

void
Btb::reset()
{
    for (Entry &e : entries)
        e.valid = false;
    useClock = 0;
}

} // namespace mlpsim::branch
