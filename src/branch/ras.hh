/**
 * @file
 * Return address stack: a small circular stack predicting return
 * targets. The paper's default front end uses 16 entries.
 */
#pragma once

#include <cstdint>
#include <vector>

namespace mlpsim::branch {

/** Fixed-depth circular return-address stack. */
class ReturnAddressStack
{
  public:
    explicit ReturnAddressStack(unsigned depth = 16);

    /** Push the return address of a call. Wraps (overwrites) on
     *  overflow, like real hardware. */
    void push(uint64_t return_pc);

    /**
     * Pop the predicted return target.
     * @retval 0 the stack is empty (prediction unavailable).
     */
    uint64_t pop();

    unsigned size() const { return occupancy; }
    void reset();

  private:
    std::vector<uint64_t> slots;
    unsigned top = 0;
    unsigned occupancy = 0;
};

} // namespace mlpsim::branch
