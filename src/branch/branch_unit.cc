#include "branch_unit.hh"

#include <bit>

#include "trace/chunk_scan.hh"

namespace mlpsim::branch {

Status
validateConfig(const BranchConfig &config)
{
    if (config.gshareEntries == 0 ||
        !std::has_single_bit(uint64_t(config.gshareEntries))) {
        return Status::invalidArgument(
            "gshare entries must be a power of two, got ",
            config.gshareEntries);
    }
    if (config.historyBits > 16) {
        return Status::invalidArgument(
            "gshare history bits must be <= 16, got ",
            config.historyBits);
    }
    if (config.btbAssoc == 0 ||
        config.btbEntries % config.btbAssoc != 0) {
        return Status::invalidArgument(
            "BTB entries (", config.btbEntries,
            ") must divide into ", config.btbAssoc, " ways");
    }
    if (!std::has_single_bit(
            uint64_t(config.btbEntries / config.btbAssoc))) {
        return Status::invalidArgument(
            "BTB set count must be a power of two, got ",
            config.btbEntries / config.btbAssoc);
    }
    if (config.rasDepth == 0)
        return Status::invalidArgument("RAS depth must be positive");
    return Status::okStatus();
}

BranchUnit::BranchUnit(const BranchConfig &config)
    : cfg(config), gshare(config.gshareEntries, config.historyBits),
      btb(config.btbEntries, config.btbAssoc), ras(config.rasDepth)
{
}

bool
BranchUnit::predictAndUpdate(const trace::Instruction &inst)
{
    using trace::BranchKind;

    ++nBranches;
    if (cfg.perfect) {
        // Still maintain RAS/BTB state invariants are unnecessary when
        // everything is perfect; simply never mispredict.
        return false;
    }

    bool mispredict = false;
    switch (inst.brKind()) {
      case BranchKind::Conditional:
      {
        const bool pred_taken = gshare.predict(inst.pc);
        if (pred_taken != inst.taken()) {
            mispredict = true;
        } else if (inst.taken()) {
            uint64_t target = 0;
            if (!btb.lookup(inst.pc, target) || target != inst.target())
                mispredict = true;
        }
        gshare.update(inst.pc, inst.taken());
        if (inst.taken())
            btb.update(inst.pc, inst.target());
        break;
      }
      case BranchKind::Call:
      {
        uint64_t target = 0;
        if (!btb.lookup(inst.pc, target) || target != inst.target())
            mispredict = true;
        btb.update(inst.pc, inst.target());
        ras.push(inst.pc + 4);
        break;
      }
      case BranchKind::Return:
      {
        if (ras.pop() != inst.target())
            mispredict = true;
        break;
      }
      case BranchKind::Jump:
      {
        uint64_t target = 0;
        if (!btb.lookup(inst.pc, target) || target != inst.target())
            mispredict = true;
        btb.update(inst.pc, inst.target());
        break;
      }
      case BranchKind::None:
        break;
    }

    if (mispredict)
        ++nMispredicts;
    return mispredict;
}

double
BranchUnit::mispredictRate() const
{
    return nBranches ? double(nMispredicts) / double(nBranches) : 0.0;
}

void
BranchUnit::reset()
{
    gshare.reset();
    btb.reset();
    ras.reset();
    nBranches = 0;
    nMispredicts = 0;
}

void
BranchAnnotator::add(const trace::TraceChunk &chunk)
{
    if (chunk.end() > ann.mispredicted.size())
        ann.mispredicted.resize(chunk.end());
    // Vectorizable branch-select then sparse apply: commercial traces
    // are ~1/8 branches, so the predictor body runs an order of
    // magnitude fewer times than a dense class-dispatch walk visits.
    scanMask.assign(trace::scanWords(chunk.count), 0);
    trace::orClassMask(chunk, trace::classBit(trace::InstClass::Branch),
                       scanMask.data());
    trace::forEachSetBit(scanMask.data(), chunk.count, [&](uint32_t ci) {
        const size_t i = chunk.base + ci;
        const bool miss = unit.predictAndUpdate(chunk.get(ci));
        if (miss)
            ann.mispredicted[i] = 1;
        if (i >= warmup) {
            ++ann.branches;
            if (miss)
                ++ann.mispredicts;
        }
    });
}

BranchAnnotations
annotateBranches(const trace::TraceBuffer &buffer,
                 const BranchConfig &config, uint64_t warmup_insts)
{
    BranchAnnotator pass(config, warmup_insts);
    for (size_t ci = 0; ci < buffer.numChunks(); ++ci)
        pass.add(buffer.chunk(ci));
    return pass.finish();
}

} // namespace mlpsim::branch
