/**
 * @file
 * Exporters for collected metrics: per-run JSON snapshots, CSV, and a
 * Chrome trace_event timeline of SweepRunner job spans.
 *
 * Snapshot determinism: with the default options (timers excluded),
 * the JSON and CSV forms are pure functions of the metric values —
 * lexicographically ordered paths, exact integer formatting, shortest
 * round-trip doubles — so two runs with the same flags produce
 * bit-identical files regardless of --jobs or machine load. The
 * trace-event export is the opposite by design: it records observed
 * wall-clock spans so a --jobs schedule can be inspected in
 * chrome://tracing or https://ui.perfetto.dev.
 */
#pragma once

#include <map>
#include <string>
#include <vector>

#include "metrics/json.hh"
#include "metrics/registry.hh"
#include "util/parallel.hh"

namespace mlpsim::metrics {

/** Knobs for the snapshot serialisers. */
struct SnapshotOptions
{
    /**
     * Include Timer metrics. Off by default: wall-clock durations vary
     * run to run and would break the bit-identical-snapshot guarantee
     * the bench --metrics-out files advertise.
     */
    bool includeTimers = false;
};

/** The standard snapshot document identifier. */
inline constexpr const char *snapshotSchema = "mlpsim-metrics-v1";

/**
 * Serialise @p snapshot as the canonical JSON document:
 * `{"schema": ..., "meta": <meta>, "metrics": {<path>: {...}, ...}}`.
 * @p meta must be an object holding only run-deterministic values
 * (bench name, instruction budgets — not wall time, not --jobs).
 */
JsonValue toJson(const std::map<std::string, Metric> &snapshot,
                 JsonValue meta = JsonValue::object(),
                 const SnapshotOptions &options = {});

/** One `path,kind,...` row per metric, headered, path-ordered. */
std::string toCsv(const std::map<std::string, Metric> &snapshot,
                  const SnapshotOptions &options = {});

/**
 * Write the global registry's snapshot to @p path atomically. A
 * ".csv" extension selects the CSV form; anything else gets JSON.
 */
Status writeSnapshotFile(const std::string &path,
                         JsonValue meta = JsonValue::object(),
                         const SnapshotOptions &options = {});

/** The bench-performance document identifier (BENCH_perf.json). */
inline constexpr const char *benchPerfSchema = "mlpsim-bench-perf-v1";

/**
 * Wrap an array of bench-performance rows in the standard document
 * (`{"schema": benchPerfSchema, "results": [...]}`). Every producer
 * of BENCH_perf.json content — perf_microbench, sweep_client — goes
 * through this so the metrics_check --kind bench-perf contract has a
 * single definition. Each row must carry at least the six standard
 * keys (bench, workload, config, wall_s, instr_per_s, peak_rss_kb);
 * producers may add extra keys after them.
 */
JsonValue makeBenchPerfDoc(JsonValue results);

/** The sweep-report document identifier. */
inline constexpr const char *sweepReportSchema = "mlpsim-sweep-report-v1";

/**
 * Serialise a collect-all sweep's failure record (DESIGN.md section
 * 13): batch totals plus one structured entry per JobFailure, in
 * submission order. Unlike the metrics snapshot this document carries
 * wall-clock times and attempt counts — it describes *this run's*
 * degradation, not the simulated machine, so it is diagnostic output
 * like the trace-event export, not a determinism surface.
 */
JsonValue sweepReportToJson(std::size_t total_jobs, std::size_t retries,
                            const std::vector<JobFailure> &failures,
                            JsonValue meta = JsonValue::object());

/** Write a sweep report to @p path atomically. */
Status writeSweepReportFile(const std::string &path,
                            std::size_t total_jobs, std::size_t retries,
                            const std::vector<JobFailure> &failures,
                            JsonValue meta = JsonValue::object());

/**
 * Serialise job spans in the Chrome trace_event format ("X" complete
 * events, microsecond timestamps, one tid per sweep worker).
 */
JsonValue spansToTraceEvents(const std::vector<JobSpan> &spans);

/**
 * Drain all SweepRunner spans recorded so far and write them to
 * @p path as a trace-event file.
 */
Status writeTraceEventsFile(const std::string &path);

} // namespace mlpsim::metrics
