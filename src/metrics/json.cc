#include "json.hh"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>

#ifdef _WIN32
#include <process.h>
#else
#include <unistd.h>
#endif

#include "util/logging.hh"

namespace mlpsim::metrics {

JsonValue::JsonValue(double value) : k(Kind::Double), d(value)
{
    MLPSIM_ASSERT(std::isfinite(value),
                  "JSON cannot represent NaN/Infinity");
}

bool
JsonValue::boolean() const
{
    MLPSIM_ASSERT(k == Kind::Bool, "boolean() on non-bool JSON value");
    return b;
}

double
JsonValue::number() const
{
    switch (k) {
      case Kind::Int:
        return double(i);
      case Kind::Uint:
        return double(u);
      case Kind::Double:
        return d;
      default:
        panic("number() on non-numeric JSON value");
    }
}

uint64_t
JsonValue::uinteger() const
{
    switch (k) {
      case Kind::Uint:
        return u;
      case Kind::Int:
        MLPSIM_ASSERT(i >= 0, "uinteger() on negative JSON value");
        return uint64_t(i);
      default:
        panic("uinteger() on non-integer JSON value");
    }
}

const std::string &
JsonValue::string() const
{
    MLPSIM_ASSERT(k == Kind::String, "string() on non-string JSON value");
    return s;
}

const std::vector<JsonValue> &
JsonValue::items() const
{
    MLPSIM_ASSERT(k == Kind::Array, "items() on non-array JSON value");
    return arr;
}

const std::vector<JsonValue::Member> &
JsonValue::members() const
{
    MLPSIM_ASSERT(k == Kind::Object, "members() on non-object JSON value");
    return obj;
}

void
JsonValue::push(JsonValue value)
{
    MLPSIM_ASSERT(k == Kind::Array, "push() on non-array JSON value");
    arr.push_back(std::move(value));
}

void
JsonValue::set(std::string key, JsonValue value)
{
    MLPSIM_ASSERT(k == Kind::Object, "set() on non-object JSON value");
    for (auto &[existing, val] : obj) {
        if (existing == key) {
            val = std::move(value);
            return;
        }
    }
    obj.emplace_back(std::move(key), std::move(value));
}

const JsonValue *
JsonValue::find(std::string_view key) const
{
    if (k != Kind::Object)
        return nullptr;
    for (const auto &[name, val] : obj) {
        if (name == key)
            return &val;
    }
    return nullptr;
}

std::size_t
JsonValue::size() const
{
    switch (k) {
      case Kind::Array:
        return arr.size();
      case Kind::Object:
        return obj.size();
      case Kind::String:
        return s.size();
      default:
        return 0;
    }
}

bool
JsonValue::operator==(const JsonValue &other) const
{
    // Numbers compare across integer kinds (42 == 42u) but a double is
    // only equal to another double with identical bits, keeping the
    // round-trip check honest about exactness.
    if (isNumber() && other.isNumber()) {
        if (k == Kind::Double || other.k == Kind::Double)
            return k == other.k && d == other.d;
        if (k == Kind::Uint && other.k == Kind::Uint)
            return u == other.u;
        if (k == Kind::Int && other.k == Kind::Int)
            return i == other.i;
        const JsonValue &si = k == Kind::Int ? *this : other;
        const JsonValue &su = k == Kind::Uint ? *this : other;
        return si.i >= 0 && uint64_t(si.i) == su.u;
    }
    if (k != other.k)
        return false;
    switch (k) {
      case Kind::Null:
        return true;
      case Kind::Bool:
        return b == other.b;
      case Kind::String:
        return s == other.s;
      case Kind::Array:
        return arr == other.arr;
      case Kind::Object:
        return obj == other.obj;
      default:
        return false; // numeric kinds handled above
    }
}

namespace {

void
appendEscaped(std::string &out, const std::string &str)
{
    out += '"';
    for (unsigned char c : str) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += char(c);
            }
        }
    }
    out += '"';
}

void
appendDouble(std::string &out, double value)
{
    // to_chars emits the shortest decimal form that parses back to the
    // identical bits — both exact and deterministic.
    char buf[32];
    auto res = std::to_chars(buf, buf + sizeof(buf), value);
    MLPSIM_ASSERT(res.ec == std::errc(), "double formatting failed");
    out.append(buf, res.ptr);
    // Keep integral doubles recognisably floating-point so they parse
    // back as Kind::Double, preserving round-trip kind fidelity.
    std::string_view written(buf, size_t(res.ptr - buf));
    if (written.find_first_of(".eE") == std::string_view::npos)
        out += ".0";
}

void
newlineIndent(std::string &out, int indent, int depth)
{
    out += '\n';
    out.append(size_t(indent) * size_t(depth), ' ');
}

} // namespace

void
JsonValue::dumpTo(std::string &out, int indent, int depth) const
{
    switch (k) {
      case Kind::Null:
        out += "null";
        return;
      case Kind::Bool:
        out += b ? "true" : "false";
        return;
      case Kind::Int: {
        char buf[24];
        auto res = std::to_chars(buf, buf + sizeof(buf), i);
        out.append(buf, res.ptr);
        return;
      }
      case Kind::Uint: {
        char buf[24];
        auto res = std::to_chars(buf, buf + sizeof(buf), u);
        out.append(buf, res.ptr);
        return;
      }
      case Kind::Double:
        appendDouble(out, d);
        return;
      case Kind::String:
        appendEscaped(out, s);
        return;
      case Kind::Array: {
        if (arr.empty()) {
            out += "[]";
            return;
        }
        out += '[';
        for (size_t n = 0; n < arr.size(); ++n) {
            if (n)
                out += ',';
            if (indent)
                newlineIndent(out, indent, depth + 1);
            arr[n].dumpTo(out, indent, depth + 1);
        }
        if (indent)
            newlineIndent(out, indent, depth);
        out += ']';
        return;
      }
      case Kind::Object: {
        if (obj.empty()) {
            out += "{}";
            return;
        }
        out += '{';
        for (size_t n = 0; n < obj.size(); ++n) {
            if (n)
                out += ',';
            if (indent)
                newlineIndent(out, indent, depth + 1);
            appendEscaped(out, obj[n].first);
            out += indent ? ": " : ":";
            obj[n].second.dumpTo(out, indent, depth + 1);
        }
        if (indent)
            newlineIndent(out, indent, depth);
        out += '}';
        return;
      }
    }
}

std::string
JsonValue::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    if (indent)
        out += '\n';
    return out;
}

namespace {

/** Strict recursive-descent JSON parser over a string_view. */
class Parser
{
  public:
    explicit Parser(std::string_view text) : in(text) {}

    Expected<JsonValue>
    document()
    {
        skipWs();
        MLPSIM_ASSIGN_OR_RETURN(JsonValue value, parseValue(0));
        skipWs();
        if (pos != in.size())
            return fail("trailing characters after document");
        return value;
    }

  private:
    static constexpr int maxDepth = 64;

    Status
    fail(const std::string &what) const
    {
        return Status::dataLoss("JSON parse error at byte ",
                                pos, ": ", what);
    }

    void
    skipWs()
    {
        while (pos < in.size() &&
               (in[pos] == ' ' || in[pos] == '\t' || in[pos] == '\n' ||
                in[pos] == '\r')) {
            ++pos;
        }
    }

    bool
    consume(char c)
    {
        if (pos < in.size() && in[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    Expected<JsonValue>
    parseValue(int depth)
    {
        if (depth > maxDepth)
            return fail("nesting deeper than 64 levels");
        if (pos >= in.size())
            return fail("unexpected end of input");
        switch (in[pos]) {
          case '{':
            return parseObject(depth);
          case '[':
            return parseArray(depth);
          case '"':
            return parseString();
          case 't':
            return parseKeyword("true", JsonValue(true));
          case 'f':
            return parseKeyword("false", JsonValue(false));
          case 'n':
            return parseKeyword("null", JsonValue(nullptr));
          default:
            return parseNumber();
        }
    }

    Expected<JsonValue>
    parseKeyword(std::string_view word, JsonValue value)
    {
        if (in.substr(pos, word.size()) != word)
            return fail("invalid literal");
        pos += word.size();
        return value;
    }

    Expected<JsonValue>
    parseObject(int depth)
    {
        ++pos; // '{'
        JsonValue out = JsonValue::object();
        skipWs();
        if (consume('}'))
            return out;
        while (true) {
            skipWs();
            if (pos >= in.size() || in[pos] != '"')
                return fail("expected string object key");
            MLPSIM_ASSIGN_OR_RETURN(JsonValue key, parseString());
            skipWs();
            if (!consume(':'))
                return fail("expected ':' after object key");
            skipWs();
            MLPSIM_ASSIGN_OR_RETURN(JsonValue value, parseValue(depth + 1));
            out.set(key.string(), std::move(value));
            skipWs();
            if (consume('}'))
                return out;
            if (!consume(','))
                return fail("expected ',' or '}' in object");
        }
    }

    Expected<JsonValue>
    parseArray(int depth)
    {
        ++pos; // '['
        JsonValue out = JsonValue::array();
        skipWs();
        if (consume(']'))
            return out;
        while (true) {
            skipWs();
            MLPSIM_ASSIGN_OR_RETURN(JsonValue value, parseValue(depth + 1));
            out.push(std::move(value));
            skipWs();
            if (consume(']'))
                return out;
            if (!consume(','))
                return fail("expected ',' or ']' in array");
        }
    }

    Expected<JsonValue>
    parseString()
    {
        ++pos; // '"'
        std::string out;
        while (true) {
            if (pos >= in.size())
                return fail("unterminated string");
            unsigned char c = (unsigned char)in[pos];
            if (c == '"') {
                ++pos;
                return JsonValue(std::move(out));
            }
            if (c < 0x20)
                return fail("unescaped control character in string");
            if (c != '\\') {
                out += char(c);
                ++pos;
                continue;
            }
            ++pos;
            if (pos >= in.size())
                return fail("unterminated escape");
            switch (in[pos]) {
              case '"':
                out += '"';
                break;
              case '\\':
                out += '\\';
                break;
              case '/':
                out += '/';
                break;
              case 'n':
                out += '\n';
                break;
              case 'r':
                out += '\r';
                break;
              case 't':
                out += '\t';
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'u': {
                MLPSIM_ASSIGN_OR_RETURN(uint32_t cp, parseHex4());
                if (cp >= 0xD800 && cp <= 0xDBFF) {
                    // High surrogate: require the paired low half.
                    if (!(pos + 2 < in.size() && in[pos + 1] == '\\' &&
                          in[pos + 2] == 'u')) {
                        return fail("lone high surrogate");
                    }
                    pos += 2;
                    MLPSIM_ASSIGN_OR_RETURN(uint32_t lo, parseHex4());
                    if (lo < 0xDC00 || lo > 0xDFFF)
                        return fail("invalid low surrogate");
                    cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
                    return fail("lone low surrogate");
                }
                appendUtf8(out, cp);
                break;
              }
              default:
                return fail("invalid escape character");
            }
            ++pos;
        }
    }

    /** Four hex digits after "\u"; leaves pos on the last digit. */
    Expected<uint32_t>
    parseHex4()
    {
        uint32_t value = 0;
        for (int n = 0; n < 4; ++n) {
            ++pos;
            if (pos >= in.size())
                return fail("truncated \\u escape");
            const char c = in[pos];
            value <<= 4;
            if (c >= '0' && c <= '9')
                value |= uint32_t(c - '0');
            else if (c >= 'a' && c <= 'f')
                value |= uint32_t(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                value |= uint32_t(c - 'A' + 10);
            else
                return fail("non-hex digit in \\u escape");
        }
        return value;
    }

    static void
    appendUtf8(std::string &out, uint32_t cp)
    {
        if (cp < 0x80) {
            out += char(cp);
        } else if (cp < 0x800) {
            out += char(0xC0 | (cp >> 6));
            out += char(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
            out += char(0xE0 | (cp >> 12));
            out += char(0x80 | ((cp >> 6) & 0x3F));
            out += char(0x80 | (cp & 0x3F));
        } else {
            out += char(0xF0 | (cp >> 18));
            out += char(0x80 | ((cp >> 12) & 0x3F));
            out += char(0x80 | ((cp >> 6) & 0x3F));
            out += char(0x80 | (cp & 0x3F));
        }
    }

    Expected<JsonValue>
    parseNumber()
    {
        const size_t start = pos;
        if (consume('-')) {
            // fallthrough; digits validated below
        }
        const size_t digits_start = pos;
        while (pos < in.size() && in[pos] >= '0' && in[pos] <= '9')
            ++pos;
        if (pos == digits_start)
            return fail("invalid number");
        if (in[digits_start] == '0' && pos - digits_start > 1)
            return fail("leading zero in number");
        bool floating = false;
        if (consume('.')) {
            floating = true;
            bool frac = false;
            while (pos < in.size() && in[pos] >= '0' && in[pos] <= '9') {
                ++pos;
                frac = true;
            }
            if (!frac)
                return fail("digits required after decimal point");
        }
        if (pos < in.size() && (in[pos] == 'e' || in[pos] == 'E')) {
            floating = true;
            ++pos;
            if (pos < in.size() && (in[pos] == '+' || in[pos] == '-'))
                ++pos;
            bool exp = false;
            while (pos < in.size() && in[pos] >= '0' && in[pos] <= '9') {
                ++pos;
                exp = true;
            }
            if (!exp)
                return fail("digits required in exponent");
        }

        const std::string_view text = in.substr(start, pos - start);
        if (!floating) {
            if (text[0] == '-') {
                int64_t value = 0;
                auto res = std::from_chars(text.data(),
                                           text.data() + text.size(),
                                           value);
                if (res.ec == std::errc() &&
                    res.ptr == text.data() + text.size()) {
                    return JsonValue(value);
                }
            } else {
                uint64_t value = 0;
                auto res = std::from_chars(text.data(),
                                           text.data() + text.size(),
                                           value);
                if (res.ec == std::errc() &&
                    res.ptr == text.data() + text.size()) {
                    return JsonValue(value);
                }
            }
            // Magnitude exceeds 64 bits: fall through to double.
        }
        double value = 0.0;
        auto res = std::from_chars(text.data(),
                                   text.data() + text.size(), value);
        if (res.ec != std::errc() || res.ptr != text.data() + text.size())
            return fail("unparseable number");
        return JsonValue(value);
    }

    std::string_view in;
    size_t pos = 0;
};

struct FileCloser
{
    void
    operator()(std::FILE *f) const
    {
        if (f)
            std::fclose(f);
    }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

} // namespace

Expected<JsonValue>
JsonValue::parse(std::string_view text)
{
    return Parser(text).document();
}

Expected<JsonValue>
readJsonFile(const std::string &path)
{
    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (!f)
        return Status::notFound("cannot open '", path, "'");
    std::string text;
    char buf[64 * 1024];
    size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f.get())) > 0)
        text.append(buf, got);
    if (std::ferror(f.get()))
        return Status::ioError("error reading '", path, "'");
    return JsonValue::parse(text)
        .withContext("reading '", path, "'");
}

Status
writeJsonFile(const std::string &path, const JsonValue &value, int indent)
{
    return writeTextFile(path, value.dump(indent));
}

Status
writeTextFile(const std::string &path, const std::string &text)
{
    // Temp-file-plus-rename keeps a crashed writer from leaving a
    // half-document where a result file is expected.
    const std::string tmp_path =
        path + ".tmp." + std::to_string(::getpid());
    FilePtr f(std::fopen(tmp_path.c_str(), "wb"));
    if (!f)
        return Status::ioError("cannot create '", tmp_path, "'");
    if (std::fwrite(text.data(), 1, text.size(), f.get()) != text.size() ||
        std::fflush(f.get()) != 0) {
        f.reset();
        std::remove(tmp_path.c_str());
        return Status::ioError("error writing '", tmp_path, "'");
    }
    f.reset(); // close before rename
    if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
        Status st = Status::ioError("cannot rename '", tmp_path,
                                    "' to '", path, "'");
        std::remove(tmp_path.c_str());
        return st;
    }
    return Status::okStatus();
}

} // namespace mlpsim::metrics
