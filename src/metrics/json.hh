/**
 * @file
 * Dependency-free JSON document model, writer and reader.
 *
 * The metrics exporters (metrics/export.hh) need a machine-readable
 * results format, and the bench-smoke validation needs to read those
 * files back; neither justifies a third-party dependency, so this is a
 * small, strict JSON implementation:
 *
 *  - Objects preserve *insertion order* (they are vectors of pairs,
 *    not maps), so a document serialises exactly as it was built —
 *    the foundation of the bit-identical-snapshot guarantee.
 *  - Numbers keep their integer-ness: values written as uint64/int64
 *    round-trip exactly; doubles are printed with std::to_chars
 *    (shortest form that round-trips), which is deterministic.
 *  - The reader (JsonValue::parse) is a strict recursive-descent
 *    parser returning Expected<JsonValue>: trailing garbage, trailing
 *    commas, unquoted keys, NaN/Infinity and bad escapes are all
 *    diagnosed with a byte offset rather than accepted.
 */
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.hh"

namespace mlpsim::metrics {

/** One JSON value (recursive sum type). */
class JsonValue
{
  public:
    enum class Kind : uint8_t {
        Null, Bool, Int, Uint, Double, String, Array, Object,
    };

    /** Key/value member of an object, in insertion order. */
    using Member = std::pair<std::string, JsonValue>;

    JsonValue() : k(Kind::Null) {}
    JsonValue(std::nullptr_t) : k(Kind::Null) {}
    JsonValue(bool value) : k(Kind::Bool), b(value) {}
    JsonValue(int value) : k(Kind::Int), i(value) {}
    JsonValue(int64_t value) : k(Kind::Int), i(value) {}
    JsonValue(uint64_t value) : k(Kind::Uint), u(value) {}
    /** @pre @p value is finite (JSON has no NaN/Infinity). */
    JsonValue(double value);
    JsonValue(const char *value) : k(Kind::String), s(value) {}
    JsonValue(std::string value) : k(Kind::String), s(std::move(value)) {}

    static JsonValue array() { return JsonValue(Kind::Array); }
    static JsonValue object() { return JsonValue(Kind::Object); }

    Kind kind() const { return k; }
    bool isNull() const { return k == Kind::Null; }
    bool isBool() const { return k == Kind::Bool; }
    bool isNumber() const
    {
        return k == Kind::Int || k == Kind::Uint || k == Kind::Double;
    }
    bool isString() const { return k == Kind::String; }
    bool isArray() const { return k == Kind::Array; }
    bool isObject() const { return k == Kind::Object; }

    bool boolean() const;
    /** Any numeric kind, widened to double. */
    double number() const;
    /** @pre isNumber() and the value is a non-negative integer. */
    uint64_t uinteger() const;
    const std::string &string() const;

    /** Array elements. @pre isArray(). */
    const std::vector<JsonValue> &items() const;
    /** Object members in insertion order. @pre isObject(). */
    const std::vector<Member> &members() const;

    /** Append to an array. @pre isArray(). */
    void push(JsonValue value);

    /**
     * Add (or overwrite) an object member; overwrite keeps the key's
     * original position so re-setting a member does not reorder the
     * serialised document. @pre isObject().
     */
    void set(std::string key, JsonValue value);

    /** Member lookup; nullptr if absent or not an object. */
    const JsonValue *find(std::string_view key) const;

    std::size_t size() const;

    /** Deep structural equality (used by round-trip validation). */
    bool operator==(const JsonValue &other) const;
    bool operator!=(const JsonValue &other) const
    {
        return !(*this == other);
    }

    /**
     * Serialise. @p indent > 0 pretty-prints with that many spaces per
     * level and a trailing newline; 0 emits the compact single-line
     * form. Output is a pure function of the document.
     */
    std::string dump(int indent = 2) const;

    /** Parse a complete document (leading/trailing whitespace ok). */
    static Expected<JsonValue> parse(std::string_view text);

  private:
    explicit JsonValue(Kind kind) : k(kind) {}

    void dumpTo(std::string &out, int indent, int depth) const;

    Kind k;
    bool b = false;
    int64_t i = 0;
    uint64_t u = 0;
    double d = 0.0;
    std::string s;
    std::vector<JsonValue> arr;
    std::vector<Member> obj;
};

/** Read and parse @p path. */
Expected<JsonValue> readJsonFile(const std::string &path);

/**
 * Serialise @p value to @p path atomically (temp file + rename, the
 * trace-writer idiom), so readers never observe a partial document.
 */
Status writeJsonFile(const std::string &path, const JsonValue &value,
                     int indent = 2);

/** The same atomic temp-file-plus-rename write for arbitrary text. */
Status writeTextFile(const std::string &path, const std::string &text);

} // namespace mlpsim::metrics
