#include "registry.hh"

#include <memory>

#include "util/logging.hh"
#include "util/parallel.hh"

namespace mlpsim::metrics {

const char *
metricKindName(MetricKind kind)
{
    switch (kind) {
      case MetricKind::Counter:
        return "counter";
      case MetricKind::Gauge:
        return "gauge";
      case MetricKind::Stat:
        return "stat";
      case MetricKind::Hist:
        return "histogram";
      case MetricKind::Timer:
        return "timer";
    }
    return "?";
}

void
Metric::merge(const Metric &other)
{
    MLPSIM_ASSERT(kind == other.kind, "merging ",
                  metricKindName(other.kind), " into ",
                  metricKindName(kind));
    switch (kind) {
      case MetricKind::Counter:
        counter += other.counter;
        break;
      case MetricKind::Gauge:
        // Last write wins; merge order is submission order, so the
        // outcome matches what serial execution would have left.
        gauge = other.gauge;
        break;
      case MetricKind::Stat:
      case MetricKind::Timer:
        stat.merge(other.stat);
        break;
      case MetricKind::Hist:
        hist.merge(other.hist);
        break;
    }
}

void
setEnabled(bool on)
{
    g_metricsEnabled.store(on, std::memory_order_relaxed);
}

MetricRegistry &
MetricRegistry::global()
{
    static MetricRegistry registry;
    return registry;
}

Metric &
MetricRegistry::upsert(const std::string &path, MetricKind kind)
{
    auto [it, inserted] = metrics.try_emplace(path);
    if (inserted) {
        it->second.kind = kind;
    } else {
        MLPSIM_ASSERT(it->second.kind == kind, "metric '", path,
                      "' used as ", metricKindName(kind),
                      " but registered as ",
                      metricKindName(it->second.kind));
    }
    return it->second;
}

void
MetricRegistry::add(const std::string &path, uint64_t delta)
{
    std::lock_guard<std::mutex> lock(mutex);
    upsert(path, MetricKind::Counter).counter += delta;
}

void
MetricRegistry::set(const std::string &path, double value)
{
    std::lock_guard<std::mutex> lock(mutex);
    upsert(path, MetricKind::Gauge).gauge = value;
}

void
MetricRegistry::observe(const std::string &path, double sample)
{
    std::lock_guard<std::mutex> lock(mutex);
    upsert(path, MetricKind::Stat).stat.add(sample);
}

void
MetricRegistry::observeKey(const std::string &path, uint64_t key,
                           uint64_t weight)
{
    std::lock_guard<std::mutex> lock(mutex);
    upsert(path, MetricKind::Hist).hist.add(key, weight);
}

void
MetricRegistry::addTime(const std::string &path, double seconds)
{
    std::lock_guard<std::mutex> lock(mutex);
    upsert(path, MetricKind::Timer).stat.add(seconds);
}

void
MetricRegistry::merge(const MetricRegistry &other)
{
    // Registries are merged child-into-global; a registry never merges
    // into itself, so ordering the two locks is not needed beyond the
    // child being private to this call path by contract.
    MLPSIM_ASSERT(&other != this, "registry merged into itself");
    std::lock_guard<std::mutex> other_lock(other.mutex);
    std::lock_guard<std::mutex> lock(mutex);
    for (const auto &[path, metric] : other.metrics) {
        auto [it, inserted] = metrics.try_emplace(path, metric);
        if (!inserted)
            it->second.merge(metric);
    }
}

std::map<std::string, Metric>
MetricRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return metrics;
}

bool
MetricRegistry::empty() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return metrics.empty();
}

void
MetricRegistry::clear()
{
    std::lock_guard<std::mutex> lock(mutex);
    metrics.clear();
}

// ----- thread-local collection context -----------------------------

namespace {

thread_local MetricRegistry *t_current = nullptr;
thread_local std::vector<std::string> t_labels;

} // namespace

MetricRegistry &
cur()
{
    return t_current ? *t_current : MetricRegistry::global();
}

CollectorScope::CollectorScope(MetricRegistry *registry) : prev(t_current)
{
    t_current = registry;
}

CollectorScope::~CollectorScope()
{
    t_current = prev;
}

ScopedLabel::ScopedLabel(std::string segment)
{
    t_labels.push_back(std::move(segment));
}

ScopedLabel::~ScopedLabel()
{
    t_labels.pop_back();
}

std::string
scopedPath(std::string_view suffix)
{
    std::string path;
    for (const auto &segment : t_labels) {
        path += segment;
        path += '/';
    }
    path += suffix;
    return path;
}

ScopedTimer::ScopedTimer(std::string_view suffix)
{
    if (!enabled())
        return;
    path = scopedPath(suffix);
    start = std::chrono::steady_clock::now();
}

ScopedTimer::~ScopedTimer()
{
    if (path.empty())
        return;
    const auto end = std::chrono::steady_clock::now();
    cur().addTime(path,
                  std::chrono::duration<double>(end - start).count());
}

// ----- sweep-job isolation -----------------------------------------

namespace {

/**
 * Per-job token: the job's private registry plus the CollectorScope
 * installing it on the executing thread between begin() and end().
 */
struct JobCollector
{
    MetricRegistry registry;
    std::unique_ptr<CollectorScope> scope;
};

} // namespace

JobHooks
sweepIsolationHooks()
{
    JobHooks hooks;
    hooks.begin = [](const std::string &) -> std::shared_ptr<void> {
        if (!enabled())
            return nullptr;
        auto collector = std::make_shared<JobCollector>();
        collector->scope =
            std::make_unique<CollectorScope>(&collector->registry);
        return collector;
    };
    hooks.end = [](const std::shared_ptr<void> &token) {
        if (auto *collector = static_cast<JobCollector *>(token.get()))
            collector->scope.reset();
    };
    hooks.commit = [](const std::shared_ptr<void> &token,
                      const std::string &) {
        if (auto *collector = static_cast<JobCollector *>(token.get()))
            MetricRegistry::global().merge(collector->registry);
    };
    return hooks;
}

void
installSweepIsolation()
{
    SweepRunner::setJobHooks(sweepIsolationHooks());
}

} // namespace mlpsim::metrics
