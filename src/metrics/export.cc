#include "export.hh"

#include <charconv>

#include "util/logging.hh"

namespace mlpsim::metrics {

namespace {

/** Shortest-round-trip double, matching the JSON writer's format. */
std::string
formatDouble(double value)
{
    char buf[32];
    auto res = std::to_chars(buf, buf + sizeof(buf), value);
    MLPSIM_ASSERT(res.ec == std::errc(), "double formatting failed");
    return std::string(buf, res.ptr);
}

JsonValue
metricToJson(const Metric &metric)
{
    JsonValue out = JsonValue::object();
    out.set("kind", metricKindName(metric.kind));
    switch (metric.kind) {
      case MetricKind::Counter:
        out.set("value", metric.counter);
        break;
      case MetricKind::Gauge:
        out.set("value", metric.gauge);
        break;
      case MetricKind::Stat:
      case MetricKind::Timer:
        out.set("count", metric.stat.count());
        out.set("mean", metric.stat.mean());
        out.set("min", metric.stat.min());
        out.set("max", metric.stat.max());
        out.set("sum", metric.stat.sum());
        break;
      case MetricKind::Hist: {
        out.set("samples", metric.hist.samples());
        out.set("mean", metric.hist.mean());
        if (metric.hist.samples()) {
            out.set("p50", metric.hist.quantile(0.5));
            out.set("p90", metric.hist.quantile(0.9));
            out.set("p99", metric.hist.quantile(0.99));
        }
        JsonValue buckets = JsonValue::array();
        for (const auto &[key, count] : metric.hist.buckets()) {
            JsonValue pair = JsonValue::array();
            pair.push(key);
            pair.push(count);
            buckets.push(std::move(pair));
        }
        out.set("buckets", std::move(buckets));
        break;
      }
    }
    return out;
}

} // namespace

JsonValue
toJson(const std::map<std::string, Metric> &snapshot, JsonValue meta,
       const SnapshotOptions &options)
{
    JsonValue doc = JsonValue::object();
    doc.set("schema", snapshotSchema);
    doc.set("meta", std::move(meta));
    JsonValue metrics = JsonValue::object();
    for (const auto &[path, metric] : snapshot) {
        if (metric.kind == MetricKind::Timer && !options.includeTimers)
            continue;
        metrics.set(path, metricToJson(metric));
    }
    doc.set("metrics", std::move(metrics));
    return doc;
}

std::string
toCsv(const std::map<std::string, Metric> &snapshot,
      const SnapshotOptions &options)
{
    // One fixed column set across kinds; inapplicable cells are empty.
    std::string out = "path,kind,count,value,mean,min,max\n";
    for (const auto &[path, metric] : snapshot) {
        if (metric.kind == MetricKind::Timer && !options.includeTimers)
            continue;
        out += path;
        out += ',';
        out += metricKindName(metric.kind);
        switch (metric.kind) {
          case MetricKind::Counter:
            out += ",," + std::to_string(metric.counter) + ",,,";
            break;
          case MetricKind::Gauge:
            out += ",," + formatDouble(metric.gauge) + ",,,";
            break;
          case MetricKind::Stat:
          case MetricKind::Timer:
            out += ',' + std::to_string(metric.stat.count()) + ",," +
                   formatDouble(metric.stat.mean()) + ',' +
                   formatDouble(metric.stat.min()) + ',' +
                   formatDouble(metric.stat.max());
            break;
          case MetricKind::Hist:
            out += ',' + std::to_string(metric.hist.samples()) + ",," +
                   formatDouble(metric.hist.mean()) + ',';
            if (metric.hist.samples()) {
                out += std::to_string(metric.hist.minKey()) + ',' +
                       std::to_string(metric.hist.maxKey());
            } else {
                out += ',';
            }
            break;
        }
        out += '\n';
    }
    return out;
}

Status
writeSnapshotFile(const std::string &path, JsonValue meta,
                  const SnapshotOptions &options)
{
    const auto snapshot = MetricRegistry::global().snapshot();
    const bool csv =
        path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
    if (!csv) {
        return writeJsonFile(path,
                             toJson(snapshot, std::move(meta), options));
    }
    return writeTextFile(path, toCsv(snapshot, options));
}

JsonValue
makeBenchPerfDoc(JsonValue results)
{
    JsonValue doc = JsonValue::object();
    doc.set("schema", benchPerfSchema);
    doc.set("results", std::move(results));
    return doc;
}

JsonValue
sweepReportToJson(std::size_t total_jobs, std::size_t retries,
                  const std::vector<JobFailure> &failures,
                  JsonValue meta)
{
    JsonValue doc = JsonValue::object();
    doc.set("schema", sweepReportSchema);
    doc.set("meta", std::move(meta));
    doc.set("jobs", uint64_t(total_jobs));
    doc.set("succeeded", uint64_t(total_jobs - failures.size()));
    doc.set("failed", uint64_t(failures.size()));
    doc.set("retries", uint64_t(retries));

    JsonValue list = JsonValue::array();
    for (const JobFailure &failure : failures) {
        JsonValue entry = JsonValue::object();
        entry.set("index", uint64_t(failure.index));
        entry.set("label", failure.label);
        entry.set("code", errorCodeName(failure.status.code()));
        entry.set("class", failureClassName(failure.failureClass()));
        entry.set("message", failure.status.message());
        entry.set("attempts", uint64_t(failure.attempts));
        entry.set("wall_ms", failure.wallMillis);
        list.push(std::move(entry));
    }
    doc.set("failures", std::move(list));
    return doc;
}

Status
writeSweepReportFile(const std::string &path, std::size_t total_jobs,
                     std::size_t retries,
                     const std::vector<JobFailure> &failures,
                     JsonValue meta)
{
    return writeJsonFile(path,
                         sweepReportToJson(total_jobs, retries, failures,
                                           std::move(meta)));
}

JsonValue
spansToTraceEvents(const std::vector<JobSpan> &spans)
{
    JsonValue events = JsonValue::array();
    for (const auto &span : spans) {
        JsonValue event = JsonValue::object();
        event.set("name", span.label);
        event.set("cat", "sweep");
        event.set("ph", "X");
        event.set("ts", span.startMillis * 1000.0);   // microseconds
        event.set("dur", span.durMillis * 1000.0);
        event.set("pid", uint64_t(1));
        event.set("tid", uint64_t(span.worker));
        events.push(std::move(event));
    }
    JsonValue doc = JsonValue::object();
    doc.set("traceEvents", std::move(events));
    doc.set("displayTimeUnit", "ms");
    return doc;
}

Status
writeTraceEventsFile(const std::string &path)
{
    return writeJsonFile(path,
                         spansToTraceEvents(SweepRunner::drainSpans()),
                         0);
}

} // namespace mlpsim::metrics
