/**
 * @file
 * Instrumented-metrics registry: named counters, gauges, distributions
 * and histograms (backed by util/stats.hh RunningStat/Histogram),
 * scoped wall-clock timers, and a hierarchical label scheme.
 *
 * Design constraints, in order:
 *
 *  1. **Zero cost when disabled.** Collection is off by default; every
 *     instrumentation site guards itself with `if (enabled())`, a
 *     single relaxed atomic load that inlines from this header, so the
 *     simulator inner loops pay nothing until a binary opts in with
 *     --metrics-out (which calls setEnabled(true) before any threads
 *     start).
 *
 *  2. **Deterministic snapshots.** Bench sweeps run on worker threads,
 *     and floating-point accumulation is order-sensitive, so
 *     interleaving updates from concurrently running cells into one
 *     registry would make snapshots depend on thread scheduling.
 *     Instead, each SweepRunner job records into its own private
 *     registry (installed as the thread's *current* registry by the
 *     job-isolation hooks, see installSweepIsolation()), and completed
 *     job registries are merged into the global one in *submission
 *     order* after each batch. Identical flags therefore produce
 *     bit-identical snapshots for every --jobs value.
 *
 *  3. **Hierarchical labels.** Metric paths follow
 *     `workload/config/component/metric` (e.g.
 *     `database/w64C/core/epoch_engine/epochs`). The workload/config
 *     prefix is pushed by the sweep layer with ScopedLabel; library
 *     instrumentation only names its component-relative suffix via
 *     scopedPath().
 *
 * Wall-clock timers are collected like any other distribution but are
 * flagged non-deterministic; the JSON/CSV exporters exclude them by
 * default so result files stay bit-identical run to run (timing detail
 * belongs in the Chrome trace-events export, metrics/export.hh).
 */
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/stats.hh"

namespace mlpsim {
struct JobHooks; // util/parallel.hh

namespace metrics {

/** What a metric path holds (fixed at first touch, checked after). */
enum class MetricKind : uint8_t {
    Counter,   //!< monotonically added uint64
    Gauge,     //!< last-written double
    Stat,      //!< RunningStat distribution of doubles
    Hist,      //!< util Histogram over integer keys
    Timer,     //!< RunningStat of wall-clock seconds (non-deterministic)
};

const char *metricKindName(MetricKind kind);

/** One named metric's storage (a manual sum type keyed by `kind`). */
struct Metric
{
    MetricKind kind = MetricKind::Counter;
    uint64_t counter = 0;
    double gauge = 0.0;
    RunningStat stat;   //!< Stat and Timer kinds
    Histogram hist;

    /** Fold @p other of the same kind into this metric. */
    void merge(const Metric &other);
};

/** See file comment: the process-global collection switch. */
inline std::atomic<bool> g_metricsEnabled{false};

/** The compile-time-inlined guard every instrumentation site uses. */
inline bool
enabled()
{
    return g_metricsEnabled.load(std::memory_order_relaxed);
}

/** Flip collection on/off (call before spawning sweep threads). */
void setEnabled(bool on);

/**
 * Thread-safe registry of metrics keyed by their full label path.
 * Paths sort lexicographically in snapshots (std::map), giving the
 * exporters a canonical order for free.
 */
class MetricRegistry
{
  public:
    MetricRegistry() = default;
    MetricRegistry(const MetricRegistry &) = delete;
    MetricRegistry &operator=(const MetricRegistry &) = delete;

    /** The process-wide registry snapshots are taken from. */
    static MetricRegistry &global();

    void add(const std::string &path, uint64_t delta = 1);
    void set(const std::string &path, double value);
    void observe(const std::string &path, double sample);
    void observeKey(const std::string &path, uint64_t key,
                    uint64_t weight = 1);
    void addTime(const std::string &path, double seconds);

    /**
     * Fold every metric of @p other into this registry. Determinism
     * contract: callers merge in submission order (the sweep hooks
     * do), never in completion order.
     */
    void merge(const MetricRegistry &other);

    /** Ordered copy of the current contents. */
    std::map<std::string, Metric> snapshot() const;

    bool empty() const;
    void clear();

  private:
    Metric &upsert(const std::string &path, MetricKind kind);

    mutable std::mutex mutex;
    std::map<std::string, Metric> metrics;
};

/**
 * The thread's *current* registry: the global one by default, or a
 * job-private registry while a sweep job runs under the isolation
 * hooks. All scopedPath()-style instrumentation goes through cur().
 */
MetricRegistry &cur();

/** Install @p registry as this thread's current (RAII). */
class CollectorScope
{
  public:
    explicit CollectorScope(MetricRegistry *registry);
    ~CollectorScope();

    CollectorScope(const CollectorScope &) = delete;
    CollectorScope &operator=(const CollectorScope &) = delete;

  private:
    MetricRegistry *prev;
};

/**
 * Push one `/`-separated label segment for the current thread; pops on
 * destruction. Nested scopes compose left to right:
 * ScopedLabel("database") + ScopedLabel("w64C") makes scopedPath("x")
 * return "database/w64C/x".
 */
class ScopedLabel
{
  public:
    explicit ScopedLabel(std::string segment);
    ~ScopedLabel();

    ScopedLabel(const ScopedLabel &) = delete;
    ScopedLabel &operator=(const ScopedLabel &) = delete;
};

/** @p suffix prefixed with the thread's current label scope. */
std::string scopedPath(std::string_view suffix);

/**
 * Records the wall-clock duration of its own lifetime into
 * cur()'s Timer metric at scopedPath(@p suffix). No-op (not even a
 * clock read) when collection is disabled at construction.
 */
class ScopedTimer
{
  public:
    explicit ScopedTimer(std::string_view suffix);
    ~ScopedTimer();

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    std::string path; //!< empty = disabled at construction
    std::chrono::steady_clock::time_point start;
};

/**
 * Route every SweepRunner job through a private registry merged into
 * the global one in submission order (the determinism contract above).
 * Idempotent; installs process-wide hooks, so one call at option-parse
 * time covers every runner the binary creates.
 */
void installSweepIsolation();

/**
 * The hooks installSweepIsolation() installs, exposed so a caller can
 * compose them with its own instrumentation (the mlpsimd daemon wraps
 * them to stream per-cell progress events) before SweepRunner::
 * setJobHooks — there is only one process-wide hook slot.
 */
JobHooks sweepIsolationHooks();

} // namespace metrics
} // namespace mlpsim
