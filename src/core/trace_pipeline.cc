#include "trace_pipeline.hh"

#include <optional>

#include "metrics/registry.hh"
#include "util/cancellation.hh"

namespace mlpsim::core {

Expected<StreamingTrace>
StreamingTrace::make(const trace::ChunkSource &source,
                     const AnnotationOptions &options)
{
    MLPSIM_RETURN_IF_ERROR(options.validate().withContext(
        "annotating stream '", source.name(), "'"));
    return StreamingTrace(source, options);
}

StreamingTrace::StreamingTrace(const trace::ChunkSource &source,
                               const AnnotationOptions &options)
    : src(&source), opts(options)
{
    opts.validate().orFatal();

    memory::ProfileConfig profile_cfg;
    profile_cfg.hierarchy = opts.hierarchy;
    profile_cfg.warmupInsts = opts.warmupInsts;
    memory::AccessProfiler profiler(profile_cfg);
    branch::BranchAnnotator branch_pass(opts.branch, opts.warmupInsts);
    std::optional<predictor::ValueAnnotator> value_pass;
    if (opts.buildValues) {
        // Reads the profiler's data-miss plane at the chunk just fed;
        // that plane is final for already-profiled chunks (only the
        // useful-prefetch plane flips retroactively).
        value_pass.emplace(profiler.partial(), opts.value,
                           opts.warmupInsts);
    }

    uint64_t streamed = 0;
    {
        metrics::ScopedTimer t("core/annotate/stream_s");
        auto stream = source.open();
        while (trace::ChunkPtr c = stream->next()) {
            // Sweep deadlines stay enforceable during the fused
            // generate-and-annotate pass (the job thread is here, not
            // in an engine loop).
            pollCancellation();
            profiler.add(*c);
            branch_pass.add(*c);
            if (value_pass)
                value_pass->add(*c);
            streamed += c->count;
        }
    }

    // finish() order matters only for the value pass, which borrows
    // the profiler's in-progress planes: close it out first.
    if (value_pass) {
        valAnn = value_pass->finish();
        hasValues = true;
    }
    missAnn = profiler.finish();
    brAnn = branch_pass.finish();
    numInsts = streamed;

    // Same counters the materialised AnnotatedTrace records, so the
    // two pipelines produce identical metrics snapshots.
    if (metrics::enabled()) {
        metrics::cur().add(metrics::scopedPath("core/annotate/traces"), 1);
        metrics::cur().add(metrics::scopedPath("core/annotate/insts"),
                           streamed);
    }
}

WorkloadContext
StreamingTrace::context() const
{
    WorkloadContext ctx;
    ctx.stream = src;
    ctx.misses = &missAnn;
    ctx.branches = &brAnn;
    ctx.values = hasValues ? &valAnn : nullptr;
    return ctx;
}

} // namespace mlpsim::core
