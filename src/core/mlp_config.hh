/**
 * @file
 * Processor-model configuration for the epoch-model MLP simulator.
 *
 * Mirrors the paper's experimental knobs: the five issue-constraint
 * configurations of Table 2, the three window structures (fetch
 * buffer, issue window, reorder buffer), the two in-order models of
 * Section 3.3, runahead execution (Section 3.5) and missing-load value
 * prediction (Section 3.6).
 */
#pragma once

#include <cstdint>
#include <string>

#include "util/status.hh"

namespace mlpsim::core {

/** The paper's Table 2 issue-constraint configurations. */
enum class IssueConfig : uint8_t {
    A, //!< loads in-order wrt loads/stores; branches in-order; serializing
    B, //!< loads OoO but wait for earlier store addresses; branches in-order
    C, //!< loads speculate past stores; branches in-order (default)
    D, //!< + branches out-of-order
    E, //!< + serializing instructions made non-serializing
};

const char *issueConfigName(IssueConfig config);

/** Overall machine organisation. */
enum class CoreMode : uint8_t {
    OutOfOrder,        //!< conventional OoO issue (Section 3.2)
    InOrderStallOnMiss, //!< in-order, stalls when a load misses
    InOrderStallOnUse,  //!< in-order, stalls when missing data is used
    Runahead,           //!< OoO plus runahead execution (Section 3.5)
};

const char *coreModeName(CoreMode mode);

/** Full configuration of one simulated machine. */
struct MlpConfig
{
    CoreMode mode = CoreMode::OutOfOrder;
    IssueConfig issue = IssueConfig::C;

    unsigned fetchBufferSize = 32;
    unsigned issueWindowSize = 64;
    unsigned robSize = 64;

    /** Maximum instructions past the trigger in runahead mode. */
    unsigned maxRunaheadDistance = 2048;

    /**
     * Maximum dynamic instructions an epoch may extend past its
     * trigger. The epoch model is timing-free, but an epoch physically
     * ends when its trigger's data returns; machines that never stall
     * (e.g. prefetch-dominated phases) would otherwise merge unbounded
     * stretches into one epoch. The default corresponds to the
     * instructions a wide core could possibly issue under a
     * ~1000-cycle miss and never binds for ordinary window sizes.
     */
    unsigned epochInstHorizon = 2048;

    /** Honour the value-prediction annotations (correct predictions
     *  release dependents within the epoch). */
    bool valuePrediction = false;

    /**
     * Store-MLP extension (the paper's stated future work): model a
     * finite store buffer. Off-chip store fills then count as useful
     * accesses, and a store whose fill is outstanding holds its ROB
     * entry until the epoch completes (the worst case of a full store
     * buffer). Off by default: the paper assumes infinite store
     * buffers (Section 3).
     */
    bool finiteStoreBuffer = false;

    /** Instructions excluded from the statistics (must match the
     *  warm-up used when building the annotations). */
    uint64_t warmupInsts = 0;

    /** Paper-style label, e.g. "64C" or "RAE". */
    std::string label() const;

    /**
     * label() flattened for use as one metric-path segment (no '/')
     * and extended with the feature toggles label() omits ("+vp",
     * "+sb"), so distinct machines never share a metrics prefix.
     */
    std::string metricLabel() const;

    /**
     * Reject inconsistent machine descriptions with an actionable
     * message: zero-sized window structures, a runahead machine whose
     * decoupled ROB is smaller than its issue window (runahead
     * triggers on ROB fill) or that can never run ahead, or a zero
     * epoch horizon. runMlp() checks this before simulating.
     */
    Status validate() const;

    /** @p config if valid, its validation error otherwise. */
    static Expected<MlpConfig> checked(MlpConfig config);

    /** The paper's "64C" default machine. */
    static MlpConfig defaultOoO();

    /** A window/ROB-coupled machine, e.g. sized(128, IssueConfig::D). */
    static MlpConfig sized(unsigned window, IssueConfig issue_config);

    /** The "INF" machine: 2048-entry window and ROB, config E. */
    static MlpConfig infinite();

    /** The Figure 8 runahead machine (64-entry window, config D). */
    static MlpConfig runahead(unsigned rob = 64);
};

} // namespace mlpsim::core
