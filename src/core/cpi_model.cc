#include "cpi_model.hh"

#include "util/logging.hh"

namespace mlpsim::core {

double
cpiOnChip(const CpiModelParams &params)
{
    return params.cpiPerf * (1.0 - params.overlapCM);
}

double
cpiOffChip(const CpiModelParams &params)
{
    MLPSIM_ASSERT(params.mlp > 0.0, "MLP must be positive");
    return params.missRatePerInst * params.missPenalty / params.mlp;
}

double
estimateCpi(const CpiModelParams &params)
{
    return cpiOnChip(params) + cpiOffChip(params);
}

double
solveOverlapCM(double measured_cpi, double cpi_perf,
               double miss_rate_per_inst, double miss_penalty, double mlp)
{
    MLPSIM_ASSERT(cpi_perf > 0.0, "CPI_perf must be positive");
    MLPSIM_ASSERT(mlp > 0.0, "MLP must be positive");
    const double off_chip = miss_rate_per_inst * miss_penalty / mlp;
    return 1.0 - (measured_cpi - off_chip) / cpi_perf;
}

double
speedupPercent(double baseline_cpi, double test_cpi)
{
    MLPSIM_ASSERT(test_cpi > 0.0, "CPI must be positive");
    return 100.0 * (baseline_cpi / test_cpi - 1.0);
}

} // namespace mlpsim::core
