/**
 * @file
 * Results of an epoch-model simulation: average MLP, the access and
 * epoch tallies it derives from, and the paper's Figure 5 taxonomy of
 * conditions that ended each epoch's window ("what prevented more
 * MLP").
 */
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "util/stats.hh"

namespace mlpsim::core {

/**
 * Figure 5 epoch-inhibitor categories: the condition that prevented
 * additional off-chip accesses from being overlapped in an epoch.
 */
enum class Inhibitor : std::uint8_t {
    ImissStart,  //!< the epoch trigger was a missing instruction fetch
    Maxwin,      //!< issue window or ROB full (or runahead limit)
    MispredBr,   //!< unresolvable mispredicted branch stopped fetch
    ImissEnd,    //!< a missing instruction fetch stopped a Dmiss epoch
    MissingLoad, //!< in-order load issue blocked later misses (config A)
    DepStore,    //!< unresolved store address blocked loads (configs A,B)
    Serialize,   //!< serializing instruction drained the pipeline
    TriggerDone, //!< the trigger's data returned before anything
                 //!< blocked (non-stalling, prefetch-heavy epochs)
    EndOfTrace,  //!< the trace ran out (bookkeeping, not a machine limit)
    NumInhibitors,
};

constexpr std::size_t numInhibitors =
    static_cast<std::size_t>(Inhibitor::NumInhibitors);

const char *inhibitorName(Inhibitor inhibitor);

/** Per-category epoch counts. */
struct InhibitorStats
{
    std::array<uint64_t, numInhibitors> count{};

    uint64_t
    operator[](Inhibitor i) const
    {
        return count[static_cast<std::size_t>(i)];
    }

    void
    record(Inhibitor i)
    {
        ++count[static_cast<std::size_t>(i)];
    }

    uint64_t total() const;

    /** Fraction of all epochs ended by @p i. */
    double fraction(Inhibitor i) const;
};

/** Output of one epoch-model run (statistics cover post-warm-up). */
struct MlpResult
{
    uint64_t epochs = 0;          //!< number of measured epoch sets
    uint64_t usefulAccesses = 0;  //!< useful off-chip accesses
    uint64_t dmissAccesses = 0;   //!< ... of which demand loads
    uint64_t imissAccesses = 0;   //!< ... instruction fetches
    uint64_t pmissAccesses = 0;   //!< ... useful prefetches
    uint64_t smissAccesses = 0;   //!< ... store fills (store-MLP
                                  //!< extension; zero by default)
    uint64_t measuredInsts = 0;   //!< instructions in the measured region

    InhibitorStats inhibitors;

    /** Distribution of useful accesses per epoch. */
    Histogram accessesPerEpoch;

    /** Average MLP: useful accesses per epoch (paper Section 2.1). */
    double
    mlp() const
    {
        return epochs ? double(usefulAccesses) / double(epochs) : 0.0;
    }

    /** Useful off-chip accesses per 100 measured instructions. */
    double
    missRatePer100() const
    {
        return measuredInsts
                   ? 100.0 * double(usefulAccesses) / double(measuredInsts)
                   : 0.0;
    }
};

} // namespace mlpsim::core
