#include "mlp_result.hh"

namespace mlpsim::core {

const char *
inhibitorName(Inhibitor inhibitor)
{
    switch (inhibitor) {
      case Inhibitor::ImissStart: return "Imiss start";
      case Inhibitor::Maxwin: return "Maxwin";
      case Inhibitor::MispredBr: return "Mispred br";
      case Inhibitor::ImissEnd: return "Imiss end";
      case Inhibitor::MissingLoad: return "Missing load";
      case Inhibitor::DepStore: return "Dep store";
      case Inhibitor::Serialize: return "Serialize";
      case Inhibitor::TriggerDone: return "Trigger done";
      case Inhibitor::EndOfTrace: return "End of trace";
      case Inhibitor::NumInhibitors: break;
    }
    return "?";
}

uint64_t
InhibitorStats::total() const
{
    uint64_t sum = 0;
    for (uint64_t c : count)
        sum += c;
    return sum;
}

double
InhibitorStats::fraction(Inhibitor i) const
{
    const uint64_t sum = total();
    return sum ? double((*this)[i]) / double(sum) : 0.0;
}

} // namespace mlpsim::core
